/**
 * @file
 * Paper Figure 13: average pointer-chase access latency under two-level
 * scheduling for quanta of 0.5/2/16 us, across array sizes 1KB-1MB
 * (4 jobs per core; 32KB L1 / 1MB L2 model).
 *
 * Expected shape: small quanta only add misses for 8-32KB arrays (the
 * L1 capacity region with 4x reuse amplification); below 8KB everything
 * fits, above 256KB even 16us quanta already miss; 0.5us tracks 2us.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "cache/chase.h"
#include "workloads/minikv.h"

using namespace tq;
using namespace tq::cache;

namespace {

/** One latency-vs-array-size table; Zipf(s>0) draws the visited line
 *  per access from workloads::ZipfKeyGen instead of the fixed chase
 *  order (hot lines survive preemption, so quantum sensitivity
 *  shrinks). */
void
latency_table(const std::vector<double> &quanta_us, double zipf_s)
{
    std::printf("array_kb");
    for (double q : quanta_us)
        std::printf("\tq%.1fus", q);
    std::printf("\n");

    for (size_t kb = 1; kb <= 1024; kb *= 2) {
        std::printf("%zu", kb);
        for (double q : quanta_us) {
            ChaseConfig cfg;
            cfg.array_bytes = kb * 1024;
            cfg.quantum = us(q);
            cfg.centralized = false;
            std::shared_ptr<workloads::ZipfKeyGen> gen;
            if (zipf_s > 0) {
                gen = std::make_shared<workloads::ZipfKeyGen>(
                    cfg.array_bytes / 64, zipf_s);
                cfg.line_sampler = [gen](Rng &rng) {
                    return gen->sample_key(rng);
                };
            }
            const ChaseResult r = run_chase(cfg);
            std::printf("\t%.2f", r.avg_latency_ns);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 13",
                  "TLS pointer-chase: avg access latency (ns) vs array "
                  "size, quanta {0.5, 2, 16} us");
    const std::vector<double> quanta_us = {0.5, 2, 16};
    std::printf("## uniform chase (paper's fixed iteration order)\n");
    latency_table(quanta_us, 0);
    std::printf("## Zipf(0.99) hot lines (workloads::ZipfKeyGen)\n");
    latency_table(quanta_us, 0.99);
    return 0;
}
