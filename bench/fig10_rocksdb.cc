/**
 * @file
 * Paper Figure 10: the RocksDB-style KV workload (GET 1.2us / SCAN
 * 675us; Table 1) at 0.5% and 50% SCAN ratios, under TQ, Shinjuku (15us
 * quantum per section 5.1) and Caladan — 99.9% sojourn of GETs and
 * SCANs vs rate.
 *
 * Expected shape: with 0.5% SCANs the workload resembles Extreme
 * Bimodal (TQ wins on GET tail and capacity); with 50% SCANs the system
 * is dominated by long jobs and the gap narrows.
 */
#include <cstdio>

#include "system_compare.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    const int threads = bench::sweep_threads(argc, argv);
    bench::banner("Figure 10",
                  "RocksDB GET/SCAN mixes: 99.9% sojourn (us); Shinjuku "
                  "quantum 15us");
    {
        std::printf("## 0.5%% SCAN\n");
        auto dist = workload_table::rocksdb(0.005);
        bench::compare_systems(*dist, rate_grid(mrps(0.4), mrps(3.3), 8),
                               15.0, {"GET", "SCAN"}, threads);
    }
    {
        std::printf("## 50%% SCAN\n");
        auto dist = workload_table::rocksdb(0.5);
        bench::compare_systems(*dist,
                               rate_grid(mrps(0.005), mrps(0.045), 8),
                               15.0, {"GET", "SCAN"}, threads);
    }
    return 0;
}
