/**
 * @file
 * Paper Figure 15: reuse-distance histograms of the KV store's GET and
 * SCAN operations, measured with the exact (Olken) analyzer over real
 * MiniKV access traces (the paper used the MICA Pin tool over RocksDB).
 *
 * Expected shape: both operations concentrate at small reuse distances;
 * only a few percent of accesses exceed 8KB, which is why the paper
 * finds RocksDB jobs insensitive to quantum size (section 5.5.2 reports
 * 3.7% for GET and 4.5% for SCAN above 8KB).
 */
#include <cstdio>

#include "bench_util.h"
#include "cache/reuse.h"
#include "common/rng.h"
#include "probe/probe.h"
#include "workloads/minikv.h"

using namespace tq;
using namespace tq::cache;
using namespace tq::workloads;

namespace {

/** Aggregated intra-operation reuse statistics. */
struct IntraOpReuse
{
    uint64_t accesses = 0;
    uint64_t reuses = 0;
    uint64_t above_8k = 0;
    LogHistogram hist{64, 16};
};

/**
 * The paper studies *intra-job* locality (section 5.5.1): reuse
 * distances within one operation, since those are what preemptions
 * disturb. Analyze each GET/SCAN in its own window and aggregate.
 */
IntraOpReuse
analyze(MiniKV &kv, bool scan, int ops, uint64_t seed)
{
    IntraOpReuse agg;
    Rng rng(seed);
    uint64_t checksum = 0;
    for (int i = 0; i < ops; ++i) {
        std::vector<uint64_t> trace;
        kv.set_trace(&trace);
        if (scan) {
            kv.scan(rng.below(kv.size()), 2000, &checksum);
        } else {
            std::string v;
            kv.get(rng.below(kv.size()), &v);
        }
        kv.set_trace(nullptr);
        ReuseAnalyzer analyzer;
        for (uint64_t addr : trace)
            analyzer.access(addr);
        agg.accesses += analyzer.accesses();
        for (uint64_t d : analyzer.distances()) {
            ++agg.reuses;
            agg.hist.add(d << 6);
            agg.above_8k += (d << 6) > 8 * 1024;
        }
    }
    return agg;
}

/**
 * Cross-op reuse under a key distribution: one analyzer over the
 * concatenated GET traces. Key skew only matters *across* operations —
 * a hot key's path is re-walked by later GETs at short distance — so
 * this is where the Zipfian mix (workloads::ZipfKeyGen) moves the
 * histogram, while the paper's intra-op histograms above are
 * key-distribution-invariant by construction.
 */
IntraOpReuse
analyze_cross_op(MiniKV &kv, const workloads::ZipfKeyGen &gen, int ops,
                 uint64_t seed)
{
    IntraOpReuse agg;
    Rng rng(seed);
    ReuseAnalyzer analyzer;
    std::vector<uint64_t> trace;
    kv.set_trace(&trace);
    for (int i = 0; i < ops; ++i) {
        std::string v;
        kv.get(gen.sample_key(rng), &v);
    }
    kv.set_trace(nullptr);
    for (uint64_t addr : trace)
        analyzer.access(addr);
    agg.accesses = analyzer.accesses();
    for (uint64_t d : analyzer.distances()) {
        ++agg.reuses;
        agg.hist.add(d << 6);
        agg.above_8k += (d << 6) > 8 * 1024;
    }
    return agg;
}

void
report(const char *name, const IntraOpReuse &a)
{
    std::printf("## %s: %llu accesses, %llu intra-op reuses\n", name,
                static_cast<unsigned long long>(a.accesses),
                static_cast<unsigned long long>(a.reuses));
    std::printf("%s", a.hist.to_string().c_str());
    std::printf("accesses with intra-op reuse distance > 8KB: %.1f%% "
                "(paper: GET 3.7%%, SCAN 4.5%%)\n",
                100.0 * static_cast<double>(a.above_8k) /
                    static_cast<double>(a.accesses));
}

} // namespace

int
main()
{
    bench::banner("Figure 15",
                  "reuse-distance histograms of MiniKV GET and SCAN "
                  "(bytes, power-of-two buckets)");
    disarm_quantum();
    MiniKV kv(1, 100);
    kv.load_sequential(100'000);

    report("GET", analyze(kv, false, 400, 7));
    report("SCAN", analyze(kv, true, 3, 8));

    // ROADMAP "Zipfian mix" leftover: the cross-op view, where hot-key
    // skew compresses reuse distances (uniform keys barely reuse across
    // GETs; Zipf hot keys re-walk the same skiplist path).
    const workloads::ZipfKeyGen uniform_keys(1 << 16, 0.0);
    const workloads::ZipfKeyGen zipf_keys(1 << 16, 0.99);
    const IntraOpReuse cross_uniform =
        analyze_cross_op(kv, uniform_keys, 400, 9);
    const IntraOpReuse cross_zipf = analyze_cross_op(kv, zipf_keys, 400, 9);
    report("GET cross-op, uniform keys", cross_uniform);
    report("GET cross-op, Zipf(0.99) keys", cross_zipf);
    return 0;
}
