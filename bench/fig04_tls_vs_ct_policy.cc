/**
 * @file
 * Paper Figure 4: 99.9% slowdown of the *long* jobs of Extreme Bimodal
 * under centralized PS (CT) vs two-level scheduling (TLS) with JSQ-PS
 * and either random or Maximum-Serviced-Quanta (MSQ) tie-breaking. No
 * preemption overheads (policy study).
 *
 * Expected shape: CT best (global view); TLS JSQ-PS with MSQ ties
 * competitive with CT; random ties notably worse for long jobs.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/central.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

int
main()
{
    bench::banner("Figure 4",
                  "long-job 99.9% slowdown: CT vs TLS (JSQ-PS, MSQ vs "
                  "random ties), zero overhead, Extreme Bimodal");
    auto dist = workload_table::extreme_bimodal();
    const auto rates = rate_grid(mrps(0.5), mrps(4.25), 9);

    std::printf("rate_mrps\tCT\tTLS_MSQ\tTLS_RAND\n");
    for (double rate : rates) {
        CentralConfig ct;
        ct.quantum = us(1);
        ct.overheads = Overheads::ideal();
        ct.duration = bench::sim_duration();
        const SimResult r_ct = run_central(ct, *dist, rate);

        TwoLevelConfig tls;
        tls.quantum = us(1);
        tls.overheads = Overheads::ideal();
        tls.duration = bench::sim_duration();
        tls.lb = LbPolicy::JsqMsq;
        const SimResult r_msq = run_two_level(tls, *dist, rate);
        tls.lb = LbPolicy::JsqRandom;
        const SimResult r_rand = run_two_level(tls, *dist, rate);

        auto fmt = [](const SimResult &r) {
            return r.saturated
                       ? std::string("sat")
                       : bench::cell(r.by_class("Long").p999_slowdown);
        };
        std::printf("%.2f\t%s\t%s\t%s\n", to_mrps(rate), fmt(r_ct).c_str(),
                    fmt(r_msq).c_str(), fmt(r_rand).c_str());
        std::fflush(stdout);
    }
    return 0;
}
