/**
 * @file
 * Ablation: scaling out TQ's dispatcher (paper section 6). One TQ
 * dispatcher sustains ~14 Mrps of per-job work; for shorter requests or
 * more cores the paper proposes multiple load-balancing dispatchers.
 * This bench sprays Poisson arrivals over 1/2/4 dispatcher cores and
 * measures the sustainable rate of a 64-core cluster on 0.5us jobs,
 * where a single dispatcher is the bottleneck by construction
 * (64 cores / 0.5us = 128 Mrps of demand capacity).
 *
 * Expected shape: capacity ~ min(worker capacity, K x dispatcher rate):
 * near-linear in the number of dispatchers until workers saturate.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation",
                  "multi-dispatcher scaling: max rate (Mrps) with 99.9% "
                  "slowdown <= 10, 64 cores, 0.5us jobs");
    FixedDist dist(us(0.5));
    const std::vector<int> dispatchers = {1, 2, 4};
    std::vector<double> caps(dispatchers.size());
    parallel_run(dispatchers.size(), bench::sweep_threads(argc, argv),
                 [&](size_t i) {
                     TwoLevelConfig cfg;
                     cfg.num_cores = 64;
                     cfg.num_dispatchers = dispatchers[i];
                     cfg.quantum = us(2);
                     cfg.duration = bench::sim_duration();
                     cfg.stop_when_saturated = true; // SLO probes only
                     caps[i] = max_rate_under_slo(
                         [&](double rate) {
                             return run_two_level(cfg, dist, rate);
                         },
                         slowdown_slo(10), mrps(2), mrps(60), 8);
                 });
    std::printf("dispatchers\tmax_Mrps\n");
    for (size_t i = 0; i < dispatchers.size(); ++i)
        std::printf("%d\t%.1f\n", dispatchers[i], to_mrps(caps[i]));
    return 0;
}
