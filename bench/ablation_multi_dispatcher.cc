/**
 * @file
 * Ablation: scaling out TQ's dispatcher (paper section 6). One TQ
 * dispatcher sustains ~14 Mrps of per-job work; for shorter requests or
 * more cores the paper proposes multiple load-balancing dispatchers.
 * This bench sprays Poisson arrivals over 1/2/4 dispatcher cores and
 * measures the sustainable rate of a 64-core cluster on 0.5us jobs,
 * where a single dispatcher is the bottleneck by construction
 * (64 cores / 0.5us = 128 Mrps of demand capacity).
 *
 * Expected shape: capacity ~ min(worker capacity, K x dispatcher rate):
 * near-linear in the number of dispatchers until workers saturate.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

int
main()
{
    bench::banner("Ablation",
                  "multi-dispatcher scaling: max rate (Mrps) with 99.9% "
                  "slowdown <= 10, 64 cores, 0.5us jobs");
    FixedDist dist(us(0.5));
    std::printf("dispatchers\tmax_Mrps\n");
    for (int d : {1, 2, 4}) {
        TwoLevelConfig cfg;
        cfg.num_cores = 64;
        cfg.num_dispatchers = d;
        cfg.quantum = us(2);
        cfg.duration = bench::sim_duration();
        const double cap = max_rate_under_slo(
            [&](double rate) { return run_two_level(cfg, dist, rate); },
            slowdown_slo(10), mrps(2), mrps(60), 8);
        std::printf("%d\t%.1f\n", d, to_mrps(cap));
        std::fflush(stdout);
    }
    return 0;
}
