/**
 * @file
 * Paper Figure 16: the maximum number of worker cores a dispatcher can
 * sustain at a target quantum size — Shinjuku's centralized dispatcher
 * vs TQ's two-level design. Workload: 1ms jobs keeping every core busy
 * (paper section 5.6). A core count is sustainable when the average
 * effective quantum stays within 110% of the target.
 *
 * Expected shape: Shinjuku holds 16 cores only at >= 5us quanta and
 * collapses to ~3 cores at 0.5us; TQ's dispatcher does per-job work
 * only, so 16 cores are sustainable at every quantum.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/central.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

namespace {

// Both systems run the same arrival process (default Poisson;
// `--arrival=onoff` switches to the MMPP burst profile on each).
ArrivalSpec g_arrival;

bool
shinjuku_sustains(int cores, double quantum_us)
{
    FixedDist dist(ms(1));
    CentralConfig cfg;
    cfg.num_cores = cores;
    cfg.quantum = us(quantum_us);
    cfg.overheads = Overheads::shinjuku_default();
    cfg.duration = bench::sim_duration();
    cfg.arrival = g_arrival;
    // Keep all cores busy: offer 2x the service capacity.
    const double rate = 2.0 * cores / ms(1);
    const SimResult r = run_central(cfg, dist, rate);
    return r.avg_effective_quantum <= 1.1 * cfg.quantum;
}

bool
tq_sustains(int cores, double quantum_us)
{
    FixedDist dist(ms(1));
    TwoLevelConfig cfg;
    cfg.num_cores = cores;
    cfg.quantum = us(quantum_us);
    cfg.overheads = Overheads::tq_default();
    cfg.duration = bench::sim_duration();
    cfg.arrival = g_arrival;
    const double rate = 2.0 * cores / ms(1);
    const SimResult r = run_two_level(cfg, dist, rate);
    return r.avg_effective_quantum <= 1.1 * cfg.quantum;
}

template <typename Fn>
int
max_cores(Fn &&sustains, double quantum_us, int limit = 16)
{
    int best = 0;
    for (int c = 1; c <= limit; ++c) {
        if (sustains(c, quantum_us))
            best = c;
        else
            break;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Figure 16",
                  "max cores sustaining the target quantum (avg effective "
                  "quantum <= 110% of target), 1ms jobs");
    g_arrival = bench::arrival_spec(argc, argv);
    std::printf("# arrival: %s\n", bench::arrival_name(g_arrival));
    // Each (system, quantum) search walks core counts sequentially with
    // an early break, but the ten searches are independent. These runs
    // are deliberately overloaded and must complete fully — the metric
    // (avg effective quantum) is read *from* the saturated run, so
    // stop_when_saturated stays off here.
    const std::vector<double> quanta_us = {0.5, 1, 2, 3, 5};
    std::vector<int> sj_cores(quanta_us.size());
    std::vector<int> tq_cores(quanta_us.size());
    parallel_run(quanta_us.size() * 2, bench::sweep_threads(argc, argv),
                 [&](size_t i) {
                     const double q = quanta_us[i / 2];
                     if (i % 2 == 0)
                         sj_cores[i / 2] = max_cores(shinjuku_sustains, q);
                     else
                         tq_cores[i / 2] = max_cores(tq_sustains, q);
                 });
    std::printf("quantum_us\tShinjuku_cores\tTQ_cores\n");
    for (size_t i = 0; i < quanta_us.size(); ++i) {
        std::printf("%.1f\t%d\t%d\n", quanta_us[i], sj_cores[i],
                    tq_cores[i]);
        std::fflush(stdout);
    }
    return 0;
}
