/**
 * @file
 * Paper Figure 9: the Exp(1) workload (exponential service times, mean
 * 1us) under TQ, Shinjuku (10us quantum) and Caladan — 99.9% sojourn vs
 * rate.
 *
 * Expected shape: with a light-tailed distribution preemption matters
 * less; the systems differ mainly in mechanism overhead and dispatcher
 * scalability, so TQ and Caladan-directpath reach high rates while
 * Shinjuku's centralized dispatcher saturates first.
 */
#include <cstdio>

#include "system_compare.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 9",
                  "Exp(1): 99.9% sojourn (us) vs rate; Shinjuku quantum "
                  "10us");
    auto dist = workload_table::exp1();
    bench::compare_systems(*dist, rate_grid(mrps(1), mrps(14), 9), 10.0,
                           {"exp"}, bench::sweep_threads(argc, argv));
    return 0;
}
