/**
 * @file
 * Shared helpers for the figure-reproduction binaries.
 *
 * Every bench prints a self-describing header (paper figure, workload,
 * parameters) followed by tab-separated series that EXPERIMENTS.md
 * records. Durations scale through TQ_BENCH_DURATION_MS (default 60) so
 * CI can run fast while full runs stay one environment variable away.
 */
#ifndef TQ_BENCH_BENCH_UTIL_H
#define TQ_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/arrival.h"
#include "common/units.h"

namespace tq::bench {

/** Simulated arrival window for DES benches, from the environment. */
inline SimNanos
sim_duration()
{
    if (const char *env = std::getenv("TQ_BENCH_DURATION_MS")) {
        const double v = std::atof(env);
        if (v > 0)
            return ms(v);
    }
    return ms(60);
}

/**
 * Sweep parallelism for DES benches: the value of a `--sweep-threads=N`
 * argument, else the TQ_SWEEP_THREADS environment variable, else 1
 * (serial, the historical behavior). Points of a sweep are independent
 * simulations and serial/parallel results are bitwise identical (see
 * sim/sweep.h), so this only trades wall clock for cores.
 */
inline int
sweep_threads(int argc, char **argv)
{
    constexpr const char *kFlag = "--sweep-threads=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
            const int v = std::atoi(argv[i] + std::strlen(kFlag));
            if (v > 0)
                return v;
        }
    }
    if (const char *env = std::getenv("TQ_SWEEP_THREADS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return 1;
}

/**
 * Arrival process for the sim benches: `--arrival=onoff` selects the
 * default MMPP burst profile (4x base rate ON / 0.25x OFF, exponential
 * 50us phases — the scenario_burst_skew profile), anything else (or no
 * flag) keeps the byte-identical Poisson stream. The chosen process is
 * printed by banner-style benches so recorded tables are
 * self-describing.
 */
inline ArrivalSpec
arrival_spec(int argc, char **argv)
{
    ArrivalSpec spec;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--arrival=onoff") == 0) {
            spec.kind = ArrivalSpec::Kind::OnOff;
            spec.onoff.on_mult = 4.0;
            spec.onoff.off_mult = 0.25;
        }
    }
    return spec;
}

/** Human-readable name of an arrival spec for bench banners. */
inline const char *
arrival_name(const ArrivalSpec &spec)
{
    return spec.kind == ArrivalSpec::Kind::OnOff ? "onoff (MMPP 4x/0.25x)"
                                                 : "poisson";
}

/** Print the standard bench banner. */
inline void
banner(const char *id, const char *what)
{
    std::printf("# %s — %s\n", id, what);
    std::printf("# window: %.0f ms simulated; set TQ_BENCH_DURATION_MS to "
                "change\n",
                to_sec(sim_duration()) * 1e3);
}

/** "saturated" / value formatting for latency cells (us). */
inline std::string
cell_us(bool saturated, double value_ns)
{
    if (saturated)
        return "sat";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", value_ns / 1e3);
    return buf;
}

/** Format a plain double with %.3g. */
inline std::string
cell(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

} // namespace tq::bench

#endif // TQ_BENCH_BENCH_UTIL_H
