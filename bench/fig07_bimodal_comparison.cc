/**
 * @file
 * Paper Figure 7: TQ vs Shinjuku vs Caladan on the Extreme Bimodal and
 * High Bimodal workloads — 99.9% sojourn of short and long jobs vs
 * offered rate.
 *
 * Expected shape: Caladan's FCFS blows up short-job latency early
 * (head-of-line blocking) but carries long jobs well; Shinjuku preempts
 * but pays interrupt + centralized-dispatcher costs and saturates
 * earlier; TQ sustains the highest rate with low short-job latency
 * (paper: 2.6x Shinjuku / 2.1x Caladan on Extreme Bimodal shorts).
 */
#include <cstdio>

#include "system_compare.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    const int threads = bench::sweep_threads(argc, argv);
    bench::banner("Figure 7",
                  "TQ vs Shinjuku vs Caladan, bimodal workloads, 99.9% "
                  "sojourn (us)");
    {
        std::printf("## Extreme Bimodal (99.5%% x 0.5us, 0.5%% x 500us); "
                    "Shinjuku quantum 5us\n");
        auto dist = workload_table::extreme_bimodal();
        bench::compare_systems(*dist, rate_grid(mrps(0.5), mrps(4.75), 9),
                               5.0, {"Short", "Long"}, threads);
    }
    {
        std::printf("## High Bimodal (50%% x 1us, 50%% x 100us); Shinjuku "
                    "quantum 5us\n");
        auto dist = workload_table::high_bimodal();
        bench::compare_systems(*dist, rate_grid(mrps(0.04), mrps(0.30), 9),
                               5.0, {"Short", "Long"}, threads);
    }
    return 0;
}
