/**
 * @file
 * Paper Figure 7: TQ vs Shinjuku vs Caladan on the Extreme Bimodal and
 * High Bimodal workloads — 99.9% sojourn of short and long jobs vs
 * offered rate.
 *
 * Expected shape: Caladan's FCFS blows up short-job latency early
 * (head-of-line blocking) but carries long jobs well; Shinjuku preempts
 * but pays interrupt + centralized-dispatcher costs and saturates
 * earlier; TQ sustains the highest rate with low short-job latency
 * (paper: 2.6x Shinjuku / 2.1x Caladan on Extreme Bimodal shorts).
 */
#include <cstdio>

#include "system_compare.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    const int threads = bench::sweep_threads(argc, argv);
    bench::SystemOptions opts;
    opts.arrival = bench::arrival_spec(argc, argv);
    // Per-class TQ column (TQPC, DESIGN.md §4i): shorts get a quantum
    // covering their whole demand (one slice, no processor-sharing
    // requeues), longs are sliced finer than the 2us fixed quantum so
    // in-service blocking of shorts shrinks.
    opts.tq_class_quantum = {us(2), us(0.5)};
    bench::banner("Figure 7",
                  "TQ vs Shinjuku vs Caladan, bimodal workloads, 99.9% "
                  "sojourn (us)");
    std::printf("# arrival: %s; TQPC class quanta Short 2us, Long 0.5us\n",
                bench::arrival_name(opts.arrival));
    {
        std::printf("## Extreme Bimodal (99.5%% x 0.5us, 0.5%% x 500us); "
                    "Shinjuku quantum 5us\n");
        auto dist = workload_table::extreme_bimodal();
        bench::compare_systems(*dist, rate_grid(mrps(0.5), mrps(4.75), 9),
                               5.0, {"Short", "Long"}, threads, opts);
    }
    {
        std::printf("## High Bimodal (50%% x 1us, 50%% x 100us); Shinjuku "
                    "quantum 5us\n");
        auto dist = workload_table::high_bimodal();
        bench::compare_systems(*dist, rate_grid(mrps(0.04), mrps(0.30), 9),
                               5.0, {"Short", "Long"}, threads, opts);
    }
    return 0;
}
