/**
 * @file
 * Microbenchmarks of TQ's real mechanisms (google-benchmark).
 *
 * These numbers calibrate the simulator's Overheads (DESIGN.md): the
 * coroutine yield cost backs switch_overhead; the probe cost backs the
 * forced-multitasking overhead model; ring and JSQ-scan costs back
 * dispatch_cost. The paper's corresponding claims: stackful coroutine
 * yields in tens of ns (section 3.1), probes cost a partially-hidden
 * RDTSC, and the dispatcher does only per-job work (section 3.2).
 */
#include <benchmark/benchmark.h>

#include "common/cycles.h"
#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "coro/coroutine.h"
#include "probe/probe.h"
#include "runtime/worker_stats.h"

namespace {

using namespace tq;

void
BM_Rdcycles(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(rdcycles());
}
BENCHMARK(BM_Rdcycles);

void
BM_ProbeNotExpired(benchmark::State &state)
{
    // The fast path every instrumented job pays at each probe site.
    probe_state() = ProbeState{};
    arm_quantum(~Cycles{0} >> 1);
    for (auto _ : state)
        tq_probe();
    disarm_quantum();
}
BENCHMARK(BM_ProbeNotExpired);

void
BM_CoroutineYieldResume(benchmark::State &state)
{
    // One scheduler->task->scheduler round trip (two context switches):
    // the cost of a preemption under forced multitasking.
    Coroutine co([](Coroutine &self) {
        for (;;)
            self.yield();
    });
    for (auto _ : state)
        co.resume();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoroutineYieldResume);

void
BM_CoroutineCreateDestroy(benchmark::State &state)
{
    for (auto _ : state) {
        Coroutine co([](Coroutine &) {});
        co.resume();
        benchmark::DoNotOptimize(co.done());
    }
}
BENCHMARK(BM_CoroutineCreateDestroy);

void
BM_SpscRingPushPop(benchmark::State &state)
{
    SpscRing<uint64_t> ring(1024);
    uint64_t v = 0;
    for (auto _ : state) {
        ring.push(v++);
        benchmark::DoNotOptimize(ring.pop());
    }
}
BENCHMARK(BM_SpscRingPushPop);

void
BM_MpmcQueuePushPop(benchmark::State &state)
{
    MpmcQueue<uint64_t> q(1024);
    uint64_t v = 0;
    for (auto _ : state) {
        q.push(v++);
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_MpmcQueuePushPop);

void
BM_JsqScan16Workers(benchmark::State &state)
{
    // The dispatcher's per-job decision: scan 16 counter cache lines for
    // the shortest queue with MSQ tie-breaking (paper section 4).
    runtime::WorkerStatsLine lines[16];
    runtime::WorkerStatsReader readers[16];
    uint64_t assigned[16] = {};
    for (int i = 0; i < 16; ++i)
        lines[i].finished.store(static_cast<uint32_t>(i * 3));
    for (auto _ : state) {
        uint64_t best_len = ~0ULL;
        int best = 0;
        uint32_t best_q = 0;
        for (int i = 0; i < 16; ++i) {
            const uint64_t len =
                assigned[i] - readers[i].read_finished(lines[i]);
            const uint32_t q =
                runtime::WorkerStatsReader::read_current_quanta(lines[i]);
            if (len < best_len || (len == best_len && q > best_q)) {
                best_len = len;
                best = i;
                best_q = q;
            }
        }
        benchmark::DoNotOptimize(best);
        ++assigned[best];
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsqScan16Workers);

void
BM_PreemptGuard(benchmark::State &state)
{
    probe_state() = ProbeState{};
    for (auto _ : state) {
        PreemptGuard guard;
        benchmark::DoNotOptimize(&guard);
    }
}
BENCHMARK(BM_PreemptGuard);

} // namespace

BENCHMARK_MAIN();
