/**
 * @file
 * Microbenchmarks of TQ's real mechanisms (google-benchmark).
 *
 * These numbers calibrate the simulator's Overheads (DESIGN.md): the
 * coroutine yield cost backs switch_overhead; the probe cost backs the
 * forced-multitasking overhead model; ring and JSQ-scan costs back
 * dispatch_cost. The paper's corresponding claims: stackful coroutine
 * yields in tens of ns (section 3.1), probes cost a partially-hidden
 * RDTSC, and the dispatcher does only per-job work (section 3.2).
 *
 * The BM_Telemetry* group prices the observability layer's hot-path
 * operations; OBSERVABILITY.md quotes these as the per-event overhead
 * budget. Build with -DTQ_TELEMETRY=OFF and compare BM_ProbeNotExpired
 * to bound the probe-cost regression of the always-compiled state.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "common/cycles.h"
#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "coro/coroutine.h"
#include "probe/probe.h"
#include "runtime/dispatch_view.h"
#include "runtime/worker_stats.h"
#include "telemetry/telemetry.h"

namespace {

using namespace tq;

void
BM_Rdcycles(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(rdcycles());
}
BENCHMARK(BM_Rdcycles);

void
BM_ProbeNotExpired(benchmark::State &state)
{
    // The fast path every instrumented job pays at each probe site.
    probe_state() = ProbeState{};
    arm_quantum(~Cycles{0} >> 1);
    for (auto _ : state)
        tq_probe();
    disarm_quantum();
}
BENCHMARK(BM_ProbeNotExpired);

void
BM_CoroutineYieldResume(benchmark::State &state)
{
    // One scheduler->task->scheduler round trip (two context switches):
    // the cost of a preemption under forced multitasking.
    Coroutine co([](Coroutine &self) {
        for (;;)
            self.yield();
    });
    for (auto _ : state)
        co.resume();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoroutineYieldResume);

void
BM_CoroutineCreateDestroy(benchmark::State &state)
{
    for (auto _ : state) {
        Coroutine co([](Coroutine &) {});
        co.resume();
        benchmark::DoNotOptimize(co.done());
    }
}
BENCHMARK(BM_CoroutineCreateDestroy);

void
BM_SpscRingPushPop(benchmark::State &state)
{
    SpscRing<uint64_t> ring(1024);
    uint64_t v = 0;
    for (auto _ : state) {
        ring.push(v++);
        benchmark::DoNotOptimize(ring.pop());
    }
}
BENCHMARK(BM_SpscRingPushPop);

void
BM_MpmcQueuePushPop(benchmark::State &state)
{
    MpmcQueue<uint64_t> q(1024);
    uint64_t v = 0;
    for (auto _ : state) {
        q.push(v++);
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_MpmcQueuePushPop);

void
BM_RingBatchPushPop(benchmark::State &state)
{
    // Batched SPSC transfer: push_n/pop_n move the whole batch with one
    // index acquire/release pair each. Per-item cost vs the scalar
    // BM_SpscRingPushPop is the batching win; Arg is the batch size
    // (Arg 1 prices the batch-API overhead itself).
    const size_t k = static_cast<size_t>(state.range(0));
    SpscRing<uint64_t> ring(1024);
    std::vector<uint64_t> src(k), dst(k);
    uint64_t v = 0;
    for (size_t i = 0; i < k; ++i)
        src[i] = v++;
    for (auto _ : state) {
        ring.push_n(src.data(), k);
        benchmark::DoNotOptimize(ring.pop_n(dst.data(), k));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(k));
}
BENCHMARK(BM_RingBatchPushPop)->Arg(1)->Arg(8)->Arg(32);

void
BM_RingPopInto(benchmark::State &state)
{
    // In-place scalar pop: no std::optional wrapper on the hot path.
    SpscRing<uint64_t> ring(1024);
    uint64_t v = 0, out = 0;
    for (auto _ : state) {
        ring.push(v++);
        ring.pop_into(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPopInto);

void
BM_MpmcPopN(benchmark::State &state)
{
    // Batched MPMC dequeue: one CAS on the contended cursor per batch
    // (the dispatcher's RX pop). Arg is the batch size.
    const size_t k = static_cast<size_t>(state.range(0));
    MpmcQueue<uint64_t> q(1024);
    std::vector<uint64_t> dst(k);
    uint64_t v = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < k; ++i)
            q.push(v++);
        benchmark::DoNotOptimize(q.pop_n(dst.data(), k));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(k));
}
BENCHMARK(BM_MpmcPopN)->Arg(1)->Arg(8)->Arg(32);

void
BM_JsqScan16Workers(benchmark::State &state)
{
    // The dispatcher's per-job decision: scan 16 counter cache lines for
    // the shortest queue with MSQ tie-breaking (paper section 4).
    runtime::WorkerStatsLine lines[16];
    runtime::WorkerStatsReader readers[16];
    uint64_t assigned[16] = {};
    for (int i = 0; i < 16; ++i)
        lines[i].finished.store(static_cast<uint32_t>(i * 3));
    for (auto _ : state) {
        uint64_t best_len = ~0ULL;
        int best = 0;
        uint32_t best_q = 0;
        for (int i = 0; i < 16; ++i) {
            const uint64_t len =
                assigned[i] - readers[i].read_finished(lines[i]);
            const uint32_t q =
                runtime::WorkerStatsReader::read_current_quanta(lines[i]);
            if (len < best_len || (len == best_len && q > best_q)) {
                best_len = len;
                best = i;
                best_q = q;
            }
        }
        benchmark::DoNotOptimize(best);
        ++assigned[best];
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsqScan16Workers);

void
BM_DispatchBatchAmortized(benchmark::State &state)
{
    // The batched dispatcher's per-request decision (runtime.cc): the
    // 16 shared counter lines are read once per batch into a local
    // view; each request then scans/bumps only that local view. Arg is
    // the batch size; Arg 1 reproduces the per-request refresh cost of
    // the unbatched path (compare BM_JsqScan16Workers).
    const size_t k = static_cast<size_t>(state.range(0));
    constexpr int kWorkers = 16;
    runtime::WorkerStatsLine lines[kWorkers];
    runtime::WorkerStatsReader readers[kWorkers];
    uint64_t assigned[kWorkers] = {};
    uint64_t len_view[kWorkers] = {};
    uint32_t quanta_view[kWorkers] = {};
    for (int i = 0; i < kWorkers; ++i)
        lines[i].finished.store(static_cast<uint32_t>(i * 3));
    for (auto _ : state) {
        // Batch boundary: one pass over the shared lines.
        for (int i = 0; i < kWorkers; ++i) {
            const uint64_t fin = readers[i].read_finished(lines[i]);
            len_view[i] = assigned[i] > fin ? assigned[i] - fin : 0;
            quanta_view[i] =
                runtime::WorkerStatsReader::read_current_quanta(lines[i]);
        }
        // Per-request work: local-view JSQ+MSQ scan + incremental bump.
        for (size_t j = 0; j < k; ++j) {
            uint64_t best_len = ~0ULL;
            int best = 0;
            uint32_t best_q = 0;
            for (int i = 0; i < kWorkers; ++i) {
                if (len_view[i] < best_len ||
                    (len_view[i] == best_len && quanta_view[i] > best_q)) {
                    best_len = len_view[i];
                    best = i;
                    best_q = quanta_view[i];
                }
            }
            benchmark::DoNotOptimize(best);
            ++len_view[best];
            ++assigned[best];
            lines[best].finished.fetch_add(1, std::memory_order_relaxed);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(k));
}
BENCHMARK(BM_DispatchBatchAmortized)->Arg(1)->Arg(8)->Arg(32);

void
BM_JsqPickPacked(benchmark::State &state)
{
    // The packed per-request decision (runtime/dispatch_view.h), pick +
    // bump. Arg is the worker count: at 16 the lengths are exactly one
    // line and the adaptive pick takes the single-pass scan; at 64 it
    // takes the SIMD horizontal min + movemask tie walk.
    const size_t n = static_cast<size_t>(state.range(0));
    runtime::DispatchView view(n);
    for (size_t i = 0; i < n; ++i) {
        view.set_len(i, i % 4);
        view.set_quanta(i, static_cast<uint32_t>(i));
    }
    for (auto _ : state) {
        const int best = view.pick_jsq_msq();
        benchmark::DoNotOptimize(best);
        view.bump_len(static_cast<size_t>(best));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsqPickPacked)->Arg(16)->Arg(64);

void
BM_JsqPickPackedScalar(benchmark::State &state)
{
    // The portable two-pass oracle over the same packed lanes: the
    // property-test reference every shipped pick must match exactly.
    const size_t n = static_cast<size_t>(state.range(0));
    runtime::DispatchView view(n);
    for (size_t i = 0; i < n; ++i) {
        view.set_len(i, i % 4);
        view.set_quanta(i, static_cast<uint32_t>(i));
    }
    for (auto _ : state) {
        const int best = view.pick_jsq_msq_scalar();
        benchmark::DoNotOptimize(best);
        view.bump_len(static_cast<size_t>(best));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsqPickPackedScalar)->Arg(16)->Arg(64);

/**
 * The tournament-tree alternative the issue asked to bench against: an
 * implicit binary tree of winner indices over the leaves, O(log n)
 * replay per update instead of an O(n) sweep. Kept bench-local: it
 * loses at one-line width (the paper's 16-worker configuration) and
 * only wins from ~64 lanes, and it would force stateful updates into
 * DispatchView's refresh path (see BENCH_dispatch.json and
 * docs/cache_line_analysis.md §"Picking the pick").
 */
class TournamentPick
{
  public:
    explicit TournamentPick(size_t n) : n_(n)
    {
        leaves_ = 1;
        while (leaves_ < n)
            leaves_ <<= 1;
        len_.assign(leaves_, ~0u);
        quanta_.assign(leaves_, 0);
        winner_.assign(2 * leaves_, 0);
        for (size_t i = 0; i < n_; ++i)
            len_[i] = 0;
        for (size_t i = 0; i < leaves_; ++i)
            winner_[leaves_ + i] = i;
        for (size_t node = leaves_ - 1; node >= 1; --node)
            winner_[node] =
                better(winner_[2 * node], winner_[2 * node + 1]);
    }

    size_t pick() const { return winner_[1]; }

    void
    update(size_t i, uint32_t len, uint32_t quanta)
    {
        len_[i] = len;
        quanta_[i] = quanta;
        for (size_t node = (leaves_ + i) / 2; node >= 1; node /= 2)
            winner_[node] =
                better(winner_[2 * node], winner_[2 * node + 1]);
    }

    uint32_t len(size_t i) const { return len_[i]; }
    uint32_t quanta(size_t i) const { return quanta_[i]; }

  private:
    size_t
    better(size_t a, size_t b) const
    {
        if (len_[a] != len_[b])
            return len_[a] < len_[b] ? a : b;
        if (quanta_[a] != quanta_[b])
            return quanta_[a] > quanta_[b] ? a : b;
        return a < b ? a : b;
    }

    size_t n_;
    size_t leaves_;
    std::vector<uint32_t> len_;
    std::vector<uint32_t> quanta_;
    std::vector<size_t> winner_;
};

void
BM_JsqPickTournament(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    TournamentPick tree(n);
    for (size_t i = 0; i < n; ++i)
        tree.update(i, static_cast<uint32_t>(i % 4),
                    static_cast<uint32_t>(i));
    for (auto _ : state) {
        const size_t best = tree.pick();
        benchmark::DoNotOptimize(best);
        tree.update(best, tree.len(best) + 1, tree.quanta(best));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsqPickTournament)->Arg(16)->Arg(64);

void
BM_DispatchBatchPacked(benchmark::State &state)
{
    // BM_DispatchBatchAmortized with the packed view: one counter-line
    // refresh into DispatchView per batch, then packed picks. This is the
    // shipped dispatcher_main() hot path; Arg is the batch size.
    const size_t k = static_cast<size_t>(state.range(0));
    constexpr int kWorkers = 16;
    runtime::WorkerStatsLine lines[kWorkers];
    runtime::WorkerStatsReader readers[kWorkers];
    uint64_t assigned[kWorkers] = {};
    runtime::DispatchView view(kWorkers);
    for (int i = 0; i < kWorkers; ++i)
        lines[i].finished.store(static_cast<uint32_t>(i * 3));
    for (auto _ : state) {
        // Batch boundary: one pass over the shared lines.
        for (int i = 0; i < kWorkers; ++i) {
            const size_t i_w = static_cast<size_t>(i);
            const uint64_t fin = readers[i].read_finished(lines[i]);
            view.set_len(i_w,
                         assigned[i] > fin ? assigned[i] - fin : 0);
            view.set_quanta(
                i_w,
                runtime::WorkerStatsReader::read_current_quanta(lines[i]));
        }
        // Per-request work: packed pick + saturating bump.
        for (size_t j = 0; j < k; ++j) {
            const int best = view.pick_jsq_msq();
            benchmark::DoNotOptimize(best);
            view.bump_len(static_cast<size_t>(best));
            ++assigned[best];
            lines[best].finished.fetch_add(1, std::memory_order_relaxed);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(k));
}
BENCHMARK(BM_DispatchBatchPacked)->Arg(1)->Arg(8)->Arg(32);

void
BM_PreemptGuard(benchmark::State &state)
{
    probe_state() = ProbeState{};
    for (auto _ : state) {
        PreemptGuard guard;
        benchmark::DoNotOptimize(&guard);
    }
}
BENCHMARK(BM_PreemptGuard);

void
BM_TelemetryCounterInc(benchmark::State &state)
{
    // One relaxed fetch_add on a cache-line-padded per-worker counter:
    // what a recording site pays besides the branch on telem != nullptr.
    telemetry::WorkerCounters counters;
    for (auto _ : state)
        counters.quanta.fetch_add(1, std::memory_order_relaxed);
    benchmark::DoNotOptimize(
        counters.quanta.load(std::memory_order_relaxed));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterInc);

void
BM_TelemetryHistogramAdd(benchmark::State &state)
{
    // Bucket index (clz) + three relaxed fetch_adds.
    telemetry::CycleHistogram hist;
    uint64_t v = 1;
    for (auto _ : state) {
        hist.add(v);
        v = v * 2862933555777941757ULL + 3037000493ULL; // cheap LCG
    }
    benchmark::DoNotOptimize(hist.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryHistogramAdd);

void
BM_TelemetryTraceRecord(benchmark::State &state)
{
    // RDTSC stamp + SPSC push. Sized so the ring never fills: this is
    // the fast-path cost, not the drop path.
    telemetry::TraceRing ring(0, 1 << 20);
    uint64_t job = 0;
    std::vector<telemetry::TraceEvent> sink;
    for (auto _ : state) {
        ring.record(telemetry::EventKind::QuantumStart, job++);
        if ((job & ((1u << 19) - 1)) == 0) { // drain before wrap
            state.PauseTiming();
            sink.clear();
            ring.drain(sink);
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryTraceRecord);

void
BM_TelemetryTraceRecordFull(benchmark::State &state)
{
    // Overflow path: ring stays full, every record drops. Must stay
    // cheap and never block (the runtime keeps running blind).
    telemetry::TraceRing ring(0, 8);
    for (int i = 0; i < 8; ++i)
        ring.record(telemetry::EventKind::QuantumStart, 0);
    for (auto _ : state)
        ring.record(telemetry::EventKind::QuantumStart, 1);
    benchmark::DoNotOptimize(ring.dropped());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryTraceRecordFull);

void
BM_TelemetrySnapshot(benchmark::State &state)
{
    // Full registry snapshot with populated histograms: the cost the
    // *observer* pays, amortised over however often it polls. Workers
    // pay nothing.
    telemetry::MetricsRegistry reg(16, 64);
    for (int w = 0; w < 16; ++w) {
        auto &wt = reg.worker(w);
        for (uint64_t i = 0; i < 1000; ++i) {
            wt.queue_cycles.add(i * 97);
            wt.service_cycles.add(i * 13);
        }
    }
    for (auto _ : state) {
        const telemetry::MetricsSnapshot snap = reg.snapshot();
        benchmark::DoNotOptimize(snap.quanta);
    }
}
BENCHMARK(BM_TelemetrySnapshot);

} // namespace

BENCHMARK_MAIN();
