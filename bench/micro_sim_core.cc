/**
 * @file
 * Microbenchmark for the shared simulator event core (sim/event_core.h)
 * and the parallel sweep executor (sim/sweep.h).
 *
 * Part 1 — event queue: the classic hold model (pop the earliest event,
 * push a successor a small exponential jitter later), which is exactly
 * the near-FIFO pattern the cluster simulators generate. Compares the
 * engines' old machinery — `std::priority_queue` over 24-byte events
 * with a (time, seq) comparator, replicated here verbatim as the
 * baseline — against the packed 4-ary EventQueue, at steady queue sizes
 * of 1K/100K/1M events. Both sides consume the same RNG stream and the
 * popped-time checksums must match, which doubles as an ordering check.
 *
 * Part 2 — sweep wall-clock: the Figure 5/6 grid (5 quanta x 9 rates,
 * two-level engine, Extreme Bimodal) timed serially and with the
 * thread-pool backend (--sweep-threads=N, default 8). On a single-core
 * host the parallel time approximately equals the serial time.
 *
 * `--json` emits a machine-readable document (recorded as
 * BENCH_sim.json, rendered by tools/plot_bench.py); the default output
 * is the usual TSV tables.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <queue>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "common/rng.h"
#include "sim/event_core.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

namespace {

/**
 * The event representation every engine owned before the event-core
 * refactor: 24 bytes after padding, ordered by (time, seq) through a
 * std::greater min-heap. Kept only as the benchmark baseline.
 */
struct LegacyEvent
{
    SimNanos time;
    uint8_t kind;
    int core;
    uint64_t seq;

    bool
    operator>(const LegacyEvent &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

struct HoldResult
{
    double events_per_sec;
    double checksum; ///< sum of popped times; must match across queues
};

double
now_sec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Pre-drawn exponential jitters so the timed loop measures queue
 * operations, not log1p(); both queues consume the identical sequence.
 */
std::vector<SimNanos>
jitter_table(SimNanos mean)
{
    Rng rng(7);
    std::vector<SimNanos> jit(1u << 20);
    for (SimNanos &j : jit)
        j = rng.exponential(mean);
    return jit;
}

HoldResult
hold_legacy(size_t queue_size, size_t ops,
            const std::vector<SimNanos> &jit)
{
    std::priority_queue<LegacyEvent, std::vector<LegacyEvent>,
                        std::greater<LegacyEvent>>
        q;
    uint64_t seq = 0;
    size_t j = 0;
    const size_t mask = jit.size() - 1;
    SimNanos t = 0;
    for (size_t i = 0; i < queue_size; ++i) {
        t += jit[j++ & mask];
        q.push(LegacyEvent{t, 0, static_cast<int>(i & 15), seq++});
    }
    double checksum = 0;
    const double start = now_sec();
    for (size_t i = 0; i < ops; ++i) {
        const LegacyEvent ev = q.top();
        q.pop();
        checksum += ev.time;
        q.push(LegacyEvent{ev.time + jit[j++ & mask], 0, ev.core, seq++});
    }
    const double secs = now_sec() - start;
    return HoldResult{static_cast<double>(ops) / secs, checksum};
}

HoldResult
hold_new(size_t queue_size, size_t ops, const std::vector<SimNanos> &jit)
{
    EventQueue q;
    q.reserve(queue_size + 1);
    size_t j = 0;
    const size_t mask = jit.size() - 1;
    SimNanos t = 0;
    for (size_t i = 0; i < queue_size; ++i) {
        t += jit[j++ & mask];
        q.push(t, 0, static_cast<int>(i & 15));
    }
    double checksum = 0;
    const double start = now_sec();
    for (size_t i = 0; i < ops; ++i) {
        const EventQueue::Popped ev = q.pop();
        checksum += ev.time;
        q.push(ev.time + jit[j++ & mask], 0, ev.core);
    }
    const double secs = now_sec() - start;
    return HoldResult{static_cast<double>(ops) / secs, checksum};
}

/** The Figure 5/6 grid as one timed unit. */
double
time_fig_grid(const ServiceDist &dist, int threads)
{
    const std::vector<double> quanta_us = {0.5, 1, 2, 5, 10};
    const auto rates = rate_grid(mrps(0.5), mrps(4.75), 9);
    struct Cell
    {
        TwoLevelConfig cfg;
        double rate;
    };
    std::vector<Cell> cells;
    for (double rate : rates) {
        for (double q : quanta_us) {
            Cell c;
            c.cfg.quantum = us(q);
            c.cfg.overheads = Overheads::tq_default();
            c.cfg.duration = bench::sim_duration();
            c.cfg.stop_when_saturated = true;
            c.rate = rate;
            cells.push_back(c);
        }
    }
    std::vector<SimResult> results(cells.size());
    const double start = now_sec();
    parallel_run(cells.size(), threads, [&](size_t i) {
        results[i] = run_two_level(cells[i].cfg, dist, cells[i].rate);
    });
    return now_sec() - start;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
    int threads = bench::sweep_threads(argc, argv);
    if (threads <= 1)
        threads = 8; // the comparison needs a parallel arm

    const auto jit = jitter_table(us(2));
    const std::vector<size_t> sizes = {1000, 100000, 1000000, 4000000};

    struct Row
    {
        size_t size;
        double legacy_meps;
        double new_meps;
        double speedup;
    };
    std::vector<Row> rows;
    for (size_t n : sizes) {
        const size_t ops = n >= 1000000 ? 2000000 : 4000000;
        const HoldResult legacy = hold_legacy(n, ops, jit);
        const HoldResult fresh = hold_new(n, ops, jit);
        TQ_CHECK(legacy.checksum == fresh.checksum);
        rows.push_back(Row{n, legacy.events_per_sec / 1e6,
                           fresh.events_per_sec / 1e6,
                           fresh.events_per_sec / legacy.events_per_sec});
    }

    auto dist = workload_table::extreme_bimodal();
    const double serial_sec = time_fig_grid(*dist, 1);
    const double parallel_sec = time_fig_grid(*dist, threads);

    if (json) {
        char date[32];
        const std::time_t t = std::time(nullptr);
        std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&t));
        std::printf("{\n");
        std::printf(
            "  \"description\": \"Simulator event-core microbenchmark: "
            "hold-model events/sec of the old std::priority_queue event "
            "machinery vs the packed 4-ary EventQueue, plus the Figure "
            "5/6 grid wall-clock serial vs --sweep-threads=%d.\",\n",
            threads);
        std::printf("  \"date\": \"%s\",\n", date);
        std::printf("  \"config\": { \"jitter_mean_us\": 2.0, "
                    "\"window_ms\": %.0f, \"sweep_threads\": %d },\n",
                    to_sec(bench::sim_duration()) * 1e3, threads);
        std::printf("  \"event_queue_hold\": [\n");
        for (size_t i = 0; i < rows.size(); ++i)
            std::printf("    { \"queue_size\": %zu, "
                        "\"legacy_meps\": %.1f, \"new_meps\": %.1f, "
                        "\"speedup\": %.2f }%s\n",
                        rows[i].size, rows[i].legacy_meps,
                        rows[i].new_meps, rows[i].speedup,
                        i + 1 < rows.size() ? "," : "");
        std::printf("  ],\n");
        std::printf("  \"fig_grid_wall_clock\": { \"serial_sec\": %.2f, "
                    "\"threads_sec\": %.2f, \"speedup\": %.2f }\n",
                    serial_sec, parallel_sec, serial_sec / parallel_sec);
        std::printf("}\n");
        return 0;
    }

    bench::banner("micro_sim_core",
                  "event-queue hold model (old pq vs EventQueue) and "
                  "figure-grid wall clock (serial vs threads)");
    std::printf("queue_size\tlegacy_Meps\tnew_Meps\tspeedup\n");
    for (const Row &r : rows)
        std::printf("%zu\t%.1f\t%.1f\t%.2f\n", r.size, r.legacy_meps,
                    r.new_meps, r.speedup);
    std::printf("## fig05_06 grid wall clock\nmode\tseconds\n");
    std::printf("serial\t%.2f\nthreads%d\t%.2f\nspeedup\t%.2f\n", serial_sec,
                threads, parallel_sec, serial_sec / parallel_sec);
    return 0;
}
