/**
 * @file
 * Per-class and adaptive quanta study (DESIGN.md §4i): does giving each
 * workload class its own quantum — statically, or discovered online by
 * the QuantumController — beat the best single fixed quantum?
 *
 * For High Bimodal and TPC-C at a fixed non-saturated rate:
 *
 *  - Fixed sweep: the classic single quantum over {0.5, 1, 2, 5, 10}us;
 *    the best point (lowest short-class p999 slowdown, non-saturated)
 *    is the baseline per-class quanta must beat.
 *  - Per-class static: hand-picked class quanta (shorts complete in one
 *    slice, longs are sliced fine) with the deficit/starvation mirror.
 *  - Adaptive: the runtime's QuantumController iterated over simulation
 *    rounds — each round runs the cluster with the controller's current
 *    quanta and feeds back per-class completions / mean service / p99
 *    sojourn until the quanta stop moving.
 *
 * The acceptance gate (ISSUE 10): per-class and adaptive improve the
 * short class's p999 slowdown versus the best fixed quantum while
 * keeping long-class throughput within 5%. `--json` emits the document
 * recorded as BENCH_quanta.json (rendered by tools/plot_bench.py); the
 * default output is self-describing TSV.
 */
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "runtime/quantum_controller.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;

namespace {

/** One measured scheduling arm. */
struct Arm
{
    double quantum_us = 0;       ///< fixed arm only
    std::vector<double> quanta_us; ///< per-class arms
    double short_p999_slowdown = 0;
    double short_p999_us = 0;
    uint64_t long_completed = 0;
    bool saturated = false;
    int rounds = 0;              ///< adaptive arm only
};

struct Workload
{
    const char *name;
    std::unique_ptr<ServiceDist> dist;
    std::vector<double> mean_service_us; ///< per class, from Table 1
    std::vector<SimNanos> per_class;     ///< hand-picked static quanta
    double rate_mrps;
    size_t short_cls;
    size_t long_cls;
};

sim::SimResult
run_arm(const Workload &w, const std::vector<SimNanos> &class_quantum,
        double fixed_quantum_us)
{
    sim::TwoLevelConfig cfg;
    cfg.quantum = us(fixed_quantum_us);
    cfg.duration = bench::sim_duration();
    cfg.class_quantum = class_quantum;
    if (!class_quantum.empty()) {
        cfg.deficit_clamp = us(8);
        cfg.starvation_promote_after = 128;
    }
    return run_two_level(cfg, *w.dist, mrps(w.rate_mrps));
}

Arm
measure(const Workload &w, const sim::SimResult &r)
{
    Arm a;
    a.short_p999_slowdown = r.classes.at(w.short_cls).p999_slowdown;
    a.short_p999_us = to_us(r.classes.at(w.short_cls).p999_sojourn);
    a.long_completed = r.classes.at(w.long_cls).completed;
    a.saturated = r.saturated;
    return a;
}

/**
 * Adaptive arm: iterate the runtime's controller against fresh
 * simulation windows. Each round is an independent deterministic run
 * (same seed) under the controller's current quanta, so successive
 * rounds isolate the effect of the quanta alone; convergence is "the
 * controller stopped moving them".
 */
Arm
adaptive_arm(const Workload &w, int max_rounds)
{
    const size_t n = w.dist->class_names().size();
    runtime::QuantumControllerConfig qc;
    // Tight SLO: keep shrinking the other classes' quanta while the
    // short class's p99 slowdown is above 1.5x (dead band [1.2, 1.5]) —
    // the default 5x is a production guard-rail, far too lax to steer
    // these non-saturated sweeps anywhere interesting.
    qc.target_slowdown = 1.5;
    runtime::QuantumController ctrl(qc, std::vector<double>(n, 2.0));
    Arm a;
    sim::SimResult last;
    for (int round = 0; round < max_rounds; ++round) {
        std::vector<SimNanos> q(n);
        for (size_t c = 0; c < n; ++c)
            q[c] = us(ctrl.quanta_us()[c]);
        last = run_arm(w, q, 2.0);
        a.rounds = round + 1;
        std::vector<runtime::ClassObservation> obs(n);
        for (size_t c = 0; c < n; ++c) {
            obs[c].completed = last.classes.at(c).completed;
            obs[c].mean_service_us = w.mean_service_us[c];
            obs[c].p99_sojourn_us = to_us(last.classes.at(c).p99_sojourn);
        }
        if (!ctrl.update(obs))
            break;
    }
    Arm m = measure(w, last);
    m.rounds = a.rounds;
    m.quanta_us = ctrl.quanta_us();
    return m;
}

std::string
quanta_str(const std::vector<double> &q)
{
    std::string s;
    char buf[32];
    for (size_t i = 0; i < q.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%.2f", i ? "/" : "", q[i]);
        s += buf;
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
    const int threads = bench::sweep_threads(argc, argv);

    const std::vector<double> fixed_grid = {0.5, 1, 2, 5, 10};
    std::vector<Workload> loads;
    loads.push_back({"high_bimodal", workload_table::high_bimodal(),
                     {1, 100},
                     {us(2), us(0.5)},
                     0.24, 0, 1});
    loads.push_back({"tpcc", workload_table::tpcc(),
                     {5.7, 6, 20, 88, 100},
                     {us(6), us(6), us(5), us(1), us(1)},
                     0.60, 0, 4});

    // All fixed points and the static per-class arm are independent
    // simulations; the adaptive arm is inherently sequential.
    std::vector<std::vector<Arm>> fixed(loads.size());
    std::vector<Arm> per_class(loads.size()), adaptive(loads.size());
    for (auto &f : fixed)
        f.resize(fixed_grid.size());
    sim::parallel_run(
        loads.size() * (fixed_grid.size() + 1), threads, [&](size_t i) {
            const Workload &w = loads[i / (fixed_grid.size() + 1)];
            const size_t j = i % (fixed_grid.size() + 1);
            if (j < fixed_grid.size()) {
                Arm &a = fixed[i / (fixed_grid.size() + 1)][j];
                a = measure(w, run_arm(w, {}, fixed_grid[j]));
                a.quantum_us = fixed_grid[j];
            } else {
                Arm &a = per_class[i / (fixed_grid.size() + 1)];
                a = measure(w, run_arm(w, w.per_class, 2.0));
                for (const SimNanos q : w.per_class)
                    a.quanta_us.push_back(to_us(q));
            }
        });
    for (size_t l = 0; l < loads.size(); ++l)
        adaptive[l] = adaptive_arm(loads[l], 8);

    // Best fixed point: lowest non-saturated short-class p999 slowdown.
    std::vector<size_t> best(loads.size(), 0);
    for (size_t l = 0; l < loads.size(); ++l)
        for (size_t j = 1; j < fixed_grid.size(); ++j) {
            const Arm &a = fixed[l][j];
            const Arm &b = fixed[l][best[l]];
            if (b.saturated ||
                (!a.saturated &&
                 a.short_p999_slowdown < b.short_p999_slowdown))
                best[l] = j;
        }

    if (json) {
        char date[32];
        const std::time_t t = std::time(nullptr);
        std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&t));
        std::printf("{\n");
        std::printf(
            "  \"description\": \"Per-class and adaptive quanta vs the "
            "best single fixed quantum (two-level sim, calibrated "
            "overheads): short-class p999 slowdown and long-class "
            "completions at a fixed non-saturated rate. Gate: per-class "
            "and adaptive beat the best fixed short-class slowdown with "
            "long-class throughput within 5%%.\",\n");
        std::printf("  \"date\": \"%s\",\n", date);
        std::printf("  \"machine\": { \"cpus\": %u },\n",
                    std::thread::hardware_concurrency());
        std::printf("  \"config\": { \"window_ms\": %.0f, "
                    "\"deficit_clamp_us\": 8, "
                    "\"starvation_promote_after\": 128, "
                    "\"adaptive_rounds_max\": 8 },\n",
                    to_sec(bench::sim_duration()) * 1e3);
        std::printf("  \"workloads\": {\n");
        for (size_t l = 0; l < loads.size(); ++l) {
            const Workload &w = loads[l];
            const Arm &bf = fixed[l][best[l]];
            std::printf("    \"%s\": {\n", w.name);
            std::printf("      \"rate_mrps\": %.2f, \"short_class\": "
                        "\"%s\", \"long_class\": \"%s\",\n",
                        w.rate_mrps,
                        w.dist->class_names()[w.short_cls].c_str(),
                        w.dist->class_names()[w.long_cls].c_str());
            std::printf("      \"fixed\": [\n");
            for (size_t j = 0; j < fixed_grid.size(); ++j) {
                const Arm &a = fixed[l][j];
                std::printf(
                    "        { \"quantum_us\": %.1f, "
                    "\"short_p999_slowdown\": %.2f, \"short_p999_us\": "
                    "%.2f, \"long_completed\": %llu, \"saturated\": %s "
                    "}%s\n",
                    a.quantum_us, a.short_p999_slowdown, a.short_p999_us,
                    static_cast<unsigned long long>(a.long_completed),
                    a.saturated ? "true" : "false",
                    j + 1 < fixed_grid.size() ? "," : "");
            }
            std::printf("      ],\n");
            std::printf("      \"best_fixed_quantum_us\": %.1f,\n",
                        bf.quantum_us);
            const auto arm_obj = [&](const char *key, const Arm &a,
                                     bool last) {
                const double thr_ratio =
                    bf.long_completed
                        ? static_cast<double>(a.long_completed) /
                              static_cast<double>(bf.long_completed)
                        : 0;
                std::printf(
                    "      \"%s\": { \"quanta_us\": \"%s\", "
                    "\"short_p999_slowdown\": %.2f, \"short_p999_us\": "
                    "%.2f, \"long_completed\": %llu, "
                    "\"slowdown_vs_best_fixed\": %.3f, "
                    "\"long_throughput_ratio\": %.3f%s, \"saturated\": "
                    "%s }%s\n",
                    key, quanta_str(a.quanta_us).c_str(),
                    a.short_p999_slowdown, a.short_p999_us,
                    static_cast<unsigned long long>(a.long_completed),
                    bf.short_p999_slowdown
                        ? a.short_p999_slowdown / bf.short_p999_slowdown
                        : 0,
                    thr_ratio,
                    a.rounds
                        ? (", \"rounds\": " + std::to_string(a.rounds))
                              .c_str()
                        : "",
                    a.saturated ? "true" : "false", last ? "" : ",");
            };
            arm_obj("per_class", per_class[l], false);
            arm_obj("adaptive", adaptive[l], true);
            std::printf("    }%s\n", l + 1 < loads.size() ? "," : "");
        }
        std::printf("  }\n}\n");
        return 0;
    }

    bench::banner("quanta_adaptive",
                  "per-class + adaptive quanta vs best fixed quantum "
                  "(short-class p999 slowdown, long-class completions)");
    for (size_t l = 0; l < loads.size(); ++l) {
        const Workload &w = loads[l];
        std::printf("## %s @ %.2f Mrps (short=%s, long=%s)\n", w.name,
                    w.rate_mrps,
                    w.dist->class_names()[w.short_cls].c_str(),
                    w.dist->class_names()[w.long_cls].c_str());
        std::printf("arm\tquanta_us\tshort_p999_slowdown\tshort_p999_us"
                    "\tlong_completed\n");
        for (size_t j = 0; j < fixed_grid.size(); ++j) {
            const Arm &a = fixed[l][j];
            std::printf("fixed%s\t%.1f\t%s\t%s\t%llu\n",
                        j == best[l] ? "*" : "", a.quantum_us,
                        a.saturated ? "sat"
                                    : bench::cell(a.short_p999_slowdown)
                                          .c_str(),
                        bench::cell(a.short_p999_us).c_str(),
                        static_cast<unsigned long long>(a.long_completed));
        }
        const auto row = [&](const char *key, const Arm &a) {
            std::printf("%s\t%s\t%s\t%s\t%llu\n", key,
                        quanta_str(a.quanta_us).c_str(),
                        a.saturated ? "sat"
                                    : bench::cell(a.short_p999_slowdown)
                                          .c_str(),
                        bench::cell(a.short_p999_us).c_str(),
                        static_cast<unsigned long long>(a.long_completed));
        };
        row("per_class", per_class[l]);
        row("adaptive", adaptive[l]);
        if (adaptive[l].rounds)
            std::printf("# adaptive converged after %d round(s)\n",
                        adaptive[l].rounds);
        std::fflush(stdout);
    }
    return 0;
}
