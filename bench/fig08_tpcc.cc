/**
 * @file
 * Paper Figure 8: TPC-C (multi-modal OLTP mix, Table 1) under TQ,
 * Shinjuku (10us quantum per section 5.1) and Caladan — 99.9% sojourn
 * of the shortest (Payment) and longest (StockLevel) transaction types,
 * plus the overall 99.9% slowdown the paper reports to calibrate the
 * multi-modal durations.
 *
 * Expected shape: TQ carries the highest load; Shinjuku keeps short
 * transactions low until its preemption overhead bites; Caladan's FCFS
 * hurts Payment behind StockLevel.
 */
#include <cstdio>

#include "system_compare.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    bench::SystemOptions opts;
    opts.arrival = bench::arrival_spec(argc, argv);
    // Per-class TQ column (TQPC, DESIGN.md §4i): one slice for the two
    // short transaction types, a mid quantum for NewOrder, fine slicing
    // for the two long types so Payment sees less in-service blocking.
    opts.tq_class_quantum = {us(6), us(6), us(5), us(1), us(1)};
    bench::banner("Figure 8",
                  "TPC-C: per-type 99.9% sojourn (us) and overall 99.9% "
                  "slowdown; Shinjuku quantum 10us");
    std::printf("# arrival: %s; TQPC class quanta Payment 6us, "
                "OrderStatus 6us, NewOrder 5us, Delivery 1us, "
                "StockLevel 1us\n",
                bench::arrival_name(opts.arrival));
    auto dist = workload_table::tpcc();
    const auto rates = rate_grid(mrps(0.1), mrps(0.8), 8);
    // The slowdown table below reuses the same rows (this bench used to
    // re-run all three systems a second time for it).
    const auto rows =
        bench::compare_systems(*dist, rates, 10.0,
                               {"Payment", "StockLevel"},
                               bench::sweep_threads(argc, argv), opts);

    std::printf("## overall 99.9%% slowdown\nrate_mrps\tTQ\tTQPC\t"
                "Shinjuku\tCaladan\n");
    for (size_t i = 0; i < rates.size(); ++i) {
        auto fmt = [](const SimResult &r) {
            return r.saturated ? std::string("sat")
                               : bench::cell(r.overall_p999_slowdown);
        };
        std::printf("%.2f\t%s\t%s\t%s\t%s\n", to_mrps(rates[i]),
                    fmt(rows[i].tq).c_str(), fmt(rows[i].tq_pc).c_str(),
                    fmt(rows[i].shinjuku).c_str(),
                    fmt(rows[i].caladan_io).c_str());
        std::fflush(stdout);
    }
    return 0;
}
