/**
 * @file
 * Paper Figures 5 and 6: TQ's 99.9% latency vs request rate for quantum
 * sizes 0.5-10 us on the Extreme Bimodal workload — short jobs (Fig. 5)
 * and long jobs (Fig. 6). Two-level model with TQ's calibrated
 * mechanism overheads.
 *
 * Expected shape: smaller quanta lower short-job latency; throughput is
 * essentially unchanged down to 2us quanta and still substantial at
 * 0.5us (forced multitasking is cheap enough).
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

int
main()
{
    bench::banner("Figures 5-6",
                  "TQ 99.9% sojourn (us) vs rate, quantum sweep, Extreme "
                  "Bimodal (short | long)");
    auto dist = workload_table::extreme_bimodal();
    const std::vector<double> quanta_us = {0.5, 1, 2, 5, 10};
    const auto rates = rate_grid(mrps(0.5), mrps(4.75), 9);

    for (const char *cls : {"Short", "Long"}) {
        std::printf("## %s jobs\nrate_mrps", cls);
        for (double q : quanta_us)
            std::printf("\tq%.1fus", q);
        std::printf("\n");
        for (double rate : rates) {
            std::printf("%.2f", to_mrps(rate));
            for (double q : quanta_us) {
                TwoLevelConfig cfg;
                cfg.quantum = us(q);
                cfg.overheads = Overheads::tq_default();
                cfg.duration = bench::sim_duration();
                const SimResult r = run_two_level(cfg, *dist, rate);
                std::printf("\t%s",
                            bench::cell_us(r.saturated,
                                           r.by_class(cls).p999_sojourn)
                                .c_str());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }
    return 0;
}
