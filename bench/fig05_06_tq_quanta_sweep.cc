/**
 * @file
 * Paper Figures 5 and 6: TQ's 99.9% latency vs request rate for quantum
 * sizes 0.5-10 us on the Extreme Bimodal workload — short jobs (Fig. 5)
 * and long jobs (Fig. 6). Two-level model with TQ's calibrated
 * mechanism overheads.
 *
 * Expected shape: smaller quanta lower short-job latency; throughput is
 * essentially unchanged down to 2us quanta and still substantial at
 * 0.5us (forced multitasking is cheap enough).
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    bench::banner("Figures 5-6",
                  "TQ 99.9% sojourn (us) vs rate, quantum sweep, Extreme "
                  "Bimodal (short | long)");
    const ArrivalSpec arrival = bench::arrival_spec(argc, argv);
    std::printf("# arrival: %s\n", bench::arrival_name(arrival));
    auto dist = workload_table::extreme_bimodal();
    const std::vector<double> quanta_us = {0.5, 1, 2, 5, 10};
    const auto rates = rate_grid(mrps(0.5), mrps(4.75), 9);

    // One run per (rate, quantum) cell feeds both class tables (this
    // bench used to re-run every simulation once per printed class).
    struct Cell
    {
        TwoLevelConfig cfg;
        double rate;
    };
    std::vector<Cell> cells;
    for (double rate : rates) {
        for (double q : quanta_us) {
            Cell c;
            c.cfg.quantum = us(q);
            c.cfg.arrival = arrival;
            c.cfg.overheads = Overheads::tq_default();
            c.cfg.duration = bench::sim_duration();
            c.cfg.stop_when_saturated = true; // cells only print "sat"
            c.rate = rate;
            cells.push_back(c);
        }
    }
    std::vector<SimResult> results(cells.size());
    parallel_run(cells.size(), bench::sweep_threads(argc, argv),
                 [&](size_t i) {
                     results[i] =
                         run_two_level(cells[i].cfg, *dist, cells[i].rate);
                 });

    for (const char *cls : {"Short", "Long"}) {
        std::printf("## %s jobs\nrate_mrps", cls);
        for (double q : quanta_us)
            std::printf("\tq%.1fus", q);
        std::printf("\n");
        size_t i = 0;
        for (double rate : rates) {
            std::printf("%.2f", to_mrps(rate));
            for (size_t q = 0; q < quanta_us.size(); ++q) {
                const SimResult &r = results[i++];
                std::printf("\t%s",
                            bench::cell_us(r.saturated,
                                           r.by_class(cls).p999_sojourn)
                                .c_str());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }
    return 0;
}
