/**
 * @file
 * Paper section 6: dispatcher throughput. TQ's dispatcher does only
 * per-job load balancing (one ring pop, one JSQ scan, one ring push) and
 * sustains ~14 Mrps on the paper's hardware; centralized dispatchers do
 * per-quantum work and sustain ~5 Mrps.
 *
 * This bench measures the *real* cost of TQ's per-job dispatch path on
 * this machine (single-threaded: the actual instruction path, no
 * cross-core traffic) in both forms:
 *
 *  - scalar: the classic per-request path — one RX pop, one RDTSC
 *    arrival stamp, one JSQ+MSQ scan over the shared worker counter
 *    lines, one worker-ring push per request;
 *  - batched: the PR 3 dispatcher_main() path — one RX pop_n per
 *    batch, one arrival stamp and one counter-line refresh per batch,
 *    then per-request scans over a dispatcher-local vector view;
 *  - packed: the current dispatcher_main() path — the batched shape,
 *    with the per-request scan replaced by DispatchView's packed
 *    uint32 lanes and adaptive pick (one-line scan at <= 16 workers,
 *    SIMD horizontal min above; dispatch_view.h).
 *
 * Requests are staged into the RX queue in untimed rounds so all modes
 * measure dispatch work against a backlogged RX — the regime where
 * dispatcher capacity is the binding constraint (Fig. 2/16). The output
 * is a TSV table plot_bench.py can render, and the packed ns/job at 16
 * workers is the calibration input for sim::Overheads::dispatch_cost
 * (recorded in BENCH_dispatch.json).
 */
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/cycles.h"
#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "runtime/dispatch_view.h"
#include "runtime/request.h"
#include "runtime/worker_stats.h"

using namespace tq;

namespace {

constexpr int kIters = 2'000'000;
constexpr int kRound = 8192;      // staged per untimed refill
constexpr size_t kBatch = 32;     // RuntimeConfig::dispatch_batch default

struct Cluster
{
    explicit Cluster(int workers)
        : rx(kRound * 2), lines(static_cast<size_t>(workers)),
          readers(static_cast<size_t>(workers)),
          assigned(static_cast<size_t>(workers), 0)
    {
        for (int w = 0; w < workers; ++w)
            rings.push_back(
                std::make_unique<SpscRing<runtime::Request>>(256));
    }

    MpmcQueue<runtime::Request> rx;
    std::vector<std::unique_ptr<SpscRing<runtime::Request>>> rings;
    std::vector<runtime::WorkerStatsLine> lines;
    std::vector<runtime::WorkerStatsReader> readers;
    std::vector<uint64_t> assigned;
};

void
stage(Cluster &c, int count, uint64_t base_id)
{
    runtime::Request req;
    for (int i = 0; i < count; ++i) {
        req.id = base_id + static_cast<uint64_t>(i);
        c.rx.push(req);
    }
}

/** Forward to @p best: ring push, drained in place (consumer cost runs
 *  on worker cores in deployment), assignment + finish bookkeeping to
 *  keep the emulated JSQ views bounded. */
inline void
forward(Cluster &c, int best, runtime::Request &req,
        runtime::Request &scratch)
{
    c.rings[static_cast<size_t>(best)]->push(req);
    (void)c.rings[static_cast<size_t>(best)]->pop_into(scratch);
    ++c.assigned[static_cast<size_t>(best)];
    c.lines[static_cast<size_t>(best)].finished.fetch_add(
        1, std::memory_order_relaxed);
}

double
scalar_ns_per_job(int workers)
{
    Cluster c(workers);
    runtime::Request scratch;
    Cycles timed = 0;
    int done = 0;
    while (done < kIters) {
        const int round = std::min(kRound, kIters - done);
        stage(c, round, static_cast<uint64_t>(done));
        const Cycles t0 = rdcycles();
        for (int i = 0; i < round; ++i) {
            auto req = c.rx.pop();
            req->arrival_cycles = rdcycles();
            // Per-request JSQ + MSQ scan over the shared counter lines.
            uint64_t best_len = ~0ULL;
            int best = 0;
            uint32_t best_q = 0;
            for (int w = 0; w < workers; ++w) {
                const size_t i_w = static_cast<size_t>(w);
                const uint64_t fin =
                    c.readers[i_w].read_finished(c.lines[i_w]);
                const uint64_t len =
                    c.assigned[i_w] > fin ? c.assigned[i_w] - fin : 0;
                const uint32_t q =
                    runtime::WorkerStatsReader::read_current_quanta(
                        c.lines[i_w]);
                if (len < best_len || (len == best_len && q > best_q)) {
                    best_len = len;
                    best = w;
                    best_q = q;
                }
            }
            forward(c, best, *req, scratch);
        }
        timed += rdcycles() - t0;
        done += round;
    }
    return cycles_to_ns(timed) / kIters;
}

double
batched_ns_per_job(int workers)
{
    Cluster c(workers);
    std::vector<uint64_t> len_view(static_cast<size_t>(workers), 0);
    std::vector<uint32_t> quanta_view(static_cast<size_t>(workers), 0);
    runtime::Request batch[kBatch];
    runtime::Request scratch;
    Cycles timed = 0;
    int done = 0;
    while (done < kIters) {
        const int round = std::min(kRound, kIters - done);
        stage(c, round, static_cast<uint64_t>(done));
        const Cycles t0 = rdcycles();
        int off = 0;
        while (off < round) {
            const size_t n = c.rx.pop_n(batch, kBatch);
            const Cycles arrived = rdcycles();
            // Batch boundary: one pass over the shared counter lines.
            for (int w = 0; w < workers; ++w) {
                const size_t i_w = static_cast<size_t>(w);
                const uint64_t fin =
                    c.readers[i_w].read_finished(c.lines[i_w]);
                len_view[i_w] =
                    c.assigned[i_w] > fin ? c.assigned[i_w] - fin : 0;
                quanta_view[i_w] =
                    runtime::WorkerStatsReader::read_current_quanta(
                        c.lines[i_w]);
            }
            // Per-request work: local view only.
            for (size_t j = 0; j < n; ++j) {
                batch[j].arrival_cycles = arrived;
                uint64_t best_len = ~0ULL;
                int best = 0;
                uint32_t best_q = 0;
                for (int w = 0; w < workers; ++w) {
                    const size_t i_w = static_cast<size_t>(w);
                    if (len_view[i_w] < best_len ||
                        (len_view[i_w] == best_len &&
                         quanta_view[i_w] > best_q)) {
                        best_len = len_view[i_w];
                        best = w;
                        best_q = quanta_view[i_w];
                    }
                }
                ++len_view[static_cast<size_t>(best)];
                forward(c, best, batch[j], scratch);
            }
            off += static_cast<int>(n);
        }
        timed += rdcycles() - t0;
        done += round;
    }
    return cycles_to_ns(timed) / kIters;
}

double
packed_ns_per_job(int workers)
{
    Cluster c(workers);
    runtime::DispatchView view(static_cast<size_t>(workers));
    runtime::Request batch[kBatch];
    runtime::Request scratch;
    Cycles timed = 0;
    int done = 0;
    while (done < kIters) {
        const int round = std::min(kRound, kIters - done);
        stage(c, round, static_cast<uint64_t>(done));
        const Cycles t0 = rdcycles();
        int off = 0;
        while (off < round) {
            const size_t n = c.rx.pop_n(batch, kBatch);
            const Cycles arrived = rdcycles();
            // Batch boundary: one pass over the shared counter lines
            // into the packed view.
            for (int w = 0; w < workers; ++w) {
                const size_t i_w = static_cast<size_t>(w);
                const uint64_t fin =
                    c.readers[i_w].read_finished(c.lines[i_w]);
                view.set_len(i_w, c.assigned[i_w] > fin
                                      ? c.assigned[i_w] - fin
                                      : 0);
                view.set_quanta(
                    i_w, runtime::WorkerStatsReader::read_current_quanta(
                             c.lines[i_w]));
            }
            // Per-request work: SIMD pick + saturating bump, local only.
            for (size_t j = 0; j < n; ++j) {
                batch[j].arrival_cycles = arrived;
                const int best = view.pick_jsq_msq();
                view.bump_len(static_cast<size_t>(best));
                forward(c, best, batch[j], scratch);
            }
            off += static_cast<int>(n);
        }
        timed += rdcycles() - t0;
        done += round;
    }
    return cycles_to_ns(timed) / kIters;
}

} // namespace

int
main()
{
    bench::banner("Section 6",
                  "dispatcher per-job cost, scalar vs batched vs packed-"
                  TQ_DISPATCH_VIEW_SIMD
                  " hot path (batch=32, backlogged RX), and implied Mrps");

    // Warm the clock calibration before timing.
    cycles_per_ns();

    std::printf("workers\tscalar_ns\tbatched_ns\tpacked_ns\tscalar_mrps\t"
                "batched_mrps\tpacked_mrps\tspeedup\n");
    for (int workers : {4, 8, 16}) {
        const double s = scalar_ns_per_job(workers);
        const double b = batched_ns_per_job(workers);
        const double p = packed_ns_per_job(workers);
        std::printf("%d\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2fx\n",
                    workers, s, b, p, 1e3 / s, 1e3 / b, 1e3 / p, s / p);
        std::fflush(stdout);
    }
    std::printf("# paper reports ~14 Mrps for TQ's dispatcher, >> the\n"
                "# centralized ~5 Mrps; sim::Overheads::dispatch_cost is\n"
                "# calibrated from the packed 16-worker ns/job above\n"
                "# (see BENCH_dispatch.json for the recorded run).\n");
    return 0;
}
