/**
 * @file
 * Paper section 6: dispatcher throughput. TQ's dispatcher does only
 * per-job load balancing (one ring pop, one JSQ scan, one ring push) and
 * sustains ~14 Mrps on the paper's hardware; centralized dispatchers do
 * per-quantum work and sustain ~5 Mrps.
 *
 * This bench measures the *real* cost of TQ's per-job dispatch path on
 * this machine (single-threaded: the actual instruction path, no
 * cross-core traffic) and derives the implied dispatcher capacity; it
 * then reports the simulator's modeled capacities for both designs.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/cycles.h"
#include "conc/spsc_ring.h"
#include "runtime/request.h"
#include "runtime/worker_stats.h"

using namespace tq;

int
main()
{
    bench::banner("Section 6", "dispatcher per-job cost and implied Mrps");

    constexpr int kWorkers = 16;
    constexpr int kIters = 2'000'000;
    SpscRing<runtime::Request> rx(4096);
    std::vector<std::unique_ptr<SpscRing<runtime::Request>>> worker_rings;
    for (int w = 0; w < kWorkers; ++w)
        worker_rings.push_back(
            std::make_unique<SpscRing<runtime::Request>>(256));
    std::vector<runtime::WorkerStatsLine> lines(kWorkers);
    std::vector<runtime::WorkerStatsReader> readers(kWorkers);
    uint64_t assigned[kWorkers] = {};

    // Warm the clock calibration before timing.
    cycles_per_ns();

    const Cycles t0 = rdcycles();
    runtime::Request req;
    for (int i = 0; i < kIters; ++i) {
        // RX pop (empty ring: the pop cost is still paid) + stamp.
        (void)rx.pop();
        req.id = static_cast<uint64_t>(i);
        req.arrival_cycles = rdcycles();
        // JSQ + MSQ scan over the 16 worker counter lines.
        uint64_t best_len = ~0ULL;
        int best = 0;
        uint32_t best_q = 0;
        for (int w = 0; w < kWorkers; ++w) {
            const uint64_t len =
                assigned[w] -
                readers[static_cast<size_t>(w)].read_finished(
                    lines[static_cast<size_t>(w)]);
            const uint32_t q =
                runtime::WorkerStatsReader::read_current_quanta(
                    lines[static_cast<size_t>(w)]);
            if (len < best_len || (len == best_len && q > best_q)) {
                best_len = len;
                best = w;
                best_q = q;
            }
        }
        // Forward into the worker ring; drain it in place so the ring
        // never fills (consumer cost runs on worker cores in deployment).
        worker_rings[static_cast<size_t>(best)]->push(req);
        (void)worker_rings[static_cast<size_t>(best)]->pop();
        ++assigned[best];
        // Emulate the worker finishing to keep JSQ views bounded.
        lines[static_cast<size_t>(best)].finished.fetch_add(
            1, std::memory_order_relaxed);
    }
    const double elapsed_ns = cycles_to_ns(rdcycles() - t0);
    const double per_job_ns = elapsed_ns / kIters;
    std::printf("TQ dispatch path: %.1f ns/job => %.1f Mrps implied "
                "(paper reports ~14 Mrps; >> centralized ~5 Mrps)\n",
                per_job_ns, 1e3 / per_job_ns);
    std::printf("sim model: TQ dispatch_cost=70ns (14.3 Mrps), centralized "
                "sched_op_cost=210ns (~4.8 Mops)\n");
    return 0;
}
