/**
 * @file
 * Ablation: the probe-placement bound (max probe-free instructions) —
 * the central tuning knob of TQ's compiler pass (section 3.1). Sweeping
 * it exposes the overhead/accuracy trade-off: denser probes (small
 * bound) cost more cycles but time yields more precisely; sparser
 * probes are nearly free but can overshoot the quantum.
 *
 * Expected shape: overhead falls monotonically with the bound; MAE
 * rises; the paper's operating point sits where overhead has flattened
 * while MAE is still a small fraction of the 2us quantum.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "compiler/report.h"
#include "progs/programs.h"

using namespace tq;
using namespace tq::compiler;

int
main()
{
    bench::banner("Ablation",
                  "TQ pass probe bound sweep: overhead (%) and yield MAE "
                  "(ns) at a 2us quantum");
    const std::vector<int> bounds = {50, 100, 200, 400, 800, 1600};
    const std::vector<std::string> programs = {"histogram", "cholesky",
                                               "raytrace", "blackscholes"};

    ExecConfig ecfg;
    ecfg.quantum_cycles = 2.0 * 1e3 * ecfg.cost.cycles_per_ns;

    for (const auto &name : programs) {
        const Module m = progs::make_program(name);
        std::printf("## %s\nbound\tovh%%\tmae_ns\tprobes\n", name.c_str());
        for (int bound : bounds) {
            PassConfig pcfg;
            pcfg.bound = bound;
            const TechniqueMetrics tm = measure_technique(
                m, ProbeKind::TqClock, pcfg, ecfg);
            std::printf("%d\t%.2f\t%.0f\t%d\n", bound, tm.overhead * 100,
                        tm.mae_ns, tm.static_probes);
            std::fflush(stdout);
        }
    }
    return 0;
}
