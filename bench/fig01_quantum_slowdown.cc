/**
 * @file
 * Paper Figure 1: 99.9% slowdown of the Extreme Bimodal workload under
 * centralized processor sharing with *zero* preemption overhead, for
 * quantum sizes 0.5/1/2/5/10 us across offered loads.
 *
 * Expected shape: smaller quanta give lower tail slowdown at every load;
 * 5-10us quanta cross the slowdown-10 line at much lower rates.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/central.h"
#include "sim/sweep.h"

using namespace tq;
using namespace tq::sim;

int
main()
{
    bench::banner("Figure 1",
                  "99.9% slowdown vs load, centralized PS, zero overhead, "
                  "Extreme Bimodal, 16 cores");
    auto dist = workload_table::extreme_bimodal();
    const std::vector<double> quanta_us = {0.5, 1, 2, 5, 10};
    const auto rates = rate_grid(mrps(0.5), mrps(4.75), 9);

    std::printf("rate_mrps");
    for (double q : quanta_us)
        std::printf("\tq%.1fus", q);
    std::printf("\n");

    for (double rate : rates) {
        std::printf("%.2f", to_mrps(rate));
        for (double q : quanta_us) {
            CentralConfig cfg;
            cfg.quantum = us(q);
            cfg.overheads = Overheads::ideal();
            cfg.duration = bench::sim_duration();
            const SimResult r = run_central(cfg, *dist, rate);
            std::printf("\t%s",
                        r.saturated
                            ? "sat"
                            : bench::cell(r.overall_p999_slowdown).c_str());
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
