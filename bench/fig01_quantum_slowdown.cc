/**
 * @file
 * Paper Figure 1: 99.9% slowdown of the Extreme Bimodal workload under
 * centralized processor sharing with *zero* preemption overhead, for
 * quantum sizes 0.5/1/2/5/10 us across offered loads.
 *
 * Expected shape: smaller quanta give lower tail slowdown at every load;
 * 5-10us quanta cross the slowdown-10 line at much lower rates.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/central.h"
#include "sim/sweep.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 1",
                  "99.9% slowdown vs load, centralized PS, zero overhead, "
                  "Extreme Bimodal, 16 cores");
    auto dist = workload_table::extreme_bimodal();
    const std::vector<double> quanta_us = {0.5, 1, 2, 5, 10};
    const auto rates = rate_grid(mrps(0.5), mrps(4.75), 9);

    // Row-major (rate, quantum) grid of independent runs.
    struct Cell
    {
        CentralConfig cfg;
        double rate;
    };
    std::vector<Cell> cells;
    for (double rate : rates) {
        for (double q : quanta_us) {
            Cell c;
            c.cfg.quantum = us(q);
            c.cfg.overheads = Overheads::ideal();
            c.cfg.duration = bench::sim_duration();
            c.cfg.stop_when_saturated = true; // cells only print "sat"
            c.rate = rate;
            cells.push_back(c);
        }
    }
    std::vector<SimResult> results(cells.size());
    parallel_run(cells.size(), bench::sweep_threads(argc, argv),
                 [&](size_t i) {
                     results[i] =
                         run_central(cells[i].cfg, *dist, cells[i].rate);
                 });

    std::printf("rate_mrps");
    for (double q : quanta_us)
        std::printf("\tq%.1fus", q);
    std::printf("\n");

    size_t i = 0;
    for (double rate : rates) {
        std::printf("%.2f", to_mrps(rate));
        for (size_t q = 0; q < quanta_us.size(); ++q) {
            const SimResult &r = results[i++];
            std::printf("\t%s",
                        r.saturated
                            ? "sat"
                            : bench::cell(r.overall_p999_slowdown).c_str());
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
