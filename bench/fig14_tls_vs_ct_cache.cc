/**
 * @file
 * Paper Figure 14 (+ Table 2): pointer-chase access latency of two-level
 * (TLS) vs centralized (CT) scheduling at 2us quanta across array sizes,
 * plus the reuse-distance amplification check behind the analysis.
 *
 * Expected shape: CT misses L2 from 16KB arrays (64-job amplification:
 * 16KB x 64 = 1MB = L2), TLS stays L2-resident until ~256KB (4-job
 * amplification).
 */
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cache/chase.h"
#include "workloads/minikv.h"

using namespace tq;
using namespace tq::cache;

namespace {

/** TLS-vs-CT latency table; zipf_s > 0 draws visited lines from
 *  workloads::ZipfKeyGen (skewed mix) instead of the fixed order. */
void
tls_vs_ct_table(double zipf_s)
{
    std::printf("array_kb\tTLS\tCT\tTLS_l2_missrate\tCT_l2_missrate\n");
    for (size_t kb = 1; kb <= 1024; kb *= 2) {
        ChaseConfig cfg;
        cfg.array_bytes = kb * 1024;
        cfg.quantum = us(2);
        std::shared_ptr<workloads::ZipfKeyGen> gen;
        if (zipf_s > 0) {
            gen = std::make_shared<workloads::ZipfKeyGen>(
                cfg.array_bytes / 64, zipf_s);
            cfg.line_sampler = [gen](Rng &rng) {
                return gen->sample_key(rng);
            };
        }
        cfg.centralized = false;
        const ChaseResult tls = run_chase(cfg);
        cfg.centralized = true;
        const ChaseResult ct = run_chase(cfg);
        std::printf("%zu\t%.2f\t%.2f\t%.3f\t%.3f\n", kb, tls.avg_latency_ns,
                    ct.avg_latency_ns, tls.l2_miss_rate, ct.l2_miss_rate);
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 14 / Table 2",
                  "TLS vs CT pointer-chase at 2us quanta: avg access "
                  "latency (ns) and reuse-distance amplification");
    std::printf("## uniform chase (paper's fixed iteration order)\n");
    tls_vs_ct_table(0);
    std::printf("## Zipf(0.99) hot lines (workloads::ZipfKeyGen)\n");
    tls_vs_ct_table(0.99);

    // Table 2's empirical check: reuse distances of first-in-quantum
    // accesses amplify by J (TLS) vs C*J (CT).
    std::printf("## Table 2 check: 8KB arrays, 0.5us quanta, J=4, C=16\n");
    ChaseConfig cfg;
    cfg.array_bytes = 8 * 1024;
    cfg.quantum = us(0.5);
    cfg.centralized = false;
    const ReuseAnalyzer tls = analyze_chase_reuse(cfg, 60'000);
    cfg.centralized = true;
    const ReuseAnalyzer ct = analyze_chase_reuse(cfg, 60'000);
    std::printf("fraction of accesses with reuse distance > J*A (32KB): "
                "TLS %.3f (expected ~0), CT %.3f (expected ~1)\n",
                tls.fraction_above_bytes(32 * 1024),
                ct.fraction_above_bytes(32 * 1024));
    std::printf("fraction > A (8KB): TLS %.3f (expected ~1), CT %.3f\n",
                tls.fraction_above_bytes(8 * 1024),
                ct.fraction_above_bytes(8 * 1024));
    return 0;
}
