/**
 * @file
 * Shared three-system comparison harness for paper Figures 7-10: TQ
 * (two-level model, calibrated overheads), Shinjuku (centralized model:
 * 1us interrupts, ~5Mops serial dispatcher, workload-specific quantum
 * per paper section 5.1) and Caladan (FCFS + stealing, better of
 * IOKernel and directpath modes, per section 5.1).
 */
#ifndef TQ_BENCH_SYSTEM_COMPARE_H
#define TQ_BENCH_SYSTEM_COMPARE_H

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/caladan.h"
#include "sim/central.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

namespace tq::bench {

/**
 * Optional axes of the three-system comparison. Defaults reproduce the
 * historical harness byte for byte: Poisson arrivals, no per-class TQ
 * variant.
 */
struct SystemOptions
{
    /** Arrival process shared by all systems (`--arrival=onoff`). */
    ArrivalSpec arrival;

    /**
     * When non-empty, an extra TQ variant with per-class quanta
     * (TwoLevelConfig::class_quantum, one entry per workload class, ns)
     * plus the deficit/starvation mirror runs alongside the fixed-
     * quantum TQ and prints as `TQPC_<class>` columns (DESIGN.md §4i).
     */
    std::vector<SimNanos> tq_class_quantum;
    SimNanos tq_deficit_clamp = us(8);
    uint64_t tq_starvation_promote_after = 128;
};

/** The simulations behind one comparison row. */
struct SystemRow
{
    sim::SimResult tq;
    sim::SimResult tq_pc; ///< per-class TQ; only run when
                          ///< SystemOptions::tq_class_quantum is set
    sim::SimResult shinjuku;
    sim::SimResult caladan_io;
    sim::SimResult caladan_dp;

    /** Caladan cell: the better of IOKernel and directpath modes per
     *  workload point (paper section 5.1). */
    const sim::SimResult &
    caladan() const
    {
        const bool dp_better =
            caladan_io.saturated ||
            (!caladan_dp.saturated &&
             caladan_dp.overall_p999_slowdown <
                 caladan_io.overall_p999_slowdown);
        return dp_better ? caladan_dp : caladan_io;
    }
};

/**
 * Run the three systems at each rate, spreading the independent
 * (rate, system) simulations over @p threads workers. Rows come back in
 * rate order; a figure can print several tables from one pass instead
 * of re-running the grid per table.
 */
inline std::vector<SystemRow>
run_systems(const ServiceDist &dist, const std::vector<double> &rates,
            double shinjuku_quantum_us, int threads,
            const SystemOptions &opts = {})
{
    using namespace tq::sim;

    std::vector<SystemRow> rows(rates.size());
    // Tables render "sat" for saturated cells and the best-of-Caladan
    // pick only compares saturation flags and non-saturated slowdowns,
    // so overloaded runs can stop at the saturation verdict. Five slots
    // per rate; the per-class TQ slot is a no-op unless requested.
    parallel_run(rates.size() * 5, threads, [&](size_t i) {
        const double rate = rates[i / 5];
        SystemRow &row = rows[i / 5];
        switch (i % 5) {
          case 0: {
            TwoLevelConfig cfg;
            cfg.quantum = us(2);
            cfg.overheads = Overheads::tq_default();
            cfg.duration = sim_duration();
            cfg.stop_when_saturated = true;
            cfg.arrival = opts.arrival;
            row.tq = run_two_level(cfg, dist, rate);
            break;
          }
          case 1: {
            if (opts.tq_class_quantum.empty())
                break;
            TwoLevelConfig cfg;
            cfg.quantum = us(2);
            cfg.overheads = Overheads::tq_default();
            cfg.duration = sim_duration();
            cfg.stop_when_saturated = true;
            cfg.arrival = opts.arrival;
            cfg.class_quantum = opts.tq_class_quantum;
            cfg.deficit_clamp = opts.tq_deficit_clamp;
            cfg.starvation_promote_after =
                opts.tq_starvation_promote_after;
            row.tq_pc = run_two_level(cfg, dist, rate);
            break;
          }
          case 2: {
            CentralConfig cfg;
            cfg.quantum = us(shinjuku_quantum_us);
            cfg.overheads = Overheads::shinjuku_default();
            cfg.duration = sim_duration();
            cfg.stop_when_saturated = true;
            cfg.arrival = opts.arrival;
            row.shinjuku = run_central(cfg, dist, rate);
            break;
          }
          case 3:
          case 4: {
            CaladanConfig cfg;
            cfg.duration = sim_duration();
            cfg.directpath = i % 5 == 4;
            cfg.stop_when_saturated = true;
            cfg.arrival = opts.arrival;
            (cfg.directpath ? row.caladan_dp : row.caladan_io) =
                run_caladan(cfg, dist, rate);
            break;
          }
        }
    });
    return rows;
}

/** Print the standard per-class latency table for @p rows. When the
 *  per-class TQ variant ran, a TQPC column per class follows the TQ
 *  one. */
inline void
print_system_rows(const std::vector<SystemRow> &rows,
                  const std::vector<double> &rates,
                  const std::vector<std::string> &classes,
                  bool with_tq_pc = false)
{
    std::printf("rate_mrps");
    for (const auto &c : classes) {
        std::printf("\tTQ_%s", c.c_str());
        if (with_tq_pc)
            std::printf("\tTQPC_%s", c.c_str());
        std::printf("\tShinjuku_%s\tCaladan_%s", c.c_str(), c.c_str());
    }
    std::printf("\n");

    for (size_t i = 0; i < rows.size(); ++i) {
        std::printf("%.2f", to_mrps(rates[i]));
        for (const auto &c : classes) {
            auto fmt = [&](const sim::SimResult &r) {
                return cell_us(r.saturated, r.by_class(c).p999_sojourn);
            };
            std::printf("\t%s", fmt(rows[i].tq).c_str());
            if (with_tq_pc)
                std::printf("\t%s", fmt(rows[i].tq_pc).c_str());
            std::printf("\t%s\t%s", fmt(rows[i].shinjuku).c_str(),
                        fmt(rows[i].caladan()).c_str());
        }
        std::printf("\n");
        std::fflush(stdout);
    }
}

/** One three-system latency row per offered rate. @return the rows so
 *  callers can derive further tables without re-running. */
inline std::vector<SystemRow>
compare_systems(const ServiceDist &dist,
                const std::vector<double> &rates,
                double shinjuku_quantum_us,
                const std::vector<std::string> &classes, int threads = 1,
                const SystemOptions &opts = {})
{
    auto rows = run_systems(dist, rates, shinjuku_quantum_us, threads, opts);
    print_system_rows(rows, rates, classes,
                      !opts.tq_class_quantum.empty());
    return rows;
}

} // namespace tq::bench

#endif // TQ_BENCH_SYSTEM_COMPARE_H
