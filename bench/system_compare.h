/**
 * @file
 * Shared three-system comparison harness for paper Figures 7-10: TQ
 * (two-level model, calibrated overheads), Shinjuku (centralized model:
 * 1us interrupts, ~5Mops serial dispatcher, workload-specific quantum
 * per paper section 5.1) and Caladan (FCFS + stealing, better of
 * IOKernel and directpath modes, per section 5.1).
 */
#ifndef TQ_BENCH_SYSTEM_COMPARE_H
#define TQ_BENCH_SYSTEM_COMPARE_H

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/caladan.h"
#include "sim/central.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

namespace tq::bench {

/** One three-system latency row per offered rate. */
inline void
compare_systems(const ServiceDist &dist, const std::vector<double> &rates,
                double shinjuku_quantum_us,
                const std::vector<std::string> &classes)
{
    using namespace tq::sim;

    std::printf("rate_mrps");
    for (const auto &c : classes)
        std::printf("\tTQ_%s\tShinjuku_%s\tCaladan_%s", c.c_str(),
                    c.c_str(), c.c_str());
    std::printf("\n");

    for (double rate : rates) {
        TwoLevelConfig tq_cfg;
        tq_cfg.quantum = us(2);
        tq_cfg.overheads = Overheads::tq_default();
        tq_cfg.duration = sim_duration();
        const SimResult r_tq = run_two_level(tq_cfg, dist, rate);

        CentralConfig sj_cfg;
        sj_cfg.quantum = us(shinjuku_quantum_us);
        sj_cfg.overheads = Overheads::shinjuku_default();
        sj_cfg.duration = sim_duration();
        const SimResult r_sj = run_central(sj_cfg, dist, rate);

        // Caladan: report the better of IOKernel and directpath modes
        // per workload point (paper section 5.1).
        CaladanConfig ca_cfg;
        ca_cfg.duration = sim_duration();
        ca_cfg.directpath = false;
        SimResult r_ca = run_caladan(ca_cfg, dist, rate);
        ca_cfg.directpath = true;
        SimResult r_dp = run_caladan(ca_cfg, dist, rate);
        const bool dp_better =
            r_ca.saturated ||
            (!r_dp.saturated &&
             r_dp.overall_p999_slowdown < r_ca.overall_p999_slowdown);
        const SimResult &r_cal = dp_better ? r_dp : r_ca;

        std::printf("%.2f", to_mrps(rate));
        for (const auto &c : classes) {
            auto fmt = [&](const SimResult &r) {
                return cell_us(r.saturated, r.by_class(c).p999_sojourn);
            };
            std::printf("\t%s\t%s\t%s", fmt(r_tq).c_str(),
                        fmt(r_sj).c_str(), fmt(r_cal).c_str());
        }
        std::printf("\n");
        std::fflush(stdout);
    }
}

} // namespace tq::bench

#endif // TQ_BENCH_SYSTEM_COMPARE_H
