/**
 * @file
 * Sharded-dispatcher scalability (DESIGN.md §4g, paper section 6):
 * aggregate dispatch throughput past the single-core dispatcher
 * ceiling. Paper context: one TQ dispatcher core sustains ~14 Mrps of
 * per-job load balancing; section 6 proposes scaling out with multiple
 * load-balancing dispatchers. This PR's sharded tier implements that —
 * S dispatcher shards over disjoint worker subsets behind a front-tier
 * rotated JSQ — and this bench measures all three layers:
 *
 *  1. front-tier pick: ns per pick_min_rotated() over S per-shard load
 *     lines (the cost every submitter pays per request; submitters are
 *     parallel, so this is latency, not a serial resource);
 *  2. per-shard dispatch hot path, isolated timing: the packed
 *     dispatch loop of runtime.cc dispatcher_main() against a
 *     backlogged RX, with the JSQ view and counter-line refresh
 *     restricted to the shard's owned span plus the per-batch load-line
 *     publish. Shards are timed one at a time on one core — this
 *     container has a single CPU, so concurrent shard threads would
 *     timeshare that core and measure scheduler interleaving, not
 *     dispatch. In deployment each shard owns a core, so aggregate
 *     capacity is S x the isolated per-shard rate (caveat recorded in
 *     BENCH_dispatch.json);
 *  3. simulated cluster capacity: max sustainable Mrps of a 64-core /
 *     0.5us-job cluster under a p999 slowdown SLO at 1/2/4 dispatcher
 *     shards (the fig16-style sweep, now through the two-level model's
 *     sharded path: front_tier_cost + per-shard serial dispatchers),
 *     and tail parity at low load — far from the dispatch ceiling,
 *     sharding must not cost the tail.
 *
 * `--arrival=onoff` switches the sim sections to the MMPP burst
 * profile; the dispatch hot-path sections always run backlogged (the
 * regime where dispatcher capacity binds).
 */
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/cycles.h"
#include "common/dist.h"
#include "common/shard.h"
#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "runtime/dispatch_view.h"
#include "runtime/request.h"
#include "runtime/shard_front.h"
#include "runtime/worker_stats.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;

namespace {

constexpr int kWorkers = 16;      // the paper's deployment size
constexpr int kIters = 2'000'000; // jobs timed per shard point
constexpr int kRound = 8192;      // staged per untimed RX refill
constexpr size_t kBatch = 32;     // RuntimeConfig::dispatch_batch

// ------------------------------------------------------------ front --

/**
 * ns per front-tier pick: S load-line reads + the rotated min scan.
 * One line's load is bumped every 64 picks so the scan sees changing
 * values instead of a fully predicted all-ties pattern.
 */
double
front_pick_ns(int shards)
{
    std::vector<runtime::ShardLoadLine> lines(
        static_cast<size_t>(shards));
    std::vector<uint32_t> loads(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s)
        lines[static_cast<size_t>(s)].load.store(
            static_cast<uint32_t>(s), std::memory_order_relaxed);
    constexpr int kPicks = 4'000'000;
    uint64_t sink = 0;
    const Cycles t0 = rdcycles();
    for (int i = 0; i < kPicks; ++i) {
        for (int s = 0; s < shards; ++s)
            loads[static_cast<size_t>(s)] =
                lines[static_cast<size_t>(s)].load.load(
                    std::memory_order_relaxed);
        const int pick = pick_min_rotated(
            loads.data(), static_cast<size_t>(shards),
            static_cast<uint64_t>(i));
        sink += static_cast<uint64_t>(pick);
        if ((i & 63) == 0)
            lines[static_cast<size_t>(pick)].load.fetch_add(
                1, std::memory_order_relaxed);
    }
    const double ns = cycles_to_ns(rdcycles() - t0) / kPicks;
    if (sink == 0) // keep the picks observable
        std::printf("# sink\n");
    return ns;
}

// ------------------------------------------------------- per shard --

/** One emulated dispatcher shard: the real building blocks of
 *  runtime.cc (MPMC RX, packed DispatchView over the owned span, the
 *  shared counter lines, SPSC worker rings, the advertised-load line),
 *  assembled without threads so the dispatch path itself is timed. */
struct ShardBench
{
    explicit ShardBench(ShardSpan span_)
        : span(span_), rx(kRound * 2),
          view(static_cast<size_t>(span_.count)),
          lines(static_cast<size_t>(span_.count)),
          readers(static_cast<size_t>(span_.count)),
          assigned(static_cast<size_t>(span_.count), 0)
    {
        for (int w = 0; w < span.count; ++w)
            rings.push_back(
                std::make_unique<SpscRing<runtime::Request>>(256));
    }

    ShardSpan span;
    MpmcQueue<runtime::Request> rx;
    runtime::DispatchView view;
    std::vector<runtime::WorkerStatsLine> lines;
    std::vector<runtime::WorkerStatsReader> readers;
    std::vector<uint64_t> assigned;
    std::vector<std::unique_ptr<SpscRing<runtime::Request>>> rings;
    runtime::ShardLoadLine load_line;
};

/** The dispatcher_main() hot path for one shard against a backlogged
 *  RX: pop_n, one arrival stamp + span-wide view refresh per batch,
 *  packed JSQ+MSQ pick per job, ring push (drained in place — the
 *  consumer runs on worker cores in deployment), and the per-batch
 *  advertised-load publish. Returns ns per job. */
double
shard_dispatch_ns(ShardSpan span)
{
    ShardBench sh(span);
    runtime::Request batch[kBatch];
    runtime::Request scratch;
    Cycles timed = 0;
    int done = 0;
    while (done < kIters) {
        const int round = std::min(kRound, kIters - done);
        {
            runtime::Request req;
            for (int i = 0; i < round; ++i) {
                req.id = static_cast<uint64_t>(done + i);
                sh.rx.push(req);
            }
        }
        const Cycles t0 = rdcycles();
        int off = 0;
        while (off < round) {
            const size_t n = sh.rx.pop_n(batch, kBatch);
            const Cycles arrived = rdcycles();
            uint64_t queue_sum = 0;
            for (int w = 0; w < span.count; ++w) {
                const size_t i_w = static_cast<size_t>(w);
                const uint64_t fin =
                    sh.readers[i_w].read_finished(sh.lines[i_w]);
                const uint64_t len =
                    sh.assigned[i_w] > fin ? sh.assigned[i_w] - fin : 0;
                queue_sum += len;
                sh.view.set_len(i_w, len);
                sh.view.set_quanta(
                    i_w,
                    runtime::WorkerStatsReader::read_current_quanta(
                        sh.lines[i_w]));
            }
            for (size_t j = 0; j < n; ++j) {
                batch[j].arrival_cycles = arrived;
                const size_t best =
                    static_cast<size_t>(sh.view.pick_jsq_msq());
                sh.view.bump_len(best);
                sh.rings[best]->push(batch[j]);
                (void)sh.rings[best]->pop_into(scratch);
                ++sh.assigned[best];
                sh.lines[best].finished.fetch_add(
                    1, std::memory_order_relaxed);
            }
            const uint64_t load = queue_sum + n + sh.rx.size();
            sh.load_line.load.store(
                load > UINT32_MAX ? UINT32_MAX
                                  : static_cast<uint32_t>(load),
                std::memory_order_relaxed);
            off += static_cast<int>(n);
        }
        timed += rdcycles() - t0;
        done += round;
    }
    return cycles_to_ns(timed) / kIters;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tq::sim;
    const ArrivalSpec arrival = bench::arrival_spec(argc, argv);
    bench::banner("Figure 17",
                  "sharded dispatchers behind a front-tier JSQ: "
                  "aggregate dispatch scaling (DESIGN.md §4g)");
    std::printf("# arrival (sim sections): %s\n",
                bench::arrival_name(arrival));
    cycles_per_ns(); // warm the clock calibration

    // -- 1: the submit-side steering pick ------------------------------
    std::printf("## front-tier pick (per submitted request, "
                "submitter-parallel)\n");
    std::printf("shards\tpick_ns\n");
    for (int s : {2, 4, 8, 16}) {
        std::printf("%d\t%.1f\n", s, front_pick_ns(s));
        std::fflush(stdout);
    }

    // -- 2: per-shard dispatch, isolated timing ------------------------
    std::printf("## runtime dispatch hot path, %d workers split S ways "
                "(isolated per-shard timing: 1-CPU container, shards "
                "own a core each in deployment)\n",
                kWorkers);
    std::printf(
        "shards\tper_shard_ns\tper_shard_mrps\tagg_mrps\tscaling\n");
    double base_agg = 0;
    for (int s : {1, 2, 4}) {
        // Even splits of 16 make every span identical; time shard 0
        // and every sibling runs the same instruction path.
        const double ns = shard_dispatch_ns(shard_span(kWorkers, s, 0));
        const double per_mrps = 1e3 / ns;
        const double agg = per_mrps * s;
        if (s == 1)
            base_agg = agg;
        std::printf("%d\t%.1f\t%.2f\t%.2f\t%.2fx\n", s, ns, per_mrps,
                    agg, agg / base_agg);
        std::fflush(stdout);
    }

    // -- 3: simulated cluster capacity at the dispatch ceiling ---------
    std::printf("## sim capacity: 64 cores, 0.5us jobs, p999 slowdown "
                "<= 10 (sharded model: front_tier_cost + per-shard "
                "dispatch_cost)\n");
    FixedDist dist(us(0.5));
    const std::vector<int> shard_counts = {1, 2, 4};
    std::vector<double> caps(shard_counts.size());
    parallel_run(shard_counts.size(), bench::sweep_threads(argc, argv),
                 [&](size_t i) {
                     TwoLevelConfig cfg;
                     cfg.num_cores = 64;
                     cfg.num_dispatchers = shard_counts[i];
                     cfg.quantum = us(2);
                     cfg.duration = bench::sim_duration();
                     cfg.arrival = arrival;
                     cfg.stop_when_saturated = true; // SLO probes only
                     caps[i] = max_rate_under_slo(
                         [&](double rate) {
                             return run_two_level(cfg, dist, rate);
                         },
                         // Search up to the 128 Mrps worker-capacity
                         // line: past ~2 shards the dispatch tier is no
                         // longer what binds.
                         slowdown_slo(10), mrps(2), mrps(130), 9);
                 });
    std::printf("dispatchers\tmax_Mrps\tscaling\n");
    for (size_t i = 0; i < shard_counts.size(); ++i)
        std::printf("%d\t%.1f\t%.2fx\n", shard_counts[i],
                    to_mrps(caps[i]), caps[i] / caps[0]);
    std::fflush(stdout);

    // -- 4: tail parity far from the ceiling ---------------------------
    std::printf("## sim tail parity at low load: 16 cores, exp 1us "
                "jobs, 2 Mrps (sharding must not cost the tail)\n");
    ExponentialDist exp_dist(us(1));
    std::printf("dispatchers\tmean_slowdown\tp999_slowdown\n");
    for (int s : {1, 2, 4}) {
        TwoLevelConfig cfg;
        cfg.num_cores = 16;
        cfg.num_dispatchers = s;
        cfg.duration = bench::sim_duration();
        cfg.arrival = arrival;
        const SimResult r = run_two_level(cfg, exp_dist, mrps(2));
        std::printf("%d\t%.3f\t%.2f\n", s, r.overall_mean_slowdown,
                    r.overall_p999_slowdown);
        std::fflush(stdout);
    }
    return 0;
}
