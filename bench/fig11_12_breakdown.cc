/**
 * @file
 * Paper Figures 11-12: breakdown of TQ's performance on the RocksDB
 * 0.5%-SCAN workload. Variants (section 5.4):
 *
 *  - TQ-IC: the instruction-counter instrumentation replaces TQ's pass.
 *    Its probing overhead is *measured live* by instrumenting this
 *    repository's rocksdb-get IR with the CI pass and executing it, and
 *    that inflation factor is applied to job service times.
 *  - TQ-SLOW-YIELD: +1us per coroutine yield.
 *  - TQ-TIMING: inaccurate quanta (1us for GET, 3us for SCAN).
 *  - TQ-RAND / TQ-POWER-TWO: alternative load balancers.
 *  - TQ-FCFS: run-to-completion workers.
 *
 * Expected shape (paper): at a 50us GET latency budget, TQ-IC ~62% of
 * TQ's throughput, TQ-SLOW-YIELD ~81%, TQ-TIMING ~81%, TQ-RAND ~53%,
 * TQ-POWER-TWO similar throughput but higher latency, TQ-FCFS ~34%.
 *
 * The sojourn-time decomposition underlying these figures (dispatch,
 * queueing, service, preemption overhead) is measured on the *real*
 * runtime from tq::telemetry snapshots — the load-sweep curves stay on
 * the calibrated DES, but the stage costs come from live counters and
 * histograms, not ad-hoc timers.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "compiler/report.h"
#include "net/loadgen.h"
#include "net/runtime_server.h"
#include "progs/programs.h"
#include "runtime/runtime.h"
#include "sim/sweep.h"
#include "sim/two_level.h"
#include "telemetry/telemetry.h"
#include "workloads/spin.h"

using namespace tq;
using namespace tq::sim;

namespace {

double
measure_ci_overhead()
{
    // Instrument the rocksdb-get IR with the CI pass and execute it under
    // the timing model: the probing overhead inflates TQ-IC service times.
    compiler::PassConfig pcfg;
    pcfg.bound = 120;
    compiler::ExecConfig ecfg;
    ecfg.quantum_cycles = 2.0 * 1e3 * ecfg.cost.cycles_per_ns; // 2us
    const auto m = progs::make_rocksdb_get();
    const auto ci = compiler::measure_technique(
        m, compiler::ProbeKind::CiCounter, pcfg, ecfg);
    const auto tq_pass = compiler::measure_technique(
        m, compiler::ProbeKind::TqClock, pcfg, ecfg);
    std::printf("# measured probing overhead on rocksdb-get IR: CI %.1f%% "
                "(%d probes), TQ %.1f%% (%d probes)\n",
                ci.overhead * 100, ci.static_probes, tq_pass.overhead * 100,
                tq_pass.static_probes);
    return ci.overhead;
}

/**
 * Measure the dispatch/queueing/service/preemption decomposition on the
 * real runtime: serve the RocksDB 0.5%-SCAN service-time profile as
 * calibrated spin jobs through Runtime + the open-loop generator, then
 * read the stage breakdown from a telemetry snapshot.
 */
void
real_runtime_decomposition()
{
    std::printf("## real-runtime stage decomposition (tq::telemetry)\n");
    if (!telemetry::kEnabled) {
        std::printf("telemetry compiled out (-DTQ_TELEMETRY=OFF); "
                    "skipping\n");
        return;
    }
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.quantum_us = 2.0;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.id;
    });
    rt.start();

    net::RuntimeServer server(rt);
    const auto dist = workload_table::rocksdb(0.005);
    net::LoadGenConfig lg;
    lg.rate_mrps = 0.01; // modest: threads timeshare one host core
    lg.duration_sec = 0.2;
    lg.metrics = &rt.metrics();
    const net::ClientStats client = net::run_open_loop(
        server, *dist, net::spin_request_factory(), lg);
    rt.stop();

    const telemetry::MetricsSnapshot snap = rt.telemetry_snapshot();
    std::printf("# %llu submitted, %llu completed, achieved %.3f Mrps\n",
                static_cast<unsigned long long>(client.submitted),
                static_cast<unsigned long long>(client.completed),
                client.achieved_mrps);
    std::printf("%s", snap.to_string().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const int threads = bench::sweep_threads(argc, argv);
    bench::banner("Figures 11-12",
                  "TQ variant breakdown on RocksDB 0.5% SCAN: 99.9% "
                  "sojourn (us) of GET and SCAN vs rate");
    const double ci_overhead = measure_ci_overhead();

    auto dist = workload_table::rocksdb(0.005);
    const auto rates = rate_grid(mrps(0.4), mrps(3.3), 8);

    struct Variant
    {
        const char *name;
        TwoLevelConfig cfg;
    };
    std::vector<Variant> variants;
    TwoLevelConfig base;
    base.quantum = us(2);
    base.overheads = Overheads::tq_default();
    base.duration = bench::sim_duration();

    variants.push_back({"TQ", base});
    {
        Variant v{"TQ-IC", base};
        v.cfg.probe_overhead_frac = ci_overhead;
        variants.push_back(v);
    }
    {
        Variant v{"TQ-SLOW-YIELD", base};
        v.cfg.overheads.switch_overhead += us(1);
        variants.push_back(v);
    }
    {
        Variant v{"TQ-TIMING", base};
        v.cfg.class_quantum = {us(1), us(3)}; // GET, SCAN
        variants.push_back(v);
    }
    {
        Variant v{"TQ-RAND", base};
        v.cfg.lb = LbPolicy::Random;
        variants.push_back(v);
    }
    {
        Variant v{"TQ-POWER-TWO", base};
        v.cfg.lb = LbPolicy::PowerOfTwo;
        variants.push_back(v);
    }
    {
        Variant v{"TQ-FCFS", base};
        v.cfg.core_policy = CorePolicy::Fcfs;
        variants.push_back(v);
    }

    // One run per (rate, variant) cell feeds both class tables (this
    // bench used to re-run the whole grid once per printed class).
    // Table cells only print "sat" for overloaded runs, so those may
    // stop at the saturation verdict.
    std::vector<SimResult> grid(rates.size() * variants.size());
    parallel_run(grid.size(), threads, [&](size_t i) {
        TwoLevelConfig cfg = variants[i % variants.size()].cfg;
        cfg.stop_when_saturated = true;
        grid[i] = run_two_level(cfg, *dist, rates[i / variants.size()]);
    });

    for (const char *cls : {"GET", "SCAN"}) {
        std::printf("## %s\nrate_mrps", cls);
        for (const auto &v : variants)
            std::printf("\t%s", v.name);
        std::printf("\n");
        size_t i = 0;
        for (double rate : rates) {
            std::printf("%.2f", to_mrps(rate));
            for (size_t v = 0; v < variants.size(); ++v) {
                const SimResult &r = grid[i++];
                std::printf("\t%s",
                            bench::cell_us(r.saturated,
                                           r.by_class(cls).p999_sojourn)
                                .c_str());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }

    // Capacity summary at the paper's 50us GET latency budget: one
    // independent bisection per variant, warm-started from its grid
    // points (the memo skips any probe whose rate the sweep covered).
    std::vector<double> caps(variants.size());
    parallel_run(variants.size(), threads, [&](size_t v) {
        TwoLevelConfig cfg = variants[v].cfg;
        cfg.stop_when_saturated = true; // SLO probes only
        std::vector<SweepPoint> known(rates.size());
        for (size_t r = 0; r < rates.size(); ++r) {
            known[r].rate = rates[r];
            known[r].result = grid[r * variants.size() + v];
        }
        caps[v] = max_rate_under_slo(
            [&](double rate) { return run_two_level(cfg, *dist, rate); },
            class_sojourn_slo("GET", us(50)), mrps(0.2), mrps(4.2), 9,
            &known);
    });
    std::printf("## max rate (Mrps) with GET 99.9%% sojourn <= 50us\n");
    for (size_t v = 0; v < variants.size(); ++v) {
        std::printf("%s\t%.2f\n", variants[v].name, to_mrps(caps[v]));
        std::fflush(stdout);
    }

    real_runtime_decomposition();
    return 0;
}
