/**
 * @file
 * Paper Figures 11-12: breakdown of TQ's performance on the RocksDB
 * 0.5%-SCAN workload. Variants (section 5.4):
 *
 *  - TQ-IC: the instruction-counter instrumentation replaces TQ's pass.
 *    Its probing overhead is *measured live* by instrumenting this
 *    repository's rocksdb-get IR with the CI pass and executing it, and
 *    that inflation factor is applied to job service times.
 *  - TQ-SLOW-YIELD: +1us per coroutine yield.
 *  - TQ-TIMING: inaccurate quanta (1us for GET, 3us for SCAN).
 *  - TQ-RAND / TQ-POWER-TWO: alternative load balancers.
 *  - TQ-FCFS: run-to-completion workers.
 *
 * Expected shape (paper): at a 50us GET latency budget, TQ-IC ~62% of
 * TQ's throughput, TQ-SLOW-YIELD ~81%, TQ-TIMING ~81%, TQ-RAND ~53%,
 * TQ-POWER-TWO similar throughput but higher latency, TQ-FCFS ~34%.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "compiler/report.h"
#include "progs/programs.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

namespace {

double
measure_ci_overhead()
{
    // Instrument the rocksdb-get IR with the CI pass and execute it under
    // the timing model: the probing overhead inflates TQ-IC service times.
    compiler::PassConfig pcfg;
    pcfg.bound = 120;
    compiler::ExecConfig ecfg;
    ecfg.quantum_cycles = 2.0 * 1e3 * ecfg.cost.cycles_per_ns; // 2us
    const auto m = progs::make_rocksdb_get();
    const auto ci = compiler::measure_technique(
        m, compiler::ProbeKind::CiCounter, pcfg, ecfg);
    const auto tq_pass = compiler::measure_technique(
        m, compiler::ProbeKind::TqClock, pcfg, ecfg);
    std::printf("# measured probing overhead on rocksdb-get IR: CI %.1f%% "
                "(%d probes), TQ %.1f%% (%d probes)\n",
                ci.overhead * 100, ci.static_probes, tq_pass.overhead * 100,
                tq_pass.static_probes);
    return ci.overhead;
}

} // namespace

int
main()
{
    bench::banner("Figures 11-12",
                  "TQ variant breakdown on RocksDB 0.5% SCAN: 99.9% "
                  "sojourn (us) of GET and SCAN vs rate");
    const double ci_overhead = measure_ci_overhead();

    auto dist = workload_table::rocksdb(0.005);
    const auto rates = rate_grid(mrps(0.4), mrps(3.3), 8);

    struct Variant
    {
        const char *name;
        TwoLevelConfig cfg;
    };
    std::vector<Variant> variants;
    TwoLevelConfig base;
    base.quantum = us(2);
    base.overheads = Overheads::tq_default();
    base.duration = bench::sim_duration();

    variants.push_back({"TQ", base});
    {
        Variant v{"TQ-IC", base};
        v.cfg.probe_overhead_frac = ci_overhead;
        variants.push_back(v);
    }
    {
        Variant v{"TQ-SLOW-YIELD", base};
        v.cfg.overheads.switch_overhead += us(1);
        variants.push_back(v);
    }
    {
        Variant v{"TQ-TIMING", base};
        v.cfg.class_quantum = {us(1), us(3)}; // GET, SCAN
        variants.push_back(v);
    }
    {
        Variant v{"TQ-RAND", base};
        v.cfg.lb = LbPolicy::Random;
        variants.push_back(v);
    }
    {
        Variant v{"TQ-POWER-TWO", base};
        v.cfg.lb = LbPolicy::PowerOfTwo;
        variants.push_back(v);
    }
    {
        Variant v{"TQ-FCFS", base};
        v.cfg.core_policy = CorePolicy::Fcfs;
        variants.push_back(v);
    }

    for (const char *cls : {"GET", "SCAN"}) {
        std::printf("## %s\nrate_mrps", cls);
        for (const auto &v : variants)
            std::printf("\t%s", v.name);
        std::printf("\n");
        for (double rate : rates) {
            std::printf("%.2f", to_mrps(rate));
            for (const auto &v : variants) {
                const SimResult r = run_two_level(v.cfg, *dist, rate);
                std::printf("\t%s",
                            bench::cell_us(r.saturated,
                                           r.by_class(cls).p999_sojourn)
                                .c_str());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }

    // Capacity summary at the paper's 50us GET latency budget.
    std::printf("## max rate (Mrps) with GET 99.9%% sojourn <= 50us\n");
    for (const auto &v : variants) {
        const double cap = max_rate_under_slo(
            [&](double rate) { return run_two_level(v.cfg, *dist, rate); },
            class_sojourn_slo("GET", us(50)), mrps(0.2), mrps(4.2), 9);
        std::printf("%s\t%.2f\n", v.name, to_mrps(cap));
        std::fflush(stdout);
    }
    return 0;
}
