/**
 * @file
 * Ablation: per-core scheduling policy under two-level dispatch — PS
 * (TQ's default, provably tail-optimal for heavy tails) vs LAS
 * (least-attained-service, the dynamic-quantum policy the paper's probe
 * design explicitly enables, section 3.1) vs FCFS.
 *
 * Expected shape on Extreme Bimodal: LAS gives short jobs the best tail
 * of all (they always have least attained service); PS close behind;
 * FCFS collapses early. For long jobs LAS is the harshest (they always
 * lose ties), FCFS the kindest.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

int
main()
{
    bench::banner("Ablation",
                  "core policy: PS vs LAS vs FCFS, Extreme Bimodal, 99.9% "
                  "sojourn (us)");
    auto dist = workload_table::extreme_bimodal();
    const auto rates = rate_grid(mrps(0.5), mrps(4.5), 9);

    const CorePolicy policies[] = {CorePolicy::ProcessorSharing,
                                   CorePolicy::Las, CorePolicy::Fcfs};
    const char *names[] = {"PS", "LAS", "FCFS"};

    for (const char *cls : {"Short", "Long"}) {
        std::printf("## %s jobs\nrate_mrps\tPS\tLAS\tFCFS\n", cls);
        for (double rate : rates) {
            std::printf("%.2f", to_mrps(rate));
            for (int p = 0; p < 3; ++p) {
                TwoLevelConfig cfg;
                cfg.core_policy = policies[p];
                cfg.duration = bench::sim_duration();
                const SimResult r = run_two_level(cfg, *dist, rate);
                std::printf("\t%s",
                            bench::cell_us(r.saturated,
                                           r.by_class(cls).p999_sojourn)
                                .c_str());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }
    (void)names;
    return 0;
}
