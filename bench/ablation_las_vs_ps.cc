/**
 * @file
 * Ablation: per-core scheduling policy under two-level dispatch — PS
 * (TQ's default, provably tail-optimal for heavy tails) vs LAS
 * (least-attained-service, the dynamic-quantum policy the paper's probe
 * design explicitly enables, section 3.1) vs FCFS.
 *
 * Expected shape on Extreme Bimodal: LAS gives short jobs the best tail
 * of all (they always have least attained service); PS close behind;
 * FCFS collapses early. For long jobs LAS is the harshest (they always
 * lose ties), FCFS the kindest.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation",
                  "core policy: PS vs LAS vs FCFS, Extreme Bimodal, 99.9% "
                  "sojourn (us)");
    auto dist = workload_table::extreme_bimodal();
    const auto rates = rate_grid(mrps(0.5), mrps(4.5), 9);

    const CorePolicy policies[] = {CorePolicy::ProcessorSharing,
                                   CorePolicy::Las, CorePolicy::Fcfs};

    // One run per (rate, policy) cell feeds both class tables (this
    // bench used to re-run every simulation once per printed class).
    struct Cell
    {
        TwoLevelConfig cfg;
        double rate;
    };
    std::vector<Cell> cells;
    for (double rate : rates) {
        for (CorePolicy p : policies) {
            Cell c;
            c.cfg.core_policy = p;
            c.cfg.duration = bench::sim_duration();
            c.cfg.stop_when_saturated = true; // cells only print "sat"
            c.rate = rate;
            cells.push_back(c);
        }
    }
    std::vector<SimResult> results(cells.size());
    parallel_run(cells.size(), bench::sweep_threads(argc, argv),
                 [&](size_t i) {
                     results[i] =
                         run_two_level(cells[i].cfg, *dist, cells[i].rate);
                 });

    for (const char *cls : {"Short", "Long"}) {
        std::printf("## %s jobs\nrate_mrps\tPS\tLAS\tFCFS\n", cls);
        size_t i = 0;
        for (double rate : rates) {
            std::printf("%.2f", to_mrps(rate));
            for (int p = 0; p < 3; ++p) {
                const SimResult &r = results[i++];
                std::printf("\t%s",
                            bench::cell_us(r.saturated,
                                           r.by_class(cls).p999_sojourn)
                                .c_str());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }
    return 0;
}
