/**
 * @file
 * Paper Figure 2: maximum request rate sustaining 99.9% slowdown <= 10,
 * vs quantum size, for preemption overheads of 0, 0.1 and 1 us
 * (centralized PS, Extreme Bimodal, 16 cores).
 *
 * Expected shape: at zero overhead smaller quanta always help (~40%
 * more capacity at 0.5us than 5us); at 0.1us overhead the gain shrinks
 * and sub-1us quanta lose capacity; at 1us overhead anything below ~3us
 * reduces capacity.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/central.h"
#include "sim/sweep.h"

using namespace tq;
using namespace tq::sim;

int
main()
{
    bench::banner("Figure 2",
                  "max rate with 99.9% slowdown <= 10 vs quantum, for "
                  "preemption overheads {0, 0.1us, 1us}");
    auto dist = workload_table::extreme_bimodal();
    const std::vector<double> quanta_us = {0.5, 1, 2, 3, 5, 10};
    const std::vector<double> overheads_us = {0.0, 0.1, 1.0};

    std::printf("quantum_us");
    for (double o : overheads_us)
        std::printf("\tov%.1fus_Mrps", o);
    std::printf("\n");

    for (double q : quanta_us) {
        std::printf("%.1f", q);
        for (double o : overheads_us) {
            CentralConfig cfg;
            cfg.quantum = us(q);
            cfg.overheads = Overheads::ideal();
            cfg.overheads.switch_overhead = us(o);
            cfg.duration = bench::sim_duration();
            const double cap = max_rate_under_slo(
                [&](double rate) { return run_central(cfg, *dist, rate); },
                slowdown_slo(10), mrps(0.25), mrps(6.5), 9);
            std::printf("\t%.2f", to_mrps(cap));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
