/**
 * @file
 * Paper Figure 2: maximum request rate sustaining 99.9% slowdown <= 10,
 * vs quantum size, for preemption overheads of 0, 0.1 and 1 us
 * (centralized PS, Extreme Bimodal, 16 cores).
 *
 * Expected shape: at zero overhead smaller quanta always help (~40%
 * more capacity at 0.5us than 5us); at 0.1us overhead the gain shrinks
 * and sub-1us quanta lose capacity; at 1us overhead anything below ~3us
 * reduces capacity.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/dist.h"
#include "sim/central.h"
#include "sim/sweep.h"

using namespace tq;
using namespace tq::sim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 2",
                  "max rate with 99.9% slowdown <= 10 vs quantum, for "
                  "preemption overheads {0, 0.1us, 1us}");
    auto dist = workload_table::extreme_bimodal();
    const std::vector<double> quanta_us = {0.5, 1, 2, 3, 5, 10};
    const std::vector<double> overheads_us = {0.0, 0.1, 1.0};

    // Each (quantum, overhead) capacity search is independent; the
    // bisection itself is inherently serial, so parallelism comes from
    // running the 18 searches concurrently.
    struct Task
    {
        CentralConfig cfg;
    };
    std::vector<Task> tasks;
    for (double q : quanta_us) {
        for (double o : overheads_us) {
            Task t;
            t.cfg.quantum = us(q);
            t.cfg.overheads = Overheads::ideal();
            t.cfg.overheads.switch_overhead = us(o);
            t.cfg.duration = bench::sim_duration();
            t.cfg.stop_when_saturated = true; // SLO probes only
            tasks.push_back(t);
        }
    }
    std::vector<double> caps(tasks.size());
    parallel_run(tasks.size(), bench::sweep_threads(argc, argv),
                 [&](size_t i) {
                     caps[i] = max_rate_under_slo(
                         [&](double rate) {
                             return run_central(tasks[i].cfg, *dist, rate);
                         },
                         slowdown_slo(10), mrps(0.25), mrps(6.5), 9);
                 });

    std::printf("quantum_us");
    for (double o : overheads_us)
        std::printf("\tov%.1fus_Mrps", o);
    std::printf("\n");

    size_t i = 0;
    for (double q : quanta_us) {
        std::printf("%.1f", q);
        for (size_t o = 0; o < overheads_us.size(); ++o)
            std::printf("\t%.2f", to_mrps(caps[i++]));
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
