/**
 * @file
 * Scenario-diversity bench (ROADMAP "Scenario diversity"): how far the
 * tail moves when the convenient defaults — smooth Poisson arrivals,
 * uniform keys, one shard per request — are replaced with the shapes
 * production traces actually have.
 *
 *  - MMPP burst vs Poisson: a 2-state Markov-modulated arrival process
 *    (common/arrival.h) at the *same mean rate* as the Poisson
 *    baseline, on both the calibrated DES and the real runtime. The
 *    report is the p999 tail slowdown attributable purely to burstiness.
 *  - Zipfian MiniKV: skiplist GETs under uniform vs Zipf(0.99) hot keys
 *    (workloads::ZipfKeyGen) served by the real runtime.
 *  - Scatter-gather fan-out: k in {2,4,8} shards of demand/k, completing
 *    on the last response, vs the serial k=1 request — runtime and sim.
 *
 * `--json` emits a machine-readable document (recorded as
 * BENCH_scenarios.json, rendered by tools/plot_bench.py); the default
 * output is the usual self-describing TSV tables. All arms share one
 * seed, and the sim arms honor TQ_BENCH_DURATION_MS like every other
 * DES bench.
 */
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cache/chase.h"
#include "common/arrival.h"
#include "common/dist.h"
#include "net/loadgen.h"
#include "net/runtime_server.h"
#include "probe/probe.h"
#include "runtime/runtime.h"
#include "sim/two_level.h"
#include "telemetry/telemetry.h"
#include "workloads/minikv.h"
#include "workloads/spin.h"

using namespace tq;

namespace {

constexpr uint64_t kSeed = 42;

/** MMPP shape shared by every burst arm: 4x rate while ON, a trickle
 *  while OFF, exponential ~50us phases. */
OnOffConfig
burst_shape()
{
    OnOffConfig c;
    c.on_mult = 4.0;
    c.off_mult = 0.25;
    c.on_ns = 50e3;
    c.off_ns = 50e3;
    c.exponential_phases = true;
    return c;
}

/** Mean rate multiplier of @p c, used to hold the offered mean equal
 *  across Poisson and MMPP arms (duty-cycle weighted). */
double
mean_mult(const OnOffConfig &c)
{
    return (c.on_mult * c.on_ns + c.off_mult * c.off_ns) /
           (c.on_ns + c.off_ns);
}

struct Arm
{
    double p999_us = 0;
    double mean_us = 0;
    uint64_t completed = 0;
    bool saturated = false;
};

// ---------------------------------------------------------------- sim --

Arm
sim_arm(const ArrivalSpec &arrival, double rate_mrps, int fanout)
{
    sim::TwoLevelConfig cfg;
    cfg.num_cores = 8;
    cfg.duration = bench::sim_duration();
    cfg.seed = kSeed;
    cfg.arrival = arrival;
    cfg.fanout = fanout;
    const FixedDist dist(us(8));
    const sim::SimResult r =
        sim::run_two_level(cfg, dist, mrps(rate_mrps));
    Arm a;
    a.completed = r.completed;
    a.saturated = r.saturated;
    a.p999_us = to_us(r.classes.at(0).p999_sojourn);
    a.mean_us = to_us(r.classes.at(0).mean_sojourn);
    return a;
}

// ------------------------------------------------------------ runtime --

/**
 * One open-loop run against a fresh runtime of spin workers. The
 * factory scales demand by 1/fanout so a k-shard request does the same
 * total work as the serial baseline, mirroring the sim's shard split.
 */
Arm
runtime_spin_arm(const ArrivalSpec &arrival, double rate_mrps,
                 uint32_t fanout, double *spread_mean_us)
{
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.quantum_us = 5.0;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.id;
    });
    rt.start();
    net::RuntimeServer server(rt);

    const FixedDist dist(us(20), "spin");
    net::LoadGenConfig lg;
    lg.rate_mrps = rate_mrps;
    lg.duration_sec = 0.15;
    lg.seed = kSeed;
    lg.arrival = arrival;
    lg.fanout = fanout;
    lg.metrics = &rt.metrics();
    const auto factory = [fanout](const ServiceSample &s, uint64_t) {
        runtime::Request req;
        req.job_class = s.job_class;
        req.payload = static_cast<uint64_t>(s.demand / fanout);
        return req;
    };
    const net::ClientStats stats =
        net::run_open_loop(server, dist, factory, lg);
    if (spread_mean_us) {
        *spread_mean_us = 0;
        if (telemetry::kEnabled) {
            const telemetry::MetricsSnapshot snap = rt.telemetry_snapshot();
            if (snap.fanout_spread.count > 0)
                *spread_mean_us = snap.fanout_spread.mean_ns / 1e3;
        }
    }
    rt.stop();
    Arm a;
    a.completed = stats.completed;
    a.p999_us = stats.by_class("spin").p999_sojourn_us;
    a.mean_us = stats.by_class("spin").mean_sojourn_us;
    return a;
}

/** Zipf/uniform MiniKV GET arm: keys drawn by @p gen, store sharded
 *  per worker thread (MiniKV per-op state is not thread-safe). */
Arm
runtime_kv_arm(const workloads::ZipfKeyGen &gen, double rate_mrps,
               double *hottest_share)
{
    static constexpr size_t kKeys = 1 << 14;
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.quantum_us = 5.0;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        thread_local auto kv = [] {
            PreemptGuard guard;
            auto fresh = std::make_unique<workloads::MiniKV>(3, 64);
            fresh->load_sequential(kKeys);
            return fresh;
        }();
        std::string v;
        return static_cast<uint64_t>(kv->get(req.payload, &v));
    });
    rt.start();
    net::RuntimeServer server(rt);

    const FixedDist dist(us(2), "get");
    net::LoadGenConfig lg;
    lg.rate_mrps = rate_mrps;
    lg.duration_sec = 0.15;
    lg.seed = kSeed;
    lg.metrics = &rt.metrics();
    Rng key_rng(kSeed);
    uint64_t hot_hits = 0, draws = 0;
    const uint64_t hot_key = gen.scramble(0);
    const auto factory = [&](const ServiceSample &s, uint64_t) {
        runtime::Request req;
        req.job_class = s.job_class;
        req.payload = gen.sample_key(key_rng);
        ++draws;
        hot_hits += req.payload == hot_key;
        return req;
    };
    const net::ClientStats stats =
        net::run_open_loop(server, dist, factory, lg);
    rt.stop();
    if (hottest_share)
        *hottest_share = draws ? static_cast<double>(hot_hits) / draws : 0;
    Arm a;
    a.completed = stats.completed;
    a.p999_us = stats.by_class("get").p999_sojourn_us;
    a.mean_us = stats.by_class("get").mean_sojourn_us;
    return a;
}

/**
 * Pointer-chase latency with uniform vs Zipf(0.99) hot lines (the
 * fig13-15 "Zipfian mix" delta, recorded here so BENCH_scenarios.json
 * carries the skew story end to end). 16KB arrays at 2us quanta sit in
 * the quantum-sensitive L1 region, so hot-line skew visibly cuts the
 * average access latency: the hot set survives preemption.
 */
double
chase_latency_ns(double zipf_s)
{
    cache::ChaseConfig cfg;
    cfg.array_bytes = 16 * 1024;
    cfg.quantum = us(2);
    cfg.centralized = false;
    std::shared_ptr<workloads::ZipfKeyGen> gen;
    if (zipf_s > 0) {
        gen = std::make_shared<workloads::ZipfKeyGen>(cfg.array_bytes / 64,
                                                      zipf_s);
        cfg.line_sampler = [gen](Rng &rng) { return gen->sample_key(rng); };
    }
    return cache::run_chase(cfg).avg_latency_ns;
}

const char *
cell_arm(const Arm &a, char *buf, size_t n)
{
    if (a.saturated)
        std::snprintf(buf, n, "sat");
    else
        std::snprintf(buf, n, "%.1f", a.p999_us);
    return buf;
}

double
ratio(const Arm &num, const Arm &den)
{
    return den.p999_us > 0 ? num.p999_us / den.p999_us : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;

    const OnOffConfig shape = burst_shape();
    ArrivalSpec poisson;
    ArrivalSpec mmpp;
    mmpp.kind = ArrivalSpec::Kind::OnOff;
    mmpp.onoff = shape;

    // Burst arms offer the same *mean* rate: the MMPP base rate is the
    // target divided by the duty-cycle multiplier, so any tail movement
    // is burstiness, not extra load.
    const double sim_rate = 0.5;     // Mrps; 8 cores / 8us = 1 Mrps cap
    const double rt_rate = 0.01;     // Mrps; threads timeshare this host
    const Arm sim_poisson = sim_arm(poisson, sim_rate, 1);
    const Arm sim_mmpp = sim_arm(mmpp, sim_rate / mean_mult(shape), 1);
    const Arm rt_poisson = runtime_spin_arm(poisson, rt_rate, 1, nullptr);
    const Arm rt_mmpp = runtime_spin_arm(mmpp, rt_rate / mean_mult(shape),
                                         1, nullptr);

    const workloads::ZipfKeyGen uniform_keys(1 << 14, 0.0);
    const workloads::ZipfKeyGen zipf_keys(1 << 14, 0.99);
    double uniform_share = 0, zipf_share = 0;
    const Arm kv_uniform = runtime_kv_arm(uniform_keys, rt_rate,
                                          &uniform_share);
    const Arm kv_zipf = runtime_kv_arm(zipf_keys, rt_rate, &zipf_share);

    const double chase_uniform_ns = chase_latency_ns(0);
    const double chase_zipf_ns = chase_latency_ns(0.99);

    const std::vector<int> ks = {1, 2, 4, 8};
    std::vector<Arm> fan_sim, fan_rt;
    std::vector<double> fan_spread_us;
    for (int k : ks) {
        fan_sim.push_back(sim_arm(poisson, sim_rate, k));
        double spread = 0;
        fan_rt.push_back(runtime_spin_arm(
            poisson, rt_rate, static_cast<uint32_t>(k), &spread));
        fan_spread_us.push_back(spread);
    }

    if (json) {
        char date[32];
        const std::time_t t = std::time(nullptr);
        std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&t));
        std::printf("{\n");
        std::printf(
            "  \"description\": \"Scenario diversity: p999 sojourn under "
            "MMPP bursts vs Poisson (same mean rate, sim + runtime), "
            "uniform vs Zipf(0.99) MiniKV GETs on the runtime, uniform "
            "vs Zipf(0.99) pointer-chase lines in the cache model, and "
            "scatter-gather fan-out k in {1,2,4,8} (sim + runtime). "
            "Runtime arms timeshare one host, so cross-arm ratios are "
            "the signal, not absolute values.\",\n");
        std::printf("  \"date\": \"%s\",\n", date);
        std::printf("  \"machine\": { \"cpus\": %u },\n",
                    std::thread::hardware_concurrency());
        std::printf(
            "  \"config\": { \"window_ms\": %.0f, \"sim_rate_mrps\": %.2f, "
            "\"runtime_rate_mrps\": %.3f, \"mmpp_on_mult\": %.2f, "
            "\"mmpp_off_mult\": %.2f, \"mmpp_phase_us\": %.0f, "
            "\"zipf_s\": 0.99, \"minikv_keys\": %d, \"seed\": %llu },\n",
            to_sec(bench::sim_duration()) * 1e3, sim_rate, rt_rate,
            shape.on_mult, shape.off_mult, shape.on_ns / 1e3, 1 << 14,
            static_cast<unsigned long long>(kSeed));
        std::printf("  \"scenarios\": {\n");
        const auto burst_obj = [](const char *key, const Arm &base,
                                  const Arm &burst, bool last) {
            std::printf(
                "    \"%s\": { \"poisson_p999_us\": %.2f, "
                "\"mmpp_p999_us\": %.2f, \"tail_slowdown\": %.2f, "
                "\"saturated\": %s }%s\n",
                key, base.p999_us, burst.p999_us, ratio(burst, base),
                burst.saturated || base.saturated ? "true" : "false",
                last ? "" : ",");
        };
        burst_obj("burst_sim", sim_poisson, sim_mmpp, false);
        burst_obj("burst_runtime", rt_poisson, rt_mmpp, false);
        std::printf(
            "    \"zipf_minikv\": { \"uniform_p999_us\": %.2f, "
            "\"zipf_p999_us\": %.2f, \"uniform_mean_us\": %.2f, "
            "\"zipf_mean_us\": %.2f, \"hottest_key_share\": %.4f },\n",
            kv_uniform.p999_us, kv_zipf.p999_us, kv_uniform.mean_us,
            kv_zipf.mean_us, zipf_share);
        std::printf(
            "    \"zipf_chase\": { \"array_kb\": 16, \"quantum_us\": 2, "
            "\"uniform_avg_ns\": %.2f, \"zipf_avg_ns\": %.2f, "
            "\"latency_ratio\": %.2f },\n",
            chase_uniform_ns, chase_zipf_ns,
            chase_uniform_ns > 0 ? chase_zipf_ns / chase_uniform_ns : 0);
        std::printf("    \"fanout_sim\": [\n");
        for (size_t i = 0; i < ks.size(); ++i)
            std::printf("      { \"k\": %d, \"mean_us\": %.2f, "
                        "\"p999_us\": %.2f, \"mean_vs_k1\": %.2f }%s\n",
                        ks[i], fan_sim[i].mean_us, fan_sim[i].p999_us,
                        fan_sim[0].mean_us > 0
                            ? fan_sim[i].mean_us / fan_sim[0].mean_us
                            : 0,
                        i + 1 < ks.size() ? "," : "");
        std::printf("    ],\n");
        std::printf("    \"fanout_runtime\": [\n");
        for (size_t i = 0; i < ks.size(); ++i)
            std::printf("      { \"k\": %d, \"mean_us\": %.2f, "
                        "\"p999_us\": %.2f, \"spread_mean_us\": %.2f }%s\n",
                        ks[i], fan_rt[i].mean_us, fan_rt[i].p999_us,
                        fan_spread_us[i],
                        i + 1 < ks.size() ? "," : "");
        std::printf("    ]\n");
        std::printf("  }\n");
        std::printf("}\n");
        return 0;
    }

    bench::banner("scenario_burst_skew",
                  "tail impact of MMPP bursts, Zipfian hot keys and "
                  "scatter-gather fan-out vs the smooth baselines");
    char b1[32], b2[32];
    std::printf("## burst: p999 sojourn, same mean rate\n");
    std::printf("engine\tpoisson_p999_us\tmmpp_p999_us\ttail_slowdown\n");
    std::printf("sim\t%s\t%s\t%.2f\n", cell_arm(sim_poisson, b1, sizeof b1),
                cell_arm(sim_mmpp, b2, sizeof b2),
                ratio(sim_mmpp, sim_poisson));
    std::printf("runtime\t%.1f\t%.1f\t%.2f\n", rt_poisson.p999_us,
                rt_mmpp.p999_us, ratio(rt_mmpp, rt_poisson));
    std::printf("## zipf minikv gets (runtime)\n");
    std::printf("keys\tp999_us\tmean_us\thottest_key_share\n");
    std::printf("uniform\t%.1f\t%.1f\t%.4f\n", kv_uniform.p999_us,
                kv_uniform.mean_us, uniform_share);
    std::printf("zipf0.99\t%.1f\t%.1f\t%.4f\n", kv_zipf.p999_us,
                kv_zipf.mean_us, zipf_share);
    std::printf("## zipf pointer-chase (16KB arrays, 2us quanta, TLS)\n");
    std::printf("lines\tavg_latency_ns\n");
    std::printf("uniform\t%.2f\n", chase_uniform_ns);
    std::printf("zipf0.99\t%.2f\n", chase_zipf_ns);
    std::printf("## scatter-gather fan-out (sim)\n");
    std::printf("k\tmean_us\tp999_us\tmean_vs_k1\n");
    for (size_t i = 0; i < ks.size(); ++i)
        std::printf("%d\t%.1f\t%s\t%.2f\n", ks[i], fan_sim[i].mean_us,
                    cell_arm(fan_sim[i], b1, sizeof b1),
                    fan_sim[0].mean_us > 0
                        ? fan_sim[i].mean_us / fan_sim[0].mean_us
                        : 0);
    std::printf("## scatter-gather fan-out (runtime)\n");
    std::printf("k\tmean_us\tp999_us\tspread_mean_us\n");
    for (size_t i = 0; i < ks.size(); ++i)
        std::printf("%d\t%.1f\t%.1f\t%.2f\n", ks[i], fan_rt[i].mean_us,
                    fan_rt[i].p999_us, fan_spread_us[i]);
    return 0;
}
