/**
 * @file
 * Paper Table 3: probing overhead (%) and yield-timing mean absolute
 * error (ns) of CI (instruction counters), CI-Cycles (counter-gated
 * clock checks) and TQ's physical-clock placement, across the 27
 * SPLASH-2/PARSEC/Phoenix-style workloads, at a 2us target quantum.
 * Static probe counts are printed as well (the sparsity argument of
 * section 3.1).
 *
 * The TQopt columns report the verify-guided placement optimizer
 * (optimizer.h) applied after the TQ pass with target = the
 * placement's own proven bound: fewer probes (and lower overhead) at
 * an unchanged-or-tighter verified bound. Every reported placement —
 * one-shot and optimized — must pass verify_module, or the bench
 * exits nonzero.
 *
 * Expected shape: TQ beats CI on *both* overhead and MAE for the large
 * majority of workloads (22/26 in the paper), with means substantially
 * lower (paper: overhead 17.65/19.30/10.05 %, MAE 2122/1891/902 ns);
 * CI-Cycles costs more than CI and still times worse than TQ; TQopt
 * sheds probes on most workloads without loosening any proven bound.
 */
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "compiler/report.h"
#include "compiler/verifier.h"
#include "progs/programs.h"

using namespace tq;
using namespace tq::compiler;

int
main()
{
    bench::banner("Table 3",
                  "probing overhead (%) | yield MAE (ns) | static probes, "
                  "per technique, 2us quantum");
    PassConfig pcfg;
    pcfg.bound = 400;
    ExecConfig ecfg;
    ecfg.quantum_cycles = 2.0 * 1e3 * ecfg.cost.cycles_per_ns;
    ecfg.seed = 11;

    std::printf("workload\tCI_ovh%%\tCICY_ovh%%\tTQ_ovh%%\tTQopt_ovh%%\t"
                "CI_mae\tCICY_mae\tTQ_mae\tCI_probes\tTQ_probes\t"
                "TQopt_probes\tTQ_bound\tTQopt_bound\n");

    double sum_ci_o = 0, sum_cy_o = 0, sum_tq_o = 0, sum_opt_o = 0;
    double sum_ci_m = 0, sum_cy_m = 0, sum_tq_m = 0;
    int n = 0;
    int tq_wins_both = 0;
    int opt_fewer_probes = 0;
    int opt_bound_loosened = 0;

    for (const auto &name : progs::program_names()) {
        const Module m = progs::make_program(name);
        const ComparisonRow row = compare_techniques(m, pcfg, ecfg);
        // Every reported placement must carry a static proof of the
        // probe-free-stretch bound; a row without one is not a result.
        if (!row.ci.verified || !row.ci_cycles.verified ||
            !row.tq.verified || !row.tq_opt.verified) {
            std::fprintf(stderr,
                         "table3: %s: placement failed verification\n",
                         name.c_str());
            return EXIT_FAILURE;
        }
        std::printf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.0f\t%.0f\t%.0f\t"
                    "%d\t%d\t%d\t%llu\t%llu\n",
                    name.c_str(), row.ci.overhead * 100,
                    row.ci_cycles.overhead * 100, row.tq.overhead * 100,
                    row.tq_opt.overhead * 100, row.ci.mae_ns,
                    row.ci_cycles.mae_ns, row.tq.mae_ns,
                    row.ci.static_probes, row.tq.static_probes,
                    row.tq_opt.static_probes,
                    static_cast<unsigned long long>(row.tq.static_bound),
                    static_cast<unsigned long long>(
                        row.tq_opt.static_bound));
        std::fflush(stdout);
        sum_ci_o += row.ci.overhead * 100;
        sum_cy_o += row.ci_cycles.overhead * 100;
        sum_tq_o += row.tq.overhead * 100;
        sum_opt_o += row.tq_opt.overhead * 100;
        sum_ci_m += row.ci.mae_ns;
        sum_cy_m += row.ci_cycles.mae_ns;
        sum_tq_m += row.tq.mae_ns;
        ++n;
        if (row.tq.overhead <= row.ci.overhead &&
            row.tq.mae_ns <= row.ci.mae_ns)
            ++tq_wins_both;
        if (row.tq_opt.static_probes < row.tq.static_probes)
            ++opt_fewer_probes;
        if (row.tq_opt.static_bound > row.tq.static_bound)
            ++opt_bound_loosened;
    }
    std::printf("mean\t%.2f\t%.2f\t%.2f\t%.2f\t%.0f\t%.0f\t%.0f\t"
                "-\t-\t-\t-\t-\n",
                sum_ci_o / n, sum_cy_o / n, sum_tq_o / n, sum_opt_o / n,
                sum_ci_m / n, sum_cy_m / n, sum_tq_m / n);
    std::printf("# TQ better than CI on both overhead and MAE: %d / %d "
                "workloads (paper: 22/26)\n",
                tq_wins_both, n);
    std::printf("# TQopt fewer probes than TQ at same-or-tighter bound: "
                "%d / %d workloads\n",
                opt_fewer_probes, n);
    // The optimizer's contract is "never loosen": a loosened bound is
    // a bug, not a tradeoff.
    if (opt_bound_loosened > 0) {
        std::fprintf(stderr,
                     "table3: optimizer loosened the proven bound on %d "
                     "workloads\n",
                     opt_bound_loosened);
        return EXIT_FAILURE;
    }
    return 0;
}
