/**
 * @file
 * Integration tests for the real TQ runtime: requests flow client ->
 * dispatcher -> worker -> response; forced multitasking preempts long
 * jobs so short ones overtake them (the system's whole point); FCFS
 * variant does not; counters and JSQ views stay consistent; the open-
 * loop load generator round-trips everything.
 *
 * These run on real threads. The host timeshares one core, so tests
 * assert ordering and conservation, never absolute throughput.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "net/loadgen.h"
#include "net/runtime_server.h"
#include "runtime/runtime.h"
#include "telemetry/telemetry.h"
#include "workloads/spin.h"

namespace tq::runtime {
namespace {

/** Handler: spin for payload nanoseconds, return the id. */
Handler
spin_handler()
{
    return [](const Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.id;
    };
}

Request
make_spin_request(uint64_t id, double ns, int job_class = 0)
{
    Request req;
    req.id = id;
    req.gen_cycles = rdcycles();
    req.job_class = job_class;
    req.payload = static_cast<uint64_t>(ns);
    return req;
}

/** Submit-and-wait helper. */
std::vector<Response>
run_requests(Runtime &rt, const std::vector<Request> &reqs,
             double timeout_sec = 60.0)
{
    for (const auto &r : reqs)
        while (!rt.submit(r))
            std::this_thread::yield();
    std::vector<Response> responses;
    const Cycles deadline =
        rdcycles() + ns_to_cycles(timeout_sec * 1e9);
    while (responses.size() < reqs.size() && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    return responses;
}

TEST(Runtime, EndToEndAllRequestsAnswered)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 300; ++i)
        reqs.push_back(make_spin_request(i, 1000 + (i % 5) * 1000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());

    std::map<uint64_t, const Response *> by_id;
    for (const auto &r : responses)
        by_id[r.id] = &r;
    ASSERT_EQ(by_id.size(), reqs.size()) << "no duplicate ids";
    for (const auto &req : reqs) {
        ASSERT_TRUE(by_id.count(req.id));
        const Response &resp = *by_id[req.id];
        EXPECT_EQ(resp.result, req.id) << "handler result preserved";
        EXPECT_GE(resp.worker, 0);
        EXPECT_LT(resp.worker, cfg.num_workers);
        EXPECT_GE(resp.sojourn_ns(), static_cast<double>(req.payload) * 0.5)
            << "sojourn at least ~the service demand";
    }
    EXPECT_EQ(rt.dispatched(), reqs.size());
    rt.stop();
}

TEST(Runtime, ShortJobsOvertakeLongJobUnderPs)
{
    // One worker: a 20ms job enters first, then 20 x ~20us jobs. With
    // 2us quanta the shorts must all complete long before the long job.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 2.0;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    reqs.push_back(make_spin_request(999, 20e6, /*job_class=*/1));
    for (uint64_t i = 0; i < 20; ++i)
        reqs.push_back(make_spin_request(i, 20e3, 0));
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());

    Cycles long_done = 0;
    std::vector<Cycles> short_done;
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            short_done.push_back(r.done_cycles);
    }
    ASSERT_NE(long_done, 0u);
    ASSERT_EQ(short_done.size(), 20u);
    for (Cycles c : short_done)
        EXPECT_LT(c, long_done) << "short job blocked behind long job";
    rt.stop();
}

TEST(Runtime, FcfsRunsInOrder)
{
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.work = WorkPolicy::Fcfs;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    reqs.push_back(make_spin_request(999, 3e6, 1)); // 3ms first
    for (uint64_t i = 0; i < 5; ++i)
        reqs.push_back(make_spin_request(i, 10e3, 0));
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());
    Cycles long_done = 0;
    Cycles first_short_done = ~Cycles{0};
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            first_short_done = std::min(first_short_done, r.done_cycles);
    }
    EXPECT_LT(long_done, first_short_done)
        << "FCFS must finish the long job before any short";
    rt.stop();
}

TEST(Runtime, LasSchedulesFreshJobsFirst)
{
    // LAS: a fresh short job must finish before an old long job even
    // though the long job was admitted first.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 2.0;
    cfg.work = WorkPolicy::Las;
    Runtime rt(cfg, spin_handler());
    rt.start();
    std::vector<Request> reqs;
    reqs.push_back(make_spin_request(999, 5e6, 1)); // 5ms first
    for (uint64_t i = 0; i < 10; ++i)
        reqs.push_back(make_spin_request(i, 20e3, 0));
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());
    Cycles long_done = 0;
    Cycles last_short = 0;
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            last_short = std::max(last_short, r.done_cycles);
    }
    EXPECT_LT(last_short, long_done);
    rt.stop();
}

TEST(Runtime, LasIsFifoAmongEqualQuanta)
{
    // Regression for the LAS heap rewrite: the old implementation
    // scanned its ready deque for the minimum-quanta task, which made
    // equal-quanta tasks run in admission order. The heap keys on
    // (quanta, admit_seq) and must preserve that order exactly. A long
    // blocker admitted first accumulates quanta; the shorts all stay at
    // zero and finish within one quantum, so their completion order is
    // their admission (= submission) order.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 200.0;
    cfg.work = WorkPolicy::Las;
    Runtime rt(cfg, spin_handler());
    rt.start();
    std::vector<Request> reqs;
    reqs.push_back(make_spin_request(999, 5e6, 1)); // 5ms blocker first
    constexpr uint64_t kShorts = 8;
    for (uint64_t i = 0; i < kShorts; ++i)
        reqs.push_back(make_spin_request(i, 50e3, 0)); // 50us each
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());
    std::map<uint64_t, Cycles> done;
    for (const auto &r : responses)
        done[r.id] = r.done_cycles;
    for (uint64_t i = 1; i < kShorts; ++i)
        EXPECT_LT(done[i - 1], done[i])
            << "equal-quanta jobs must finish in admission order";
    for (uint64_t i = 0; i < kShorts; ++i)
        EXPECT_LT(done[i], done[999]) << "blocker has higher quanta";
    rt.stop();
}

TEST(Runtime, WorkerCountersConsistentAfterDrain)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 200; ++i)
        reqs.push_back(make_spin_request(i, 5000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());

    uint64_t finished = 0;
    for (int w = 0; w < cfg.num_workers; ++w) {
        auto &line = rt.worker(w).stats_line();
        finished += line.finished.load();
        EXPECT_EQ(line.current_quanta.load(), 0u)
            << "current-jobs quanta must return to zero when idle";
    }
    EXPECT_EQ(finished, reqs.size());
    for (uint64_t len : rt.queue_lengths())
        EXPECT_EQ(len, 0u);
    rt.stop();
}

TEST(Runtime, PreemptionChargesQuantaCounters)
{
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 1.0;
    Runtime rt(cfg, spin_handler());
    rt.start();
    // A 2ms job at 1us quanta => >1000 serviced quanta.
    const auto responses =
        run_requests(rt, {make_spin_request(1, 2e6)}, 120.0);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_GT(rt.worker(0).stats_line().total_quanta.load(), 100u);
    rt.stop();
}

TEST(Runtime, JsqSpreadsLoadAcrossWorkers)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.dispatch = DispatchPolicy::JsqMsq;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 100; ++i)
        reqs.push_back(make_spin_request(i, 50e3)); // 50us each
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());
    int per_worker[2] = {0, 0};
    for (const auto &r : responses)
        ++per_worker[r.worker];
    // JSQ must not starve a worker (perfect balance not required: the
    // host timeshares, so queue snapshots vary).
    EXPECT_GT(per_worker[0], 10);
    EXPECT_GT(per_worker[1], 10);
    rt.stop();
}

class DispatchPolicies
    : public ::testing::TestWithParam<DispatchPolicy>
{
};

TEST_P(DispatchPolicies, AllPoliciesDeliverEverything)
{
    RuntimeConfig cfg;
    cfg.num_workers = 3;
    cfg.dispatch = GetParam();
    Runtime rt(cfg, spin_handler());
    rt.start();
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 150; ++i)
        reqs.push_back(make_spin_request(i, 2000));
    const auto responses = run_requests(rt, reqs);
    EXPECT_EQ(responses.size(), reqs.size());
    rt.stop();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DispatchPolicies,
                         ::testing::Values(DispatchPolicy::JsqMsq,
                                           DispatchPolicy::JsqRandom,
                                           DispatchPolicy::Random,
                                           DispatchPolicy::PowerOfTwo),
                         [](const auto &info) {
                             switch (info.param) {
                               case DispatchPolicy::JsqMsq:
                                 return "JsqMsq";
                               case DispatchPolicy::JsqRandom:
                                 return "JsqRandom";
                               case DispatchPolicy::Random:
                                 return "Random";
                               case DispatchPolicy::PowerOfTwo:
                                 return "PowerOfTwo";
                             }
                             return "Unknown";
                         });

TEST(Lifecycle, StatesProgressAcrossStartAndStop)
{
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    Runtime rt(cfg, spin_handler());
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Created);
    rt.start();
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Running);
    rt.stop();
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
    EXPECT_FALSE(rt.submit(make_spin_request(0, 1000)))
        << "submit must reject after stop";
    rt.stop(); // idempotent
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
}

TEST(Lifecycle, StopWithUndrainedTxRingReturns)
{
    // Regression: a client that stops draining responses must not wedge
    // stop(). Small TX rings fill after a handful of jobs; the worker's
    // push loop must notice the forced stop and drop instead of spinning.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.ring_capacity = 4;
    cfg.stop_deadline_sec = 0.2;
    Runtime rt(cfg, spin_handler());
    rt.start();
    // With 4-slot rings and no collector the whole pipeline backs up
    // (TX full -> worker blocked -> dispatch ring full -> RX full), so
    // bound the submission attempts: the jobs that do get in are enough
    // to wedge every stage, which is the scenario under test.
    uint64_t accepted = 0;
    for (uint64_t i = 0; i < 32; ++i)
        for (int attempt = 0; attempt < 1000; ++attempt) {
            if (rt.submit(make_spin_request(i, 1000))) {
                ++accepted;
                break;
            }
            std::this_thread::yield();
        }
    ASSERT_GT(accepted, 4u) << "need enough jobs to fill the TX ring";

    const Cycles t0 = rdcycles();
    rt.stop(); // nobody ever drains: must still return
    const double stop_sec = cycles_to_ns(rdcycles() - t0) / 1e9;
    EXPECT_LT(stop_sec, 30.0) << "stop() must be bounded by its deadline";
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
    // Every accepted job is accounted: response still in the TX ring,
    // response dropped at the full ring, or job abandoned by the forced
    // stop before it ran.
    std::vector<Response> leftovers;
    rt.drain_responses(leftovers);
    EXPECT_EQ(leftovers.size() + rt.dropped_responses() +
                  rt.abandoned_jobs(),
              accepted);
    EXPECT_GT(rt.dropped_responses() + rt.abandoned_jobs(), 0u);
}

// Regression: jobs submitted before start() (legal — submit is accepted
// in Created) used to vanish when the runtime was torn down without
// ever starting: drain() reported a clean shutdown while the RX ring
// still held the requests and no counter mentioned them. They must
// surface as abandoned, and the drain must not claim to be clean.
TEST(Lifecycle, NeverStartedRuntimeAbandonsQueuedJobs)
{
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    constexpr uint64_t kJobs = 8;
    {
        Runtime rt(cfg, spin_handler());
        for (uint64_t i = 0; i < kJobs; ++i)
            ASSERT_TRUE(rt.submit(make_spin_request(i, 1000)));
        EXPECT_FALSE(rt.drain(/*deadline_sec=*/1.0))
            << "queued jobs were lost; the drain must not report clean";
        EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
        EXPECT_EQ(rt.abandoned_jobs(), kJobs);
        EXPECT_EQ(rt.dropped_responses(), 0u);
    }
    // A never-started runtime with nothing queued drains clean.
    Runtime idle(cfg, spin_handler());
    EXPECT_TRUE(idle.drain(/*deadline_sec=*/1.0));
    EXPECT_EQ(idle.abandoned_jobs(), 0u);
}

// The dispatcher expands a fanout-k request into k shard dispatches,
// each with its own policy pick; every (id, shard) pair must come back
// exactly once.
TEST(Runtime, DispatcherExpandsFanoutIntoShards)
{
    RuntimeConfig cfg;
    cfg.num_workers = 4;
    Runtime rt(cfg, spin_handler());
    rt.start();
    constexpr uint64_t kJobs = 32;
    constexpr uint32_t kFanout = 3;
    for (uint64_t i = 0; i < kJobs; ++i) {
        Request req = make_spin_request(i, 1000);
        req.fanout = kFanout;
        while (!rt.submit(req))
            std::this_thread::yield();
    }
    std::vector<Response> responses;
    const Cycles deadline = rdcycles() + ns_to_cycles(60e9);
    while (responses.size() < kJobs * kFanout && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    ASSERT_EQ(responses.size(), kJobs * kFanout);
    EXPECT_EQ(rt.dispatched(), kJobs * kFanout);
    std::map<uint64_t, std::set<uint32_t>> shards;
    for (const auto &r : responses) {
        EXPECT_EQ(r.fanout, kFanout);
        EXPECT_TRUE(shards[r.id].insert(r.shard).second)
            << "duplicate shard " << r.shard << " of id " << r.id;
    }
    ASSERT_EQ(shards.size(), kJobs);
    for (const auto &[id, s] : shards)
        EXPECT_EQ(s.size(), kFanout);
    rt.stop();
}

TEST(Lifecycle, DrainFinishesQueuedJobsBeforeJoining)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();
    constexpr uint64_t kJobs = 64;
    for (uint64_t i = 0; i < kJobs; ++i)
        while (!rt.submit(make_spin_request(i, 2000)))
            std::this_thread::yield();

    // Default rings hold every response, so a drain with a generous
    // deadline must finish all queued work without any collector.
    EXPECT_TRUE(rt.drain(/*deadline_sec=*/60.0));
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
    EXPECT_EQ(rt.abandoned_jobs(), 0u);
    EXPECT_EQ(rt.dropped_responses(), 0u);
    std::vector<Response> responses;
    rt.drain_responses(responses);
    EXPECT_EQ(responses.size(), kJobs);
    EXPECT_EQ(rt.dispatched(), kJobs);
}

TEST(Lifecycle, BatchedDispatchAccountsForEveryAcceptedJob)
{
    // The dispatcher now consumes RX in pop_n batches; a drain must
    // still account for every accepted request exactly once:
    // delivered + dropped + abandoned == accepted. Small rings and a
    // finite push budget make all three outcomes reachable.
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.ring_capacity = 8;
    cfg.push_spin_limit = 200;
    cfg.dispatch_batch = 16;
    cfg.stop_deadline_sec = 5.0;
    Runtime rt(cfg, spin_handler());
    rt.start();
    uint64_t accepted = 0;
    std::vector<Response> responses;
    for (uint64_t i = 0; i < 400; ++i) {
        if (rt.submit(make_spin_request(i, 500)))
            ++accepted;
        if ((i & 63) == 63)
            rt.drain_responses(responses); // keep TX mostly drained
    }
    ASSERT_GT(accepted, 0u);
    EXPECT_TRUE(rt.drain(/*deadline_sec=*/60.0));
    rt.drain_responses(responses);
    EXPECT_EQ(responses.size() + rt.dropped_responses() +
                  rt.abandoned_jobs(),
              accepted)
        << "every accepted job must be delivered, dropped, or abandoned";
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
}

TEST(Lifecycle, DispatchBatchOfOneMatchesScalarBehaviour)
{
    // dispatch_batch = 1 degenerates to the per-request path (one pop,
    // one stats refresh per request); everything still round-trips.
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.dispatch_batch = 1;
    Runtime rt(cfg, spin_handler());
    rt.start();
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 100; ++i)
        reqs.push_back(make_spin_request(i, 1000));
    const auto responses = run_requests(rt, reqs);
    EXPECT_EQ(responses.size(), reqs.size());
    rt.stop();
    EXPECT_EQ(rt.abandoned_jobs() + rt.dropped_responses(), 0u);
}

TEST(Lifecycle, StopIsIdempotentAndThreadSafe)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();
    for (uint64_t i = 0; i < 50; ++i)
        while (!rt.submit(make_spin_request(i, 1000)))
            std::this_thread::yield();

    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t)
        stoppers.emplace_back([&rt] { rt.stop(); });
    rt.stop();
    for (auto &t : stoppers)
        t.join();
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
}

TEST(Lifecycle, PushSpinLimitDropsInsteadOfBlocking)
{
    // Overflow policy: with a finite spin budget and a stalled collector,
    // a full TX ring must produce counted drops while the runtime is
    // still Running — not only at shutdown.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.ring_capacity = 4;
    cfg.push_spin_limit = 50;
    cfg.stop_deadline_sec = 0.2;
    Runtime rt(cfg, spin_handler());
    rt.start();
    constexpr uint64_t kJobs = 64;
    for (uint64_t i = 0; i < kJobs; ++i)
        while (!rt.submit(make_spin_request(i, 500)))
            std::this_thread::yield();
    // The bounded policy guarantees progress: every accepted job either
    // finishes (response delivered or dropped at the full TX ring) or is
    // dropped by the dispatcher once its push budget runs out. Nothing
    // blocks forever.
    const Cycles deadline = rdcycles() + ns_to_cycles(60e9);
    const auto settled = [&] {
        return rt.worker(0).stats_line().finished.load() +
                   rt.abandoned_jobs() >=
               kJobs;
    };
    while (!settled() && rdcycles() < deadline)
        std::this_thread::yield();
    EXPECT_EQ(rt.worker(0).stats_line().finished.load() +
                  rt.abandoned_jobs(),
              kJobs);
    EXPECT_GT(rt.dropped_responses(), 0u);
    EXPECT_GT(rt.tx_ring_full_spins(), 0u);
    rt.stop();
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
}

TEST(Runtime, PowerOfTwoWithSingleWorkerDegrades)
{
    // Regression: PowerOfTwo with one worker used to sample rng.below(0)
    // and index workers_[1] (out of bounds in release builds).
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.dispatch = DispatchPolicy::PowerOfTwo;
    Runtime rt(cfg, spin_handler());
    rt.start();
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 50; ++i)
        reqs.push_back(make_spin_request(i, 2000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    for (const auto &r : responses)
        EXPECT_EQ(r.worker, 0);
    rt.stop();
}

TEST(Runtime, QueueLengthsAndSnapshotsSafeWhileDispatching)
{
    // Regression for the cross-thread race: external queue_lengths() and
    // telemetry_snapshot() calls used to mutate the dispatcher's own
    // wrap-tracking state while it ran. Hammer both from two threads
    // during a dispatch storm; TSan (CI) proves the absence of races,
    // and the final counters prove nothing was corrupted.
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::atomic<bool> done{false};
    std::thread observer1([&] {
        while (!done.load()) {
            for (uint64_t len : rt.queue_lengths())
                EXPECT_LT(len, 1u << 20) << "queue length corrupted";
            (void)rt.dispatched();
            std::this_thread::yield();
        }
    });
    std::thread observer2([&] {
        while (!done.load()) {
            const auto snap = rt.telemetry_snapshot();
            EXPECT_LE(snap.finished, snap.dispatched + 1000000u);
            std::this_thread::yield();
        }
    });

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 400; ++i)
        reqs.push_back(make_spin_request(i, 1000 + (i % 7) * 500));
    const auto responses = run_requests(rt, reqs);
    done.store(true);
    observer1.join();
    observer2.join();
    ASSERT_EQ(responses.size(), reqs.size());
    EXPECT_EQ(rt.dispatched(), reqs.size());
    for (uint64_t len : rt.queue_lengths())
        EXPECT_EQ(len, 0u);
    rt.stop();
}

// ---------------------------------------------------------------------
// Sharded dispatcher tier (DESIGN.md §4g): front-tier steering, shard
// ownership, bounded stealing, and drain accounting per shard.
// ---------------------------------------------------------------------

TEST(Sharded, EndToEndAcrossShardsWithFrontTierSteering)
{
    RuntimeConfig cfg;
    cfg.num_workers = 4;
    cfg.num_dispatchers = 2;
    Runtime rt(cfg, spin_handler());
    EXPECT_EQ(rt.num_dispatcher_shards(), 2);
    EXPECT_EQ(rt.shard_workers(0).first, 0);
    EXPECT_EQ(rt.shard_workers(0).count, 2);
    EXPECT_EQ(rt.shard_workers(1).first, 2);
    EXPECT_EQ(rt.shard_workers(1).count, 2);
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 400; ++i)
        reqs.push_back(make_spin_request(i, 1000 + (i % 5) * 500));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    std::set<uint64_t> ids;
    for (const auto &r : responses) {
        EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
        EXPECT_GE(r.worker, 0);
        EXPECT_LT(r.worker, cfg.num_workers);
    }
    EXPECT_EQ(rt.dispatched(), reqs.size());
    EXPECT_EQ(rt.dispatched(0) + rt.dispatched(1), reqs.size())
        << "per-shard counters must partition the total";
    // Front-tier rotation spreads idle ties, so over 400 requests both
    // shards must have forwarded work.
    EXPECT_GT(rt.dispatched(0), 0u);
    EXPECT_GT(rt.dispatched(1), 0u);
    EXPECT_TRUE(rt.drain(/*deadline_sec=*/60.0));
    EXPECT_EQ(rt.abandoned_jobs(), 0u);
}

TEST(Sharded, OwnershipRespectedWithStealingDisabled)
{
    // steal_max_batch = 0 pins the static partition: a job submitted to
    // shard s must complete on one of shard s's own workers.
    RuntimeConfig cfg;
    cfg.num_workers = 4;
    cfg.num_dispatchers = 2;
    cfg.steal_max_batch = 0;
    Runtime rt(cfg, spin_handler());
    rt.start();

    constexpr uint64_t kJobs = 64;
    for (uint64_t i = 0; i < kJobs; ++i) {
        const int shard = static_cast<int>(i % 2);
        while (!rt.submit_to_shard(make_spin_request(i, 1000), shard))
            std::this_thread::yield();
    }
    std::vector<Response> responses;
    const Cycles deadline = rdcycles() + ns_to_cycles(60e9);
    while (responses.size() < kJobs && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    ASSERT_EQ(responses.size(), kJobs);
    for (const auto &r : responses) {
        const int shard = static_cast<int>(r.id % 2);
        const ShardSpan span = rt.shard_workers(shard);
        EXPECT_GE(r.worker, span.first) << "id " << r.id;
        EXPECT_LT(r.worker, span.first + span.count) << "id " << r.id;
    }
    EXPECT_EQ(rt.dispatched(0), kJobs / 2);
    EXPECT_EQ(rt.dispatched(1), kJobs / 2);
    rt.stop();
}

TEST(Sharded, StealRebalancesSkewedBacklog)
{
    // The whole backlog lands on shard 0 before start(); shard 1 comes
    // up idle and must pull work across. Conservation: the RX queues
    // are MPMC, so a stolen job is popped (and forwarded) exactly once
    // — per-shard dispatched counts must still partition the total.
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.num_dispatchers = 2;
    cfg.steal_max_batch = 8;
    cfg.steal_min_load = 2;
    Runtime rt(cfg, spin_handler());
    constexpr uint64_t kJobs = 3000;
    for (uint64_t i = 0; i < kJobs; ++i)
        ASSERT_TRUE(rt.submit_to_shard(make_spin_request(i, 2000), 0));
    rt.start();

    std::vector<Response> responses;
    const Cycles deadline = rdcycles() + ns_to_cycles(120e9);
    while (responses.size() < kJobs && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    ASSERT_EQ(responses.size(), kJobs);
    EXPECT_EQ(rt.dispatched(0) + rt.dispatched(1), kJobs)
        << "stolen jobs must never be double-counted";
    EXPECT_GT(rt.dispatched(1), 0u) << "the idle shard never stole";
    if (telemetry::kEnabled) {
        const auto snap = rt.telemetry_snapshot();
        EXPECT_GT(snap.steal_count, 0u);
        EXPECT_GE(snap.stolen_jobs, snap.steal_count);
        ASSERT_EQ(snap.per_shard_dispatched.size(), 2u);
        EXPECT_EQ(snap.per_shard_dispatched[0], rt.dispatched(0));
        EXPECT_EQ(snap.per_shard_dispatched[1], rt.dispatched(1));
        // Nothing was ever submitted to shard 1, so everything it
        // forwarded it stole.
        EXPECT_EQ(snap.stolen_jobs, rt.dispatched(1));
    }
    EXPECT_TRUE(rt.drain(/*deadline_sec=*/60.0));
    EXPECT_EQ(rt.abandoned_jobs(), 0u);
}

TEST(Sharded, ForcedStopAccountsEveryJobAcrossShards)
{
    // A deep two-shard backlog against a deliberately missed deadline:
    // delivered + dropped + abandoned must equal accepted, with the
    // abandoned split counted on whichever shard swept the job.
    RuntimeConfig cfg;
    cfg.num_workers = 4;
    cfg.num_dispatchers = 2;
    cfg.stop_deadline_sec = 0.005;
    Runtime rt(cfg, spin_handler());
    rt.start();
    uint64_t accepted = 0;
    for (uint64_t i = 0; i < 2000; ++i)
        if (rt.submit(make_spin_request(i, 50000)))
            ++accepted;
    ASSERT_GT(accepted, 0u);
    EXPECT_FALSE(rt.drain(/*deadline_sec=*/0.005));
    EXPECT_EQ(rt.lifecycle(), Lifecycle::Stopped);
    std::vector<Response> responses;
    rt.drain_responses(responses);
    EXPECT_EQ(responses.size() + rt.dropped_responses() +
                  rt.abandoned_jobs(),
              accepted)
        << "every accepted job must be delivered, dropped, or abandoned";
    EXPECT_GT(rt.abandoned_jobs(), 0u)
        << "100ms of queued spin cannot drain in 5ms";
}

TEST(Sharded, SingleShardAcceptsShardZeroAffinity)
{
    // submit_to_shard degrades gracefully on the unsharded runtime:
    // shard 0 is the only (historical) dispatcher.
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    EXPECT_EQ(rt.num_dispatcher_shards(), 1);
    EXPECT_EQ(rt.shard_workers(0).count, 2);
    rt.start();
    for (uint64_t i = 0; i < 16; ++i)
        while (!rt.submit_to_shard(make_spin_request(i, 500), 0))
            std::this_thread::yield();
    std::vector<Response> responses;
    const Cycles deadline = rdcycles() + ns_to_cycles(60e9);
    while (responses.size() < 16 && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    EXPECT_EQ(responses.size(), 16u);
    EXPECT_EQ(rt.dispatched(0), 16u);
    rt.stop();
}

TEST(PerClassQuanta, BudgetsResolvedAtAdmissionFollowTheTable)
{
    // {4us, 1us} per-class quanta on one worker: both classes complete,
    // and the post-join scheduling accounts show class 0's mean armed
    // budget above class 1's (granted_cycles counts armed budgets, so
    // the ordering survives deficit adjustment: class 0 jobs finish
    // inside their budget and bank credit, class 1 jobs run into debt).
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.class_quantum_us = {4.0, 1.0};
    Runtime rt(cfg, spin_handler());
    EXPECT_NEAR(rt.class_quantum_us(0), 4.0, 0.01);
    EXPECT_NEAR(rt.class_quantum_us(1), 1.0, 0.01);
    // Classes beyond the table keep the scalar default (slot clamp).
    EXPECT_NEAR(rt.class_quantum_us(5), cfg.quantum_us, 0.01);
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 60; ++i)
        reqs.push_back(make_spin_request(i, 30e3, i % 2 == 0 ? 0 : 1));
    const auto responses = run_requests(rt, reqs);
    rt.stop();
    ASSERT_EQ(responses.size(), reqs.size());

    const Worker &w = rt.worker(0);
    const auto &c0 = w.class_sched(0);
    const auto &c1 = w.class_sched(1);
    ASSERT_GT(c0.grants, 0u);
    ASSERT_GT(c1.grants, 0u);
    const double eff0 = static_cast<double>(c0.granted_cycles) /
                        static_cast<double>(c0.grants);
    const double eff1 = static_cast<double>(c1.granted_cycles) /
                        static_cast<double>(c1.grants);
    EXPECT_GT(eff0, eff1) << "eff0=" << eff0 << " eff1=" << eff1;
    EXPECT_EQ(c0.runnable, 0u) << "all admitted jobs completed";
    EXPECT_EQ(c1.runnable, 0u);
}

TEST(PerClassQuanta, NeverArrivingClassIsInertNoPromotionsNoGrants)
{
    // Three classes configured, only class 0 ever arrives. The
    // starvation guard keys on runnable counts, so a class that never
    // shows up can neither starve nor be promoted, and its account
    // stays zero.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.class_quantum_us = {2.0, 2.0, 2.0};
    cfg.starvation_promote_after = 4; // aggressive: still must not fire
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 80; ++i)
        reqs.push_back(make_spin_request(i, 10e3, 0));
    const auto responses = run_requests(rt, reqs);
    rt.stop();
    ASSERT_EQ(responses.size(), reqs.size());

    const Worker &w = rt.worker(0);
    EXPECT_EQ(w.starvation_promotions(), 0u);
    for (int slot = 1; slot < kMaxQuantumClasses; ++slot) {
        EXPECT_EQ(w.class_sched(slot).grants, 0u) << "slot " << slot;
        EXPECT_EQ(w.class_sched(slot).runnable, 0u) << "slot " << slot;
        EXPECT_EQ(w.class_sched(slot).deficit, 0) << "slot " << slot;
    }
    EXPECT_GT(w.class_sched(0).grants, 0u);
}

TEST(PerClassQuanta, SingleClassDegeneratesToPlainScheduling)
{
    // One configured class is the degenerate case: no other class can
    // be skipped, so the guard never fires, and everything completes
    // exactly as on the fixed path.
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.class_quantum_us = {2.0};
    cfg.starvation_promote_after = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 120; ++i)
        reqs.push_back(make_spin_request(i, 5e3 + (i % 4) * 5e3, 0));
    const auto responses = run_requests(rt, reqs);
    rt.stop();
    ASSERT_EQ(responses.size(), reqs.size());
    EXPECT_EQ(rt.dispatched(), reqs.size());
    for (int wi = 0; wi < cfg.num_workers; ++wi)
        EXPECT_EQ(rt.worker(wi).starvation_promotions(), 0u);
}

TEST(PerClassQuanta, DeficitStaysWithinConfiguredClamp)
{
    // DESIGN.md §4i invariant: |deficit| <= deficit_clamp at every
    // settlement. Mix early-completing shorts (credit) with
    // quantum-overrunning longs (debt) and check the post-join
    // accounts of every slot on every worker.
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.class_quantum_us = {4.0, 0.5};
    cfg.deficit_clamp_us = 3.0;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    // Kept small: every 0.5us slice of a class-1 job pays the full
    // switch overhead, which sanitizer builds inflate ~100x.
    for (uint64_t i = 0; i < 60; ++i)
        reqs.push_back(make_spin_request(i, 1e3, 0)); // 1us < 4us budget
    for (uint64_t i = 60; i < 64; ++i)
        reqs.push_back(make_spin_request(i, 60e3, 1)); // 120 x 0.5us
    const auto responses = run_requests(rt, reqs);
    rt.stop();
    ASSERT_EQ(responses.size(), reqs.size());

    const int64_t clamp =
        static_cast<int64_t>(ns_to_cycles(cfg.deficit_clamp_us * 1e3));
    for (int wi = 0; wi < cfg.num_workers; ++wi) {
        for (int slot = 0; slot < kMaxQuantumClasses; ++slot) {
            const int64_t d = rt.worker(wi).class_sched(slot).deficit;
            EXPECT_LE(d, clamp) << "worker " << wi << " slot " << slot;
            EXPECT_GE(d, -clamp) << "worker " << wi << " slot " << slot;
        }
    }
}

TEST(PerClassQuanta, AdaptQuantaIsInertOnDisabledPaths)
{
    // Fixed path: no table, no controller — adapt_quanta() must be a
    // no-op and every class reads the scalar quantum.
    {
        RuntimeConfig cfg;
        cfg.num_workers = 1;
        Runtime rt(cfg, spin_handler());
        EXPECT_FALSE(rt.adapt_quanta());
        EXPECT_DOUBLE_EQ(rt.class_quantum_us(0), cfg.quantum_us);
        EXPECT_DOUBLE_EQ(rt.class_quantum_us(3), cfg.quantum_us);
    }
    // Static per-class table without adaptive_quantum: the table is
    // live but there is no controller, so adapt_quanta() never
    // republishes.
    {
        RuntimeConfig cfg;
        cfg.num_workers = 1;
        cfg.class_quantum_us = {3.0, 1.0};
        Runtime rt(cfg, spin_handler());
        EXPECT_FALSE(rt.adapt_quanta());
        EXPECT_NEAR(rt.class_quantum_us(0), 3.0, 0.01);
        EXPECT_NEAR(rt.class_quantum_us(1), 1.0, 0.01);
    }
    // adaptive_quantum in a -DTQ_TELEMETRY=OFF build: there are no
    // per-class observations, so the controller is compiled out and
    // the table keeps its configured values (static fallback).
    if (!telemetry::kEnabled) {
        RuntimeConfig cfg;
        cfg.num_workers = 1;
        cfg.adaptive_quantum = true;
        cfg.class_quantum_us = {3.0, 1.0};
        Runtime rt(cfg, spin_handler());
        EXPECT_FALSE(rt.adapt_quanta());
        EXPECT_NEAR(rt.class_quantum_us(0), 3.0, 0.01);
        EXPECT_NEAR(rt.class_quantum_us(1), 1.0, 0.01);
    }
}

TEST(PerClassQuanta, FcfsDropsTheTableEntirely)
{
    // FCFS never arms probes, so per-class budgets are meaningless:
    // the runtime must fall back to the fixed path even with a
    // populated class_quantum_us.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.work = WorkPolicy::Fcfs;
    cfg.class_quantum_us = {4.0, 1.0};
    Runtime rt(cfg, spin_handler());
    EXPECT_DOUBLE_EQ(rt.class_quantum_us(0), cfg.quantum_us);
    EXPECT_FALSE(rt.adapt_quanta());
    rt.start();
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 40; ++i)
        reqs.push_back(make_spin_request(i, 5e3, i % 2 == 0 ? 0 : 1));
    const auto responses = run_requests(rt, reqs);
    rt.stop();
    ASSERT_EQ(responses.size(), reqs.size());
    EXPECT_EQ(rt.worker(0).class_sched(0).grants, 0u)
        << "fixed path: no per-class accounting";
    EXPECT_EQ(rt.worker(0).starvation_promotions(), 0u);
}

TEST(PerClassQuanta, StarvationGuardForcesPromotionUnderLasFlood)
{
    // LAS always favors least-attained work, so a long job that has
    // already attained service starves behind a continuous flood of
    // fresh shorts. The guard must force-promote it after
    // starvation_promote_after consecutive foreign grants — that is
    // the bounded-starvation contract (DESIGN.md §4i).
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.work = WorkPolicy::Las;
    cfg.quantum_us = 2.0;
    cfg.class_quantum_us = {2.0, 2.0};
    cfg.starvation_promote_after = 8;
    Runtime rt(cfg, spin_handler());
    rt.start();

    // Let the long job attain a few quanta alone first.
    const auto first =
        run_requests(rt, {make_spin_request(999, 5e6, /*job_class=*/1)},
                     /*timeout_sec=*/0.0);
    ASSERT_TRUE(first.empty()) << "long job should still be running";
    // Let it attain well over 25 quanta (a short's lifetime worth) so
    // LAS ranks it strictly behind every in-progress short. Poll the
    // atomic grant counter instead of sleeping a fixed interval: a
    // fixed sleep can overshoot the long's entire 5ms on a loaded
    // host, leaving the flood nothing to starve. 250 grants of 2us
    // leaves ~4.5ms of long work as margin.
    const Cycles poll_deadline = rdcycles() + ns_to_cycles(10e9);
    while (rt.worker(0).stats_line().total_quanta.load(
               std::memory_order_relaxed) < 250u &&
           rdcycles() < poll_deadline)
        std::this_thread::yield();
    std::vector<Request> shorts;
    for (uint64_t i = 0; i < 150; ++i)
        shorts.push_back(make_spin_request(i, 50e3, 0));
    // Drain shorts AND the long job (promotion grants keep it moving;
    // it may even finish amid the flood) before joining the worker.
    std::vector<Response> responses = run_requests(rt, shorts, 120.0);
    const Cycles deadline = rdcycles() + ns_to_cycles(120e9);
    while (responses.size() < shorts.size() + 1 && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    rt.stop();
    ASSERT_EQ(responses.size(), shorts.size() + 1);
    EXPECT_TRUE(std::any_of(responses.begin(), responses.end(),
                            [](const Response &r) { return r.id == 999; }));
    EXPECT_GT(rt.worker(0).starvation_promotions(), 0u)
        << "guard never fired despite a " << shorts.size()
        << "-job flood against promote_after="
        << cfg.starvation_promote_after;
}

TEST(LoadGen, OpenLoopRoundTripsAgainstRuntime)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();
    net::RuntimeServer server(rt);

    auto dist = std::make_unique<FixedDist>(us(2), "spin");
    net::LoadGenConfig lg;
    lg.rate_mrps = 0.01; // 10 Krps: trivially sustainable even timeshared
    lg.duration_sec = 0.2;
    const net::ClientStats stats =
        net::run_open_loop(server, *dist, net::spin_request_factory(), lg);

    EXPECT_GT(stats.submitted, 100u);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.send_failures, 0u);
    const auto &c = stats.by_class("spin");
    EXPECT_EQ(c.completed, stats.completed);
    EXPECT_GE(c.mean_sojourn_us, 1.0);
    EXPECT_GE(c.p999_e2e_us, c.p999_sojourn_us * 0.5);
    rt.stop();
}

} // namespace
} // namespace tq::runtime
