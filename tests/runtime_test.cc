/**
 * @file
 * Integration tests for the real TQ runtime: requests flow client ->
 * dispatcher -> worker -> response; forced multitasking preempts long
 * jobs so short ones overtake them (the system's whole point); FCFS
 * variant does not; counters and JSQ views stay consistent; the open-
 * loop load generator round-trips everything.
 *
 * These run on real threads. The host timeshares one core, so tests
 * assert ordering and conservation, never absolute throughput.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "net/loadgen.h"
#include "net/runtime_server.h"
#include "runtime/runtime.h"
#include "workloads/spin.h"

namespace tq::runtime {
namespace {

/** Handler: spin for payload nanoseconds, return the id. */
Handler
spin_handler()
{
    return [](const Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.id;
    };
}

Request
make_spin_request(uint64_t id, double ns, int job_class = 0)
{
    Request req;
    req.id = id;
    req.gen_cycles = rdcycles();
    req.job_class = job_class;
    req.payload = static_cast<uint64_t>(ns);
    return req;
}

/** Submit-and-wait helper. */
std::vector<Response>
run_requests(Runtime &rt, const std::vector<Request> &reqs,
             double timeout_sec = 60.0)
{
    for (const auto &r : reqs)
        while (!rt.submit(r))
            std::this_thread::yield();
    std::vector<Response> responses;
    const Cycles deadline =
        rdcycles() + ns_to_cycles(timeout_sec * 1e9);
    while (responses.size() < reqs.size() && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    return responses;
}

TEST(Runtime, EndToEndAllRequestsAnswered)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 300; ++i)
        reqs.push_back(make_spin_request(i, 1000 + (i % 5) * 1000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());

    std::map<uint64_t, const Response *> by_id;
    for (const auto &r : responses)
        by_id[r.id] = &r;
    ASSERT_EQ(by_id.size(), reqs.size()) << "no duplicate ids";
    for (const auto &req : reqs) {
        ASSERT_TRUE(by_id.count(req.id));
        const Response &resp = *by_id[req.id];
        EXPECT_EQ(resp.result, req.id) << "handler result preserved";
        EXPECT_GE(resp.worker, 0);
        EXPECT_LT(resp.worker, cfg.num_workers);
        EXPECT_GE(resp.sojourn_ns(), static_cast<double>(req.payload) * 0.5)
            << "sojourn at least ~the service demand";
    }
    EXPECT_EQ(rt.dispatched(), reqs.size());
    rt.stop();
}

TEST(Runtime, ShortJobsOvertakeLongJobUnderPs)
{
    // One worker: a 20ms job enters first, then 20 x ~20us jobs. With
    // 2us quanta the shorts must all complete long before the long job.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 2.0;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    reqs.push_back(make_spin_request(999, 20e6, /*job_class=*/1));
    for (uint64_t i = 0; i < 20; ++i)
        reqs.push_back(make_spin_request(i, 20e3, 0));
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());

    Cycles long_done = 0;
    std::vector<Cycles> short_done;
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            short_done.push_back(r.done_cycles);
    }
    ASSERT_NE(long_done, 0u);
    ASSERT_EQ(short_done.size(), 20u);
    for (Cycles c : short_done)
        EXPECT_LT(c, long_done) << "short job blocked behind long job";
    rt.stop();
}

TEST(Runtime, FcfsRunsInOrder)
{
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.work = WorkPolicy::Fcfs;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    reqs.push_back(make_spin_request(999, 3e6, 1)); // 3ms first
    for (uint64_t i = 0; i < 5; ++i)
        reqs.push_back(make_spin_request(i, 10e3, 0));
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());
    Cycles long_done = 0;
    Cycles first_short_done = ~Cycles{0};
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            first_short_done = std::min(first_short_done, r.done_cycles);
    }
    EXPECT_LT(long_done, first_short_done)
        << "FCFS must finish the long job before any short";
    rt.stop();
}

TEST(Runtime, LasSchedulesFreshJobsFirst)
{
    // LAS: a fresh short job must finish before an old long job even
    // though the long job was admitted first.
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 2.0;
    cfg.work = WorkPolicy::Las;
    Runtime rt(cfg, spin_handler());
    rt.start();
    std::vector<Request> reqs;
    reqs.push_back(make_spin_request(999, 5e6, 1)); // 5ms first
    for (uint64_t i = 0; i < 10; ++i)
        reqs.push_back(make_spin_request(i, 20e3, 0));
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());
    Cycles long_done = 0;
    Cycles last_short = 0;
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            last_short = std::max(last_short, r.done_cycles);
    }
    EXPECT_LT(last_short, long_done);
    rt.stop();
}

TEST(Runtime, WorkerCountersConsistentAfterDrain)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 200; ++i)
        reqs.push_back(make_spin_request(i, 5000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());

    uint64_t finished = 0;
    for (int w = 0; w < cfg.num_workers; ++w) {
        auto &line = rt.worker(w).stats_line();
        finished += line.finished.load();
        EXPECT_EQ(line.current_quanta.load(), 0u)
            << "current-jobs quanta must return to zero when idle";
    }
    EXPECT_EQ(finished, reqs.size());
    for (uint64_t len : rt.queue_lengths())
        EXPECT_EQ(len, 0u);
    rt.stop();
}

TEST(Runtime, PreemptionChargesQuantaCounters)
{
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 1.0;
    Runtime rt(cfg, spin_handler());
    rt.start();
    // A 2ms job at 1us quanta => >1000 serviced quanta.
    const auto responses =
        run_requests(rt, {make_spin_request(1, 2e6)}, 120.0);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_GT(rt.worker(0).stats_line().total_quanta.load(), 100u);
    rt.stop();
}

TEST(Runtime, JsqSpreadsLoadAcrossWorkers)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.dispatch = DispatchPolicy::JsqMsq;
    Runtime rt(cfg, spin_handler());
    rt.start();

    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 100; ++i)
        reqs.push_back(make_spin_request(i, 50e3)); // 50us each
    const auto responses = run_requests(rt, reqs, 120.0);
    ASSERT_EQ(responses.size(), reqs.size());
    int per_worker[2] = {0, 0};
    for (const auto &r : responses)
        ++per_worker[r.worker];
    // JSQ must not starve a worker (perfect balance not required: the
    // host timeshares, so queue snapshots vary).
    EXPECT_GT(per_worker[0], 10);
    EXPECT_GT(per_worker[1], 10);
    rt.stop();
}

class DispatchPolicies
    : public ::testing::TestWithParam<DispatchPolicy>
{
};

TEST_P(DispatchPolicies, AllPoliciesDeliverEverything)
{
    RuntimeConfig cfg;
    cfg.num_workers = 3;
    cfg.dispatch = GetParam();
    Runtime rt(cfg, spin_handler());
    rt.start();
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 150; ++i)
        reqs.push_back(make_spin_request(i, 2000));
    const auto responses = run_requests(rt, reqs);
    EXPECT_EQ(responses.size(), reqs.size());
    rt.stop();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DispatchPolicies,
                         ::testing::Values(DispatchPolicy::JsqMsq,
                                           DispatchPolicy::JsqRandom,
                                           DispatchPolicy::Random,
                                           DispatchPolicy::PowerOfTwo),
                         [](const auto &info) {
                             switch (info.param) {
                               case DispatchPolicy::JsqMsq:
                                 return "JsqMsq";
                               case DispatchPolicy::JsqRandom:
                                 return "JsqRandom";
                               case DispatchPolicy::Random:
                                 return "Random";
                               case DispatchPolicy::PowerOfTwo:
                                 return "PowerOfTwo";
                             }
                             return "Unknown";
                         });

TEST(LoadGen, OpenLoopRoundTripsAgainstRuntime)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    Runtime rt(cfg, spin_handler());
    rt.start();
    net::RuntimeServer server(rt);

    auto dist = std::make_unique<FixedDist>(us(2), "spin");
    net::LoadGenConfig lg;
    lg.rate_mrps = 0.01; // 10 Krps: trivially sustainable even timeshared
    lg.duration_sec = 0.2;
    const net::ClientStats stats =
        net::run_open_loop(server, *dist, net::spin_request_factory(), lg);

    EXPECT_GT(stats.submitted, 100u);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.send_failures, 0u);
    const auto &c = stats.by_class("spin");
    EXPECT_EQ(c.completed, stats.completed);
    EXPECT_GE(c.mean_sojourn_us, 1.0);
    EXPECT_GE(c.p999_e2e_us, c.p999_sojourn_us * 0.5);
    rt.stop();
}

} // namespace
} // namespace tq::runtime
