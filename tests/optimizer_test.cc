/**
 * @file
 * Unit tests for the verify-guided placement optimizer: deletion of
 * provably redundant probes, exact rollback when a move breaks the
 * proof, loop hoisting, CI increment folding, the never-loosen default
 * target, and the incremental ModuleVerifier agreeing with a full
 * verify_module after every edit. The whole-program acceptance sweep
 * (fewer probes at an unchanged-or-tighter proven bound on >= 15 of
 * the Table-3 programs) is pinned here too.
 */
#include <gtest/gtest.h>

#include "compiler/builder.h"
#include "compiler/exec.h"
#include "compiler/optimizer.h"
#include "compiler/passes.h"
#include "compiler/verifier.h"
#include "progs/programs.h"

namespace tq::compiler {
namespace {

Module
one_fn(Function f)
{
    Module m;
    m.name = "t";
    m.functions.push_back(std::move(f));
    return m;
}

/** 10 instrs | clock | 10 instrs | clock | 10 instrs. Proven bound 10. */
Module
two_probe_line()
{
    FunctionBuilder fb("main");
    const int b = fb.add_block();
    fb.ops(b, Op::IAlu, 10);
    Function f = fb.build();
    f.blocks[0].instrs.push_back(Instr::make_probe(ProbeKind::TqClock));
    for (int i = 0; i < 10; ++i)
        f.blocks[0].instrs.push_back(Instr::make(Op::IAlu));
    f.blocks[0].instrs.push_back(Instr::make_probe(ProbeKind::TqClock));
    for (int i = 0; i < 10; ++i)
        f.blocks[0].instrs.push_back(Instr::make(Op::IAlu));
    f.blocks[0].term = Terminator::ret();
    return one_fn(std::move(f));
}

void
expect_same_module(const Module &a, const Module &b)
{
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (size_t fi = 0; fi < a.functions.size(); ++fi) {
        const Function &fa = a.functions[fi];
        const Function &fb = b.functions[fi];
        ASSERT_EQ(fa.blocks.size(), fb.blocks.size());
        for (size_t bi = 0; bi < fa.blocks.size(); ++bi) {
            const Block &ba = fa.blocks[bi];
            const Block &bb = fb.blocks[bi];
            ASSERT_EQ(ba.instrs.size(), bb.instrs.size())
                << "fn " << fi << " block " << bi;
            for (size_t ii = 0; ii < ba.instrs.size(); ++ii) {
                EXPECT_EQ(ba.instrs[ii].op, bb.instrs[ii].op);
                EXPECT_EQ(ba.instrs[ii].probe, bb.instrs[ii].probe);
                EXPECT_EQ(ba.instrs[ii].ci_increment,
                          bb.instrs[ii].ci_increment);
                EXPECT_EQ(ba.instrs[ii].period, bb.instrs[ii].period);
            }
        }
    }
}

TEST(Optimizer, DefaultTargetNeverLoosens)
{
    // target_bound = 0 means "this placement's own proven bound" (10
    // here): deleting either probe would widen a window to 21, so
    // every move must roll back and the module must be untouched.
    Module m = two_probe_line();
    const Module before = m;

    const OptimizerResult r = optimize_placement(m);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.changed);
    EXPECT_EQ(r.target, 10u);
    EXPECT_EQ(r.initial_bound, 10u);
    EXPECT_EQ(r.final_bound, 10u);
    EXPECT_EQ(r.final_probes, 2);
    EXPECT_GT(r.attempted, 0);
    EXPECT_EQ(r.attempted, r.rolled_back);
    expect_same_module(m, before);
}

TEST(Optimizer, DeletesProvablyRedundantProbes)
{
    // With a 50-instruction target the whole 30-instruction program
    // fits in one silent window: both probes are redundant.
    Module m = two_probe_line();
    OptimizerConfig cfg;
    cfg.target_bound = 50;

    const OptimizerResult r = optimize_placement(m, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.changed);
    EXPECT_EQ(r.deleted, 2);
    EXPECT_EQ(r.final_probes, 0);
    EXPECT_EQ(m.probe_count(), 0);
    EXPECT_EQ(r.final_bound, 30u);

    ExecConfig ecfg;
    ecfg.seed = 7;
    const ExecResult er = execute(m, ecfg);
    EXPECT_LE(er.max_stretch_instrs, r.final_bound);
}

TEST(Optimizer, UnachievableBudgetFailsAndLeavesModuleUntouched)
{
    Module m = two_probe_line();
    const Module before = m;
    OptimizerConfig cfg;
    cfg.target_bound = 5; // tighter than the placement can prove

    const OptimizerResult r = optimize_placement(m, cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.changed);
    EXPECT_EQ(r.initial_bound, 10u);
    EXPECT_EQ(r.final_bound, 10u);
    expect_same_module(m, before);
}

TEST(Optimizer, GuardDeletionUsesTripCountKnowledge)
{
    // entry(2) -> loop(10 trips x 6 instrs, guard period 8) ->
    // exit(clock + 3 instrs). The guard caps the proven bound at ~50,
    // but the trip count is static: without the guard the loop is a
    // silent 60-instruction straight shot to the exit clock (bound
    // 62). At target 63 the optimizer can prove the guard away but
    // must keep the clock (deleting it too would mean a silent
    // 65-instruction run).
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(e, Op::IAlu, 2).jump(e, h);
    fb.ops(h, Op::IAlu, 6);
    fb.latch(h, h, x, 10);
    fb.ops(x, Op::IAlu, 3).ret(x);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(
        Instr::loop_guard(8, LoopGadget::Counter, 6));
    f.blocks[2].instrs.insert(f.blocks[2].instrs.begin(),
                              Instr::make_probe(ProbeKind::TqClock));
    Module m = one_fn(std::move(f));

    OptimizerConfig cfg;
    cfg.target_bound = 63;
    const OptimizerResult r = optimize_placement(m, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.deleted, 1);
    EXPECT_EQ(r.final_probes, 1);
    EXPECT_EQ(r.final_bound, 62u);

    ExecConfig ecfg;
    ecfg.seed = 7;
    const ExecResult er = execute(m, ecfg);
    EXPECT_LE(er.max_stretch_instrs, r.final_bound);
}

TEST(Optimizer, BudgetBelowInitialBoundReachedByDescent)
{
    // Same shape as GuardDeletionUsesTripCountKnowledge but with a
    // period-64 guard: M = 63 inflates the initial proven bound far
    // above the loop's real 62-instruction silent shot, so a budget of
    // 100 is unreachable by the input placement and only reachable by
    // descending through the guard deletion that shrinks M. The
    // 50-instruction exit tail keeps the clock load-bearing: deleting
    // it too would be a silent 112-instruction whole run > 100.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(e, Op::IAlu, 2).jump(e, h);
    fb.ops(h, Op::IAlu, 6);
    fb.latch(h, h, x, 10);
    fb.ops(x, Op::IAlu, 50).ret(x);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(
        Instr::loop_guard(64, LoopGadget::Counter, 6));
    f.blocks[2].instrs.insert(f.blocks[2].instrs.begin(),
                              Instr::make_probe(ProbeKind::TqClock));
    Module m = one_fn(std::move(f));

    OptimizerConfig cfg;
    cfg.target_bound = 100;
    const OptimizerResult r = optimize_placement(m, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.initial_bound, 100u);
    EXPECT_EQ(r.final_bound, 62u);
    EXPECT_EQ(r.final_probes, 1);

    ExecConfig ecfg;
    ecfg.seed = 7;
    const ExecResult er = execute(m, ecfg);
    EXPECT_LE(er.max_stretch_instrs, r.final_bound);
}

TEST(Optimizer, MissedBudgetAfterDescentRestoresTheModule)
{
    // Descent gets the same module down to 62 (guard gone), but 30 is
    // below anything the move set can prove — deleting the last clock
    // makes the whole run a silent 65-instruction shot, which is not a
    // tightening move. All-or-nothing: the module comes back
    // byte-exact, including the guard descent already deleted.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(e, Op::IAlu, 2).jump(e, h);
    fb.ops(h, Op::IAlu, 6);
    fb.latch(h, h, x, 10);
    fb.ops(x, Op::IAlu, 3).ret(x);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(
        Instr::loop_guard(64, LoopGadget::Counter, 6));
    f.blocks[2].instrs.insert(f.blocks[2].instrs.begin(),
                              Instr::make_probe(ProbeKind::TqClock));
    Module m = one_fn(std::move(f));
    const Module before = m;

    OptimizerConfig cfg;
    cfg.target_bound = 30;
    const OptimizerResult r = optimize_placement(m, cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.changed);
    EXPECT_EQ(r.deleted, 0);
    EXPECT_EQ(r.final_bound, r.initial_bound);
    EXPECT_EQ(r.final_probes, r.initial_probes);
    expect_same_module(m, before);
}

TEST(Optimizer, HoistMovesClockOutOfLoop)
{
    // A clock probe inside a guarded loop body fires every iteration;
    // hoisted to the loop's unique exit it fires once per activation
    // while the guard keeps the loop bounded.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(e, Op::IAlu, 2).jump(e, h);
    fb.ops(h, Op::IAlu, 6);
    fb.latch(h, h, x, 100);
    fb.ops(x, Op::IAlu, 3).ret(x);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(Instr::make_probe(ProbeKind::TqClock));
    f.blocks[1].instrs.push_back(
        Instr::loop_guard(8, LoopGadget::Counter, 6));
    Module m = one_fn(std::move(f));

    ExecConfig ecfg;
    ecfg.seed = 7;
    const uint64_t hits_before = execute(m, ecfg).probe_sites_hit;

    OptimizerConfig cfg;
    cfg.target_bound = 100;
    cfg.enable_delete = false; // isolate the hoist move
    const OptimizerResult r = optimize_placement(m, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.hoisted, 1);
    ASSERT_EQ(r.moves.size(), 1u);
    EXPECT_EQ(r.moves[0].kind, OptMove::Kind::Hoist);
    EXPECT_EQ(r.moves[0].dest_block, x);
    // The probe landed at the front of the exit block...
    ASSERT_FALSE(m.functions[0].blocks[2].instrs.empty());
    EXPECT_EQ(m.functions[0].blocks[2].instrs[0].probe,
              ProbeKind::TqClock);
    // ...and probe executions collapsed: the clock's 100 per-iteration
    // hits become 1, leaving only the guard's periodic firings.
    const ExecResult er = execute(m, ecfg);
    EXPECT_LT(er.probe_sites_hit, hits_before / 4);
    EXPECT_LE(er.max_stretch_instrs, r.final_bound);
}

TEST(Optimizer, CiIncrementFoldsIntoDownstreamProbe)
{
    // b0: 10 instrs + CI(10) -> b1: 600 instrs + CI(600) -> b2: 5
    // instrs. At target 610 the first probe is redundant (the entry
    // window grows to exactly 610) but its chain count must fold into
    // the survivor; the second probe must stay (deleting it too would
    // leave a silent 615-instruction run).
    FunctionBuilder fb("main");
    const int b0 = fb.add_block();
    const int b1 = fb.add_block();
    const int b2 = fb.add_block();
    fb.ops(b0, Op::IAlu, 10).jump(b0, b1);
    fb.ops(b1, Op::IAlu, 600).jump(b1, b2);
    fb.ops(b2, Op::IAlu, 5).ret(b2);
    Function f = fb.build();
    f.blocks[0].instrs.push_back(
        Instr::make_probe(ProbeKind::CiCounter, 10));
    f.blocks[1].instrs.push_back(
        Instr::make_probe(ProbeKind::CiCounter, 600));
    Module m = one_fn(std::move(f));

    OptimizerConfig cfg;
    cfg.target_bound = 610;
    const OptimizerResult r = optimize_placement(m, cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.deleted, 1);
    EXPECT_EQ(r.final_probes, 1);
    ASSERT_FALSE(m.functions[0].blocks[1].instrs.empty());
    const Instr &survivor = m.functions[0].blocks[1].instrs.back();
    ASSERT_EQ(survivor.probe, ProbeKind::CiCounter);
    EXPECT_EQ(survivor.ci_increment, 610u);
}

TEST(Optimizer, IncrementalRefreshMatchesFullVerify)
{
    // Drive ModuleVerifier::refresh through a sequence of probe edits
    // on a multi-function module (caller summaries must repropagate)
    // and require bit-equal agreement with a from-scratch
    // verify_module at every step.
    FunctionBuilder main_fb("main");
    {
        const int e = main_fb.add_block();
        const int h = main_fb.add_block();
        const int x = main_fb.add_block();
        main_fb.ops(e, Op::IAlu, 4).jump(e, h);
        main_fb.ops(h, Op::IAlu, 3).call(h, 1);
        main_fb.latch(h, h, x, 20);
        main_fb.ops(x, Op::IAlu, 2).ret(x);
    }
    FunctionBuilder leaf_fb("leaf");
    {
        const int b = leaf_fb.add_block();
        leaf_fb.ops(b, Op::IAlu, 5).ret(b);
    }
    Module m;
    m.name = "t";
    m.functions.push_back(main_fb.build());
    m.functions.push_back(leaf_fb.build());
    m.functions[0].blocks[1].instrs.push_back(
        Instr::loop_guard(4, LoopGadget::Counter, 8));
    m.functions[1].blocks[0].instrs.push_back(
        Instr::make_probe(ProbeKind::TqClock));

    ModuleVerifier mv(m);
    auto check = [&](int edited_fn) {
        const VerifyResult &inc = mv.refresh(edited_fn);
        const VerifyResult full = verify_module(m);
        EXPECT_EQ(inc.ok, full.ok);
        EXPECT_EQ(inc.max_stretch, full.max_stretch);
        EXPECT_EQ(inc.diags.size(), full.diags.size());
        ASSERT_EQ(inc.functions.size(), full.functions.size());
        for (size_t fi = 0; fi < full.functions.size(); ++fi) {
            const FunctionStretch &a = inc.functions[fi];
            const FunctionStretch &b = full.functions[fi];
            EXPECT_EQ(a.may_fire, b.may_fire) << "fn " << fi;
            EXPECT_EQ(a.may_not_fire, b.may_not_fire) << "fn " << fi;
            EXPECT_EQ(a.entry_gap, b.entry_gap) << "fn " << fi;
            EXPECT_EQ(a.exit_gap, b.exit_gap) << "fn " << fi;
            EXPECT_EQ(a.through, b.through) << "fn " << fi;
            EXPECT_EQ(a.internal, b.internal) << "fn " << fi;
        }
    };

    // Edit 1: delete the leaf's clock (callee goes silent; the
    // caller's windows must re-derive through the new summary).
    const Instr leaf_probe = m.functions[1].blocks[0].instrs.back();
    m.functions[1].blocks[0].instrs.pop_back();
    check(1);

    // Edit 2: put it back.
    m.functions[1].blocks[0].instrs.push_back(leaf_probe);
    check(1);

    // Edit 3: delete the caller's loop guard (module stays
    // instrumented via the leaf probe).
    auto &h_instrs = m.functions[0].blocks[1].instrs;
    h_instrs.erase(h_instrs.end() - 1);
    check(0);

    // Edit 4: delete the leaf probe as well — the module flips to
    // uninstrumented, which rewrites every function's severity model.
    m.functions[1].blocks[0].instrs.pop_back();
    check(1);
}

TEST(Optimizer, AllProgramsShedProbesAtProvenBounds)
{
    // The PR acceptance sweep: across the Table-3 programs, the
    // optimizer must keep every proof intact (never loosen, dynamic
    // stretch within the proven bound) and shed probes on >= 15.
    int improved = 0;
    int total = 0;
    for (const auto &name : tq::progs::program_names()) {
        Module m = tq::progs::make_program(name);
        PassConfig pcfg;
        pcfg.bound = 400;
        run_tq_pass(m, pcfg);
        const int before = m.probe_count();

        const OptimizerResult r = optimize_placement(m);
        ASSERT_TRUE(r.ok) << name;
        EXPECT_LE(r.final_bound, r.initial_bound) << name;
        EXPECT_LE(r.final_probes, before) << name;

        const VerifyResult vr = verify_module(m);
        EXPECT_TRUE(vr.ok) << name << "\n" << report(vr, m);
        EXPECT_EQ(vr.max_stretch, r.final_bound) << name;

        ExecConfig ecfg;
        ecfg.quantum_cycles = 4200;
        ecfg.seed = 11;
        const ExecResult er = execute(m, ecfg);
        EXPECT_LE(er.max_stretch_instrs, r.final_bound) << name;

        ++total;
        improved += r.final_probes < before;
    }
    EXPECT_GE(improved, 15) << "of " << total << " programs";
}

TEST(Optimizer, CiPlacementsStayVerifiedAfterOptimize)
{
    // CI placements carry far more probes; the optimizer must hold
    // the same contract there (spot-checked — the fuzz suite covers
    // random shapes).
    for (const auto &name : {"fft", "barnes", "histogram", "canneal"}) {
        Module m = tq::progs::make_program(name);
        PassConfig pcfg;
        pcfg.bound = 400;
        run_ci_pass(m, pcfg);
        const int before = m.probe_count();

        const OptimizerResult r = optimize_placement(m);
        ASSERT_TRUE(r.ok) << name;
        EXPECT_LE(r.final_bound, r.initial_bound) << name;
        EXPECT_LE(r.final_probes, before) << name;
        EXPECT_TRUE(verify_module(m).ok) << name;
    }
}

} // namespace
} // namespace tq::compiler
