/**
 * @file
 * Unit tests for the static probe-bound verifier: exactness on
 * deterministic shapes, soundness against the timing executor,
 * structural diagnostics, and rejection of broken placements
 * (ISSUE acceptance: a stripped loop guard must be rejected with a
 * witness naming the offending loop).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/builder.h"
#include "compiler/cfg.h"
#include "compiler/exec.h"
#include "compiler/passes.h"
#include "compiler/verifier.h"
#include "progs/programs.h"

namespace tq::compiler {
namespace {

/** Build a module from one function. */
Module
one_fn(Function f)
{
    Module m;
    m.name = "t";
    m.functions.push_back(std::move(f));
    return m;
}

ExecConfig
exec_cfg(uint64_t seed = 7)
{
    ExecConfig e;
    e.seed = seed;
    return e;
}

TEST(Verifier, StraightLineExact)
{
    // 10 instrs, clock probe, 7 instrs: windows are exactly 10 (entry)
    // and 7 (exit); max_stretch must equal 10.
    FunctionBuilder fb("main");
    const int b = fb.add_block();
    fb.ops(b, Op::IAlu, 10);
    Function f = fb.build();
    f.blocks[0].instrs.push_back(Instr::make_probe(ProbeKind::TqClock));
    for (int i = 0; i < 7; ++i)
        f.blocks[0].instrs.push_back(Instr::make(Op::IAlu));
    f.blocks[0].term = Terminator::ret();
    const Module m = one_fn(std::move(f));

    const VerifyResult r = verify_module(m);
    ASSERT_TRUE(r.ok) << report(r, m);
    EXPECT_EQ(r.max_stretch, 10u);
    EXPECT_EQ(r.functions[0].entry_gap, 10u);
    EXPECT_EQ(r.functions[0].exit_gap, 7u);
    EXPECT_TRUE(r.functions[0].may_fire);
    EXPECT_FALSE(r.functions[0].may_not_fire);

    const ExecResult er = execute(m, exec_cfg());
    EXPECT_LE(er.max_stretch_instrs, r.max_stretch);
    EXPECT_EQ(er.max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, GuardedLoopExactCrossIteration)
{
    // for (trips=100) { 6 instrs; guard(period=8) }: the guard fires
    // every 8 iterations, so the worst probe-free window is exactly
    // 8 iterations * 6 instrs = 48 plus entry/exit tails of 2 / 3.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(e, Op::IAlu, 2).jump(e, h);
    fb.ops(h, Op::IAlu, 6);
    fb.latch(h, h, x, 100);
    fb.ops(x, Op::IAlu, 3).ret(x);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(
        Instr::loop_guard(8, LoopGadget::Counter, 6));
    const Module m = one_fn(std::move(f));

    const VerifyResult r = verify_module(m);
    ASSERT_TRUE(r.ok) << report(r, m);
    // internal = period * body = 8 * 6 = 48.
    EXPECT_EQ(r.functions[0].internal, 48u);
    // entry gap: 2 + 8 iterations before the first firing = 2 + 48.
    EXPECT_EQ(r.functions[0].entry_gap, 50u);
    EXPECT_EQ(r.max_stretch, 50u);
    EXPECT_FALSE(r.worst_witness.empty());

    const ExecResult er = execute(m, exec_cfg());
    EXPECT_LE(er.max_stretch_instrs, r.max_stretch);
    // Deterministic loop: the bound is achieved exactly.
    EXPECT_EQ(er.max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, StrippedGuardRejectedWithWitness)
{
    // The acceptance-criteria mutation: instrument a looped program
    // with the TQ pass, then strip a loop guard. The verifier must
    // reject with an unbounded-loop error whose witness names the
    // offending loop's blocks.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    // Entry exceeds the bound so the pass also places straight-line
    // clock probes: the module stays instrumented after the strip.
    fb.ops(e, Op::IAlu, 300).jump(e, h);
    fb.mix(h, 40, 4, 2);
    fb.branch(h, h, x, 0.99); // unknown trip count -> guard required
    fb.ops(x, Op::IAlu, 2).ret(x);
    Module m = one_fn(fb.build());

    PassConfig pcfg;
    pcfg.bound = 200;
    run_tq_pass(m, pcfg);
    ASSERT_TRUE(verify_module(m).ok);

    // Strip every loop guard (the broken placement).
    int header = -1;
    for (auto &blk : m.functions[0].blocks) {
        auto &is = blk.instrs;
        for (size_t i = 0; i < is.size(); ++i)
            if (is[i].is_probe() && is[i].probe == ProbeKind::TqLoopGuard)
                header = 1;
        is.erase(std::remove_if(is.begin(), is.end(),
                                [](const Instr &ins) {
                                    return ins.is_probe() &&
                                           ins.probe ==
                                               ProbeKind::TqLoopGuard;
                                }),
                 is.end());
    }
    ASSERT_EQ(header, 1) << "pass should have inserted a guard";

    const VerifyResult r = verify_module(m);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.max_stretch, kUnboundedStretch);
    bool found = false;
    for (const auto &d : r.diags) {
        if (d.code != "unbounded-loop")
            continue;
        found = true;
        EXPECT_EQ(d.severity, Severity::Error);
        EXPECT_EQ(d.fn, 0);
        EXPECT_EQ(d.block, h) << "diag must name the offending loop header";
        // The witness walks the guard-free cycle through the header.
        bool names_loop = false;
        for (const auto &s : d.witness.steps)
            if (s.kind == Witness::Kind::Block && s.block == h)
                names_loop = true;
        EXPECT_TRUE(names_loop);
    }
    EXPECT_TRUE(found) << report(r, m);
}

TEST(Verifier, CallCompositionSoundAndTight)
{
    // callee: 5 instrs, probe, 4 instrs. caller: 3 instrs, call, 6
    // instrs, ret. Windows: 3 + (1 + 5) = 9 entry, 4 + 6 = 10 exit.
    FunctionBuilder cb("callee");
    const int cb0 = cb.add_block();
    cb.ops(cb0, Op::IAlu, 5);
    Function cf = cb.build();
    cf.blocks[0].instrs.push_back(Instr::make_probe(ProbeKind::TqClock));
    for (int i = 0; i < 4; ++i)
        cf.blocks[0].instrs.push_back(Instr::make(Op::IAlu));
    cf.blocks[0].term = Terminator::ret();

    FunctionBuilder mb("main");
    const int mb0 = mb.add_block();
    mb.ops(mb0, Op::IAlu, 3).call(mb0, 1).ops(mb0, Op::IAlu, 6).ret(mb0);

    Module m;
    m.functions.push_back(mb.build());
    m.functions.push_back(std::move(cf));

    const VerifyResult r = verify_module(m);
    ASSERT_TRUE(r.ok) << report(r, m);
    EXPECT_EQ(r.functions[1].entry_gap, 5u);
    EXPECT_EQ(r.functions[1].exit_gap, 4u);
    EXPECT_FALSE(r.functions[1].may_not_fire);
    EXPECT_EQ(r.functions[0].entry_gap, 9u);  // 3 + call(1) + 5
    EXPECT_EQ(r.functions[0].exit_gap, 10u);  // 4 + 6
    EXPECT_EQ(r.max_stretch, 10u);

    const ExecResult er = execute(m, exec_cfg());
    EXPECT_EQ(er.max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, ExternalCallChargedInExecutorUnits)
{
    // Executor charges floor(ext_cost / ialu) stretch for an external
    // call; the verifier must use the same units, not ext_call_instrs.
    FunctionBuilder fb("main");
    const int b = fb.add_block();
    fb.ops(b, Op::IAlu, 2).ext_call(b, 500.0).ops(b, Op::IAlu, 1).ret(b);
    Module m = one_fn(fb.build());
    m.functions[0].blocks[0].instrs.insert(
        m.functions[0].blocks[0].instrs.begin(),
        Instr::make_probe(ProbeKind::TqClock));

    const VerifyResult r = verify_module(m);
    ASSERT_TRUE(r.ok) << report(r, m);
    const ExecResult er = execute(m, exec_cfg());
    EXPECT_LE(er.max_stretch_instrs, r.max_stretch);
    // 2 + 1 (call) + 500/ialu + 1, with CostModel{}.ialu cycles per IAlu.
    const uint64_t ext = static_cast<uint64_t>(500.0 / CostModel{}.ialu);
    EXPECT_EQ(r.max_stretch, 2u + 1u + ext + 1u);
}

TEST(Verifier, StructuralDiagnostics)
{
    // Bad branch target.
    {
        Module m;
        m.functions.emplace_back();
        m.functions[0].name = "f";
        m.functions[0].blocks.emplace_back();
        m.functions[0].blocks[0].term = Terminator::jump(7);
        const VerifyResult r = verify_module(m);
        EXPECT_FALSE(r.ok);
        ASSERT_FALSE(r.diags.empty());
        EXPECT_EQ(r.diags[0].code, "bad-branch-target");
    }
    // Guard with period 0 (executor divide-by-zero).
    {
        FunctionBuilder fb("f");
        const int b = fb.add_block();
        fb.ops(b, Op::IAlu, 1).ret(b);
        Module m = one_fn(fb.build());
        m.functions[0].blocks[0].instrs.push_back(
            Instr::loop_guard(0, LoopGadget::Counter, 1));
        const VerifyResult r = verify_module(m);
        EXPECT_FALSE(r.ok);
        bool found = false;
        for (const auto &d : r.diags)
            found |= d.code == "guard-period-zero";
        EXPECT_TRUE(found);
    }
    // Probe instruction with kind None (executor CHECK-fails).
    {
        FunctionBuilder fb("f");
        const int b = fb.add_block();
        fb.ops(b, Op::IAlu, 1).ret(b);
        Module m = one_fn(fb.build());
        m.functions[0].blocks[0].instrs.push_back(
            Instr::make_probe(ProbeKind::None));
        const VerifyResult r = verify_module(m);
        EXPECT_FALSE(r.ok);
        bool found = false;
        for (const auto &d : r.diags)
            found |= d.code == "probe-kind-none";
        EXPECT_TRUE(found);
    }
    // Trip count 0 underflows the executor's counter.
    {
        FunctionBuilder fb("f");
        const int h = fb.add_block();
        const int x = fb.add_block();
        fb.ops(h, Op::IAlu, 1).latch(h, h, x, 0);
        fb.ret(x);
        const Module m = one_fn(fb.build());
        const VerifyResult r = verify_module(m);
        EXPECT_FALSE(r.ok);
        bool found = false;
        for (const auto &d : r.diags)
            found |= d.code == "trip-count-zero";
        EXPECT_TRUE(found);
    }
}

TEST(Verifier, RecursionWarnsAndStaysSound)
{
    // f calls itself behind a probe; the fixpoint must warn and the
    // published bound must still dominate the executor's observation.
    FunctionBuilder fb("rec");
    const int b0 = fb.add_block();
    const int b1 = fb.add_block();
    const int b2 = fb.add_block();
    fb.ops(b0, Op::IAlu, 3).branch(b0, b1, b2, 0.3);
    fb.ops(b1, Op::IAlu, 2);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(Instr::make_probe(ProbeKind::TqClock));
    f.blocks[1].instrs.push_back(Instr::call(0));
    f.blocks[1].term = Terminator::jump(b2);
    f.blocks[2].instrs.push_back(Instr::make(Op::IAlu));
    f.blocks[2].term = Terminator::ret();
    const Module m = one_fn(std::move(f));

    const VerifyResult r = verify_module(m);
    bool warned = false;
    for (const auto &d : r.diags)
        warned |= d.code == "recursion" || d.code == "recursion-widened";
    EXPECT_TRUE(warned);

    const ExecResult er = execute(m, exec_cfg(3));
    EXPECT_LE(er.max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, UninstrumentedModuleHasNoObligation)
{
    // No probes: nothing to verify. through == whole-program weight for
    // trip-bounded programs, and no errors are raised.
    FunctionBuilder fb("main");
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(h, Op::IAlu, 5).latch(h, h, x, 10);
    fb.ops(x, Op::IAlu, 2).ret(x);
    const Module m = one_fn(fb.build());
    const VerifyResult r = verify_module(m);
    EXPECT_TRUE(r.ok) << report(r, m);
    EXPECT_FALSE(r.functions[0].may_fire);
    EXPECT_TRUE(r.functions[0].may_not_fire);
    EXPECT_EQ(r.functions[0].through, 5u * 10u + 2u);
    const ExecResult er = execute(m, exec_cfg());
    EXPECT_EQ(er.max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, FailAboveThreshold)
{
    FunctionBuilder fb("main");
    const int b = fb.add_block();
    fb.ops(b, Op::IAlu, 100).ret(b);
    Module m = one_fn(fb.build());
    m.functions[0].blocks[0].instrs.push_back(
        Instr::make_probe(ProbeKind::TqClock));

    VerifyConfig vc;
    vc.fail_above = 50;
    const VerifyResult r = verify_module(m, vc);
    EXPECT_FALSE(r.ok);
    bool found = false;
    for (const auto &d : r.diags)
        found |= d.code == "bound-exceeded";
    EXPECT_TRUE(found);

    vc.fail_above = 200;
    EXPECT_TRUE(verify_module(m, vc).ok);
}

TEST(Verifier, BoundExceededNamesTheHotLoop)
{
    // The budget diagnostic must say *where* the budget blows, not
    // just that it does: the block feeding the witness's dominant
    // Repeat marker, with the iteration count. Message pinned.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(e, Op::IAlu, 2).jump(e, h);
    fb.ops(h, Op::IAlu, 6);
    fb.latch(h, h, x, 100);
    fb.ops(x, Op::IAlu, 3).ret(x);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(
        Instr::loop_guard(8, LoopGadget::Counter, 6));
    const Module m = one_fn(std::move(f));

    VerifyConfig vc;
    vc.fail_above = 40; // proven bound is 50
    const VerifyResult r = verify_module(m, vc);
    EXPECT_FALSE(r.ok);
    std::string msg;
    for (const auto &d : r.diags)
        if (d.code == "bound-exceeded")
            msg = d.message;
    EXPECT_EQ(msg,
              "proven stretch bound 50 exceeds the configured limit 40; "
              "worst window loops through main:b1 (x6 more iterations)");
}

TEST(Verifier, BoundExceededNamesStraightLineBlock)
{
    // Repeat-free worst path: the diagnostic names the first block of
    // the witness instead of a loop.
    FunctionBuilder fb("main");
    const int b = fb.add_block();
    fb.ops(b, Op::IAlu, 100).ret(b);
    Module m = one_fn(fb.build());
    m.functions[0].blocks[0].instrs.push_back(
        Instr::make_probe(ProbeKind::TqClock));

    VerifyConfig vc;
    vc.fail_above = 50;
    const VerifyResult r = verify_module(m, vc);
    EXPECT_FALSE(r.ok);
    std::string msg;
    for (const auto &d : r.diags)
        if (d.code == "bound-exceeded")
            msg = d.message;
    EXPECT_EQ(msg,
              "proven stretch bound 100 exceeds the configured limit 50; "
              "worst window runs through main:b0");
}

// --------------------------------------------------------------------
// Witness replay: re-derive the proven stretch from the reconstructed
// path alone. A witness is only evidence if its block sequence is CFG-
// consistent and its weights re-add to the claimed bound.

/** Real (non-probe) instructions of block @p b before index @p upto
 *  (-1 = the whole block). */
uint64_t
block_real_weight(const Module &m, int fn, int b, int upto)
{
    const auto &instrs = m.functions[static_cast<size_t>(fn)]
                             .blocks[static_cast<size_t>(b)]
                             .instrs;
    uint64_t w = 0;
    for (size_t i = 0; i < instrs.size(); ++i) {
        if (upto >= 0 && static_cast<int>(i) >= upto)
            break;
        w += !instrs[i].is_probe();
    }
    return w;
}

/**
 * Replay @p w through the semantics the executor implements: walk the
 * steps, charging each Block step its real-instruction weight (up to
 * the next Firing when it sits in the same block), and expanding each
 * Repeat marker by re-walking the segment between the previous two
 * Firing steps of the same site `count` more times. Verifies CFG
 * adjacency of consecutive Block steps along the way. Call-free,
 * untruncated witnesses only (crafted shapes).
 */
uint64_t
replay_witness(const Module &m, const Witness &w)
{
    const auto &steps = w.steps;
    uint64_t total = 0;
    int prev_block_fn = -1;
    int prev_block = -1;

    auto step_weight = [&](size_t i) -> uint64_t {
        const auto &s = steps[i];
        if (s.kind != Witness::Kind::Block)
            return 0;
        int upto = -1;
        if (i + 1 < steps.size() &&
            steps[i + 1].kind == Witness::Kind::Firing &&
            steps[i + 1].block == s.block && steps[i + 1].fn == s.fn)
            upto = steps[i + 1].instr;
        return block_real_weight(m, s.fn, s.block, upto);
    };

    for (size_t i = 0; i < steps.size(); ++i) {
        const auto &s = steps[i];
        EXPECT_NE(s.kind, Witness::Kind::EnterCall)
            << "replay does not model calls";
        EXPECT_NE(s.kind, Witness::Kind::Truncated);
        if (s.kind == Witness::Kind::Block) {
            if (prev_block >= 0 && s.fn == prev_block_fn) {
                const Cfg cfg(
                    m.functions[static_cast<size_t>(s.fn)]);
                const auto &succs = cfg.succs(prev_block);
                EXPECT_NE(std::find(succs.begin(), succs.end(), s.block),
                          succs.end())
                    << "witness jumps b" << prev_block << " -> b"
                    << s.block;
            }
            prev_block_fn = s.fn;
            prev_block = s.block;
            total += step_weight(i);
        } else if (s.kind == Witness::Kind::Repeat) {
            // The repeating unit is the step segment between the two
            // most recent firings of the same probe site.
            size_t j2 = i;
            while (j2-- > 0)
                if (steps[j2].kind == Witness::Kind::Firing)
                    break;
            size_t j1 = j2;
            while (j1-- > 0)
                if (steps[j1].kind == Witness::Kind::Firing &&
                    steps[j1].fn == steps[j2].fn &&
                    steps[j1].block == steps[j2].block &&
                    steps[j1].instr == steps[j2].instr)
                    break;
            uint64_t unit = 0;
            for (size_t k = j1 + 1; k <= j2; ++k)
                unit += step_weight(k);
            total += s.count * unit;
        }
    }
    return total;
}

TEST(Verifier, WitnessReplayStraightLine)
{
    FunctionBuilder fb("main");
    const int b = fb.add_block();
    fb.ops(b, Op::IAlu, 10);
    Function f = fb.build();
    f.blocks[0].instrs.push_back(Instr::make_probe(ProbeKind::TqClock));
    for (int i = 0; i < 7; ++i)
        f.blocks[0].instrs.push_back(Instr::make(Op::IAlu));
    f.blocks[0].term = Terminator::ret();
    const Module m = one_fn(std::move(f));

    const VerifyResult r = verify_module(m);
    ASSERT_TRUE(r.ok) << report(r, m);
    ASSERT_FALSE(r.worst_witness.empty());
    EXPECT_EQ(replay_witness(m, r.worst_witness), r.max_stretch);
    EXPECT_EQ(execute(m, exec_cfg()).max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, WitnessReplayBranchyPath)
{
    // Diamond: entry(2) -> {then(5) | else(9)} -> join(probe, 4).
    // The worst path takes the heavy arm: replayed weight must be
    // exactly 2 + 9 = 11 and the adjacency checks must accept the
    // branch edges.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int t = fb.add_block();
    const int el = fb.add_block();
    const int j = fb.add_block();
    fb.ops(e, Op::IAlu, 2).branch(e, t, el, 0.5);
    fb.ops(t, Op::IAlu, 5).jump(t, j);
    fb.ops(el, Op::IAlu, 9).jump(el, j);
    fb.ops(j, Op::IAlu, 4).ret(j);
    Function f = fb.build();
    f.blocks[3].instrs.insert(f.blocks[3].instrs.begin(),
                              Instr::make_probe(ProbeKind::TqClock));
    const Module m = one_fn(std::move(f));

    const VerifyResult r = verify_module(m);
    ASSERT_TRUE(r.ok) << report(r, m);
    EXPECT_EQ(r.max_stretch, 11u);
    EXPECT_EQ(replay_witness(m, r.worst_witness), r.max_stretch);
    const ExecResult er = execute(m, exec_cfg());
    EXPECT_LE(er.max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, WitnessReplayGuardedLoopCrossIteration)
{
    // The cross-iteration shape: the witness compresses 8 guarded
    // iterations into a Repeat marker; expansion must re-add to both
    // the entry bound (50) and the internal window (48), and the
    // executor must realize the bound exactly.
    FunctionBuilder fb("main");
    const int e = fb.add_block();
    const int h = fb.add_block();
    const int x = fb.add_block();
    fb.ops(e, Op::IAlu, 2).jump(e, h);
    fb.ops(h, Op::IAlu, 6);
    fb.latch(h, h, x, 100);
    fb.ops(x, Op::IAlu, 3).ret(x);
    Function f = fb.build();
    f.blocks[1].instrs.push_back(
        Instr::loop_guard(8, LoopGadget::Counter, 6));
    const Module m = one_fn(std::move(f));

    const VerifyResult r = verify_module(m);
    ASSERT_TRUE(r.ok) << report(r, m);
    EXPECT_EQ(r.max_stretch, 50u);
    EXPECT_EQ(replay_witness(m, r.worst_witness), 50u);
    EXPECT_EQ(replay_witness(m, r.functions[0].internal_witness), 48u);
    EXPECT_EQ(execute(m, exec_cfg()).max_stretch_instrs, r.max_stretch);
}

TEST(Verifier, AllProgramsAllPassesBoundSweep)
{
    // The tentpole obligation: verify_module proves a finite bound for
    // every built-in workload under all three passes across a bound
    // sweep, and the executor never exceeds it.
    for (const int bound : {100, 400, 1600}) {
        PassConfig pcfg;
        pcfg.bound = bound;
        for (const auto &name : progs::program_names()) {
            for (int tech = 0; tech < 3; ++tech) {
                Module m = progs::make_program(name);
                if (tech == 0)
                    run_tq_pass(m, pcfg);
                else if (tech == 1)
                    run_ci_pass(m, pcfg);
                else
                    run_ci_cycles_pass(m, pcfg);
                const VerifyResult r = verify_module(m);
                ASSERT_TRUE(r.ok)
                    << name << " tech=" << tech << " bound=" << bound
                    << "\n"
                    << report(r, m);
                ASSERT_NE(r.max_stretch, kUnboundedStretch) << name;
                ExecConfig ecfg = exec_cfg(11);
                const ExecResult er = execute(m, ecfg);
                ASSERT_LE(er.max_stretch_instrs, r.max_stretch)
                    << name << " tech=" << tech << " bound=" << bound;
            }
        }
    }
}

} // namespace
} // namespace tq::compiler
