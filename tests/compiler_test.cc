/**
 * @file
 * Tests for the mini-IR, CFG analyses, instrumentation passes, and timing
 * executor: loop detection on crafted graphs, placement-bound invariants,
 * probe-count comparisons between techniques, and executor semantics.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/builder.h"
#include "compiler/cfg.h"
#include "compiler/exec.h"
#include "compiler/passes.h"
#include "compiler/report.h"
#include "compiler/verifier.h"

namespace tq::compiler {
namespace {

/** Straight-line function: entry -> mid -> exit, `n` IAlu per block. */
Module
straightline(int n)
{
    FunctionBuilder fb("straight");
    const int a = fb.add_block();
    const int b = fb.add_block();
    const int c = fb.add_block();
    fb.ops(a, Op::IAlu, n).jump(a, b);
    fb.ops(b, Op::IAlu, n).jump(b, c);
    fb.ops(c, Op::IAlu, n).ret(c);
    Module m;
    m.name = "straight";
    m.functions.push_back(fb.build());
    return m;
}

/** Diamond: entry branches to two sides that rejoin. */
Module
diamond(int left_n, int right_n)
{
    FunctionBuilder fb("diamond");
    const int a = fb.add_block();
    const int l = fb.add_block();
    const int r = fb.add_block();
    const int j = fb.add_block();
    fb.ops(a, Op::IAlu, 2).branch(a, l, r, 0.5);
    fb.ops(l, Op::IAlu, left_n).jump(l, j);
    fb.ops(r, Op::IAlu, right_n).jump(r, j);
    fb.ops(j, Op::IAlu, 2).ret(j);
    Module m;
    m.name = "diamond";
    m.functions.push_back(fb.build());
    return m;
}

/** Single self-loop with a known/unknown trip count. */
Module
simple_loop(uint64_t trips, bool known, bool induction, int body_n)
{
    FunctionBuilder fb("loop");
    const int a = fb.add_block();
    const int l = fb.add_block();
    const int e = fb.add_block();
    fb.ops(a, Op::IAlu, 1).jump(a, l);
    fb.ops(l, Op::IAlu, body_n);
    fb.latch(l, l, e, trips);
    fb.loop_facts(l, known ? std::optional<uint64_t>(trips) : std::nullopt,
                  induction);
    fb.ops(e, Op::IAlu, 1).ret(e);
    Module m;
    m.name = "loop";
    m.functions.push_back(fb.build());
    return m;
}

// ---------------------------------------------------------------- CFG --

TEST(Cfg, StraightLineOrderAndDominators)
{
    Module m = straightline(3);
    Cfg cfg(m.entry());
    EXPECT_EQ(cfg.rpo(), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(cfg.idom(1), 0);
    EXPECT_EQ(cfg.idom(2), 1);
    EXPECT_TRUE(cfg.dominates(0, 2));
    EXPECT_FALSE(cfg.dominates(2, 0));
    EXPECT_TRUE(cfg.loops().empty());
}

TEST(Cfg, DiamondJoinDominatedByEntryOnly)
{
    Module m = diamond(3, 5);
    Cfg cfg(m.entry());
    EXPECT_EQ(cfg.idom(3), 0) << "join dominated by the fork, not a side";
    EXPECT_TRUE(cfg.dominates(0, 3));
    EXPECT_FALSE(cfg.dominates(1, 3));
    EXPECT_TRUE(cfg.loops().empty());
}

TEST(Cfg, DetectsSelfLoop)
{
    Module m = simple_loop(10, false, false, 4);
    Cfg cfg(m.entry());
    ASSERT_EQ(cfg.loops().size(), 1u);
    const LoopInfo &loop = cfg.loops()[0];
    EXPECT_EQ(loop.header, 1);
    EXPECT_EQ(loop.latches, (std::vector<int>{1}));
    EXPECT_TRUE(loop.contains(1));
    EXPECT_FALSE(loop.contains(0));
    EXPECT_EQ(loop.depth, 1);
    EXPECT_EQ(cfg.loop_with_header(1), 0);
}

TEST(Cfg, DetectsNestedLoopsInnermostFirst)
{
    // bb0 -> bb1 (outer header) -> bb2 (inner self loop) -> bb3 (outer
    // latch) -> bb1 / bb4.
    FunctionBuilder fb("nest");
    const int b0 = fb.add_block();
    const int b1 = fb.add_block();
    const int b2 = fb.add_block();
    const int b3 = fb.add_block();
    const int b4 = fb.add_block();
    fb.jump(b0, b1);
    fb.ops(b1, Op::IAlu, 1).jump(b1, b2);
    fb.ops(b2, Op::IAlu, 2).latch(b2, b2, b3, 5);
    fb.ops(b3, Op::IAlu, 1).latch(b3, b1, b4, 7);
    fb.ret(b4);
    Module m;
    m.functions.push_back(fb.build());
    Cfg cfg(m.entry());
    ASSERT_EQ(cfg.loops().size(), 2u);
    // Innermost first: the self-loop at bb2 (depth 2) precedes the outer.
    EXPECT_EQ(cfg.loops()[0].header, b2);
    EXPECT_EQ(cfg.loops()[0].depth, 2);
    EXPECT_EQ(cfg.loops()[1].header, b1);
    EXPECT_EQ(cfg.loops()[1].depth, 1);
    EXPECT_EQ(cfg.loops()[0].parent, 1);
    EXPECT_EQ(cfg.innermost_loop_of(b2), 0);
    EXPECT_EQ(cfg.innermost_loop_of(b3), 1);
    EXPECT_TRUE(cfg.loops()[1].contains(b2));
}

TEST(Cfg, UnreachableBlocksExcluded)
{
    FunctionBuilder fb("unreach");
    const int a = fb.add_block();
    const int dead = fb.add_block();
    fb.ops(a, Op::IAlu, 1).ret(a);
    fb.ops(dead, Op::IAlu, 1).ret(dead);
    Module m;
    m.functions.push_back(fb.build());
    Cfg cfg(m.entry());
    EXPECT_TRUE(cfg.reachable(a));
    EXPECT_FALSE(cfg.reachable(dead));
}

// -------------------------------------------------------------- passes --

TEST(TqPass, StraightLineRespectsBound)
{
    Module m = straightline(50); // 150 instructions total
    PassConfig cfg;
    cfg.bound = 40;
    run_tq_pass(m, cfg);
    const StretchFacts facts = analyze_stretch(m.entry(), cfg, {});
    EXPECT_TRUE(facts.has_probes);
    EXPECT_LE(facts.max_gap, cfg.bound);
    EXPECT_GE(m.entry().probe_count(), 3); // 150/40 ~ 4 probes
}

TEST(TqPass, ShortFunctionGetsNoProbes)
{
    Module m = straightline(5); // 15 instructions < bound
    PassConfig cfg;
    cfg.bound = 100;
    const auto summaries = run_tq_pass(m, cfg);
    EXPECT_EQ(m.entry().probe_count(), 0);
    EXPECT_FALSE(summaries[0].has_probes);
    EXPECT_EQ(summaries[0].entry_gap, 15);
}

TEST(TqPass, DiamondBoundsLongestSide)
{
    Module m = diamond(100, 5);
    PassConfig cfg;
    cfg.bound = 60;
    run_tq_pass(m, cfg);
    const StretchFacts facts = analyze_stretch(m.entry(), cfg, {});
    EXPECT_LE(facts.max_gap, cfg.bound);
    // The short side plus join must not need a probe.
    EXPECT_EQ(m.entry().blocks[2].instrs.size(), 5u);
}

TEST(TqPass, SkipsSmallStaticLoop)
{
    Module m = simple_loop(8, /*known=*/true, true, 4); // 8*4 = 32 <= bound
    PassConfig cfg;
    cfg.bound = 100;
    run_tq_pass(m, cfg);
    EXPECT_EQ(m.entry().probe_count(), 0)
        << "statically small loops are left uninstrumented";
}

TEST(TqPass, GuardsUnknownTripLoop)
{
    Module m = simple_loop(1000, /*known=*/false, false, 4);
    PassConfig cfg;
    cfg.bound = 100;
    run_tq_pass(m, cfg);
    // Exactly one loop-guard probe at the latch; no dense probing.
    int guards = 0;
    for (const auto &b : m.entry().blocks)
        for (const auto &i : b.instrs)
            if (i.probe == ProbeKind::TqLoopGuard)
                ++guards;
    EXPECT_EQ(guards, 1);
    EXPECT_EQ(m.entry().probe_count(), 1);
}

TEST(TqPass, GuardPeriodSpreadsBoundOverIterations)
{
    Module m = simple_loop(100000, false, false, 5);
    PassConfig cfg;
    cfg.bound = 100;
    run_tq_pass(m, cfg);
    const Instr *guard = nullptr;
    for (const auto &b : m.entry().blocks)
        for (const auto &i : b.instrs)
            if (i.probe == ProbeKind::TqLoopGuard)
                guard = &i;
    ASSERT_NE(guard, nullptr);
    // body stretch is ~5-6 instructions -> period ~ bound / stretch.
    EXPECT_GE(guard->period, 10u);
    EXPECT_LE(guard->period, 25u);
    EXPECT_GE(guard->stretch_hint, 5u);
}

TEST(TqPass, SelfLoopUsesCloningGadget)
{
    Module m = simple_loop(5000, false, /*induction=*/false, 4);
    PassConfig cfg;
    cfg.bound = 80;
    run_tq_pass(m, cfg);
    for (const auto &b : m.entry().blocks)
        for (const auto &i : b.instrs)
            if (i.probe == ProbeKind::TqLoopGuard)
                EXPECT_EQ(i.gadget, LoopGadget::Cloned);
}

TEST(TqPass, InductionVariablePreferredOverCounter)
{
    // Two-block loop (not a self loop) with an induction variable.
    FunctionBuilder fb("ind");
    const int a = fb.add_block();
    const int h = fb.add_block();
    const int l = fb.add_block();
    const int e = fb.add_block();
    fb.jump(a, h);
    fb.ops(h, Op::IAlu, 3).jump(h, l);
    fb.ops(l, Op::IAlu, 3).latch(l, h, e, 5000);
    fb.loop_facts(h, std::nullopt, true);
    fb.ret(e);
    Module m;
    m.functions.push_back(fb.build());
    PassConfig cfg;
    cfg.bound = 80;
    run_tq_pass(m, cfg);
    int guards = 0;
    for (const auto &b : m.entry().blocks)
        for (const auto &i : b.instrs)
            if (i.probe == ProbeKind::TqLoopGuard) {
                ++guards;
                EXPECT_EQ(i.gadget, LoopGadget::Induction);
            }
    EXPECT_EQ(guards, 1);
}

TEST(TqPass, DenseLoopBodyGetsIntraBodyProbes)
{
    // Body longer than the bound: straight-line probes must appear inside.
    Module m = simple_loop(50, false, false, 300);
    PassConfig cfg;
    cfg.bound = 100;
    run_tq_pass(m, cfg);
    int clock_probes = 0;
    for (const auto &i : m.entry().blocks[1].instrs)
        clock_probes += i.probe == ProbeKind::TqClock;
    EXPECT_GE(clock_probes, 2) << "300-instr body needs ~3 probes";
}

TEST(TqPass, CallToInstrumentedCalleeUsesSummary)
{
    // callee: long straight-line (gets probes); caller calls it twice.
    FunctionBuilder callee("callee");
    const int cb = callee.add_block();
    callee.ops(cb, Op::IAlu, 500).ret(cb);

    FunctionBuilder caller("caller");
    const int b = caller.add_block();
    caller.ops(b, Op::IAlu, 5);
    caller.call(b, 1);
    caller.ops(b, Op::IAlu, 5);
    caller.call(b, 1);
    caller.ops(b, Op::IAlu, 5);
    caller.ret(b);

    Module m;
    m.functions.push_back(caller.build());
    m.functions.push_back(callee.build());
    PassConfig cfg;
    cfg.bound = 100;
    const auto summaries = run_tq_pass(m, cfg);
    EXPECT_TRUE(summaries[1].has_probes);
    EXPECT_LE(summaries[1].entry_gap, cfg.bound);
    EXPECT_LE(summaries[1].exit_gap, cfg.bound);
    // The callee handles its own probing; the caller conservatively
    // probes at call boundaries (the callee's entry/exit gaps are at the
    // bound, so any caller-side instructions overflow it), but must not
    // probe densely: at most one probe around each call plus slack.
    EXPECT_LE(m.functions[0].probe_count(), 4);
    const StretchFacts caller_facts =
        analyze_stretch(m.functions[0], cfg, summaries);
    // Probe-free stretches in the caller stay within bound plus one
    // callee residual (the documented conservative guarantee).
    EXPECT_LE(caller_facts.max_gap, 2 * cfg.bound + 2);
}

TEST(TqPass, ExternalCallChargedCost)
{
    FunctionBuilder fb("ext");
    const int b = fb.add_block();
    for (int i = 0; i < 10; ++i) {
        fb.ops(b, Op::IAlu, 2);
        fb.ext_call(b, 100);
    }
    fb.ret(b);
    Module m;
    m.functions.push_back(fb.build());
    PassConfig cfg;
    cfg.bound = 60;
    cfg.ext_call_instrs = 25;
    run_tq_pass(m, cfg);
    // Each (2 + 1 + 25) = 28-instr step; bound 60 -> probe every ~2 steps.
    EXPECT_GE(m.entry().probe_count(), 4);
}

TEST(CiPass, ProbesEveryBlockWithoutMerging)
{
    Module m = diamond(10, 10);
    PassConfig cfg;
    cfg.ci_merge_chains = false;
    run_ci_pass(m, cfg);
    // One CiCounter probe per (reachable) block.
    for (const auto &b : m.entry().blocks) {
        int probes = 0;
        uint32_t inc = 0;
        for (const auto &i : b.instrs)
            if (i.probe == ProbeKind::CiCounter) {
                ++probes;
                inc = i.ci_increment;
            }
        EXPECT_EQ(probes, 1);
        EXPECT_EQ(inc, static_cast<uint32_t>(b.real_instr_count()));
    }
}

TEST(CiPass, ChainMergingReducesProbes)
{
    Module unmerged = straightline(10);
    Module merged = straightline(10);
    PassConfig no_merge;
    no_merge.ci_merge_chains = false;
    PassConfig with_merge;
    with_merge.ci_merge_chains = true;
    run_ci_pass(unmerged, no_merge);
    run_ci_pass(merged, with_merge);
    EXPECT_EQ(unmerged.entry().probe_count(), 3);
    EXPECT_EQ(merged.entry().probe_count(), 1)
        << "a straight-line chain collapses to one probe";
    // Total counted instructions must be preserved by merging.
    uint32_t total = 0;
    for (const auto &b : merged.entry().blocks)
        for (const auto &i : b.instrs)
            if (i.probe == ProbeKind::CiCounter)
                total += i.ci_increment;
    EXPECT_EQ(total, 30u);
}

TEST(Passes, TqInsertsFarFewerProbesThanCiOnBranchyCode)
{
    // The headline structural claim (paper section 3.1): CI must probe
    // at basic-block granularity, TQ probes sparsely.
    FunctionBuilder fb("branchy");
    const int entry = fb.add_block();
    int prev = entry;
    fb.ops(entry, Op::IAlu, 2);
    for (int d = 0; d < 20; ++d) {
        const int l = fb.add_block();
        const int r = fb.add_block();
        const int j = fb.add_block();
        fb.branch(prev, l, r, 0.5);
        fb.ops(l, Op::IAlu, 3).jump(l, j);
        fb.ops(r, Op::IAlu, 4).jump(r, j);
        fb.ops(j, Op::IAlu, 1);
        prev = j;
    }
    fb.ret(prev);
    Module base;
    base.functions.push_back(fb.build());

    Module ci = base;
    Module tq_mod = base;
    PassConfig cfg;
    cfg.bound = 60;
    run_ci_pass(ci, cfg);
    run_tq_pass(tq_mod, cfg);
    const int ci_probes = ci.probe_count();
    const int tq_probes = tq_mod.probe_count();
    EXPECT_GT(ci_probes, 5 * std::max(tq_probes, 1))
        << "CI=" << ci_probes << " TQ=" << tq_probes;
}

// ------------------------------------------------------------ executor --

TEST(Exec, StraightLineCycleCount)
{
    Module m = straightline(10);
    ExecConfig cfg;
    cfg.cost.load_miss_rate = 0; // deterministic
    const ExecResult r = execute(m, cfg);
    EXPECT_EQ(r.real_instrs, 30u);
    EXPECT_DOUBLE_EQ(r.total_cycles, 30.0 * cfg.cost.ialu);
    EXPECT_EQ(r.yields, 0u);
    EXPECT_DOUBLE_EQ(r.overhead(), 0.0);
}

TEST(Exec, TripCountLoopRunsExactIterations)
{
    Module m = simple_loop(100, false, false, 7);
    ExecConfig cfg;
    const ExecResult r = execute(m, cfg);
    // 1 (pre) + 100*7 (body) + 1 (post)
    EXPECT_EQ(r.real_instrs, 702u);
}

TEST(Exec, NestedTripCountsMultiply)
{
    FunctionBuilder fb("nest");
    const int b0 = fb.add_block();
    const int outer = fb.add_block();
    const int inner = fb.add_block();
    const int olatch = fb.add_block();
    const int exit = fb.add_block();
    fb.jump(b0, outer);
    fb.jump(outer, inner);
    fb.ops(inner, Op::IAlu, 1).latch(inner, inner, olatch, 10);
    fb.latch(olatch, outer, exit, 5);
    fb.ret(exit);
    Module m;
    m.functions.push_back(fb.build());
    const ExecResult r = execute(m, ExecConfig{});
    EXPECT_EQ(r.real_instrs, 50u) << "10 inner x 5 outer";
}

TEST(Exec, BernoulliBranchFrequency)
{
    // Loop 10000 times; each iteration takes a 0.3-probability branch
    // with 1 extra instruction on the taken side.
    FunctionBuilder fb("bern");
    const int b0 = fb.add_block();
    const int h = fb.add_block();
    const int t = fb.add_block();
    const int l = fb.add_block();
    const int e = fb.add_block();
    fb.jump(b0, h);
    fb.ops(h, Op::IAlu, 1).branch(h, t, l, 0.3);
    fb.ops(t, Op::IAlu, 1).jump(t, l);
    fb.latch(l, h, e, 10000);
    fb.ret(e);
    Module m;
    m.functions.push_back(fb.build());
    const ExecResult r = execute(m, ExecConfig{});
    const double taken =
        static_cast<double>(r.real_instrs) - 10000; // extra instrs
    EXPECT_NEAR(taken / 10000, 0.3, 0.03);
}

TEST(Exec, LoadMissesRaiseCycles)
{
    FunctionBuilder fb("loads");
    const int b = fb.add_block();
    fb.ops(b, Op::Load, 10000).ret(b);
    Module m;
    m.functions.push_back(fb.build());
    ExecConfig cfg;
    cfg.cost.load_miss_rate = 0.1;
    const ExecResult r = execute(m, cfg);
    const double expected =
        10000 * (0.9 * cfg.cost.load_hit + 0.1 * cfg.cost.load_miss);
    EXPECT_NEAR(r.total_cycles, expected, expected * 0.1);
}

TEST(Exec, CallsExecuteCalleeInstrs)
{
    FunctionBuilder callee("callee");
    const int cb = callee.add_block();
    callee.ops(cb, Op::IAlu, 9).ret(cb);
    FunctionBuilder caller("caller");
    const int b = caller.add_block();
    caller.call(b, 1).call(b, 1).ret(b);
    Module m;
    m.functions.push_back(caller.build());
    m.functions.push_back(callee.build());
    const ExecResult r = execute(m, ExecConfig{});
    EXPECT_EQ(r.real_instrs, 2u * 9 + 2 /*call instrs*/);
}

TEST(Exec, TqProbesYieldNearQuantum)
{
    Module m = simple_loop(200000, false, false, 5);
    PassConfig pcfg;
    pcfg.bound = 100;
    run_tq_pass(m, pcfg);
    ExecConfig cfg;
    cfg.quantum_cycles = 4200; // 2us at 2.1GHz
    const ExecResult r = execute(m, cfg);
    EXPECT_GT(r.yields, 100u);
    // MAE well under the quantum: probes fire every <=100 instrs.
    EXPECT_LT(r.yield_mae_cycles, 0.25 * cfg.quantum_cycles);
    // Placement invariant, statically proven: the verifier computes the
    // exact worst-case probe-free stretch and execution must honor it.
    const VerifyResult vr = verify_module(m);
    ASSERT_TRUE(vr.ok) << report(vr, m);
    ASSERT_NE(vr.max_stretch, kUnboundedStretch);
    EXPECT_LE(r.max_stretch_instrs, vr.max_stretch);
}

TEST(Exec, CiYieldTimingSuffersFromVariableLatency)
{
    // With variable load latency, CI's instruction-count translation
    // must show a larger MAE than TQ's clock probes on the same program.
    auto build = [] {
        FunctionBuilder fb("var");
        const int b0 = fb.add_block();
        const int l = fb.add_block();
        const int e = fb.add_block();
        fb.jump(b0, l);
        fb.ops(l, Op::IAlu, 3).ops(l, Op::Load, 3);
        fb.latch(l, l, e, 300000);
        fb.loop_facts(l, std::nullopt, false);
        fb.ret(e);
        Module m;
        m.functions.push_back(fb.build());
        return m;
    };
    PassConfig pcfg;
    pcfg.bound = 120;
    ExecConfig cfg;
    cfg.quantum_cycles = 4200;
    cfg.cost.load_miss_rate = 0.05;

    Module tq_mod = build();
    run_tq_pass(tq_mod, pcfg);
    const ExecResult tq_res = execute(tq_mod, cfg);

    Module ci_mod = build();
    run_ci_pass(ci_mod, pcfg);
    const ExecResult ci_res = execute(ci_mod, cfg);

    ASSERT_GT(tq_res.yields, 50u);
    ASSERT_GT(ci_res.yields, 50u);
    EXPECT_LT(tq_res.yield_mae_cycles, ci_res.yield_mae_cycles)
        << "physical clock must out-time instruction counting";
}

TEST(Report, CompareTechniquesProducesAllMetrics)
{
    Module m = simple_loop(100000, false, false, 6);
    PassConfig pcfg;
    pcfg.bound = 100;
    ExecConfig cfg;
    cfg.quantum_cycles = 4200;
    const ComparisonRow row = compare_techniques(m, pcfg, cfg);
    EXPECT_EQ(row.workload, "loop");
    EXPECT_GT(row.ci.static_probes, 0);
    EXPECT_GT(row.tq.static_probes, 0);
    EXPECT_GT(row.ci.overhead, 0.0);
    EXPECT_GT(row.tq.overhead, 0.0);
    EXPECT_GT(row.ci.yields, 0u);
    EXPECT_GT(row.tq.yields, 0u);
    // CI-Cycles costs at least as much as CI (same placement + clock).
    EXPECT_GE(row.ci_cycles.overhead, row.ci.overhead * 0.99);
}

} // namespace
} // namespace tq::compiler
