/**
 * @file
 * Fault-injection tests: stop()/drain() must terminate — within the
 * configured deadline, with honest accounting — under every fault the
 * injector can arm (stalled collector, frozen stages, ring-full bursts,
 * randomized yields).
 *
 * The pure-logic tests (deterministic yield pattern, site names) and
 * the stalled-collector scenario run in every build. Scenarios that
 * need the hot-path hooks compiled in skip themselves unless the tree
 * was configured with -DTQ_FAULT_INJECTION=ON (tq::fault::kEnabled).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/dist.h"
#include "common/units.h"
#include "fault/fault.h"
#include "net/loadgen.h"
#include "net/runtime_server.h"
#include "runtime/runtime.h"

namespace tq {
namespace {

using fault::FaultInjector;
using fault::Site;

runtime::Request
make_req(uint64_t id, uint64_t payload = 0)
{
    runtime::Request req;
    req.id = id;
    req.gen_cycles = rdcycles();
    req.payload = payload;
    return req;
}

/** Every scenario starts and ends with a disarmed injector. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST(FaultInjectorLogic, YieldsAtIsDeterministicAndSeeded)
{
    constexpr uint64_t kVisits = 100'000;
    constexpr uint64_t kEvery = 8;
    uint64_t hits = 0;
    for (uint64_t v = 0; v < kVisits; ++v) {
        const bool y = FaultInjector::yields_at(42, kEvery, v);
        // Deterministic: the same (seed, n, visit) always agrees.
        ASSERT_EQ(y, FaultInjector::yields_at(42, kEvery, v));
        hits += y ? 1 : 0;
    }
    // Roughly one visit in kEvery (generous 2x band — it is a hash,
    // not a counter).
    EXPECT_GT(hits, kVisits / kEvery / 2);
    EXPECT_LT(hits, kVisits / kEvery * 2);

    // Different seeds give different patterns.
    bool differs = false;
    for (uint64_t v = 0; v < 256 && !differs; ++v)
        differs = FaultInjector::yields_at(1, kEvery, v) !=
                  FaultInjector::yields_at(2, kEvery, v);
    EXPECT_TRUE(differs);
}

TEST(FaultInjectorLogic, SiteNamesAreDistinct)
{
    std::set<std::string> names;
    for (int s = 0; s < static_cast<int>(Site::kCount); ++s) {
        const char *name = fault::site_name(static_cast<Site>(s));
        ASSERT_NE(name, nullptr);
        EXPECT_FALSE(std::string(name).empty());
        names.insert(name);
    }
    EXPECT_EQ(names.size(), static_cast<size_t>(Site::kCount));
}

// A collector that never drains the TX rings must not wedge shutdown:
// stop() returns within its deadline and every accepted job is either
// delivered, dropped (counted), or abandoned (counted). Runs in every
// build — the fault here is the test simply not collecting.
TEST_F(FaultTest, StalledCollectorStopTerminates)
{
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.ring_capacity = 8;
    cfg.work = runtime::WorkPolicy::Fcfs;
    cfg.stop_deadline_sec = 0.3;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload;
    });
    rt.start();

    uint64_t accepted = 0;
    for (uint64_t i = 0; i < 64; ++i) {
        for (int attempt = 0; attempt < 1000; ++attempt) {
            if (rt.submit(make_req(i))) {
                ++accepted;
                break;
            }
            std::this_thread::yield();
        }
    }
    ASSERT_GT(accepted, 8u);

    const auto t0 = std::chrono::steady_clock::now();
    rt.stop();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(elapsed, 30.0); // far above the deadline; "returns at all"
    EXPECT_EQ(rt.lifecycle(), runtime::Lifecycle::Stopped);

    std::vector<runtime::Response> leftovers;
    rt.drain_responses(leftovers);
    EXPECT_EQ(leftovers.size() + rt.dropped_responses() +
                  rt.abandoned_jobs(),
              accepted);
}

// A frozen worker models a thread the OS stopped scheduling: drain()
// must escalate at the deadline, release the freeze, and join.
TEST_F(FaultTest, FrozenWorkerStopWithinDeadline)
{
    if (!fault::kEnabled)
        GTEST_SKIP() << "hook sites compiled out (TQ_FAULT_INJECTION=OFF)";

    FaultInjector::instance().freeze(Site::WorkerPoll);

    runtime::RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.work = runtime::WorkPolicy::Fcfs;
    cfg.stop_deadline_sec = 0.3;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload;
    });
    rt.start();
    for (uint64_t i = 0; i < 16; ++i)
        rt.submit(make_req(i));
    // Give the dispatcher a moment to forward into the frozen worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const auto t0 = std::chrono::steady_clock::now();
    const bool clean = rt.drain(0.3);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(elapsed, 30.0);
    EXPECT_EQ(rt.lifecycle(), runtime::Lifecycle::Stopped);
    // The worker never ran a job: drain cannot have been clean, and the
    // forwarded jobs must show up as abandoned rather than vanish.
    EXPECT_FALSE(clean);
    EXPECT_GT(rt.abandoned_jobs(), 0u);
    EXPECT_GT(FaultInjector::instance().visits(Site::WorkerPoll), 0u);
}

// A frozen dispatcher: nothing is ever forwarded. drain() escalates,
// the dispatcher wakes into the force-stop phase, and the queued
// requests are counted abandoned.
TEST_F(FaultTest, FrozenDispatcherCountsQueuedAsAbandoned)
{
    if (!fault::kEnabled)
        GTEST_SKIP() << "hook sites compiled out (TQ_FAULT_INJECTION=OFF)";

    FaultInjector::instance().freeze(Site::DispatcherPoll);

    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.work = runtime::WorkPolicy::Fcfs;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload;
    });
    rt.start();
    uint64_t accepted = 0;
    for (uint64_t i = 0; i < 32; ++i)
        accepted += rt.submit(make_req(i)) ? 1 : 0;
    ASSERT_GT(accepted, 0u);

    EXPECT_FALSE(rt.drain(0.2));
    EXPECT_EQ(rt.lifecycle(), runtime::Lifecycle::Stopped);
    EXPECT_EQ(rt.abandoned_jobs(), accepted);
    std::vector<runtime::Response> none;
    EXPECT_EQ(rt.drain_responses(none), 0u);
}

// A stalled (slow, but not dead) worker: drain with a roomy deadline
// still completes every queued job before joining.
TEST_F(FaultTest, StalledWorkerDrainStillCompletes)
{
    if (!fault::kEnabled)
        GTEST_SKIP() << "hook sites compiled out (TQ_FAULT_INJECTION=OFF)";

    FaultInjector::instance().stall(Site::WorkerSlice, 200.0); // 200us/job

    runtime::RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.work = runtime::WorkPolicy::Fcfs;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload + 1;
    });
    rt.start();
    constexpr uint64_t kJobs = 32;
    for (uint64_t i = 0; i < kJobs; ++i)
        ASSERT_TRUE(rt.submit(make_req(i, i)));

    EXPECT_TRUE(rt.drain(30.0));
    std::vector<runtime::Response> responses;
    rt.drain_responses(responses);
    EXPECT_EQ(responses.size(), kJobs);
    EXPECT_EQ(rt.abandoned_jobs(), 0u);
    EXPECT_EQ(rt.dropped_responses(), 0u);
    EXPECT_GT(FaultInjector::instance().visits(Site::WorkerSlice), 0u);
}

// Ring-full burst: a heavy per-completion stall backs up the tiny TX
// ring while the dispatcher keeps pushing. With a spin limit armed the
// overflow becomes counted drops, never an unbounded block.
TEST_F(FaultTest, RingFullBurstDropsAreBoundedAndCounted)
{
    if (!fault::kEnabled)
        GTEST_SKIP() << "hook sites compiled out (TQ_FAULT_INJECTION=OFF)";

    FaultInjector::instance().stall(Site::WorkerComplete, 100.0);

    runtime::RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.ring_capacity = 4;
    cfg.push_spin_limit = 64;
    cfg.work = runtime::WorkPolicy::Fcfs;
    cfg.stop_deadline_sec = 0.5;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload;
    });
    rt.start();

    uint64_t accepted = 0;
    for (uint64_t i = 0; i < 64; ++i) {
        for (int attempt = 0; attempt < 1000; ++attempt) {
            if (rt.submit(make_req(i))) {
                ++accepted;
                break;
            }
            std::this_thread::yield();
        }
    }
    ASSERT_GT(accepted, 4u);
    rt.stop();
    EXPECT_EQ(rt.lifecycle(), runtime::Lifecycle::Stopped);

    std::vector<runtime::Response> leftovers;
    rt.drain_responses(leftovers);
    EXPECT_EQ(leftovers.size() + rt.dropped_responses() +
                  rt.abandoned_jobs(),
              accepted);
}

// Regression (backpressure attribution): under a ring-full burst with a
// live worker, every accepted job FINISHES — so the overflow must be
// charged to dropped_responses (with the spin budget paid in
// tx_ring_full_spins first), and abandoned_jobs must stay exactly zero.
// The two counters partition distinct fates: a job is dropped only
// after it ran, abandoned only if it never did; one job can never be
// both.
TEST_F(FaultTest, RingFullBurstChargesDropsNotAbandons)
{
    if (!fault::kEnabled)
        GTEST_SKIP() << "hook sites compiled out (TQ_FAULT_INJECTION=OFF)";

    FaultInjector::instance().stall(Site::WorkerComplete, 100.0);

    runtime::RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.ring_capacity = 4;
    cfg.push_spin_limit = 64;
    cfg.work = runtime::WorkPolicy::Fcfs;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload;
    });
    rt.start();

    // Pace submissions so the dispatch ring never overflows (the worker
    // clears a job per ~100us stall): the ONLY full ring is TX, which
    // nobody collects.
    constexpr uint64_t kJobs = 32;
    uint64_t accepted = 0;
    for (uint64_t i = 0; i < kJobs; ++i) {
        for (int attempt = 0; attempt < 1000; ++attempt) {
            if (rt.submit(make_req(i))) {
                ++accepted;
                break;
            }
            std::this_thread::yield();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    ASSERT_EQ(accepted, kJobs);

    // Clean drain (no forced stop): the worker finishes every job.
    rt.drain(/*deadline_sec=*/30.0);
    EXPECT_EQ(rt.lifecycle(), runtime::Lifecycle::Stopped);

    std::vector<runtime::Response> leftovers;
    rt.drain_responses(leftovers);
    // Disjoint attribution: finished jobs are delivered or dropped;
    // nothing was abandoned, and the partition is exact.
    EXPECT_EQ(rt.abandoned_jobs(), 0u);
    EXPECT_EQ(leftovers.size() + rt.dropped_responses(), accepted);
    // The 4-slot ring forces most completions into the drop path.
    EXPECT_GE(rt.dropped_responses(), accepted - cfg.ring_capacity);
    // Every running-phase drop paid its full spin budget first.
    EXPECT_GE(rt.tx_ring_full_spins(),
              cfg.push_spin_limit * rt.dropped_responses());
}

// Chaos under burst (CI composition scenario): seeded yields at every
// fault site while an MMPP/on-off arrival schedule drives the runtime
// through alternating silence and 4x bursts. Accounting must stay
// conservation-exact end to end.
TEST_F(FaultTest, ChaosUnderMmppBurstRoundTrips)
{
    if (!fault::kEnabled)
        GTEST_SKIP() << "hook sites compiled out (TQ_FAULT_INJECTION=OFF)";

    auto &inj = FaultInjector::instance();
    inj.seed(99);
    for (int s = 0; s < static_cast<int>(Site::kCount); ++s)
        inj.yield_every(static_cast<Site>(s), 4);

    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload;
    });
    rt.start();
    net::RuntimeServer server(rt);

    FixedDist dist(us(1), "spin");
    net::LoadGenConfig lg;
    lg.rate_mrps = 0.01;
    lg.duration_sec = 0.1;
    lg.seed = 5;
    lg.arrival.kind = ArrivalSpec::Kind::OnOff;
    lg.arrival.onoff.on_mult = 4.0;
    lg.arrival.onoff.off_mult = 0.0; // fully silent troughs
    const net::ClientStats stats = net::run_open_loop(
        server, dist, net::spin_request_factory(), lg);

    EXPECT_TRUE(rt.drain(30.0));
    EXPECT_GT(stats.submitted, 100u);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.timed_out, 0u);
    EXPECT_EQ(rt.abandoned_jobs(), 0u);
    EXPECT_EQ(rt.dropped_responses(), 0u);
    EXPECT_GT(inj.visits(Site::LoadgenSend), 0u);
    EXPECT_GT(inj.visits(Site::LoadgenCollect), 0u);
}

// Seeded chaos everywhere: deterministic yields at every site shake
// thread interleavings, yet a collected run still round-trips every
// job and drains clean.
TEST_F(FaultTest, RandomYieldChaosRoundTrips)
{
    if (!fault::kEnabled)
        GTEST_SKIP() << "hook sites compiled out (TQ_FAULT_INJECTION=OFF)";

    auto &inj = FaultInjector::instance();
    inj.seed(1234);
    for (int s = 0; s < static_cast<int>(Site::kCount); ++s)
        inj.yield_every(static_cast<Site>(s), 4);

    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.work = runtime::WorkPolicy::Fcfs;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        return req.payload * 3;
    });
    rt.start();

    constexpr uint64_t kJobs = 200;
    std::vector<runtime::Response> responses;
    uint64_t submitted = 0;
    while (submitted < kJobs || responses.size() < kJobs) {
        if (submitted < kJobs && rt.submit(make_req(submitted, submitted)))
            ++submitted;
        rt.drain_responses(responses);
    }
    EXPECT_TRUE(rt.drain(30.0));
    rt.drain_responses(responses);
    EXPECT_EQ(responses.size(), kJobs);
    for (const auto &r : responses)
        EXPECT_EQ(r.result, r.id * 3);
    EXPECT_EQ(rt.abandoned_jobs(), 0u);
    EXPECT_EQ(rt.dropped_responses(), 0u);
    EXPECT_GT(inj.visits(Site::DispatcherPoll), 0u);
    EXPECT_GT(inj.visits(Site::WorkerPoll), 0u);
}

} // namespace
} // namespace tq
