/**
 * @file
 * Tests for the cache model: LRU set-associative behaviour against
 * hand-computed traces, hierarchy latencies, exact reuse distances vs a
 * brute-force oracle, and the pointer-chase microbenchmark's reuse
 * structure (the paper's Table 2).
 */
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/cache_sim.h"
#include "cache/chase.h"
#include "cache/reuse.h"
#include "common/rng.h"

namespace tq::cache {
namespace {

TEST(CacheLevel, HitsAfterInstall)
{
    CacheLevel c(1024, 2); // 16 lines, 8 sets x 2 ways
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1030)) << "same 64B line";
    EXPECT_FALSE(c.access(0x1040)) << "next line";
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheLevel, LruEvictionWithinSet)
{
    CacheLevel c(1024, 2); // 8 sets; set stride = 64*8 = 512
    // Three lines mapping to set 0: addresses 0, 512, 1024.
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(512));
    EXPECT_TRUE(c.access(0));      // 0 now MRU
    EXPECT_FALSE(c.access(1024));  // evicts 512 (LRU)
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(512)) << "512 was evicted";
}

TEST(CacheLevel, CapacityWorkingSetFits)
{
    CacheLevel c(32 * 1024, 8);
    // 32KB working set = 512 lines: second pass must be all hits.
    for (uint64_t i = 0; i < 512; ++i)
        c.access(i * 64);
    const uint64_t misses_after_first = c.misses();
    for (uint64_t i = 0; i < 512; ++i)
        EXPECT_TRUE(c.access(i * 64));
    EXPECT_EQ(c.misses(), misses_after_first);
}

TEST(CacheLevel, OverCapacitySetThrashes)
{
    CacheLevel c(32 * 1024, 8);
    // 64KB sequential working set with LRU: every access misses on each
    // pass (classic LRU pathological case).
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t i = 0; i < 1024; ++i)
            c.access(i * 64);
    EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheHierarchy, LatencyTiers)
{
    CacheLatencies lat;
    CacheHierarchy h(lat);
    EXPECT_DOUBLE_EQ(h.access(0x5000), lat.memory);  // cold
    EXPECT_DOUBLE_EQ(h.access(0x5000), lat.l1_hit);  // L1 hit
    // Evict from L1 (32KB) but not L2 (1MB): touch 64KB of other lines.
    for (uint64_t i = 1; i <= 1024; ++i)
        h.access(0x100000 + i * 64);
    EXPECT_DOUBLE_EQ(h.access(0x5000), lat.l2_hit);
}

// --------------------------------------------------------------- reuse --

/** Brute-force reuse distance oracle. */
class ReuseOracle
{
  public:
    uint64_t
    access(uint64_t addr)
    {
        const uint64_t line = addr >> 6;
        uint64_t distance = ReuseAnalyzer::kInfinite;
        const auto it = last_.find(line);
        if (it != last_.end()) {
            std::unordered_map<uint64_t, bool> seen;
            for (size_t i = it->second + 1; i < trace_.size(); ++i)
                seen[trace_[i]] = true;
            distance = seen.size();
        }
        last_[line] = trace_.size();
        trace_.push_back(line);
        return distance;
    }

  private:
    std::vector<uint64_t> trace_;
    std::unordered_map<uint64_t, size_t> last_;
};

TEST(ReuseAnalyzer, SimpleSequence)
{
    ReuseAnalyzer a;
    // A B C A : A's second access has distance 2 (B and C).
    EXPECT_EQ(a.access(0 * 64), ReuseAnalyzer::kInfinite);
    EXPECT_EQ(a.access(1 * 64), ReuseAnalyzer::kInfinite);
    EXPECT_EQ(a.access(2 * 64), ReuseAnalyzer::kInfinite);
    EXPECT_EQ(a.access(0 * 64), 2u);
    // Immediately repeated access: distance 0.
    EXPECT_EQ(a.access(0 * 64), 0u);
    EXPECT_EQ(a.cold(), 3u);
    EXPECT_EQ(a.accesses(), 5u);
}

TEST(ReuseAnalyzer, RepeatedArrayIterationHasDistanceArraySize)
{
    ReuseAnalyzer a;
    constexpr uint64_t kLines = 100;
    for (int pass = 0; pass < 3; ++pass) {
        for (uint64_t i = 0; i < kLines; ++i) {
            const uint64_t d = a.access(i * 64);
            if (pass > 0) {
                EXPECT_EQ(d, kLines - 1)
                    << "distinct other lines between passes";
            }
        }
    }
}

TEST(ReuseAnalyzer, MatchesBruteForceOracleOnRandomTraces)
{
    Rng rng(123);
    ReuseAnalyzer a;
    ReuseOracle oracle;
    for (int i = 0; i < 3000; ++i) {
        const uint64_t addr = rng.below(64) * 64; // 64 hot lines
        ASSERT_EQ(a.access(addr), oracle.access(addr)) << "access " << i;
    }
}

TEST(ReuseAnalyzer, ByteHistogramBuckets)
{
    ReuseAnalyzer a;
    for (uint64_t i = 0; i < 32; ++i)
        a.access(i * 64);
    for (uint64_t i = 0; i < 32; ++i)
        a.access(i * 64); // distance 31 lines = 1984 bytes
    const LogHistogram h = a.byte_histogram();
    EXPECT_EQ(h.total(), 32u);
    EXPECT_NEAR(a.fraction_above_bytes(1024), 1.0, 1e-9);
    EXPECT_NEAR(a.fraction_above_bytes(4096), 0.0, 1e-9);
}

// --------------------------------------------------------------- chase --

TEST(Chase, Table2ReuseAmplification)
{
    // Paper Table 2: the first access of an element within a quantum has
    // reuse distance J*A under TLS and C*J*A under CT; later accesses
    // within the quantum have distance <= A. With an 8KB array and a
    // quantum shorter than one iteration, essentially every access is a
    // first access, so TLS distances cluster at ~4*8KB=32KB and CT at
    // ~64*8KB=512KB.
    ChaseConfig cfg;
    cfg.array_bytes = 8 * 1024;
    cfg.quantum = us(0.5); // X=50 accesses << 128 lines per iteration
    cfg.centralized = false;
    const ReuseAnalyzer tls = analyze_chase_reuse(cfg, 60'000);
    // TLS: distances must sit between A and J*A (here 8KB..32KB).
    EXPECT_GT(tls.fraction_above_bytes(8 * 1024), 0.9);
    EXPECT_LT(tls.fraction_above_bytes(40 * 1024), 0.05);

    cfg.centralized = true;
    const ReuseAnalyzer ct = analyze_chase_reuse(cfg, 60'000);
    EXPECT_GT(ct.fraction_above_bytes(256 * 1024), 0.9)
        << "CT amplifies by total concurrent jobs";
}

TEST(Chase, SmallArraysFitL1RegardlessOfQuantum)
{
    // Figure 13: arrays up to 8KB see no extra misses from small quanta
    // (4 jobs x 8KB = 32KB = L1 capacity).
    ChaseConfig cfg;
    cfg.array_bytes = 4 * 1024;
    for (double q_us : {0.5, 2.0, 16.0}) {
        cfg.quantum = us(q_us);
        const ChaseResult r = run_chase(cfg);
        EXPECT_LT(r.avg_latency_ns, cfg.latencies.l1_hit * 1.2)
            << "quantum " << q_us << "us";
    }
}

TEST(Chase, MidSizeArraysSufferAtSmallQuanta)
{
    // Figure 13's key contrast at 8-32KB arrays: TLS-16us mostly hits L1,
    // TLS-2us misses to L2 once arrays exceed 8KB.
    ChaseConfig cfg;
    cfg.array_bytes = 16 * 1024;
    cfg.quantum = us(16);
    const ChaseResult big_q = run_chase(cfg);
    cfg.quantum = us(2);
    const ChaseResult small_q = run_chase(cfg);
    EXPECT_GT(small_q.avg_latency_ns, 1.5 * big_q.avg_latency_ns)
        << "big=" << big_q.avg_latency_ns
        << " small=" << small_q.avg_latency_ns;
}

TEST(Chase, TinyQuantaNoWorseThanSmallQuanta)
{
    // Figure 13: once quanta are small enough, shrinking further does not
    // degrade cache performance (TLS-0.5us ~ TLS-2us).
    ChaseConfig cfg;
    cfg.array_bytes = 16 * 1024;
    cfg.quantum = us(2);
    const ChaseResult q2 = run_chase(cfg);
    cfg.quantum = us(0.5);
    const ChaseResult q05 = run_chase(cfg);
    EXPECT_LT(q05.avg_latency_ns, 1.25 * q2.avg_latency_ns);
}

TEST(Chase, CentralizedWorseThanTwoLevel)
{
    // Figure 14: at 2us quanta, CT misses L2 from 16KB arrays
    // (16KB x 64 = 1MB) while TLS still fits (16KB x 4 = 64KB).
    ChaseConfig cfg;
    cfg.array_bytes = 16 * 1024;
    cfg.quantum = us(2);
    cfg.centralized = false;
    const ChaseResult tls = run_chase(cfg);
    cfg.centralized = true;
    const ChaseResult ct = run_chase(cfg);
    EXPECT_GT(ct.avg_latency_ns, 1.5 * tls.avg_latency_ns)
        << "tls=" << tls.avg_latency_ns << " ct=" << ct.avg_latency_ns;
    EXPECT_GT(ct.l2_miss_rate, tls.l2_miss_rate);
}

TEST(Chase, DeterministicForSeed)
{
    ChaseConfig cfg;
    cfg.array_bytes = 32 * 1024;
    const ChaseResult a = run_chase(cfg);
    const ChaseResult b = run_chase(cfg);
    EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
}

} // namespace
} // namespace tq::cache
