/**
 * @file
 * Differential fuzz test: verifier vs executor on randomized CFGs.
 *
 * A seeded, deterministic generator produces multi-function modules
 * (sequences, diamonds, TripCount and Bernoulli loops, internal and
 * external calls). Each module is instrumented with all three passes
 * at a rotating bound sweep, statically verified, and executed; the
 * property under test is the paper's placement invariant itself:
 *
 *     dynamic max_stretch_instrs  <=  static verified bound
 *
 * A violation in either direction is a real bug — in the pass, the
 * verifier, or the executor (ISSUE 4 acceptance criterion: >= 1000
 * seeds).
 */
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "compiler/builder.h"
#include "compiler/exec.h"
#include "compiler/optimizer.h"
#include "compiler/passes.h"
#include "compiler/verifier.h"

namespace tq::compiler {
namespace {

/** Structured random module: entry f0 may call f1..fn-1 (acyclic). */
class FuzzModuleBuilder
{
  public:
    explicit FuzzModuleBuilder(uint64_t seed) : rng_(seed) {}

    Module
    build()
    {
        Module m;
        m.name = "fuzz";
        const int nfuncs = 1 + static_cast<int>(rng_.below(3));
        m.functions.resize(static_cast<size_t>(nfuncs));
        // Callees first, so call targets always point at already-built
        // higher-indexed functions (keeps the call graph acyclic).
        for (int fi = nfuncs - 1; fi >= 0; --fi)
            m.functions[static_cast<size_t>(fi)] =
                build_function(fi, nfuncs);
        validate(m);
        return m;
    }

  private:
    Function
    build_function(int fi, int nfuncs)
    {
        fb_ = FunctionBuilder("f" + std::to_string(fi));
        fi_ = fi;
        nfuncs_ = nfuncs;
        int cur = fb_.add_block();
        fb_.ops(cur, Op::IAlu, 1 + static_cast<int>(rng_.below(6)));
        const int fragments = 2 + static_cast<int>(rng_.below(4));
        for (int i = 0; i < fragments; ++i)
            cur = emit_fragment(cur, 0);
        fb_.ret(cur);
        return fb_.build();
    }

    int
    emit_fragment(int from, int depth)
    {
        const uint64_t kind = rng_.below(depth >= 2 ? 3 : 4);
        switch (kind) {
          case 0: { // straight-line block, sometimes with calls
            const int b = fb_.add_block();
            fb_.jump(from, b);
            emit_ops(b, 1 + rng_.below(30));
            if (fi_ + 1 < nfuncs_ && rng_.bernoulli(0.35))
                fb_.call(b, fi_ + 1 + static_cast<int>(rng_.below(
                                    static_cast<uint64_t>(nfuncs_ - fi_ -
                                                          1))));
            if (rng_.bernoulli(0.15))
                fb_.ext_call(b, rng_.uniform(5.0, 300.0));
            return b;
          }
          case 1: { // diamond
            const int l = fb_.add_block();
            const int r = fb_.add_block();
            const int j = fb_.add_block();
            fb_.branch(from, l, r, rng_.uniform(0.1, 0.9));
            emit_ops(l, 1 + rng_.below(25));
            fb_.jump(l, j);
            emit_ops(r, 1 + rng_.below(25));
            fb_.jump(r, j);
            fb_.ops(j, Op::IAlu, 1);
            return j;
          }
          case 2: { // loop (TripCount or Bernoulli latch)
            const int header = fb_.add_block();
            fb_.jump(from, header);
            emit_ops(header, 1 + rng_.below(10));
            int tail = header;
            if (rng_.bernoulli(0.45))
                tail = emit_fragment(header, depth + 1);
            const int latch = fb_.add_block();
            fb_.jump(tail, latch);
            emit_ops(latch, 1 + rng_.below(5));
            const int exit = fb_.add_block();
            if (rng_.bernoulli(0.8)) {
                const uint64_t trips =
                    1 + rng_.below(depth == 0 ? 40 : 12);
                fb_.latch(latch, header, exit, trips);
                fb_.loop_facts(header,
                               rng_.bernoulli(0.35)
                                   ? std::optional<uint64_t>(trips)
                                   : std::nullopt,
                               rng_.bernoulli(0.5));
            } else {
                // Bernoulli latch: trip count unknowable statically.
                fb_.branch(latch, header, exit, rng_.uniform(0.3, 0.85));
                fb_.loop_facts(header, std::nullopt, rng_.bernoulli(0.5));
            }
            return exit;
          }
          default: { // call-only block
            const int b = fb_.add_block();
            fb_.jump(from, b);
            fb_.ops(b, Op::IAlu, 1 + static_cast<int>(rng_.below(4)));
            if (fi_ + 1 < nfuncs_)
                fb_.call(b, fi_ + 1 + static_cast<int>(rng_.below(
                                    static_cast<uint64_t>(nfuncs_ - fi_ -
                                                          1))));
            else
                fb_.ext_call(b, rng_.uniform(10.0, 200.0));
            return b;
          }
        }
    }

    void
    emit_ops(int b, uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t k = rng_.below(10);
            if (k < 6)
                fb_.ops(b, Op::IAlu, 1);
            else if (k < 8)
                fb_.ops(b, Op::Load, 1);
            else if (k < 9)
                fb_.ops(b, Op::Store, 1);
            else
                fb_.ops(b, Op::FMul, 1);
        }
    }

    Rng rng_;
    FunctionBuilder fb_{"f"};
    int fi_ = 0;
    int nfuncs_ = 1;
};

constexpr int kSeeds = 1024;
constexpr int kBounds[] = {100, 400, 1600};

TEST(VerifierFuzz, StaticBoundDominatesDynamicStretch)
{
    int executed = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Module base = FuzzModuleBuilder(seed).build();
        PassConfig pcfg;
        pcfg.bound = kBounds[seed % 3];

        for (int tech = 0; tech < 3; ++tech) {
            Module m = base;
            if (tech == 0)
                run_tq_pass(m, pcfg);
            else if (tech == 1)
                run_ci_pass(m, pcfg);
            else
                run_ci_cycles_pass(m, pcfg);

            const VerifyResult vr = verify_module(m);
            ASSERT_TRUE(vr.ok) << "seed " << seed << " tech " << tech
                               << " bound " << pcfg.bound << "\n"
                               << report(vr, m);
            ASSERT_NE(vr.max_stretch, kUnboundedStretch)
                << "seed " << seed << " tech " << tech;

            // Execution dominates the runtime cost: always run TQ, and
            // sample the CI variants (their placement is denser and
            // structurally simpler).
            if (tech == 0 || seed % 8 == 0) {
                ExecConfig ecfg;
                ecfg.seed = seed * 3 + static_cast<uint64_t>(tech);
                const ExecResult er = execute(m, ecfg);
                ASSERT_LE(er.max_stretch_instrs, vr.max_stretch)
                    << "placement invariant violated: seed " << seed
                    << " tech " << tech << " bound " << pcfg.bound << "\n"
                    << report(vr, m);
                ++executed;
            }
        }
    }
    // Sanity: the loop really exercised the differential property.
    EXPECT_GE(executed, kSeeds);
}

TEST(VerifierFuzz, OptimizerPreservesInvariantOverMoveSequences)
{
    // Differential fuzz for the placement optimizer: over the same
    // >= 1024 random CFGs, run the verify-guided refinement after
    // each pass and require (a) the optimizer's accept loop agreed
    // end to end, (b) the proven bound never loosened, (c) probes
    // never increased, and (d) the executor still respects the final
    // proven bound — i.e. every greedy move sequence the optimizer
    // chose is sound, not just the ones the unit tests craft.
    int executed = 0;
    int changed = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Module base = FuzzModuleBuilder(seed).build();
        PassConfig pcfg;
        pcfg.bound = kBounds[seed % 3];

        for (int tech = 0; tech < 3; ++tech) {
            // Execution dominates runtime, as above: TQ always, CI
            // variants sampled.
            if (tech != 0 && seed % 8 != 0)
                continue;
            Module m = base;
            if (tech == 0)
                run_tq_pass(m, pcfg);
            else if (tech == 1)
                run_ci_pass(m, pcfg);
            else
                run_ci_cycles_pass(m, pcfg);
            const int probes_before = m.probe_count();

            const OptimizerResult opt = optimize_placement(m);
            ASSERT_TRUE(opt.ok) << "seed " << seed << " tech " << tech;
            ASSERT_LE(opt.final_bound, opt.initial_bound)
                << "seed " << seed << " tech " << tech;
            ASSERT_LE(opt.final_probes, probes_before)
                << "seed " << seed << " tech " << tech;

            const VerifyResult vr = verify_module(m);
            ASSERT_TRUE(vr.ok) << "seed " << seed << " tech " << tech
                               << "\n"
                               << report(vr, m);
            ASSERT_EQ(vr.max_stretch, opt.final_bound)
                << "seed " << seed << " tech " << tech;

            ExecConfig ecfg;
            ecfg.seed = seed * 5 + static_cast<uint64_t>(tech);
            const ExecResult er = execute(m, ecfg);
            ASSERT_LE(er.max_stretch_instrs, vr.max_stretch)
                << "optimized placement invariant violated: seed "
                << seed << " tech " << tech << " bound " << pcfg.bound
                << "\n"
                << report(vr, m);
            ++executed;
            changed += opt.changed;
        }
    }
    EXPECT_GE(executed, kSeeds);
    // The optimizer must actually be exercising moves, not vacuously
    // passing on untouched modules.
    EXPECT_GE(changed, kSeeds / 8);
}

TEST(VerifierFuzz, IncrementalRefreshMatchesFullVerifySampled)
{
    // ModuleVerifier::refresh is the optimizer's inner loop; sample
    // seeds and check it against a from-scratch verify_module after
    // random probe deletions.
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        Module m = FuzzModuleBuilder(seed * 131).build();
        PassConfig pcfg;
        pcfg.bound = kBounds[seed % 3];
        run_tq_pass(m, pcfg);

        ModuleVerifier mv(m);
        Rng rng(seed);
        for (int edit = 0; edit < 4; ++edit) {
            // Delete a random probe, if any remain.
            std::vector<std::array<int, 3>> sites;
            for (size_t fi = 0; fi < m.functions.size(); ++fi)
                for (size_t bi = 0; bi < m.functions[fi].blocks.size();
                     ++bi) {
                    const auto &ins =
                        m.functions[fi].blocks[bi].instrs;
                    for (size_t ii = 0; ii < ins.size(); ++ii)
                        if (ins[ii].is_probe())
                            sites.push_back({static_cast<int>(fi),
                                             static_cast<int>(bi),
                                             static_cast<int>(ii)});
                }
            if (sites.empty())
                break;
            const auto &s =
                sites[static_cast<size_t>(rng.below(sites.size()))];
            auto &instrs = m.functions[static_cast<size_t>(s[0])]
                               .blocks[static_cast<size_t>(s[1])]
                               .instrs;
            instrs.erase(instrs.begin() + s[2]);

            const VerifyResult &inc = mv.refresh(s[0]);
            const VerifyResult full = verify_module(m);
            ASSERT_EQ(inc.ok, full.ok) << "seed " << seed;
            ASSERT_EQ(inc.max_stretch, full.max_stretch)
                << "seed " << seed << " edit " << edit;
            ASSERT_EQ(inc.diags.size(), full.diags.size())
                << "seed " << seed;
            for (size_t fi = 0; fi < full.functions.size(); ++fi) {
                ASSERT_EQ(inc.functions[fi].internal,
                          full.functions[fi].internal)
                    << "seed " << seed << " fn " << fi;
                ASSERT_EQ(inc.functions[fi].entry_gap,
                          full.functions[fi].entry_gap)
                    << "seed " << seed << " fn " << fi;
                ASSERT_EQ(inc.functions[fi].through,
                          full.functions[fi].through)
                    << "seed " << seed << " fn " << fi;
            }
        }
    }
}

TEST(VerifierFuzz, VerifierDeterministic)
{
    const Module base = FuzzModuleBuilder(42).build();
    Module m = base;
    run_tq_pass(m, PassConfig{});
    const VerifyResult a = verify_module(m);
    const VerifyResult b = verify_module(m);
    EXPECT_EQ(a.max_stretch, b.max_stretch);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.diags.size(), b.diags.size());
}

} // namespace
} // namespace tq::compiler
