/**
 * @file
 * Property-based tests of the instrumentation passes: structured random
 * programs (random nesting of sequences, branches and loops) are
 * instrumented and executed, and the pass invariants are checked across
 * many seeds:
 *
 *  - TQ: the longest observed probe-free stretch is bounded (within the
 *    loop-guard rounding slack documented in passes.h).
 *  - TQ: yield timing MAE stays well under the quantum.
 *  - CI: total counted instructions equal executed real instructions
 *    (counter correctness, the property CI pays so dearly for).
 *  - Instrumentation never changes the real work executed.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compiler/builder.h"
#include "compiler/exec.h"
#include "compiler/passes.h"
#include "compiler/verifier.h"

namespace tq::compiler {
namespace {

/**
 * Generate a structured random function: a sequence of fragments, each
 * a straight block, a diamond, or a loop (possibly nested). Always
 * terminates because loops use TripCount latches.
 */
class RandomProgramBuilder
{
  public:
    explicit RandomProgramBuilder(uint64_t seed) : rng_(seed), fb_("rand")
    {
    }

    Module
    build()
    {
        int cur = fb_.add_block();
        fb_.ops(cur, Op::IAlu, 2);
        const int fragments = 3 + static_cast<int>(rng_.below(5));
        for (int i = 0; i < fragments; ++i)
            cur = emit_fragment(cur, /*depth=*/0);
        fb_.ret(cur);
        Module m;
        m.name = "rand";
        m.functions.push_back(fb_.build());
        validate(m);
        return m;
    }

  private:
    /** Emit one fragment following block @p from; returns the new tail. */
    int
    emit_fragment(int from, int depth)
    {
        const uint64_t kind = rng_.below(depth >= 2 ? 2 : 3);
        switch (kind) {
          case 0: { // straight-line block
            const int b = fb_.add_block();
            fb_.jump(from, b);
            emit_ops(b, 1 + rng_.below(40));
            return b;
          }
          case 1: { // diamond
            const int l = fb_.add_block();
            const int r = fb_.add_block();
            const int j = fb_.add_block();
            fb_.branch(from, l, r, rng_.uniform(0.1, 0.9));
            emit_ops(l, 1 + rng_.below(30));
            fb_.jump(l, j);
            emit_ops(r, 1 + rng_.below(30));
            fb_.jump(r, j);
            fb_.ops(j, Op::IAlu, 1);
            return j;
          }
          default: { // loop, body possibly containing a nested fragment
            const int header = fb_.add_block();
            fb_.jump(from, header);
            emit_ops(header, 1 + rng_.below(12));
            int tail = header;
            if (rng_.bernoulli(0.5))
                tail = emit_fragment(header, depth + 1);
            const int latch = fb_.add_block();
            if (tail != latch)
                fb_.jump(tail, latch);
            emit_ops(latch, 1 + rng_.below(6));
            const int exit = fb_.add_block();
            const uint64_t trips = 1 + rng_.below(300);
            fb_.latch(latch, header, exit, trips);
            const bool known = rng_.bernoulli(0.3);
            fb_.loop_facts(header,
                           known ? std::optional<uint64_t>(trips)
                                 : std::nullopt,
                           rng_.bernoulli(0.5));
            return exit;
          }
        }
    }

    void
    emit_ops(int b, uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t k = rng_.below(10);
            if (k < 6)
                fb_.ops(b, Op::IAlu, 1);
            else if (k < 8)
                fb_.ops(b, Op::Load, 1);
            else if (k < 9)
                fb_.ops(b, Op::Store, 1);
            else
                fb_.ops(b, Op::FMul, 1);
        }
    }

    Rng rng_;
    FunctionBuilder fb_;
};

class RandomPrograms : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomPrograms, TqPassBoundsStretches)
{
    Module m = RandomProgramBuilder(GetParam()).build();
    PassConfig pcfg;
    pcfg.bound = 150;
    run_tq_pass(m, pcfg);

    ExecConfig ecfg;
    ecfg.quantum_cycles = 2000;
    ecfg.seed = GetParam() + 1;
    const ExecResult r = execute(m, ecfg);
    // Loop-guard rounding compounds with nesting, so a fixed multiple of
    // the bound is not a real guarantee. The verifier computes the exact
    // worst case for this placement; execution must stay under it.
    const VerifyResult vr = verify_module(m);
    ASSERT_TRUE(vr.ok) << "seed " << GetParam() << "\n" << report(vr, m);
    ASSERT_NE(vr.max_stretch, kUnboundedStretch) << "seed " << GetParam();
    EXPECT_LE(r.max_stretch_instrs, vr.max_stretch)
        << "seed " << GetParam();
}

TEST_P(RandomPrograms, TqYieldTimingAccurate)
{
    Module m = RandomProgramBuilder(GetParam()).build();
    PassConfig pcfg;
    pcfg.bound = 150;
    run_tq_pass(m, pcfg);
    ExecConfig ecfg;
    ecfg.quantum_cycles = 2000;
    ecfg.seed = GetParam() + 2;
    const ExecResult r = execute(m, ecfg);
    if (r.yields < 20)
        GTEST_SKIP() << "program too short to yield meaningfully";
    EXPECT_LT(r.yield_mae_cycles, 0.5 * ecfg.quantum_cycles)
        << "seed " << GetParam();
}

TEST_P(RandomPrograms, CiCountsMatchExecutedInstructions)
{
    Module base = RandomProgramBuilder(GetParam()).build();

    // Execute uninstrumented to count real instructions (same seed =>
    // identical branch outcomes and load draws).
    ExecConfig ecfg;
    ecfg.quantum_cycles = 1e18; // never yield: compare pure counts
    ecfg.seed = GetParam() + 3;
    const ExecResult plain = execute(base, ecfg);

    Module ci = base;
    PassConfig pcfg;
    run_ci_pass(ci, pcfg);
    const ExecResult inst = execute(ci, ecfg);

    EXPECT_EQ(inst.real_instrs, plain.real_instrs)
        << "instrumentation must not change the real work";

    // Sum of executed CI increments == executed real instructions: the
    // counter-correctness property (paper section 3.1). Recover it via
    // a dedicated run with a tiny quantum: every probe fires a check.
    // Instead verify statically: per-block increments sum to per-block
    // real instruction counts.
    for (const auto &fn : ci.functions) {
        uint64_t counted = 0;
        uint64_t real = 0;
        for (const auto &blk : fn.blocks) {
            real += static_cast<uint64_t>(blk.real_instr_count());
            for (const auto &ins : blk.instrs)
                if (ins.probe == ProbeKind::CiCounter)
                    counted += ins.ci_increment;
        }
        EXPECT_EQ(counted, real) << fn.name;
    }
}

TEST_P(RandomPrograms, ExecutionDeterministicPerSeed)
{
    Module m = RandomProgramBuilder(GetParam()).build();
    run_tq_pass(m, PassConfig{});
    ExecConfig ecfg;
    ecfg.seed = GetParam();
    const ExecResult a = execute(m, ecfg);
    const ExecResult b = execute(m, ecfg);
    EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.real_instrs, b.real_instrs);
    EXPECT_EQ(a.yields, b.yields);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
} // namespace tq::compiler
