/**
 * @file
 * Tests for the real baseline runtimes: the Shinjuku-style centralized
 * preemptive scheduler (quanta granted from a global queue, jobs migrate
 * between workers) and the Caladan-style FCFS work-stealing runtime.
 */
#include <gtest/gtest.h>

#include <map>

#include "baselines/centralized.h"
#include "baselines/stealing.h"
#include "workloads/spin.h"

namespace tq::baselines {
namespace {

runtime::Handler
spin_handler()
{
    return [](const runtime::Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.id;
    };
}

runtime::Request
make_spin_request(uint64_t id, double ns, int job_class = 0)
{
    runtime::Request req;
    req.id = id;
    req.gen_cycles = rdcycles();
    req.job_class = job_class;
    req.payload = static_cast<uint64_t>(ns);
    return req;
}

template <typename Server>
std::vector<runtime::Response>
run_requests(Server &server, const std::vector<runtime::Request> &reqs,
             double timeout_sec = 120.0)
{
    for (const auto &r : reqs)
        while (!server.submit(r))
            std::this_thread::yield();
    std::vector<runtime::Response> responses;
    const Cycles deadline = rdcycles() + ns_to_cycles(timeout_sec * 1e9);
    while (responses.size() < reqs.size() && rdcycles() < deadline) {
        server.drain(responses);
        std::this_thread::yield();
    }
    return responses;
}

TEST(Centralized, EndToEndAllRequestsAnswered)
{
    CentralizedConfig cfg;
    cfg.num_workers = 2;
    CentralizedRuntime rt(cfg, spin_handler());
    rt.start();
    std::vector<runtime::Request> reqs;
    for (uint64_t i = 0; i < 200; ++i)
        reqs.push_back(make_spin_request(i, 2000 + (i % 4) * 1000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    std::map<uint64_t, int> seen;
    for (const auto &r : responses) {
        ++seen[r.id];
        EXPECT_EQ(r.result, r.id);
    }
    EXPECT_EQ(seen.size(), reqs.size());
    rt.stop();
}

TEST(Centralized, PreemptsLongJobsSoShortsOvertake)
{
    CentralizedConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 5.0;
    CentralizedRuntime rt(cfg, spin_handler());
    rt.start();
    std::vector<runtime::Request> reqs;
    reqs.push_back(make_spin_request(999, 10e6, 1)); // 10ms
    for (uint64_t i = 0; i < 10; ++i)
        reqs.push_back(make_spin_request(i, 20e3, 0));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    Cycles long_done = 0;
    Cycles last_short = 0;
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            last_short = std::max(last_short, r.done_cycles);
    }
    EXPECT_LT(last_short, long_done)
        << "single-queue PS must let shorts pass the 10ms job";
    // The 10ms job at 5us quanta needs ~2000 grants.
    EXPECT_GT(rt.grants(), 500u);
    rt.stop();
}

TEST(Centralized, JobsMigrateAcrossWorkers)
{
    // With 2 workers and one long preemptable job plus a stream of
    // shorts, the long job's quanta land on both workers over time. We
    // verify indirectly: both workers complete jobs, and the system
    // stays correct while coroutines hop threads (the property that
    // matters for centralized scheduling's cache behaviour).
    CentralizedConfig cfg;
    cfg.num_workers = 2;
    cfg.quantum_us = 5.0;
    CentralizedRuntime rt(cfg, spin_handler());
    rt.start();
    std::vector<runtime::Request> reqs;
    for (uint64_t i = 0; i < 6; ++i)
        reqs.push_back(make_spin_request(i, 2e6, 0)); // 6 x 2ms
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    int per_worker[2] = {0, 0};
    for (const auto &r : responses)
        ++per_worker[r.worker];
    EXPECT_GT(per_worker[0], 0);
    EXPECT_GT(per_worker[1], 0);
    rt.stop();
}

TEST(Stealing, EndToEndAllRequestsAnswered)
{
    StealingConfig cfg;
    cfg.num_workers = 2;
    StealingRuntime rt(cfg, spin_handler());
    rt.start();
    std::vector<runtime::Request> reqs;
    for (uint64_t i = 0; i < 200; ++i)
        reqs.push_back(make_spin_request(i, 2000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    rt.stop();
}

TEST(Stealing, IdleWorkerStealsFromLoadedQueue)
{
    // All requests hash-steered wherever; with 4 workers and a burst of
    // jobs, steals must happen (idle workers raid busy queues).
    StealingConfig cfg;
    cfg.num_workers = 4;
    cfg.steal_attempts = 3;
    StealingRuntime rt(cfg, spin_handler());
    rt.start();
    std::vector<runtime::Request> reqs;
    for (uint64_t i = 0; i < 400; ++i)
        reqs.push_back(make_spin_request(i, 5000));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    EXPECT_GT(rt.steals(), 0u);
    rt.stop();
}

TEST(Stealing, FcfsNeverPreempts)
{
    // A long job followed by shorts hashed to the same queue: with one
    // worker, the long job must finish before any short (pure FCFS).
    StealingConfig cfg;
    cfg.num_workers = 1;
    StealingRuntime rt(cfg, spin_handler());
    rt.start();
    std::vector<runtime::Request> reqs;
    reqs.push_back(make_spin_request(999, 3e6, 1));
    for (uint64_t i = 0; i < 5; ++i)
        reqs.push_back(make_spin_request(i, 10e3, 0));
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());
    Cycles long_done = 0;
    Cycles first_short = ~Cycles{0};
    for (const auto &r : responses) {
        if (r.id == 999)
            long_done = r.done_cycles;
        else
            first_short = std::min(first_short, r.done_cycles);
    }
    EXPECT_LT(long_done, first_short);
    rt.stop();
}

} // namespace
} // namespace tq::baselines
