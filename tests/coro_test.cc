/**
 * @file
 * Tests for the stackful coroutine library: lifecycle, yielding from deep
 * call frames, reuse via reset(), interleaving many coroutines, stack
 * pooling, and cross-thread handoff of suspended coroutines.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coro/coroutine.h"
#include "coro/stack.h"

namespace tq {
namespace {

TEST(Stack, AllocatesUsableRegion)
{
    Stack s(16 * 1024);
    EXPECT_GE(s.size(), 16u * 1024);
    // Touch the whole usable region.
    auto *p = static_cast<volatile char *>(s.base());
    for (size_t i = 0; i < s.size(); i += 512)
        p[i] = static_cast<char>(i);
}

TEST(Stack, MoveTransfersOwnership)
{
    Stack a(8 * 1024);
    void *base = a.base();
    Stack b(std::move(a));
    EXPECT_EQ(b.base(), base);
    EXPECT_EQ(a.base(), nullptr);
    Stack c(8 * 1024);
    c = std::move(b);
    EXPECT_EQ(c.base(), base);
}

TEST(StackPool, ReusesStacks)
{
    StackPool pool(8 * 1024);
    Stack s1 = pool.take();
    void *base = s1.base();
    pool.put(std::move(s1));
    EXPECT_EQ(pool.cached(), 1u);
    Stack s2 = pool.take();
    EXPECT_EQ(s2.base(), base) << "pool should hand back the cached stack";
    EXPECT_EQ(pool.cached(), 0u);
}

TEST(Coroutine, RunsToCompletionWithoutYield)
{
    int state = 0;
    Coroutine co([&](Coroutine &) { state = 42; });
    EXPECT_FALSE(co.done());
    co.resume();
    EXPECT_TRUE(co.done());
    EXPECT_EQ(state, 42);
}

TEST(Coroutine, YieldSuspendsAndResumeContinues)
{
    std::vector<int> trace;
    Coroutine co([&](Coroutine &self) {
        trace.push_back(1);
        self.yield();
        trace.push_back(3);
        self.yield();
        trace.push_back(5);
    });
    co.resume();
    trace.push_back(2);
    co.resume();
    trace.push_back(4);
    EXPECT_FALSE(co.done());
    co.resume();
    EXPECT_TRUE(co.done());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

/// Yielding must work from arbitrarily deep call frames — the property
/// forced multitasking depends on (probes live inside application code).
void
deep_yield(Coroutine &self, int depth, std::vector<int> &trace)
{
    if (depth == 0) {
        trace.push_back(depth);
        self.yield();
        trace.push_back(-depth - 1);
        return;
    }
    trace.push_back(depth);
    deep_yield(self, depth - 1, trace);
    trace.push_back(-depth - 1);
}

TEST(Coroutine, YieldsFromDeepCallStack)
{
    std::vector<int> trace;
    Coroutine co([&](Coroutine &self) { deep_yield(self, 20, trace); });
    co.resume();
    EXPECT_EQ(trace.size(), 21u); // suspended at depth 0
    EXPECT_EQ(trace.back(), 0);
    co.resume();
    EXPECT_TRUE(co.done());
    EXPECT_EQ(trace.size(), 42u);
    EXPECT_EQ(trace.back(), -21);
}

TEST(Coroutine, LocalVariablesSurviveYield)
{
    std::string out;
    Coroutine co([&](Coroutine &self) {
        std::string local = "abc";
        uint64_t x = 123456789;
        self.yield();
        local += "def";
        x *= 2;
        self.yield();
        out = local + std::to_string(x);
    });
    co.resume();
    co.resume();
    co.resume();
    EXPECT_EQ(out, "abcdef246913578");
}

TEST(Coroutine, CurrentTracksRunningCoroutine)
{
    EXPECT_EQ(Coroutine::current(), nullptr);
    Coroutine *inner_seen = nullptr;
    Coroutine co([&](Coroutine &self) {
        inner_seen = Coroutine::current();
        self.yield();
        EXPECT_EQ(Coroutine::current(), &self);
    });
    co.resume();
    EXPECT_EQ(inner_seen, &co);
    EXPECT_EQ(Coroutine::current(), nullptr);
    co.resume();
    EXPECT_EQ(Coroutine::current(), nullptr);
}

TEST(Coroutine, NestedCoroutinesRestoreCurrent)
{
    Coroutine inner([&](Coroutine &self) {
        EXPECT_EQ(Coroutine::current(), &self);
        self.yield();
    });
    Coroutine outer([&](Coroutine &self) {
        EXPECT_EQ(Coroutine::current(), &self);
        inner.resume(); // runs inner on top of outer
        EXPECT_EQ(Coroutine::current(), &self) << "current must be restored";
        self.yield();
    });
    outer.resume();
    EXPECT_EQ(Coroutine::current(), nullptr);
    outer.resume();
    EXPECT_TRUE(outer.done());
    inner.resume();
    EXPECT_TRUE(inner.done());
}

TEST(Coroutine, ResetReusesStackForNewBody)
{
    int runs = 0;
    Coroutine co([&](Coroutine &) { ++runs; });
    co.resume();
    EXPECT_TRUE(co.done());
    for (int i = 0; i < 100; ++i) {
        co.reset([&](Coroutine &self) {
            ++runs;
            self.yield();
            ++runs;
        });
        EXPECT_FALSE(co.done());
        co.resume();
        co.resume();
        EXPECT_TRUE(co.done());
    }
    EXPECT_EQ(runs, 1 + 200);
}

TEST(Coroutine, ManyCoroutinesInterleaveRoundRobin)
{
    // Emulates a worker's PS queue: N task coroutines resumed in turn.
    constexpr int kTasks = 8;
    constexpr int kSteps = 50;
    std::vector<int> progress(kTasks, 0);
    std::vector<std::unique_ptr<Coroutine>> tasks;
    for (int t = 0; t < kTasks; ++t) {
        tasks.push_back(std::make_unique<Coroutine>(
            [&progress, t](Coroutine &self) {
                for (int s = 0; s < kSteps; ++s) {
                    ++progress[t];
                    self.yield();
                }
            }));
    }
    int active = kTasks;
    int rounds = 0;
    while (active > 0) {
        for (auto &task : tasks) {
            if (!task->done())
                task->resume();
        }
        active = 0;
        for (auto &task : tasks)
            active += !task->done();
        ++rounds;
        ASSERT_LT(rounds, kSteps + 3);
        // Round-robin resumption => all runnable tasks have equal progress.
        for (int t = 1; t < kTasks; ++t)
            ASSERT_EQ(progress[t], progress[0]);
    }
    for (int t = 0; t < kTasks; ++t)
        EXPECT_EQ(progress[t], kSteps);
}

TEST(Coroutine, SuspendedCoroutineCanMigrateThreads)
{
    // Two-level scheduling keeps a job on one core, but the library itself
    // must allow a suspended context to be resumed elsewhere (used by the
    // work-stealing baseline).
    Coroutine co([](Coroutine &self) {
        self.yield();
        self.yield();
    });
    co.resume(); // started on this thread
    std::thread other([&] {
        co.resume();
        EXPECT_FALSE(co.done());
    });
    other.join();
    co.resume();
    EXPECT_TRUE(co.done());
}

TEST(Coroutine, AbandonedSuspendedCoroutineIsSafeToDestroy)
{
    auto co = std::make_unique<Coroutine>([](Coroutine &self) {
        for (;;)
            self.yield();
    });
    co->resume();
    EXPECT_FALSE(co->done());
    co.reset(); // destroy while suspended; must not crash or leak stack
}

TEST(Coroutine, FloatingPointStateSurvivesSwitches)
{
    double result = 0;
    Coroutine co([&](Coroutine &self) {
        double acc = 1.0;
        for (int i = 1; i <= 10; ++i) {
            acc = acc * 1.5 + static_cast<double>(i) / 3.0;
            self.yield();
        }
        result = acc;
    });
    // Interleave FP work on the main context to perturb FP registers.
    double main_acc = 2.0;
    while (!co.done()) {
        co.resume();
        main_acc = main_acc * 0.99 + 0.5;
    }
    // Reference computed without interleaving.
    double ref = 1.0;
    for (int i = 1; i <= 10; ++i)
        ref = ref * 1.5 + static_cast<double>(i) / 3.0;
    EXPECT_DOUBLE_EQ(result, ref);
    EXPECT_GT(main_acc, 0.0);
}

} // namespace
} // namespace tq
