/**
 * @file
 * Tests for the cluster simulators: conservation laws (stable throughput
 * equals offered load), saturation detection, and the qualitative
 * orderings the paper's figures rest on — PS beats FCFS for short jobs
 * under bimodal load, JSQ beats random, small quanta help when overhead
 * is low and hurt when it is high, and centralized dispatchers stop
 * scaling as quanta shrink.
 */
#include <gtest/gtest.h>

#include <memory>

#include "common/dist.h"
#include "sim/caladan.h"
#include "sim/central.h"
#include "sim/sweep.h"
#include "sim/two_level.h"

namespace tq::sim {
namespace {

/** Short test runs: 30ms of simulated arrivals. */
TwoLevelConfig
tl_config()
{
    TwoLevelConfig cfg;
    cfg.duration = ms(30);
    cfg.seed = 42;
    return cfg;
}

TEST(TwoLevel, StableLoadCompletesEverything)
{
    FixedDist dist(us(1));
    TwoLevelConfig cfg = tl_config();
    // 16 cores, 1us jobs => capacity ~16 req/us = 16 Mrps; offer 4.
    const SimResult r = run_two_level(cfg, dist, mrps(4));
    EXPECT_FALSE(r.saturated);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_GT(r.completed, 100'000u);
    EXPECT_NEAR(r.throughput, mrps(4), mrps(0.2));
}

TEST(TwoLevel, OverloadSaturates)
{
    FixedDist dist(us(10));
    TwoLevelConfig cfg = tl_config();
    cfg.duration = ms(20);
    // Capacity = 1.6 Mrps; offer 3.
    const SimResult r = run_two_level(cfg, dist, mrps(3));
    EXPECT_TRUE(r.saturated);
}

TEST(TwoLevel, LowLoadSlowdownNearOne)
{
    FixedDist dist(us(2));
    TwoLevelConfig cfg = tl_config();
    cfg.overheads = Overheads::ideal();
    const SimResult r = run_two_level(cfg, dist, mrps(0.5));
    EXPECT_FALSE(r.saturated);
    EXPECT_LT(r.overall_mean_slowdown, 1.3);
    EXPECT_LT(r.overall_p999_slowdown, 2.5);
}

TEST(TwoLevel, SojournAtLeastDemand)
{
    auto dist = workload_table::high_bimodal();
    TwoLevelConfig cfg = tl_config();
    const SimResult r = run_two_level(cfg, *dist, mrps(0.1));
    for (const auto &c : r.classes) {
        EXPECT_GT(c.completed, 0u);
        EXPECT_GE(c.mean_slowdown, 1.0) << c.name;
    }
}

TEST(TwoLevel, PsProtectsShortJobsFromLongOnes)
{
    // Extreme bimodal at medium load: FCFS blocks 0.5us jobs behind
    // 500us jobs; PS with 2us quanta must keep their tail small.
    auto dist = workload_table::extreme_bimodal();
    TwoLevelConfig ps = tl_config();
    TwoLevelConfig fcfs = tl_config();
    fcfs.core_policy = CorePolicy::Fcfs;
    const double rate = mrps(2.0);
    const SimResult r_ps = run_two_level(ps, *dist, rate);
    const SimResult r_fcfs = run_two_level(fcfs, *dist, rate);
    ASSERT_FALSE(r_ps.saturated);
    ASSERT_FALSE(r_fcfs.saturated);
    const SimNanos ps_short = r_ps.by_class("Short").p999_sojourn;
    const SimNanos fcfs_short = r_fcfs.by_class("Short").p999_sojourn;
    EXPECT_LT(ps_short * 5, fcfs_short)
        << "PS=" << to_us(ps_short) << "us FCFS=" << to_us(fcfs_short)
        << "us";
    // FCFS prioritizes long jobs (no preemption): their latency must be
    // no worse than under PS up to noise — the paper calls this out for
    // Caladan's FCFS at medium load.
    EXPECT_LT(r_fcfs.by_class("Long").p999_sojourn,
              1.15 * r_ps.by_class("Long").p999_sojourn);
}

TEST(TwoLevel, LasFavorsShortJobsEvenMoreThanPs)
{
    // LAS always serves the job with the least attained service, so
    // fresh short jobs preempt everything: their tail must be at least
    // as good as PS's, while long jobs fare no better than under PS.
    auto dist = workload_table::extreme_bimodal();
    TwoLevelConfig ps = tl_config();
    TwoLevelConfig las = tl_config();
    las.core_policy = CorePolicy::Las;
    const double rate = mrps(3.5);
    const SimResult r_ps = run_two_level(ps, *dist, rate);
    const SimResult r_las = run_two_level(las, *dist, rate);
    ASSERT_FALSE(r_ps.saturated);
    ASSERT_FALSE(r_las.saturated);
    EXPECT_LE(r_las.by_class("Short").p999_sojourn,
              r_ps.by_class("Short").p999_sojourn * 1.05);
    EXPECT_GE(r_las.by_class("Long").p999_sojourn,
              r_ps.by_class("Long").p999_sojourn * 0.95);
}

TEST(TwoLevel, JsqBeatsRandomLoadBalancing)
{
    auto dist = workload_table::exp1();
    TwoLevelConfig jsq = tl_config();
    TwoLevelConfig rnd = tl_config();
    rnd.lb = LbPolicy::Random;
    const double rate = mrps(12); // 75% utilization of 16 cores
    const SimResult r_jsq = run_two_level(jsq, *dist, rate);
    const SimResult r_rnd = run_two_level(rnd, *dist, rate);
    ASSERT_FALSE(r_jsq.saturated);
    ASSERT_FALSE(r_rnd.saturated);
    EXPECT_LT(r_jsq.overall_p999_slowdown, r_rnd.overall_p999_slowdown);
}

TEST(TwoLevel, PowerOfTwoBetweenJsqAndRandom)
{
    auto dist = workload_table::exp1();
    TwoLevelConfig cfg = tl_config();
    const double rate = mrps(12);
    cfg.lb = LbPolicy::JsqRandom;
    const double jsq = run_two_level(cfg, *dist, rate).overall_p999_slowdown;
    cfg.lb = LbPolicy::PowerOfTwo;
    const double po2 = run_two_level(cfg, *dist, rate).overall_p999_slowdown;
    cfg.lb = LbPolicy::Random;
    const double rnd = run_two_level(cfg, *dist, rate).overall_p999_slowdown;
    EXPECT_LT(jsq, po2 * 1.05);
    EXPECT_LT(po2, rnd);
}

TEST(TwoLevel, SmallerQuantaReduceShortJobTail)
{
    auto dist = workload_table::extreme_bimodal();
    TwoLevelConfig cfg = tl_config();
    cfg.overheads = Overheads::ideal();
    const double rate = mrps(3.0);
    cfg.quantum = us(0.5);
    const SimResult small = run_two_level(cfg, *dist, rate);
    cfg.quantum = us(10);
    const SimResult large = run_two_level(cfg, *dist, rate);
    ASSERT_FALSE(small.saturated);
    ASSERT_FALSE(large.saturated);
    EXPECT_LT(small.by_class("Short").p999_sojourn,
              large.by_class("Short").p999_sojourn);
}

TEST(TwoLevel, SwitchOverheadCostsCapacity)
{
    // With 1us of overhead per 1us quantum, half of every core is wasted:
    // a load that is fine at low overhead must saturate.
    auto dist = workload_table::exp1();
    TwoLevelConfig cfg = tl_config();
    cfg.quantum = us(1);
    cfg.overheads.switch_overhead = us(1);
    const SimResult heavy = run_two_level(cfg, *dist, mrps(12));
    EXPECT_TRUE(heavy.saturated);
    cfg.overheads.switch_overhead = 40;
    const SimResult light = run_two_level(cfg, *dist, mrps(12));
    EXPECT_FALSE(light.saturated);
}

TEST(TwoLevel, ProbeOverheadInflatesService)
{
    FixedDist dist(us(1));
    TwoLevelConfig cfg = tl_config();
    cfg.probe_overhead_frac = 0.6; // TQ-IC style probing cost
    // Demand inflates to 1.6us/job: capacity 10 Mrps; 12 must saturate.
    const SimResult r = run_two_level(cfg, dist, mrps(12));
    EXPECT_TRUE(r.saturated);
}

TEST(TwoLevel, PerClassQuantumOverrideApplies)
{
    auto dist = workload_table::rocksdb(0.005);
    TwoLevelConfig cfg = tl_config();
    cfg.class_quantum = {us(1), us(3)}; // TQ-TIMING emulation
    const SimResult r = run_two_level(cfg, *dist, mrps(1));
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.by_class("GET").completed, 0u);
}

TEST(TwoLevel, DeficitCreditLengthensSlicesWithinAClass)
{
    // Exponential service at a 0.5us class quantum: jobs that finish
    // inside the budget bank granted-minus-used credit, which later
    // (longer) jobs of the same class spend as bigger slices. The mean
    // granted slice — class_effective_quantum — must therefore grow
    // when the deficit mirror is armed, without changing completions.
    auto dist = workload_table::exp1();
    TwoLevelConfig cfg = tl_config();
    cfg.class_quantum = {us(0.5)};
    const double rate = mrps(8);

    const SimResult off = run_two_level(cfg, *dist, rate);
    cfg.deficit_clamp = us(4);
    const SimResult on = run_two_level(cfg, *dist, rate);
    ASSERT_FALSE(off.saturated);
    ASSERT_FALSE(on.saturated);
    ASSERT_EQ(off.class_effective_quantum.size(), 1u);
    ASSERT_EQ(on.class_effective_quantum.size(), 1u);
    EXPECT_GT(on.class_effective_quantum[0],
              off.class_effective_quantum[0])
        << "deficit credit should lengthen the mean granted slice";
    // Both runs drain the same arrival sequence (same seed, no drops).
    EXPECT_EQ(on.completed, off.completed);
    EXPECT_EQ(off.starvation_promotions, 0u);
    EXPECT_EQ(on.starvation_promotions, 0u) << "no second class to skip";
}

TEST(TwoLevel, StarvationGuardPromotesStarvedClassUnderLas)
{
    // LAS starves attained long jobs behind fresh shorts. With the
    // guard armed the mirror must record forced promotions; with the
    // threshold at 0 (disabled, the byte-identical default) it must
    // record none.
    auto dist = workload_table::extreme_bimodal();
    TwoLevelConfig cfg = tl_config();
    cfg.core_policy = CorePolicy::Las;
    cfg.class_quantum = {us(2), us(2)};
    // High enough load that runqs stay occupied: consecutive short
    // grants can then accumulate against a queued long.
    const double rate = mrps(4.5);

    const SimResult off = run_two_level(cfg, *dist, rate);
    EXPECT_EQ(off.starvation_promotions, 0u);
    cfg.starvation_promote_after = 4;
    const SimResult on = run_two_level(cfg, *dist, rate);
    ASSERT_FALSE(on.saturated);
    EXPECT_GT(on.starvation_promotions, 0u)
        << "no promotions despite LAS flood and threshold 4";
    EXPECT_GT(on.by_class("Long").completed, 0u);
}

TEST(TwoLevel, PerClassEffectiveQuantaTrackConfiguredOrdering)
{
    // {2us, 0.5us} quanta on the high bimodal: shorts (1us service)
    // complete inside one 2us budget, longs are sliced at 0.5us, so
    // the recorded mean slices must preserve the configured ordering.
    auto dist = workload_table::high_bimodal();
    TwoLevelConfig cfg = tl_config();
    cfg.class_quantum = {us(2), us(0.5)};
    cfg.deficit_clamp = us(8);
    cfg.starvation_promote_after = 128;
    const SimResult r = run_two_level(cfg, *dist, mrps(0.3));
    ASSERT_FALSE(r.saturated);
    ASSERT_EQ(r.class_effective_quantum.size(), 2u);
    EXPECT_GT(r.class_effective_quantum[0], 0.0);
    EXPECT_GT(r.class_effective_quantum[1], 0.0);
    EXPECT_GT(r.class_effective_quantum[0], r.class_effective_quantum[1]);
}

TEST(TwoLevel, DeterministicAcrossRuns)
{
    auto dist = workload_table::high_bimodal();
    TwoLevelConfig cfg = tl_config();
    const SimResult a = run_two_level(cfg, *dist, mrps(0.2));
    const SimResult b = run_two_level(cfg, *dist, mrps(0.2));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.overall_p999_slowdown, b.overall_p999_slowdown);
}

TEST(TwoLevel, MmppArrivalsAreDeterministicAndTraced)
{
    FixedDist dist(us(1));
    TwoLevelConfig cfg = tl_config();
    cfg.duration = ms(5);
    cfg.arrival.kind = ArrivalSpec::Kind::OnOff;
    cfg.arrival.onoff.on_mult = 4.0;
    cfg.arrival.onoff.off_mult = 0.25;

    std::vector<double> trace_a, trace_b;
    cfg.arrival_trace = &trace_a;
    const SimResult a = run_two_level(cfg, dist, mrps(0.5));
    cfg.arrival_trace = &trace_b;
    const SimResult b = run_two_level(cfg, dist, mrps(0.5));

    EXPECT_FALSE(a.saturated);
    EXPECT_EQ(a.completed, b.completed);
    ASSERT_GT(trace_a.size(), 100u);
    ASSERT_EQ(trace_a.size(), trace_b.size());
    for (size_t i = 0; i < trace_a.size(); ++i)
        ASSERT_DOUBLE_EQ(trace_a[i], trace_b[i]);
    // Every draw but the final overshoot lands inside the window.
    for (size_t i = 0; i + 1 < trace_a.size(); ++i)
        ASSERT_LT(trace_a[i], cfg.duration);
    EXPECT_GE(trace_a.back(), cfg.duration);
}

// Arrival-parity oracle: the engine's recorded arrival sequence must be
// reproducible by hand from a standalone OnOffProcess and the service
// distribution with the engine's draw interleave — initial gap, then
// (service sample, next gap) per in-window arrival. This pins the RNG
// contract the runtime loadgen relies on for cross-stack parity.
TEST(TwoLevel, MmppTraceMatchesStandaloneReplay)
{
    FixedDist dist(us(1));
    TwoLevelConfig cfg = tl_config();
    cfg.duration = ms(5);
    cfg.arrival.kind = ArrivalSpec::Kind::OnOff; // default MMPP shape

    std::vector<double> trace;
    cfg.arrival_trace = &trace;
    const SimResult r = run_two_level(cfg, dist, mrps(0.3));
    ASSERT_FALSE(r.saturated); // drops would skip service draws
    ASSERT_GT(trace.size(), 10u);

    Rng rng(cfg.seed);
    OnOffProcess proc(mrps(0.3), cfg.arrival.onoff);
    std::vector<double> replay;
    double t = proc.next(0.0, rng);
    replay.push_back(t);
    while (t < cfg.duration) {
        dist.sample(rng);
        t = proc.next(t, rng);
        replay.push_back(t);
    }
    ASSERT_EQ(trace.size(), replay.size());
    for (size_t i = 0; i < trace.size(); ++i)
        ASSERT_DOUBLE_EQ(trace[i], replay[i]);
}

// fanout = 1 takes the classic unit == index path: a config that spells
// out the defaults replays byte-identically against the seed baseline.
TEST(TwoLevel, FanoutOneReplaysIdenticallyToDefault)
{
    auto dist = workload_table::high_bimodal();
    TwoLevelConfig base = tl_config();
    const SimResult a = run_two_level(base, *dist, mrps(0.2));

    TwoLevelConfig explicit_cfg = tl_config();
    explicit_cfg.fanout = 1;
    explicit_cfg.arrival.kind = ArrivalSpec::Kind::Poisson;
    const SimResult b = run_two_level(explicit_cfg, *dist, mrps(0.2));

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.overall_p999_slowdown, b.overall_p999_slowdown);
    EXPECT_DOUBLE_EQ(a.overall_mean_slowdown, b.overall_mean_slowdown);
}

// Scatter-gather: k shards of demand/k running in parallel finish a
// lightly loaded job faster than one serial unit, and the logical
// completion (last shard) conserves the arrival count.
TEST(TwoLevel, FanoutParallelismShortensLogicalSojourn)
{
    FixedDist dist(us(8));
    TwoLevelConfig serial = tl_config();
    serial.duration = ms(10);
    const SimResult one = run_two_level(serial, dist, mrps(0.2));

    TwoLevelConfig fan = serial;
    fan.fanout = 4;
    const SimResult four = run_two_level(fan, dist, mrps(0.2));

    EXPECT_FALSE(one.saturated);
    EXPECT_FALSE(four.saturated);
    // Same seed, same arrival draws => the same jobs arrive.
    EXPECT_EQ(one.completed, four.completed);
    EXPECT_GT(four.completed, 0u);
    // 4 x 2us shards in parallel beat one 8us unit.
    EXPECT_LT(four.overall_mean_slowdown,
              0.75 * one.overall_mean_slowdown);
}

TEST(TwoLevel, StaleCounterReadsDegradeJsqGracefully)
{
    // Paper section 4: the dispatcher reads worker counters
    // periodically. Very stale views (100us) make JSQ behave closer to
    // random, hurting the tail at high load — but never correctness.
    auto dist = workload_table::exp1();
    TwoLevelConfig fresh = tl_config();
    TwoLevelConfig stale = tl_config();
    stale.stats_refresh_period = us(100);
    const double rate = mrps(13);
    const SimResult r_fresh = run_two_level(fresh, *dist, rate);
    const SimResult r_stale = run_two_level(stale, *dist, rate);
    ASSERT_FALSE(r_fresh.saturated);
    ASSERT_FALSE(r_stale.saturated);
    EXPECT_EQ(r_stale.dropped, 0u);
    EXPECT_GT(r_stale.overall_p999_slowdown,
              r_fresh.overall_p999_slowdown);
}

TEST(TwoLevel, MultipleDispatchersScaleAdmissionThroughput)
{
    // Section 6 extension: 64 cores of 0.5us jobs demand far more
    // admission than one dispatcher sustains. Derive the offered rate
    // from the calibrated per-job cost so the test tracks
    // Overheads::dispatch_cost: 1.5x one dispatcher's cap saturates a
    // single dispatcher but fits comfortably under two.
    FixedDist dist(us(0.5));
    TwoLevelConfig cfg;
    cfg.num_cores = 64;
    cfg.duration = ms(10);
    const double one_cap_mrps =
        1e3 / static_cast<double>(Overheads::tq_default().dispatch_cost);
    const double rate = mrps(1.5 * one_cap_mrps);
    cfg.num_dispatchers = 1;
    const SimResult one = run_two_level(cfg, dist, rate);
    EXPECT_TRUE(one.saturated) << "rate is 1.5x one dispatcher's cap";
    cfg.num_dispatchers = 2;
    const SimResult two = run_two_level(cfg, dist, rate);
    EXPECT_FALSE(two.saturated) << "two dispatchers must carry 1.5x cap";
}

TEST(TwoLevel, SingleDispatcherResultsArePinnedBitForBit)
{
    // The sharded-tier remodel must leave num_dispatchers = 1 byte-
    // identical: these hexfloat goldens were captured on the
    // pre-sharding simulator across three unrelated configurations
    // (JSQ-MSQ/PS, saturated fixed-demand, and fanout/LAS/JsqRandom).
    // Any drift here means the D = 1 bypass leaks new behaviour into
    // the figures.
    {
        ExponentialDist dist(us(1));
        TwoLevelConfig cfg;
        cfg.num_cores = 16;
        cfg.duration = ms(20);
        cfg.seed = 7;
        const SimResult r = run_two_level(cfg, dist, mrps(8));
        EXPECT_EQ(r.completed, 160320u);
        EXPECT_EQ(r.dropped, 0u);
        EXPECT_FALSE(r.saturated);
        EXPECT_EQ(r.overall_mean_slowdown, 0x1.fbe2c792f4cc8p+0);
        EXPECT_EQ(r.overall_p999_slowdown, 0x1.9eea61f289c07p+6);
        EXPECT_EQ(r.avg_effective_quantum, 0x1.b04c88f860aebp+9);
    }
    {
        FixedDist dist(us(0.5));
        TwoLevelConfig cfg;
        cfg.num_cores = 64;
        cfg.duration = ms(5);
        cfg.seed = 3;
        cfg.stop_when_saturated = true;
        const SimResult r = run_two_level(cfg, dist, mrps(50));
        EXPECT_EQ(r.completed, 178551u);
        EXPECT_TRUE(r.saturated);
        EXPECT_EQ(r.overall_mean_slowdown, 0x1.8b0162bd2229cp+10);
    }
    {
        ExponentialDist dist(us(2));
        TwoLevelConfig cfg;
        cfg.num_cores = 8;
        cfg.fanout = 4;
        cfg.core_policy = CorePolicy::Las;
        cfg.lb = LbPolicy::JsqRandom;
        cfg.duration = ms(10);
        cfg.seed = 11;
        const SimResult r = run_two_level(cfg, dist, mrps(0.5));
        EXPECT_EQ(r.completed, 4976u);
        EXPECT_FALSE(r.saturated);
        EXPECT_EQ(r.overall_mean_slowdown, 0x1.ff1ac3f194a02p-1);
        EXPECT_EQ(r.overall_p999_slowdown, 0x1.5772924db89f3p+5);
    }
}

TEST(TwoLevel, ShardedRunsAreDeterministic)
{
    // The sharded model (front tier + per-shard spans) must stay as
    // reproducible as the classic path: same seed, same results, bit
    // for bit.
    auto dist = workload_table::exp1();
    TwoLevelConfig cfg;
    cfg.num_cores = 16;
    cfg.num_dispatchers = 4;
    cfg.duration = ms(10);
    cfg.seed = 42;
    const SimResult a = run_two_level(cfg, *dist, mrps(6));
    const SimResult b = run_two_level(cfg, *dist, mrps(6));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.overall_mean_slowdown, b.overall_mean_slowdown);
    EXPECT_EQ(a.overall_p999_slowdown, b.overall_p999_slowdown);
}

TEST(TwoLevel, FrontTierCostIsLatencyNotACapacityCeiling)
{
    // The front-tier pick happens on (parallel) submitter threads, so
    // even an absurd 500ns steering cost must not reduce completions —
    // it only shifts latency. The serial resources are the per-shard
    // dispatchers.
    FixedDist dist(us(1));
    TwoLevelConfig cheap;
    cheap.num_cores = 16;
    cheap.num_dispatchers = 2;
    cheap.duration = ms(10);
    TwoLevelConfig dear = cheap;
    dear.overheads.front_tier_cost = 500;
    const double rate = mrps(8);
    const SimResult r_cheap = run_two_level(cheap, dist, rate);
    const SimResult r_dear = run_two_level(dear, dist, rate);
    ASSERT_FALSE(r_cheap.saturated);
    ASSERT_FALSE(r_dear.saturated);
    EXPECT_EQ(r_cheap.completed, r_dear.completed)
        << "front-tier cost throttled throughput";
    EXPECT_GT(r_dear.overall_mean_slowdown,
              r_cheap.overall_mean_slowdown)
        << "500ns of steering latency must show up in sojourns";
}

TEST(TwoLevel, ShardedTailMatchesSingleDispatcherAtLowLoad)
{
    // Tail-latency parity check (the fig17 bench's low-load column):
    // far from the dispatch ceiling, splitting 16 cores into 2 shards
    // must not meaningfully hurt the tail — JSQ over 8 owned cores at
    // low occupancy picks an idle core almost as reliably as JSQ over
    // 16, and the front tier only adds its ~5ns pick.
    auto dist = workload_table::exp1();
    TwoLevelConfig one;
    one.num_cores = 16;
    one.duration = ms(40);
    TwoLevelConfig two = one;
    two.num_dispatchers = 2;
    const double rate = mrps(2); // ~12% core load, ~6% dispatch load
    const SimResult r1 = run_two_level(one, *dist, rate);
    const SimResult r2 = run_two_level(two, *dist, rate);
    ASSERT_FALSE(r1.saturated);
    ASSERT_FALSE(r2.saturated);
    EXPECT_EQ(r1.completed, r2.completed) << "same seed, same arrivals";
    EXPECT_LT(r2.overall_p999_slowdown,
              1.25 * r1.overall_p999_slowdown);
    EXPECT_LT(r2.overall_mean_slowdown,
              1.10 * r1.overall_mean_slowdown);
}

// ------------------------------------------------------------ central --

TEST(Central, StableLoadCompletesEverything)
{
    FixedDist dist(us(1));
    CentralConfig cfg;
    cfg.duration = ms(30);
    const SimResult r = run_central(cfg, dist, mrps(4));
    EXPECT_FALSE(r.saturated);
    EXPECT_NEAR(r.throughput, mrps(4), mrps(0.2));
}

TEST(Central, SmallerQuantaReduceTailAtZeroOverhead)
{
    // Figure 1's shape: with zero overhead, smaller quanta lower the
    // 99.9% slowdown of the extreme bimodal workload.
    auto dist = workload_table::extreme_bimodal();
    CentralConfig cfg;
    cfg.duration = ms(40);
    const double rate = mrps(3.5);
    cfg.quantum = us(1);
    const double small = run_central(cfg, *dist, rate).overall_p999_slowdown;
    cfg.quantum = us(10);
    const double large = run_central(cfg, *dist, rate).overall_p999_slowdown;
    EXPECT_LT(small, large);
}

TEST(Central, OverheadMakesTinyQuantaCounterproductive)
{
    // Figure 2's shape: with 1us preemption overhead, a 0.5us quantum
    // supports less load than a 3us quantum.
    auto dist = workload_table::extreme_bimodal();
    CentralConfig cfg;
    cfg.duration = ms(30);
    cfg.overheads.switch_overhead = us(1);
    auto capacity = [&](SimNanos q) {
        cfg.quantum = q;
        return max_rate_under_slo(
            [&](double rate) { return run_central(cfg, *dist, rate); },
            slowdown_slo(10), mrps(0.5), mrps(6), 8);
    };
    EXPECT_LT(capacity(us(0.5)), capacity(us(3)));
}

TEST(Central, SerialDispatcherLimitsQuantumRate)
{
    // Figure 16's mechanism: all cores busy with 1ms jobs; per-quantum
    // dispatcher ops serialize. With enough cores and small quanta the
    // effective quantum stretches past 110% of the target.
    FixedDist dist(ms(1));
    CentralConfig cfg;
    cfg.duration = ms(60);
    cfg.overheads = Overheads::shinjuku_default();
    cfg.quantum = us(1);
    cfg.num_cores = 16;
    // Keep all cores busy: 16 cores / 1ms jobs => ~16 Krps demand; offer
    // double and let the queue build.
    const SimResult r = run_central(cfg, dist, 32e-6);
    EXPECT_GT(r.avg_effective_quantum, 1.1 * cfg.quantum)
        << "16 cores at 1us quanta must overwhelm a ~5Mops dispatcher";

    cfg.num_cores = 2;
    const SimResult ok = run_central(cfg, dist, 4e-6);
    EXPECT_LT(ok.avg_effective_quantum, 1.1 * cfg.quantum)
        << "2 cores must be sustainable at 1us quanta";
}

// ------------------------------------------------------------ caladan --

TEST(Caladan, StableLoadCompletesEverything)
{
    FixedDist dist(us(1));
    CaladanConfig cfg;
    cfg.duration = ms(30);
    const SimResult r = run_caladan(cfg, dist, mrps(4));
    EXPECT_FALSE(r.saturated);
    EXPECT_NEAR(r.throughput, mrps(4), mrps(0.2));
}

TEST(Caladan, WorkStealingBalancesRandomSteering)
{
    // Without stealing, RSS-hashed FCFS queues at 75% load have terrible
    // tails; stealing keeps them near single-queue FCFS.
    // 8 Mrps stays under the ~9 Mrps IOKernel ceiling (110 ns/packet).
    auto dist = workload_table::exp1();
    CaladanConfig cfg;
    cfg.duration = ms(30);
    cfg.steal_attempts = 3;
    const SimResult with_steal = run_caladan(cfg, *dist, mrps(8));
    cfg.steal_attempts = 0;
    const SimResult no_steal = run_caladan(cfg, *dist, mrps(8));
    ASSERT_FALSE(with_steal.saturated);
    EXPECT_LT(with_steal.overall_p999_slowdown,
              no_steal.overall_p999_slowdown);
}

TEST(Caladan, FcfsSuffersHeadOfLineBlockingOnBimodal)
{
    auto dist = workload_table::extreme_bimodal();
    CaladanConfig caladan_cfg;
    caladan_cfg.duration = ms(30);
    TwoLevelConfig tq_cfg = tl_config();
    const double rate = mrps(3.0);
    const SimResult caladan = run_caladan(caladan_cfg, *dist, rate);
    const SimResult tq = run_two_level(tq_cfg, *dist, rate);
    ASSERT_FALSE(caladan.saturated);
    ASSERT_FALSE(tq.saturated);
    EXPECT_GT(caladan.by_class("Short").p999_sojourn,
              5 * tq.by_class("Short").p999_sojourn);
}

TEST(Caladan, IoKernelSerializesAtHighRate)
{
    // 110ns per packet => ~9 Mrps ceiling; 12 Mrps must saturate even
    // though 16 cores could serve the work.
    FixedDist dist(us(0.5));
    CaladanConfig cfg;
    cfg.duration = ms(20);
    cfg.directpath = false;
    const SimResult r = run_caladan(cfg, dist, mrps(12));
    EXPECT_TRUE(r.saturated);
    cfg.directpath = true;
    const SimResult dp = run_caladan(cfg, dist, mrps(12));
    EXPECT_FALSE(dp.saturated) << "directpath removes the serial stage";
}

// -------------------------------------------------------------- sweep --

TEST(Sweep, GridAndSweepRunAllPoints)
{
    FixedDist dist(us(1));
    TwoLevelConfig cfg = tl_config();
    cfg.duration = ms(10);
    const auto rates = rate_grid(mrps(1), mrps(4), 4);
    ASSERT_EQ(rates.size(), 4u);
    EXPECT_DOUBLE_EQ(rates.front(), mrps(1));
    EXPECT_DOUBLE_EQ(rates.back(), mrps(4));
    const auto points = sweep(
        [&](double r) { return run_two_level(cfg, dist, r); }, rates);
    ASSERT_EQ(points.size(), 4u);
    for (const auto &p : points)
        EXPECT_GT(p.result.completed, 0u);
}

TEST(Sweep, MaxRateUnderSloFindsCapacityBoundary)
{
    // 16 cores of 1us jobs: capacity ~16 Mrps (minus overheads). The
    // SLO-capacity search must land between 10 and 16 Mrps.
    FixedDist dist(us(1));
    TwoLevelConfig cfg = tl_config();
    cfg.duration = ms(15);
    const double cap = max_rate_under_slo(
        [&](double r) { return run_two_level(cfg, dist, r); },
        slowdown_slo(10), mrps(1), mrps(20), 8);
    EXPECT_GT(cap, mrps(10));
    EXPECT_LT(cap, mrps(16));
}

TEST(Sweep, ZeroWhenEvenLowRateMissesSlo)
{
    FixedDist dist(us(100));
    TwoLevelConfig cfg = tl_config();
    cfg.duration = ms(10);
    // SLO impossible: demand 100us but sojourn limit 1us.
    const double cap = max_rate_under_slo(
        [&](double r) { return run_two_level(cfg, dist, r); },
        class_sojourn_slo("job", us(1)), mrps(0.01), mrps(1), 4);
    EXPECT_DOUBLE_EQ(cap, 0.0);
}

// ----------------------------------------------------- parallel sweep --

/** Field-for-field equality, including per-class percentiles; doubles
 *  compared exactly because parallel sweeps promise bitwise identity. */
void
expect_same_result(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.saturated, b.saturated);
    EXPECT_EQ(a.overall_p999_slowdown, b.overall_p999_slowdown);
    EXPECT_EQ(a.overall_mean_slowdown, b.overall_mean_slowdown);
    EXPECT_EQ(a.avg_effective_quantum, b.avg_effective_quantum);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (size_t c = 0; c < a.classes.size(); ++c) {
        EXPECT_EQ(a.classes[c].name, b.classes[c].name);
        EXPECT_EQ(a.classes[c].completed, b.classes[c].completed);
        EXPECT_EQ(a.classes[c].p999_sojourn, b.classes[c].p999_sojourn);
        EXPECT_EQ(a.classes[c].p99_sojourn, b.classes[c].p99_sojourn);
        EXPECT_EQ(a.classes[c].mean_sojourn, b.classes[c].mean_sojourn);
        EXPECT_EQ(a.classes[c].p999_slowdown, b.classes[c].p999_slowdown);
        EXPECT_EQ(a.classes[c].mean_slowdown, b.classes[c].mean_slowdown);
    }
}

TEST(Sweep, ParallelMatchesSerialForAllEngines)
{
    auto dist = workload_table::extreme_bimodal();
    const auto rates = rate_grid(mrps(0.5), mrps(2.5), 5);
    const SweepOptions par{8};

    const RunFn engines[] = {
        [&](double r) {
            TwoLevelConfig cfg;
            cfg.duration = ms(10);
            return run_two_level(cfg, *dist, r);
        },
        [&](double r) {
            CentralConfig cfg;
            cfg.duration = ms(10);
            return run_central(cfg, *dist, r);
        },
        [&](double r) {
            CaladanConfig cfg;
            cfg.duration = ms(10);
            return run_caladan(cfg, *dist, r);
        },
    };
    for (const RunFn &fn : engines) {
        const auto serial = sweep(fn, rates);
        const auto parallel = sweep(fn, rates, par);
        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].rate, parallel[i].rate);
            expect_same_result(serial[i].result, parallel[i].result);
        }
    }
}

TEST(Sweep, SeededSweepDerivesDistinctReproducibleSeeds)
{
    FixedDist dist(us(1));
    // Replicated points at one rate: seeds must differ per point but be
    // reproducible from the base seed, serial or parallel.
    const std::vector<double> rates(6, mrps(2));
    const SeededRunFn fn = [&](double r, uint64_t seed) {
        TwoLevelConfig cfg;
        cfg.duration = ms(5);
        cfg.seed = seed;
        return run_two_level(cfg, dist, r);
    };
    const auto serial = sweep_seeded(fn, rates, 99);
    const auto parallel = sweep_seeded(fn, rates, 99, SweepOptions{8});
    ASSERT_EQ(serial.size(), rates.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].seed, derive_seed(99, i));
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
        expect_same_result(serial[i].result, parallel[i].result);
        for (size_t j = i + 1; j < serial.size(); ++j)
            EXPECT_NE(serial[i].seed, serial[j].seed);
    }
}

TEST(Sweep, MaxRateMemoSkipsKnownEndpoints)
{
    FixedDist dist(us(1));
    TwoLevelConfig cfg = tl_config();
    cfg.duration = ms(10);
    int calls = 0;
    const RunFn fn = [&](double r) {
        ++calls;
        return run_two_level(cfg, dist, r);
    };
    const double lo = mrps(1), hi = mrps(20);
    std::vector<SweepPoint> known(2);
    known[0].rate = lo;
    known[0].result = fn(lo);
    known[1].rate = hi;
    known[1].result = fn(hi);
    calls = 0;
    const int iters = 6;
    const double cap =
        max_rate_under_slo(fn, slowdown_slo(10), lo, hi, iters, &known);
    EXPECT_EQ(calls, iters) << "endpoints must come from the memo";
    EXPECT_GT(cap, mrps(10));
    EXPECT_LT(cap, mrps(16));
}

TEST(Sweep, StopWhenSaturatedKeepsTheVerdict)
{
    FixedDist dist(us(10));
    TwoLevelConfig early = tl_config();
    early.duration = ms(20);
    TwoLevelConfig full = early;
    early.stop_when_saturated = true;
    // Overloaded (capacity 1.6 Mrps): both must report saturation.
    EXPECT_TRUE(run_two_level(early, dist, mrps(3)).saturated);
    EXPECT_TRUE(run_two_level(full, dist, mrps(3)).saturated);
    // Stable: the early-stop path must never trigger, so the results
    // are identical, not merely equivalent.
    expect_same_result(run_two_level(early, dist, mrps(1)),
                       run_two_level(full, dist, mrps(1)));
}

} // namespace
} // namespace tq::sim
