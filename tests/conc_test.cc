/**
 * @file
 * Unit and stress tests for tq_conc: SPSC ring, MPMC queue, buffer pool,
 * spin mutex, cache-line padding.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "conc/buffer_pool.h"
#include "conc/cacheline.h"
#include "conc/mpmc_queue.h"
#include "conc/spin_mutex.h"
#include "conc/spsc_ring.h"

namespace tq {
namespace {

TEST(CacheAligned, OccupiesWholeLines)
{
    EXPECT_EQ(sizeof(CacheAligned<int>) % kCacheLineSize, 0u);
    EXPECT_EQ(alignof(CacheAligned<int>), kCacheLineSize);
    EXPECT_EQ(sizeof(PaddedAtomic<uint64_t>), kCacheLineSize);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoOrderSingleThread)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(ring.push(i));
    EXPECT_FALSE(ring.push(99)) << "ring should be full";
    for (int i = 0; i < 8; ++i) {
        auto v = ring.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, WrapsAroundManyTimes)
{
    SpscRing<int> ring(4);
    for (int round = 0; round < 1000; ++round) {
        EXPECT_TRUE(ring.push(round));
        auto v = ring.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, round);
    }
    EXPECT_TRUE(ring.empty());
}

class SpscRingCapacities : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SpscRingCapacities, TwoThreadFifoStress)
{
    const size_t cap = GetParam();
    SpscRing<uint64_t> ring(cap);
    constexpr uint64_t kCount = 50000;

    std::thread producer([&] {
        for (uint64_t i = 0; i < kCount; ++i) {
            while (!ring.push(i))
                std::this_thread::yield();
        }
    });
    uint64_t expected = 0;
    while (expected < kCount) {
        auto v = ring.pop();
        if (!v) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(*v, expected) << "FIFO order violated";
        ++expected;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpscRingCapacities,
                         ::testing::Values(1, 2, 8, 64, 1024));

TEST(SpscRing, BatchAndScalarOpsInterleaveFifo)
{
    // Mixed scalar push / push_n / pop / pop_into / pop_n must observe
    // one FIFO stream: the batch APIs move the same indices the scalar
    // ones do.
    SpscRing<int> ring(16);
    int src[4] = {0, 1, 2, 3};
    EXPECT_EQ(ring.push_n(src, 4), 4u);
    EXPECT_TRUE(ring.push(4));
    int src2[3] = {5, 6, 7};
    EXPECT_EQ(ring.push_n(src2, 3), 3u);

    auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0);
    int out = -1;
    ASSERT_TRUE(ring.pop_into(out));
    EXPECT_EQ(out, 1);
    int dst[8] = {};
    EXPECT_EQ(ring.pop_n(dst, 8), 6u) << "only six left";
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(dst[i], i + 2);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BatchOpsArePartialOnFullAndEmpty)
{
    SpscRing<int> ring(4);
    int src[6] = {0, 1, 2, 3, 4, 5};
    EXPECT_EQ(ring.push_n(src, 6), 4u) << "capacity-limited partial push";
    EXPECT_EQ(ring.push_n(src, 1), 0u) << "full ring accepts nothing";

    int dst[6] = {};
    EXPECT_EQ(ring.pop_n(dst, 6), 4u) << "drains what is there";
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(dst[i], i);
    EXPECT_EQ(ring.pop_n(dst, 6), 0u) << "empty ring yields nothing";
    int out = -1;
    EXPECT_FALSE(ring.pop_into(out));
    EXPECT_EQ(out, -1) << "failed pop_into must not write";
}

TEST(SpscRing, TwoThreadBatchProducerScalarConsumer)
{
    // push_n on one thread against scalar pop on the other: the batch
    // publish (one release store for the whole batch) must never expose
    // unwritten slots.
    SpscRing<uint64_t> ring(64);
    constexpr uint64_t kCount = 60000;

    std::thread producer([&] {
        uint64_t batch[16];
        uint64_t next = 0;
        while (next < kCount) {
            const size_t want =
                std::min<uint64_t>(16, kCount - next);
            for (size_t i = 0; i < want; ++i)
                batch[i] = next + i;
            const size_t pushed = ring.push_n(batch, want);
            next += pushed;
            if (pushed == 0)
                std::this_thread::yield();
        }
    });
    uint64_t expected = 0;
    while (expected < kCount) {
        auto v = ring.pop();
        if (!v) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(*v, expected) << "FIFO order violated";
        ++expected;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadScalarProducerBatchConsumer)
{
    SpscRing<uint64_t> ring(64);
    constexpr uint64_t kCount = 60000;

    std::thread producer([&] {
        for (uint64_t i = 0; i < kCount; ++i) {
            while (!ring.push(i))
                std::this_thread::yield();
        }
    });
    uint64_t batch[24];
    uint64_t expected = 0;
    while (expected < kCount) {
        const size_t got = ring.pop_n(batch, 24);
        if (got == 0) {
            std::this_thread::yield();
            continue;
        }
        for (size_t i = 0; i < got; ++i)
            ASSERT_EQ(batch[i], expected + i) << "FIFO order violated";
        expected += got;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(MpmcQueue, SingleThreadFifo)
{
    MpmcQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_TRUE(q.push(4));
    EXPECT_FALSE(q.push(5));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_TRUE(q.push(5));
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.pop().value(), 4);
    EXPECT_EQ(q.pop().value(), 5);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, MultiProducerMultiConsumerNoLossNoDup)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr uint64_t kPerProducer = 20000;
    MpmcQueue<uint64_t> q(1024);
    std::atomic<uint64_t> consumed{0};
    std::vector<std::atomic<int>> seen(kProducers * kPerProducer);

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                const uint64_t v = p * kPerProducer + i;
                while (!q.push(v))
                    std::this_thread::yield();
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (consumed.load() < kProducers * kPerProducer) {
                auto v = q.pop();
                if (!v) {
                    std::this_thread::yield();
                    continue;
                }
                seen[*v].fetch_add(1);
                consumed.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (size_t i = 0; i < seen.size(); ++i)
        ASSERT_EQ(seen[i].load(), 1) << "value " << i;
}

TEST(MpmcQueue, PerProducerOrderPreserved)
{
    // With a single consumer, each producer's values must arrive in order.
    constexpr int kProducers = 3;
    constexpr uint64_t kPerProducer = 15000;
    MpmcQueue<std::pair<int, uint64_t>> q(256);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                while (!q.push({p, i}))
                    std::this_thread::yield();
            }
        });
    }
    std::vector<uint64_t> next(kProducers, 0);
    uint64_t total = 0;
    while (total < kProducers * kPerProducer) {
        auto v = q.pop();
        if (!v) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(v->second, next[v->first]);
        ++next[v->first];
        ++total;
    }
    for (auto &t : producers)
        t.join();
}

TEST(MpmcQueue, PopNDrainsFifoAndIsPartial)
{
    MpmcQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    int dst[8] = {};
    EXPECT_EQ(q.pop_n(dst, 3), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(dst[i], i);
    EXPECT_EQ(q.pop_n(dst, 8), 2u) << "only two left";
    EXPECT_EQ(dst[0], 3);
    EXPECT_EQ(dst[1], 4);
    EXPECT_EQ(q.pop_n(dst, 8), 0u) << "empty queue yields nothing";
}

TEST(MpmcQueue, PopNUnderMultiProducerLosesNothing)
{
    // Batch consumer against concurrent producers: every pushed value
    // arrives exactly once, in per-producer order (single consumer).
    constexpr int kProducers = 3;
    constexpr uint64_t kPerProducer = 15000;
    MpmcQueue<std::pair<int, uint64_t>> q(256);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                while (!q.push({p, i}))
                    std::this_thread::yield();
            }
        });
    }
    std::pair<int, uint64_t> batch[32];
    std::vector<uint64_t> next(kProducers, 0);
    uint64_t total = 0;
    while (total < kProducers * kPerProducer) {
        const size_t got = q.pop_n(batch, 32);
        if (got == 0) {
            std::this_thread::yield();
            continue;
        }
        for (size_t i = 0; i < got; ++i) {
            ASSERT_EQ(batch[i].second, next[batch[i].first]);
            ++next[batch[i].first];
        }
        total += got;
    }
    for (auto &t : producers)
        t.join();
    EXPECT_EQ(q.size(), 0u);
}

TEST(BufferPool, AcquireReleaseRoundTrip)
{
    BufferPool<int> pool(4);
    EXPECT_EQ(pool.capacity(), 4u);
    std::set<int *> ptrs;
    for (int i = 0; i < 4; ++i) {
        int *p = pool.acquire();
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(pool.owns(p));
        ptrs.insert(p);
    }
    EXPECT_EQ(ptrs.size(), 4u) << "buffers must be distinct";
    EXPECT_EQ(pool.acquire(), nullptr) << "pool exhausted";
    for (int *p : ptrs)
        pool.release(p);
    EXPECT_EQ(pool.free_count(), 4u);
}

TEST(BufferPool, MultiProducerReleaseSingleConsumerAcquire)
{
    // The paper's RX pool pattern: dispatcher acquires, workers release.
    constexpr int kWorkers = 4;
    constexpr int kIters = 20000;
    BufferPool<uint64_t> pool(64);
    MpmcQueue<uint64_t *> in_flight(64);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> released{0};

    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                auto p = in_flight.pop();
                if (p) {
                    pool.release(*p);
                    released.fetch_add(1);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    uint64_t acquired = 0;
    while (acquired < kIters) {
        uint64_t *p = pool.acquire();
        if (!p) {
            std::this_thread::yield();
            continue;
        }
        ++acquired;
        while (!in_flight.push(p))
            std::this_thread::yield();
    }
    while (released.load() < kIters)
        std::this_thread::yield();
    stop.store(true);
    for (auto &t : workers)
        t.join();
    EXPECT_EQ(pool.free_count(), 64u) << "no buffer may leak";
}

TEST(SpinMutex, MutualExclusionUnderContention)
{
    SpinMutex mu;
    int counter = 0;
    constexpr int kThreads = 4;
    constexpr int kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                mu.lock();
                ++counter; // data race iff the lock is broken
                mu.unlock();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SpinMutex, TryLock)
{
    SpinMutex mu;
    EXPECT_TRUE(mu.try_lock());
    EXPECT_FALSE(mu.try_lock());
    mu.unlock();
    EXPECT_TRUE(mu.try_lock());
    mu.unlock();
}

} // namespace
} // namespace tq
