/**
 * @file
 * Tests for the workload substrates: MiniKV correctness against a
 * std::map oracle, probed preemptability of GET/SCAN, trace hooks,
 * TPC-C transaction semantics, mix ratios and duration ordering, and
 * the calibrated spinner.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/cycles.h"
#include "coro/coroutine.h"
#include "probe/probe.h"
#include "workloads/minikv.h"
#include "workloads/spin.h"
#include "workloads/tpcc.h"

namespace tq::workloads {
namespace {

void
reset_probe_state()
{
    probe_state() = ProbeState{};
}

// -------------------------------------------------------------- MiniKV --

TEST(MiniKV, PutGetRoundTrip)
{
    reset_probe_state();
    MiniKV kv(1, 16);
    kv.put(42, "hello");
    std::string v;
    ASSERT_TRUE(kv.get(42, &v));
    EXPECT_EQ(v.substr(0, 5), "hello");
    EXPECT_FALSE(kv.get(43, &v));
    EXPECT_EQ(kv.size(), 1u);
}

TEST(MiniKV, OverwriteKeepsSingleEntry)
{
    reset_probe_state();
    MiniKV kv(1, 8);
    kv.put(7, "aaaa");
    kv.put(7, "bbbb");
    EXPECT_EQ(kv.size(), 1u);
    std::string v;
    ASSERT_TRUE(kv.get(7, &v));
    EXPECT_EQ(v.substr(0, 4), "bbbb");
}

TEST(MiniKV, MatchesMapOracleOnRandomOps)
{
    reset_probe_state();
    MiniKV kv(3, 8);
    std::map<uint64_t, char> oracle;
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t key = rng.below(800);
        if (rng.bernoulli(0.6)) {
            const char tag = static_cast<char>('a' + rng.below(26));
            kv.put(key, std::string(1, tag) + "xxx");
            oracle[key] = tag;
        } else {
            std::string v;
            const bool found = kv.get(key, &v);
            const auto it = oracle.find(key);
            ASSERT_EQ(found, it != oracle.end()) << "key " << key;
            if (found)
                ASSERT_EQ(v[0], it->second);
        }
    }
    EXPECT_EQ(kv.size(), oracle.size());
}

TEST(MiniKV, ScanVisitsKeysInOrder)
{
    reset_probe_state();
    MiniKV kv(5, 8);
    kv.load_sequential(1000);
    uint64_t checksum = 0;
    EXPECT_EQ(kv.scan(100, 50, &checksum), 50u);
    EXPECT_NE(checksum, 0u);
    // Scan starting past the end visits nothing.
    EXPECT_EQ(kv.scan(5000, 10, &checksum), 0u);
    // Scan clipped at the tail.
    EXPECT_EQ(kv.scan(990, 100, &checksum), 10u);
}

TEST(MiniKV, TraceHookRecordsAccesses)
{
    reset_probe_state();
    MiniKV kv(7, 16);
    kv.load_sequential(200);
    std::vector<uint64_t> trace;
    kv.set_trace(&trace);
    std::string v;
    kv.get(100, &v);
    const size_t get_len = trace.size();
    EXPECT_GT(get_len, 3u) << "descent must touch several nodes";
    kv.scan(0, 100, nullptr);
    EXPECT_GT(trace.size(), get_len + 150) << "scan touches ~2/entry";
    kv.set_trace(nullptr);
    const size_t frozen = trace.size();
    kv.get(5, &v);
    EXPECT_EQ(trace.size(), frozen);
}

TEST(MiniKV, ScanIsPreemptableViaProbes)
{
    reset_probe_state();
    MiniKV kv(9, 64);
    kv.load_sequential(20000);
    uint64_t checksum = 0;
    int yields = 0;
    static thread_local Coroutine *self_ptr;
    Coroutine job([&](Coroutine &self) {
        self_ptr = &self;
        kv.scan(0, 20000, &checksum);
    });
    bind_yield([](void *) { self_ptr->yield(); }, nullptr);
    while (!job.done()) {
        arm_quantum(ns_to_cycles(5000)); // 5us quanta
        job.resume();
        ++yields;
        ASSERT_LT(yields, 1'000'000);
    }
    disarm_quantum();
    EXPECT_GT(yields, 5) << "a 20k-entry scan must span many quanta";
    EXPECT_NE(checksum, 0u);
}

TEST(MiniKV, GetCompletesWithinOneModestQuantum)
{
    reset_probe_state();
    MiniKV kv(11, 64);
    kv.load_sequential(100000);
    // GET is a ~us-class job: with a 100us quantum it must not yield.
    int yields = 0;
    bind_yield([](void *arg) { ++*static_cast<int *>(arg); }, &yields);
    arm_quantum(ns_to_cycles(100000));
    std::string v;
    kv.get(54321, &v);
    disarm_quantum();
    EXPECT_EQ(yields, 0);
}

// ---------------------------------------------------------------- TPCC --

TEST(Tpcc, MixMatchesTable1)
{
    Rng rng(1);
    std::vector<int> counts(5, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<size_t>(sample_tpcc_mix(rng))];
    EXPECT_NEAR(counts[0] / double(n), 0.44, 0.01); // Payment
    EXPECT_NEAR(counts[1] / double(n), 0.04, 0.005); // OrderStatus
    EXPECT_NEAR(counts[2] / double(n), 0.44, 0.01); // NewOrder
    EXPECT_NEAR(counts[3] / double(n), 0.04, 0.005); // Delivery
    EXPECT_NEAR(counts[4] / double(n), 0.04, 0.005); // StockLevel
}

TEST(Tpcc, TransactionsCommitAndCount)
{
    reset_probe_state();
    disarm_quantum();
    TpccEmulator db(1);
    Rng rng(2);
    for (int i = 0; i < 50; ++i)
        db.run(sample_tpcc_mix(rng), rng);
    uint64_t total = 0;
    for (uint64_t c : db.committed())
        total += c;
    EXPECT_EQ(total, 50u);
}

TEST(Tpcc, NewOrderGrowsAndDeliveryShrinksOpenOrders)
{
    reset_probe_state();
    disarm_quantum();
    TpccEmulator db(1);
    Rng rng(3);
    const size_t before = db.open_orders();
    for (int i = 0; i < 20; ++i)
        db.run(TpccTxn::NewOrder, rng);
    EXPECT_EQ(db.open_orders(), before + 20);
    db.run(TpccTxn::Delivery, rng);
    EXPECT_EQ(db.open_orders(), before + 20 - TpccEmulator::kDistricts);
}

TEST(Tpcc, DurationOrderingTracksTable1)
{
    // Table 1 ordering: Payment ~ OrderStatus < NewOrder < Delivery <
    // StockLevel. Measure medians of real executions.
    reset_probe_state();
    disarm_quantum();
    TpccEmulator db(1);
    Rng rng(4);
    auto median_cost = [&](TpccTxn t) {
        std::vector<double> xs;
        for (int i = 0; i < 31; ++i) {
            const Cycles a = rdcycles();
            db.run(t, rng);
            xs.push_back(static_cast<double>(rdcycles() - a));
        }
        std::sort(xs.begin(), xs.end());
        return xs[xs.size() / 2];
    };
    const double payment = median_cost(TpccTxn::Payment);
    const double neworder = median_cost(TpccTxn::NewOrder);
    const double delivery = median_cost(TpccTxn::Delivery);
    const double stocklevel = median_cost(TpccTxn::StockLevel);
    EXPECT_LT(payment * 2, neworder);
    EXPECT_LT(neworder * 2.5, delivery);
    EXPECT_LT(delivery, stocklevel * 1.3);
    // Roughly Table-1 proportions: NewOrder/Payment ~ 3.5, allow 2..6.
    EXPECT_GT(neworder / payment, 2.0);
    EXPECT_LT(neworder / payment, 6.5);
}

TEST(Tpcc, TransactionsArePreemptable)
{
    reset_probe_state();
    TpccEmulator db(1);
    Rng rng(5);
    static thread_local Coroutine *self_ptr;
    int quanta = 0;
    Coroutine job([&](Coroutine &self) {
        self_ptr = &self;
        db.run(TpccTxn::StockLevel, rng); // the ~100us class
    });
    bind_yield([](void *) { self_ptr->yield(); }, nullptr);
    while (!job.done()) {
        arm_quantum(ns_to_cycles(2000)); // 2us quanta
        job.resume();
        ++quanta;
        ASSERT_LT(quanta, 1'000'000);
    }
    disarm_quantum();
    EXPECT_GT(quanta, 3);
}

// ---------------------------------------------------------------- spin --

TEST(Spin, DurationApproximatelyHonored)
{
    reset_probe_state();
    disarm_quantum();
    cycles_per_ns(); // warm the one-time clock calibration
    for (double target_us : {1.0, 5.0, 20.0}) {
        // Median of several runs: wall time can exceed consumed time when
        // the OS preempts the test (this box timeshares one core).
        std::vector<double> runs;
        for (int i = 0; i < 9; ++i) {
            const Cycles t0 = rdcycles();
            spin_for(us(target_us));
            runs.push_back(cycles_to_ns(rdcycles() - t0) / 1000.0);
        }
        std::sort(runs.begin(), runs.end());
        const double elapsed_us = runs[runs.size() / 2];
        EXPECT_GE(elapsed_us, target_us * 0.9) << target_us;
        EXPECT_LE(elapsed_us, target_us * 2 + 2) << target_us;
    }
}

TEST(Spin, PreemptableAndAccountsOnlyConsumedTime)
{
    reset_probe_state();
    static thread_local Coroutine *self_ptr;
    Coroutine job([&](Coroutine &self) {
        self_ptr = &self;
        spin_for(us(100));
    });
    bind_yield([](void *) { self_ptr->yield(); }, nullptr);
    int quanta = 0;
    double running_ns = 0;
    while (!job.done()) {
        arm_quantum(ns_to_cycles(5000));
        const Cycles t0 = rdcycles();
        job.resume();
        running_ns += cycles_to_ns(rdcycles() - t0);
        ++quanta;
        ASSERT_LT(quanta, 100000);
    }
    disarm_quantum();
    EXPECT_GE(quanta, 10) << "100us of work across 5us quanta";
    EXPECT_GE(running_ns, 90'000.0);
}

// ---------------------------------------------------------- ZipfKeyGen --

TEST(ZipfKeyGen, ScrambleIsABijectionOnTheKeyspace)
{
    const uint64_t n = 1024;
    ZipfKeyGen gen(n, 0.99);
    std::vector<bool> seen(n, false);
    for (uint64_t rank = 0; rank < n; ++rank) {
        const uint64_t key = gen.scramble(rank);
        ASSERT_LT(key, n);
        ASSERT_FALSE(seen[key]) << "rank " << rank << " collides";
        seen[key] = true;
    }
}

TEST(ZipfKeyGen, HotKeysDominateAndHitLoadedStore)
{
    const uint64_t n = 4096;
    ZipfKeyGen gen(n, 0.99);
    MiniKV kv(3, 64);
    kv.load_sequential(n);
    Rng rng(41);
    std::map<uint64_t, uint64_t> counts;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i) {
        const uint64_t key = gen.sample_key(rng);
        ASSERT_LT(key, n);
        ++counts[key];
        if (i < 200) // every sampled key must exist in the store
            EXPECT_TRUE(kv.get(key, nullptr)) << key;
    }
    // The hottest key is rank 0's stable image and towers over the
    // median key (YCSB-style skew at s = 0.99).
    const uint64_t hottest = counts[gen.scramble(0)];
    EXPECT_NEAR(static_cast<double>(hottest) / samples,
                gen.dist().pmf(0), 0.25 * gen.dist().pmf(0));
    uint64_t above_mean = 0;
    for (const auto &[key, c] : counts)
        above_mean += c > samples / n;
    // Skew: far fewer than half the touched keys sit above the mean.
    EXPECT_LT(above_mean, counts.size() / 2);
}

} // namespace
} // namespace tq::workloads
