/**
 * @file
 * Tests for the forced-multitasking probe runtime: quantum arming, yield
 * dispatch through call_the_yield, critical sections, and end-to-end
 * preemption of an instrumented job running in a coroutine.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/cycles.h"
#include "coro/coroutine.h"
#include "probe/probe.h"

namespace tq {
namespace {

/// Reset this thread's probe state between tests.
void
reset_probe_state()
{
    ProbeState &s = probe_state();
    s = ProbeState{};
}

TEST(Probe, NoYieldBeforeDeadline)
{
    reset_probe_state();
    bool yielded = false;
    bind_yield([](void *arg) { *static_cast<bool *>(arg) = true; },
               &yielded);
    arm_quantum(ns_to_cycles(1e9)); // 1 second: will not expire
    for (int i = 0; i < 1000; ++i)
        tq_probe();
    EXPECT_FALSE(yielded);
    EXPECT_EQ(probe_state().yields, 0u);
}

TEST(Probe, YieldsOnceDeadlinePasses)
{
    reset_probe_state();
    int yields = 0;
    bind_yield([](void *arg) { ++*static_cast<int *>(arg); }, &yields);
    arm_quantum(0); // expires immediately
    tq_probe();
    EXPECT_EQ(yields, 1);
    // The slow path disarms; further probes do not re-yield until re-armed.
    tq_probe();
    tq_probe();
    EXPECT_EQ(yields, 1);
    arm_quantum(0);
    tq_probe();
    EXPECT_EQ(yields, 2);
    EXPECT_EQ(probe_state().yields, 2u);
}

TEST(Probe, DisarmPreventsYield)
{
    reset_probe_state();
    int yields = 0;
    bind_yield([](void *arg) { ++*static_cast<int *>(arg); }, &yields);
    arm_quantum(0);
    disarm_quantum();
    tq_probe();
    EXPECT_EQ(yields, 0);
}

TEST(Probe, PreemptGuardDefersYield)
{
    reset_probe_state();
    int yields = 0;
    bind_yield([](void *arg) { ++*static_cast<int *>(arg); }, &yields);
    arm_quantum(0);
    {
        PreemptGuard guard;
        tq_probe(); // expired, but inside critical section
        EXPECT_EQ(yields, 0);
        EXPECT_TRUE(probe_state().yield_pending);
    }
    tq_probe(); // first probe after the section performs the yield
    EXPECT_EQ(yields, 1);
}

TEST(Probe, NestedGuardsAllMustRelease)
{
    reset_probe_state();
    int yields = 0;
    bind_yield([](void *arg) { ++*static_cast<int *>(arg); }, &yields);
    arm_quantum(0);
    {
        PreemptGuard outer;
        {
            PreemptGuard inner;
            tq_probe();
            EXPECT_EQ(yields, 0);
        }
        tq_probe(); // still guarded by outer
        EXPECT_EQ(yields, 0);
    }
    tq_probe();
    EXPECT_EQ(yields, 1);
}

/// The real wiring: a job coroutine instrumented with probes, preempted by
/// the scheduler whenever its quantum expires.
TEST(Probe, PreemptsInstrumentedCoroutineJob)
{
    reset_probe_state();
    constexpr uint64_t kWorkItems = 2000;
    uint64_t done_items = 0;

    Coroutine job([&](Coroutine &) {
        for (uint64_t i = 0; i < kWorkItems; ++i) {
            // ~50ns of "work" between probe sites.
            volatile uint64_t sink = 0;
            for (int j = 0; j < 20; ++j)
                sink = sink + j;
            ++done_items;
            tq_probe();
        }
    });

    bind_yield([](void *arg) { static_cast<Coroutine *>(arg)->yield(); },
               &job);

    const Cycles quantum = ns_to_cycles(5000); // 5us
    int quanta_used = 0;
    while (!job.done()) {
        arm_quantum(quantum);
        job.resume();
        disarm_quantum();
        ++quanta_used;
        ASSERT_LT(quanta_used, 100000);
    }
    EXPECT_EQ(done_items, kWorkItems);
    EXPECT_GE(quanta_used, 1);
    // The job yields mid-execution iff it was actually preempted at least
    // once (timing dependent, but 2000*50ns = 100us across 5us quanta
    // should preempt many times).
    EXPECT_GT(quanta_used, 2);
}

TEST(Probe, QuantumTimingAccuracy)
{
    // Probes every ~100ns with a 20us quantum must yield within a few
    // hundred ns of the target on a mostly-idle machine. Allow generous
    // slack: this asserts sanity, not a performance claim.
    reset_probe_state();
    Coroutine job([&](Coroutine &) {
        for (;;) {
            volatile uint64_t sink = 0;
            for (int j = 0; j < 40; ++j)
                sink = sink + j;
            tq_probe();
        }
    });
    bind_yield([](void *arg) { static_cast<Coroutine *>(arg)->yield(); },
               &job);

    const double target_ns = 20000;
    std::vector<double> errors;
    for (int q = 0; q < 50; ++q) {
        const Cycles start = rdcycles();
        arm_quantum(ns_to_cycles(target_ns));
        job.resume();
        const double elapsed = cycles_to_ns(rdcycles() - start);
        errors.push_back(elapsed - target_ns);
    }
    disarm_quantum();
    // Median error below 20% of the quantum (overshoot only: elapsed must
    // be at least the quantum since a probe never yields early).
    std::sort(errors.begin(), errors.end());
    EXPECT_GE(errors[0], -1000.0) << "yield fired before the deadline";
    EXPECT_LT(errors[errors.size() / 2], 0.2 * target_ns);
}

TEST(Probe, DynamicQuantaPerResume)
{
    // LAS-style policies re-arm with different quanta per resume; verify
    // each resume honors its own deadline rather than a fixed one.
    reset_probe_state();
    Coroutine job([&](Coroutine &) {
        for (;;)
            tq_probe();
    });
    bind_yield([](void *arg) { static_cast<Coroutine *>(arg)->yield(); },
               &job);
    for (double q_ns : {1000.0, 8000.0, 2000.0}) {
        const Cycles start = rdcycles();
        arm_quantum(ns_to_cycles(q_ns));
        job.resume();
        const double elapsed = cycles_to_ns(rdcycles() - start);
        EXPECT_GE(elapsed, q_ns * 0.9) << "quantum " << q_ns;
    }
    disarm_quantum();
}

} // namespace
} // namespace tq
