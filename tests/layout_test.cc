/**
 * @file
 * Layout-contract and packed-pick tests (docs/cache_line_analysis.md).
 *
 * Two halves:
 *  - Layout: every struct in the cache-line audit is re-asserted here at
 *    compile time (size/alignment) and checked at runtime with real
 *    objects (which cache line each hot field lands on), so a future
 *    field addition fails this test loudly instead of silently
 *    false-sharing. Runtime checks use tq::LayoutAudit — the friend hook
 *    the audited containers expose — because offsetof on
 *    non-standard-layout types is only conditionally supported.
 *  - Pick: property tests that DispatchView's SIMD/vector pick paths
 *    match the scalar JSQ+MSQ reference (DESIGN.md §"Dispatcher")
 *    bit-for-bit over randomized length/quanta arrays, including the
 *    assigned<finished wrap-clamp path, the kLenMax saturation path,
 *    and the JSQ-random reservoir's RNG call sequence.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "conc/cacheline.h"
#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "runtime/dispatch_view.h"
#include "runtime/lifecycle.h"
#include "runtime/runtime.h"
#include "runtime/worker_stats.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_ring.h"

namespace tq {

/** The audited containers befriend this struct; it exposes just enough
 *  member addresses for the line checks below. */
struct LayoutAudit
{
    /** Cache-line index of @p member within the allocation of @p obj. */
    template <typename Obj>
    static ptrdiff_t
    line_of(const Obj &obj, const void *member)
    {
        const char *base = reinterpret_cast<const char *>(&obj);
        const char *p = static_cast<const char *>(member);
        return (p - base) / static_cast<ptrdiff_t>(kCacheLineSize);
    }

    template <typename T>
    static const void *
    spsc_producer_head(const SpscRing<T> &r)
    {
        return &r.prod_.head;
    }

    template <typename T>
    static const void *
    spsc_producer_cached_tail(const SpscRing<T> &r)
    {
        return &r.prod_.cached_tail;
    }

    template <typename T>
    static const void *
    spsc_consumer_tail(const SpscRing<T> &r)
    {
        return &r.cons_.tail;
    }

    template <typename T>
    static const void *
    spsc_consumer_cached_head(const SpscRing<T> &r)
    {
        return &r.cons_.cached_head;
    }

    template <typename T>
    static const void *
    mpmc_enqueue_pos(const MpmcQueue<T> &q)
    {
        return &q.enqueue_pos_;
    }

    template <typename T>
    static const void *
    mpmc_dequeue_pos(const MpmcQueue<T> &q)
    {
        return &q.dequeue_pos_;
    }

    static const void *
    trace_dropped(const telemetry::TraceRing &r)
    {
        return &r.dropped_;
    }

    static const void *
    trace_ring_producer_head(const telemetry::TraceRing &r)
    {
        return spsc_producer_head(r.ring_);
    }

    static const uint32_t *
    view_len_data(const runtime::DispatchView &v)
    {
        return v.len_.get();
    }

    static const uint32_t *
    view_quanta_data(const runtime::DispatchView &v)
    {
        return v.quanta_.get();
    }

    static const runtime::DispatcherCounters &
    runtime_counters(const runtime::Runtime &rt)
    {
        return rt.shards_[0]->counters;
    }

    static const runtime::DispatcherShard &
    runtime_shard(const runtime::Runtime &rt, int shard)
    {
        return *rt.shards_[static_cast<size_t>(shard)];
    }

    static const runtime::LifecycleControl &
    runtime_lifecycle(const runtime::Runtime &rt)
    {
        return rt.lc_;
    }
};

} // namespace tq

namespace {

using namespace tq;
using runtime::DispatchView;

// ---------------------------------------------------------------------
// Compile-time layout contract: one assert per audited struct, mirroring
// the table in docs/cache_line_analysis.md.
// ---------------------------------------------------------------------

static_assert(sizeof(runtime::WorkerStatsLine) == kCacheLineSize &&
              alignof(runtime::WorkerStatsLine) == kCacheLineSize);
static_assert(sizeof(runtime::LifecycleControl) == kCacheLineSize &&
              alignof(runtime::LifecycleControl) == kCacheLineSize);
static_assert(sizeof(runtime::DispatcherCounters) == kCacheLineSize &&
              alignof(runtime::DispatcherCounters) == kCacheLineSize);
static_assert(sizeof(runtime::ShardLoadLine) == kCacheLineSize &&
              alignof(runtime::ShardLoadLine) == kCacheLineSize);
static_assert(sizeof(telemetry::WorkerCounters) == kCacheLineSize &&
              alignof(telemetry::WorkerCounters) == kCacheLineSize);
static_assert(sizeof(SpscRing<uint64_t>::ProducerSide) == kCacheLineSize &&
              sizeof(SpscRing<uint64_t>::ConsumerSide) == kCacheLineSize);
static_assert(sizeof(PaddedAtomic<size_t>) == kCacheLineSize &&
              alignof(PaddedAtomic<size_t>) == kCacheLineSize);
static_assert(sizeof(CacheAligned<char>) == kCacheLineSize);
// The sizeof(T) % line == 0 case must not grow a spurious extra line
// (this was a latent zero-length-array bug in CacheAligned's pad).
static_assert(sizeof(CacheAligned<char[kCacheLineSize]>) == kCacheLineSize);
static_assert(sizeof(CacheAligned<char[2 * kCacheLineSize]>) ==
              2 * kCacheLineSize);
static_assert(sizeof(telemetry::TraceEvent) == 24);
static_assert(alignof(telemetry::TraceRing) == kCacheLineSize);

TEST(Layout, SpscRingEndsOwnDistinctLines)
{
    SpscRing<uint64_t> ring(64);
    // Each end's published index and its private snapshot of the remote
    // index share one line (same single writer)...
    EXPECT_EQ(LayoutAudit::line_of(ring, LayoutAudit::spsc_producer_head(ring)),
              LayoutAudit::line_of(
                  ring, LayoutAudit::spsc_producer_cached_tail(ring)));
    EXPECT_EQ(LayoutAudit::line_of(ring, LayoutAudit::spsc_consumer_tail(ring)),
              LayoutAudit::line_of(
                  ring, LayoutAudit::spsc_consumer_cached_head(ring)));
    // ...but the two ends — written by distinct threads — never share.
    EXPECT_NE(LayoutAudit::line_of(ring, LayoutAudit::spsc_producer_head(ring)),
              LayoutAudit::line_of(ring,
                                   LayoutAudit::spsc_consumer_tail(ring)));
}

TEST(Layout, MpmcCursorsOwnDistinctLines)
{
    MpmcQueue<uint64_t> q(64);
    EXPECT_NE(LayoutAudit::line_of(q, LayoutAudit::mpmc_enqueue_pos(q)),
              LayoutAudit::line_of(q, LayoutAudit::mpmc_dequeue_pos(q)));
}

TEST(Layout, WorkerStatsNeighboursNeverShareALine)
{
    // Contiguous stats lines (as benches and future shards lay them out):
    // all three counters of one worker on one line, adjacent workers on
    // different lines.
    runtime::WorkerStatsLine lines[2];
    EXPECT_EQ(LayoutAudit::line_of(lines[0], &lines[0].finished),
              LayoutAudit::line_of(lines[0], &lines[0].current_quanta));
    EXPECT_EQ(LayoutAudit::line_of(lines[0], &lines[0].finished),
              LayoutAudit::line_of(lines[0], &lines[0].total_quanta));
    EXPECT_NE(LayoutAudit::line_of(lines[0], &lines[0].finished),
              LayoutAudit::line_of(lines[0], &lines[1].finished));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(&lines[0]) % kCacheLineSize, 0u);
}

TEST(Layout, DispatcherCountersNeverShareTheLifecycleLine)
{
    // The regression this PR fixed: the dispatcher's per-job counter
    // increments must not invalidate the lifecycle line every worker
    // polls. Checked on a real Runtime object. The counters now live
    // inside the (heap-allocated) dispatcher shard, so the two can
    // never even share an allocation; keep the line math on absolute
    // addresses.
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    runtime::Runtime rt(cfg, [](const runtime::Request &) { return 0ULL; });
    const auto &counters = LayoutAudit::runtime_counters(rt);
    const auto &lc = LayoutAudit::runtime_lifecycle(rt);
    const auto abs_line = [](const void *p) {
        return reinterpret_cast<uintptr_t>(p) / kCacheLineSize;
    };
    EXPECT_NE(abs_line(&counters.dispatched_total), abs_line(&lc.state));
    EXPECT_NE(abs_line(&counters.abandoned),
              abs_line(&lc.dispatcher_done));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(&lc) % kCacheLineSize, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(&counters) % kCacheLineSize, 0u);
}

TEST(Layout, ShardLoadAndCounterLinesStayDisjointAcrossShards)
{
    // Sharding contract (DESIGN.md §4g): each shard's advertised load
    // line and hot counters own their cache lines, within the shard and
    // across shards — a submit storm reading load lines must never ride
    // on a line any dispatcher writes for another purpose.
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 4;
    cfg.num_dispatchers = 2;
    runtime::Runtime rt(cfg, [](const runtime::Request &) { return 0ULL; });
    const auto abs_line = [](const void *p) {
        return reinterpret_cast<uintptr_t>(p) / kCacheLineSize;
    };
    std::vector<uintptr_t> lines;
    for (int s = 0; s < 2; ++s) {
        const auto &sh = LayoutAudit::runtime_shard(rt, s);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(&sh.load_line) %
                      kCacheLineSize,
                  0u);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(&sh.counters) %
                      kCacheLineSize,
                  0u);
        lines.push_back(abs_line(&sh.load_line));
        lines.push_back(abs_line(&sh.counters));
    }
    for (size_t a = 0; a < lines.size(); ++a)
        for (size_t b = a + 1; b < lines.size(); ++b)
            EXPECT_NE(lines[a], lines[b]) << a << " vs " << b;
}

TEST(Layout, WorkerCountersAreHeapSeparatedPerWorker)
{
    telemetry::MetricsRegistry reg(4, 16);
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b) {
            const auto *pa = &reg.worker(a).counters;
            const auto *pb = &reg.worker(b).counters;
            const auto la =
                reinterpret_cast<uintptr_t>(pa) / kCacheLineSize;
            const auto lb =
                reinterpret_cast<uintptr_t>(pb) / kCacheLineSize;
            EXPECT_NE(la, lb) << "workers " << a << " and " << b;
        }
}

TEST(Layout, TraceRingColdFieldsStayOffTheProducerLine)
{
    telemetry::TraceRing ring(3, 64);
    EXPECT_NE(
        LayoutAudit::line_of(ring, LayoutAudit::trace_dropped(ring)),
        LayoutAudit::line_of(ring,
                             LayoutAudit::trace_ring_producer_head(ring)));
}

TEST(Layout, DispatchViewLanesAreLineAlignedAndPadded)
{
    DispatchView view(16);
    EXPECT_EQ(view.workers(), 16u);
    EXPECT_EQ(view.padded_lanes(), 16u); // exactly one line of lengths
    EXPECT_EQ(reinterpret_cast<uintptr_t>(LayoutAudit::view_len_data(view)) %
                  kCacheLineSize,
              0u);
    EXPECT_EQ(
        reinterpret_cast<uintptr_t>(LayoutAudit::view_quanta_data(view)) %
            kCacheLineSize,
        0u);

    DispatchView odd(5);
    EXPECT_EQ(odd.padded_lanes(), 16u);
    // Padding lanes hold kLenMax so they can never win the min.
    for (size_t i = odd.workers(); i < odd.padded_lanes(); ++i)
        EXPECT_EQ(LayoutAudit::view_len_data(odd)[i], DispatchView::kLenMax);
}

// ---------------------------------------------------------------------
// Packed-pick property tests: SIMD/vector paths vs the scalar reference.
// ---------------------------------------------------------------------

TEST(DispatchPick, MatchesScalarOnRandomizedViews)
{
    Rng rng(42);
    for (int trial = 0; trial < 20000; ++trial) {
        const size_t n = 1 + rng.below(64);
        DispatchView view(n);
        // Small ranges force dense ties; larger ones exercise magnitude.
        const uint64_t len_range = 1 + rng.below(trial % 3 == 0 ? 4 : 1000);
        const uint32_t quanta_range =
            static_cast<uint32_t>(1 + rng.below(trial % 2 == 0 ? 3 : 100));
        for (size_t i = 0; i < n; ++i) {
            view.set_len(i, rng.below(len_range));
            view.set_quanta(i,
                            static_cast<uint32_t>(rng.below(quanta_range)));
        }
        ASSERT_EQ(view.min_len(), view.min_len_scalar()) << "trial " << trial;
        ASSERT_EQ(view.pick_jsq_msq(), view.pick_jsq_msq_scalar())
            << "trial " << trial << " n=" << n;
    }
}

TEST(DispatchPick, TieBreakOrderIsLenThenQuantaThenIndex)
{
    // DESIGN.md §"Dispatcher": minimum length first, maximum
    // current-quanta among tied lengths, lowest index among full ties.
    DispatchView view(4);
    for (size_t i = 0; i < 4; ++i)
        view.set_len(i, 5);
    view.set_quanta(0, 1);
    view.set_quanta(1, 9);
    view.set_quanta(2, 9);
    view.set_quanta(3, 2);
    EXPECT_EQ(view.pick_jsq_msq(), 1); // max quanta, first of the 9s

    view.set_len(3, 2); // strictly shorter queue beats any quanta
    EXPECT_EQ(view.pick_jsq_msq(), 3);

    for (size_t i = 0; i < 4; ++i)
        view.set_quanta(i, 7);
    view.set_len(3, 5);
    EXPECT_EQ(view.pick_jsq_msq(), 0); // full tie -> lowest index
}

TEST(DispatchPick, WrapClampedLengthsBehaveAsZero)
{
    // refresh_dispatch_views() clamps the transient assigned<finished
    // race to length 0 before storing; reproduce that arithmetic and
    // check the clamped worker wins.
    DispatchView view(8);
    for (size_t i = 0; i < 8; ++i)
        view.set_len(i, 3 + i);
    const uint64_t assigned = 100, finished = 103; // worker ran ahead
    view.set_len(5, assigned > finished ? assigned - finished : 0);
    EXPECT_EQ(view.len(5), 0u);
    EXPECT_EQ(view.pick_jsq_msq(), 5);
    EXPECT_EQ(view.pick_jsq_msq(), view.pick_jsq_msq_scalar());
}

TEST(DispatchPick, SaturationClampsAtLenMaxAndStillPicksConsistently)
{
    DispatchView view(8);
    for (size_t i = 0; i < 8; ++i)
        view.set_len(i, ~0ULL - i); // all above the clamp
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(view.len(i), DispatchView::kLenMax);
    view.set_quanta(6, 4);
    // All tied at kLenMax: MSQ still resolves, and padding lanes (also
    // kLenMax) must not be picked.
    const int best = view.pick_jsq_msq();
    EXPECT_EQ(best, 6);
    EXPECT_EQ(best, view.pick_jsq_msq_scalar());
    view.bump_len(6); // saturating bump must not wrap
    EXPECT_EQ(view.len(6), DispatchView::kLenMax);
}

TEST(DispatchPick, BumpLenMatchesIncrementalScalarUse)
{
    // Drive the view exactly as dispatcher_main() does within a batch:
    // pick, bump, repeat — and mirror the sequence against the scalar
    // reference on a second identical view.
    Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        const size_t n = 1 + rng.below(32);
        DispatchView simd_view(n);
        DispatchView ref_view(n);
        for (size_t i = 0; i < n; ++i) {
            const uint64_t len = rng.below(6);
            const uint32_t q = static_cast<uint32_t>(rng.below(5));
            simd_view.set_len(i, len);
            ref_view.set_len(i, len);
            simd_view.set_quanta(i, q);
            ref_view.set_quanta(i, q);
        }
        for (int step = 0; step < 40; ++step) {
            const int a = simd_view.pick_jsq_msq();
            const int b = ref_view.pick_jsq_msq_scalar();
            ASSERT_EQ(a, b) << "trial " << trial << " step " << step;
            simd_view.bump_len(static_cast<size_t>(a));
            ref_view.bump_len(static_cast<size_t>(b));
        }
    }
}

TEST(DispatchPick, JsqRandomConsumesRngIdenticallyToTheOldLoop)
{
    // The pre-SIMD dispatcher loop, verbatim: one below(++tie_count) per
    // tied worker in ascending index order. Seeded runs must reproduce.
    Rng data_rng(1234);
    for (int trial = 0; trial < 5000; ++trial) {
        const size_t n = 1 + data_rng.below(48);
        DispatchView view(n);
        std::vector<uint64_t> lens(n);
        for (size_t i = 0; i < n; ++i) {
            lens[i] = data_rng.below(3); // dense ties
            view.set_len(i, lens[i]);
        }

        const uint64_t seed = data_rng();
        Rng view_rng(seed);
        Rng ref_rng(seed);

        const int got = view.pick_jsq_random(view_rng);

        uint64_t best_len = ~0ULL;
        for (size_t i = 0; i < n; ++i)
            best_len = lens[i] < best_len ? lens[i] : best_len;
        int want = -1;
        uint64_t tie_count = 0;
        for (size_t i = 0; i < n; ++i)
            if (lens[i] == best_len && ref_rng.below(++tie_count) == 0)
                want = static_cast<int>(i);

        ASSERT_EQ(got, want) << "trial " << trial;
        // Identical consumption: the next draw from both streams agrees.
        ASSERT_EQ(view_rng(), ref_rng()) << "trial " << trial;
    }
}

} // namespace
