/**
 * @file
 * Umbrella-header test: core/tq.h must be self-contained and expose the
 * whole public API; plus death tests for documented misuse (internal
 * invariant violations abort via TQ_CHECK).
 */
#include <gtest/gtest.h>

#include "core/tq.h"

namespace tq {
namespace {

TEST(Core, VersionConstants)
{
    EXPECT_EQ(kVersionMajor, 1);
    EXPECT_GE(kVersionMinor, 0);
    EXPECT_GE(kVersionPatch, 0);
}

TEST(Core, UmbrellaExposesEveryModule)
{
    // One symbol per module: if this compiles and links, the umbrella
    // header is complete.
    [[maybe_unused]] runtime::RuntimeConfig rt_cfg;
    [[maybe_unused]] sim::TwoLevelConfig sim_cfg;
    [[maybe_unused]] compiler::PassConfig pass_cfg;
    [[maybe_unused]] cache::ChaseConfig chase_cfg;
    [[maybe_unused]] baselines::StealingConfig steal_cfg;
    [[maybe_unused]] net::LoadGenConfig lg_cfg;
    Rng rng(1);
    EXPECT_GT(workload_table::exp1()->mean(), 0.0);
    EXPECT_GE(rdcycles(), 0u);
    SpscRing<int> ring(4);
    EXPECT_TRUE(ring.push(1));
    workloads::MiniKV kv(1, 8);
    kv.put(1, "x");
    EXPECT_EQ(kv.size(), 1u);
}

using CoreDeathTest = ::testing::Test;

TEST(CoreDeathTest, ResumingFinishedCoroutineAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Coroutine co([](Coroutine &) {});
    co.resume();
    ASSERT_TRUE(co.done());
    EXPECT_DEATH(co.resume(), "check failed");
}

TEST(CoreDeathTest, YieldOutsideCoroutineAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Coroutine co([](Coroutine &) {});
    EXPECT_DEATH(co.yield(), "check failed");
}

TEST(CoreDeathTest, ExpiredProbeWithoutBoundYieldAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            probe_state() = ProbeState{}; // no call_the_yield bound
            arm_quantum(0);
            tq_probe();
        },
        "check failed");
}

TEST(CoreDeathTest, MixtureRequiresComponents)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(MixtureDist dist({}), "check failed");
}

} // namespace
} // namespace tq
