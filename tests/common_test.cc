/**
 * @file
 * Unit tests for tq_common: RNG, distributions, percentiles, histograms,
 * unit conversions, and the cycle clock.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/arrival.h"
#include "common/cycles.h"
#include "common/dist.h"
#include "common/histogram.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "common/shard.h"
#include "common/units.h"
#include "common/zipf.h"

namespace tq {
namespace {

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(us(2.0), 2000.0);
    EXPECT_DOUBLE_EQ(ms(1.0), 1e6);
    EXPECT_DOUBLE_EQ(sec(1.0), 1e9);
    EXPECT_DOUBLE_EQ(to_us(us(3.5)), 3.5);
    EXPECT_DOUBLE_EQ(to_sec(sec(2.0)), 2.0);
    // 1 Mrps = 1e-3 requests per nanosecond.
    EXPECT_DOUBLE_EQ(mrps(1.0), 1e-3);
    EXPECT_DOUBLE_EQ(to_mrps(mrps(4.5)), 4.5);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const uint64_t va = a();
        EXPECT_EQ(va, b());
        diverged |= (va != c());
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.below(10)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600); // ~6 sigma
}

TEST(Rng, ExponentialMean)
{
    Rng rng(3);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(5.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(FixedDist, AlwaysSameValue)
{
    FixedDist d(us(3), "spin");
    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        const auto s = d.sample(rng);
        EXPECT_DOUBLE_EQ(s.demand, us(3));
        EXPECT_EQ(s.job_class, 0);
    }
    EXPECT_DOUBLE_EQ(d.mean(), us(3));
    EXPECT_EQ(d.class_names().size(), 1u);
}

TEST(ExponentialDist, MeanMatches)
{
    ExponentialDist d(us(1));
    Rng rng(2);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += d.sample(rng).demand;
    EXPECT_NEAR(sum / n, us(1), us(0.02));
    EXPECT_DOUBLE_EQ(d.mean(), us(1));
}

TEST(MixtureDist, ClassFrequenciesMatchWeights)
{
    auto d = workload_table::extreme_bimodal();
    Rng rng(5);
    int longs = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const auto s = d->sample(rng);
        if (s.job_class == 1) {
            EXPECT_DOUBLE_EQ(s.demand, us(500));
            ++longs;
        } else {
            EXPECT_DOUBLE_EQ(s.demand, us(0.5));
        }
    }
    EXPECT_NEAR(longs / static_cast<double>(n), 0.005, 0.0012);
}

TEST(MixtureDist, MeanIsWeightedAverage)
{
    auto d = workload_table::high_bimodal();
    EXPECT_NEAR(d->mean(), 0.5 * us(1) + 0.5 * us(100), 1e-9);
}

TEST(MixtureDist, TpccHasFiveClasses)
{
    auto d = workload_table::tpcc();
    EXPECT_EQ(d->class_names().size(), 5u);
    EXPECT_EQ(d->class_names()[0], "Payment");
    EXPECT_EQ(d->class_names()[4], "StockLevel");
    // Mean of Table 1: .44*5.7 + .04*6 + .44*20 + .04*88 + .04*100
    EXPECT_NEAR(to_us(d->mean()), 19.068, 1e-6);
}

TEST(MixtureDist, RocksdbScanFraction)
{
    auto d = workload_table::rocksdb(0.5);
    Rng rng(6);
    int scans = 0;
    for (int i = 0; i < 100000; ++i)
        scans += d->sample(rng).job_class == 1;
    EXPECT_NEAR(scans / 100000.0, 0.5, 0.01);
}

TEST(PercentileTracker, ExactQuantilesOfKnownData)
{
    PercentileTracker t;
    for (int i = 1; i <= 1000; ++i)
        t.add(i);
    EXPECT_EQ(t.count(), 1000u);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 501.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.999), 1000.0);
    EXPECT_DOUBLE_EQ(t.quantile(1.0), 1000.0);
}

TEST(PercentileTracker, WarmupDiscardsPrefix)
{
    PercentileTracker t;
    // First 10% are huge outliers that warm-up should remove.
    for (int i = 0; i < 100; ++i)
        t.add(1e9);
    for (int i = 0; i < 900; ++i)
        t.add(1.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.99, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(t.mean(0.1), 1.0);
    EXPECT_DOUBLE_EQ(t.max(0.1), 1.0);
}

TEST(PercentileTracker, EmptyReturnsZero)
{
    PercentileTracker t;
    EXPECT_TRUE(t.empty());
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(PercentileTracker, BatchQuantilesMatchSingleCalls)
{
    Rng rng(11);
    PercentileTracker t;
    t.reserve(4000);
    for (int i = 0; i < 4000; ++i)
        t.add(rng.exponential(3.0));
    const double qs[] = {0.0, 0.5, 0.99, 0.999, 1.0};
    const auto batch = t.quantiles(qs);
    const auto warm = t.quantiles(qs, 0.1);
    ASSERT_EQ(batch.size(), std::size(qs));
    for (size_t i = 0; i < std::size(qs); ++i) {
        EXPECT_DOUBLE_EQ(batch[i], t.quantile(qs[i]));
        EXPECT_DOUBLE_EQ(warm[i], t.quantile(qs[i], 0.1));
    }
    EXPECT_EQ(PercentileTracker().quantiles(qs),
              std::vector<double>(std::size(qs), 0.0));
}

TEST(PercentileTracker, MatchesSortOracleOnRandomData)
{
    Rng rng(9);
    PercentileTracker t;
    std::vector<double> oracle;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.uniform(0, 1000);
        t.add(v);
        oracle.push_back(v);
    }
    std::sort(oracle.begin(), oracle.end());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
        size_t rank = static_cast<size_t>(q * oracle.size());
        if (rank >= oracle.size())
            rank = oracle.size() - 1;
        EXPECT_DOUBLE_EQ(t.quantile(q), oracle[rank]) << "q=" << q;
    }
}

TEST(LogHistogram, BucketEdges)
{
    LogHistogram h(64, 8); // 64..16384 in 8 buckets
    EXPECT_EQ(h.bucket_lo(0), 64u);
    EXPECT_EQ(h.bucket_hi(0), 128u);
    EXPECT_EQ(h.bucket_lo(7), 8192u);
    EXPECT_EQ(h.bucket_hi(7), 16384u);
}

TEST(LogHistogram, CountsLandInRightBuckets)
{
    LogHistogram h(64, 8);
    h.add(10);      // underflow
    h.add(64);      // bucket 0
    h.add(127);     // bucket 0
    h.add(128);     // bucket 1
    h.add(16383);   // bucket 7
    h.add(16384);   // overflow
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bucket_count(0), 2u);
    EXPECT_EQ(h.bucket_count(1), 1u);
    EXPECT_EQ(h.bucket_count(7), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(LogHistogram, FractionAbove)
{
    LogHistogram h(1, 20);
    for (int i = 0; i < 90; ++i)
        h.add(100); // bucket [64,128)
    for (int i = 0; i < 10; ++i)
        h.add(100000);
    EXPECT_NEAR(h.fraction_above(8192), 0.10, 1e-9);
    EXPECT_NEAR(h.fraction_above(64), 1.0, 1e-9); // bucket straddles
}

TEST(OnOffProcess, DeterministicForSameSeed)
{
    OnOffConfig cfg; // defaults: exponential phases (2-state MMPP)
    OnOffProcess a(1e-3, cfg), b(1e-3, cfg);
    Rng ra(7), rb(7);
    double ta = 0, tb = 0;
    for (int i = 0; i < 5000; ++i) {
        ta = a.next(ta, ra);
        tb = b.next(tb, rb);
        ASSERT_DOUBLE_EQ(ta, tb);
        ASSERT_GT(ta, 0.0);
    }
    EXPECT_EQ(a.phases_begun(), b.phases_begun());
    EXPECT_GT(a.phases_begun(), 0u);
}

// Regression (zero-rate phases): a fully silent OFF phase used to be a
// division hazard for gap-based samplers (gap = exp / rate with
// rate = 0). The inversion sampler steps over zero-capacity phases
// without dividing: every draw must come back finite, strictly
// increasing, and inside an ON window.
TEST(OnOffProcess, ZeroRateOffPhasesAreSkippedWithoutDivision)
{
    OnOffConfig cfg;
    cfg.on_mult = 1.0;
    cfg.off_mult = 0.0; // fully silent
    cfg.on_ns = 100.0;
    cfg.off_ns = 900.0;
    cfg.exponential_phases = false; // deterministic windows
    OnOffProcess p(1.0, cfg);       // ~100 arrivals per ON window
    Rng rng(3);
    double t = 0;
    for (int i = 0; i < 20000; ++i) {
        const double prev = t;
        t = p.next(t, rng);
        ASSERT_TRUE(std::isfinite(t));
        ASSERT_GT(t, prev);
        // ON windows are [1000k, 1000k + 100).
        const double in_cycle = std::fmod(t, 1000.0);
        ASSERT_LT(in_cycle, 100.0) << "arrival in a silent phase at " << t;
    }
}

// Near-zero (subnormal-adjacent) OFF rates must neither spin for an
// unbounded number of phases nor emit bursts inside the OFF windows.
TEST(OnOffProcess, NearZeroOffRateStaysFiniteAndOrdered)
{
    OnOffConfig cfg;
    cfg.on_mult = 2.0;
    cfg.off_mult = 1e-300;
    cfg.on_ns = 50e3;
    cfg.off_ns = 50e3;
    OnOffProcess p(1e-3, cfg);
    Rng rng(11);
    double t = 0;
    for (int i = 0; i < 5000; ++i) {
        const double prev = t;
        t = p.next(t, rng);
        ASSERT_TRUE(std::isfinite(t));
        ASSERT_GT(t, prev);
    }
}

// Full-amplitude diurnal ramp: the trough multiplier touches zero
// (phase rate 0) — the sampler must step over trough phases exactly
// like silent OFF phases.
TEST(OnOffProcess, FullAmplitudeRampTroughDoesNotStall)
{
    OnOffConfig cfg;
    cfg.on_mult = 1.0;
    cfg.off_mult = 1.0; // pure diurnal modulation
    cfg.on_ns = 1e3;
    cfg.off_ns = 1e3;
    cfg.exponential_phases = false;
    cfg.ramp_period_ns = 100e3;
    cfg.ramp_amplitude = 1.0;
    OnOffProcess p(1e-2, cfg);
    Rng rng(5);
    double t = 0;
    for (int i = 0; i < 10000; ++i) {
        const double prev = t;
        t = p.next(t, rng);
        ASSERT_TRUE(std::isfinite(t));
        ASSERT_GT(t, prev);
    }
}

TEST(OnOffProcess, LongRunRateMatchesDutyCycleMean)
{
    OnOffConfig cfg;
    cfg.on_mult = 3.0;
    cfg.off_mult = 0.5;
    cfg.on_ns = 20e3;
    cfg.off_ns = 60e3;
    OnOffProcess p(1e-3, cfg);
    // mean = 1e-3 * (3 * 20 + 0.5 * 60) / 80 = 1.125e-3
    EXPECT_NEAR(p.mean_rate(), 1.125e-3, 1e-12);
    Rng rng(17);
    double t = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        t = p.next(t, rng);
    const double empirical = n / t;
    EXPECT_NEAR(empirical, p.mean_rate(), 0.05 * p.mean_rate());
}

TEST(ArrivalSpec, FactoryBuildsTheRequestedProcess)
{
    ArrivalSpec spec; // default Poisson
    const auto poisson = make_arrival_process(spec, 2e-3);
    EXPECT_DOUBLE_EQ(poisson->mean_rate(), 2e-3);
    EXPECT_EQ(poisson->phases_begun(), 0u);
    // Poisson draws are value-for-value the historical inline code:
    // one exponential at the mean gap (500ns at 2e-3/ns).
    Rng a(9), b(9);
    double t = 0, u = 0;
    for (int i = 0; i < 100; ++i) {
        t = poisson->next(t, a);
        u += b.exponential(500.0);
        ASSERT_DOUBLE_EQ(t, u);
    }
    spec.kind = ArrivalSpec::Kind::OnOff;
    const auto onoff = make_arrival_process(spec, 2e-3);
    Rng c(1);
    onoff->next(0.0, c);
    EXPECT_GT(onoff->phases_begun(), 0u);
}

TEST(Zipf, FrequenciesMatchPmf)
{
    const uint64_t n = 16;
    Zipf z(n, 1.2);
    Rng rng(23);
    std::vector<uint64_t> counts(n, 0);
    const int samples = 200000;
    for (int i = 0; i < samples; ++i) {
        const uint64_t r = z.sample(rng);
        ASSERT_LT(r, n);
        ++counts[r];
    }
    double pmf_sum = 0;
    for (uint64_t r = 0; r < n; ++r) {
        const double expected = z.pmf(r);
        pmf_sum += expected;
        const double observed =
            static_cast<double>(counts[r]) / samples;
        EXPECT_NEAR(observed, expected, 0.05 * expected + 0.002)
            << "rank " << r;
    }
    EXPECT_NEAR(pmf_sum, 1.0, 1e-9);
    // Monotone popularity: rank 0 is the hottest.
    for (uint64_t r = 1; r < n; ++r)
        EXPECT_GE(counts[r - 1], counts[r] / 2);
}

// Regression (s -> 1 precision): the naive h-integral
// (x^(1-s) - 1) / (1 - s) is 0/0 at s = 1. The rejection-inversion
// helpers switch to expm1/log1p forms, so the distribution must vary
// continuously through s = 1 instead of collapsing or NaN-ing.
TEST(Zipf, ContinuousThroughSEqualsOne)
{
    const uint64_t n = 1024;
    const double eps = 1e-12; // well inside double rounding of 1 - s
    Zipf below(n, 1.0 - eps), at(n, 1.0), above(n, 1.0 + eps);
    for (uint64_t r : {uint64_t{0}, uint64_t{1}, uint64_t{7},
                       uint64_t{511}, n - 1}) {
        const double p = at.pmf(r);
        ASSERT_TRUE(std::isfinite(p));
        ASSERT_GT(p, 0.0);
        EXPECT_NEAR(below.pmf(r), p, 1e-6 * p);
        EXPECT_NEAR(above.pmf(r), p, 1e-6 * p);
    }
    // Sampling at exactly s = 1 stays in range and hits the head hard.
    Rng rng(31);
    uint64_t head = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) {
        const uint64_t r = at.sample(rng);
        ASSERT_LT(r, n);
        head += r == 0;
    }
    // pmf(0) at s=1, n=1024 is 1/H_1024 ~ 0.133.
    EXPECT_NEAR(static_cast<double>(head) / samples, at.pmf(0),
                0.25 * at.pmf(0));
}

TEST(Zipf, DegenerateCases)
{
    Zipf one(1, 0.99);
    EXPECT_DOUBLE_EQ(one.pmf(0), 1.0);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(one.sample(rng), 0u);
    // s = 0 is the uniform distribution.
    Zipf uniform(64, 0.0);
    for (uint64_t r = 0; r < 64; ++r)
        EXPECT_NEAR(uniform.pmf(r), 1.0 / 64, 1e-12);
}

TEST(ShardSpan, PartitionIsContiguousDisjointAndEven)
{
    // Every (workers, shards) pair up to the runtime's limits: the
    // spans must tile [0, W) exactly, differ by at most one worker, and
    // shard_of_worker must invert the mapping.
    for (int workers = 1; workers <= 64; ++workers) {
        for (int shards = 1; shards <= std::min(workers, 16); ++shards) {
            int next = 0;
            int min_count = workers, max_count = 0;
            for (int s = 0; s < shards; ++s) {
                const ShardSpan span = shard_span(workers, shards, s);
                ASSERT_EQ(span.first, next)
                    << workers << "w/" << shards << "s shard " << s;
                ASSERT_GE(span.count, 1);
                min_count = std::min(min_count, span.count);
                max_count = std::max(max_count, span.count);
                for (int w = span.first; w < span.first + span.count; ++w)
                    ASSERT_EQ(shard_of_worker(workers, shards, w), s)
                        << workers << "w/" << shards << "s worker " << w;
                next = span.first + span.count;
            }
            ASSERT_EQ(next, workers);
            ASSERT_LE(max_count - min_count, 1);
        }
    }
}

TEST(PickMinRotated, MatchesScalarOracleUnderRandomLoads)
{
    // Property test for the front-tier JSQ pick: against a brute-force
    // oracle, the winner must be the *earliest shard in rotated order*
    // holding the global minimum load (strictly-smaller-wins contract,
    // common/shard.h). Small load ranges force heavy tying so the
    // tie-break path dominates the trials.
    Rng rng(2024);
    for (int trial = 0; trial < 20000; ++trial) {
        const size_t n = 1 + rng.below(16);
        uint32_t loads[16];
        for (size_t i = 0; i < n; ++i)
            loads[i] = static_cast<uint32_t>(rng.below(trial % 2 ? 4 : 1000));
        const uint64_t start = rng() % 1000;
        const int got = pick_min_rotated(loads, n, start);

        uint32_t min_load = loads[0];
        for (size_t i = 1; i < n; ++i)
            min_load = std::min(min_load, loads[i]);
        int oracle = -1;
        for (size_t step = 0; step < n; ++step) {
            const size_t i = (static_cast<size_t>(start % n) + step) % n;
            if (loads[i] == min_load) {
                oracle = static_cast<int>(i);
                break;
            }
        }
        ASSERT_EQ(got, oracle) << "trial " << trial << " n=" << n
                               << " start=" << start;
        ASSERT_EQ(loads[static_cast<size_t>(got)], min_load);
    }
}

TEST(PickMinRotated, RotationRoundRobinsTiedShards)
{
    // At idle every load estimate reads zero; successive rotated starts
    // must spread picks round-robin instead of piling onto shard 0.
    const uint32_t idle[4] = {0, 0, 0, 0};
    for (uint64_t k = 0; k < 64; ++k)
        EXPECT_EQ(pick_min_rotated(idle, 4, k),
                  static_cast<int>(k % 4));
}

TEST(Cycles, MonotonicAndCalibrated)
{
    const double ratio = cycles_per_ns();
    EXPECT_GT(ratio, 0.1);  // >100 MHz
    EXPECT_LT(ratio, 10.0); // <10 GHz
    const Cycles a = rdcycles();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const Cycles b = rdcycles();
    const double elapsed_ns = cycles_to_ns(b - a);
    EXPECT_GT(elapsed_ns, 4e6);
    EXPECT_LT(elapsed_ns, 1e9);
    EXPECT_NEAR(cycles_to_ns(ns_to_cycles(1000.0)), 1000.0, 2.0);
}

} // namespace
} // namespace tq
