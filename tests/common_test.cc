/**
 * @file
 * Unit tests for tq_common: RNG, distributions, percentiles, histograms,
 * unit conversions, and the cycle clock.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/cycles.h"
#include "common/dist.h"
#include "common/histogram.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "common/units.h"

namespace tq {
namespace {

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(us(2.0), 2000.0);
    EXPECT_DOUBLE_EQ(ms(1.0), 1e6);
    EXPECT_DOUBLE_EQ(sec(1.0), 1e9);
    EXPECT_DOUBLE_EQ(to_us(us(3.5)), 3.5);
    EXPECT_DOUBLE_EQ(to_sec(sec(2.0)), 2.0);
    // 1 Mrps = 1e-3 requests per nanosecond.
    EXPECT_DOUBLE_EQ(mrps(1.0), 1e-3);
    EXPECT_DOUBLE_EQ(to_mrps(mrps(4.5)), 4.5);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const uint64_t va = a();
        EXPECT_EQ(va, b());
        diverged |= (va != c());
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.below(10)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600); // ~6 sigma
}

TEST(Rng, ExponentialMean)
{
    Rng rng(3);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(5.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(FixedDist, AlwaysSameValue)
{
    FixedDist d(us(3), "spin");
    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        const auto s = d.sample(rng);
        EXPECT_DOUBLE_EQ(s.demand, us(3));
        EXPECT_EQ(s.job_class, 0);
    }
    EXPECT_DOUBLE_EQ(d.mean(), us(3));
    EXPECT_EQ(d.class_names().size(), 1u);
}

TEST(ExponentialDist, MeanMatches)
{
    ExponentialDist d(us(1));
    Rng rng(2);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += d.sample(rng).demand;
    EXPECT_NEAR(sum / n, us(1), us(0.02));
    EXPECT_DOUBLE_EQ(d.mean(), us(1));
}

TEST(MixtureDist, ClassFrequenciesMatchWeights)
{
    auto d = workload_table::extreme_bimodal();
    Rng rng(5);
    int longs = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const auto s = d->sample(rng);
        if (s.job_class == 1) {
            EXPECT_DOUBLE_EQ(s.demand, us(500));
            ++longs;
        } else {
            EXPECT_DOUBLE_EQ(s.demand, us(0.5));
        }
    }
    EXPECT_NEAR(longs / static_cast<double>(n), 0.005, 0.0012);
}

TEST(MixtureDist, MeanIsWeightedAverage)
{
    auto d = workload_table::high_bimodal();
    EXPECT_NEAR(d->mean(), 0.5 * us(1) + 0.5 * us(100), 1e-9);
}

TEST(MixtureDist, TpccHasFiveClasses)
{
    auto d = workload_table::tpcc();
    EXPECT_EQ(d->class_names().size(), 5u);
    EXPECT_EQ(d->class_names()[0], "Payment");
    EXPECT_EQ(d->class_names()[4], "StockLevel");
    // Mean of Table 1: .44*5.7 + .04*6 + .44*20 + .04*88 + .04*100
    EXPECT_NEAR(to_us(d->mean()), 19.068, 1e-6);
}

TEST(MixtureDist, RocksdbScanFraction)
{
    auto d = workload_table::rocksdb(0.5);
    Rng rng(6);
    int scans = 0;
    for (int i = 0; i < 100000; ++i)
        scans += d->sample(rng).job_class == 1;
    EXPECT_NEAR(scans / 100000.0, 0.5, 0.01);
}

TEST(PercentileTracker, ExactQuantilesOfKnownData)
{
    PercentileTracker t;
    for (int i = 1; i <= 1000; ++i)
        t.add(i);
    EXPECT_EQ(t.count(), 1000u);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 501.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.999), 1000.0);
    EXPECT_DOUBLE_EQ(t.quantile(1.0), 1000.0);
}

TEST(PercentileTracker, WarmupDiscardsPrefix)
{
    PercentileTracker t;
    // First 10% are huge outliers that warm-up should remove.
    for (int i = 0; i < 100; ++i)
        t.add(1e9);
    for (int i = 0; i < 900; ++i)
        t.add(1.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.99, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(t.mean(0.1), 1.0);
    EXPECT_DOUBLE_EQ(t.max(0.1), 1.0);
}

TEST(PercentileTracker, EmptyReturnsZero)
{
    PercentileTracker t;
    EXPECT_TRUE(t.empty());
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(PercentileTracker, BatchQuantilesMatchSingleCalls)
{
    Rng rng(11);
    PercentileTracker t;
    t.reserve(4000);
    for (int i = 0; i < 4000; ++i)
        t.add(rng.exponential(3.0));
    const double qs[] = {0.0, 0.5, 0.99, 0.999, 1.0};
    const auto batch = t.quantiles(qs);
    const auto warm = t.quantiles(qs, 0.1);
    ASSERT_EQ(batch.size(), std::size(qs));
    for (size_t i = 0; i < std::size(qs); ++i) {
        EXPECT_DOUBLE_EQ(batch[i], t.quantile(qs[i]));
        EXPECT_DOUBLE_EQ(warm[i], t.quantile(qs[i], 0.1));
    }
    EXPECT_EQ(PercentileTracker().quantiles(qs),
              std::vector<double>(std::size(qs), 0.0));
}

TEST(PercentileTracker, MatchesSortOracleOnRandomData)
{
    Rng rng(9);
    PercentileTracker t;
    std::vector<double> oracle;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.uniform(0, 1000);
        t.add(v);
        oracle.push_back(v);
    }
    std::sort(oracle.begin(), oracle.end());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
        size_t rank = static_cast<size_t>(q * oracle.size());
        if (rank >= oracle.size())
            rank = oracle.size() - 1;
        EXPECT_DOUBLE_EQ(t.quantile(q), oracle[rank]) << "q=" << q;
    }
}

TEST(LogHistogram, BucketEdges)
{
    LogHistogram h(64, 8); // 64..16384 in 8 buckets
    EXPECT_EQ(h.bucket_lo(0), 64u);
    EXPECT_EQ(h.bucket_hi(0), 128u);
    EXPECT_EQ(h.bucket_lo(7), 8192u);
    EXPECT_EQ(h.bucket_hi(7), 16384u);
}

TEST(LogHistogram, CountsLandInRightBuckets)
{
    LogHistogram h(64, 8);
    h.add(10);      // underflow
    h.add(64);      // bucket 0
    h.add(127);     // bucket 0
    h.add(128);     // bucket 1
    h.add(16383);   // bucket 7
    h.add(16384);   // overflow
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bucket_count(0), 2u);
    EXPECT_EQ(h.bucket_count(1), 1u);
    EXPECT_EQ(h.bucket_count(7), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(LogHistogram, FractionAbove)
{
    LogHistogram h(1, 20);
    for (int i = 0; i < 90; ++i)
        h.add(100); // bucket [64,128)
    for (int i = 0; i < 10; ++i)
        h.add(100000);
    EXPECT_NEAR(h.fraction_above(8192), 0.10, 1e-9);
    EXPECT_NEAR(h.fraction_above(64), 1.0, 1e-9); // bucket straddles
}

TEST(Cycles, MonotonicAndCalibrated)
{
    const double ratio = cycles_per_ns();
    EXPECT_GT(ratio, 0.1);  // >100 MHz
    EXPECT_LT(ratio, 10.0); // <10 GHz
    const Cycles a = rdcycles();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const Cycles b = rdcycles();
    const double elapsed_ns = cycles_to_ns(b - a);
    EXPECT_GT(elapsed_ns, 4e6);
    EXPECT_LT(elapsed_ns, 1e9);
    EXPECT_NEAR(cycles_to_ns(ns_to_cycles(1000.0)), 1000.0, 2.0);
}

} // namespace
} // namespace tq
