/**
 * @file
 * Tests for the open-loop load generator against a deterministic fake
 * server: Poisson submission counts, latency bookkeeping, warm-up
 * discarding, per-class accounting, and backpressure counting.
 */
#include <gtest/gtest.h>

#include <deque>

#include "common/cycles.h"
#include "net/loadgen.h"

namespace tq::net {
namespace {

/** Fake server: echoes after a fixed (cycle-accurate) delay. */
class EchoServer : public Server
{
  public:
    explicit EchoServer(double delay_ns, size_t fail_first = 0)
        : delay_cycles_(ns_to_cycles(delay_ns)), fail_first_(fail_first)
    {
    }

    bool
    submit(const runtime::Request &req) override
    {
        if (fail_first_ > 0) {
            --fail_first_;
            return false;
        }
        runtime::Response resp;
        resp.id = req.id;
        resp.gen_cycles = req.gen_cycles;
        resp.arrival_cycles = rdcycles();
        resp.done_cycles = resp.arrival_cycles + delay_cycles_;
        resp.job_class = req.job_class;
        resp.result = req.payload;
        pending_.push_back(resp);
        return true;
    }

    size_t
    drain(std::vector<runtime::Response> &out) override
    {
        size_t n = 0;
        const Cycles now = rdcycles();
        while (!pending_.empty() && pending_.front().done_cycles <= now) {
            out.push_back(pending_.front());
            pending_.pop_front();
            ++n;
        }
        return n;
    }

  private:
    Cycles delay_cycles_;
    size_t fail_first_;
    std::deque<runtime::Response> pending_;
};

TEST(LoadGen, SubmitsApproximatelyRateTimesDuration)
{
    EchoServer server(100.0);
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.05; // 50 Krps
    cfg.duration_sec = 0.2;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    // Expect ~10000 submissions; Poisson sd ~100, allow generous slack
    // for host scheduling jitter.
    EXPECT_GT(stats.submitted, 8000u);
    EXPECT_LT(stats.submitted, 12000u);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_GT(stats.achieved_mrps, 0.03);
}

// Regression: the achieved rate is measured over the generation window
// only. A server whose responses all land after the window forces a
// long straggler-drain phase; folding that into the denominator used to
// deflate achieved_mrps by ~2x in this setup.
TEST(LoadGen, AchievedRateExcludesDrainPhase)
{
    EchoServer server(100e6); // every response 100ms late
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.05;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.timed_out, 0u);
    EXPECT_GE(stats.gen_elapsed_sec, cfg.duration_sec);
    EXPECT_LT(stats.gen_elapsed_sec, cfg.duration_sec * 2);
    // With the drain phase in the denominator this would be ~0.007.
    EXPECT_GT(stats.achieved_mrps, 0.012);
    EXPECT_NEAR(stats.achieved_mrps,
                static_cast<double>(stats.completed) /
                    (stats.gen_elapsed_sec * 1e6),
                1e-9);
}

// Responses that never arrive before the drain timeout are reported as
// timed out instead of silently shrinking `completed`.
TEST(LoadGen, CountsTimedOutRequests)
{
    EchoServer server(10e9); // 10s: far beyond the drain timeout
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.05;
    cfg.drain_timeout_sec = 0.1;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    EXPECT_GT(stats.submitted, 0u);
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.timed_out, stats.submitted);
}

TEST(LoadGen, LatencyReflectsServerDelay)
{
    EchoServer server(50'000.0); // 50us server-side delay
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.1;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    const auto &c = stats.by_class("job");
    EXPECT_GE(c.mean_sojourn_us, 49.0);
    EXPECT_LT(c.mean_sojourn_us, 80.0);
    EXPECT_GE(c.p999_sojourn_us, c.p99_sojourn_us);
    EXPECT_GE(c.p99_sojourn_us, 49.0);
    // End-to-end includes client-side queueing/drain delays.
    EXPECT_GE(c.p999_e2e_us, c.p999_sojourn_us);
}

TEST(LoadGen, CountsSendFailures)
{
    EchoServer server(100.0, /*fail_first=*/25);
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.05;
    cfg.duration_sec = 0.05;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    EXPECT_EQ(stats.send_failures, 25u);
    EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(LoadGen, PerClassAccountingSeparatesClasses)
{
    EchoServer server(1000.0);
    auto dist = workload_table::high_bimodal();
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.1;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    const auto &s = stats.by_class("Short");
    const auto &l = stats.by_class("Long");
    EXPECT_GT(s.completed, 0u);
    EXPECT_GT(l.completed, 0u);
    EXPECT_EQ(s.completed + l.completed, stats.completed);
    // ~50/50 mix.
    const double frac =
        static_cast<double>(s.completed) /
        static_cast<double>(stats.completed);
    EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(LoadGen, SpinFactoryEncodesDemandInPayload)
{
    const auto factory = spin_request_factory();
    ServiceSample s{us(7), 3};
    const runtime::Request req = factory(s, 42);
    EXPECT_EQ(req.job_class, 3);
    EXPECT_EQ(req.payload, static_cast<uint64_t>(us(7)));
}

} // namespace
} // namespace tq::net
