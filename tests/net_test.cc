/**
 * @file
 * Tests for the open-loop load generator against a deterministic fake
 * server: Poisson submission counts, latency bookkeeping, warm-up
 * discarding, per-class accounting, and backpressure counting.
 */
#include <gtest/gtest.h>

#include <deque>

#include "common/cycles.h"
#include "net/loadgen.h"
#include "runtime/fanout.h"

namespace tq::net {
namespace {

/** Fake server: echoes after a fixed (cycle-accurate) delay. */
class EchoServer : public Server
{
  public:
    explicit EchoServer(double delay_ns, size_t fail_first = 0)
        : delay_cycles_(ns_to_cycles(delay_ns)), fail_first_(fail_first)
    {
    }

    bool
    submit(const runtime::Request &req) override
    {
        if (fail_first_ > 0) {
            --fail_first_;
            return false;
        }
        runtime::Response resp;
        resp.id = req.id;
        resp.gen_cycles = req.gen_cycles;
        resp.arrival_cycles = rdcycles();
        resp.done_cycles = resp.arrival_cycles + delay_cycles_;
        resp.job_class = req.job_class;
        resp.result = req.payload;
        pending_.push_back(resp);
        return true;
    }

    size_t
    drain(std::vector<runtime::Response> &out) override
    {
        size_t n = 0;
        const Cycles now = rdcycles();
        while (!pending_.empty() && pending_.front().done_cycles <= now) {
            out.push_back(pending_.front());
            pending_.pop_front();
            ++n;
        }
        return n;
    }

  private:
    Cycles delay_cycles_;
    size_t fail_first_;
    std::deque<runtime::Response> pending_;
};

TEST(LoadGen, SubmitsApproximatelyRateTimesDuration)
{
    EchoServer server(100.0);
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.05; // 50 Krps
    cfg.duration_sec = 0.2;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    // Expect ~10000 submissions; Poisson sd ~100, allow generous slack
    // for host scheduling jitter.
    EXPECT_GT(stats.submitted, 8000u);
    EXPECT_LT(stats.submitted, 12000u);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_GT(stats.achieved_mrps, 0.03);
    // The rate is exactly the in-window completions over the window.
    EXPECT_LE(stats.completed_in_window, stats.completed);
    EXPECT_NEAR(stats.achieved_mrps,
                static_cast<double>(stats.completed_in_window) /
                    (stats.gen_elapsed_sec * 1e6),
                1e-9);
}

// Regression (window-boundary accounting): a request still in flight
// when the generation window closes must either drain into `completed`
// (and the percentiles) or count as `timed_out` — but never into the
// achieved rate, which only credits completions observed *inside* the
// window. The old code divided the post-drain completion total by the
// window length, so a server whose every response landed after the
// window reported an achieved rate the window never sustained (~0.02
// Mrps here); it must be exactly zero.
TEST(LoadGen, AchievedRateExcludesDrainPhase)
{
    EchoServer server(100e6); // every response 100ms late
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.05;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.timed_out, 0u);
    EXPECT_GE(stats.gen_elapsed_sec, cfg.duration_sec);
    EXPECT_LT(stats.gen_elapsed_sec, cfg.duration_sec * 2);
    // Nothing completed before the window closed...
    EXPECT_EQ(stats.completed_in_window, 0u);
    EXPECT_EQ(stats.achieved_mrps, 0.0);
    // ...yet the drained stragglers still reach the latency stats.
    EXPECT_EQ(stats.by_class("job").completed, stats.completed);
    EXPECT_GT(stats.by_class("job").completed, 0u);
}

// Responses that never arrive before the drain timeout are reported as
// timed out instead of silently shrinking `completed`.
TEST(LoadGen, CountsTimedOutRequests)
{
    EchoServer server(10e9); // 10s: far beyond the drain timeout
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.05;
    cfg.drain_timeout_sec = 0.1;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    EXPECT_GT(stats.submitted, 0u);
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.timed_out, stats.submitted);
}

TEST(LoadGen, LatencyReflectsServerDelay)
{
    EchoServer server(50'000.0); // 50us server-side delay
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.1;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    const auto &c = stats.by_class("job");
    EXPECT_GE(c.mean_sojourn_us, 49.0);
    EXPECT_LT(c.mean_sojourn_us, 80.0);
    EXPECT_GE(c.p999_sojourn_us, c.p99_sojourn_us);
    EXPECT_GE(c.p99_sojourn_us, 49.0);
    // End-to-end includes client-side queueing/drain delays.
    EXPECT_GE(c.p999_e2e_us, c.p999_sojourn_us);
}

TEST(LoadGen, CountsSendFailures)
{
    EchoServer server(100.0, /*fail_first=*/25);
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.05;
    cfg.duration_sec = 0.05;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    EXPECT_EQ(stats.send_failures, 25u);
    EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(LoadGen, PerClassAccountingSeparatesClasses)
{
    EchoServer server(1000.0);
    auto dist = workload_table::high_bimodal();
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.02;
    cfg.duration_sec = 0.1;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    const auto &s = stats.by_class("Short");
    const auto &l = stats.by_class("Long");
    EXPECT_GT(s.completed, 0u);
    EXPECT_GT(l.completed, 0u);
    EXPECT_EQ(s.completed + l.completed, stats.completed);
    // ~50/50 mix.
    const double frac =
        static_cast<double>(s.completed) /
        static_cast<double>(stats.completed);
    EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(LoadGen, SpinFactoryEncodesDemandInPayload)
{
    const auto factory = spin_request_factory();
    ServiceSample s{us(7), 3};
    const runtime::Request req = factory(s, 42);
    EXPECT_EQ(req.job_class, 3);
    EXPECT_EQ(req.payload, static_cast<uint64_t>(us(7)));
}

// The recorded send schedule is a pure function of the seed: every draw
// (including the final past-window overshoot) lands in the trace, in
// strictly increasing order, and replays identically across runs.
TEST(LoadGen, SendTraceIsDeterministicAndCoversTheWindow)
{
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.05;
    cfg.duration_sec = 0.02;
    cfg.seed = 99;
    cfg.arrival.kind = ArrivalSpec::Kind::OnOff;
    cfg.arrival.onoff.on_mult = 4.0;
    cfg.arrival.onoff.off_mult = 0.1;
    cfg.arrival.onoff.on_ns = 100e3;
    cfg.arrival.onoff.off_ns = 300e3;

    std::vector<double> trace_a, trace_b;
    {
        EchoServer server(100.0);
        cfg.send_trace = &trace_a;
        const ClientStats stats =
            run_open_loop(server, *dist, spin_request_factory(), cfg);
        // One send per draw except the overshoot that ends the window.
        ASSERT_GE(trace_a.size(), 2u);
        EXPECT_EQ(stats.submitted + stats.send_failures,
                  trace_a.size() - 1);
        EXPECT_GE(trace_a.back(), cfg.duration_sec * 1e9);
        for (size_t i = 1; i < trace_a.size(); ++i)
            EXPECT_GT(trace_a[i], trace_a[i - 1]);
        for (size_t i = 0; i + 1 < trace_a.size(); ++i)
            EXPECT_LT(trace_a[i], cfg.duration_sec * 1e9);
    }
    {
        EchoServer server(100.0);
        cfg.send_trace = &trace_b;
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    }
    ASSERT_EQ(trace_a.size(), trace_b.size());
    for (size_t i = 0; i < trace_a.size(); ++i)
        EXPECT_DOUBLE_EQ(trace_a[i], trace_b[i]);
}

/** Fake scatter-gather server: emulates the dispatcher's shard
 *  expansion — each submit yields `fanout` shard responses, shard s
 *  completing after (s+1) * delay. */
class ShardEchoServer : public Server
{
  public:
    explicit ShardEchoServer(double delay_ns)
        : delay_cycles_(ns_to_cycles(delay_ns))
    {
    }

    bool
    submit(const runtime::Request &req) override
    {
        const uint32_t fanout = req.fanout == 0 ? 1 : req.fanout;
        const Cycles now = rdcycles();
        for (uint32_t s = 0; s < fanout; ++s) {
            runtime::Response resp;
            resp.id = req.id;
            resp.gen_cycles = req.gen_cycles;
            resp.arrival_cycles = now;
            resp.done_cycles = now + (s + 1) * delay_cycles_;
            resp.job_class = req.job_class;
            resp.fanout = fanout;
            resp.shard = s;
            resp.result = req.payload;
            pending_.push_back(resp);
        }
        return true;
    }

    size_t
    drain(std::vector<runtime::Response> &out) override
    {
        size_t n = 0;
        const Cycles now = rdcycles();
        while (!pending_.empty() && pending_.front().done_cycles <= now) {
            out.push_back(pending_.front());
            pending_.pop_front();
            ++n;
        }
        return n;
    }

  private:
    Cycles delay_cycles_;
    std::deque<runtime::Response> pending_;
};

// A fanned-out request completes when its LAST shard responds, counts
// once, and its sojourn spans to the slowest shard's completion.
TEST(LoadGen, FanoutCompletesOnLastShardAndCountsLogically)
{
    constexpr double kShardDelayNs = 20e3; // slowest shard: 4 * 20us
    ShardEchoServer server(kShardDelayNs);
    auto dist = std::make_unique<FixedDist>(us(1), "job");
    LoadGenConfig cfg;
    cfg.rate_mrps = 0.01;
    cfg.duration_sec = 0.05;
    cfg.fanout = 4;
    const ClientStats stats =
        run_open_loop(server, *dist, spin_request_factory(), cfg);
    EXPECT_GT(stats.submitted, 0u);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.timed_out, 0u);
    const auto &c = stats.by_class("job");
    EXPECT_EQ(c.completed, stats.completed);
    // Sojourn is last-shard completion: ~4 * 20us, never the first
    // shard's 20us.
    EXPECT_GE(c.mean_sojourn_us, 75.0);
    EXPECT_LT(c.mean_sojourn_us, 120.0);
}

// FanoutCollector unit semantics: merge on last shard, min arrival,
// max done, spread = last - first completion.
TEST(FanoutCollector, GathersShardsIntoOneLogicalResponse)
{
    runtime::FanoutCollector gather;
    runtime::Response logical;
    Cycles spread = 0;

    const auto shard = [](uint64_t id, uint32_t s, Cycles arrival,
                          Cycles done, int worker) {
        runtime::Response r;
        r.id = id;
        r.fanout = 3;
        r.shard = s;
        r.arrival_cycles = arrival;
        r.done_cycles = done;
        r.worker = worker;
        r.result = 1ull << s;
        return r;
    };

    EXPECT_FALSE(gather.feed(shard(7, 0, 100, 400, 0), &logical, &spread));
    EXPECT_FALSE(gather.feed(shard(7, 2, 90, 900, 2), &logical, &spread));
    EXPECT_EQ(gather.pending(), 1u);
    ASSERT_TRUE(gather.feed(shard(7, 1, 110, 600, 1), &logical, &spread));
    EXPECT_EQ(gather.pending(), 0u);
    EXPECT_EQ(logical.id, 7u);
    EXPECT_EQ(logical.arrival_cycles, 90u); // earliest shard arrival
    EXPECT_EQ(logical.done_cycles, 900u);   // last shard completion
    EXPECT_EQ(logical.worker, 2);           // the finishing shard's
    EXPECT_EQ(logical.result, 0b111u);      // XOR of shard results
    EXPECT_EQ(spread, 500u); // last (900) - first (400) completion

    // fanout <= 1 passes straight through.
    runtime::Response single;
    single.id = 8;
    single.fanout = 1;
    single.done_cycles = 123;
    ASSERT_TRUE(gather.feed(single, &logical, &spread));
    EXPECT_EQ(logical.id, 8u);
    EXPECT_EQ(spread, 0u);
}

} // namespace
} // namespace tq::net
