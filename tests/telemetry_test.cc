/**
 * @file
 * Tests for the telemetry layer: histogram bucketing edge cases,
 * trace-ring overflow semantics, snapshot-while-running races, the
 * Chrome trace exporter (golden file), the wrap-tolerant total-quanta
 * reader, and end-to-end recording through the real runtime.
 */
#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runtime.h"
#include "runtime/worker_stats.h"
#include "telemetry/telemetry.h"
#include "workloads/spin.h"

namespace tq::telemetry {
namespace {

TEST(CycleHistogram, BucketEdges)
{
    // Bucket i covers [2^i, 2^(i+1)); 0 and 1 share bucket 0; huge
    // values clamp into the last bucket instead of being lost.
    EXPECT_EQ(CycleHistogram::bucket_of(0), 0);
    EXPECT_EQ(CycleHistogram::bucket_of(1), 0);
    EXPECT_EQ(CycleHistogram::bucket_of(2), 1);
    EXPECT_EQ(CycleHistogram::bucket_of(3), 1);
    EXPECT_EQ(CycleHistogram::bucket_of(4), 2);
    EXPECT_EQ(CycleHistogram::bucket_of((uint64_t{1} << 39) - 1), 38);
    EXPECT_EQ(CycleHistogram::bucket_of(uint64_t{1} << 39),
              CycleHistogram::kBuckets - 1);
    EXPECT_EQ(CycleHistogram::bucket_of(~uint64_t{0}),
              CycleHistogram::kBuckets - 1);
}

TEST(CycleHistogram, SnapshotCountsAndExactMean)
{
    CycleHistogram h;
    const uint64_t values[] = {0, 1, 2, 3, 4, 1024, ~uint64_t{0}};
    uint64_t sum = 0;
    for (uint64_t v : values) {
        h.add(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), sum);

    const LogHistogram snap = h.snapshot();
    EXPECT_EQ(snap.total(), 7u);
    EXPECT_EQ(snap.bucket_count(0), 2u); // 0 and 1
    EXPECT_EQ(snap.bucket_count(1), 2u); // 2 and 3
    EXPECT_EQ(snap.bucket_count(2), 1u); // 4
    EXPECT_EQ(snap.bucket_count(10), 1u); // 1024
    EXPECT_EQ(snap.bucket_count(CycleHistogram::kBuckets - 1), 1u);

    const StageStats stats = summarize(h);
    EXPECT_EQ(stats.count, 7u);
    EXPECT_DOUBLE_EQ(stats.mean_ns, cycles_to_ns(sum) / 7.0);
    EXPECT_GT(stats.p99_ns, 0.0);
}

TEST(CycleHistogram, EmptySummarizesToZero)
{
    CycleHistogram h;
    const StageStats stats = summarize(h);
    EXPECT_EQ(stats.count, 0u);
    EXPECT_EQ(stats.mean_ns, 0.0);
    EXPECT_EQ(stats.p99_ns, 0.0);
}

TEST(TraceRing, OverflowDropsInsteadOfBlocking)
{
    TraceRing ring(3, 8);
    ASSERT_EQ(ring.capacity(), 8u);
    for (uint64_t job = 0; job < 20; ++job)
        ring.record(EventKind::QuantumStart, job);
    EXPECT_EQ(ring.dropped(), 12u);

    std::vector<TraceEvent> out;
    EXPECT_EQ(ring.drain(out), 8u);
    ASSERT_EQ(out.size(), 8u);
    for (uint64_t i = 0; i < 8; ++i) {
        EXPECT_EQ(out[i].job, i) << "FIFO order: oldest events survive";
        EXPECT_EQ(out[i].tid, 3u);
        EXPECT_EQ(out[i].kind, EventKind::QuantumStart);
    }

    // After a drain the ring accepts events again.
    ring.record(EventKind::JobFinished, 99);
    out.clear();
    EXPECT_EQ(ring.drain(out), 1u);
    EXPECT_EQ(out[0].job, 99u);
}

TEST(MetricsRegistry, SnapshotWhileRunning)
{
    // One writer per worker slot hammers counters and histograms while
    // the main thread snapshots continuously: snapshots must never
    // tear (decreasing totals) and the final snapshot must be exact.
    constexpr int kWorkers = 2;
    constexpr uint64_t kIters = 200'000;
    MetricsRegistry reg(kWorkers, 64);

    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWorkers; ++w) {
        writers.emplace_back([&reg, &go, w] {
            while (!go.load())
                std::this_thread::yield();
            WorkerTelemetry &wt = reg.worker(w);
            for (uint64_t i = 0; i < kIters; ++i) {
                wt.counters.quanta.fetch_add(1, std::memory_order_relaxed);
                wt.counters.finished.fetch_add(1,
                                               std::memory_order_relaxed);
                wt.queue_cycles.add(i & 0xffff);
                wt.service_cycles.add(i & 0xff);
            }
        });
    }

    go.store(true);
    uint64_t last_quanta = 0;
    uint64_t last_finished = 0;
    for (int i = 0; i < 200; ++i) {
        const MetricsSnapshot snap = reg.snapshot();
        EXPECT_GE(snap.quanta, last_quanta);
        EXPECT_GE(snap.finished, last_finished);
        EXPECT_LE(snap.quanta, kWorkers * kIters);
        last_quanta = snap.quanta;
        last_finished = snap.finished;
    }
    for (auto &t : writers)
        t.join();

    const MetricsSnapshot fin = reg.snapshot();
    EXPECT_EQ(fin.quanta, kWorkers * kIters);
    EXPECT_EQ(fin.finished, kWorkers * kIters);
    EXPECT_EQ(fin.queueing.count, kWorkers * kIters);
    EXPECT_EQ(fin.service.count, kWorkers * kIters);
    EXPECT_FALSE(fin.to_string().empty());
}

TEST(MetricsRegistry, DrainTraceMergesSortedByTimestamp)
{
    MetricsRegistry reg(2, 64);
    // Interleave recording across three rings; rdcycles() stamps give a
    // globally meaningful order on an invariant-TSC host.
    for (uint64_t i = 0; i < 10; ++i) {
        reg.dispatcher().trace.record(EventKind::JobDispatched, i, 0);
        reg.worker(static_cast<int>(i % 2))
            .trace.record(EventKind::QuantumStart, i);
    }
    std::vector<TraceEvent> out;
    EXPECT_EQ(reg.drain_trace(out), 20u);
    for (size_t i = 1; i < out.size(); ++i)
        EXPECT_LE(out[i - 1].tsc, out[i].tsc);
}

std::vector<TraceEvent>
golden_events()
{
    // A fixed two-thread scenario: job 7 is dispatched, runs one full
    // quantum (ended by a probe yield), defers one expiry inside a
    // guard, and finishes in its second quantum.
    const auto ev = [](Cycles tsc, uint64_t job, uint32_t arg,
                       EventKind kind, uint8_t tid) {
        TraceEvent e;
        e.tsc = tsc;
        e.job = job;
        e.arg = arg;
        e.kind = kind;
        e.tid = tid;
        return e;
    };
    return {
        ev(1000, 7, 0, EventKind::JobDispatched, kDispatcherTid),
        ev(1100, 7, 0, EventKind::QuantumStart, 0),
        ev(3100, 7, 0, EventKind::ProbeYield, 0),
        ev(3200, 7, 1, EventKind::QuantumStart, 0),
        ev(4000, 7, 0, EventKind::GuardDeferredYield, 0),
        ev(4200, 7, 0, EventKind::JobFinished, 0),
    };
}

TEST(ChromeTrace, MatchesGoldenFile)
{
    ChromeTraceOptions opts;
    opts.cycles_per_ns = 1.0; // deterministic cycles -> us conversion
    std::ostringstream os;
    write_chrome_trace(os, golden_events(), opts);

    const std::string path =
        std::string(TQ_TEST_DATA_DIR) + "/trace_golden.json";
    std::ifstream golden(path);
    ASSERT_TRUE(golden.is_open()) << "missing golden file " << path;
    std::stringstream expected;
    expected << golden.rdbuf();
    EXPECT_EQ(os.str(), expected.str());
}

TEST(ChromeTrace, EmptyTraceIsValidJson)
{
    std::ostringstream os;
    write_chrome_trace(os, {}, ChromeTraceOptions{1.0});
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(os.str().back(), '\n');
}

TEST(WorkerStatsReader, TotalQuantaSurvivesWrap)
{
    // The shared counter is 32-bit and free to wrap (paper section 4);
    // the reader must keep a 64-bit cumulative total across the wrap.
    runtime::WorkerStatsLine line;
    runtime::WorkerStatsReader reader;

    line.total_quanta.store(0xffff'fffau);
    EXPECT_EQ(reader.read_total_quanta(line), 0xffff'fffaull);

    line.total_quanta.store(4u); // +10 with a 32-bit wrap in between
    EXPECT_EQ(reader.read_total_quanta(line), 0xffff'fffaull + 10);

    line.total_quanta.store(5u);
    EXPECT_EQ(reader.read_total_quanta(line), 0xffff'fffaull + 11);
}

TEST(RuntimeTelemetry, EndToEndSnapshotAndTrace)
{
    constexpr int kJobs = 24;
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.quantum_us = 2.0;
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.id;
    });
    rt.start();

    for (uint64_t i = 0; i < kJobs; ++i) {
        runtime::Request r;
        r.id = i;
        r.gen_cycles = rdcycles();
        r.payload = 20'000; // 20us: several quanta under PS
        ASSERT_TRUE(rt.submit(r));
    }
    std::vector<runtime::Response> responses;
    while (responses.size() < kJobs) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    rt.stop();

    const MetricsSnapshot snap = rt.telemetry_snapshot();
    std::vector<TraceEvent> events;
    rt.drain_trace(events);

    if (!kEnabled) {
        EXPECT_EQ(snap.finished, 0u);
        EXPECT_EQ(events.size(), 0u);
        return;
    }

    EXPECT_EQ(snap.dispatched, kJobs);
    EXPECT_EQ(snap.admitted, kJobs);
    EXPECT_EQ(snap.finished, kJobs);
    EXPECT_GE(snap.quanta, kJobs); // 20us jobs need > 1 quantum each
    EXPECT_EQ(snap.quanta, snap.yields + snap.finished)
        << "every slice ends in a probe yield or a completion";
    // The wrap-tolerant stats-line view counts *preempted* quanta, which
    // is exactly the probe-yield count.
    EXPECT_EQ(snap.stats_total_quanta, snap.yields);
    EXPECT_EQ(snap.dispatch.count, kJobs);
    EXPECT_EQ(snap.queueing.count, kJobs);
    EXPECT_EQ(snap.service.count, kJobs);
    EXPECT_GT(snap.service.mean_ns, 0.0);

    int dispatched = 0, starts = 0, finishes = 0;
    for (const TraceEvent &ev : events) {
        switch (ev.kind) {
          case EventKind::JobDispatched:
            ++dispatched;
            EXPECT_EQ(ev.tid, kDispatcherTid);
            break;
          case EventKind::QuantumStart:
            ++starts;
            break;
          case EventKind::JobFinished:
            ++finishes;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(dispatched, kJobs);
    EXPECT_EQ(finishes, kJobs);
    EXPECT_EQ(static_cast<uint64_t>(starts), snap.quanta);
}

} // namespace
} // namespace tq::telemetry
