/**
 * @file
 * Tests for the Table-3 benchmark program suite: every program builds,
 * validates, executes within budget, and reacts to instrumentation the
 * way its structure class predicts. Parameterized over all 27 programs.
 */
#include <gtest/gtest.h>

#include "compiler/exec.h"
#include "compiler/passes.h"
#include "compiler/report.h"
#include "compiler/verifier.h"
#include "progs/programs.h"

namespace tq::progs {
namespace {

using compiler::ExecConfig;
using compiler::ExecResult;
using compiler::Module;
using compiler::PassConfig;

class AllPrograms : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllPrograms, BuildsAndValidates)
{
    Module m = make_program(GetParam());
    EXPECT_EQ(m.name, GetParam());
    EXPECT_GE(m.functions.size(), 1u);
    EXPECT_EQ(m.probe_count(), 0) << "programs start uninstrumented";
}

TEST_P(AllPrograms, DeterministicConstruction)
{
    Module a = make_program(GetParam());
    Module b = make_program(GetParam());
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (size_t f = 0; f < a.functions.size(); ++f)
        EXPECT_EQ(compiler::to_string(a.functions[f]),
                  compiler::to_string(b.functions[f]));
}

TEST_P(AllPrograms, ExecutesWithinBudget)
{
    Module m = make_program(GetParam());
    ExecConfig cfg;
    cfg.seed = 7;
    const ExecResult r = execute(m, cfg);
    EXPECT_GT(r.real_instrs, 50'000u) << "too small to yield often";
    EXPECT_LT(r.real_instrs, 30'000'000u) << "too slow for the suite";
    EXPECT_GT(r.total_cycles, 0.0);
}

TEST_P(AllPrograms, TqPassBoundsStretchAndYields)
{
    Module m = make_program(GetParam());
    PassConfig pcfg;
    pcfg.bound = 400;
    run_tq_pass(m, pcfg);
    EXPECT_GT(m.probe_count(), 0);

    ExecConfig cfg;
    cfg.quantum_cycles = 4200; // 2us at 2.1 GHz
    cfg.seed = 7;
    const ExecResult r = execute(m, cfg);
    EXPECT_GT(r.yields, 20u) << "program must be preemptable";
    // Placement invariant, statically proven: the verifier's whole-module
    // worst-case probe-free stretch dominates any execution.
    const compiler::VerifyResult vr = compiler::verify_module(m);
    ASSERT_TRUE(vr.ok) << compiler::report(vr, m);
    ASSERT_NE(vr.max_stretch, compiler::kUnboundedStretch);
    EXPECT_LE(r.max_stretch_instrs, vr.max_stretch);
}

TEST_P(AllPrograms, TqCheaperPerProbeSiteThanCi)
{
    Module base = make_program(GetParam());
    PassConfig pcfg;
    Module ci = base;
    Module tq_mod = base;
    run_ci_pass(ci, pcfg);
    run_tq_pass(tq_mod, pcfg);
    EXPECT_LT(tq_mod.probe_count(), ci.probe_count())
        << "TQ must place fewer probes than per-block counting";
}

INSTANTIATE_TEST_SUITE_P(
    Table3, AllPrograms, ::testing::ValuesIn(program_names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(ProgramNames, MatchesPaperCount)
{
    // Paper text says 26 workloads; its Table 3 lists these 27 rows.
    EXPECT_EQ(program_names().size(), 27u);
}

TEST(RocksdbGet, CiNeedsManyMoreProbesThanTq)
{
    // Section 3.1 anecdote: CI adds >1000 probes to a 2us GET (60%
    // overhead); TQ needs ~40 with far lower overhead. Shapes to check:
    // probe-count ratio >= ~10x and overhead strictly lower for TQ.
    Module base = make_rocksdb_get();
    PassConfig pcfg;
    pcfg.bound = 120;
    ExecConfig cfg;
    cfg.quantum_cycles = 4200;

    const auto ci = compiler::measure_technique(
        base, compiler::ProbeKind::CiCounter, pcfg, cfg);
    const auto tq = compiler::measure_technique(
        base, compiler::ProbeKind::TqClock, pcfg, cfg);

    EXPECT_GE(ci.static_probes, 5 * tq.static_probes);
    EXPECT_LT(tq.overhead, ci.overhead);
}

TEST(RocksdbGet, GetCostRoughlyMicroseconds)
{
    Module m = make_rocksdb_get();
    ExecConfig cfg;
    const ExecResult r = execute(m, cfg);
    // 2000 GETs; each should land within loose 0.2us..20us bounds.
    const double per_get_us =
        r.total_cycles / cfg.cost.cycles_per_ns / 1000.0 / 2000.0;
    EXPECT_GT(per_get_us, 0.2);
    EXPECT_LT(per_get_us, 20.0);
}

} // namespace
} // namespace tq::progs
