/**
 * @file
 * Cross-module integration tests:
 *
 *  - MiniKV served by the real TQ runtime: scans preempted via the
 *    store's own probe sites, GETs overtake in-flight scans.
 *  - TPC-C on the runtime with per-worker shards.
 *  - The compiler -> simulator pipeline of the breakdown study: CI
 *    overhead measured on instrumented IR degrades simulated capacity.
 *  - The real centralized baseline vs real TQ on the same workload:
 *    same answers, different scheduling machinery.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/centralized.h"
#include "compiler/report.h"
#include "net/runtime_server.h"
#include "probe/probe.h"
#include "progs/programs.h"
#include "runtime/runtime.h"
#include "sim/sweep.h"
#include "sim/two_level.h"
#include "workloads/minikv.h"
#include "workloads/spin.h"
#include "workloads/tpcc.h"

namespace tq {
namespace {

using runtime::Request;
using runtime::Response;
using runtime::Runtime;
using runtime::RuntimeConfig;

std::vector<Response>
run_requests(Runtime &rt, const std::vector<Request> &reqs,
             double timeout_sec = 120.0)
{
    for (const auto &r : reqs)
        while (!rt.submit(r))
            std::this_thread::yield();
    std::vector<Response> responses;
    const Cycles deadline = rdcycles() + ns_to_cycles(timeout_sec * 1e9);
    while (responses.size() < reqs.size() && rdcycles() < deadline) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    return responses;
}

workloads::MiniKV &
kv_shard()
{
    // The shard loads lazily inside a probed context. Suspending a
    // coroutine mid-initialization of a thread_local would let another
    // task re-enter the initializer — exactly the reentrancy hazard the
    // paper flags (section 6) — so initialization is a critical section.
    thread_local auto kv = [] {
        PreemptGuard guard;
        auto fresh = std::make_unique<workloads::MiniKV>(3, 64);
        fresh->load_sequential(30'000);
        return fresh;
    }();
    return *kv;
}

TEST(Integration, MiniKvGetsOvertakeScansOnRealRuntime)
{
    RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 2.0;
    Runtime rt(cfg, [](const Request &req) {
        uint64_t checksum = 0;
        if (req.job_class == 1) {
            kv_shard().scan(0, 30'000, &checksum); // multi-ms scan
        } else {
            std::string v;
            kv_shard().get(req.payload % 30'000, &v);
            checksum = v.empty() ? 0 : static_cast<uint64_t>(v[0]);
        }
        return checksum;
    });
    rt.start();

    std::vector<Request> reqs;
    Request scan;
    scan.id = 999;
    scan.gen_cycles = rdcycles();
    scan.job_class = 1;
    reqs.push_back(scan);
    for (uint64_t i = 0; i < 10; ++i) {
        Request get;
        get.id = i;
        get.gen_cycles = rdcycles();
        get.job_class = 0;
        get.payload = i * 977;
        reqs.push_back(get);
    }
    const auto responses = run_requests(rt, reqs);
    ASSERT_EQ(responses.size(), reqs.size());

    Cycles scan_done = 0;
    Cycles last_get = 0;
    for (const auto &r : responses) {
        if (r.id == 999) {
            scan_done = r.done_cycles;
            EXPECT_NE(r.result, 0u) << "scan checksum must be real";
        } else {
            last_get = std::max(last_get, r.done_cycles);
        }
    }
    EXPECT_LT(last_get, scan_done)
        << "GETs must preempt the in-flight SCAN via MiniKV's own probes";
    rt.stop();
}

workloads::TpccEmulator &
tpcc_shard()
{
    // See kv_shard(): no yielding while the thread_local constructs.
    thread_local auto db = [] {
        PreemptGuard guard;
        return std::make_unique<workloads::TpccEmulator>(11);
    }();
    return *db;
}

TEST(Integration, TpccTransactionsOnRealRuntime)
{
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.quantum_us = 2.0;
    Runtime rt(cfg, [](const Request &req) {
        Rng rng(req.payload);
        return tpcc_shard().run(
            static_cast<workloads::TpccTxn>(req.job_class), rng);
    });
    rt.start();

    Rng rng(5);
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 100; ++i) {
        Request r;
        r.id = i;
        r.gen_cycles = rdcycles();
        r.job_class = static_cast<int>(workloads::sample_tpcc_mix(rng));
        r.payload = i;
        reqs.push_back(r);
    }
    const auto responses = run_requests(rt, reqs);
    EXPECT_EQ(responses.size(), reqs.size());
    rt.stop();
}

TEST(Integration, MeasuredCiOverheadDegradesSimulatedCapacity)
{
    // The fig11/12 pipeline: instrument the rocksdb-get IR with CI,
    // measure its probing overhead, feed it into the cluster simulator,
    // and confirm the capacity ordering TQ > TQ-IC the paper reports.
    compiler::PassConfig pcfg;
    pcfg.bound = 120;
    compiler::ExecConfig ecfg;
    ecfg.quantum_cycles = 2.0 * 1e3 * ecfg.cost.cycles_per_ns;
    const auto m = progs::make_rocksdb_get();
    const auto ci = compiler::measure_technique(
        m, compiler::ProbeKind::CiCounter, pcfg, ecfg);
    const auto tq_pass = compiler::measure_technique(
        m, compiler::ProbeKind::TqClock, pcfg, ecfg);
    ASSERT_GT(ci.overhead, tq_pass.overhead);
    ASSERT_GT(ci.overhead, 0.1) << "CI on branchy KV code is expensive";

    auto dist = workload_table::rocksdb(0.005);
    sim::TwoLevelConfig base;
    base.duration = ms(20);
    auto capacity = [&](double probe_frac) {
        sim::TwoLevelConfig cfg = base;
        cfg.probe_overhead_frac = probe_frac;
        return sim::max_rate_under_slo(
            [&](double rate) {
                return sim::run_two_level(cfg, *dist, rate);
            },
            sim::class_sojourn_slo("GET", us(50)), mrps(0.2), mrps(3.5),
            7);
    };
    const double cap_tq = capacity(tq_pass.overhead);
    const double cap_ci = capacity(ci.overhead);
    EXPECT_LT(cap_ci, cap_tq)
        << "TQ-IC must sustain less load (paper: ~62% of TQ)";
    EXPECT_GT(cap_ci, 0.0);
}

// Arrival parity (scenario diversity tentpole): a seeded MMPP schedule
// must produce the identical arrival-time sequence through the real
// runtime's load generator and through the discrete-event simulator —
// same seed, same spec, same draw interleave, compared to the last bit.
TEST(Integration, MmppArrivalSequenceIdenticalAcrossRuntimeAndSim)
{
    constexpr double kRateMrps = 0.02;
    constexpr double kDurationSec = 0.05;
    constexpr uint64_t kSeed = 7;
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::OnOff;
    spec.onoff.on_mult = 4.0;
    spec.onoff.off_mult = 0.25;

    std::vector<double> send_trace;
    {
        RuntimeConfig cfg;
        cfg.num_workers = 2;
        Runtime rt(cfg, [](const Request &req) {
            workloads::spin_for(static_cast<double>(req.payload));
            return req.id;
        });
        rt.start();
        net::RuntimeServer server(rt);
        FixedDist dist(us(1), "spin");
        net::LoadGenConfig lg;
        lg.rate_mrps = kRateMrps;
        lg.duration_sec = kDurationSec;
        lg.seed = kSeed;
        lg.arrival = spec;
        lg.send_trace = &send_trace;
        lg.metrics = &rt.metrics();
        const net::ClientStats stats = net::run_open_loop(
            server, dist, net::spin_request_factory(), lg);
        rt.stop();
        EXPECT_EQ(stats.completed, stats.submitted);
        EXPECT_EQ(stats.send_failures, 0u);
#if defined(TQ_TELEMETRY_ENABLED)
        // Phase boundaries were crossed, so the per-phase burst
        // occupancy histogram is populated.
        EXPECT_GT(rt.telemetry_snapshot().burst_phases, 0u);
#endif
    }

    std::vector<double> sim_trace;
    {
        FixedDist dist(us(1), "spin");
        sim::TwoLevelConfig cfg;
        cfg.duration = kDurationSec * 1e9;
        cfg.seed = kSeed;
        cfg.arrival = spec;
        cfg.arrival_trace = &sim_trace;
        const sim::SimResult r =
            sim::run_two_level(cfg, dist, mrps(kRateMrps));
        EXPECT_FALSE(r.saturated); // a drop would skip a service draw
    }

    ASSERT_GT(send_trace.size(), 100u);
    ASSERT_EQ(send_trace.size(), sim_trace.size());
    for (size_t i = 0; i < send_trace.size(); ++i)
        ASSERT_DOUBLE_EQ(send_trace[i], sim_trace[i]);
}

// Scatter-gather through the real dispatcher: every logical request is
// expanded into k shards (each dispatched with its own policy pick),
// the client gathers them, and stats stay in logical units.
TEST(Integration, FanoutRequestsGatherOnRealRuntime)
{
    RuntimeConfig cfg;
    cfg.num_workers = 4;
    Runtime rt(cfg, [](const Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.id;
    });
    rt.start();
    net::RuntimeServer server(rt);

    FixedDist dist(us(1), "spin");
    net::LoadGenConfig lg;
    lg.rate_mrps = 0.005;
    lg.duration_sec = 0.1;
    lg.fanout = 4;
    lg.metrics = &rt.metrics();
    const net::ClientStats stats = net::run_open_loop(
        server, dist, net::spin_request_factory(), lg);

    EXPECT_GT(stats.submitted, 100u);
    EXPECT_EQ(stats.send_failures, 0u);
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.timed_out, 0u);
    // The dispatcher saw one pick+push per shard.
    EXPECT_EQ(rt.dispatched(), stats.submitted * 4);
    rt.stop();
#if defined(TQ_TELEMETRY_ENABLED)
    const telemetry::MetricsSnapshot snap = rt.telemetry_snapshot();
    // One spread sample per gathered logical request.
    EXPECT_EQ(snap.fanout_spread.count, stats.completed);
    EXPECT_EQ(snap.finished, stats.submitted * 4);
#endif
}

// Shard-assignment parity: the runtime and the simulator both derive
// dispatcher-shard ownership from tq::shard_span (common/shard.h), so
// checking the runtime's advertised spans against that single source —
// and that the degenerate num_dispatchers = 1 case really is one shard
// owning every worker, serving every job — pins the two engines to the
// same worker partition.
TEST(Integration, ShardAssignmentMatchesSharedSpanFunction)
{
    auto handler = [](const Request &req) { return req.id; };
    const struct { int workers, shards; } topologies[] = {
        {1, 1}, {4, 1}, {4, 2}, {5, 2}, {8, 3}, {16, 4},
    };
    for (const auto &t : topologies) {
        RuntimeConfig cfg;
        cfg.num_workers = t.workers;
        cfg.num_dispatchers = t.shards;
        Runtime rt(cfg, handler);
        ASSERT_EQ(rt.num_dispatcher_shards(), t.shards);
        int covered = 0;
        for (int s = 0; s < t.shards; ++s) {
            const ShardSpan want =
                shard_span(t.workers, t.shards, s);
            const ShardSpan got = rt.shard_workers(s);
            EXPECT_EQ(got.first, want.first)
                << "W=" << t.workers << " S=" << t.shards << " s=" << s;
            EXPECT_EQ(got.count, want.count)
                << "W=" << t.workers << " S=" << t.shards << " s=" << s;
            EXPECT_EQ(got.first, covered) << "spans must tile in order";
            covered += got.count;
        }
        EXPECT_EQ(covered, t.workers) << "spans must cover every worker";
    }

    // num_dispatchers = 1 (the configuration every pre-sharding figure
    // runs): one span covering all workers, and every dispatched job is
    // accounted to shard 0 — the same degenerate model the simulator's
    // byte-identical D = 1 bypass implements.
    RuntimeConfig cfg;
    cfg.num_workers = 3;
    Runtime rt(cfg, handler);
    ASSERT_EQ(rt.num_dispatcher_shards(), 1);
    EXPECT_EQ(rt.shard_workers(0).first, 0);
    EXPECT_EQ(rt.shard_workers(0).count, 3);
    rt.start();
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 48; ++i) {
        Request r;
        r.id = i;
        r.gen_cycles = rdcycles();
        reqs.push_back(r);
    }
    const auto responses = run_requests(rt, reqs);
    EXPECT_EQ(responses.size(), reqs.size());
    EXPECT_EQ(rt.dispatched(0), reqs.size());
    EXPECT_EQ(rt.dispatched(), reqs.size());
    rt.stop();
}

TEST(Integration, CentralizedAndTwoLevelAgreeOnResults)
{
    // Same handler, same requests, two real scheduling architectures:
    // answers must match exactly; only scheduling differs.
    auto handler = [](const Request &req) {
        workloads::spin_for(1000.0);
        return req.payload * 3;
    };
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 60; ++i) {
        Request r;
        r.id = i;
        r.gen_cycles = rdcycles();
        r.payload = i;
        reqs.push_back(r);
    }

    std::map<uint64_t, uint64_t> tq_results;
    {
        RuntimeConfig cfg;
        cfg.num_workers = 2;
        Runtime rt(cfg, handler);
        rt.start();
        for (const auto &r : run_requests(rt, reqs))
            tq_results[r.id] = r.result;
        rt.stop();
    }
    std::map<uint64_t, uint64_t> ct_results;
    {
        baselines::CentralizedConfig cfg;
        cfg.num_workers = 2;
        baselines::CentralizedRuntime rt(cfg, handler);
        rt.start();
        for (const auto &r : reqs)
            while (!rt.submit(r))
                std::this_thread::yield();
        std::vector<Response> responses;
        const Cycles deadline = rdcycles() + ns_to_cycles(120e9);
        while (responses.size() < reqs.size() && rdcycles() < deadline) {
            rt.drain(responses);
            std::this_thread::yield();
        }
        for (const auto &r : responses)
            ct_results[r.id] = r.result;
        rt.stop();
    }
    ASSERT_EQ(tq_results.size(), reqs.size());
    ASSERT_EQ(ct_results.size(), reqs.size());
    for (const auto &req : reqs) {
        EXPECT_EQ(tq_results[req.id], req.payload * 3);
        EXPECT_EQ(ct_results[req.id], tq_results[req.id]);
    }
}

TEST(Integration, PerClassEffectiveQuantumOrderingMatchesSim)
{
    // The sim mirrors the runtime's per-class quanta (DESIGN.md §4i):
    // with {2us, 0.5us} budgets on a bimodal mix, both must record a
    // larger mean granted slice for class 0 than class 1. The runtime
    // measures armed budgets in cycles and the sim measures granted
    // slices in simulated ns, so the parity claim is the *ordering*
    // (and both being in their configured ballpark), not the values.
    // Longs kept short-ish: at a 0.5us quantum each long is ~80 slices,
    // and sanitizer builds inflate per-slice switch cost ~100x.
    constexpr double kShortUs = 1.0, kLongUs = 40.0;

    double sim_eff0 = 0, sim_eff1 = 0;
    {
        MixtureDist dist({{"Short", us(kShortUs), 0.9},
                          {"Long", us(kLongUs), 0.1}});
        sim::TwoLevelConfig cfg;
        cfg.duration = ms(30);
        cfg.seed = 42;
        cfg.class_quantum = {us(2), us(0.5)};
        cfg.deficit_clamp = us(8);
        cfg.starvation_promote_after = 128;
        const sim::SimResult r = sim::run_two_level(cfg, dist, mrps(0.5));
        ASSERT_FALSE(r.saturated);
        ASSERT_EQ(r.class_effective_quantum.size(), 2u);
        sim_eff0 = r.class_effective_quantum[0];
        sim_eff1 = r.class_effective_quantum[1];
    }

    double rt_eff0 = 0, rt_eff1 = 0;
    {
        RuntimeConfig cfg;
        cfg.num_workers = 2;
        cfg.class_quantum_us = {2.0, 0.5};
        Runtime rt(cfg, [](const Request &req) {
            workloads::spin_for(static_cast<double>(req.payload));
            return req.id;
        });
        rt.start();
        std::vector<Request> reqs;
        for (uint64_t i = 0; i < 60; ++i) {
            Request r;
            r.id = i;
            r.gen_cycles = rdcycles();
            r.job_class = i % 10 == 0 ? 1 : 0;
            r.payload = static_cast<uint64_t>(
                (r.job_class == 1 ? kLongUs : kShortUs) * 1000.0);
            reqs.push_back(r);
        }
        const auto responses = run_requests(rt, reqs);
        rt.stop();
        ASSERT_EQ(responses.size(), reqs.size());
        uint64_t cycles0 = 0, grants0 = 0, cycles1 = 0, grants1 = 0;
        for (int w = 0; w < cfg.num_workers; ++w) {
            const auto &c0 = rt.worker(w).class_sched(0);
            const auto &c1 = rt.worker(w).class_sched(1);
            cycles0 += c0.granted_cycles;
            grants0 += c0.grants;
            cycles1 += c1.granted_cycles;
            grants1 += c1.grants;
        }
        ASSERT_GT(grants0, 0u);
        ASSERT_GT(grants1, 0u);
        rt_eff0 = cycles_to_ns(cycles0 / grants0);
        rt_eff1 = cycles_to_ns(cycles1 / grants1);
    }

    // Same ordering on both sides of the mirror.
    EXPECT_GT(sim_eff0, sim_eff1);
    EXPECT_GT(rt_eff0, rt_eff1);
    // Both sides grant class 1 no more than its 0.5us base budget
    // (longs never bank credit) and class 0 at least ~its service
    // demand per grant.
    EXPECT_LE(sim_eff1, us(0.5) * 1.01);
    EXPECT_LE(rt_eff1, us(0.5) * 1.01 + 100.0);
    EXPECT_GE(sim_eff0, us(kShortUs) * 0.9);
    // The runtime's class-0 floor is base/4 + 1 (DESIGN.md §4i): under
    // sanitizers the inflated per-slice switch cost drives even the
    // shorts into max debt, so only the floor — not the 2us base — is
    // a robust lower bound.
    EXPECT_GE(rt_eff0, us(2.0) / 4);
}

} // namespace
} // namespace tq
