/**
 * @file
 * Synthetic benchmark programs for the instrumentation study (Table 3).
 *
 * The paper evaluates its compiler pass on 26 programs from SPLASH-2,
 * PARSEC and Phoenix, chosen for their structural diversity. Without
 * those binaries (or LLVM) available, each entry here is a mini-IR
 * program mimicking the *dominant control structure* of the same-named
 * kernel: nesting depth, loop-trip knowability, induction variables,
 * branchiness, call trees, and instruction mix. The mapping is
 * documented per program in programs.cc.
 *
 * make_program(name) is deterministic: the same name always produces the
 * same module, so instrumentation results are reproducible.
 */
#ifndef TQ_PROGS_PROGRAMS_H
#define TQ_PROGS_PROGRAMS_H

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace tq::progs {

/** Names of the 26 Table-3 workloads, in the paper's order. */
const std::vector<std::string> &program_names();

/** Build the named workload module. Fatal on unknown names. */
compiler::Module make_program(const std::string &name);

/**
 * The RocksDB GET stand-in used by the section 3.1 anecdote (CI inserts
 * 1000+ probes / ~60% overhead on a 2us GET; TQ needs ~40 probes):
 * a pointer-chasing skiplist-style lookup with branchy comparisons.
 */
compiler::Module make_rocksdb_get();

} // namespace tq::progs

#endif // TQ_PROGS_PROGRAMS_H
