#include "progs/programs.h"

#include <functional>
#include <map>

#include "common/check.h"
#include "compiler/builder.h"

namespace tq::progs {

using compiler::Function;
using compiler::FunctionBuilder;
using compiler::Module;
using compiler::Op;

namespace {

/**
 * Archetype: doubly/triply nested numeric loops over a grid, as in
 * SPLASH-2's ocean / lu / fft kernels. Inner trips may be statically
 * known (ScalarEvolution-style) and usually expose induction variables.
 */
Module
grid_kernel(const std::string &name, uint64_t reps, uint64_t rows,
            uint64_t cols, bool trips_known, bool induction, int body_ialu,
            int body_loads, int body_fmul, int body_fdiv)
{
    FunctionBuilder fb(name);
    const int entry = fb.add_block();
    const int outer = fb.add_block();  // row loop header
    const int inner = fb.add_block();  // column loop header+latch
    const int outer_latch = fb.add_block();
    const int exit = fb.add_block();

    fb.jump(entry, outer);
    fb.ops(outer, Op::IAlu, 3).ops(outer, Op::Load, 1);
    fb.jump(outer, inner);
    fb.mix(inner, body_ialu, body_loads, 1, body_fmul, body_fdiv);
    fb.latch(inner, inner, outer_latch, cols);
    fb.loop_facts(inner,
                  trips_known ? std::optional<uint64_t>(cols) : std::nullopt,
                  induction);
    fb.ops(outer_latch, Op::Store, 2);
    fb.latch(outer_latch, outer, exit, rows);
    fb.loop_facts(outer,
                  trips_known ? std::optional<uint64_t>(rows) : std::nullopt,
                  induction);
    fb.ret(exit);
    Function kernel = fb.build();

    // Entry function repeats the kernel `reps` times.
    FunctionBuilder eb(name + "_main");
    const int e0 = eb.add_block();
    const int body = eb.add_block();
    const int done = eb.add_block();
    eb.jump(e0, body);
    eb.call(body, 1);
    eb.latch(body, body, done, reps);
    eb.ret(done);

    Module m;
    m.name = name;
    m.functions.push_back(eb.build());
    m.functions.push_back(std::move(kernel));
    return m;
}

/**
 * Archetype: O(n^2) particle interactions with a per-pair force function,
 * as in water-* / barnes / fmm. The force function is branchy and
 * division-heavy; outer trips are data-dependent (unknown).
 */
Module
pairwise_kernel(const std::string &name, uint64_t reps, uint64_t n_outer,
                uint64_t n_inner, int force_fdiv, double cutoff_prob)
{
    // functions: 0 = main, 1 = outer sweep, 2 = force
    FunctionBuilder force(name + "_force");
    {
        const int b0 = force.add_block();
        const int near = force.add_block();
        const int far = force.add_block();
        const int out = force.add_block();
        force.mix(b0, 6, 2, 0, 2, 0);
        force.branch(b0, near, far, cutoff_prob);
        force.mix(near, 8, 2, 1, 4, force_fdiv);
        force.jump(near, out);
        force.mix(far, 3, 1, 0, 1, 0);
        force.jump(far, out);
        force.ops(out, Op::Store, 1);
        force.ret(out);
    }

    FunctionBuilder sweep(name + "_sweep");
    {
        const int b0 = sweep.add_block();
        const int outer = sweep.add_block();
        const int inner = sweep.add_block();
        const int olatch = sweep.add_block();
        const int exit = sweep.add_block();
        sweep.jump(b0, outer);
        sweep.ops(outer, Op::Load, 2).ops(outer, Op::IAlu, 2);
        sweep.jump(outer, inner);
        sweep.ops(inner, Op::IAlu, 2).call(inner, 2);
        sweep.latch(inner, inner, olatch, n_inner);
        sweep.loop_facts(inner, std::nullopt, true);
        sweep.ops(olatch, Op::Store, 1);
        sweep.latch(olatch, outer, exit, n_outer);
        sweep.loop_facts(outer, std::nullopt, false);
        sweep.ret(exit);
    }

    FunctionBuilder eb(name + "_main");
    const int e0 = eb.add_block();
    const int body = eb.add_block();
    const int done = eb.add_block();
    eb.jump(e0, body);
    eb.call(body, 1);
    eb.latch(body, body, done, reps);
    eb.ret(done);

    Module m;
    m.name = name;
    m.functions.push_back(eb.build());
    m.functions.push_back(sweep.build());
    m.functions.push_back(force.build());
    return m;
}

/**
 * Archetype: one hot self-loop with a tiny body over a big input, as in
 * Phoenix's histogram / linear-regression / string-match. This is the
 * worst case for CI (a probe in the only block => probe per handful of
 * instructions) and the best case for TQ's loop gadgets.
 */
Module
scan_kernel(const std::string &name, uint64_t items, int body_ialu,
            int body_loads, bool induction, double branch_prob)
{
    FunctionBuilder fb(name + "_main");
    const int entry = fb.add_block();
    const int loop = fb.add_block();
    const int rare = fb.add_block();   // infrequent slow path (match found)
    const int latch = fb.add_block();
    const int exit = fb.add_block();

    fb.ops(entry, Op::IAlu, 4);
    fb.jump(entry, loop);
    fb.mix(loop, body_ialu, body_loads, 0);
    fb.branch(loop, rare, latch, branch_prob);
    fb.loop_facts(loop, std::nullopt, induction);
    fb.mix(rare, 10, 2, 2);
    fb.jump(rare, latch);
    fb.latch(latch, loop, exit, items);
    fb.ret(exit);

    Module m;
    m.name = name;
    m.functions.push_back(fb.build());
    return m;
}

/**
 * Archetype: tight *single-block* self loop (memset/radix-pass style) —
 * the case the paper's self-loop cloning optimization targets.
 */
Module
selfloop_kernel(const std::string &name, uint64_t reps, uint64_t items,
                int body_ialu, int body_loads)
{
    FunctionBuilder fb(name + "_main");
    const int entry = fb.add_block();
    const int loop = fb.add_block();
    const int between = fb.add_block();
    const int exit = fb.add_block();

    fb.jump(entry, loop);
    fb.mix(loop, body_ialu, body_loads, 1);
    fb.latch(loop, loop, between, items);
    fb.loop_facts(loop, std::nullopt, false); // trip is data dependent
    fb.ops(between, Op::IAlu, 6);
    fb.latch(between, loop, exit, reps);
    fb.ret(exit);

    Module m;
    m.name = name;
    m.functions.push_back(fb.build());
    return m;
}

/**
 * Archetype: recursive traversal (bounded-depth call chain) with branchy
 * nodes, as in raytrace / volrend / radiosity. Each level is its own
 * function so the interprocedural part of the pass is exercised.
 */
Module
tree_kernel(const std::string &name, uint64_t reps, int depth,
            double descend_prob, int node_work)
{
    Module m;
    m.name = name;

    FunctionBuilder eb(name + "_main");
    const int e0 = eb.add_block();
    const int body = eb.add_block();
    const int done = eb.add_block();
    eb.jump(e0, body);
    eb.call(body, 1);
    eb.latch(body, body, done, reps);
    eb.ret(done);
    m.functions.push_back(eb.build());

    // Level functions 1..depth; level i calls i+1 twice with probability.
    for (int level = 1; level <= depth; ++level) {
        FunctionBuilder fb(name + "_lvl" + std::to_string(level));
        const int b0 = fb.add_block();
        const int descend = fb.add_block();
        const int leaf = fb.add_block();
        const int out = fb.add_block();
        fb.mix(b0, node_work, 3, 0, 2, 0);
        if (level < depth) {
            fb.branch(b0, descend, leaf, descend_prob);
            fb.call(descend, level + 1).call(descend, level + 1);
            fb.jump(descend, out);
        } else {
            fb.branch(b0, leaf, leaf, 1.0);
        }
        fb.mix(leaf, 6, 2, 1, 1, 1);
        fb.jump(leaf, out);
        fb.ops(out, Op::Store, 1);
        fb.ret(out);
        m.functions.push_back(fb.build());
    }
    return m;
}

/**
 * Archetype: triangular solve — nested loops whose inner trip depends on
 * the outer index (unknown statically), as in cholesky / lu-nc. Also
 * mixes in calls to an uninstrumented external (BLAS-like) routine.
 */
Module
triangular_kernel(const std::string &name, uint64_t reps, uint64_t n,
                  double ext_cost)
{
    FunctionBuilder fb(name + "_kernel");
    const int b0 = fb.add_block();
    const int outer = fb.add_block();
    const int mid = fb.add_block();
    const int inner = fb.add_block();
    const int mid_latch = fb.add_block();
    const int outer_latch = fb.add_block();
    const int exit = fb.add_block();

    fb.jump(b0, outer);
    fb.ops(outer, Op::Load, 1).ops(outer, Op::FDiv, 1);
    fb.jump(outer, mid);
    fb.ops(mid, Op::IAlu, 2);
    fb.jump(mid, inner);
    fb.mix(inner, 4, 2, 1, 2, 0);
    fb.latch(inner, inner, mid_latch, n / 2); // avg trip; unknown statically
    fb.loop_facts(inner, std::nullopt, true);
    if (ext_cost > 0)
        fb.ext_call(mid_latch, ext_cost);
    fb.latch(mid_latch, mid, outer_latch, n / 4);
    fb.loop_facts(mid, std::nullopt, false);
    fb.ops(outer_latch, Op::Store, 1);
    fb.latch(outer_latch, outer, exit, n);
    fb.loop_facts(outer, std::nullopt, false);
    fb.ret(exit);

    FunctionBuilder eb(name + "_main");
    const int e0 = eb.add_block();
    const int body = eb.add_block();
    const int done = eb.add_block();
    eb.jump(e0, body);
    eb.call(body, 1);
    eb.latch(body, body, done, reps);
    eb.ret(done);

    Module m;
    m.name = name;
    m.functions.push_back(eb.build());
    m.functions.push_back(fb.build());
    return m;
}

/**
 * Archetype: multi-phase pipeline — several loops of different shapes in
 * sequence with data-dependent branches between them (PARSEC-style
 * blackscholes / swaptions / streamcluster).
 */
Module
pipeline_kernel(const std::string &name, uint64_t reps, uint64_t phase_items,
                int phases, int fdiv_per_item)
{
    FunctionBuilder fb(name + "_kernel");
    const int b0 = fb.add_block();
    fb.ops(b0, Op::IAlu, 4);
    for (int p = 0; p < phases; ++p) {
        const int header = fb.add_block();
        const int slow = fb.add_block();
        const int latch = fb.add_block();
        if (p == 0)
            fb.jump(b0, header);
        fb.mix(header, 6 + 2 * p, 2, 1, 2, p == 0 ? fdiv_per_item : 0);
        fb.branch(header, slow, latch, 0.15);
        fb.loop_facts(header, std::nullopt, p % 2 == 0);
        fb.mix(slow, 8, 3, 1, 2, 1);
        fb.jump(slow, latch);
        // target_else temporarily points at the latch itself; the fixup
        // below retargets it to the next phase header / the exit block.
        fb.latch(latch, header, latch, phase_items);
    }
    const int exit = fb.add_block();
    fb.ret(exit);
    // Fix up latch exits (they pointed at themselves as placeholders).
    Function kernel = fb.build();
    int fixed = 0;
    for (int b = 0; b < kernel.num_blocks() - 1; ++b) {
        auto &t = kernel.blocks[static_cast<size_t>(b)].term;
        if (t.kind == compiler::Terminator::Kind::Branch &&
            t.model.kind == compiler::BranchModel::Kind::TripCount &&
            t.target_else == b) {
            // Next phase header is b+1 (or the exit for the last phase).
            t.target_else = b + 1;
            ++fixed;
        }
    }
    TQ_CHECK(fixed == phases);

    FunctionBuilder eb(name + "_main");
    const int e0 = eb.add_block();
    const int body = eb.add_block();
    const int done = eb.add_block();
    eb.jump(e0, body);
    eb.call(body, 1);
    eb.latch(body, body, done, reps);
    eb.ret(done);

    Module m;
    m.name = name;
    m.functions.push_back(eb.build());
    m.functions.push_back(std::move(kernel));
    return m;
}

/** Registry mapping Table-3 workload names to their archetypes. */
const std::map<std::string, std::function<Module()>> &
registry()
{
    static const std::map<std::string, std::function<Module()>> reg = {
        // --- SPLASH-2 ---
        {"water-nsquared",
         [] { return pairwise_kernel("water-nsquared", 40, 60, 60, 2, 0.3); }},
        {"water-spatial",
         [] { return pairwise_kernel("water-spatial", 60, 40, 40, 1, 0.5); }},
        {"ocean-cp",
         [] { return grid_kernel("ocean-cp", 30, 80, 80, true, true,
                                 6, 3, 2, 0); }},
        {"ocean-ncp",
         [] { return grid_kernel("ocean-ncp", 30, 80, 80, false, true,
                                 6, 3, 2, 0); }},
        {"barnes",
         [] { return tree_kernel("barnes", 300, 8, 0.75, 10); }},
        {"volrend",
         [] { return tree_kernel("volrend", 400, 6, 0.7, 14); }},
        {"fmm", [] { return pairwise_kernel("fmm", 50, 50, 40, 3, 0.4); }},
        {"raytrace",
         [] { return tree_kernel("raytrace", 250, 9, 0.72, 8); }},
        {"radiosity",
         [] { return tree_kernel("radiosity", 350, 7, 0.78, 12); }},
        {"radix",
         [] { return selfloop_kernel("radix", 50, 4000, 3, 2); }},
        {"fft",
         [] { return grid_kernel("fft", 40, 64, 64, true, true,
                                 4, 2, 4, 0); }},
        {"lu-c",
         [] { return grid_kernel("lu-c", 25, 72, 72, true, true,
                                 5, 3, 3, 1); }},
        {"lu-nc",
         [] { return triangular_kernel("lu-nc", 18, 72, 0); }},
        {"cholesky",
         [] { return triangular_kernel("cholesky", 14, 80, 120); }},
        // --- Phoenix ---
        {"reverse-index",
         [] { return scan_kernel("reverse-index", 120000, 4, 3, false,
                                 0.1); }},
        {"histogram",
         [] { return scan_kernel("histogram", 200000, 3, 2, true, 0.0); }},
        {"kmeans",
         [] { return grid_kernel("kmeans", 35, 60, 60, false, true,
                                 5, 3, 3, 0); }},
        {"pca",
         [] { return grid_kernel("pca", 28, 70, 70, false, false,
                                 6, 3, 4, 0); }},
        {"matrix-multiply",
         [] { return grid_kernel("matrix-multiply", 30, 64, 64, true, true,
                                 3, 2, 2, 0); }},
        {"string-match",
         [] { return scan_kernel("string-match", 180000, 4, 2, false,
                                 0.02); }},
        {"linear-regression",
         [] { return scan_kernel("linear-regression", 220000, 4, 1, true,
                                 0.0); }},
        {"word-count",
         [] { return scan_kernel("word-count", 150000, 5, 2, false, 0.08); }},
        // --- PARSEC ---
        {"blackscholes",
         [] { return pipeline_kernel("blackscholes", 60, 400, 2, 3); }},
        {"fluidanimate",
         [] { return pipeline_kernel("fluidanimate", 35, 500, 4, 1); }},
        {"swaptions",
         [] { return pipeline_kernel("swaptions", 45, 450, 3, 2); }},
        {"canneal",
         [] { return scan_kernel("canneal", 140000, 6, 4, false, 0.2); }},
        {"streamcluster",
         [] { return pipeline_kernel("streamcluster", 40, 520, 3, 0); }},
    };
    return reg;
}

} // namespace

const std::vector<std::string> &
program_names()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        // Paper's Table-3 ordering.
        for (const char *n :
             {"water-nsquared", "water-spatial", "ocean-cp", "ocean-ncp",
              "barnes", "volrend", "fmm", "raytrace", "radiosity", "radix",
              "fft", "lu-c", "lu-nc", "cholesky", "reverse-index",
              "histogram", "kmeans", "pca", "matrix-multiply", "string-match",
              "linear-regression", "word-count", "blackscholes",
              "fluidanimate", "swaptions", "canneal", "streamcluster"})
            out.emplace_back(n);
        return out;
    }();
    return names;
}

Module
make_program(const std::string &name)
{
    const auto &reg = registry();
    const auto it = reg.find(name);
    if (it == reg.end())
        tq::fatal("make_program: unknown workload name");
    Module m = it->second();
    compiler::validate(m);
    return m;
}

Module
make_rocksdb_get()
{
    // A ~2us point lookup: descend a skiplist/memtable (pointer chases
    // with branchy key comparisons), then verify the key and copy the
    // value. Real store code compiles to *hundreds* of tiny basic blocks
    // (comparator specializations, bounds checks, slice handling), which
    // is exactly what forces CI to probe at basic-block granularity
    // (1000+ probes, 60% overhead — paper section 3.1) while TQ needs a
    // handful of loop guards. The comparator below is deliberately a
    // diamond chain of small blocks to reproduce that structure class.
    FunctionBuilder cmp("rocksdb-keycmp");
    {
        // 16-byte key compared in branchy 1-byte steps with early exits.
        const int c0 = cmp.add_block();
        cmp.ops(c0, Op::Load, 1).ops(c0, Op::IAlu, 1);
        int prev = c0;
        for (int d = 0; d < 14; ++d) {
            const int neq = cmp.add_block();  // bytes differ: finish up
            const int eq = cmp.add_block();   // bytes equal: keep going
            cmp.branch(prev, neq, eq, 0.35);
            cmp.ops(neq, Op::IAlu, 2);
            cmp.ops(eq, Op::Load, 1).ops(eq, Op::IAlu, 1);
            // Both sides continue the comparison chain (the "differ"
            // side re-checks case folding etc. before rejoining).
            const int join = cmp.add_block();
            cmp.jump(neq, join);
            cmp.jump(eq, join);
            cmp.ops(join, Op::IAlu, 1);
            prev = join;
        }
        cmp.ret(prev);
    }

    FunctionBuilder fb("rocksdb-get");
    const int entry = fb.add_block();
    const int descend = fb.add_block();   // per-level loop
    const int step = fb.add_block();      // advance within level
    const int bounds = fb.add_block();    // node bounds check
    const int stale = fb.add_block();     // version check slow path
    const int step_join = fb.add_block();
    const int level_done = fb.add_block();
    const int verify = fb.add_block();
    const int copy = fb.add_block();
    const int copy_latch = fb.add_block();
    const int exit = fb.add_block();

    fb.ops(entry, Op::IAlu, 6).ops(entry, Op::Load, 2);
    fb.jump(entry, descend);

    // At each level: chase forward pointers a data-dependent number of
    // times (geometric, modeled by Bernoulli), comparing keys as we go.
    fb.ops(descend, Op::Load, 1).ops(descend, Op::IAlu, 2);
    fb.jump(descend, step);
    fb.ops(step, Op::Load, 2).ops(step, Op::IAlu, 1);
    fb.call(step, 2); // key comparison
    fb.branch(step, bounds, step_join, 0.5);
    fb.loop_facts(step, std::nullopt, false);
    fb.ops(bounds, Op::Load, 1).ops(bounds, Op::IAlu, 2);
    fb.branch(bounds, stale, step_join, 0.1);
    fb.ops(stale, Op::Load, 2).ops(stale, Op::IAlu, 3);
    fb.jump(stale, step_join);
    fb.ops(step_join, Op::IAlu, 1);
    fb.branch(step_join, step, level_done, 0.75); // keep walking level
    fb.latch(level_done, descend, verify, 12);    // 12 levels
    fb.loop_facts(descend, std::nullopt, false);

    fb.ops(verify, Op::Load, 4).ops(verify, Op::IAlu, 8);
    fb.call(verify, 2); // final full-key verification
    fb.jump(verify, copy);
    fb.ops(copy, Op::Load, 2).ops(copy, Op::Store, 2).ops(copy, Op::IAlu, 2);
    fb.jump(copy, copy_latch);
    fb.latch(copy_latch, copy, exit, 16); // copy 16 chunks
    fb.loop_facts(copy, std::optional<uint64_t>(16), true);
    fb.ret(exit);

    // Driver: many GETs back to back.
    FunctionBuilder eb("rocksdb-get_main");
    const int e0 = eb.add_block();
    const int body = eb.add_block();
    const int done = eb.add_block();
    eb.jump(e0, body);
    eb.call(body, 1);
    eb.latch(body, body, done, 2000);
    eb.ret(done);

    Module m;
    m.name = "rocksdb-get";
    m.functions.push_back(eb.build());
    m.functions.push_back(fb.build());
    m.functions.push_back(cmp.build());
    compiler::validate(m);
    return m;
}

} // namespace tq::progs
