/**
 * @file
 * Server adapter binding the load generator to a tq::runtime::Runtime.
 */
#ifndef TQ_NET_RUNTIME_SERVER_H
#define TQ_NET_RUNTIME_SERVER_H

#include "net/loadgen.h"
#include "runtime/runtime.h"

namespace tq::net {

/** Adapts Runtime's submit/drain to the load generator's interface. */
class RuntimeServer : public Server
{
  public:
    explicit RuntimeServer(runtime::Runtime &rt) : rt_(rt) {}

    bool
    submit(const runtime::Request &req) override
    {
        return rt_.submit(req);
    }

    size_t
    drain(std::vector<runtime::Response> &out) override
    {
        return rt_.drain_responses(out);
    }

  private:
    runtime::Runtime &rt_;
};

} // namespace tq::net

#endif // TQ_NET_RUNTIME_SERVER_H
