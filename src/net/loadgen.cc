#include "net/loadgen.h"

#include <memory>
#include <thread>

#include "common/check.h"
#include "common/cycles.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "runtime/fanout.h"

namespace tq::net {

const ClientClassStats &
ClientStats::by_class(const std::string &name) const
{
    for (const auto &c : classes)
        if (c.name == name)
            return c;
    tq::fatal("ClientStats::by_class: unknown class");
}

ClientStats
run_open_loop(Server &server, const ServiceDist &dist,
              const RequestFactory &factory, const LoadGenConfig &cfg)
{
    TQ_CHECK(cfg.rate_mrps > 0);
    TQ_CHECK(cfg.fanout >= 1);
    Rng rng(cfg.seed);
    const auto &names = dist.class_names();
    std::vector<PercentileTracker> sojourn(names.size());
    std::vector<PercentileTracker> e2e(names.size());
    std::vector<uint64_t> counts(names.size(), 0);

    ClientStats stats;
    std::vector<runtime::Response> responses;
    responses.reserve(4096);
    runtime::FanoutCollector gather;

    // The send schedule lives in the nanosecond domain (1 Mrps =
    // 1e-3 req/ns) and is drawn from the same ArrivalProcess machinery
    // as the simulators, with the same draw interleave — initial gap,
    // then (service sample, next gap) per request — so a seeded run
    // produces the identical arrival sequence through both stacks.
    const double rate_per_ns = cfg.rate_mrps * 1e-3;
    const std::unique_ptr<ArrivalProcess> arrival =
        make_arrival_process(cfg.arrival, rate_per_ns);
    const double duration_ns = cfg.duration_sec * 1e9;

#if defined(TQ_TELEMETRY_ENABLED)
    telemetry::ClientTelemetry *const ct =
        cfg.metrics != nullptr ? &cfg.metrics->client() : nullptr;
    uint64_t phases_seen = 0;
#endif
    auto collect = [&] {
        TQ_FAULT_SITE(LoadgenCollect);
        // The server drains each worker TX ring with batched pop_n
        // (one shared-index round trip per ring per burst), so the
        // whole backlog lands here in one call. Shard responses pass
        // through the gather stage; stats count logical completions.
        responses.clear();
        server.drain(responses);
        for (const auto &r : responses) {
            runtime::Response logical;
            Cycles spread = 0;
            if (!gather.feed(r, &logical, &spread))
                continue;
            const size_t c = static_cast<size_t>(logical.job_class);
            sojourn[c].add(logical.sojourn_ns());
            e2e[c].add(logical.e2e_ns());
            ++counts[c];
            ++stats.completed;
#if defined(TQ_TELEMETRY_ENABLED)
            if (ct != nullptr) {
                ct->sojourn_cycles.add(logical.done_cycles -
                                       logical.arrival_cycles);
                if (logical.fanout > 1)
                    ct->fanout_spread_cycles.add(spread);
            }
#endif
        }
    };

    const Cycles start = rdcycles();
    double next_send_ns = arrival->next(0.0, rng);
    if (cfg.send_trace != nullptr)
        cfg.send_trace->push_back(next_send_ns);
    uint64_t next_id = 0;

    // Generation window: open loop — send times do not depend on
    // completions (paper section 5.1). Every arrival scheduled inside
    // the window is sent, even when the wall clock lags the schedule,
    // so the submitted set is a pure function of the seed.
    while (next_send_ns < duration_ns) {
        const Cycles sched = start + ns_to_cycles(next_send_ns);
        if (rdcycles() < sched) {
            collect();
            continue;
        }
        const ServiceSample s = dist.sample(rng);
        runtime::Request req = factory(s, next_id);
        req.id = next_id++;
        req.gen_cycles = sched;
        req.fanout = cfg.fanout;
        TQ_FAULT_SITE(LoadgenSend);
        if (server.submit(req))
            ++stats.submitted;
        else
            ++stats.send_failures;
        next_send_ns = arrival->next(next_send_ns, rng);
        if (cfg.send_trace != nullptr)
            cfg.send_trace->push_back(next_send_ns);
#if defined(TQ_TELEMETRY_ENABLED)
        if (ct != nullptr) {
            const uint64_t phases = arrival->phases_begun();
            if (phases != phases_seen) {
                // Phase boundary: sample the in-flight backlog — the
                // per-phase burst-occupancy series of the scenario bench.
                phases_seen = phases;
                ct->burst_inflight.add(stats.submitted - stats.completed);
            }
        }
#endif
    }
    // The schedule ran dry (the overshoot draw above is past the
    // window) but the window itself runs to the configured duration:
    // keep collecting until it closes so completions landing between
    // the last send and the close still count as in-window.
    const Cycles window_end = start + ns_to_cycles(duration_ns);
    while (rdcycles() < window_end)
        collect();
    // The achieved rate counts completions observed inside the
    // generation window only: completions landing during the drain
    // below belong to the percentiles but not to the rate (measuring
    // them would credit the window with throughput it did not sustain,
    // and measuring over generation + drain time would deflate the rate
    // by however long the tail straggled).
    const Cycles gen_end = rdcycles();
    stats.completed_in_window = stats.completed;

    // Drain stragglers.
    const Cycles drain_end =
        rdcycles() + ns_to_cycles(cfg.drain_timeout_sec * 1e9);
    while (stats.completed < stats.submitted && rdcycles() < drain_end) {
        collect();
        std::this_thread::yield();
    }
    collect();

#if defined(TQ_TELEMETRY_ENABLED)
    if (ct != nullptr) {
        ct->submitted.fetch_add(stats.submitted, std::memory_order_relaxed);
        ct->send_failures.fetch_add(stats.send_failures,
                                    std::memory_order_relaxed);
        ct->completed.fetch_add(stats.completed, std::memory_order_relaxed);
    }
#endif

    const double gen_elapsed_ns = cycles_to_ns(gen_end - start);
    stats.gen_elapsed_sec = gen_elapsed_ns / 1e9;
    stats.timed_out = stats.submitted - stats.completed;
    stats.achieved_mrps =
        gen_elapsed_ns > 0
            ? static_cast<double>(stats.completed_in_window) * 1e3 /
                  gen_elapsed_ns
            : 0;
    for (size_t c = 0; c < names.size(); ++c) {
        ClientClassStats cs;
        cs.name = names[c];
        cs.completed = counts[c];
        cs.p999_sojourn_us = sojourn[c].quantile(0.999, cfg.warmup) / 1e3;
        cs.p99_sojourn_us = sojourn[c].quantile(0.99, cfg.warmup) / 1e3;
        cs.mean_sojourn_us = sojourn[c].mean(cfg.warmup) / 1e3;
        cs.p999_e2e_us = e2e[c].quantile(0.999, cfg.warmup) / 1e3;
        stats.classes.push_back(std::move(cs));
    }
    return stats;
}

RequestFactory
spin_request_factory()
{
    return [](const ServiceSample &s, uint64_t) {
        runtime::Request req;
        req.job_class = s.job_class;
        req.payload = static_cast<uint64_t>(s.demand);
        return req;
    };
}

} // namespace tq::net
