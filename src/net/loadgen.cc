#include "net/loadgen.h"

#include <thread>

#include "common/check.h"
#include "common/cycles.h"
#include "common/rng.h"
#include "fault/fault.h"

namespace tq::net {

const ClientClassStats &
ClientStats::by_class(const std::string &name) const
{
    for (const auto &c : classes)
        if (c.name == name)
            return c;
    tq::fatal("ClientStats::by_class: unknown class");
}

ClientStats
run_open_loop(Server &server, const ServiceDist &dist,
              const RequestFactory &factory, const LoadGenConfig &cfg)
{
    TQ_CHECK(cfg.rate_mrps > 0);
    Rng rng(cfg.seed);
    const auto &names = dist.class_names();
    std::vector<PercentileTracker> sojourn(names.size());
    std::vector<PercentileTracker> e2e(names.size());
    std::vector<uint64_t> counts(names.size(), 0);

    ClientStats stats;
    std::vector<runtime::Response> responses;
    responses.reserve(4096);

    const double mean_gap_ns = 1e3 / cfg.rate_mrps; // ns between sends
    const Cycles start = rdcycles();
    const Cycles window_end =
        start + ns_to_cycles(cfg.duration_sec * 1e9);
    Cycles next_send =
        start + ns_to_cycles(rng.exponential(mean_gap_ns));
    uint64_t next_id = 0;

#if defined(TQ_TELEMETRY_ENABLED)
    telemetry::CycleHistogram *const sojourn_hist =
        cfg.metrics != nullptr ? &cfg.metrics->client().sojourn_cycles
                               : nullptr;
#endif
    auto collect = [&] {
        TQ_FAULT_SITE(LoadgenCollect);
        // The server drains each worker TX ring with batched pop_n
        // (one shared-index round trip per ring per burst), so the
        // whole backlog lands here in one call.
        responses.clear();
        server.drain(responses);
        for (const auto &r : responses) {
            const size_t c = static_cast<size_t>(r.job_class);
            sojourn[c].add(r.sojourn_ns());
            e2e[c].add(r.e2e_ns());
            ++counts[c];
            ++stats.completed;
#if defined(TQ_TELEMETRY_ENABLED)
            if (sojourn_hist != nullptr)
                sojourn_hist->add(r.done_cycles - r.arrival_cycles);
#endif
        }
    };

    // Generation window: open loop — send times do not depend on
    // completions (paper section 5.1).
    while (true) {
        const Cycles now = rdcycles();
        if (now >= window_end)
            break;
        while (next_send <= now) {
            const ServiceSample s = dist.sample(rng);
            runtime::Request req = factory(s, next_id);
            req.id = next_id++;
            req.gen_cycles = next_send;
            TQ_FAULT_SITE(LoadgenSend);
            if (server.submit(req))
                ++stats.submitted;
            else
                ++stats.send_failures;
            next_send += ns_to_cycles(rng.exponential(mean_gap_ns));
        }
        collect();
    }
    // The achieved rate is completions per *generation-window* time:
    // measuring over generation + drain would deflate the rate by
    // however long the tail straggled (up to drain_timeout_sec).
    const Cycles gen_end = rdcycles();

    // Drain stragglers.
    const Cycles drain_end =
        rdcycles() + ns_to_cycles(cfg.drain_timeout_sec * 1e9);
    while (stats.completed < stats.submitted && rdcycles() < drain_end) {
        collect();
        std::this_thread::yield();
    }
    collect();

#if defined(TQ_TELEMETRY_ENABLED)
    if (cfg.metrics != nullptr) {
        telemetry::ClientTelemetry &ct = cfg.metrics->client();
        ct.submitted.fetch_add(stats.submitted, std::memory_order_relaxed);
        ct.send_failures.fetch_add(stats.send_failures,
                                   std::memory_order_relaxed);
        ct.completed.fetch_add(stats.completed, std::memory_order_relaxed);
    }
#endif

    const double gen_elapsed_ns = cycles_to_ns(gen_end - start);
    stats.gen_elapsed_sec = gen_elapsed_ns / 1e9;
    stats.timed_out = stats.submitted - stats.completed;
    stats.achieved_mrps =
        gen_elapsed_ns > 0 ? static_cast<double>(stats.completed) * 1e3 /
                                 gen_elapsed_ns
                           : 0;
    for (size_t c = 0; c < names.size(); ++c) {
        ClientClassStats cs;
        cs.name = names[c];
        cs.completed = counts[c];
        cs.p999_sojourn_us = sojourn[c].quantile(0.999, cfg.warmup) / 1e3;
        cs.p99_sojourn_us = sojourn[c].quantile(0.99, cfg.warmup) / 1e3;
        cs.mean_sojourn_us = sojourn[c].mean(cfg.warmup) / 1e3;
        cs.p999_e2e_us = e2e[c].quantile(0.999, cfg.warmup) / 1e3;
        stats.classes.push_back(std::move(cs));
    }
    return stats;
}

RequestFactory
spin_request_factory()
{
    return [](const ServiceSample &s, uint64_t) {
        runtime::Request req;
        req.job_class = s.job_class;
        req.payload = static_cast<uint64_t>(s.demand);
        return req;
    };
}

} // namespace tq::net
