/**
 * @file
 * Open-loop load generator and latency collector (paper section 5.1).
 *
 * Plays the role of the paper's client machine: submits requests under a
 * Poisson process at a configured rate, timestamps them with the cycle
 * clock, collects responses from the workers' TX rings, and reports
 * per-class tail latency with the first 10% of samples discarded.
 *
 * The transport is the runtime's lock-free rings instead of UDP/DPDK
 * (DESIGN.md substitution table). On this host, client, dispatcher and
 * workers timeshare one core, so the configured rate is an upper bound
 * on the achieved rate; the achieved rate is reported.
 */
#ifndef TQ_NET_LOADGEN_H
#define TQ_NET_LOADGEN_H

#include <functional>
#include <string>
#include <vector>

#include "common/arrival.h"
#include "common/dist.h"
#include "common/percentile.h"
#include "runtime/request.h"
#include "telemetry/telemetry.h"

namespace tq::net {

/** Builds a request for a sampled job class (sets payload etc.). */
using RequestFactory =
    std::function<runtime::Request(const ServiceSample &, uint64_t id)>;

/** Load-generation parameters. */
struct LoadGenConfig
{
    double rate_mrps = 0.05;    ///< offered request rate
    double duration_sec = 0.5;  ///< generation window
    double warmup = 0.1;        ///< discarded sample prefix
    double drain_timeout_sec = 10.0; ///< wait for stragglers after window
    uint64_t seed = 1;          ///< arrival-process RNG seed

    /**
     * Arrival-process shape at rate_mrps: Poisson by default, or the
     * MMPP/on-off/diurnal process of common/arrival.h. The send schedule
     * is drawn in the nanosecond domain with the same draw interleave as
     * the simulators (initial gap, then sample/next per request), so a
     * seeded run emits the identical arrival sequence through the
     * runtime and through the sim (tests/integration_test.cc parity).
     */
    ArrivalSpec arrival;

    /**
     * Scatter-gather width: every request is stamped with this fan-out
     * and the dispatcher expands it into that many shards; the generator
     * gathers shard responses (runtime/fanout.h) and all reported stats
     * count *logical* requests, completing on the last shard.
     */
    uint32_t fanout = 1;

    /**
     * Optional sink for every arrival draw (absolute ns, including the
     * final past-window overshoot draw) — the client-side twin of
     * EngineCore::set_arrival_trace, compared by the parity tests.
     */
    std::vector<double> *send_trace = nullptr;

    /**
     * Optional telemetry registry: when set (and the build has
     * TQ_TELEMETRY on), the generator records client-side counters
     * (submitted / send failures / completed) and the sojourn histogram
     * into the registry's client slot, so server snapshots and
     * client-side views come from one substrate. Typically
     * `&runtime.metrics()`.
     */
    telemetry::MetricsRegistry *metrics = nullptr;
};

/** Per-class client-side latency statistics. */
struct ClientClassStats
{
    std::string name;
    uint64_t completed = 0;
    double p999_sojourn_us = 0;
    double p99_sojourn_us = 0;
    double mean_sojourn_us = 0;
    double p999_e2e_us = 0;
};

/** Outcome of one load-generation run. */
struct ClientStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t send_failures = 0; ///< RX queue full events
    /** Submitted but never collected before the drain timeout. */
    uint64_t timed_out = 0;

    /**
     * Completions collected before the generation window closed.
     * Requests still in flight at window close are NOT in this count —
     * they either drain into `completed` (and the percentiles) or end up
     * in `timed_out`, never both.
     */
    uint64_t completed_in_window = 0;

    /**
     * completed_in_window per generation-window millisecond. Only
     * completions observed inside the window count: draining stragglers
     * after it can neither inflate the rate (completions landing after
     * close) nor deflate it (drain time is excluded from the divisor).
     */
    double achieved_mrps = 0;
    /** Measured generation-window length (excludes the drain phase). */
    double gen_elapsed_sec = 0;
    std::vector<ClientClassStats> classes;

    const ClientClassStats &by_class(const std::string &name) const;
};

/** Abstract server interface so baselines can reuse the generator. */
class Server
{
  public:
    virtual ~Server() = default;
    virtual bool submit(const runtime::Request &req) = 0;
    virtual size_t drain(std::vector<runtime::Response> &out) = 0;
};

/**
 * Run one open-loop experiment against @p server.
 * @param dist workload class/demand sampler (payload via @p factory).
 */
ClientStats run_open_loop(Server &server, const ServiceDist &dist,
                          const RequestFactory &factory,
                          const LoadGenConfig &cfg);

/**
 * Factory for spin-loop workloads: the request payload is the sampled
 * service demand in nanoseconds (consumed by a spin_for handler).
 */
RequestFactory spin_request_factory();

} // namespace tq::net

#endif // TQ_NET_LOADGEN_H
