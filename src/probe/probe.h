/**
 * @file
 * Forced-multitasking probe runtime (paper section 3.1 / 4).
 *
 * Instrumented job code calls tq_probe() at compiler-chosen sites. The
 * probe reads the physical cycle counter and, if the current quantum has
 * expired, invokes the thread-local `call_the_yield` function that the
 * scheduler coroutine bound before resuming the task — switching control
 * back to the scheduler. When the quantum has not expired the probe costs
 * one RDTSC plus a predicted-not-taken branch.
 *
 * Critical sections (paper section 4) disable yielding via PreemptGuard:
 * while disabled, probes record that the deadline passed but do not
 * yield; the first probe after the section ends performs the yield.
 *
 * Quanta are specified per resume, so dynamic-quantum policies such as
 * least-attained-service work without changes (paper section 3.1).
 */
#ifndef TQ_PROBE_PROBE_H
#define TQ_PROBE_PROBE_H

#include <cstdint>

#include "common/cycles.h"
#if defined(TQ_TELEMETRY_ENABLED)
#include "telemetry/metrics.h"
#endif

namespace tq {

/** Yield callback bound by the scheduler before resuming a task. */
using YieldFn = void (*)(void *arg);

/** Per-thread forced-multitasking state. */
struct ProbeState
{
    /** Cycle-counter value at which the current quantum expires. */
    Cycles deadline = ~Cycles{0};

    /** Nesting depth of preempt-disable critical sections. */
    uint32_t preempt_disabled = 0;

    /** Set when the deadline passed inside a critical section. */
    bool yield_pending = false;

    /** The task coroutine's yield function (paper's call_the_yield). */
    YieldFn call_the_yield = nullptr;

    /** Opaque argument for call_the_yield. */
    void *yield_arg = nullptr;

    /** Total yields taken through probes (stats). */
    uint64_t yields = 0;

#if defined(TQ_TELEMETRY_ENABLED)
    /** Telemetry sink of the worker owning this thread (may be null). */
    telemetry::WorkerTelemetry *telem = nullptr;

    /** Job id of the task about to run (for ProbeYield trace events). */
    uint64_t telem_job = 0;
#endif
};

/** @return this thread's probe state. */
ProbeState &probe_state();

namespace detail {
/** Out-of-line expired-deadline path of tq_probe(). */
void probe_expired(ProbeState &state);
} // namespace detail

/**
 * Bind the yield callback for the task about to be resumed.
 * Called by the scheduler coroutine, once per task construction or
 * before each resume (both are cheap).
 */
inline void
bind_yield(YieldFn fn, void *arg)
{
    ProbeState &s = probe_state();
    s.call_the_yield = fn;
    s.yield_arg = arg;
}

#if defined(TQ_TELEMETRY_ENABLED)
/**
 * Bind this thread's telemetry sink for the task about to be resumed,
 * so the slow path of tq_probe() can attribute ProbeYield /
 * GuardDeferredYield events to the right worker and job. Telemetry
 * builds only; the probe fast path is unaffected either way.
 */
inline void
bind_telemetry(telemetry::WorkerTelemetry *telem, uint64_t job)
{
    ProbeState &s = probe_state();
    s.telem = telem;
    s.telem_job = job;
}
#endif

/**
 * Start a quantum of @p quantum_cycles ending relative to now.
 * Called by the scheduler immediately before resuming a task coroutine.
 */
inline void
arm_quantum(Cycles quantum_cycles)
{
    probe_state().deadline = rdcycles() + quantum_cycles;
}

/** Disarm the quantum (e.g. while the scheduler itself runs). */
inline void
disarm_quantum()
{
    probe_state().deadline = ~Cycles{0};
}

/**
 * The probe inserted by the compiler pass. Reads the cycle counter and
 * yields via call_the_yield if the quantum expired.
 */
inline void
tq_probe()
{
    ProbeState &s = probe_state();
    if (__builtin_expect(rdcycles() < s.deadline, 1))
        return;
    detail::probe_expired(s);
}

/**
 * RAII critical section: yields are bypassed while any guard is alive
 * (probes still observe deadline expiry and yield at the first probe
 * after the last guard is destroyed).
 *
 * Use it for the paper's critical sections (section 4) and for any
 * non-reentrant code reachable from probed jobs — e.g. a thread_local
 * initializer that itself executes probes: yielding mid-initialization
 * would let another task coroutine on the same thread re-enter it (the
 * reentrancy hazard of paper section 6).
 */
class PreemptGuard
{
  public:
    PreemptGuard() { ++probe_state().preempt_disabled; }
    ~PreemptGuard()
    {
        ProbeState &s = probe_state();
        --s.preempt_disabled;
    }

    PreemptGuard(const PreemptGuard &) = delete;
    PreemptGuard &operator=(const PreemptGuard &) = delete;
};

} // namespace tq

#endif // TQ_PROBE_PROBE_H
