#include "probe/probe.h"

#include "common/check.h"

namespace tq {

ProbeState &
probe_state()
{
    thread_local ProbeState state;
    return state;
}

namespace detail {

void
probe_expired(ProbeState &s)
{
    if (s.preempt_disabled > 0) {
        // Inside a critical section: remember, yield at the next probe
        // that runs outside any guard (paper section 4).
        s.yield_pending = true;
        return;
    }
    s.yield_pending = false;
    TQ_CHECK(s.call_the_yield != nullptr);
    ++s.yields;
    // Push the deadline out so nested probes reached while unwinding to
    // the yield do not recurse; the scheduler re-arms before resuming.
    s.deadline = ~Cycles{0};
    s.call_the_yield(s.yield_arg);
}

} // namespace detail
} // namespace tq
