#include "probe/probe.h"

#include "common/check.h"

namespace tq {

ProbeState &
probe_state()
{
    thread_local ProbeState state;
    return state;
}

namespace detail {

void
probe_expired(ProbeState &s)
{
    if (s.preempt_disabled > 0) {
        // Inside a critical section: remember, yield at the next probe
        // that runs outside any guard (paper section 4).
#if defined(TQ_TELEMETRY_ENABLED)
        // Record the deferral once per expiry, not once per probe that
        // re-observes the already-passed deadline inside the guard.
        if (!s.yield_pending && s.telem != nullptr) {
            s.telem->counters.guard_deferrals.fetch_add(
                1, std::memory_order_relaxed);
            s.telem->trace.record(telemetry::EventKind::GuardDeferredYield,
                                  s.telem_job);
        }
#endif
        s.yield_pending = true;
        return;
    }
    s.yield_pending = false;
    TQ_CHECK(s.call_the_yield != nullptr);
    ++s.yields;
#if defined(TQ_TELEMETRY_ENABLED)
    if (s.telem != nullptr) {
        s.telem->counters.yields.fetch_add(1, std::memory_order_relaxed);
        s.telem->trace.record(telemetry::EventKind::ProbeYield,
                              s.telem_job);
    }
#endif
    // Push the deadline out so nested probes reached while unwinding to
    // the yield do not recurse; the scheduler re-arms before resuming.
    s.deadline = ~Cycles{0};
    s.call_the_yield(s.yield_arg);
}

} // namespace detail
} // namespace tq
