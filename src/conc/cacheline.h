/**
 * @file
 * Cache-line sizing and padding helpers.
 *
 * The dispatcher/worker contract of the paper (section 4) keeps each
 * worker's statistics in a single cache line that the dispatcher reads
 * periodically; these helpers make that layout explicit and keep hot
 * shared variables from false-sharing.
 *
 * Layout discipline (docs/cache_line_analysis.md): every cross-thread
 * line has exactly one writing thread, padding is explicit and stated,
 * and each packed struct carries a static_assert on its size and
 * alignment so a field addition fails the build instead of silently
 * false-sharing. tests/layout_test.cc exercises the same invariants at
 * runtime with real objects.
 */
#ifndef TQ_CONC_CACHELINE_H
#define TQ_CONC_CACHELINE_H

#include <atomic>
#include <cstddef>
#include <new>

namespace tq {

/**
 * Cache-line size used for alignment decisions.
 *
 * Fixed at 64 bytes (true for every x86-64 part this targets) rather than
 * std::hardware_destructive_interference_size, whose value is an ABI
 * hazard across compiler versions. Note some parts (recent Intel L2
 * prefetchers, Apple silicon) pull *pairs* of lines; we pad to one line
 * because the structs here are polled, not streamed, and doubling every
 * pad measurably hurts the dispatcher's view-refresh footprint.
 */
inline constexpr size_t kCacheLineSize = 64;

/**
 * Layout-introspection hook for tests: concurrency containers befriend
 * this struct so tests/layout_test.cc can take member addresses of real
 * objects (offsetof on non-standard-layout types is only conditionally
 * supported) without widening the public API.
 */
struct LayoutAudit;

namespace detail {

/** Explicit tail padding of @p N bytes; the N == 0 case is an empty
 *  struct so `[[no_unique_address]]` members vanish (a zero-length
 *  array is a GNU extension and ill-formed in standard C++). */
template <size_t N>
struct TailPad
{
    char pad[N];
};

template <>
struct TailPad<0>
{
};

/** Bytes needed after @p Size to reach the next line boundary. */
inline constexpr size_t
tail_pad_bytes(size_t size)
{
    return size % kCacheLineSize ? kCacheLineSize - size % kCacheLineSize
                                 : 0;
}

} // namespace detail

/** A value padded out to occupy a whole number of cache lines by itself. */
template <typename T>
struct alignas(kCacheLineSize) CacheAligned
{
    T value{};

    /** Explicit trailing padding. alignas already rounds sizeof up to a
     *  line multiple; the member keeps the gap visible in the source and
     *  collapses to nothing when T fills its lines exactly. */
    [[no_unique_address]] detail::TailPad<detail::tail_pad_bytes(sizeof(T))>
        pad;
};

/** Cache-line padded atomic counter, the common case of CacheAligned. */
template <typename T>
struct alignas(kCacheLineSize) PaddedAtomic
{
    std::atomic<T> value{};

    [[no_unique_address]] detail::TailPad<detail::tail_pad_bytes(
        sizeof(std::atomic<T>))>
        pad;
};

static_assert(sizeof(PaddedAtomic<size_t>) == kCacheLineSize &&
                  alignof(PaddedAtomic<size_t>) == kCacheLineSize,
              "a padded cursor must own exactly one line");
static_assert(sizeof(CacheAligned<char[kCacheLineSize]>) == kCacheLineSize,
              "an exactly line-sized payload must not grow a second line");

/** Pause hint for spin loops (PAUSE on x86, plain nop elsewhere). */
inline void
cpu_relax()
{
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
}

} // namespace tq

#endif // TQ_CONC_CACHELINE_H
