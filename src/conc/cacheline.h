/**
 * @file
 * Cache-line sizing and padding helpers.
 *
 * The dispatcher/worker contract of the paper (section 4) keeps each
 * worker's statistics in a single cache line that the dispatcher reads
 * periodically; these helpers make that layout explicit and keep hot
 * shared variables from false-sharing.
 */
#ifndef TQ_CONC_CACHELINE_H
#define TQ_CONC_CACHELINE_H

#include <atomic>
#include <cstddef>
#include <new>

namespace tq {

/**
 * Cache-line size used for alignment decisions.
 *
 * Fixed at 64 bytes (true for every x86-64 part this targets) rather than
 * std::hardware_destructive_interference_size, whose value is an ABI
 * hazard across compiler versions.
 */
inline constexpr size_t kCacheLineSize = 64;

/** A value padded out to occupy a full cache line by itself. */
template <typename T>
struct alignas(kCacheLineSize) CacheAligned
{
    T value{};

    /** Trailing padding so sizeof is a whole number of lines. */
    char pad[kCacheLineSize - (sizeof(T) % kCacheLineSize ? sizeof(T) % kCacheLineSize : kCacheLineSize)];
};

/** Cache-line padded atomic counter, the common case of CacheAligned. */
template <typename T>
struct alignas(kCacheLineSize) PaddedAtomic
{
    std::atomic<T> value{};

    char pad[kCacheLineSize - sizeof(std::atomic<T>) % kCacheLineSize];
};

/** Pause hint for spin loops (PAUSE on x86, plain nop elsewhere). */
inline void
cpu_relax()
{
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
}

} // namespace tq

#endif // TQ_CONC_CACHELINE_H
