/**
 * @file
 * Bounded lock-free multi-producer / multi-consumer queue.
 *
 * Dmitry Vyukov's array-based MPMC queue. TQ uses it wherever more than
 * one thread can touch an end: the RX buffer pool is multi-producer
 * (workers release parsed buffers) single-consumer (the dispatcher
 * allocates), and the Caladan-style baseline uses it for work stealing.
 */
#ifndef TQ_CONC_MPMC_QUEUE_H
#define TQ_CONC_MPMC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/check.h"
#include "conc/cacheline.h"

namespace tq {

/** Bounded MPMC FIFO of movable values; capacity rounds up to 2^k. */
template <typename T>
class MpmcQueue
{
  public:
    explicit MpmcQueue(size_t min_capacity)
    {
        TQ_CHECK(min_capacity >= 1);
        size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::vector<Cell>(cap);
        for (size_t i = 0; i < cap; ++i)
            cells_[i].sequence.store(i, std::memory_order_relaxed);
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    /** Number of storable elements. */
    size_t capacity() const { return mask_ + 1; }

    /** Enqueue @p value; @return false when full. Thread-safe. */
    bool
    push(T value)
    {
        size_t pos = enqueue_pos_.value.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const size_t seq = cell.sequence.load(std::memory_order_acquire);
            const intptr_t diff = static_cast<intptr_t>(seq) -
                                  static_cast<intptr_t>(pos);
            if (diff == 0) {
                if (enqueue_pos_.value.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    cell.value = std::move(value);
                    cell.sequence.store(pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // full
            } else {
                pos = enqueue_pos_.value.load(std::memory_order_relaxed);
            }
        }
    }

    /** Dequeue the oldest element; @return nullopt when empty. Thread-safe. */
    std::optional<T>
    pop()
    {
        size_t pos = dequeue_pos_.value.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const size_t seq = cell.sequence.load(std::memory_order_acquire);
            const intptr_t diff = static_cast<intptr_t>(seq) -
                                  static_cast<intptr_t>(pos + 1);
            if (diff == 0) {
                if (dequeue_pos_.value.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    T value = std::move(cell.value);
                    cell.sequence.store(pos + mask_ + 1,
                                        std::memory_order_release);
                    return value;
                }
            } else if (diff < 0) {
                return std::nullopt; // empty
            } else {
                pos = dequeue_pos_.value.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Dequeue up to @p max_n elements into @p dst with one successful
     * CAS for the whole batch. Thread-safe against concurrent producers
     * and consumers.
     *
     * The claimable prefix is the run of cells already published by
     * their producers (cells are claimed in order but may be published
     * out of order, so the run can be shorter than size()); a single
     * compare-exchange on the dequeue cursor then claims the entire
     * prefix, amortizing the contended RMW across the batch.
     *
     * @return number of elements dequeued (0 when empty), FIFO order.
     */
    size_t
    pop_n(T *dst, size_t max_n)
    {
        for (;;) {
            size_t pos = dequeue_pos_.value.load(std::memory_order_relaxed);
            size_t ready = 0;
            while (ready < max_n) {
                const Cell &cell = cells_[(pos + ready) & mask_];
                const size_t seq =
                    cell.sequence.load(std::memory_order_acquire);
                if (static_cast<intptr_t>(seq) !=
                    static_cast<intptr_t>(pos + ready + 1))
                    break;
                ++ready;
            }
            if (ready == 0) {
                // Empty, or the head cell is mid-publish; match pop()'s
                // non-blocking contract and report nothing available.
                return 0;
            }
            if (!dequeue_pos_.value.compare_exchange_weak(
                    pos, pos + ready, std::memory_order_relaxed))
                continue; // another consumer moved the cursor; re-scan
            // Cells [pos, pos+ready) are exclusively ours: consume and
            // recycle each one for the producer a lap ahead.
            for (size_t i = 0; i < ready; ++i) {
                Cell &cell = cells_[(pos + i) & mask_];
                dst[i] = std::move(cell.value);
                cell.sequence.store(pos + i + mask_ + 1,
                                    std::memory_order_release);
            }
            return ready;
        }
    }

    /** Approximate occupancy (racy; for stats and tests only). */
    size_t
    size() const
    {
        const size_t enq = enqueue_pos_.value.load(std::memory_order_acquire);
        const size_t deq = dequeue_pos_.value.load(std::memory_order_acquire);
        return enq >= deq ? enq - deq : 0;
    }

  private:
    friend struct ::tq::LayoutAudit;

    /**
     * One slot: the publication sequence and the payload it guards.
     * Cells are deliberately *not* padded to a line (Vyukov's layout):
     * any thread may write any cell, so there is no per-thread line to
     * protect, and padding would multiply the footprint of a 2^14-deep
     * RX queue by ~4 for requests. Adjacent-cell sharing is bounded by
     * the queue discipline — concurrent producers claim consecutive
     * positions, so the cells they publish are consecutive by design
     * and the traffic is the cost of the algorithm, not accidental.
     */
    struct Cell
    {
        std::atomic<size_t> sequence{0};
        T value{};
    };

    /** Read-mostly after construction. */
    std::vector<Cell> cells_;
    size_t mask_;

    /** The two contended RMW cursors, each alone on its line so
     *  producers CASing enqueue_pos_ never stall consumers' reads of
     *  dequeue_pos_ (and vice versa). */
    PaddedAtomic<size_t> enqueue_pos_;
    PaddedAtomic<size_t> dequeue_pos_;

    static_assert(sizeof(PaddedAtomic<size_t>) == kCacheLineSize,
                  "each MPMC cursor must own exactly one line");
};

} // namespace tq

#endif // TQ_CONC_MPMC_QUEUE_H
