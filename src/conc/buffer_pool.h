/**
 * @file
 * Multi-producer, single-consumer fixed-size buffer pool.
 *
 * Mirrors the RX memory pool of the paper's DPDK stack (section 4): the
 * dispatcher (single consumer) allocates request buffers; any worker
 * (multi producer) releases a buffer back once the request is parsed.
 */
#ifndef TQ_CONC_BUFFER_POOL_H
#define TQ_CONC_BUFFER_POOL_H

#include <cstddef>
#include <memory>
#include <vector>

#include "conc/mpmc_queue.h"

namespace tq {

/**
 * Pool of @p T objects with lock-free acquire/release.
 *
 * All objects are preallocated; acquire() hands out raw pointers whose
 * lifetime is managed by matching release() calls. The pool owns the
 * storage for its whole lifetime, so a leaked pointer is never a
 * use-after-free, just a lost slot (tests assert none are lost).
 */
template <typename T>
class BufferPool
{
  public:
    explicit BufferPool(size_t capacity)
        : storage_(capacity), free_list_(capacity)
    {
        for (auto &obj : storage_)
            TQ_CHECK(free_list_.push(&obj));
    }

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /** @return a free buffer, or nullptr if the pool is exhausted. */
    T *
    acquire()
    {
        auto ptr = free_list_.pop();
        return ptr ? *ptr : nullptr;
    }

    /** Return @p obj (previously acquired from this pool) to the pool. */
    void
    release(T *obj)
    {
        TQ_DCHECK(owns(obj));
        TQ_CHECK(free_list_.push(obj));
    }

    /** True if @p obj points into this pool's storage. */
    bool
    owns(const T *obj) const
    {
        return obj >= storage_.data() &&
               obj < storage_.data() + storage_.size();
    }

    /** Total number of buffers. */
    size_t capacity() const { return storage_.size(); }

    /** Approximate number of currently free buffers. */
    size_t free_count() const { return free_list_.size(); }

  private:
    std::vector<T> storage_;
    MpmcQueue<T *> free_list_;
};

} // namespace tq

#endif // TQ_CONC_BUFFER_POOL_H
