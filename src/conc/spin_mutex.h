/**
 * @file
 * Test-and-test-and-set spin mutex.
 *
 * Used only on slow paths (startup, stats aggregation) and by the
 * Shinjuku-style baseline's centralized queue, where lock contention is
 * precisely the effect under study.
 */
#ifndef TQ_CONC_SPIN_MUTEX_H
#define TQ_CONC_SPIN_MUTEX_H

#include <atomic>

#include "conc/cacheline.h"

namespace tq {

/** TTAS spinlock satisfying the C++ Lockable requirements. */
class SpinMutex
{
  public:
    void
    lock()
    {
        for (;;) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            while (locked_.load(std::memory_order_relaxed))
                cpu_relax();
        }
    }

    bool
    try_lock()
    {
        return !locked_.load(std::memory_order_relaxed) &&
               !locked_.exchange(true, std::memory_order_acquire);
    }

    void
    unlock()
    {
        locked_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> locked_{false};
};

} // namespace tq

#endif // TQ_CONC_SPIN_MUTEX_H
