/**
 * @file
 * Bounded lock-free single-producer / single-consumer ring buffer.
 *
 * This is the "lockless ring buffer" the TQ dispatcher uses to forward a
 * request to the least-loaded worker, and that each worker uses for its
 * private TX queue (paper section 4). It is a classic Lamport queue with
 * cached remote indices so the hot path touches only one shared cache
 * line per operation amortized.
 */
#ifndef TQ_CONC_SPSC_RING_H
#define TQ_CONC_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/check.h"
#include "conc/cacheline.h"

namespace tq {

/**
 * Bounded SPSC FIFO of trivially-movable values.
 *
 * Exactly one thread may call push(); exactly one thread may call pop().
 * Capacity is rounded up to a power of two.
 */
template <typename T>
class SpscRing
{
  public:
    /** @param min_capacity minimum number of storable elements (>= 1). */
    explicit SpscRing(size_t min_capacity)
    {
        TQ_CHECK(min_capacity >= 1);
        size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        mask_ = cap - 1;
        slots_.resize(cap);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Number of storable elements. */
    size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue @p value. Producer-side only.
     * @return false if the ring is full (value untouched).
     */
    bool
    push(T value)
    {
        const size_t head = head_.value.load(std::memory_order_relaxed);
        if (head - cached_tail_ > mask_) {
            cached_tail_ = tail_.value.load(std::memory_order_acquire);
            if (head - cached_tail_ > mask_)
                return false;
        }
        slots_[head & mask_] = std::move(value);
        head_.value.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue the oldest element. Consumer-side only.
     * @return std::nullopt if the ring is empty.
     */
    std::optional<T>
    pop()
    {
        const size_t tail = tail_.value.load(std::memory_order_relaxed);
        if (tail == cached_head_) {
            cached_head_ = head_.value.load(std::memory_order_acquire);
            if (tail == cached_head_)
                return std::nullopt;
        }
        T value = std::move(slots_[tail & mask_]);
        tail_.value.store(tail + 1, std::memory_order_release);
        return value;
    }

    /** Approximate occupancy; exact only when called by one of the ends. */
    size_t
    size() const
    {
        return head_.value.load(std::memory_order_acquire) -
               tail_.value.load(std::memory_order_acquire);
    }

    /** True when size() == 0 at the time of the loads. */
    bool empty() const { return size() == 0; }

  private:
    std::vector<T> slots_;
    size_t mask_;

    PaddedAtomic<size_t> head_;          // written by producer
    PaddedAtomic<size_t> tail_;          // written by consumer
    alignas(kCacheLineSize) size_t cached_tail_ = 0;  // producer-local
    alignas(kCacheLineSize) size_t cached_head_ = 0;  // consumer-local
};

} // namespace tq

#endif // TQ_CONC_SPSC_RING_H
