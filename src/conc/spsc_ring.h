/**
 * @file
 * Bounded lock-free single-producer / single-consumer ring buffer.
 *
 * This is the "lockless ring buffer" the TQ dispatcher uses to forward a
 * request to the least-loaded worker, and that each worker uses for its
 * private TX queue (paper section 4). It is a classic Lamport queue with
 * cached remote indices so the hot path touches only one shared cache
 * line per operation amortized. The batch APIs (push_n/pop_n) move up to
 * k items per index acquire/release pair, dividing that remaining shared
 * traffic by the batch size (DESIGN.md "Batched hot path").
 *
 * Index layout (docs/cache_line_analysis.md): two lines, one per end.
 * Each end's published index shares its line with that same end's cached
 * snapshot of the *other* index — both fields have a single writer (the
 * owning end), so packing them costs nothing and halves the header from
 * the previous four dedicated lines. The other end only ever loads the
 * published index; the slot storage and mask sit on separate read-mostly
 * lines ahead of the index block.
 */
#ifndef TQ_CONC_SPSC_RING_H
#define TQ_CONC_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/check.h"
#include "conc/cacheline.h"

namespace tq {

/**
 * Bounded SPSC FIFO of trivially-movable values.
 *
 * Exactly one thread may call push(); exactly one thread may call pop().
 * Capacity is rounded up to a power of two.
 */
template <typename T>
class SpscRing
{
  public:
    /**
     * Producer-owned index line: the published producer index plus the
     * producer's private snapshot of the consumer index. Single writer
     * (the producer); the consumer acquire-loads only `head`.
     */
    struct alignas(kCacheLineSize) ProducerSide
    {
        std::atomic<size_t> head{0}; ///< next slot to fill (published)
        size_t cached_tail = 0;      ///< producer-local tail snapshot

        char pad[kCacheLineSize - sizeof(std::atomic<size_t>) -
                 sizeof(size_t)];
    };

    /** Consumer-owned index line, mirror of ProducerSide. */
    struct alignas(kCacheLineSize) ConsumerSide
    {
        std::atomic<size_t> tail{0}; ///< next slot to drain (published)
        size_t cached_head = 0;      ///< consumer-local head snapshot

        char pad[kCacheLineSize - sizeof(std::atomic<size_t>) -
                 sizeof(size_t)];
    };

    static_assert(sizeof(ProducerSide) == kCacheLineSize &&
                      alignof(ProducerSide) == kCacheLineSize,
                  "each ring end owns exactly one index line");
    static_assert(sizeof(ConsumerSide) == kCacheLineSize &&
                      alignof(ConsumerSide) == kCacheLineSize,
                  "each ring end owns exactly one index line");

    /** @param min_capacity minimum number of storable elements (>= 1). */
    explicit SpscRing(size_t min_capacity)
    {
        TQ_CHECK(min_capacity >= 1);
        size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        mask_ = cap - 1;
        slots_.resize(cap);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Number of storable elements. */
    size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue @p value. Producer-side only.
     * @return false if the ring is full (value untouched).
     */
    bool
    push(T value)
    {
        const size_t head = prod_.head.load(std::memory_order_relaxed);
        if (head - prod_.cached_tail > mask_) {
            prod_.cached_tail = cons_.tail.load(std::memory_order_acquire);
            if (head - prod_.cached_tail > mask_)
                return false;
        }
        slots_[head & mask_] = std::move(value);
        prod_.head.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Enqueue up to @p n values from @p src. Producer-side only.
     *
     * One acquire of the consumer index and one release of the producer
     * index cover the whole batch, so the per-item cost of the shared
     * cache-line traffic is amortized by the batch size.
     *
     * @return number of values actually enqueued (0 when full); the
     *     first @c return values of @p src are moved from.
     */
    size_t
    push_n(T *src, size_t n)
    {
        const size_t head = prod_.head.load(std::memory_order_relaxed);
        size_t free = mask_ + 1 - (head - prod_.cached_tail);
        if (free < n) {
            prod_.cached_tail = cons_.tail.load(std::memory_order_acquire);
            free = mask_ + 1 - (head - prod_.cached_tail);
        }
        const size_t count = n < free ? n : free;
        for (size_t i = 0; i < count; ++i)
            slots_[(head + i) & mask_] = std::move(src[i]);
        if (count > 0)
            prod_.head.store(head + count, std::memory_order_release);
        return count;
    }

    /**
     * Dequeue the oldest element. Consumer-side only.
     * @return std::nullopt if the ring is empty.
     */
    std::optional<T>
    pop()
    {
        const size_t tail = cons_.tail.load(std::memory_order_relaxed);
        if (tail == cons_.cached_head) {
            cons_.cached_head = prod_.head.load(std::memory_order_acquire);
            if (tail == cons_.cached_head)
                return std::nullopt;
        }
        T value = std::move(slots_[tail & mask_]);
        cons_.tail.store(tail + 1, std::memory_order_release);
        return value;
    }

    /**
     * Dequeue the oldest element into @p out without the
     * std::optional<T> wrapper (no extra move/copy of T on the miss
     * path, no engaged-flag branch for the caller). Consumer-side only.
     * @return false when the ring is empty (@p out untouched).
     */
    bool
    pop_into(T &out)
    {
        const size_t tail = cons_.tail.load(std::memory_order_relaxed);
        if (tail == cons_.cached_head) {
            cons_.cached_head = prod_.head.load(std::memory_order_acquire);
            if (tail == cons_.cached_head)
                return false;
        }
        out = std::move(slots_[tail & mask_]);
        cons_.tail.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue up to @p max_n elements into @p dst. Consumer-side only.
     *
     * Mirrors push_n(): one acquire of the producer index and one
     * release of the consumer index per batch.
     *
     * @return number of elements dequeued (0 when empty), FIFO order.
     */
    size_t
    pop_n(T *dst, size_t max_n)
    {
        const size_t tail = cons_.tail.load(std::memory_order_relaxed);
        size_t avail = cons_.cached_head - tail;
        if (avail < max_n) {
            cons_.cached_head = prod_.head.load(std::memory_order_acquire);
            avail = cons_.cached_head - tail;
        }
        const size_t count = max_n < avail ? max_n : avail;
        for (size_t i = 0; i < count; ++i)
            dst[i] = std::move(slots_[(tail + i) & mask_]);
        if (count > 0)
            cons_.tail.store(tail + count, std::memory_order_release);
        return count;
    }

    /** Approximate occupancy; exact only when called by one of the ends. */
    size_t
    size() const
    {
        return prod_.head.load(std::memory_order_acquire) -
               cons_.tail.load(std::memory_order_acquire);
    }

    /** True when size() == 0 at the time of the loads. */
    bool empty() const { return size() == 0; }

  private:
    friend struct ::tq::LayoutAudit;

    /** Read-mostly after construction (both ends load, nobody stores). */
    std::vector<T> slots_;
    size_t mask_;

    ProducerSide prod_; ///< writer: producer thread only
    ConsumerSide cons_; ///< writer: consumer thread only
};

} // namespace tq

#endif // TQ_CONC_SPSC_RING_H
