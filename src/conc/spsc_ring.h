/**
 * @file
 * Bounded lock-free single-producer / single-consumer ring buffer.
 *
 * This is the "lockless ring buffer" the TQ dispatcher uses to forward a
 * request to the least-loaded worker, and that each worker uses for its
 * private TX queue (paper section 4). It is a classic Lamport queue with
 * cached remote indices so the hot path touches only one shared cache
 * line per operation amortized. The batch APIs (push_n/pop_n) move up to
 * k items per index acquire/release pair, dividing that remaining shared
 * traffic by the batch size (DESIGN.md "Batched hot path").
 */
#ifndef TQ_CONC_SPSC_RING_H
#define TQ_CONC_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/check.h"
#include "conc/cacheline.h"

namespace tq {

/**
 * Bounded SPSC FIFO of trivially-movable values.
 *
 * Exactly one thread may call push(); exactly one thread may call pop().
 * Capacity is rounded up to a power of two.
 */
template <typename T>
class SpscRing
{
  public:
    /** @param min_capacity minimum number of storable elements (>= 1). */
    explicit SpscRing(size_t min_capacity)
    {
        TQ_CHECK(min_capacity >= 1);
        size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        mask_ = cap - 1;
        slots_.resize(cap);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Number of storable elements. */
    size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue @p value. Producer-side only.
     * @return false if the ring is full (value untouched).
     */
    bool
    push(T value)
    {
        const size_t head = head_.value.load(std::memory_order_relaxed);
        if (head - cached_tail_ > mask_) {
            cached_tail_ = tail_.value.load(std::memory_order_acquire);
            if (head - cached_tail_ > mask_)
                return false;
        }
        slots_[head & mask_] = std::move(value);
        head_.value.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Enqueue up to @p n values from @p src. Producer-side only.
     *
     * One acquire of the consumer index and one release of the producer
     * index cover the whole batch, so the per-item cost of the shared
     * cache-line traffic is amortized by the batch size.
     *
     * @return number of values actually enqueued (0 when full); the
     *     first @c return values of @p src are moved from.
     */
    size_t
    push_n(T *src, size_t n)
    {
        const size_t head = head_.value.load(std::memory_order_relaxed);
        size_t free = mask_ + 1 - (head - cached_tail_);
        if (free < n) {
            cached_tail_ = tail_.value.load(std::memory_order_acquire);
            free = mask_ + 1 - (head - cached_tail_);
        }
        const size_t count = n < free ? n : free;
        for (size_t i = 0; i < count; ++i)
            slots_[(head + i) & mask_] = std::move(src[i]);
        if (count > 0)
            head_.value.store(head + count, std::memory_order_release);
        return count;
    }

    /**
     * Dequeue the oldest element. Consumer-side only.
     * @return std::nullopt if the ring is empty.
     */
    std::optional<T>
    pop()
    {
        const size_t tail = tail_.value.load(std::memory_order_relaxed);
        if (tail == cached_head_) {
            cached_head_ = head_.value.load(std::memory_order_acquire);
            if (tail == cached_head_)
                return std::nullopt;
        }
        T value = std::move(slots_[tail & mask_]);
        tail_.value.store(tail + 1, std::memory_order_release);
        return value;
    }

    /**
     * Dequeue the oldest element into @p out without the
     * std::optional<T> wrapper (no extra move/copy of T on the miss
     * path, no engaged-flag branch for the caller). Consumer-side only.
     * @return false when the ring is empty (@p out untouched).
     */
    bool
    pop_into(T &out)
    {
        const size_t tail = tail_.value.load(std::memory_order_relaxed);
        if (tail == cached_head_) {
            cached_head_ = head_.value.load(std::memory_order_acquire);
            if (tail == cached_head_)
                return false;
        }
        out = std::move(slots_[tail & mask_]);
        tail_.value.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue up to @p max_n elements into @p dst. Consumer-side only.
     *
     * Mirrors push_n(): one acquire of the producer index and one
     * release of the consumer index per batch.
     *
     * @return number of elements dequeued (0 when empty), FIFO order.
     */
    size_t
    pop_n(T *dst, size_t max_n)
    {
        const size_t tail = tail_.value.load(std::memory_order_relaxed);
        size_t avail = cached_head_ - tail;
        if (avail < max_n) {
            cached_head_ = head_.value.load(std::memory_order_acquire);
            avail = cached_head_ - tail;
        }
        const size_t count = max_n < avail ? max_n : avail;
        for (size_t i = 0; i < count; ++i)
            dst[i] = std::move(slots_[(tail + i) & mask_]);
        if (count > 0)
            tail_.value.store(tail + count, std::memory_order_release);
        return count;
    }

    /** Approximate occupancy; exact only when called by one of the ends. */
    size_t
    size() const
    {
        return head_.value.load(std::memory_order_acquire) -
               tail_.value.load(std::memory_order_acquire);
    }

    /** True when size() == 0 at the time of the loads. */
    bool empty() const { return size() == 0; }

  private:
    std::vector<T> slots_;
    size_t mask_;

    PaddedAtomic<size_t> head_;          // written by producer
    PaddedAtomic<size_t> tail_;          // written by consumer
    alignas(kCacheLineSize) size_t cached_tail_ = 0;  // producer-local
    alignas(kCacheLineSize) size_t cached_head_ = 0;  // consumer-local
};

} // namespace tq

#endif // TQ_CONC_SPSC_RING_H
