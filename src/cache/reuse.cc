#include "cache/reuse.h"

namespace tq::cache {

namespace {
constexpr int kLineShift = 6; // 64-byte lines
} // namespace

void
ReuseAnalyzer::fenwick_add(size_t i, int delta)
{
    for (size_t x = i + 1; x <= tree_.size(); x += x & (~x + 1))
        tree_[x - 1] += delta;
}

int64_t
ReuseAnalyzer::fenwick_sum(size_t i) const
{
    int64_t s = 0;
    for (size_t x = i + 1; x > 0; x -= x & (~x + 1))
        s += tree_[x - 1];
    return s;
}

void
ReuseAnalyzer::append_slot()
{
    // Appending element value 0 at 1-based position p: the new tree node
    // covers (p - lowbit(p), p], so it must be initialized to the sum of
    // the existing elements in that range (the new element adds 0).
    const size_t p = tree_.size() + 1;
    const size_t low = p & (~p + 1);
    int64_t val = 0;
    if (low > 1) {
        const int64_t hi = fenwick_sum(p - 2);
        const int64_t lo = (p - low >= 1) ? fenwick_sum(p - low - 1) : 0;
        val = hi - lo;
    }
    tree_.push_back(static_cast<int>(val));
}

uint64_t
ReuseAnalyzer::access(uint64_t addr)
{
    const uint64_t line = addr >> kLineShift;
    append_slot();

    uint64_t distance = kInfinite;
    const auto it = last_access_.find(line);
    if (it == last_access_.end()) {
        ++cold_;
    } else {
        const uint64_t prev = it->second;
        // Marked timestamps (one per distinct line, at its most recent
        // access) after prev = distinct lines touched since then.
        distance = last_access_.size() -
                   static_cast<uint64_t>(
                       fenwick_sum(static_cast<size_t>(prev)));
        distances_.push_back(distance);
        fenwick_add(static_cast<size_t>(prev), -1); // no longer latest
    }
    fenwick_add(static_cast<size_t>(time_), +1);
    last_access_[line] = time_;
    ++time_;
    return distance;
}

LogHistogram
ReuseAnalyzer::byte_histogram(int num_buckets) const
{
    LogHistogram h(64, num_buckets);
    for (uint64_t d : distances_)
        h.add(d << kLineShift);
    return h;
}

double
ReuseAnalyzer::fraction_above_bytes(uint64_t threshold_bytes) const
{
    if (distances_.empty())
        return 0.0;
    const uint64_t threshold_lines = threshold_bytes >> kLineShift;
    uint64_t above = 0;
    for (uint64_t d : distances_)
        above += d > threshold_lines;
    return static_cast<double>(above) /
           static_cast<double>(distances_.size());
}

} // namespace tq::cache
