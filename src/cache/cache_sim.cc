#include "cache/cache_sim.h"

#include "common/check.h"

namespace tq::cache {

namespace {

int
log2_exact(size_t v)
{
    int s = 0;
    while ((size_t{1} << s) < v)
        ++s;
    TQ_CHECK((size_t{1} << s) == v);
    return s;
}

} // namespace

CacheLevel::CacheLevel(size_t capacity_bytes, int ways, int line_bytes)
    : capacity_(capacity_bytes), ways_(ways)
{
    TQ_CHECK(ways > 0);
    line_shift_ = log2_exact(static_cast<size_t>(line_bytes));
    const size_t lines = capacity_bytes / static_cast<size_t>(line_bytes);
    TQ_CHECK(lines % static_cast<size_t>(ways) == 0);
    num_sets_ = lines / static_cast<size_t>(ways);
    TQ_CHECK(num_sets_ > 0);
    // Power-of-two sets for cheap indexing.
    log2_exact(num_sets_);
    ways_storage_.resize(num_sets_ * static_cast<size_t>(ways));
}

bool
CacheLevel::access(uint64_t addr)
{
    const uint64_t line = addr >> line_shift_;
    const size_t set = static_cast<size_t>(line) & (num_sets_ - 1);
    Way *const base = &ways_storage_[set * static_cast<size_t>(ways_)];
    ++clock_;

    int victim = 0;
    uint64_t victim_lru = ~0ULL;
    for (int w = 0; w < ways_; ++w) {
        if (base[w].tag == line) {
            base[w].lru = clock_;
            ++hits_;
            return true;
        }
        if (base[w].lru < victim_lru) {
            victim_lru = base[w].lru;
            victim = w;
        }
    }
    base[victim].tag = line;
    base[victim].lru = clock_;
    ++misses_;
    return false;
}

void
CacheLevel::clear()
{
    for (auto &w : ways_storage_)
        w = Way{};
    clock_ = hits_ = misses_ = 0;
}

CacheHierarchy::CacheHierarchy(CacheLatencies lat, size_t l1_bytes,
                               int l1_ways, size_t l2_bytes, int l2_ways)
    : lat_(lat), l1_(l1_bytes, l1_ways), l2_(l2_bytes, l2_ways)
{
}

double
CacheHierarchy::access(uint64_t addr)
{
    if (l1_.access(addr))
        return lat_.l1_hit;
    if (l2_.access(addr))
        return lat_.l2_hit;
    return lat_.memory;
}

} // namespace tq::cache
