/**
 * @file
 * The paper's microsecond-scale cache microbenchmark (section 5.5):
 * random pointer chasing over per-job arrays, interleaved in quanta,
 * under two-level (TLS) or centralized (CT) scheduling.
 *
 * Methodology mirrors section 5.5.1: each core runs X pointer-chase
 * accesses of an array per quantum (X sized to the target quantum), then
 * switches to the next array, resuming each array's saved progress. TLS
 * cores cycle over their own jobs_per_core arrays; CT cores cycle over
 * all num_cores x jobs_per_core arrays (a job's quanta visit every
 * core). Because the cores are symmetric, one core's private cache
 * hierarchy is simulated and its average access latency reported —
 * Figures 13 and 14 plot exactly this quantity.
 */
#ifndef TQ_CACHE_CHASE_H
#define TQ_CACHE_CHASE_H

#include <cstdint>
#include <functional>

#include "cache/cache_sim.h"
#include "cache/reuse.h"
#include "common/rng.h"
#include "common/units.h"

namespace tq::cache {

/** Configuration of one pointer-chase run. */
struct ChaseConfig
{
    size_t array_bytes = 64 * 1024; ///< per-job array size (1KB..1MB)
    int jobs_per_core = 4;          ///< concurrent jobs per core
    int num_cores = 16;             ///< cluster size (CT rotation width)
    bool centralized = false;       ///< CT (true) vs TLS (false)
    SimNanos quantum = us(2);

    /** Assumed per-access time used to size X = quantum / est_access_ns,
     *  matching the paper's "X is set to match the target quantum". */
    double est_access_ns = 10.0;

    uint64_t warmup_accesses = 100'000;
    uint64_t measured_accesses = 400'000;
    uint64_t seed = 1;

    CacheLatencies latencies;

    /**
     * Optional skewed-access hook: when set, each access to the current
     * array visits line `line_sampler(rng) % lines` instead of the
     * fixed random iteration order — the benches drive this with
     * workloads::ZipfKeyGen to model hot-line skew (the ROADMAP's
     * "Zipfian mix" leftover for the fig13-15 cache study). Null (the
     * default) keeps the paper's pointer chase byte-identical; the
     * cache layer itself stays independent of workloads/.
     */
    std::function<uint64_t(Rng &)> line_sampler;

    /** Arrays this core rotates over. */
    int
    arrays() const
    {
        return centralized ? num_cores * jobs_per_core : jobs_per_core;
    }

    /** Pointer-chase accesses per quantum. */
    uint64_t
    accesses_per_quantum() const
    {
        const double x = quantum / est_access_ns;
        return x < 1 ? 1 : static_cast<uint64_t>(x);
    }
};

/** Measurements of one pointer-chase run. */
struct ChaseResult
{
    double avg_latency_ns = 0;
    uint64_t accesses = 0;
    double l1_miss_rate = 0;
    double l2_miss_rate = 0; ///< misses at L2 / total accesses
};

/** Run the microbenchmark against the modeled cache hierarchy. */
ChaseResult run_chase(const ChaseConfig &cfg);

/**
 * Feed the same access stream through an exact reuse-distance analyzer
 * (Table 2's empirical check). @p max_accesses bounds the stream since
 * Olken analysis is costlier than cache simulation.
 */
ReuseAnalyzer analyze_chase_reuse(const ChaseConfig &cfg,
                                  uint64_t max_accesses);

} // namespace tq::cache

#endif // TQ_CACHE_CHASE_H
