/**
 * @file
 * Set-associative LRU cache-hierarchy model.
 *
 * Models one core's private L1/L2 (Skylake-SP-like: 32KB/8-way L1,
 * 1MB/16-way L2, 64B lines) and reports per-access latency. The paper's
 * microsecond-scale cache study (section 5.5) reasons entirely about
 * capacity misses in private caches under quantum interleaving, which
 * this model captures; coherence and prefetching are deliberately absent
 * (the paper's pointer-chase workload defeats prefetching by design).
 */
#ifndef TQ_CACHE_CACHE_SIM_H
#define TQ_CACHE_CACHE_SIM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tq::cache {

/** One set-associative LRU cache level. */
class CacheLevel
{
  public:
    /**
     * @param capacity_bytes total size (e.g. 32*1024).
     * @param ways associativity.
     * @param line_bytes cache-line size (64).
     */
    CacheLevel(size_t capacity_bytes, int ways, int line_bytes = 64);

    /**
     * Access the line containing @p addr.
     * @return true on hit; on miss the line is installed (LRU evicted).
     */
    bool access(uint64_t addr);

    /** Drop all contents. */
    void clear();

    size_t capacity() const { return capacity_; }
    int ways() const { return ways_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        uint64_t tag = ~0ULL;
        uint64_t lru = 0; ///< last-use stamp
    };

    size_t capacity_;
    int ways_;
    int line_shift_;
    size_t num_sets_;
    std::vector<Way> ways_storage_; ///< num_sets_ x ways_
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Access latencies of the modeled hierarchy, in nanoseconds. */
struct CacheLatencies
{
    double l1_hit = 1.5;   ///< ~4 cycles at 2.1-2.7 GHz
    double l2_hit = 6.0;   ///< ~14 cycles
    double memory = 70.0;  ///< DRAM (L2 miss)
};

/** A private L1+L2 hierarchy for one core. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(CacheLatencies lat = CacheLatencies{},
                            size_t l1_bytes = 32 * 1024, int l1_ways = 8,
                            size_t l2_bytes = 1024 * 1024, int l2_ways = 16);

    /** Access @p addr; @return the latency in nanoseconds. */
    double access(uint64_t addr);

    CacheLevel &l1() { return l1_; }
    CacheLevel &l2() { return l2_; }

  private:
    CacheLatencies lat_;
    CacheLevel l1_;
    CacheLevel l2_;
};

} // namespace tq::cache

#endif // TQ_CACHE_CACHE_SIM_H
