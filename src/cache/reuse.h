/**
 * @file
 * Exact reuse-distance analysis (Olken's algorithm).
 *
 * Reuse distance of an access = number of *distinct* cache lines touched
 * between the previous access to the same line and this one (paper
 * section 5.5.2). For a fully-associative LRU cache of capacity C lines,
 * an access hits iff its reuse distance is below C — the analytical tool
 * behind the paper's Table 2 and Figure 15.
 *
 * Implementation: a Fenwick tree over access timestamps marks which
 * timestamps are the *latest* access of some line; the reuse distance of
 * an access to line L is the number of marked timestamps after L's
 * previous access. O(log n) per access over a dynamically grown window.
 */
#ifndef TQ_CACHE_REUSE_H
#define TQ_CACHE_REUSE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"

namespace tq::cache {

/** Streaming exact reuse-distance analyzer over 64-byte lines. */
class ReuseAnalyzer
{
  public:
    /** Distance reported for a line's first-ever access. */
    static constexpr uint64_t kInfinite = ~0ULL;

    ReuseAnalyzer() = default;

    /**
     * Record an access to the line containing @p addr.
     * @return the access's reuse distance in *lines* (kInfinite for cold
     *     accesses).
     */
    uint64_t access(uint64_t addr);

    /** Number of accesses recorded. */
    uint64_t accesses() const { return time_; }

    /** Number of cold (first-touch) accesses. */
    uint64_t cold() const { return cold_; }

    /**
     * Histogram of finite reuse distances in *bytes* (distance x 64),
     * with power-of-two buckets from 64B to @p max_pow2 B.
     */
    LogHistogram byte_histogram(int num_buckets = 16) const;

    /** Fraction of non-cold accesses with distance > threshold_bytes. */
    double fraction_above_bytes(uint64_t threshold_bytes) const;

    /** All finite reuse distances observed, in lines (analysis export). */
    const std::vector<uint64_t> &distances() const { return distances_; }

  private:
    void fenwick_add(size_t i, int delta);
    int64_t fenwick_sum(size_t i) const; ///< prefix sum of [0, i]
    void append_slot(); ///< grow the tree by one zero-valued timestamp

    std::unordered_map<uint64_t, uint64_t> last_access_; ///< line -> time
    std::vector<int> tree_;      ///< Fenwick over timestamps
    std::vector<uint64_t> distances_; ///< finite distances (lines)
    uint64_t time_ = 0;
    uint64_t cold_ = 0;
};

} // namespace tq::cache

#endif // TQ_CACHE_REUSE_H
