#include "cache/chase.h"

#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tq::cache {

namespace {

/**
 * Generates the interleaved pointer-chase access stream one address at a
 * time: rotate over the arrays, X accesses per quantum, each array
 * resuming its saved position in its fixed random visit order.
 */
class ChaseStream
{
  public:
    explicit ChaseStream(const ChaseConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
    {
        TQ_CHECK(cfg.array_bytes >= 64);
        const size_t lines = cfg.array_bytes / 64;
        const int n = cfg.arrays();
        orders_.resize(static_cast<size_t>(n));
        positions_.assign(static_cast<size_t>(n), 0);
        for (int a = 0; a < n; ++a) {
            auto &order = orders_[static_cast<size_t>(a)];
            order.resize(lines);
            std::iota(order.begin(), order.end(), 0u);
            // Fisher-Yates with the shared rng: fixed random iteration
            // order per array (paper: "fix a random element iteration
            // order").
            for (size_t i = lines - 1; i > 0; --i) {
                const size_t j = rng_.below(i + 1);
                std::swap(order[i], order[j]);
            }
        }
        per_quantum_ = cfg.accesses_per_quantum();
    }

    /** Next address of the stream. */
    uint64_t
    next()
    {
        if (left_in_quantum_ == 0) {
            current_ = (current_ + 1) % orders_.size();
            left_in_quantum_ = per_quantum_;
        }
        --left_in_quantum_;
        auto &order = orders_[current_];
        size_t &pos = positions_[current_];
        const uint64_t base =
            (static_cast<uint64_t>(current_) + 1) << 24; // 16MB apart
        // Skewed mixes draw the visited line per access; the default is
        // the paper's fixed-iteration-order chase (the ctor's shuffles
        // are the rng's only draws then, so runs stay byte-identical).
        uint64_t line;
        if (cfg_.line_sampler) {
            line = cfg_.line_sampler(rng_) % order.size();
        } else {
            line = order[pos];
            pos = (pos + 1) % order.size();
        }
        return base + line * 64;
    }

  private:
    const ChaseConfig &cfg_;
    Rng rng_;
    std::vector<std::vector<uint32_t>> orders_;
    std::vector<size_t> positions_;
    size_t current_ = 0;
    uint64_t per_quantum_ = 0;
    uint64_t left_in_quantum_ = 0;
};

} // namespace

ChaseResult
run_chase(const ChaseConfig &cfg)
{
    ChaseStream stream(cfg);
    CacheHierarchy caches(cfg.latencies);

    for (uint64_t i = 0; i < cfg.warmup_accesses; ++i)
        caches.access(stream.next());

    const uint64_t l1_miss0 = caches.l1().misses();
    const uint64_t l2_miss0 = caches.l2().misses();
    double total_ns = 0;
    for (uint64_t i = 0; i < cfg.measured_accesses; ++i)
        total_ns += caches.access(stream.next());

    ChaseResult r;
    r.accesses = cfg.measured_accesses;
    r.avg_latency_ns = total_ns / static_cast<double>(cfg.measured_accesses);
    r.l1_miss_rate =
        static_cast<double>(caches.l1().misses() - l1_miss0) /
        static_cast<double>(cfg.measured_accesses);
    r.l2_miss_rate =
        static_cast<double>(caches.l2().misses() - l2_miss0) /
        static_cast<double>(cfg.measured_accesses);
    return r;
}

ReuseAnalyzer
analyze_chase_reuse(const ChaseConfig &cfg, uint64_t max_accesses)
{
    ChaseStream stream(cfg);
    ReuseAnalyzer analyzer;
    for (uint64_t i = 0; i < max_accesses; ++i)
        analyzer.access(stream.next());
    return analyzer;
}

} // namespace tq::cache
