/**
 * @file
 * Arrival-time processes for the load generator and the simulators.
 *
 * Everything here works in the nanosecond domain and is pull-based: the
 * caller hands in the previous arrival time and an Rng, and gets the
 * next arrival time back. Both `tq::net::run_open_loop` (which converts
 * to cycles at the send site) and `tq::sim::EngineCore` (which consumes
 * SimNanos directly) draw from the same process objects, so a seeded
 * trace replays identically through the real runtime and the simulator
 * (tests/integration_test.cc arrival-parity suite).
 *
 * Processes:
 *  - Poisson: the classic open-loop stream (exponential gaps). Draws
 *    exactly one exponential per arrival, value-for-value identical to
 *    the historical inline `rng.exponential(mean_gap)` code, so default
 *    figure benches stay byte-identical.
 *  - On-off / MMPP: a two-phase modulated Poisson process. Phase
 *    lengths are either deterministic (classic on-off) or exponential
 *    (a 2-state Markov-modulated Poisson process); each phase scales
 *    the base rate by a multiplier, optionally shaped further by a
 *    slow sinusoidal "diurnal" ramp. Sampling inverts the cumulative
 *    intensity with a unit-exponential budget, so zero-rate phases are
 *    skipped without ever dividing by the rate — a zero or near-zero
 *    off rate can neither divide-by-zero nor spin (see
 *    tests/common_test.cc OnOffProcess.*).
 */
#ifndef TQ_COMMON_ARRIVAL_H
#define TQ_COMMON_ARRIVAL_H

#include <cstdint>
#include <memory>

#include "common/rng.h"

namespace tq {

/** Pull-based arrival-time stream in nanoseconds. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * Next arrival strictly after @p from_ns (monotone non-decreasing
     * calls). All randomness comes from @p rng so interleaving with
     * service-demand draws is reproducible across engines.
     */
    virtual double next(double from_ns, Rng &rng) = 0;

    /** Long-run average rate in requests per nanosecond. */
    virtual double mean_rate() const = 0;

    /**
     * Number of modulation phases entered so far (0 for memoryless
     * processes). The load generator samples in-flight occupancy at
     * phase boundaries to build the per-phase burst histogram.
     */
    virtual uint64_t phases_begun() const { return 0; }
};

/** Homogeneous Poisson arrivals: exponential inter-arrival gaps. */
class PoissonProcess final : public ArrivalProcess
{
  public:
    /** @param rate_per_ns arrivals per nanosecond (> 0). */
    explicit PoissonProcess(double rate_per_ns);

    double next(double from_ns, Rng &rng) override;
    double mean_rate() const override { return rate_; }

  private:
    double rate_;
    double mean_gap_ns_;
};

/** Parameters of the on-off / MMPP process (see OnOffProcess). */
struct OnOffConfig
{
    /** Rate multiplier applied to the base rate while ON. */
    double on_mult = 2.0;
    /** Rate multiplier while OFF; 0 is a fully silent phase. */
    double off_mult = 0.0;
    /** Mean (exponential) or exact (deterministic) ON phase length. */
    double on_ns = 50e3;
    /** Mean or exact OFF phase length. */
    double off_ns = 50e3;
    /**
     * true: phase lengths are exponential draws — the process is a
     * 2-state MMPP. false: fixed lengths — deterministic on-off.
     */
    bool exponential_phases = true;
    /**
     * Diurnal ramp period; 0 disables the ramp. When enabled, each
     * phase's rate is further scaled by
     * 1 + ramp_amplitude * sin(2*pi * phase_start / ramp_period_ns),
     * evaluated once at the phase start (piecewise-constant
     * approximation of the slow ramp — see DESIGN.md).
     */
    double ramp_period_ns = 0;
    /** Ramp amplitude in [0, 1]; 1 lets the trough rate reach zero. */
    double ramp_amplitude = 0;
};

/**
 * Two-phase modulated Poisson arrivals (MMPP / on-off / diurnal).
 *
 * Implementation: thinning-free inversion of the piecewise-constant
 * cumulative intensity. Each call draws one unit-exponential "budget"
 * and walks phases, consuming `rate * span` of budget per phase, until
 * the remainder fits inside the current phase. Phases with zero rate
 * contribute zero capacity and are stepped over without any division;
 * phase-length draws only happen when a phase boundary is actually
 * crossed, so the draw sequence is a pure function of the arrival
 * sequence (replayable).
 */
class OnOffProcess final : public ArrivalProcess
{
  public:
    /**
     * @param base_rate_per_ns the nominal rate the multipliers scale
     *     (> 0); the ON rate `base * on_mult` must be positive or the
     *     process could silence forever.
     */
    OnOffProcess(double base_rate_per_ns, const OnOffConfig &cfg);

    double next(double from_ns, Rng &rng) override;
    double mean_rate() const override;
    uint64_t phases_begun() const override { return phases_begun_; }

  private:
    void advance_phase(Rng &rng);
    double phase_rate(bool on, double phase_start) const;

    double base_rate_;
    OnOffConfig cfg_;

    // Current phase [phase_start_, phase_end_) at rate rate_now_.
    double phase_start_ = 0;
    double phase_end_ = 0;
    double rate_now_ = 0;
    bool on_ = false; // phase 0 (entered on first draw) is ON
    uint64_t phases_begun_ = 0;
};

/**
 * Value-type description of an arrival process, safe to embed in sweep
 * configs that are copied across threads (`sim::parallel_run`): each
 * run constructs its own process instance via make_arrival_process().
 */
struct ArrivalSpec
{
    enum class Kind {
        Poisson, ///< default; byte-identical to the historical path
        OnOff,   ///< MMPP / on-off / diurnal per `onoff`
    };
    Kind kind = Kind::Poisson;
    OnOffConfig onoff;
};

/** Instantiate the process described by @p spec at @p rate_per_ns. */
std::unique_ptr<ArrivalProcess>
make_arrival_process(const ArrivalSpec &spec, double rate_per_ns);

} // namespace tq

#endif // TQ_COMMON_ARRIVAL_H
