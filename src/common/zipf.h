/**
 * @file
 * Zipfian rank sampling for hot-key request generation.
 *
 * The sampler is the rejection-inversion method of Hörmann &
 * Derflinger ("Rejection-inversion to generate variates from monotone
 * discrete distributions", 1996): O(1) per draw with no precomputed
 * table, and — unlike the naive CDF inversion over the generalized
 * harmonic number — numerically stable through the s -> 1 singularity,
 * because the incomplete-H integral is evaluated with expm1/log1p
 * helpers whose removable singularities at (1-s) -> 0 are handled
 * explicitly (tests/common_test.cc Zipf.* pins continuity across s=1).
 */
#ifndef TQ_COMMON_ZIPF_H
#define TQ_COMMON_ZIPF_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/dist.h"
#include "common/rng.h"

namespace tq {

/**
 * Zipf(n, s): rank r in [0, n) with P(r) proportional to 1/(r+1)^s.
 * Stateless after construction; safe to share across threads (sampling
 * only touches the caller's Rng).
 */
class Zipf
{
  public:
    /** @param n number of ranks (>= 1); @param s exponent (>= 0). */
    Zipf(uint64_t n, double s);

    /** Draw a 0-based rank (0 is the hottest). */
    uint64_t sample(Rng &rng) const;

    uint64_t n() const { return n_; }
    double s() const { return s_; }

    /**
     * P(rank), computed through the same stable machinery as the
     * sampler (exp(-s log(rank+1)) over the generalized harmonic
     * number accumulated in descending order).
     */
    double pmf(uint64_t rank) const;

  private:
    double h_integral(double x) const;
    double h(double x) const;
    static double helper1(double x);
    static double helper2(double x);
    double h_integral_inverse(double x) const;

    uint64_t n_;
    double s_;
    // Constants of the rejection-inversion envelope.
    double h_integral_x1_;
    double h_integral_n_;
    double threshold_;
};

/**
 * The simulator-side analogue of Zipf hot-key skew: a two-class
 * ServiceDist where requests hitting one of the `hot_keys` hottest
 * ranks are cheap (cache-resident) and the rest are expensive
 * (cache-miss / disk path). Lets `tq::sim` sweeps cover skewed MiniKV
 * traffic with the same knobs the real-runtime scenario uses.
 */
class ZipfKeyDist final : public ServiceDist
{
  public:
    ZipfKeyDist(uint64_t num_keys, double s, uint64_t hot_keys,
                SimNanos hot_demand, SimNanos cold_demand);

    ServiceSample sample(Rng &rng) const override;
    SimNanos mean() const override { return mean_; }
    const std::vector<std::string> &class_names() const override
    {
        return names_;
    }

    /** Probability mass on the hot ranks (exact, from the pmf). */
    double hot_fraction() const { return hot_fraction_; }

  private:
    Zipf zipf_;
    uint64_t hot_keys_;
    SimNanos hot_demand_;
    SimNanos cold_demand_;
    double hot_fraction_;
    SimNanos mean_;
    std::vector<std::string> names_;
};

} // namespace tq

#endif // TQ_COMMON_ZIPF_H
