/**
 * @file
 * Fast deterministic pseudo-random number generation.
 *
 * Implements xoshiro256** (Blackman & Vigna), a small, fast generator with
 * excellent statistical quality, plus the handful of variate transforms the
 * simulator and workload generators need. Every consumer takes an explicit
 * seed so that all experiments are reproducible.
 */
#ifndef TQ_COMMON_RNG_H
#define TQ_COMMON_RNG_H

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace tq {

/** xoshiro256** pseudo-random generator with convenience variates. */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Seed via splitmix64 expansion so any 64-bit seed is acceptable. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ULL; }

    /** @return the next raw 64-bit output. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high bits -> double mantissa.
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return uniform integer in [0, n); n must be positive. */
    uint64_t
    below(uint64_t n)
    {
        // A release build used to return 0 for n == 0, which silently
        // turned callers' off-by-ones into out-of-bounds indexes (the
        // PowerOfTwo single-worker dispatch bug); fail loudly instead.
        TQ_CHECK(n > 0);
        // Lemire's multiply-shift rejection-free mapping (slightly biased
        // for astronomically large n; fine for simulation purposes).
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(operator()()) * n) >> 64);
    }

    /** @return exponential variate with the given mean (> 0). */
    double
    exponential(double mean)
    {
        TQ_DCHECK(mean > 0);
        // 1 - uniform() is in (0, 1], so log() is finite.
        return -mean * std::log1p(-uniform());
    }

    /** @return true with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace tq

#endif // TQ_COMMON_RNG_H
