#include "common/histogram.h"

#include <cstdio>

#include "common/check.h"

namespace tq {

LogHistogram::LogHistogram(uint64_t base, int num_buckets)
    : base_(base), buckets_(static_cast<size_t>(num_buckets), 0)
{
    TQ_CHECK(base >= 1);
    TQ_CHECK(num_buckets > 0 && num_buckets < 64);
}

void
LogHistogram::add(uint64_t value, uint64_t count)
{
    total_ += count;
    if (value < base_) {
        underflow_ += count;
        return;
    }
    for (int i = 0; i < num_buckets(); ++i) {
        if (value < bucket_hi(i)) {
            buckets_[static_cast<size_t>(i)] += count;
            return;
        }
    }
    overflow_ += count;
}

double
LogHistogram::fraction_above(uint64_t threshold) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t above = overflow_;
    for (int i = 0; i < num_buckets(); ++i) {
        if (bucket_hi(i) > threshold)
            above += buckets_[static_cast<size_t>(i)];
    }
    if (threshold < base_)
        above += underflow_;
    return static_cast<double>(above) / static_cast<double>(total_);
}

std::string
LogHistogram::to_string() const
{
    std::string out;
    char line[128];
    auto emit = [&](uint64_t lo, uint64_t hi, uint64_t count) {
        const double pct =
            total_ ? 100.0 * static_cast<double>(count) /
                         static_cast<double>(total_)
                   : 0.0;
        std::snprintf(line, sizeof(line), "%12llu - %12llu: %10llu (%5.1f%%)\n",
                      static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(count), pct);
        out += line;
    };
    if (underflow_)
        emit(0, base_, underflow_);
    for (int i = 0; i < num_buckets(); ++i)
        emit(bucket_lo(i), bucket_hi(i), bucket_count(i));
    if (overflow_)
        emit(bucket_hi(num_buckets() - 1), ~0ULL, overflow_);
    return out;
}

} // namespace tq
