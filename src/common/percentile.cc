#include "common/percentile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tq {

size_t
PercentileTracker::warmup_index(double warmup_fraction) const
{
    TQ_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
    return static_cast<size_t>(
        std::floor(static_cast<double>(samples_.size()) * warmup_fraction));
}

double
PercentileTracker::quantile(double q, double warmup_fraction)
{
    TQ_CHECK(q >= 0.0 && q <= 1.0);
    const size_t begin = warmup_index(warmup_fraction);
    if (begin >= samples_.size())
        return 0.0;
    const size_t n = samples_.size() - begin;
    // Nearest-rank with the convention that q == 1 selects the maximum.
    size_t rank = static_cast<size_t>(q * static_cast<double>(n));
    if (rank >= n)
        rank = n - 1;
    auto first = samples_.begin() + static_cast<ptrdiff_t>(begin);
    std::nth_element(first, first + static_cast<ptrdiff_t>(rank),
                     samples_.end());
    return *(first + static_cast<ptrdiff_t>(rank));
}

std::vector<double>
PercentileTracker::quantiles(std::span<const double> qs,
                             double warmup_fraction)
{
    const size_t begin = warmup_index(warmup_fraction);
    if (begin >= samples_.size())
        return std::vector<double>(qs.size(), 0.0);
    const size_t n = samples_.size() - begin;
    auto first = samples_.begin() + static_cast<ptrdiff_t>(begin);
    std::sort(first, samples_.end());
    std::vector<double> out;
    out.reserve(qs.size());
    for (const double q : qs) {
        TQ_CHECK(q >= 0.0 && q <= 1.0);
        size_t rank = static_cast<size_t>(q * static_cast<double>(n));
        if (rank >= n)
            rank = n - 1;
        out.push_back(*(first + static_cast<ptrdiff_t>(rank)));
    }
    return out;
}

double
PercentileTracker::mean(double warmup_fraction) const
{
    const size_t begin = warmup_index(warmup_fraction);
    if (begin >= samples_.size())
        return 0.0;
    double sum = 0;
    for (size_t i = begin; i < samples_.size(); ++i)
        sum += samples_[i];
    return sum / static_cast<double>(samples_.size() - begin);
}

double
PercentileTracker::max(double warmup_fraction) const
{
    const size_t begin = warmup_index(warmup_fraction);
    if (begin >= samples_.size())
        return 0.0;
    return *std::max_element(samples_.begin() + static_cast<ptrdiff_t>(begin),
                             samples_.end());
}

} // namespace tq
