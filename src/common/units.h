/**
 * @file
 * Time-unit helpers.
 *
 * Simulated time throughout tq::sim is carried as double nanoseconds
 * (type alias SimNanos); these helpers make unit conversions explicit at
 * call sites (e.g. tq::us(2.0) for a 2 microsecond quantum).
 */
#ifndef TQ_COMMON_UNITS_H
#define TQ_COMMON_UNITS_H

namespace tq {

/** Simulated time / durations, in nanoseconds. */
using SimNanos = double;

/** @return @p v nanoseconds expressed as SimNanos. */
constexpr SimNanos ns(double v) { return v; }
/** @return @p v microseconds expressed as SimNanos. */
constexpr SimNanos us(double v) { return v * 1e3; }
/** @return @p v milliseconds expressed as SimNanos. */
constexpr SimNanos ms(double v) { return v * 1e6; }
/** @return @p v seconds expressed as SimNanos. */
constexpr SimNanos sec(double v) { return v * 1e9; }

/** @return nanoseconds @p v expressed in microseconds. */
constexpr double to_us(SimNanos v) { return v / 1e3; }
/** @return nanoseconds @p v expressed in seconds. */
constexpr double to_sec(SimNanos v) { return v / 1e9; }

/**
 * @return offered request rate, in requests/ns, for @p mrps million
 * requests per second. 1 Mrps == 1e6 req/s == 1e-3 req/ns.
 */
constexpr double mrps(double v) { return v * 1e-3; }

/** @return requests/ns rate @p v expressed in Mrps. */
constexpr double to_mrps(double v) { return v * 1e3; }

} // namespace tq

#endif // TQ_COMMON_UNITS_H
