#include "common/arrival.h"

#include <cmath>

#include "common/check.h"

namespace tq {

PoissonProcess::PoissonProcess(double rate_per_ns) : rate_(rate_per_ns)
{
    TQ_CHECK(rate_ > 0);
    mean_gap_ns_ = 1.0 / rate_;
}

double
PoissonProcess::next(double from_ns, Rng &rng)
{
    // Exactly the historical inline code path: one exponential draw at
    // the mean gap. rng.exponential(m) is -m*log1p(-uniform()), so this
    // is value-for-value what every pre-existing caller computed.
    return from_ns + rng.exponential(mean_gap_ns_);
}

OnOffProcess::OnOffProcess(double base_rate_per_ns, const OnOffConfig &cfg)
    : base_rate_(base_rate_per_ns), cfg_(cfg)
{
    TQ_CHECK(base_rate_ > 0);
    TQ_CHECK(cfg_.on_ns > 0 && cfg_.off_ns >= 0);
    TQ_CHECK(cfg_.on_mult > 0); // the ON phase must emit, or the
                                // process could stay silent forever
    TQ_CHECK(cfg_.off_mult >= 0);
    TQ_CHECK(cfg_.ramp_amplitude >= 0 && cfg_.ramp_amplitude <= 1);
    if (cfg_.ramp_amplitude > 0)
        TQ_CHECK(cfg_.ramp_period_ns > 0);
}

double
OnOffProcess::phase_rate(bool on, double phase_start) const
{
    double r = base_rate_ * (on ? cfg_.on_mult : cfg_.off_mult);
    if (cfg_.ramp_amplitude > 0) {
        const double ramp =
            1.0 + cfg_.ramp_amplitude *
                      std::sin(2.0 * M_PI * phase_start /
                               cfg_.ramp_period_ns);
        // sin() can land a hair below -1 in the last ulp; never let a
        // rounding error produce a negative rate.
        r *= ramp < 0 ? 0.0 : ramp;
    }
    return r;
}

void
OnOffProcess::advance_phase(Rng &rng)
{
    on_ = !on_;
    ++phases_begun_;
    phase_start_ = phase_end_;
    const double mean_span = on_ ? cfg_.on_ns : cfg_.off_ns;
    const double span = cfg_.exponential_phases && mean_span > 0
                            ? rng.exponential(mean_span)
                            : mean_span;
    phase_end_ = phase_start_ + span;
    rate_now_ = phase_rate(on_, phase_start_);
}

double
OnOffProcess::next(double from_ns, Rng &rng)
{
    // Invert the cumulative intensity: one unit-exponential budget,
    // consumed phase by phase at `rate * span` capacity each.
    double need = rng.exponential(1.0);
    double t = from_ns > phase_start_ ? from_ns : phase_start_;
    while (true) {
        // Enter the phase containing t (draws phase lengths lazily;
        // the very first call starts phase 1 = ON at time 0).
        while (t >= phase_end_)
            advance_phase(rng);
        if (rate_now_ > 0) {
            const double cap = rate_now_ * (phase_end_ - t);
            if (need <= cap)
                return t + need / rate_now_;
            need -= cap;
        }
        // Zero-rate (or exhausted) phase: step over it without ever
        // dividing by the rate.
        t = phase_end_;
    }
}

double
OnOffProcess::mean_rate() const
{
    // Duty-cycle average; the sinusoidal ramp integrates to 1 over a
    // full period so it does not move the long-run mean.
    const double cycle = cfg_.on_ns + cfg_.off_ns;
    return base_rate_ *
           (cfg_.on_mult * cfg_.on_ns + cfg_.off_mult * cfg_.off_ns) /
           cycle;
}

std::unique_ptr<ArrivalProcess>
make_arrival_process(const ArrivalSpec &spec, double rate_per_ns)
{
    switch (spec.kind) {
    case ArrivalSpec::Kind::OnOff:
        return std::make_unique<OnOffProcess>(rate_per_ns, spec.onoff);
    case ArrivalSpec::Kind::Poisson:
        break;
    }
    return std::make_unique<PoissonProcess>(rate_per_ns);
}

} // namespace tq
