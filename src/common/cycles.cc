#include "common/cycles.h"

#include <chrono>

namespace tq {

namespace {

/**
 * Measure TSC ticks across a fixed wall-clock window. A single ~20ms
 * window gives well under 0.1% error on an invariant TSC, which is far
 * tighter than any quantum tolerance the scheduler cares about.
 */
double
calibrate()
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const Cycles c0 = rdcycles();
    const auto deadline = t0 + std::chrono::milliseconds(20);
    while (clock::now() < deadline) {
        // spin
    }
    const Cycles c1 = rdcycles();
    const auto t1 = clock::now();
    const double elapsed_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    return static_cast<double>(c1 - c0) / elapsed_ns;
}

} // namespace

double
cycles_per_ns()
{
    static const double ratio = calibrate();
    return ratio;
}

} // namespace tq
