#include "common/zipf.h"

#include <cmath>

#include "common/check.h"

namespace tq {

// H(x) = integral of h(u) du with h(u) = u^(-s), expressed as
// helper2((1-s) log x) * log x so the (1-s) -> 0 limit (H = log x) is
// exact instead of 0/0.
double
Zipf::h_integral(double x) const
{
    const double log_x = std::log(x);
    return helper2((1.0 - s_) * log_x) * log_x;
}

double
Zipf::h(double x) const
{
    return std::exp(-s_ * std::log(x));
}

// (log1p(x))/x, continuous at 0.
double
Zipf::helper1(double x)
{
    if (std::abs(x) > 1e-8)
        return std::log1p(x) / x;
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

// (expm1(x))/x, continuous at 0.
double
Zipf::helper2(double x)
{
    if (std::abs(x) > 1e-8)
        return std::expm1(x) / x;
    return 1.0 + x * (0.5 + x * (1.0 / 6.0 + x * (1.0 / 24.0)));
}

// Inverse of h_integral: exp(helper1(t) * x) with t = x * (1-s),
// clamped at -1 where the true inverse leaves the domain (only reached
// through floating-point round-off at the integration boundary).
double
Zipf::h_integral_inverse(double x) const
{
    double t = x * (1.0 - s_);
    if (t < -1.0)
        t = -1.0;
    return std::exp(helper1(t) * x);
}

Zipf::Zipf(uint64_t n, double s) : n_(n), s_(s)
{
    TQ_CHECK(n_ >= 1);
    TQ_CHECK(s_ >= 0);
    h_integral_x1_ = h_integral(1.5) - 1.0;
    h_integral_n_ = h_integral(static_cast<double>(n_) + 0.5);
    threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

uint64_t
Zipf::sample(Rng &rng) const
{
    while (true) {
        const double u =
            h_integral_n_ +
            rng.uniform() * (h_integral_x1_ - h_integral_n_);
        // u is in (h_integral(1.5) - 1, h_integral(n + 0.5)].
        const double x = h_integral_inverse(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        // Accept in the unbounded-rejection-free region, else do the
        // exact envelope comparison.
        if (static_cast<double>(k) - x <= threshold_ ||
            u >= h_integral(static_cast<double>(k) + 0.5) -
                     h(static_cast<double>(k)))
            return k - 1;
    }
}

double
Zipf::pmf(uint64_t rank) const
{
    TQ_CHECK(rank < n_);
    // Generalized harmonic number, accumulated smallest-first so the
    // long tail is not swallowed by the head's rounding.
    double norm = 0;
    for (uint64_t k = n_; k >= 1; --k)
        norm += h(static_cast<double>(k));
    return h(static_cast<double>(rank + 1)) / norm;
}

ZipfKeyDist::ZipfKeyDist(uint64_t num_keys, double s, uint64_t hot_keys,
                         SimNanos hot_demand, SimNanos cold_demand)
    : zipf_(num_keys, s), hot_keys_(hot_keys), hot_demand_(hot_demand),
      cold_demand_(cold_demand), names_({"HOT", "COLD"})
{
    TQ_CHECK(hot_keys_ >= 1 && hot_keys_ <= num_keys);
    TQ_CHECK(hot_demand_ > 0 && cold_demand_ > 0);
    // One smallest-first pass builds both the normalization and the
    // hot-prefix mass (pmf() per rank would rescan the tail each time).
    double norm = 0;
    double hot = 0;
    for (uint64_t k = num_keys; k >= 1; --k) {
        const double w = std::exp(-s * std::log(static_cast<double>(k)));
        norm += w;
        if (k <= hot_keys_)
            hot += w;
    }
    hot_fraction_ = hot / norm;
    mean_ = hot_fraction_ * hot_demand_ +
            (1.0 - hot_fraction_) * cold_demand_;
}

ServiceSample
ZipfKeyDist::sample(Rng &rng) const
{
    const uint64_t rank = zipf_.sample(rng);
    if (rank < hot_keys_)
        return {hot_demand_, 0};
    return {cold_demand_, 1};
}

} // namespace tq
