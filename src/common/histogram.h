/**
 * @file
 * Log-bucketed histogram.
 *
 * Used for the reuse-distance histograms of paper Figure 15 (power-of-two
 * byte buckets) and for coarse latency summaries. Buckets are
 * [base * 2^i, base * 2^(i+1)) with an underflow bucket below base.
 */
#ifndef TQ_COMMON_HISTOGRAM_H
#define TQ_COMMON_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace tq {

/** Histogram over uint64 values with power-of-two bucket widths. */
class LogHistogram
{
  public:
    /**
     * @param base lower edge of the first regular bucket (values below it
     *     land in the underflow bucket); must be >= 1.
     * @param num_buckets number of regular power-of-two buckets; values at
     *     or above base * 2^num_buckets land in the overflow bucket.
     */
    LogHistogram(uint64_t base, int num_buckets);

    /** Record one value. */
    void add(uint64_t value, uint64_t count = 1);

    /** Total number of recorded values. */
    uint64_t total() const { return total_; }

    /** Count in the underflow bucket (values < base). */
    uint64_t underflow() const { return underflow_; }

    /** Count in the overflow bucket. */
    uint64_t overflow() const { return overflow_; }

    /** Count in regular bucket @p i. */
    uint64_t bucket_count(int i) const { return buckets_[i]; }

    /** Inclusive lower edge of regular bucket @p i. */
    uint64_t bucket_lo(int i) const { return base_ << i; }

    /** Exclusive upper edge of regular bucket @p i. */
    uint64_t bucket_hi(int i) const { return base_ << (i + 1); }

    /** Number of regular buckets. */
    int num_buckets() const { return static_cast<int>(buckets_.size()); }

    /**
     * Fraction of recorded values strictly greater than @p threshold,
     * resolved at bucket granularity (a bucket straddling the threshold
     * counts as above it). Returns 0 when empty.
     */
    double fraction_above(uint64_t threshold) const;

    /** Multi-line "lo-hi: count (pct)" rendering for reports. */
    std::string to_string() const;

  private:
    uint64_t base_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace tq

#endif // TQ_COMMON_HISTOGRAM_H
