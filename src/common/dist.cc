#include "common/dist.h"

#include <algorithm>

#include "common/check.h"

namespace tq {

FixedDist::FixedDist(SimNanos demand, std::string name)
    : demand_(demand), names_{std::move(name)}
{
    TQ_CHECK(demand > 0);
}

ServiceSample
FixedDist::sample(Rng &) const
{
    return {demand_, 0};
}

ExponentialDist::ExponentialDist(SimNanos mean)
    : mean_(mean), names_{"exp"}
{
    TQ_CHECK(mean > 0);
}

ServiceSample
ExponentialDist::sample(Rng &rng) const
{
    return {rng.exponential(mean_), 0};
}

MixtureDist::MixtureDist(std::vector<Component> components)
    : components_(std::move(components))
{
    TQ_CHECK(!components_.empty());
    double total = 0;
    for (const auto &c : components_) {
        TQ_CHECK(c.demand > 0 && c.weight > 0);
        total += c.weight;
    }
    double acc = 0;
    for (const auto &c : components_) {
        acc += c.weight / total;
        cumulative_.push_back(acc);
        names_.push_back(c.name);
        mean_ += c.demand * (c.weight / total);
    }
    cumulative_.back() = 1.0; // guard against rounding drift
}

ServiceSample
MixtureDist::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    const int idx = static_cast<int>(it - cumulative_.begin());
    return {components_[idx].demand, idx};
}

namespace workload_table {

std::unique_ptr<MixtureDist>
extreme_bimodal()
{
    return std::make_unique<MixtureDist>(std::vector<MixtureDist::Component>{
        {"Short", us(0.5), 99.5},
        {"Long", us(500), 0.5},
    });
}

std::unique_ptr<MixtureDist>
high_bimodal()
{
    return std::make_unique<MixtureDist>(std::vector<MixtureDist::Component>{
        {"Short", us(1), 50},
        {"Long", us(100), 50},
    });
}

std::unique_ptr<MixtureDist>
tpcc()
{
    // Runtimes and mix ratios from paper Table 1.
    return std::make_unique<MixtureDist>(std::vector<MixtureDist::Component>{
        {"Payment", us(5.7), 44},
        {"OrderStatus", us(6), 4},
        {"NewOrder", us(20), 44},
        {"Delivery", us(88), 4},
        {"StockLevel", us(100), 4},
    });
}

std::unique_ptr<ExponentialDist>
exp1()
{
    return std::make_unique<ExponentialDist>(us(1));
}

std::unique_ptr<MixtureDist>
rocksdb(double scan_fraction)
{
    TQ_CHECK(scan_fraction > 0 && scan_fraction < 1);
    return std::make_unique<MixtureDist>(std::vector<MixtureDist::Component>{
        {"GET", us(1.2), 1.0 - scan_fraction},
        {"SCAN", us(675), scan_fraction},
    });
}

} // namespace workload_table
} // namespace tq
