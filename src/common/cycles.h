/**
 * @file
 * Physical cycle clock.
 *
 * Forced multitasking (paper section 3.1) keys every probe off the hardware
 * cycle counter: a probe yields only when enough cycles have elapsed since
 * the previous yield point. This header provides the raw counter read
 * (RDTSC on x86-64, a std::chrono fallback elsewhere) and a one-time
 * calibration of the cycles <-> nanoseconds ratio used to convert target
 * quanta expressed in time into cycle deadlines.
 */
#ifndef TQ_COMMON_CYCLES_H
#define TQ_COMMON_CYCLES_H

#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace tq {

/** Raw cycle-counter value. */
using Cycles = uint64_t;

/**
 * Read the hardware cycle counter.
 *
 * On x86-64 this compiles to a single RDTSC; modern TSCs are invariant
 * (constant-rate, unhalted), which is what makes physical-clock probes
 * accurate. The read is intentionally unserialized: probe sites tolerate
 * out-of-order overlap, and that overlap is exactly why sparse RDTSC
 * probes are cheap (paper section 3.1).
 */
inline Cycles
rdcycles()
{
#if defined(__x86_64__)
    return __rdtsc();
#else
    return static_cast<Cycles>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/**
 * @return calibrated cycle-counter frequency in cycles per nanosecond.
 *
 * The first call spins for a short calibration window (~20ms) against
 * std::chrono::steady_clock; subsequent calls return the cached value.
 * Thread-safe (C++ static-local initialization).
 */
double cycles_per_ns();

/** Convert a duration in nanoseconds into cycle-counter ticks. */
inline Cycles
ns_to_cycles(double nanos)
{
    return static_cast<Cycles>(nanos * cycles_per_ns());
}

/** Convert cycle-counter ticks into nanoseconds. */
inline double
cycles_to_ns(Cycles cycles)
{
    return static_cast<double>(cycles) / cycles_per_ns();
}

} // namespace tq

#endif // TQ_COMMON_CYCLES_H
