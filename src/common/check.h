/**
 * @file
 * Invariant-checking helpers.
 *
 * TQ_CHECK aborts on violated internal invariants (a bug in this library),
 * mirroring gem5's panic(). tq::fatal() exits with an error message for
 * conditions caused by the caller (bad configuration).
 */
#ifndef TQ_COMMON_CHECK_H
#define TQ_COMMON_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace tq {

/**
 * Terminate because the *user* supplied an impossible configuration.
 * Prints the message to stderr and exits with status 1.
 */
[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "tq fatal: %s\n", msg);
    std::exit(1);
}

namespace detail {

[[noreturn]] inline void
check_failed(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "tq check failed: %s at %s:%d\n", expr, file, line);
    std::abort();
}

} // namespace detail
} // namespace tq

/** Abort if @p expr is false; for internal invariants (library bugs). */
#define TQ_CHECK(expr)                                                      \
    do {                                                                    \
        if (!(expr))                                                        \
            ::tq::detail::check_failed(#expr, __FILE__, __LINE__);          \
    } while (0)

/** Debug-only TQ_CHECK; compiled out when NDEBUG is defined. */
#ifdef NDEBUG
#define TQ_DCHECK(expr) ((void)0)
#else
#define TQ_DCHECK(expr) TQ_CHECK(expr)
#endif

#endif // TQ_COMMON_CHECK_H
