/**
 * @file
 * Shard topology and the front-tier JSQ pick, shared by the real
 * runtime and the simulators (DESIGN.md §4g).
 *
 * A cluster with `num_dispatchers` dispatcher shards divides its
 * workers into contiguous, disjoint subsets: shard s owns
 * `shard_span(num_workers, num_dispatchers, s)`, with the remainder of
 * an uneven split spread one-per-shard from shard 0 upward. Both
 * engines use these functions, so the sim's shard model and the
 * runtime's shard construction can never disagree (the shard-assignment
 * parity tests in tests/integration_test.cc assert exactly this).
 *
 * The front tier steers each submitted request to a shard with
 * pick_min_rotated(): an approximate JSQ over the per-shard load
 * estimates. The scan starts at a caller-supplied rotation offset and
 * wraps; only a *strictly* smaller load displaces the incumbent, so
 * ties resolve to the earliest shard in rotated order. Rotating the
 * start (the runtime uses a submitter-local counter, the sim its
 * arrival count) spreads tied picks across shards without any shared
 * tie-break state — at idle, when every estimate reads zero, submitters
 * round-robin instead of piling onto shard 0. The pick is a pure
 * function of (loads, start); tests/common_test.cc holds it to a
 * scalar oracle under 20000 random trials.
 */
#ifndef TQ_COMMON_SHARD_H
#define TQ_COMMON_SHARD_H

#include <cstddef>
#include <cstdint>

namespace tq {

/** One shard's contiguous slice of the worker array. */
struct ShardSpan
{
    int first = 0; ///< index of the shard's first worker
    int count = 0; ///< workers owned (>= 1 when shards <= workers)
};

/**
 * Workers owned by @p shard when @p num_workers are divided over
 * @p num_shards: floor(W/S) each, with the first W%S shards taking one
 * extra so the split is maximally even and contiguous.
 */
constexpr ShardSpan
shard_span(int num_workers, int num_shards, int shard)
{
    const int base = num_workers / num_shards;
    const int extra = num_workers % num_shards;
    const int count = base + (shard < extra ? 1 : 0);
    const int first =
        shard * base + (shard < extra ? shard : extra);
    return ShardSpan{first, count};
}

/** Inverse of shard_span(): the shard owning @p worker. */
constexpr int
shard_of_worker(int num_workers, int num_shards, int worker)
{
    const int base = num_workers / num_shards;
    const int extra = num_workers % num_shards;
    const int boundary = extra * (base + 1);
    if (worker < boundary)
        return worker / (base + 1);
    return extra + (worker - boundary) / base;
}

/**
 * Front-tier JSQ: index of a minimally loaded shard among
 * @p loads[0..n), scanning in rotated order from `start % n`. Only a
 * strictly smaller load displaces the incumbent, so ties keep the
 * earliest shard in rotated order (see the header comment for why the
 * rotation, not the load, is the tie-break).
 */
inline int
pick_min_rotated(const uint32_t *loads, size_t n, uint64_t start)
{
    const size_t origin = static_cast<size_t>(start % n);
    size_t best = origin;
    uint32_t best_load = loads[origin];
    for (size_t step = 1; step < n; ++step) {
        size_t i = origin + step;
        if (i >= n)
            i -= n;
        if (loads[i] < best_load) {
            best = i;
            best_load = loads[i];
        }
    }
    return static_cast<int>(best);
}

} // namespace tq

#endif // TQ_COMMON_SHARD_H
