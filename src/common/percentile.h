/**
 * @file
 * Tail-latency percentile estimation.
 *
 * The paper reports 99.9th-percentile latency and slowdown. PercentileTracker
 * stores samples exactly (the experiments draw a few million samples at
 * most) and answers arbitrary quantiles via selection; it optionally
 * discards a warm-up prefix, matching the paper's methodology of dropping
 * the first 10% of samples (section 5.1).
 */
#ifndef TQ_COMMON_PERCENTILE_H
#define TQ_COMMON_PERCENTILE_H

#include <cstddef>
#include <span>
#include <vector>

namespace tq {

/** Exact quantile tracker over a stream of double-valued samples. */
class PercentileTracker
{
  public:
    PercentileTracker() = default;

    /**
     * Pre-size the sample store for @p n expected samples. Purely an
     * allocation hint; simulations pass their expected completion count
     * to avoid the doubling-growth copies of a multi-million-sample run.
     */
    void reserve(size_t n) { samples_.reserve(n); }

    /** Record one sample. */
    void add(double value) { samples_.push_back(value); }

    /** @return number of recorded samples. */
    size_t count() const { return samples_.size(); }

    /** @return true if no samples were recorded. */
    bool empty() const { return samples_.empty(); }

    /**
     * @return the q-quantile (q in [0, 1]) of the recorded samples,
     * after discarding the first @p warmup_fraction of them in arrival
     * order. Returns 0 when no samples survive the warm-up cut.
     *
     * Non-const: selection reorders the retained suffix in place.
     */
    double quantile(double q, double warmup_fraction = 0.0);

    /**
     * Batch form of quantile(): returns the value at each q in @p qs,
     * in order. Sorts the retained suffix once instead of running one
     * selection per quantile, so extracting the k quantiles a report
     * needs costs one O(n log n) pass rather than k O(n) passes over a
     * cache-cold array. Values are identical to calling quantile() per
     * q (same nearest-rank convention).
     */
    std::vector<double> quantiles(std::span<const double> qs,
                                  double warmup_fraction = 0.0);

    /** Arithmetic mean over the post-warm-up samples (0 when empty). */
    double mean(double warmup_fraction = 0.0) const;

    /** Largest recorded sample post warm-up (0 when empty). */
    double max(double warmup_fraction = 0.0) const;

    /** Drop all samples. */
    void clear() { samples_.clear(); }

  private:
    size_t warmup_index(double warmup_fraction) const;

    std::vector<double> samples_;
};

} // namespace tq

#endif // TQ_COMMON_PERCENTILE_H
