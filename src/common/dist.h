/**
 * @file
 * Service-time distributions for the workloads of paper Table 1.
 *
 * A ServiceDist draws per-request service demands (in nanoseconds) and
 * labels each draw with a job-class index so that experiments can report
 * per-class tail latency (e.g. the "short" and "long" series of the
 * bimodal figures, or TPC-C transaction types).
 */
#ifndef TQ_COMMON_DIST_H
#define TQ_COMMON_DIST_H

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace tq {

/** One service-time draw: demand in nanoseconds plus its job class. */
struct ServiceSample
{
    SimNanos demand;   ///< Service demand in nanoseconds.
    int job_class;     ///< Index into ServiceDist::class_names().
};

/** Abstract source of per-request service demands. */
class ServiceDist
{
  public:
    virtual ~ServiceDist() = default;

    /** Draw the next request's service demand. */
    virtual ServiceSample sample(Rng &rng) const = 0;

    /** Expected value of the demand, used to express load as utilization. */
    virtual SimNanos mean() const = 0;

    /** Human-readable names of the job classes, indexed by job_class. */
    virtual const std::vector<std::string> &class_names() const = 0;
};

/** Degenerate distribution: every request demands exactly @p demand. */
class FixedDist : public ServiceDist
{
  public:
    explicit FixedDist(SimNanos demand, std::string name = "job");

    ServiceSample sample(Rng &rng) const override;
    SimNanos mean() const override { return demand_; }
    const std::vector<std::string> &class_names() const override
    {
        return names_;
    }

  private:
    SimNanos demand_;
    std::vector<std::string> names_;
};

/** Exponential service times with the given mean (paper's Exp(1)). */
class ExponentialDist : public ServiceDist
{
  public:
    explicit ExponentialDist(SimNanos mean);

    ServiceSample sample(Rng &rng) const override;
    SimNanos mean() const override { return mean_; }
    const std::vector<std::string> &class_names() const override
    {
        return names_;
    }

  private:
    SimNanos mean_;
    std::vector<std::string> names_;
};

/**
 * Finite mixture of fixed demands: covers the Bimodal, TPC-C, and
 * RocksDB GET/SCAN rows of paper Table 1. Class i is drawn with
 * probability weight_i / sum(weights).
 */
class MixtureDist : public ServiceDist
{
  public:
    struct Component
    {
        std::string name;   ///< Job-class label ("Short", "GET", ...).
        SimNanos demand;    ///< Fixed service demand of this class.
        double weight;      ///< Relative probability mass.
    };

    explicit MixtureDist(std::vector<Component> components);

    ServiceSample sample(Rng &rng) const override;
    SimNanos mean() const override { return mean_; }
    const std::vector<std::string> &class_names() const override
    {
        return names_;
    }

    const std::vector<Component> &components() const { return components_; }

  private:
    std::vector<Component> components_;
    std::vector<double> cumulative_;
    std::vector<std::string> names_;
    SimNanos mean_ = 0;
};

/** Factories for the exact workloads of paper Table 1. */
namespace workload_table {

/** Extreme Bimodal: 99.5% x 0.5us, 0.5% x 500us. */
std::unique_ptr<MixtureDist> extreme_bimodal();
/** High Bimodal: 50% x 1us, 50% x 100us. */
std::unique_ptr<MixtureDist> high_bimodal();
/** TPC-C transaction mix (Payment/OrderStatus/NewOrder/Delivery/StockLevel). */
std::unique_ptr<MixtureDist> tpcc();
/** Exponential service times with mean 1us. */
std::unique_ptr<ExponentialDist> exp1();
/** RocksDB-style GET/SCAN mix with the given SCAN fraction (0.005 / 0.5). */
std::unique_ptr<MixtureDist> rocksdb(double scan_fraction);

} // namespace workload_table
} // namespace tq

#endif // TQ_COMMON_DIST_H
