#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tq::telemetry {

namespace {

/**
 * Summarize the union of several concurrently-written histograms:
 * bucket counts, exact sums and counts are added bucket-wise / value-wise
 * under relaxed loads (each source has a single writer).
 */
StageStats
summarize_merged(const std::vector<const CycleHistogram *> &sources)
{
    StageStats s;
    uint64_t buckets[CycleHistogram::kBuckets] = {};
    uint64_t count = 0;
    Cycles sum = 0;
    for (const CycleHistogram *h : sources) {
        const LogHistogram snap = h->snapshot();
        for (int i = 0; i < snap.num_buckets(); ++i)
            buckets[i] += snap.bucket_count(i);
        count += h->count();
        sum += h->sum();
    }
    uint64_t total = 0;
    for (int i = 0; i < CycleHistogram::kBuckets; ++i) {
        if (buckets[i] > 0)
            s.hist.add(uint64_t{1} << i, buckets[i]);
        total += buckets[i];
    }
    s.count = count;
    if (count > 0)
        s.mean_ns = cycles_to_ns(sum) / static_cast<double>(count);
    if (total == 0)
        return s;

    // Bucket-resolution p99: first bucket whose cumulative count covers
    // 99% of the bucket total, reported at its geometric midpoint.
    const uint64_t target =
        static_cast<uint64_t>(std::ceil(0.99 * static_cast<double>(total)));
    uint64_t cumulative = 0;
    for (int i = 0; i < CycleHistogram::kBuckets; ++i) {
        cumulative += buckets[i];
        if (cumulative >= target) {
            const double mid =
                i == 0 ? 1.0
                       : static_cast<double>(uint64_t{1} << i) *
                             std::sqrt(2.0);
            s.p99_ns = cycles_to_ns(static_cast<Cycles>(mid));
            break;
        }
    }
    return s;
}

/** Bucket-wise union of several histograms as one LogHistogram. */
LogHistogram
merged_snapshot(const std::vector<const CycleHistogram *> &sources)
{
    uint64_t buckets[CycleHistogram::kBuckets] = {};
    for (const CycleHistogram *h : sources) {
        const LogHistogram snap = h->snapshot();
        for (int i = 0; i < snap.num_buckets(); ++i)
            buckets[i] += snap.bucket_count(i);
    }
    LogHistogram out(1, CycleHistogram::kBuckets);
    for (int i = 0; i < CycleHistogram::kBuckets; ++i)
        if (buckets[i] > 0)
            out.add(uint64_t{1} << i, buckets[i]);
    return out;
}

} // namespace

LogHistogram
CycleHistogram::snapshot() const
{
    LogHistogram out(1, kBuckets);
    for (int i = 0; i < kBuckets; ++i) {
        const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        if (n > 0)
            out.add(uint64_t{1} << i, n);
    }
    return out;
}

StageStats
summarize(const CycleHistogram &hist)
{
    return summarize_merged({&hist});
}

MetricsRegistry::MetricsRegistry(int num_workers, size_t trace_capacity,
                                 int num_dispatchers)
{
    workers_.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w)
        workers_.push_back(
            std::make_unique<WorkerTelemetry>(w, trace_capacity));
    dispatchers_.reserve(static_cast<size_t>(num_dispatchers));
    for (int d = 0; d < num_dispatchers; ++d)
        dispatchers_.push_back(
            std::make_unique<DispatcherTelemetry>(trace_capacity, d));
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    // Dispatcher shards fold together; the per-shard dispatched counts
    // are kept alongside so skew across shards stays visible.
    std::vector<const CycleHistogram *> dispatch_hists, batch_hists,
        steal_hists;
    uint64_t batch_sum = 0;
    uint64_t steal_sum = 0;
    s.per_shard_dispatched.reserve(dispatchers_.size());
    for (const auto &d : dispatchers_) {
        const uint64_t n =
            d->dispatched.load(std::memory_order_relaxed);
        s.per_shard_dispatched.push_back(n);
        s.dispatched += n;
        s.trace_dropped += d->trace.dropped();
        s.dispatch_batches += d->batch_occupancy.count();
        batch_sum += d->batch_occupancy.sum();
        s.steal_count += d->steals.load(std::memory_order_relaxed);
        steal_sum += d->steal_batch.sum();
        dispatch_hists.push_back(&d->dispatch_cycles);
        batch_hists.push_back(&d->batch_occupancy);
        steal_hists.push_back(&d->steal_batch);
    }
    if (s.dispatch_batches > 0)
        s.mean_dispatch_batch = static_cast<double>(batch_sum) /
                                static_cast<double>(s.dispatch_batches);
    s.stolen_jobs = steal_sum;
    if (s.steal_count > 0)
        s.mean_steal_batch = static_cast<double>(steal_sum) /
                             static_cast<double>(s.steal_count);
    s.dispatch_batch_hist = merged_snapshot(batch_hists);
    s.steal_batch_hist = merged_snapshot(steal_hists);
    std::vector<const CycleHistogram *> queue, service, preempt;
    for (const auto &w : workers_) {
        const WorkerCounters &c = w->counters;
        s.admitted += c.admitted.load(std::memory_order_relaxed);
        s.quanta += c.quanta.load(std::memory_order_relaxed);
        s.yields += c.yields.load(std::memory_order_relaxed);
        s.guard_deferrals +=
            c.guard_deferrals.load(std::memory_order_relaxed);
        s.finished += c.finished.load(std::memory_order_relaxed);
        s.trace_dropped += w->trace.dropped();
        queue.push_back(&w->queue_cycles);
        service.push_back(&w->service_cycles);
        preempt.push_back(&w->preempt_cycles);
    }
    // Per-class quantum instruments (§4i): fold worker-wise, then trim
    // to the highest class that saw a grant so the fixed-quantum path
    // (nothing recorded) yields an empty vector.
    {
        std::vector<ClassQuantaStats> classes(
            static_cast<size_t>(kMaxTrackedClasses));
        std::vector<uint64_t> granted(
            static_cast<size_t>(kMaxTrackedClasses), 0);
        size_t highest = 0;
        for (int c = 0; c < kMaxTrackedClasses; ++c) {
            ClassQuantaStats &cs = classes[static_cast<size_t>(c)];
            std::vector<const CycleHistogram *> service_h, sojourn_h;
            for (const auto &w : workers_) {
                cs.grants +=
                    w->class_grants[c].load(std::memory_order_relaxed);
                granted[static_cast<size_t>(c)] +=
                    w->class_granted_cycles[c].load(
                        std::memory_order_relaxed);
                cs.finished +=
                    w->class_finished[c].load(std::memory_order_relaxed);
                cs.deficit_cycles +=
                    w->class_deficit[c].load(std::memory_order_relaxed);
                service_h.push_back(&w->class_service[c]);
                sojourn_h.push_back(&w->class_sojourn[c]);
            }
            if (cs.grants > 0) {
                cs.mean_granted_us =
                    cycles_to_ns(granted[static_cast<size_t>(c)]) /
                    static_cast<double>(cs.grants) / 1e3;
                cs.service = summarize_merged(service_h);
                cs.sojourn = summarize_merged(sojourn_h);
                highest = static_cast<size_t>(c) + 1;
            }
        }
        classes.resize(highest);
        s.per_class = std::move(classes);
    }
    s.dispatch = summarize_merged(dispatch_hists);
    s.sojourn = summarize(client_.sojourn_cycles);
    s.fanout_spread = summarize(client_.fanout_spread_cycles);
    s.queueing = summarize_merged(queue);
    s.service = summarize_merged(service);
    s.preempt = summarize_merged(preempt);
    s.burst_phases = client_.burst_inflight.count();
    if (s.burst_phases > 0)
        s.mean_burst_inflight =
            static_cast<double>(client_.burst_inflight.sum()) /
            static_cast<double>(s.burst_phases);
    s.burst_inflight_hist = client_.burst_inflight.snapshot();
    return s;
}

size_t
MetricsRegistry::drain_trace(std::vector<TraceEvent> &out)
{
    const size_t before = out.size();
    for (auto &d : dispatchers_)
        d->trace.drain(out);
    for (auto &w : workers_)
        w->trace.drain(out);
    std::sort(out.begin() + static_cast<ptrdiff_t>(before), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.tsc < b.tsc;
              });
    return out.size() - before;
}

std::string
MetricsSnapshot::to_string() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "jobs: dispatched %llu, admitted %llu, finished %llu\n",
                  static_cast<unsigned long long>(dispatched),
                  static_cast<unsigned long long>(admitted),
                  static_cast<unsigned long long>(finished));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "quanta: %llu (probe yields %llu, guard-deferred %llu, "
        "stats-line total %llu)\n",
        static_cast<unsigned long long>(quanta),
        static_cast<unsigned long long>(yields),
        static_cast<unsigned long long>(guard_deferrals),
        static_cast<unsigned long long>(stats_total_quanta));
    out += buf;
    std::snprintf(buf, sizeof(buf), "trace events dropped: %llu\n",
                  static_cast<unsigned long long>(trace_dropped));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "dispatch batches: %llu (mean occupancy %.2f)\n",
                  static_cast<unsigned long long>(dispatch_batches),
                  mean_dispatch_batch);
    out += buf;
    if (per_shard_dispatched.size() > 1) {
        out += "per-shard dispatched:";
        for (uint64_t n : per_shard_dispatched) {
            std::snprintf(buf, sizeof(buf), " %llu",
                          static_cast<unsigned long long>(n));
            out += buf;
        }
        out += "\n";
        std::snprintf(buf, sizeof(buf),
                      "steals: %llu (%llu jobs, mean batch %.2f)\n",
                      static_cast<unsigned long long>(steal_count),
                      static_cast<unsigned long long>(stolen_jobs),
                      mean_steal_batch);
        out += buf;
    }
    if (burst_phases > 0) {
        std::snprintf(buf, sizeof(buf),
                      "burst phases: %llu (mean in-flight %.2f)\n",
                      static_cast<unsigned long long>(burst_phases),
                      mean_burst_inflight);
        out += buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "backpressure: tx-full spins %llu, dispatch-full spins %llu, "
        "dropped responses %llu, abandoned jobs %llu\n",
        static_cast<unsigned long long>(tx_ring_full_spins),
        static_cast<unsigned long long>(dispatch_ring_full_spins),
        static_cast<unsigned long long>(dropped_responses),
        static_cast<unsigned long long>(abandoned_jobs));
    out += buf;
    out += "stage\tcount\tmean_us\tp99_us\n";
    const auto row = [&](const char *name, const StageStats &st) {
        std::snprintf(buf, sizeof(buf), "%s\t%llu\t%.3f\t%.3f\n", name,
                      static_cast<unsigned long long>(st.count),
                      st.mean_ns / 1e3, st.p99_ns / 1e3);
        out += buf;
    };
    row("dispatch", dispatch);
    row("queueing", queueing);
    row("service", service);
    row("preempt", preempt);
    row("sojourn", sojourn);
    if (fanout_spread.count > 0)
        row("fanout-spread", fanout_spread);
    if (!per_class.empty()) {
        // Only rendered when the per-class scheduler recorded grants,
        // so the default snapshot output stays byte-stable.
        std::snprintf(buf, sizeof(buf),
                      "starvation promotions: %llu\n"
                      "class\tgrants\tfinished\tgranted_us\tdeficit_cyc\t"
                      "service_us\tsojourn_p99_us\n",
                      static_cast<unsigned long long>(
                          starvation_promotions));
        out += buf;
        for (size_t c = 0; c < per_class.size(); ++c) {
            const ClassQuantaStats &cs = per_class[c];
            std::snprintf(buf, sizeof(buf),
                          "%zu\t%llu\t%llu\t%.3f\t%lld\t%.3f\t%.3f\n", c,
                          static_cast<unsigned long long>(cs.grants),
                          static_cast<unsigned long long>(cs.finished),
                          cs.mean_granted_us,
                          static_cast<long long>(cs.deficit_cycles),
                          cs.service.mean_ns / 1e3,
                          cs.sojourn.p99_ns / 1e3);
            out += buf;
        }
    }
    return out;
}

} // namespace tq::telemetry
