/**
 * @file
 * Chrome `trace_event` JSON export of a drained event trace.
 *
 * The output loads in chrome://tracing and https://ui.perfetto.dev: one
 * track per worker plus one for the dispatcher, with each serviced
 * quantum rendered as a duration slice (QuantumStart paired with the
 * ProbeYield / JobFinished that ended it) and dispatch / guard-deferral
 * events as instants. Timestamps are converted from raw cycles to
 * microseconds relative to the first event.
 */
#ifndef TQ_TELEMETRY_CHROME_TRACE_H
#define TQ_TELEMETRY_CHROME_TRACE_H

#include <ostream>
#include <vector>

#include "telemetry/events.h"

namespace tq::telemetry {

/** Export tuning knobs. */
struct ChromeTraceOptions
{
    /**
     * Cycle-counter frequency used for the cycles -> microseconds
     * conversion. Leave at 0 to use the calibrated tq::cycles_per_ns();
     * set explicitly for deterministic output (tests, offline traces).
     */
    double cycles_per_ns = 0;
};

/**
 * Write @p events (sorted by TraceEvent::tsc, as produced by
 * MetricsRegistry::drain_trace()) to @p os as Chrome trace JSON.
 */
void write_chrome_trace(std::ostream &os,
                        const std::vector<TraceEvent> &events,
                        const ChromeTraceOptions &opts = {});

} // namespace tq::telemetry

#endif // TQ_TELEMETRY_CHROME_TRACE_H
