/**
 * @file
 * Telemetry umbrella header and the compile-time enable switch.
 *
 * The layer has two halves with different costs:
 *
 *  - The *data structures* (MetricsRegistry, CycleHistogram, TraceRing,
 *    the Chrome exporter) always compile and work; they have no
 *    dependency on the runtime and are usable standalone.
 *  - The *hot-path recording sites* inside runtime/, probe/ and net/
 *    are compiled in only when the build enables `TQ_TELEMETRY` (the
 *    default). Configuring with `-DTQ_TELEMETRY=OFF` removes every
 *    recording instruction from the scheduler, probe and dispatcher hot
 *    paths — byte-for-byte the pre-telemetry code — while snapshots and
 *    drains keep working and simply report zeros.
 *
 * See OBSERVABILITY.md for the metric/event taxonomy, the overhead
 * budget, and the snapshot consistency contract.
 */
#ifndef TQ_TELEMETRY_TELEMETRY_H
#define TQ_TELEMETRY_TELEMETRY_H

#include "telemetry/chrome_trace.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_ring.h"

namespace tq::telemetry {

/** True when hot-path recording is compiled in (TQ_TELEMETRY=ON). */
#if defined(TQ_TELEMETRY_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

} // namespace tq::telemetry

#endif // TQ_TELEMETRY_TELEMETRY_H
