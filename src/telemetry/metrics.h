/**
 * @file
 * Cycle-accurate metrics: padded per-thread counters and concurrently
 * readable log-bucketed histograms, aggregated by a MetricsRegistry.
 *
 * Layout follows the dispatcher/worker counter contract of the paper
 * (section 4): every writer owns its own cache line, readers only load,
 * and nothing on the hot path takes a lock or issues an ordered RMW.
 * Snapshots are therefore safe *while the runtime is running*: they are
 * per-counter linearizable (each value is a single relaxed load) but not
 * a cross-counter atomic cut — totals observed across counters may be
 * skewed by in-flight work. See OBSERVABILITY.md for the full contract.
 *
 * Histograms record raw cycle values into power-of-two buckets with an
 * exact running sum, so snapshots expose both exact means and the bucket
 * distribution (reusing common/histogram.h LogHistogram for rendering
 * and percentile queries).
 */
#ifndef TQ_TELEMETRY_METRICS_H
#define TQ_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cycles.h"
#include "common/histogram.h"
#include "conc/cacheline.h"
#include "telemetry/trace_ring.h"

namespace tq::telemetry {

/** Per-class instrument slots. Must match the runtime's quantum-table
 *  bound (runtime/quantum.h kMaxQuantumClasses; asserted in worker.cc):
 *  job classes at or beyond the limit share the last slot. */
inline constexpr int kMaxTrackedClasses = 8;

/**
 * Lock-free log2-bucketed histogram of cycle counts.
 *
 * add() is wait-free (three relaxed fetch_adds on writer-owned lines in
 * the common case of one writer per instance); any thread may snapshot
 * concurrently. Bucket i counts values in [2^i, 2^(i+1)), with values 0
 * and 1 sharing bucket 0 and values >= 2^(kBuckets-1) clamped into the
 * last bucket.
 */
class CycleHistogram
{
  public:
    /** Buckets cover [1, 2^40) cycles — beyond any per-event latency.
     *  Layout note: 42 uint64 atomics = 336 bytes (5.25 lines), not
     *  padded per bucket — every field has the same single writer (the
     *  owning thread), so internal sharing is free, and the enclosing
     *  WorkerTelemetry/DispatcherTelemetry objects group histograms by
     *  writer (docs/cache_line_analysis.md). */
    static constexpr int kBuckets = 40;

    /** Record one cycle-valued sample. Wait-free. */
    void
    add(Cycles value)
    {
        buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Bucket index a value lands in (exposed for tests). */
    static int
    bucket_of(Cycles value)
    {
        if (value < 2)
            return 0;
        const int log2 = 63 - __builtin_clzll(value);
        return log2 < kBuckets ? log2 : kBuckets - 1;
    }

    /** Number of recorded samples at the time of the load. */
    uint64_t count() const { return count_.load(std::memory_order_relaxed); }

    /** Exact sum of recorded cycle values. */
    Cycles sum() const { return sum_.load(std::memory_order_relaxed); }

    /**
     * Copy the bucket counts into a LogHistogram (base 1, kBuckets
     * buckets) for rendering / fraction_above queries. Safe while
     * writers are active; the copy is bucket-wise consistent.
     */
    LogHistogram snapshot() const;

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> count_{0};
};

/**
 * One worker thread's event counters, alone on their cache line.
 *
 * Single writer (the owning worker); snapshot readers only load. Five
 * counters fit one line with 24 bytes of stated pad — room for two more
 * before the static_assert below forces a second (still worker-owned)
 * line. Each worker's WorkerTelemetry is a separate heap allocation, so
 * distinct workers' counters can never share a line regardless of
 * allocator behaviour (checked in tests/layout_test.cc).
 */
struct alignas(kCacheLineSize) WorkerCounters
{
    std::atomic<uint64_t> admitted{0};        ///< jobs pulled off the
                                              ///< dispatch ring
    std::atomic<uint64_t> quanta{0};          ///< task slices resumed
    std::atomic<uint64_t> yields{0};          ///< probe-forced preemptions
    std::atomic<uint64_t> guard_deferrals{0}; ///< expiries deferred by a
                                              ///< PreemptGuard
    std::atomic<uint64_t> finished{0};        ///< jobs completed

    /** Pad out the line so neighbouring workers never false-share. */
    char pad[kCacheLineSize - 5 * sizeof(std::atomic<uint64_t>)];
};

static_assert(sizeof(WorkerCounters) == kCacheLineSize &&
                  alignof(WorkerCounters) == kCacheLineSize,
              "one cache line per worker");

/** Everything one worker thread writes: counters, stage histograms,
 *  and its private trace ring. */
class WorkerTelemetry
{
  public:
    /** @param worker worker id (trace tid). @param trace_capacity ring
     *  size in events. */
    WorkerTelemetry(int worker, size_t trace_capacity)
        : trace(static_cast<uint8_t>(worker), trace_capacity)
    {
    }

    WorkerCounters counters;      ///< event counters (writer: the worker)
    CycleHistogram queue_cycles;  ///< dispatch -> first quantum start
    CycleHistogram service_cycles;///< per-job sum of slice durations
    CycleHistogram preempt_cycles;///< per-preemption overshoot past the
                                  ///< armed deadline (incl. switch-out)

    // Per-class quantum/deficit instruments (DESIGN.md §4i). Recorded
    // only while the per-class scheduler is active (non-empty
    // class_quantum_us or adaptive_quantum); all-zero otherwise, so the
    // snapshot's per_class block stays empty on the fixed-quantum path.
    // Same single-writer layout as everything above: only the owning
    // worker stores, snapshot readers only load.
    std::atomic<uint64_t> class_grants[kMaxTrackedClasses] = {};
    /** Sum of armed cycle budgets per class: mean granted budget =
     *  granted_cycles / grants, the runtime-side effective quantum the
     *  sim-parity test compares orderings against. */
    std::atomic<uint64_t> class_granted_cycles[kMaxTrackedClasses] = {};
    std::atomic<uint64_t> class_finished[kMaxTrackedClasses] = {};
    /** Last settled deficit per class (gauge, signed cycles). */
    std::atomic<int64_t> class_deficit[kMaxTrackedClasses] = {};
    CycleHistogram class_service[kMaxTrackedClasses]; ///< per-job attained
    CycleHistogram class_sojourn[kMaxTrackedClasses]; ///< arrival -> done

    TraceRing trace;              ///< typed event ring (producer: worker)
};

/** One dispatcher shard's telemetry: per-job dispatch cost, steal
 *  accounting, and its trace ring. An unsharded runtime has exactly
 *  one instance (shard 0, the historical dispatcher). */
class DispatcherTelemetry
{
  public:
    /** @param trace_capacity ring size in events.
     *  @param shard dispatcher shard index (trace tid
     *      dispatcher_tid(shard); 0 for the unsharded runtime). */
    explicit DispatcherTelemetry(size_t trace_capacity, int shard = 0)
        : trace(dispatcher_tid(shard), trace_capacity)
    {
    }

    /** Jobs forwarded to workers (writer: the dispatcher thread). */
    std::atomic<uint64_t> dispatched{0};

    /** Successful steal attempts: batches this shard pulled from a
     *  sibling's RX queue (writer: this shard's dispatcher). */
    std::atomic<uint64_t> steals{0};

    CycleHistogram dispatch_cycles; ///< RX arrival -> handed to a worker

    /** Requests per non-empty RX batch (CycleHistogram reused as a
     *  generic log2 value histogram: count = batches, sum = requests,
     *  so sum/count is the exact mean occupancy). Occupancy ~1 means
     *  the dispatcher is keeping up and batching is a no-op; rising
     *  occupancy is RX queue depth, i.e. dispatcher pressure. */
    CycleHistogram batch_occupancy;

    /** Jobs per successful steal (another generic log2 value
     *  histogram: count = steals, sum = jobs stolen, so sum/count is
     *  the mean rebalanced batch). Empty when stealing never fired. */
    CycleHistogram steal_batch;

    TraceRing trace;                ///< JobDispatched events
};

/** Client-side (load generator) telemetry. */
class ClientTelemetry
{
  public:
    std::atomic<uint64_t> submitted{0};     ///< requests accepted by RX
    std::atomic<uint64_t> send_failures{0}; ///< RX-full rejections
    std::atomic<uint64_t> completed{0};     ///< responses drained

    CycleHistogram sojourn_cycles; ///< dispatcher arrival -> completion

    /** Last-minus-first shard completion spread per gathered fan-out
     *  request (cycles); empty for single-shard traffic. */
    CycleHistogram fanout_spread_cycles;

    /** In-flight requests sampled at each arrival-process phase
     *  boundary (CycleHistogram reused as a generic log2 value
     *  histogram, like batch_occupancy: count = phases begun, sum =
     *  in-flight total, so sum/count is the mean per-phase burst
     *  occupancy). Empty under plain Poisson arrivals. */
    CycleHistogram burst_inflight;
};

/** Summary of one histogram-backed pipeline stage, in nanoseconds. */
struct StageStats
{
    uint64_t count = 0;  ///< samples recorded
    double mean_ns = 0;  ///< exact mean (from the running sum)
    double p99_ns = 0;   ///< bucket-resolution 99th percentile

    /** Bucket distribution (cycles; base 1, CycleHistogram::kBuckets). */
    LogHistogram hist{1, CycleHistogram::kBuckets};
};

/** One job class's folded per-class quantum instruments (§4i). */
struct ClassQuantaStats
{
    uint64_t grants = 0;        ///< slices granted to the class
    uint64_t finished = 0;      ///< jobs of the class completed
    double mean_granted_us = 0; ///< mean armed budget per grant (the
                                ///< runtime-side effective quantum)
    int64_t deficit_cycles = 0; ///< summed last-value deficit gauges
    StageStats service;         ///< per-job attained service
    StageStats sojourn;         ///< arrival -> completion
};

/** Point-in-time copy of every registry metric (values in ns). */
struct MetricsSnapshot
{
    uint64_t dispatched = 0;       ///< jobs forwarded by the dispatcher
    uint64_t admitted = 0;         ///< jobs admitted by workers
    uint64_t finished = 0;         ///< jobs completed
    uint64_t quanta = 0;           ///< task slices resumed
    uint64_t yields = 0;           ///< probe-forced preemptions
    uint64_t guard_deferrals = 0;  ///< guard-deferred expiries
    uint64_t trace_dropped = 0;    ///< events lost to ring overflow

    uint64_t dispatch_batches = 0;      ///< non-empty dispatcher RX polls
    double mean_dispatch_batch = 0;     ///< mean requests per such batch
    /** Batch-occupancy distribution (log2 buckets over request counts,
     *  not cycles; see DispatcherTelemetry::batch_occupancy). */
    LogHistogram dispatch_batch_hist{1, CycleHistogram::kBuckets};

    /** Jobs forwarded by each dispatcher shard, in shard order (one
     *  entry for the unsharded runtime; `dispatched` is its sum). */
    std::vector<uint64_t> per_shard_dispatched;

    uint64_t steal_count = 0;  ///< successful cross-shard steal batches
    uint64_t stolen_jobs = 0;  ///< jobs rebalanced by those steals
    double mean_steal_batch = 0; ///< stolen_jobs / steal_count
    /** Steal-batch-size distribution (log2 buckets over job counts,
     *  not cycles; see DispatcherTelemetry::steal_batch). */
    LogHistogram steal_batch_hist{1, CycleHistogram::kBuckets};

    /** Cumulative serviced quanta from the workers' WorkerStatsLine
     *  counters, read wrap-tolerantly (filled by
     *  Runtime::telemetry_snapshot(); 0 when taken registry-only). */
    uint64_t stats_total_quanta = 0;

    // Backpressure / lifecycle counters (filled by
    // Runtime::telemetry_snapshot(); 0 when taken registry-only). These
    // record in every build — including -DTQ_TELEMETRY=OFF — because
    // they only ever touch the cold overflow and shutdown paths. See
    // OBSERVABILITY.md section 1.4.
    uint64_t tx_ring_full_spins = 0;       ///< worker TX push spin waits
    uint64_t dispatch_ring_full_spins = 0; ///< dispatcher push spin waits
    uint64_t dropped_responses = 0;        ///< TX overflow-policy drops
    uint64_t abandoned_jobs = 0;           ///< jobs never finished (forced
                                           ///< stop or dispatch overflow)

    StageStats dispatch; ///< RX arrival -> handed to a worker
    StageStats queueing; ///< handed to a worker -> first quantum
    StageStats service;  ///< sum of slice durations per job
    StageStats preempt;  ///< per-preemption deadline overshoot
    StageStats sojourn;  ///< client-observed arrival -> completion
    /** Shard completion spread per gathered fan-out request (empty for
     *  single-shard traffic). */
    StageStats fanout_spread;

    /** Per-class quantum instruments, trimmed to the highest class with
     *  any grants — empty on the fixed-quantum path, so consumers of
     *  the default snapshot see no new fields light up. Classes index
     *  by quantum-table slot (kMaxTrackedClasses bound). */
    std::vector<ClassQuantaStats> per_class;

    /** Starvation-guard force-promotions across all workers (filled by
     *  Runtime::telemetry_snapshot(); records in every build — the
     *  guard is scheduler state, not telemetry). */
    uint64_t starvation_promotions = 0;

    uint64_t burst_phases = 0;      ///< arrival-process phases begun
    double mean_burst_inflight = 0; ///< mean in-flight at phase starts
    /** In-flight-at-phase-boundary distribution (log2 buckets over
     *  request counts, not cycles; ClientTelemetry::burst_inflight). */
    LogHistogram burst_inflight_hist{1, CycleHistogram::kBuckets};

    /** Multi-line human-readable rendering (used by benches/tools). */
    std::string to_string() const;
};

/**
 * Owner of all telemetry state for one Runtime: one WorkerTelemetry per
 * worker, the dispatcher's and the client's. Construction is the only
 * allocation; everything afterwards is wait-free on the writer side and
 * lock-free on the reader side.
 */
class MetricsRegistry
{
  public:
    /**
     * @param num_workers worker telemetry slots to create.
     * @param trace_capacity per-ring event capacity (workers and
     *     dispatcher shards each get their own ring of this size).
     * @param num_dispatchers dispatcher-shard slots (1 for the
     *     unsharded runtime).
     */
    MetricsRegistry(int num_workers, size_t trace_capacity,
                    int num_dispatchers = 1);

    /** Telemetry slot of worker @p i. */
    WorkerTelemetry &worker(int i) { return *workers_[static_cast<size_t>(i)]; }

    /** @copydoc worker(int) */
    const WorkerTelemetry &worker(int i) const
    {
        return *workers_[static_cast<size_t>(i)];
    }

    /** Dispatcher slot of shard 0 (the only one when unsharded). */
    DispatcherTelemetry &dispatcher() { return *dispatchers_[0]; }

    /** Dispatcher slot of shard @p shard. */
    DispatcherTelemetry &
    dispatcher(int shard)
    {
        return *dispatchers_[static_cast<size_t>(shard)];
    }

    /** Client/load-generator slot. */
    ClientTelemetry &client() { return client_; }

    /** Number of worker slots. */
    int num_workers() const { return static_cast<int>(workers_.size()); }

    /** Number of dispatcher-shard slots. */
    int
    num_dispatchers() const
    {
        return static_cast<int>(dispatchers_.size());
    }

    /**
     * Snapshot every counter and histogram without stopping writers.
     * Safe from any thread; see the header comment for the consistency
     * contract.
     */
    MetricsSnapshot snapshot() const;

    /**
     * Drain all trace rings (workers + dispatcher) into @p out, merged
     * and sorted by timestamp. Single consumer; callable while the
     * runtime runs, though a post-run drain sees a complete window.
     * @return number of events appended.
     */
    size_t drain_trace(std::vector<TraceEvent> &out);

  private:
    std::vector<std::unique_ptr<WorkerTelemetry>> workers_;
    std::vector<std::unique_ptr<DispatcherTelemetry>> dispatchers_;
    ClientTelemetry client_;
};

/** Summarize one histogram into StageStats (exact mean, bucket p99). */
StageStats summarize(const CycleHistogram &hist);

} // namespace tq::telemetry

#endif // TQ_TELEMETRY_METRICS_H
