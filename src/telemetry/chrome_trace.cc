#include "telemetry/chrome_trace.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <optional>
#include <set>

namespace tq::telemetry {

const char *
event_name(EventKind kind)
{
    switch (kind) {
      case EventKind::JobDispatched:
        return "JobDispatched";
      case EventKind::QuantumStart:
        return "QuantumStart";
      case EventKind::ProbeYield:
        return "ProbeYield";
      case EventKind::GuardDeferredYield:
        return "GuardDeferredYield";
      case EventKind::JobFinished:
        return "JobFinished";
    }
    return "Unknown";
}

namespace {

constexpr int kPid = 1;

void
emit(std::ostream &os, bool &first, const std::string &line)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "  " << line;
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

} // namespace

void
write_chrome_trace(std::ostream &os, const std::vector<TraceEvent> &events,
                   const ChromeTraceOptions &opts)
{
    const double cpn =
        opts.cycles_per_ns > 0 ? opts.cycles_per_ns : cycles_per_ns();
    const Cycles t0 = events.empty() ? 0 : events.front().tsc;
    const auto us_since_start = [&](Cycles tsc) {
        return static_cast<double>(tsc - t0) / cpn / 1e3;
    };

    os << "{\"traceEvents\":[\n";
    bool first = true;
    emit(os, first,
         fmt("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
             "\"args\":{\"name\":\"tinyquanta\"}}",
             kPid));
    std::set<uint8_t> tids;
    for (const TraceEvent &ev : events)
        tids.insert(ev.tid);
    for (uint8_t tid : tids) {
        const std::string name =
            tid == kDispatcherTid ? std::string("dispatcher")
            : is_dispatcher_tid(tid)
                ? fmt("dispatcher-%u", kDispatcherTid - tid)
                : fmt("worker %u", tid);
        emit(os, first,
             fmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                 kPid, tid, name.c_str()));
    }

    // One task coroutine runs per worker at a time, so each tid has at
    // most one open quantum; pair it with the yield/finish that ends it.
    std::map<uint8_t, TraceEvent> open_quantum;
    for (const TraceEvent &ev : events) {
        switch (ev.kind) {
          case EventKind::QuantumStart: {
            // A start with a still-open quantum means the closing event
            // was dropped; flush the orphan as an instant.
            auto it = open_quantum.find(ev.tid);
            if (it != open_quantum.end()) {
                emit(os, first,
                     fmt("{\"name\":\"QuantumStart\",\"ph\":\"i\","
                         "\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%u,"
                         "\"args\":{\"job\":%" PRIu64 "}}",
                         us_since_start(it->second.tsc), kPid, ev.tid,
                         it->second.job));
            }
            open_quantum[ev.tid] = ev;
            break;
          }
          case EventKind::ProbeYield:
          case EventKind::JobFinished: {
            auto it = open_quantum.find(ev.tid);
            if (it != open_quantum.end() && it->second.job == ev.job) {
                const TraceEvent &start = it->second;
                emit(os, first,
                     fmt("{\"name\":\"quantum\",\"ph\":\"X\","
                         "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                         "\"tid\":%u,\"args\":{\"job\":%" PRIu64
                         ",\"slice\":%u,\"end\":\"%s\"}}",
                         us_since_start(start.tsc),
                         static_cast<double>(ev.tsc - start.tsc) / cpn /
                             1e3,
                         kPid, ev.tid, ev.job, start.arg,
                         event_name(ev.kind)));
                open_quantum.erase(it);
            }
            if (ev.kind == EventKind::JobFinished) {
                emit(os, first,
                     fmt("{\"name\":\"JobFinished\",\"ph\":\"i\","
                         "\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%u,"
                         "\"args\":{\"job\":%" PRIu64 "}}",
                         us_since_start(ev.tsc), kPid, ev.tid, ev.job));
            }
            break;
          }
          case EventKind::JobDispatched:
            emit(os, first,
                 fmt("{\"name\":\"JobDispatched\",\"ph\":\"i\","
                     "\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%u,"
                     "\"args\":{\"job\":%" PRIu64 ",\"worker\":%u}}",
                     us_since_start(ev.tsc), kPid, ev.tid, ev.job,
                     ev.arg));
            break;
          case EventKind::GuardDeferredYield:
            emit(os, first,
                 fmt("{\"name\":\"GuardDeferredYield\",\"ph\":\"i\","
                     "\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%u,"
                     "\"args\":{\"job\":%" PRIu64 "}}",
                     us_since_start(ev.tsc), kPid, ev.tid, ev.job));
            break;
        }
    }
    // Quanta still open at the end of the window (e.g. the run stopped
    // mid-slice) surface as instants rather than being silently lost.
    for (const auto &[tid, start] : open_quantum) {
        emit(os, first,
             fmt("{\"name\":\"QuantumStart\",\"ph\":\"i\",\"s\":\"t\","
                 "\"ts\":%.3f,\"pid\":%d,\"tid\":%u,"
                 "\"args\":{\"job\":%" PRIu64 "}}",
                 us_since_start(start.tsc), kPid, tid, start.job));
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace tq::telemetry
