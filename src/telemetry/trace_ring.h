/**
 * @file
 * Per-thread fixed-size trace ring.
 *
 * A thin wrapper over the runtime's lock-free SPSC ring that (a) stamps
 * each event with RDTSC and the owning thread id at the recording site
 * and (b) *drops* events instead of blocking when the ring is full — a
 * telemetry buffer must never introduce backpressure into a
 * microsecond-scale scheduler. Drops are counted so a post-run drain can
 * report exactly how much of the window is missing.
 *
 * Concurrency contract: record() may be called by exactly one producer
 * thread (the worker or dispatcher that owns the ring); drain() and
 * dropped() may be called by one consumer thread, concurrently with the
 * producer.
 */
#ifndef TQ_TELEMETRY_TRACE_RING_H
#define TQ_TELEMETRY_TRACE_RING_H

#include <atomic>
#include <cstddef>
#include <vector>

#include "conc/cacheline.h"
#include "conc/spsc_ring.h"
#include "telemetry/events.h"

namespace tq::telemetry {

/** Bounded, drop-on-overflow event buffer for one producer thread. */
class TraceRing
{
  public:
    /**
     * @param tid thread id stamped into every event (worker id or
     *     kDispatcherTid).
     * @param capacity minimum number of buffered events (rounded up to a
     *     power of two).
     */
    TraceRing(uint8_t tid, size_t capacity) : tid_(tid), ring_(capacity) {}

    /**
     * Record one event, stamped with the current cycle counter.
     * Producer-side only; never blocks. On overflow the event is
     * discarded and the drop counter incremented.
     */
    void
    record(EventKind kind, uint64_t job, uint32_t arg = 0)
    {
        TraceEvent ev;
        ev.tsc = rdcycles();
        ev.job = job;
        ev.arg = arg;
        ev.kind = kind;
        ev.tid = tid_;
        if (!ring_.push(ev))
            dropped_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Move all currently buffered events into @p out (appended in FIFO
     * order). Consumer-side only. @return number of events drained.
     */
    size_t
    drain(std::vector<TraceEvent> &out)
    {
        size_t n = 0;
        while (auto ev = ring_.pop()) {
            out.push_back(*ev);
            ++n;
        }
        return n;
    }

    /** Events discarded because the ring was full. */
    uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Thread id stamped into this ring's events. */
    uint8_t tid() const { return tid_; }

    /** Number of storable events. */
    size_t capacity() const { return ring_.capacity(); }

  private:
    friend struct ::tq::LayoutAudit;

    // tid_ (constant) and dropped_ (producer-written on the cold
    // overflow path, consumer-read) share the leading line; the ring_
    // member is line-aligned (its index sides are), so placing the two
    // small fields *before* it packs them into the alignment gap
    // instead of growing the object by a line after it.
    uint8_t tid_;
    std::atomic<uint64_t> dropped_{0};
    SpscRing<TraceEvent> ring_;
};

static_assert(alignof(TraceRing) == kCacheLineSize,
              "the ring's index sides keep their line alignment through "
              "the wrapper");

} // namespace tq::telemetry

#endif // TQ_TELEMETRY_TRACE_RING_H
