/**
 * @file
 * Typed trace events emitted by the runtime's hot paths.
 *
 * Each event is a fixed-size POD stamped with the raw cycle counter
 * (RDTSC) at the recording site, so a drained trace reconstructs the
 * paper's sojourn-time decomposition (Figs. 11-12): dispatch, queueing,
 * service quanta, and preemption behaviour are all visible per job.
 * Events are recorded into per-thread SPSC rings (see trace_ring.h) and
 * exported post-run as Chrome `trace_event` JSON (see chrome_trace.h).
 */
#ifndef TQ_TELEMETRY_EVENTS_H
#define TQ_TELEMETRY_EVENTS_H

#include <cstdint>

#include "common/cycles.h"

namespace tq::telemetry {

/** What happened at the recorded timestamp. */
enum class EventKind : uint8_t {
    JobDispatched,      ///< dispatcher forwarded a job to a worker
                        ///< (arg = target worker id)
    QuantumStart,       ///< worker resumed a task coroutine
                        ///< (arg = quanta already consumed by the job)
    ProbeYield,         ///< a probe preempted the running task
    GuardDeferredYield, ///< quantum expired inside a PreemptGuard; the
                        ///< yield was deferred past the critical section
    JobFinished,        ///< job completed; response pushed to the TX ring
};

/** Number of distinct EventKind values. */
inline constexpr int kNumEventKinds = 5;

/** Stable human-readable name of an event kind. */
const char *event_name(EventKind kind);

/** Thread id used for events recorded by the dispatcher thread. */
inline constexpr uint8_t kDispatcherTid = 0xff;

/** Dispatcher-shard tids count down from kDispatcherTid, so shard 0 —
 *  the only shard of an unsharded runtime — keeps the historical 0xff
 *  and existing traces render unchanged. 16 reserved shard tids bound
 *  the worker-id range at 239, far above any configuration here. */
inline constexpr int kMaxDispatcherShards = 16;

/** Trace tid of dispatcher shard @p shard (see kMaxDispatcherShards). */
constexpr uint8_t
dispatcher_tid(int shard)
{
    return static_cast<uint8_t>(kDispatcherTid - shard);
}

/** True when @p tid belongs to a dispatcher shard. */
constexpr bool
is_dispatcher_tid(uint8_t tid)
{
    return tid > kDispatcherTid - kMaxDispatcherShards;
}

/** One trace record. POD, 24 bytes, trivially copyable. */
struct TraceEvent
{
    Cycles tsc = 0;     ///< raw cycle counter at the recording site
    uint64_t job = 0;   ///< request/job id the event belongs to
    uint32_t arg = 0;   ///< event-specific argument (see EventKind)
    EventKind kind = EventKind::JobDispatched; ///< what happened
    uint8_t tid = 0;    ///< worker id, or kDispatcherTid
};

static_assert(sizeof(TraceEvent) == 24, "trace events must stay compact");

} // namespace tq::telemetry

#endif // TQ_TELEMETRY_EVENTS_H
