#include "fault/fault.h"

#include <thread>

#include "common/check.h"
#include "common/cycles.h"
#include "conc/cacheline.h"

namespace tq::fault {

namespace {

/** splitmix64 finalizer: decorrelates consecutive visit numbers. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

const char *
site_name(Site s)
{
    switch (s) {
      case Site::DispatcherPoll:  return "dispatcher_poll";
      case Site::DispatcherPush:  return "dispatcher_push";
      case Site::WorkerPoll:      return "worker_poll";
      case Site::WorkerSlice:     return "worker_slice";
      case Site::WorkerComplete:  return "worker_complete";
      case Site::LoadgenSend:     return "loadgen_send";
      case Site::LoadgenCollect:  return "loadgen_collect";
      case Site::kCount:          break;
    }
    return "?";
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::reset()
{
    for (auto &site : sites_) {
        site.stall_cycles.store(0, std::memory_order_relaxed);
        site.yield_every.store(0, std::memory_order_relaxed);
        site.frozen.store(false, std::memory_order_release);
        site.visits.store(0, std::memory_order_relaxed);
    }
    released_.store(false, std::memory_order_release);
    seed_.store(1, std::memory_order_relaxed);
}

void
FaultInjector::seed(uint64_t s)
{
    seed_.store(s, std::memory_order_relaxed);
}

void
FaultInjector::stall(Site site, double us)
{
    TQ_CHECK(site < Site::kCount);
    sites_[static_cast<int>(site)].stall_cycles.store(
        ns_to_cycles(us * 1e3), std::memory_order_relaxed);
}

void
FaultInjector::freeze(Site site)
{
    TQ_CHECK(site < Site::kCount);
    sites_[static_cast<int>(site)].frozen.store(true,
                                                std::memory_order_release);
}

void
FaultInjector::yield_every(Site site, uint64_t n)
{
    TQ_CHECK(site < Site::kCount);
    sites_[static_cast<int>(site)].yield_every.store(
        n, std::memory_order_relaxed);
}

void
FaultInjector::release_all()
{
    released_.store(true, std::memory_order_release);
}

uint64_t
FaultInjector::visits(Site site) const
{
    TQ_CHECK(site < Site::kCount);
    return sites_[static_cast<int>(site)].visits.load(
        std::memory_order_relaxed);
}

bool
FaultInjector::yields_at(uint64_t seed, uint64_t n, uint64_t visit)
{
    if (n == 0)
        return false;
    return mix(seed ^ (visit * 0x9e3779b97f4a7c15ULL)) % n == 0;
}

void
FaultInjector::on_site(Site site)
{
    SiteState &st = sites_[static_cast<int>(site)];
    const uint64_t visit =
        st.visits.fetch_add(1, std::memory_order_relaxed) + 1;

    const uint64_t stall = st.stall_cycles.load(std::memory_order_relaxed);
    if (stall != 0) {
        const Cycles until = rdcycles() + stall;
        while (rdcycles() < until)
            cpu_relax();
    }

    const uint64_t n = st.yield_every.load(std::memory_order_relaxed);
    if (n != 0 &&
        yields_at(seed_.load(std::memory_order_relaxed), n, visit))
        std::this_thread::yield();

    // Freeze last: a frozen thread wakes only on release_all() — which
    // the runtime invokes when it escalates to a forced stop, so a
    // frozen stage can never outlive the lifecycle deadline machinery.
    while (st.frozen.load(std::memory_order_acquire) &&
           !released_.load(std::memory_order_acquire))
        std::this_thread::yield();
}

} // namespace tq::fault
