/**
 * @file
 * Deterministic fault injection for the runtime datapath.
 *
 * Chaos tooling in the spirit of the drain/backpressure testing that
 * Shenango and Shinjuku apply to their runtimes: named hook sites in
 * the dispatcher, workers and load generator can be armed with
 * deterministic, seeded faults —
 *
 *  - stall:  spin the calling thread for a fixed duration per visit
 *            (a slow collector, a descheduled worker),
 *  - freeze: block at the site until released (a hung thread; released
 *            automatically when the runtime force-stops, modelling the
 *            lifecycle deadline reclaiming a wedged stage),
 *  - yield_every(n): deterministic pseudo-random sched yields, seeded,
 *            to shake out ordering assumptions between the threads.
 *
 * The hot-path hook `TQ_FAULT_SITE(name)` compiles to nothing unless
 * the tree is configured with `-DTQ_FAULT_INJECTION=ON`, so default
 * builds carry zero overhead. The FaultInjector class itself always
 * compiles (tests probe `tq::fault::kEnabled` and skip scenarios that
 * need compiled-in hooks).
 *
 * The injector is a process-wide singleton: hook sites are static
 * program points, and tests drive one runtime at a time. reset() between
 * scenarios.
 */
#ifndef TQ_FAULT_FAULT_H
#define TQ_FAULT_FAULT_H

#include <atomic>
#include <cstdint>

namespace tq::fault {

/** True when the hot-path hook sites are compiled in. */
#if defined(TQ_FAULT_INJECTION_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/** Named hook sites in the datapath (see DESIGN.md for placement). */
enum class Site : int {
    DispatcherPoll = 0, ///< dispatcher loop, before the RX pop
    DispatcherPush,     ///< dispatcher, before a worker-ring push attempt
    WorkerPoll,         ///< worker loop, before polling admissions
    WorkerSlice,        ///< worker, before resuming a task coroutine
    WorkerComplete,     ///< worker, before the TX push attempt
    LoadgenSend,        ///< load generator, before a submit
    LoadgenCollect,     ///< load generator, before draining responses
    kCount
};

/** Human-readable site name. */
const char *site_name(Site s);

/**
 * Process-wide fault registry. Arming/disarming may happen from any
 * thread; hook sites read the armed state with relaxed atomics.
 */
class FaultInjector
{
  public:
    /** The process-wide injector. */
    static FaultInjector &instance();

    /** Disarm every site, release every freeze, zero visit counters. */
    void reset();

    /** Seed the deterministic yield pattern (default 1). */
    void seed(uint64_t s);

    /** Arm a per-visit busy stall of @p us microseconds at @p site. */
    void stall(Site site, double us);

    /** Freeze @p site: visiting threads block until release_all(). */
    void freeze(Site site);

    /** Arm deterministic yields: roughly one visit in @p n yields,
     *  chosen by a seeded hash of the visit number. 0 disarms. */
    void yield_every(Site site, uint64_t n);

    /** Release every frozen site (also called by the runtime when it
     *  escalates to a forced stop, so joins always terminate). */
    void release_all();

    /** Times @p site has been visited since the last reset(). */
    uint64_t visits(Site site) const;

    /** Hook body; invoked by TQ_FAULT_SITE in instrumented builds. */
    void on_site(Site site);

    /**
     * The deterministic yield decision, exposed pure for tests: does
     * visit number @p visit yield when armed with yield_every(@p n)
     * under @p seed?
     */
    static bool yields_at(uint64_t seed, uint64_t n, uint64_t visit);

  private:
    FaultInjector() = default;

    struct SiteState
    {
        std::atomic<uint64_t> stall_cycles{0};
        std::atomic<uint64_t> yield_every{0};
        std::atomic<bool> frozen{false};
        std::atomic<uint64_t> visits{0};
    };

    SiteState sites_[static_cast<int>(Site::kCount)];
    std::atomic<uint64_t> seed_{1};
    std::atomic<bool> released_{false};
};

} // namespace tq::fault

/**
 * Hot-path hook. Compiles to nothing unless the build enables
 * TQ_FAULT_INJECTION; instrumented builds consult the injector.
 */
#if defined(TQ_FAULT_INJECTION_ENABLED)
#define TQ_FAULT_SITE(site)                                                 \
    ::tq::fault::FaultInjector::instance().on_site(::tq::fault::Site::site)
#else
#define TQ_FAULT_SITE(site) ((void)0)
#endif

#endif // TQ_FAULT_FAULT_H
