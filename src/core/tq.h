/**
 * @file
 * Tiny Quanta — public umbrella header.
 *
 * Pulls in the full public API of the library:
 *
 *  - tq::runtime — the TQ system itself: Runtime (dispatcher + workers),
 *    forced-multitasking workers, JSQ+MSQ dispatch (paper sections 3, 4),
 *    per-class quanta with deficit accounting and an optional adaptive
 *    quantum controller (runtime/quantum.h, runtime/quantum_controller.h).
 *  - tq::probe / tq::coro — the forced-multitasking mechanism: probe
 *    runtime (tq_probe, PreemptGuard) and stackful coroutines.
 *  - tq::compiler / tq::progs — the probe-placement compiler pass on the
 *    mini-IR, the CI/CI-Cycles baselines, and the Table-3 workloads.
 *  - tq::sim — discrete-event cluster simulators (two-level,
 *    centralized, Caladan-style) used to regenerate the paper's figures.
 *  - tq::cache — cache model, pointer-chase study, reuse distances.
 *  - tq::workloads — MiniKV, TPC-C emulator, calibrated spinner.
 *  - tq::baselines — real Shinjuku-style and Caladan-style runtimes.
 *  - tq::net — open-loop load generator.
 *
 * Typical quickstart (see examples/quickstart.cc):
 * @code
 *   tq::runtime::RuntimeConfig cfg;
 *   cfg.num_workers = 4;
 *   cfg.quantum_us = 2.0;
 *   tq::runtime::Runtime rt(cfg, [](const tq::runtime::Request &req) {
 *       tq::workloads::spin_for(double(req.payload)); // probed job body
 *       return req.id;
 *   });
 *   rt.start();
 *   // submit Requests, drain Responses...
 * @endcode
 */
#ifndef TQ_CORE_TQ_H
#define TQ_CORE_TQ_H

#include "baselines/centralized.h"
#include "baselines/stealing.h"
#include "cache/cache_sim.h"
#include "cache/chase.h"
#include "cache/reuse.h"
#include "common/cycles.h"
#include "common/dist.h"
#include "common/histogram.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "common/units.h"
#include "compiler/builder.h"
#include "compiler/cfg.h"
#include "compiler/exec.h"
#include "compiler/ir.h"
#include "compiler/passes.h"
#include "compiler/report.h"
#include "conc/buffer_pool.h"
#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "coro/coroutine.h"
#include "fault/fault.h"
#include "net/loadgen.h"
#include "net/runtime_server.h"
#include "probe/probe.h"
#include "progs/programs.h"
#include "runtime/runtime.h"
#include "sim/caladan.h"
#include "sim/central.h"
#include "sim/sweep.h"
#include "sim/two_level.h"
#include "telemetry/telemetry.h"
#include "workloads/minikv.h"
#include "workloads/spin.h"
#include "workloads/tpcc.h"

namespace tq {

/** Library semantic version. */
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 1;
inline constexpr int kVersionPatch = 0;

} // namespace tq

#endif // TQ_CORE_TQ_H
