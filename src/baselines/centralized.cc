#include "baselines/centralized.h"

#include "common/check.h"
#include "probe/probe.h"

namespace tq::baselines {

CentralizedRuntime::CentralizedRuntime(CentralizedConfig cfg,
                                       runtime::Handler handler)
    : cfg_(cfg),
      handler_(std::move(handler)),
      quantum_cycles_(ns_to_cycles(cfg.quantum_us * 1e3)),
      interrupt_cycles_(ns_to_cycles(cfg.interrupt_us * 1e3)),
      rx_(cfg.ring_capacity),
      outstanding_(static_cast<size_t>(cfg.num_workers), 0)
{
    TQ_CHECK(cfg_.num_workers > 0);
    TQ_CHECK(handler_);
    for (int i = 0; i < cfg_.job_contexts; ++i) {
        auto ctx = std::make_unique<JobCtx>();
        JobCtx *raw = ctx.get();
        ctx->coro = std::make_unique<Coroutine>([this, raw](Coroutine &self) {
            for (;;) {
                if (!raw->has_job) {
                    self.yield();
                    continue;
                }
                raw->result = handler_(raw->req);
                raw->has_job = false;
                raw->job_done = true;
                self.yield();
            }
        });
        free_ctx_.push_back(raw);
        contexts_.push_back(std::move(ctx));
    }
    for (int w = 0; w < cfg_.num_workers; ++w) {
        grant_.push_back(std::make_unique<SpscRing<JobCtx *>>(8));
        give_back_.push_back(std::make_unique<SpscRing<JobCtx *>>(8));
        tx_.push_back(
            std::make_unique<SpscRing<runtime::Response>>(cfg.ring_capacity));
    }
}

CentralizedRuntime::~CentralizedRuntime()
{
    stop();
}

void
CentralizedRuntime::start()
{
    TQ_CHECK(!started_);
    started_ = true;
    threads_.emplace_back([this] { dispatcher_main(); });
    for (int w = 0; w < cfg_.num_workers; ++w)
        threads_.emplace_back([this, w] { worker_main(w); });
}

void
CentralizedRuntime::stop()
{
    if (!started_ || stop_.load())
        return;
    stop_.store(true);
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

bool
CentralizedRuntime::submit(const runtime::Request &req)
{
    return rx_.push(req);
}

size_t
CentralizedRuntime::drain(std::vector<runtime::Response> &out)
{
    size_t n = 0;
    for (auto &ring : tx_) {
        while (auto resp = ring->pop()) {
            out.push_back(*resp);
            ++n;
        }
    }
    return n;
}

void
CentralizedRuntime::dispatcher_main()
{
    int empty = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
        bool progressed = false;

        // Admit new requests into pooled job contexts.
        while (!free_ctx_.empty()) {
            auto req = rx_.pop();
            if (!req)
                break;
            req->arrival_cycles = rdcycles();
            JobCtx *ctx = free_ctx_.back();
            free_ctx_.pop_back();
            ctx->req = *req;
            ctx->job_done = false;
            ctx->has_job = true;
            runq_.push_back(ctx);
            progressed = true;
        }

        // Collect preempted / finished jobs returned by workers.
        for (int w = 0; w < cfg_.num_workers; ++w) {
            while (auto ctx = give_back_[static_cast<size_t>(w)]->pop()) {
                outstanding_[static_cast<size_t>(w)] = 0;
                if ((*ctx)->job_done)
                    free_ctx_.push_back(*ctx); // response already sent
                else
                    runq_.push_back(*ctx); // PS rotation of global queue
                progressed = true;
            }
        }

        // Grant quanta to idle workers (the per-quantum dispatcher work
        // that limits centralized scheduling, section 3.2).
        for (int w = 0; w < cfg_.num_workers && !runq_.empty(); ++w) {
            if (outstanding_[static_cast<size_t>(w)])
                continue;
            JobCtx *ctx = runq_.front();
            runq_.pop_front();
            TQ_CHECK(grant_[static_cast<size_t>(w)]->push(ctx));
            outstanding_[static_cast<size_t>(w)] = 1;
            grants_.fetch_add(1, std::memory_order_relaxed);
            progressed = true;
        }

        if (!progressed) {
            if (++empty >= 8) {
                empty = 0;
                std::this_thread::yield();
            } else {
                cpu_relax();
            }
        } else {
            empty = 0;
        }
    }
}

void
CentralizedRuntime::worker_main(int id)
{
    auto &grant = *grant_[static_cast<size_t>(id)];
    auto &back = *give_back_[static_cast<size_t>(id)];
    auto &tx = *tx_[static_cast<size_t>(id)];
    int empty = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
        auto ctx_opt = grant.pop();
        if (!ctx_opt) {
            if (++empty >= 8) {
                empty = 0;
                std::this_thread::yield();
            } else {
                cpu_relax();
            }
            continue;
        }
        empty = 0;
        JobCtx *ctx = *ctx_opt;

        bind_yield(
            [](void *coro) { static_cast<Coroutine *>(coro)->yield(); },
            ctx->coro.get());
        arm_quantum(quantum_cycles_);
        ctx->coro->resume();
        disarm_quantum();

        if (ctx->job_done) {
            runtime::Response resp;
            resp.id = ctx->req.id;
            resp.gen_cycles = ctx->req.gen_cycles;
            resp.arrival_cycles = ctx->req.arrival_cycles;
            resp.done_cycles = rdcycles();
            resp.job_class = ctx->req.job_class;
            resp.worker = id;
            resp.result = ctx->result;
            while (!tx.push(resp))
                std::this_thread::yield();
        } else {
            // Preempted: emulate the interrupt delivery + context save
            // cost Shinjuku pays per preemption (~1us, section 1).
            const Cycles until = rdcycles() + interrupt_cycles_;
            while (rdcycles() < until)
                cpu_relax();
        }
        while (!back.push(ctx))
            std::this_thread::yield();
    }
}

} // namespace tq::baselines
