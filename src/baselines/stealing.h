/**
 * @file
 * Caladan-style FCFS work-stealing runtime (paper section 5.1) — the
 * real-thread counterpart of tq::sim::run_caladan.
 *
 * Requests are steered to per-worker queues by a hash of the request id
 * (RSS); workers run jobs to completion in FCFS order and steal from
 * random victims when idle. No dispatcher thread and no preemption:
 * exactly the design whose head-of-line blocking the paper contrasts TQ
 * against.
 */
#ifndef TQ_BASELINES_STEALING_H
#define TQ_BASELINES_STEALING_H

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "net/loadgen.h"
#include "runtime/request.h"
#include "runtime/worker.h"

namespace tq::baselines {

/** Configuration of the work-stealing baseline. */
struct StealingConfig
{
    int num_workers = 2;
    int steal_attempts = 2;  ///< victims probed before backing off
    size_t ring_capacity = 1 << 14;
    uint64_t seed = 1;
};

/** A running FCFS work-stealing instance. */
class StealingRuntime : public net::Server
{
  public:
    StealingRuntime(StealingConfig cfg, runtime::Handler handler);
    ~StealingRuntime() override;

    StealingRuntime(const StealingRuntime &) = delete;
    StealingRuntime &operator=(const StealingRuntime &) = delete;

    void start();
    void stop();

    bool submit(const runtime::Request &req) override;
    size_t drain(std::vector<runtime::Response> &out) override;

    /** Successful steals across all workers (tests/stats). */
    uint64_t steals() const { return steals_.load(); }

  private:
    void worker_main(int id);

    StealingConfig cfg_;
    runtime::Handler handler_;

    /** Per-worker job queues. MPMC: owner pushes/pops, thieves pop. */
    std::vector<std::unique_ptr<MpmcQueue<runtime::Request>>> queues_;
    std::vector<std::unique_ptr<SpscRing<runtime::Response>>> tx_;

    std::atomic<uint64_t> steals_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::thread> threads_;
    bool started_ = false;
};

} // namespace tq::baselines

#endif // TQ_BASELINES_STEALING_H
