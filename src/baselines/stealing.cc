#include "baselines/stealing.h"

#include "common/check.h"
#include "common/cycles.h"
#include "common/rng.h"
#include "probe/probe.h"

namespace tq::baselines {

StealingRuntime::StealingRuntime(StealingConfig cfg,
                                 runtime::Handler handler)
    : cfg_(cfg), handler_(std::move(handler))
{
    TQ_CHECK(cfg_.num_workers > 0);
    TQ_CHECK(handler_);
    for (int w = 0; w < cfg_.num_workers; ++w) {
        queues_.push_back(
            std::make_unique<MpmcQueue<runtime::Request>>(cfg.ring_capacity));
        tx_.push_back(
            std::make_unique<SpscRing<runtime::Response>>(cfg.ring_capacity));
    }
}

StealingRuntime::~StealingRuntime()
{
    stop();
}

void
StealingRuntime::start()
{
    TQ_CHECK(!started_);
    started_ = true;
    for (int w = 0; w < cfg_.num_workers; ++w)
        threads_.emplace_back([this, w] { worker_main(w); });
}

void
StealingRuntime::stop()
{
    if (!started_ || stop_.load())
        return;
    stop_.store(true);
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

bool
StealingRuntime::submit(const runtime::Request &req)
{
    // RSS steering: hash the request id onto a queue (flow -> core).
    uint64_t h = req.id * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    const size_t target = h % static_cast<uint64_t>(cfg_.num_workers);
    runtime::Request stamped = req;
    stamped.arrival_cycles = rdcycles();
    return queues_[target]->push(stamped);
}

size_t
StealingRuntime::drain(std::vector<runtime::Response> &out)
{
    size_t n = 0;
    for (auto &ring : tx_) {
        while (auto resp = ring->pop()) {
            out.push_back(*resp);
            ++n;
        }
    }
    return n;
}

void
StealingRuntime::worker_main(int id)
{
    Rng rng(cfg_.seed + static_cast<uint64_t>(id) * 7919);
    auto &own = *queues_[static_cast<size_t>(id)];
    auto &tx = *tx_[static_cast<size_t>(id)];
    int empty = 0;

    // No quantum: jobs run to completion (probes never fire).
    disarm_quantum();

    while (!stop_.load(std::memory_order_relaxed)) {
        auto req = own.pop();
        if (!req) {
            for (int a = 0; a < cfg_.steal_attempts && !req; ++a) {
                const size_t victim =
                    rng.below(static_cast<uint64_t>(cfg_.num_workers));
                if (static_cast<int>(victim) == id)
                    continue;
                req = queues_[victim]->pop();
                if (req)
                    steals_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (!req) {
            if (++empty >= 8) {
                empty = 0;
                std::this_thread::yield();
            } else {
                cpu_relax();
            }
            continue;
        }
        empty = 0;

        runtime::Response resp;
        resp.id = req->id;
        resp.gen_cycles = req->gen_cycles;
        resp.arrival_cycles = req->arrival_cycles;
        resp.job_class = req->job_class;
        resp.worker = id;
        resp.result = handler_(*req); // run to completion
        resp.done_cycles = rdcycles();
        while (!tx.push(resp))
            std::this_thread::yield();
    }
}

} // namespace tq::baselines
