/**
 * @file
 * Shinjuku-style *centralized* preemptive runtime (paper sections 1, 2,
 * 3.2) — the real-thread counterpart of tq::sim::run_central.
 *
 * One dispatcher thread owns the global run queue and hands out quanta:
 * each grant moves a job coroutine to a worker for one quantum, then the
 * worker returns it. Preemption is interrupt-driven in Shinjuku (Dune
 * IPIs, ~1us delivery); here the quantum end is detected by the same
 * probe clock but the worker *emulates the interrupt cost* by spinning
 * for interrupt_us before handing the job back. Job coroutines migrate
 * between cores from quantum to quantum — exactly the cache-locality
 * cost two-level scheduling avoids (section 3.2).
 */
#ifndef TQ_BASELINES_CENTRALIZED_H
#define TQ_BASELINES_CENTRALIZED_H

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "conc/mpmc_queue.h"
#include "conc/spsc_ring.h"
#include "coro/coroutine.h"
#include "net/loadgen.h"
#include "runtime/request.h"
#include "runtime/worker.h"

namespace tq::baselines {

/** Configuration of the centralized baseline. */
struct CentralizedConfig
{
    int num_workers = 2;
    double quantum_us = 5.0;    ///< Shinjuku supports >= 5us (section 1)
    double interrupt_us = 1.0;  ///< emulated interrupt cost per preemption
    int job_contexts = 64;      ///< pooled job coroutines
    size_t ring_capacity = 1 << 14;
};

/** A running centralized (Shinjuku-style) instance. */
class CentralizedRuntime : public net::Server
{
  public:
    CentralizedRuntime(CentralizedConfig cfg, runtime::Handler handler);
    ~CentralizedRuntime() override;

    CentralizedRuntime(const CentralizedRuntime &) = delete;
    CentralizedRuntime &operator=(const CentralizedRuntime &) = delete;

    void start();
    void stop();

    bool submit(const runtime::Request &req) override;
    size_t drain(std::vector<runtime::Response> &out) override;

    /** Quanta granted by the dispatcher (scales with 1/quantum). */
    uint64_t grants() const { return grants_.load(); }

  private:
    struct JobCtx
    {
        runtime::Request req;
        uint64_t result = 0;
        bool has_job = false;
        bool job_done = false;
        std::unique_ptr<Coroutine> coro;
    };

    void dispatcher_main();
    void worker_main(int id);

    CentralizedConfig cfg_;
    runtime::Handler handler_;
    Cycles quantum_cycles_;
    Cycles interrupt_cycles_;

    MpmcQueue<runtime::Request> rx_;
    std::vector<std::unique_ptr<JobCtx>> contexts_;
    std::vector<JobCtx *> free_ctx_;
    std::deque<JobCtx *> runq_;

    /** Grant/return rings per worker (dispatcher <-> worker). */
    std::vector<std::unique_ptr<SpscRing<JobCtx *>>> grant_;
    std::vector<std::unique_ptr<SpscRing<JobCtx *>>> give_back_;
    std::vector<std::unique_ptr<SpscRing<runtime::Response>>> tx_;
    std::vector<uint8_t> outstanding_;

    std::atomic<uint64_t> grants_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::thread> threads_;
    bool started_ = false;
};

} // namespace tq::baselines

#endif // TQ_BASELINES_CENTRALIZED_H
