/**
 * @file
 * Load-sweep drivers for the figure benchmarks.
 *
 * The paper's figures plot 99.9% latency/slowdown against offered load
 * and report "maximum load under an SLO" capacities (Figures 2, 5-12).
 * These helpers run a user-supplied simulation functor across a rate
 * grid and binary-search the highest rate that still meets an SLO.
 */
#ifndef TQ_SIM_SWEEP_H
#define TQ_SIM_SWEEP_H

#include <functional>
#include <vector>

#include "sim/metrics.h"

namespace tq::sim {

/** Simulation functor: offered rate (req/ns) -> result. */
using RunFn = std::function<SimResult(double rate)>;

/** SLO predicate: true when the result meets the objective. */
using SloFn = std::function<bool(const SimResult &)>;

/** One point of a latency-vs-load curve. */
struct SweepPoint
{
    double rate = 0; ///< offered load, req/ns
    SimResult result;
};

/** Run @p fn at each rate of @p rates (skips nothing, keeps order). */
std::vector<SweepPoint> sweep(const RunFn &fn,
                              const std::vector<double> &rates);

/** Evenly spaced rate grid [lo, hi] with @p points entries. */
std::vector<double> rate_grid(double lo, double hi, int points);

/**
 * Largest rate in [lo, hi] whose result satisfies @p slo, found by
 * bisection with @p iters refinement steps. Returns 0 when even `lo`
 * misses the objective.
 */
double max_rate_under_slo(const RunFn &fn, const SloFn &slo, double lo,
                          double hi, int iters = 12);

/** SLO: 99.9% slowdown across all classes stays at or below @p limit. */
SloFn slowdown_slo(double limit);

/** SLO: 99.9% sojourn of class @p name stays at or below @p limit_ns. */
SloFn class_sojourn_slo(std::string name, SimNanos limit_ns);

} // namespace tq::sim

#endif // TQ_SIM_SWEEP_H
