/**
 * @file
 * Load-sweep drivers for the figure benchmarks.
 *
 * The paper's figures plot 99.9% latency/slowdown against offered load
 * and report "maximum load under an SLO" capacities (Figures 2, 5-12).
 * These helpers run a user-supplied simulation functor across a rate
 * grid and binary-search the highest rate that still meets an SLO.
 *
 * Sweep points are independent simulations, so `sweep()` (and the
 * benches built on it) can fan the grid out over a thread pool via
 * SweepOptions::threads. Parallel execution is deterministic: point i
 * always runs fn(rates[i]) with the same inputs as the serial loop and
 * lands in slot i of the returned vector, so serial and parallel sweeps
 * produce bitwise-identical results (see DESIGN.md section 4e for the
 * determinism contract and per-point seed derivation).
 */
#ifndef TQ_SIM_SWEEP_H
#define TQ_SIM_SWEEP_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/metrics.h"

namespace tq::sim {

/** Simulation functor: offered rate (req/ns) -> result. */
using RunFn = std::function<SimResult(double rate)>;

/** Seeded simulation functor for `sweep_seeded`. */
using SeededRunFn =
    std::function<SimResult(double rate, uint64_t seed)>;

/** SLO predicate: true when the result meets the objective. */
using SloFn = std::function<bool(const SimResult &)>;

/** One point of a latency-vs-load curve. */
struct SweepPoint
{
    double rate = 0; ///< offered load, req/ns
    uint64_t seed = 0; ///< per-point RNG seed (sweep_seeded only)
    SimResult result;
};

/** Execution options for the sweep drivers. */
struct SweepOptions
{
    /**
     * Worker threads to spread points over; 1 (the default) runs the
     * classic serial loop on the calling thread. Each point is one
     * independent simulation, so the only requirement on the functor is
     * that concurrent calls do not share mutable state (build the
     * config/dist per call or treat them as read-only, as every bench
     * here does).
     */
    int threads = 1;
};

/**
 * Run @p job(i) for every i in [0, n), spread over @p threads workers.
 *
 * Work is claimed dynamically (atomic counter), so uneven point costs —
 * saturated runs take longer than stable ones — still balance. With
 * threads <= 1 this is a plain loop on the calling thread. Joining the
 * pool orders every job's writes before the return (happens-before), so
 * results written into distinct pre-sized slots need no locks. A job
 * index is claimed by exactly one worker; out-of-range claims are
 * discarded. Fatal errors inside @p job abort the process as they do
 * serially.
 */
void parallel_run(size_t n, int threads,
                  const std::function<void(size_t)> &job);

/**
 * Run @p fn at each rate of @p rates: every point, in grid order, no
 * dedup. With opts.threads > 1 the points run concurrently; the result
 * vector is identical to the serial sweep's, point for point.
 */
std::vector<SweepPoint> sweep(const RunFn &fn,
                              const std::vector<double> &rates,
                              const SweepOptions &opts = {});

/** Evenly spaced rate grid [lo, hi] with @p points entries, ascending. */
std::vector<double> rate_grid(double lo, double hi, int points);

/**
 * As `sweep()`, but derives an independent RNG seed for each point from
 * @p base_seed (splitmix64 stream, see derive_seed) and passes it to
 * @p fn; the seed used is recorded in SweepPoint::seed. Use this when a
 * bench wants replicated points to differ in randomness while staying
 * reproducible from one base seed.
 */
std::vector<SweepPoint> sweep_seeded(const SeededRunFn &fn,
                                     const std::vector<double> &rates,
                                     uint64_t base_seed,
                                     const SweepOptions &opts = {});

/**
 * The @p index-th output of the splitmix64 stream seeded with @p base:
 * statistically independent 64-bit seeds for per-point generators.
 * splitmix64 is a bijection per step, so distinct indexes give distinct
 * seeds and the xoshiro256** states expanded from them do not collide;
 * `sweep_seeded` additionally asserts pairwise distinctness in debug
 * builds as the practical no-stream-overlap check.
 */
uint64_t derive_seed(uint64_t base, uint64_t index);

/**
 * Largest rate in [lo, hi] whose result satisfies @p slo, found by
 * bisection with @p iters refinement steps. Returns 0 when even `lo`
 * misses the objective.
 *
 * Every evaluated rate is memoized for the duration of the call, and
 * @p known (typically the surrounding sweep's grid points, e.g. when a
 * bench prints a latency table and then searches the same configuration
 * for capacity) pre-seeds the memo: if `lo`/`hi` appear in @p known the
 * endpoint runs are skipped and the search costs exactly `iters`
 * simulations instead of `iters + 2`.
 */
double max_rate_under_slo(const RunFn &fn, const SloFn &slo, double lo,
                          double hi, int iters = 12,
                          const std::vector<SweepPoint> *known = nullptr);

/** SLO: 99.9% slowdown across all classes stays at or below @p limit. */
SloFn slowdown_slo(double limit);

/** SLO: 99.9% sojourn of class @p name stays at or below @p limit_ns. */
SloFn class_sojourn_slo(std::string name, SimNanos limit_ns);

} // namespace tq::sim

#endif // TQ_SIM_SWEEP_H
