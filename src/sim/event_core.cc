#include "sim/event_core.h"

namespace tq::sim {

EngineCore::EngineCore(const ServiceDist &dist, double rate, uint64_t seed,
                       SimNanos duration, size_t max_in_flight,
                       bool stop_when_saturated, double warmup)
    : dist_(dist),
      rate_(rate),
      duration_(duration),
      max_in_flight_(max_in_flight),
      stop_when_saturated_(stop_when_saturated),
      rng_(seed),
      metrics_(dist.class_names(), warmup)
{
    TQ_CHECK(rate > 0);
    TQ_CHECK(duration > 0);
    events_.reserve(1024);
    jobs_.reserve(1024);
    // Expected completions of one stable run, used purely as an
    // allocation hint; capped so absurd rate*duration products do not
    // balloon memory up front.
    const double expect = rate * duration;
    metrics_.reserve(
        static_cast<size_t>(expect < 8e6 ? (expect > 0 ? expect : 0) : 8e6));
}

uint32_t
EngineCore::try_admit(double demand_scale)
{
    if (in_flight_ >= max_in_flight_) {
        ++dropped_;
        saturated_ = true;
        return kNoJob;
    }
    const uint32_t idx = jobs_.alloc();
    Job &j = jobs_[idx];
    const ServiceSample s = dist_.sample(rng_);
    j.id = next_id_++;
    j.arrival = now_;
    j.demand = s.demand;
    j.remaining = s.demand * demand_scale;
    j.job_class = s.job_class;
    j.serviced_quanta = 0;
    ++in_flight_;
    ++arrivals_;
    return idx;
}

void
EngineCore::complete(uint32_t idx, SimNanos finish)
{
    metrics_.record(jobs_[idx], finish);
    --in_flight_;
    jobs_.release(idx);
}

void
EngineCore::finalize(SimResult &result)
{
    result.offered_rate = rate_;
    result.duration = duration_;
    if (!backlog_checked_)
        check_backlog();
    result.saturated = saturated_ || in_flight_ > 0;
    result.dropped = dropped_;
    metrics_.finalize(result);
    result.throughput = static_cast<double>(result.completed) / duration_;
}

void
EngineCore::check_backlog()
{
    backlog_checked_ = true;
    const size_t limit =
        std::max<size_t>(1000, static_cast<size_t>(arrivals_ / 20));
    if (in_flight_ > limit)
        saturated_ = true;
}

} // namespace tq::sim
