/**
 * @file
 * Per-operation cost constants for the cluster simulators.
 *
 * The simulators reproduce queueing behaviour; these constants inject the
 * mechanism costs. The TQ-side values are measured from the *real*
 * mechanisms in this repository (bench/micro_mechanisms); the
 * Shinjuku/Caladan-side values come from the paper's characterization of
 * those systems (sections 1, 5.1, 5.6, 6, 7).
 */
#ifndef TQ_SIM_OVERHEADS_H
#define TQ_SIM_OVERHEADS_H

#include "common/units.h"

namespace tq::sim {

/** Mechanism costs, all in nanoseconds. */
struct Overheads
{
    /**
     * Cost charged to a worker core per preemption (context switch plus
     * amortized probing). TQ: coroutine yield (tens of ns) + probe
     * amortization. Shinjuku: ~1us interrupt delivery (paper section 1).
     */
    SimNanos switch_overhead = 40;

    /**
     * Dispatcher work per *job* (poll packet, pick core, push to ring).
     * The paper quotes ~14 Mrps (section 6) => ~70 ns/job for the
     * per-request path; this repo's batched hot path with the packed
     * DispatchView pick (pop_n + one counter-line refresh per batch into
     * cache-line-aligned uint32 lanes, see DESIGN.md §4c and
     * docs/cache_line_analysis.md) measures ~28 ns/job at 16 workers on
     * bench/misc_dispatcher_throughput, recorded in BENCH_dispatch.json.
     */
    SimNanos dispatch_cost = 28;

    /**
     * Front-tier steering cost per *request* in a sharded-dispatcher
     * cluster (num_dispatchers > 1, DESIGN.md §4g): the submitter's
     * scan of the per-shard load lines plus the rotated-JSQ compare
     * (common/shard.h pick_min_rotated). Charged as pure latency, not
     * a serial resource — submitters are many and run in parallel, so
     * the front tier delays each request but imposes no aggregate
     * throughput ceiling. bench/fig17_sharded_dispatcher's front-pick
     * micro measures ~2-4 ns at 2-4 shards; 5 ns is a conservative
     * default. Unused at num_dispatchers = 1 (no front tier exists).
     */
    SimNanos front_tier_cost = 5;

    /**
     * Centralized scheduler work per *scheduling operation* (enqueue or
     * quantum grant). Shinjuku-class dispatchers sustain ~5 Mrps
     * (paper section 6) => ~200 ns/op.
     */
    SimNanos sched_op_cost = 210;

    /** Per-request cost on the response path at the worker. */
    SimNanos response_cost = 20;

    /** Caladan IOKernel per-packet cost (serial resource). */
    SimNanos iokernel_cost = 110;

    /** Caladan directpath: extra per-request packet work on the worker. */
    SimNanos directpath_cost = 150;

    /** Cost of one work-stealing attempt (successful or not). */
    SimNanos steal_cost = 90;

    /** TQ overheads with values calibrated from the real mechanisms. */
    static Overheads
    tq_default()
    {
        return Overheads{};
    }

    /** Idealized zero-overhead scheduling (Figures 1, 4). */
    static Overheads
    ideal()
    {
        Overheads o;
        o.switch_overhead = 0;
        o.dispatch_cost = 0;
        o.front_tier_cost = 0;
        o.sched_op_cost = 0;
        o.response_cost = 0;
        return o;
    }

    /** Shinjuku-style interrupt-driven centralized scheduling. */
    static Overheads
    shinjuku_default()
    {
        Overheads o;
        o.switch_overhead = us(1); // interrupt latency (paper section 1)
        o.sched_op_cost = 210;     // ~5 Mrps centralized dispatcher
        o.dispatch_cost = 210;
        return o;
    }
};

} // namespace tq::sim

#endif // TQ_SIM_OVERHEADS_H
