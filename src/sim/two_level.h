/**
 * @file
 * Discrete-event simulator of TQ's two-level scheduling cluster
 * (paper section 3.2): a dispatcher doing only load balancing feeding
 * per-core quantum schedulers.
 *
 * The dispatcher is a serial resource (dispatch_cost per job) applying a
 * blind load-balancing policy — JSQ with MSQ or random tie-breaking,
 * uniform random, or power-of-two choices. Each worker core schedules
 * its admitted jobs with processor sharing in `quantum`-sized slices
 * (switch_overhead charged per preemption) or FCFS run-to-completion.
 * Responses leave directly from the worker (response_cost), matching the
 * paper's datapath.
 *
 * This simulator also models the TQ variants of the breakdown study
 * (section 5.4): per-class quantum overrides (TQ-TIMING), alternative
 * load balancers (TQ-RAND, TQ-POWER-TWO) and FCFS cores (TQ-FCFS);
 * TQ-IC / TQ-SLOW-YIELD are expressed through `switch_overhead` /
 * `probe_overhead_frac`.
 */
#ifndef TQ_SIM_TWO_LEVEL_H
#define TQ_SIM_TWO_LEVEL_H

#include "common/arrival.h"
#include "common/dist.h"
#include "sim/metrics.h"
#include "sim/overheads.h"

namespace tq::sim {

/** Dispatcher load-balancing policies (paper sections 3.2, 5.4). */
enum class LbPolicy {
    JsqMsq,      ///< join-shortest-queue, Maximum-Serviced-Quanta ties
    JsqRandom,   ///< join-shortest-queue, random ties
    Random,      ///< uniform random core
    PowerOfTwo,  ///< least-loaded of two random cores
};

/** Per-core quantum scheduling policies. */
enum class CorePolicy {
    ProcessorSharing, ///< round-robin quanta over admitted jobs
    Fcfs,             ///< run to completion in arrival order
    Las,              ///< least-attained-service first (the dynamic-
                      ///< quantum policy class TQ's probes support,
                      ///< paper section 3.1)
};

/** Configuration of one two-level simulation run. */
struct TwoLevelConfig
{
    int num_cores = 16;

    /**
     * Dispatcher shards. The paper's TQ uses one (~14 Mrps); section 6
     * suggests scaling out with multiple load-balancing dispatchers.
     * With N > 1 the model matches the runtime's sharded tier
     * (DESIGN.md §4g): the cores split into N contiguous disjoint
     * subsets (common/shard.h shard_span) and each arrival is steered
     * by a front-tier rotated JSQ over per-shard load estimates
     * (front_tier_cost, charged as pure latency — submitters are
     * parallel), then crosses its shard's serial dispatcher
     * (dispatch_cost) whose per-core pick ranges over the owned subset
     * only. 1 keeps the historical single-dispatcher model,
     * byte-identical to the pre-sharding simulator. Must be in
     * [1, num_cores].
     */
    int num_dispatchers = 1;
    SimNanos quantum = us(2);
    CorePolicy core_policy = CorePolicy::ProcessorSharing;
    LbPolicy lb = LbPolicy::JsqMsq;
    Overheads overheads = Overheads::tq_default();

    /**
     * Per-class quantum override (TQ-TIMING variant): when non-empty,
     * class c is scheduled with class_quantum[c] instead of `quantum`,
     * emulating inaccurate preemption timing — and, with the knobs
     * below, mirroring the runtime's per-class scheduler
     * (runtime/quantum.h, DESIGN.md §4i).
     */
    std::vector<SimNanos> class_quantum;

    /**
     * Deficit accounting mirror of the runtime worker (DESIGN.md §4i):
     * when > 0 (and class_quantum is set, and cores are not FCFS) each
     * core keeps a per-class deficit — granted minus used per slice,
     * clamped to ±deficit_clamp ns — and grants class c an effective
     * budget of max(base/4, base + deficit[c]). In the simulator slices
     * never overrun (there is no probe latency), so the deficit only
     * banks early-completion credit; it still exercises the same
     * clamp/floor arithmetic the runtime uses. 0 (the default) keeps
     * the TQ-TIMING model byte-identical to the historical simulator.
     */
    SimNanos deficit_clamp = 0;

    /**
     * Starvation guard mirror (runtime knob of the same name): after a
     * runnable class has been passed over for this many consecutive
     * grants on a core, its least-attained unit is force-promoted ahead
     * of the normal PS/LAS pick. 0 (default) disables the guard.
     */
    uint64_t starvation_promote_after = 0;

    /**
     * Fractional slowdown of job execution due to probing (TQ-IC
     * variant): a job with demand d occupies the core for d * (1 +
     * probe_overhead_frac).
     */
    double probe_overhead_frac = 0.0;

    /**
     * How often the dispatcher re-reads the workers' counter cache
     * lines (paper section 4: "periodically read by the dispatcher").
     * Between refreshes it sees stale finished/quanta counts, though it
     * always knows its own assignments. 0 = refresh on every decision.
     */
    SimNanos stats_refresh_period = 0;

    /**
     * Arrival process (default Poisson, byte-identical to the
     * historical stream). Value-typed so sweep configs stay copyable
     * across threads; each run builds its own process instance.
     */
    ArrivalSpec arrival;

    /**
     * When non-null, every arrival draw (including the final
     * past-duration overshoot) is appended here — the load generator
     * records the same sequence, and the arrival-parity tests compare
     * the two element for element. Not sweep-safe: points would share
     * the vector, so only set it for single runs.
     */
    std::vector<double> *arrival_trace = nullptr;

    /**
     * Scatter-gather fan-out: each logical request splits into `fanout`
     * shards of demand/fanout, the dispatcher places each shard
     * independently (one dispatch_cost per shard, like the real
     * dispatcher's per-shard pick+push), and the request completes when
     * its last shard finishes. 1 = the classic single-shard path,
     * byte-identical to the historical results.
     */
    int fanout = 1;

    SimNanos duration = ms(200); ///< arrival-generation window
    double warmup = 0.1;         ///< discarded sample prefix
    uint64_t seed = 1;
    size_t max_in_flight = 1u << 20; ///< saturation guard

    /**
     * End the run as soon as saturation is detected (in-flight cap hit,
     * or a diverged backlog at the end of the arrival window) instead of
     * draining the queues. The result's `saturated` flag is unaffected —
     * any run this cuts short would have reported saturated anyway — but
     * its latency percentiles are truncated, so only enable this where
     * saturated results are consumed as a boolean: SLO bisections and
     * capacity tables that print "sat". Keep it off when metrics of
     * overloaded runs matter (e.g. Figure 16's effective quantum).
     */
    bool stop_when_saturated = false;
};

/**
 * Run one simulation.
 * @param dist workload service-time distribution (paper Table 1).
 * @param rate offered load in requests per nanosecond (see tq::mrps()).
 */
SimResult run_two_level(const TwoLevelConfig &cfg, const ServiceDist &dist,
                        double rate);

} // namespace tq::sim

#endif // TQ_SIM_TWO_LEVEL_H
