/**
 * @file
 * Discrete-event model of a Caladan-style runtime (paper section 5.1):
 * FCFS run-to-completion, RSS-hash packet steering to per-core queues,
 * and work stealing from idle cores.
 *
 * Two I/O modes, matching the paper's evaluation:
 *  - IOKernel: a serial core moves every packet (iokernel_cost each).
 *  - Directpath: no serial stage, but each request costs the worker
 *    extra packet-processing time (directpath_cost).
 */
#ifndef TQ_SIM_CALADAN_H
#define TQ_SIM_CALADAN_H

#include "common/arrival.h"
#include "common/dist.h"
#include "sim/metrics.h"
#include "sim/overheads.h"

namespace tq::sim {

/** Configuration of one Caladan-style simulation run. */
struct CaladanConfig
{
    int num_cores = 16;
    bool directpath = false;
    Overheads overheads = Overheads::tq_default();

    /** Number of random victims an idle core probes before parking. */
    int steal_attempts = 2;

    /** Arrival process (default Poisson, byte-identical to the
     *  historical stream) — same contract as TwoLevelConfig::arrival,
     *  so bursty (`--arrival=onoff`) comparisons keep all three systems
     *  on the same arrival sequence. */
    ArrivalSpec arrival;

    SimNanos duration = ms(200);
    double warmup = 0.1;
    uint64_t seed = 1;
    size_t max_in_flight = 1u << 20;

    /** Stop once saturation is detected; see TwoLevelConfig for the
     *  contract (the `saturated` flag is unaffected). */
    bool stop_when_saturated = false;
};

/** Run one Caladan-style simulation. */
SimResult run_caladan(const CaladanConfig &cfg, const ServiceDist &dist,
                      double rate);

} // namespace tq::sim

#endif // TQ_SIM_CALADAN_H
