/**
 * @file
 * Job representation shared by the cluster simulators.
 */
#ifndef TQ_SIM_JOB_H
#define TQ_SIM_JOB_H

#include <cstdint>

#include "common/units.h"

namespace tq::sim {

/** One request flowing through a simulated cluster. */
struct Job
{
    uint64_t id = 0;
    SimNanos arrival = 0;     ///< time the request reached the system
    SimNanos demand = 0;      ///< total service requirement
    SimNanos remaining = 0;   ///< service still owed
    int job_class = 0;        ///< index into the workload's class names
    uint32_t serviced_quanta = 0; ///< completed quanta (for MSQ ties)
};

} // namespace tq::sim

#endif // TQ_SIM_JOB_H
