/**
 * @file
 * Discrete-event simulator of *centralized* preemptive scheduling
 * (paper sections 2, 3.2): one dispatcher owns a global run queue and
 * grants quanta to worker cores.
 *
 * Two uses:
 *  - Overheads::ideal() + a quantum sweep reproduces the motivation
 *    study (Figures 1 and 2) and the CT baseline of Figure 4.
 *  - Overheads::shinjuku_default() models Shinjuku: ~1us interrupt cost
 *    per preemption and a serial dispatcher charged per scheduling
 *    operation, which saturates as quanta shrink (Figure 16, section 5.6).
 *
 * Every slice costs the dispatcher one serial operation (requeue +
 * grant), so dispatcher load grows inversely with the quantum — the
 * scalability wall of centralized scheduling the paper identifies.
 */
#ifndef TQ_SIM_CENTRAL_H
#define TQ_SIM_CENTRAL_H

#include "common/arrival.h"
#include "common/dist.h"
#include "sim/metrics.h"
#include "sim/overheads.h"

namespace tq::sim {

/** Configuration of one centralized-cluster simulation run. */
struct CentralConfig
{
    int num_cores = 16;
    SimNanos quantum = us(5);
    Overheads overheads = Overheads::ideal();

    /**
     * Charge switch_overhead only when a slice is actually preempted
     * (job outlives its quantum). Matches interrupt-driven systems:
     * completions do not need an interrupt.
     */
    bool overhead_on_preemption_only = true;

    /**
     * Arrival process (default Poisson, byte-identical to the
     * historical stream) — same contract as TwoLevelConfig::arrival,
     * so bursty (`--arrival=onoff`) comparisons against the two-level
     * system drive both simulators with the same modulation.
     */
    ArrivalSpec arrival;

    SimNanos duration = ms(200);
    double warmup = 0.1;
    uint64_t seed = 1;
    size_t max_in_flight = 1u << 20;

    /** Stop once saturation is detected; see TwoLevelConfig for the
     *  contract (the `saturated` flag is unaffected). */
    bool stop_when_saturated = false;
};

/** Run one centralized simulation (global PS queue over all cores). */
SimResult run_central(const CentralConfig &cfg, const ServiceDist &dist,
                      double rate);

} // namespace tq::sim

#endif // TQ_SIM_CENTRAL_H
