#include "sim/two_level.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/shard.h"
#include "sim/event_core.h"

namespace tq::sim {

namespace {

constexpr uint32_t kNone = ~0u;

enum EventKind : uint32_t { kArrival, kDispatchDone, kCoreDone, kFrontDone };

/** Per-core scheduler state. */
struct Core
{
    std::deque<uint32_t> runq;   ///< admitted, not currently running
    uint32_t running = kNone;
    SimNanos slice = 0;          ///< service granted to `running`
    uint64_t quanta_sum = 0;     ///< MSQ metric: serviced quanta of
                                 ///< currently admitted jobs
    int jobs = 0;                ///< queue length seen by JSQ
    uint64_t finished = 0;       ///< completions (the shared counter)
    // Figure-16 style effective-quantum accounting.
    double grant_intervals = 0;
    uint64_t grants = 0;
    SimNanos granted = 0;        ///< budget granted to `running` (the
                                 ///< deficit charges granted - used)
    // Per-class scheduler mirror (DESIGN.md §4i), sized only when the
    // deficit/starvation knobs are active — empty otherwise so the
    // default path touches none of it.
    std::vector<SimNanos> deficit;  ///< banked credit, ±deficit_clamp
    std::vector<uint64_t> skipped;  ///< consecutive grants passed over
    std::vector<uint32_t> runnable; ///< admitted units per class
};

struct Dispatcher
{
    std::deque<uint32_t> q;
    bool busy = false;
    uint32_t in_hand = kNone;
};

class TwoLevelSim
{
  public:
    TwoLevelSim(const TwoLevelConfig &cfg, const ServiceDist &dist,
                double rate)
        : cfg_(cfg),
          core_(dist, rate, cfg.seed, cfg.duration, cfg.max_in_flight,
                cfg.stop_when_saturated, cfg.warmup),
          fanout_(static_cast<uint32_t>(cfg.fanout)),
          cores_(static_cast<size_t>(cfg.num_cores)),
          assigned_(static_cast<size_t>(cfg.num_cores), 0),
          snap_finished_(static_cast<size_t>(cfg.num_cores), 0),
          snap_quanta_(static_cast<size_t>(cfg.num_cores), 0)
    {
        TQ_CHECK(cfg.num_cores > 0);
        TQ_CHECK(cfg.num_dispatchers > 0);
        TQ_CHECK(cfg.num_dispatchers <= cfg.num_cores);
        TQ_CHECK(cfg.fanout >= 1);
        core_.set_arrival(cfg.arrival);
        core_.set_arrival_trace(cfg.arrival_trace);
        dispatchers_.resize(static_cast<size_t>(cfg.num_dispatchers));
        front_pending_.resize(static_cast<size_t>(cfg.num_dispatchers));
        front_loads_.resize(static_cast<size_t>(cfg.num_dispatchers), 0);
        for (int d = 0; d < cfg.num_dispatchers; ++d)
            spans_.push_back(
                shard_span(cfg.num_cores, cfg.num_dispatchers, d));
        if (!cfg_.class_quantum.empty())
            TQ_CHECK(cfg_.class_quantum.size() ==
                     dist.class_names().size());
        num_classes_ = dist.class_names().size();
        class_grant_intervals_.resize(num_classes_, 0);
        class_grants_.resize(num_classes_, 0);
        // The deficit/starvation mirror needs a per-class quantum table
        // to mirror, exactly like the runtime (a fixed-quantum worker
        // has no per-class state), and FCFS cores never slice.
        per_class_sched_ = !cfg_.class_quantum.empty() &&
                           cfg_.core_policy != CorePolicy::Fcfs &&
                           (cfg_.deficit_clamp > 0 ||
                            cfg_.starvation_promote_after > 0);
        if (per_class_sched_)
            for (auto &core : cores_) {
                core.deficit.resize(num_classes_, 0);
                core.skipped.resize(num_classes_, 0);
                core.runnable.resize(num_classes_, 0);
            }
    }

    SimResult
    run()
    {
        core_.schedule(core_.next_arrival_after(0), kArrival, -1);
        core_.drive([this](uint32_t kind, int c) {
            switch (kind) {
              case kArrival:
                on_arrival();
                break;
              case kDispatchDone:
                on_dispatch_done(c);
                break;
              case kCoreDone:
                on_core_done(c);
                break;
              case kFrontDone:
                on_front_done(c);
                break;
            }
        });

        SimResult result;
        core_.finalize(result);
        double intervals = 0;
        uint64_t grants = 0;
        for (const auto &core : cores_) {
            intervals += core.grant_intervals;
            grants += core.grants;
        }
        result.avg_effective_quantum =
            grants ? intervals / static_cast<double>(grants) : 0;
        result.class_effective_quantum.resize(num_classes_, 0);
        for (size_t c = 0; c < num_classes_; ++c)
            if (class_grants_[c])
                result.class_effective_quantum[c] =
                    class_grant_intervals_[c] /
                    static_cast<double>(class_grants_[c]);
        result.starvation_promotions = starvation_promotions_;
        return result;
    }

  private:
    Job &job(uint32_t idx) { return core_.job(idx); }

    // --------------------------------------------------------- units --
    // Queues and core slots hold *units*: at fanout 1 a unit IS the
    // arena index (same values, same arithmetic, byte-identical runs);
    // at fanout k unit = idx * k + shard, with per-shard remaining and
    // quanta kept in side arrays and the logical job completing when
    // its last shard drains (scatter-gather, last-response-wins).
    uint32_t
    idx_of(uint32_t unit) const
    {
        return fanout_ == 1 ? unit : unit / fanout_;
    }

    double &
    remaining_of(uint32_t unit)
    {
        return fanout_ == 1 ? job(unit).remaining
                            : shard_remaining_[unit];
    }

    uint64_t
    quanta_of(uint32_t unit)
    {
        return fanout_ == 1 ? job(unit).serviced_quanta
                            : shard_quanta_[unit];
    }

    // ------------------------------------------------------- arrivals --
    void
    on_arrival()
    {
        const uint32_t idx =
            core_.try_admit(1.0 + cfg_.probe_overhead_frac);
        if (idx != EngineCore::kNoJob) {
            if (fanout_ > 1)
                split_into_shards(idx);
            if (cfg_.num_dispatchers == 1) {
                // Single dispatcher: the paper's configuration, and
                // byte-identical to the pre-sharding simulator — no
                // front tier exists, arrivals enqueue directly. A
                // fanned-out request's units all cross the one
                // dispatcher (one serial dispatch_cost each, like the
                // real dispatcher's per-shard pick+push loop).
                for (uint32_t s = 0; s < fanout_; ++s)
                    dispatchers_[0].q.push_back(idx * fanout_ + s);
                maybe_start_dispatch(0);
            } else {
                // Sharded tier (DESIGN.md §4g): the front tier steers
                // the whole request to one shard by rotated JSQ over
                // the shards' load estimates, charging front_tier_cost
                // as pure latency (submitters are parallel, so the
                // steering pick adds delay but no serial bottleneck —
                // each shard's dispatch_cost stays the serial
                // resource). The constant delay preserves FIFO order
                // per shard, so a deque models the in-flight picks.
                const int d = pick_shard();
                for (uint32_t s = 0; s < fanout_; ++s)
                    front_pending_[static_cast<size_t>(d)].push_back(
                        idx * fanout_ + s);
                core_.schedule(core_.now() +
                                   cfg_.overheads.front_tier_cost,
                               kFrontDone, d);
            }
        }
        const SimNanos t = core_.next_arrival_after(core_.now());
        if (t < cfg_.duration)
            core_.schedule(t, kArrival, -1);
    }

    /** Front-tier pick latency elapsed: the request's units land in
     *  shard @p d's dispatch queue. */
    void
    on_front_done(int d)
    {
        auto &pending = front_pending_[static_cast<size_t>(d)];
        for (uint32_t s = 0; s < fanout_; ++s) {
            TQ_DCHECK(!pending.empty());
            dispatchers_[static_cast<size_t>(d)].q.push_back(
                pending.front());
            pending.pop_front();
        }
        maybe_start_dispatch(d);
    }

    /**
     * Front-tier JSQ (common/shard.h): steer to the shard with the
     * smallest aggregate load — dispatch backlog (queued + in hand +
     * still crossing the front latency) plus the owned cores'
     * viewed queue lengths, read from the same periodically refreshed
     * stats snapshot the dispatchers use, mirroring the staleness of
     * the runtime's advertised load lines. Rotation by arrival count
     * spreads tied picks like the runtime's submitter-local counter.
     */
    int
    pick_shard()
    {
        refresh_stats_if_due();
        const int n = cfg_.num_dispatchers;
        for (int d = 0; d < n; ++d) {
            const Dispatcher &disp = dispatchers_[static_cast<size_t>(d)];
            uint64_t load =
                disp.q.size() + (disp.busy ? 1 : 0) +
                front_pending_[static_cast<size_t>(d)].size();
            const ShardSpan span = spans_[static_cast<size_t>(d)];
            for (int w = span.first; w < span.first + span.count; ++w) {
                const long len = viewed_len(w);
                load += len > 0 ? static_cast<uint64_t>(len) : 0;
            }
            front_loads_[static_cast<size_t>(d)] =
                load > UINT32_MAX ? UINT32_MAX
                                  : static_cast<uint32_t>(load);
        }
        return pick_min_rotated(front_loads_.data(),
                                static_cast<size_t>(n), core_.arrivals());
    }

    void
    split_into_shards(uint32_t idx)
    {
        const size_t need = static_cast<size_t>(idx + 1) * fanout_;
        if (shard_remaining_.size() < need) {
            shard_remaining_.resize(need, 0);
            shard_quanta_.resize(need, 0);
        }
        if (shards_live_.size() <= idx)
            shards_live_.resize(static_cast<size_t>(idx) + 1, 0);
        shards_live_[idx] = fanout_;
        const double per_shard = job(idx).remaining / fanout_;
        for (uint32_t s = 0; s < fanout_; ++s) {
            shard_remaining_[idx * fanout_ + s] = per_shard;
            shard_quanta_[idx * fanout_ + s] = 0;
        }
    }

    void
    maybe_start_dispatch(int d)
    {
        Dispatcher &disp = dispatchers_[static_cast<size_t>(d)];
        if (disp.busy || disp.q.empty())
            return;
        disp.busy = true;
        disp.in_hand = disp.q.front();
        disp.q.pop_front();
        core_.schedule(core_.now() + cfg_.overheads.dispatch_cost,
                       kDispatchDone, d);
    }

    void
    on_dispatch_done(int d)
    {
        Dispatcher &disp = dispatchers_[static_cast<size_t>(d)];
        const uint32_t unit = disp.in_hand;
        disp.in_hand = kNone;
        disp.busy = false;

        const int target = pick_core(d);
        Core &core = cores_[static_cast<size_t>(target)];
        core.runq.push_back(unit);
        ++core.jobs;
        ++assigned_[static_cast<size_t>(target)];
        core.quanta_sum += quanta_of(unit); // 0 for fresh units
        if (per_class_sched_)
            ++core.runnable[class_of(unit)];
        if (core.running == kNone)
            start_slice(target);

        maybe_start_dispatch(d);
    }

    // -------------------------------------------------- load balancing --
    /**
     * Dispatcher's view of worker w's queue length and quanta: its own
     * assignment count minus the worker's finished counter as of the
     * last refresh of the shared cache lines (paper section 4).
     */
    void
    refresh_stats_if_due()
    {
        if (cfg_.stats_refresh_period > 0 &&
            core_.now() - last_refresh_ < cfg_.stats_refresh_period)
            return;
        last_refresh_ = core_.now();
        for (int w = 0; w < cfg_.num_cores; ++w) {
            snap_finished_[static_cast<size_t>(w)] =
                cores_[static_cast<size_t>(w)].finished;
            snap_quanta_[static_cast<size_t>(w)] =
                cores_[static_cast<size_t>(w)].quanta_sum;
        }
    }

    long
    viewed_len(int w) const
    {
        return static_cast<long>(assigned_[static_cast<size_t>(w)]) -
               static_cast<long>(snap_finished_[static_cast<size_t>(w)]);
    }

    int
    pick_core(int d)
    {
        // The pick ranges over dispatcher @p d's owned span only: with
        // one dispatcher that is every core (the historical behaviour,
        // RNG stream included); a sharded tier keeps worker ownership
        // disjoint, exactly like the runtime's per-shard DispatchView.
        refresh_stats_if_due();
        Rng &rng = core_.rng();
        const ShardSpan span = spans_[static_cast<size_t>(d)];
        const int first = span.first;
        const int n = span.count;
        switch (cfg_.lb) {
          case LbPolicy::Random:
            return first +
                   static_cast<int>(rng.below(static_cast<uint64_t>(n)));
          case LbPolicy::PowerOfTwo: {
            if (n == 1)
                return first; // no second core to sample
            const int a =
                static_cast<int>(rng.below(static_cast<uint64_t>(n)));
            int b = static_cast<int>(
                rng.below(static_cast<uint64_t>(n - 1)));
            if (b >= a)
                ++b;
            const long qa = viewed_len(first + a);
            const long qb = viewed_len(first + b);
            if (qa != qb)
                return first + (qa < qb ? a : b);
            return first + (rng.bernoulli(0.5) ? a : b);
          }
          case LbPolicy::JsqRandom:
          case LbPolicy::JsqMsq: {
            long best_len = viewed_len(first);
            for (int c = first + 1; c < first + n; ++c)
                best_len = std::min(best_len, viewed_len(c));
            // Collect ties (global core ids).
            ties_.clear();
            for (int c = first; c < first + n; ++c)
                if (viewed_len(c) == best_len)
                    ties_.push_back(c);
            if (ties_.size() == 1)
                return ties_[0];
            if (cfg_.lb == LbPolicy::JsqRandom)
                return ties_[rng.below(ties_.size())];
            // MSQ: the core whose current jobs have received the most
            // quanta is expected to finish them soonest (section 3.2).
            int best = ties_[0];
            uint64_t best_quanta = snap_quanta_[static_cast<size_t>(best)];
            for (size_t i = 1; i < ties_.size(); ++i) {
                const int c = ties_[i];
                const uint64_t q = snap_quanta_[static_cast<size_t>(c)];
                if (q > best_quanta) {
                    best = c;
                    best_quanta = q;
                }
            }
            return best;
          }
        }
        TQ_CHECK(false);
        return 0;
    }

    // ------------------------------------------------------- workers --
    /** Service received so far (LAS priority key), per unit. */
    double
    attained(uint32_t unit)
    {
        if (fanout_ == 1) {
            const Job &j = job(unit);
            return j.demand * (1.0 + cfg_.probe_overhead_frac) -
                   j.remaining;
        }
        const Job &j = job(idx_of(unit));
        return j.demand * (1.0 + cfg_.probe_overhead_frac) / fanout_ -
               shard_remaining_[unit];
    }

    SimNanos
    quantum_for(const Job &j) const
    {
        if (!cfg_.class_quantum.empty())
            return cfg_.class_quantum[static_cast<size_t>(j.job_class)];
        return cfg_.quantum;
    }

    size_t
    class_of(uint32_t unit)
    {
        return static_cast<size_t>(job(idx_of(unit)).job_class);
    }

    /**
     * Starvation guard (mirror of Worker::select_task): pick the most-
     * starved runnable class at or past the promotion threshold and
     * extract its least-attained unit (PS: first of class, matching the
     * runtime's front-of-deque scan). Returns false when no class
     * qualifies and the normal PS/LAS pick should run.
     */
    bool
    promote_starved(Core &core)
    {
        if (cfg_.starvation_promote_after == 0)
            return false;
        size_t cls = num_classes_;
        uint64_t worst = cfg_.starvation_promote_after - 1;
        for (size_t k = 0; k < num_classes_; ++k)
            if (core.runnable[k] != 0 && core.skipped[k] > worst) {
                worst = core.skipped[k];
                cls = k;
            }
        if (cls == num_classes_)
            return false;
        size_t best = core.runq.size();
        double best_attained = 0;
        for (size_t i = 0; i < core.runq.size(); ++i) {
            if (class_of(core.runq[i]) != cls)
                continue;
            if (cfg_.core_policy != CorePolicy::Las) {
                best = i; // PS: first admitted unit of the class
                break;
            }
            const double a = attained(core.runq[i]);
            if (best == core.runq.size() || a < best_attained) {
                best_attained = a;
                best = i;
            }
        }
        TQ_CHECK(best < core.runq.size()); // runnable[cls] != 0
        core.running = core.runq[best];
        core.runq.erase(core.runq.begin() + static_cast<ptrdiff_t>(best));
        ++starvation_promotions_;
        return true;
    }

    void
    start_slice(int c)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        TQ_CHECK(core.running == kNone);
        if (core.runq.empty())
            return;
        if (per_class_sched_ && promote_starved(core)) {
            // fall through to the budget computation with `running` set
        } else if (cfg_.core_policy == CorePolicy::Las) {
            // Least-attained-service first: serve the job that has
            // received the least service so far (FIFO among equals).
            size_t best = 0;
            double best_attained = attained(core.runq[0]);
            for (size_t i = 1; i < core.runq.size(); ++i) {
                const double a = attained(core.runq[i]);
                if (a < best_attained) {
                    best_attained = a;
                    best = i;
                }
            }
            core.running = core.runq[best];
            core.runq.erase(core.runq.begin() +
                            static_cast<ptrdiff_t>(best));
        } else {
            core.running = core.runq.front();
            core.runq.pop_front();
        }
        const Job &j = job(idx_of(core.running));
        const SimNanos remaining = remaining_of(core.running);
        SimNanos budget = quantum_for(j);
        if (per_class_sched_ && cfg_.deficit_clamp > 0) {
            // Effective budget = base + banked deficit, floored at a
            // quarter-quantum so a deeply indebted class still makes
            // progress (Worker::effective_budget).
            const size_t cls = class_of(core.running);
            budget = std::max(budget / 4, budget + core.deficit[cls]);
        }
        const SimNanos slice = cfg_.core_policy == CorePolicy::Fcfs
                                   ? remaining
                                   : std::min(budget, remaining);
        TQ_DCHECK(slice > 0);
        core.slice = slice;
        core.granted = budget;
        const SimNanos busy = slice + cfg_.overheads.switch_overhead;
        // Effective-quantum metric (Figure 16): spacing between grants
        // net of the constant per-slice mechanism overhead.
        core.grant_intervals += slice;
        ++core.grants;
        if (num_classes_ != 0) {
            const size_t cls = class_of(core.running);
            class_grant_intervals_[cls] += slice;
            ++class_grants_[cls];
        }
        if (per_class_sched_) {
            // One grant elapsed: the granted class's starvation clock
            // resets, every other runnable class ages one step.
            const size_t cls = class_of(core.running);
            for (size_t k = 0; k < num_classes_; ++k) {
                if (k == cls)
                    core.skipped[k] = 0;
                else if (core.runnable[k] != 0)
                    ++core.skipped[k];
            }
        }
        core_.schedule(core_.now() + busy, kCoreDone, c);
    }

    void
    on_core_done(int c)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        const uint32_t unit = core.running;
        core.running = kNone;
        double &remaining = remaining_of(unit);
        remaining -= core.slice;

        if (per_class_sched_ && cfg_.deficit_clamp > 0) {
            // Granted minus used, clamped: early completers bank credit
            // toward their class's next grant (Worker::run_one_slice).
            const size_t cls = class_of(unit);
            core.deficit[cls] = std::clamp(
                core.deficit[cls] + core.granted - core.slice,
                -cfg_.deficit_clamp, cfg_.deficit_clamp);
        }

        if (remaining <= 1e-9) {
            // Unit done: at fanout 1 the response leaves directly from
            // the worker; a fanned-out request completes only when its
            // LAST shard drains (scatter-gather gathers at the client).
            --core.jobs;
            ++core.finished;
            core.quanta_sum -= quanta_of(unit);
            if (per_class_sched_)
                --core.runnable[class_of(unit)];
            if (fanout_ == 1) {
                core_.complete(unit, core_.now() +
                                         cfg_.overheads.response_cost);
            } else {
                const uint32_t idx = idx_of(unit);
                if (--shards_live_[idx] == 0)
                    core_.complete(
                        idx, core_.now() + cfg_.overheads.response_cost);
            }
        } else {
            if (fanout_ == 1)
                ++job(unit).serviced_quanta;
            else
                ++shard_quanta_[unit];
            ++core.quanta_sum;
            core.runq.push_back(unit); // PS: back of the round-robin queue
        }
        start_slice(c);
    }

    const TwoLevelConfig &cfg_;
    EngineCore core_;
    uint32_t fanout_;

    /** Per-unit shard state, only populated at fanout > 1. */
    std::vector<double> shard_remaining_;
    std::vector<uint64_t> shard_quanta_;
    std::vector<uint32_t> shards_live_; ///< per job index

    std::vector<Dispatcher> dispatchers_;
    /** Shard d's owned core span; one all-cores span when unsharded. */
    std::vector<ShardSpan> spans_;
    /** Units steered to shard d, still crossing the front-tier pick
     *  latency (constant delay => FIFO per shard). */
    std::vector<std::deque<uint32_t>> front_pending_;
    /** Scratch for the front tier's per-shard load estimates. */
    std::vector<uint32_t> front_loads_;
    std::vector<Core> cores_;
    std::vector<uint64_t> assigned_;
    std::vector<uint64_t> snap_finished_;
    std::vector<uint64_t> snap_quanta_;
    SimNanos last_refresh_ = -1;
    std::vector<int> ties_;

    // Per-class scheduler mirror (DESIGN.md §4i).
    size_t num_classes_ = 0;
    bool per_class_sched_ = false;
    std::vector<double> class_grant_intervals_;
    std::vector<uint64_t> class_grants_;
    uint64_t starvation_promotions_ = 0;
};

} // namespace

SimResult
run_two_level(const TwoLevelConfig &cfg, const ServiceDist &dist, double rate)
{
    TwoLevelSim sim(cfg, dist, rate);
    return sim.run();
}

} // namespace tq::sim
