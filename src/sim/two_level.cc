#include "sim/two_level.h"

#include <deque>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tq::sim {

namespace {

constexpr uint32_t kNone = ~0u;

/** Heap event. Smaller time first; seq breaks ties deterministically. */
struct Event
{
    SimNanos time;
    enum Kind : uint8_t { kArrival, kDispatchDone, kCoreDone } kind;
    int core;
    uint64_t seq;

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

/** Per-core scheduler state. */
struct Core
{
    std::deque<uint32_t> runq;   ///< admitted, not currently running
    uint32_t running = kNone;
    SimNanos slice = 0;          ///< service granted to `running`
    uint64_t quanta_sum = 0;     ///< MSQ metric: serviced quanta of
                                 ///< currently admitted jobs
    int jobs = 0;                ///< queue length seen by JSQ
    uint64_t finished = 0;       ///< completions (the shared counter)
    // Figure-16 style effective-quantum accounting.
    double grant_intervals = 0;
    uint64_t grants = 0;
};

struct Dispatcher
{
    std::deque<uint32_t> q;
    bool busy = false;
    uint32_t in_hand = kNone;
};

class TwoLevelSim
{
  public:
    TwoLevelSim(const TwoLevelConfig &cfg, const ServiceDist &dist,
                double rate)
        : cfg_(cfg),
          dist_(dist),
          rate_(rate),
          rng_(cfg.seed),
          cores_(static_cast<size_t>(cfg.num_cores)),
          assigned_(static_cast<size_t>(cfg.num_cores), 0),
          snap_finished_(static_cast<size_t>(cfg.num_cores), 0),
          snap_quanta_(static_cast<size_t>(cfg.num_cores), 0),
          metrics_(dist.class_names(), cfg.warmup)
    {
        TQ_CHECK(cfg.num_cores > 0);
        TQ_CHECK(cfg.num_dispatchers > 0);
        TQ_CHECK(rate > 0);
        dispatchers_.resize(static_cast<size_t>(cfg.num_dispatchers));
        if (!cfg_.class_quantum.empty())
            TQ_CHECK(cfg_.class_quantum.size() ==
                     dist.class_names().size());
    }

    SimResult
    run()
    {
        schedule(next_arrival_time(0), Event::kArrival, -1);
        const SimNanos hard_stop = cfg_.duration * 3;

        while (!heap_.empty()) {
            const Event ev = heap_.top();
            heap_.pop();
            now_ = ev.time;
            if (now_ > hard_stop) {
                saturated_ = true;
                break;
            }
            if (!backlog_checked_ && now_ >= cfg_.duration)
                check_backlog();
            switch (ev.kind) {
              case Event::kArrival:
                on_arrival();
                break;
              case Event::kDispatchDone:
                on_dispatch_done(ev.core);
                break;
              case Event::kCoreDone:
                on_core_done(ev.core);
                break;
            }
        }

        SimResult result;
        result.offered_rate = rate_;
        result.duration = cfg_.duration;
        if (!backlog_checked_)
            check_backlog();
        result.saturated = saturated_ || in_flight_ > 0;
        result.dropped = dropped_;
        metrics_.finalize(result);
        result.throughput =
            static_cast<double>(result.completed) / cfg_.duration;
        double intervals = 0;
        uint64_t grants = 0;
        for (const auto &core : cores_) {
            intervals += core.grant_intervals;
            grants += core.grants;
        }
        result.avg_effective_quantum =
            grants ? intervals / static_cast<double>(grants) : 0;
        return result;
    }

  private:
    /**
     * Stability check at the end of the arrival window: a backlog much
     * larger than any stable queueing state means the offered load
     * exceeded capacity, even if the queue drains during the grace
     * period afterwards.
     */
    void
    check_backlog()
    {
        backlog_checked_ = true;
        const size_t limit =
            std::max<size_t>(1000, static_cast<size_t>(arrivals_ / 20));
        if (in_flight_ > limit)
            saturated_ = true;
    }

    // ------------------------------------------------------ job slab --
    uint32_t
    alloc_job()
    {
        if (!free_.empty()) {
            const uint32_t idx = free_.back();
            free_.pop_back();
            return idx;
        }
        jobs_.emplace_back();
        return static_cast<uint32_t>(jobs_.size() - 1);
    }

    void
    free_job(uint32_t idx)
    {
        free_.push_back(idx);
    }

    Job &job(uint32_t idx) { return jobs_[idx]; }

    // ------------------------------------------------------ schedule --
    void
    schedule(SimNanos t, Event::Kind kind, int core)
    {
        heap_.push(Event{t, kind, core, seq_++});
    }

    SimNanos
    next_arrival_time(SimNanos from)
    {
        return from + rng_.exponential(1.0 / rate_);
    }

    // ------------------------------------------------------- arrivals --
    void
    on_arrival()
    {
        if (in_flight_ >= cfg_.max_in_flight) {
            // Saturation guard: count the drop, stop admitting.
            ++dropped_;
            saturated_ = true;
        } else {
            const uint32_t idx = alloc_job();
            Job &j = job(idx);
            const ServiceSample s = dist_.sample(rng_);
            j.id = next_id_++;
            j.arrival = now_;
            j.demand = s.demand;
            j.remaining = s.demand * (1.0 + cfg_.probe_overhead_frac);
            j.job_class = s.job_class;
            j.serviced_quanta = 0;
            ++in_flight_;
            ++arrivals_;
            // Spray arrivals round-robin over the dispatcher cores.
            const int d = static_cast<int>(
                arrivals_ % static_cast<uint64_t>(cfg_.num_dispatchers));
            dispatchers_[static_cast<size_t>(d)].q.push_back(idx);
            maybe_start_dispatch(d);
        }
        const SimNanos t = next_arrival_time(now_);
        if (t < cfg_.duration)
            schedule(t, Event::kArrival, -1);
    }

    void
    maybe_start_dispatch(int d)
    {
        Dispatcher &disp = dispatchers_[static_cast<size_t>(d)];
        if (disp.busy || disp.q.empty())
            return;
        disp.busy = true;
        disp.in_hand = disp.q.front();
        disp.q.pop_front();
        schedule(now_ + cfg_.overheads.dispatch_cost, Event::kDispatchDone,
                 d);
    }

    void
    on_dispatch_done(int d)
    {
        Dispatcher &disp = dispatchers_[static_cast<size_t>(d)];
        const uint32_t idx = disp.in_hand;
        disp.in_hand = kNone;
        disp.busy = false;

        const int target = pick_core();
        Core &core = cores_[static_cast<size_t>(target)];
        core.runq.push_back(idx);
        ++core.jobs;
        ++assigned_[static_cast<size_t>(target)];
        core.quanta_sum += job(idx).serviced_quanta; // 0 for fresh jobs
        if (core.running == kNone)
            start_slice(target);

        maybe_start_dispatch(d);
    }

    // -------------------------------------------------- load balancing --
    /**
     * Dispatcher's view of worker w's queue length and quanta: its own
     * assignment count minus the worker's finished counter as of the
     * last refresh of the shared cache lines (paper section 4).
     */
    void
    refresh_stats_if_due()
    {
        if (cfg_.stats_refresh_period > 0 &&
            now_ - last_refresh_ < cfg_.stats_refresh_period)
            return;
        last_refresh_ = now_;
        for (int w = 0; w < cfg_.num_cores; ++w) {
            snap_finished_[static_cast<size_t>(w)] =
                cores_[static_cast<size_t>(w)].finished;
            snap_quanta_[static_cast<size_t>(w)] =
                cores_[static_cast<size_t>(w)].quanta_sum;
        }
    }

    long
    viewed_len(int w) const
    {
        return static_cast<long>(assigned_[static_cast<size_t>(w)]) -
               static_cast<long>(snap_finished_[static_cast<size_t>(w)]);
    }

    int
    pick_core()
    {
        refresh_stats_if_due();
        const int n = cfg_.num_cores;
        switch (cfg_.lb) {
          case LbPolicy::Random:
            return static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
          case LbPolicy::PowerOfTwo: {
            const int a =
                static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
            int b = static_cast<int>(
                rng_.below(static_cast<uint64_t>(n - 1)));
            if (b >= a)
                ++b;
            const long qa = viewed_len(a);
            const long qb = viewed_len(b);
            if (qa != qb)
                return qa < qb ? a : b;
            return rng_.bernoulli(0.5) ? a : b;
          }
          case LbPolicy::JsqRandom:
          case LbPolicy::JsqMsq: {
            long best_len = viewed_len(0);
            for (int c = 1; c < n; ++c)
                best_len = std::min(best_len, viewed_len(c));
            // Collect ties.
            ties_.clear();
            for (int c = 0; c < n; ++c)
                if (viewed_len(c) == best_len)
                    ties_.push_back(c);
            if (ties_.size() == 1)
                return ties_[0];
            if (cfg_.lb == LbPolicy::JsqRandom)
                return ties_[rng_.below(ties_.size())];
            // MSQ: the core whose current jobs have received the most
            // quanta is expected to finish them soonest (section 3.2).
            int best = ties_[0];
            uint64_t best_quanta = snap_quanta_[static_cast<size_t>(best)];
            for (size_t i = 1; i < ties_.size(); ++i) {
                const int c = ties_[i];
                const uint64_t q = snap_quanta_[static_cast<size_t>(c)];
                if (q > best_quanta) {
                    best = c;
                    best_quanta = q;
                }
            }
            return best;
          }
        }
        TQ_CHECK(false);
        return 0;
    }

    // ------------------------------------------------------- workers --
    /** Service received so far (LAS priority key). */
    double
    attained(uint32_t idx)
    {
        const Job &j = job(idx);
        return j.demand * (1.0 + cfg_.probe_overhead_frac) - j.remaining;
    }

    SimNanos
    quantum_for(const Job &j) const
    {
        if (!cfg_.class_quantum.empty())
            return cfg_.class_quantum[static_cast<size_t>(j.job_class)];
        return cfg_.quantum;
    }

    void
    start_slice(int c)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        TQ_CHECK(core.running == kNone);
        if (core.runq.empty())
            return;
        if (cfg_.core_policy == CorePolicy::Las) {
            // Least-attained-service first: serve the job that has
            // received the least service so far (FIFO among equals).
            size_t best = 0;
            double best_attained = attained(core.runq[0]);
            for (size_t i = 1; i < core.runq.size(); ++i) {
                const double a = attained(core.runq[i]);
                if (a < best_attained) {
                    best_attained = a;
                    best = i;
                }
            }
            core.running = core.runq[best];
            core.runq.erase(core.runq.begin() +
                            static_cast<ptrdiff_t>(best));
        } else {
            core.running = core.runq.front();
            core.runq.pop_front();
        }
        Job &j = job(core.running);
        const SimNanos slice =
            cfg_.core_policy == CorePolicy::Fcfs
                ? j.remaining
                : std::min(quantum_for(j), j.remaining);
        TQ_DCHECK(slice > 0);
        core.slice = slice;
        const SimNanos busy = slice + cfg_.overheads.switch_overhead;
        // Effective-quantum metric (Figure 16): spacing between grants
        // net of the constant per-slice mechanism overhead.
        core.grant_intervals += slice;
        ++core.grants;
        schedule(now_ + busy, Event::kCoreDone, c);
    }

    void
    on_core_done(int c)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        const uint32_t idx = core.running;
        core.running = kNone;
        Job &j = job(idx);
        j.remaining -= core.slice;

        if (j.remaining <= 1e-9) {
            // Done: response leaves directly from the worker.
            --core.jobs;
            ++core.finished;
            core.quanta_sum -= j.serviced_quanta;
            metrics_.record(j, now_ + cfg_.overheads.response_cost);
            --in_flight_;
            free_job(idx);
        } else {
            ++j.serviced_quanta;
            ++core.quanta_sum;
            core.runq.push_back(idx); // PS: back of the round-robin queue
        }
        start_slice(c);
    }

    const TwoLevelConfig &cfg_;
    const ServiceDist &dist_;
    double rate_;
    Rng rng_;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        heap_;
    uint64_t seq_ = 0;
    SimNanos now_ = 0;

    std::vector<Job> jobs_;
    std::vector<uint32_t> free_;
    uint64_t next_id_ = 0;
    size_t in_flight_ = 0;
    uint64_t arrivals_ = 0;
    uint64_t dropped_ = 0;
    bool saturated_ = false;
    bool backlog_checked_ = false;

    std::vector<Dispatcher> dispatchers_;
    std::vector<Core> cores_;
    std::vector<uint64_t> assigned_;
    std::vector<uint64_t> snap_finished_;
    std::vector<uint64_t> snap_quanta_;
    SimNanos last_refresh_ = -1;
    std::vector<int> ties_;
    MetricsCollector metrics_;
};

} // namespace

SimResult
run_two_level(const TwoLevelConfig &cfg, const ServiceDist &dist, double rate)
{
    TwoLevelSim sim(cfg, dist, rate);
    return sim.run();
}

} // namespace tq::sim
