#include "sim/sweep.h"

#include "common/check.h"

namespace tq::sim {

std::vector<SweepPoint>
sweep(const RunFn &fn, const std::vector<double> &rates)
{
    std::vector<SweepPoint> points;
    points.reserve(rates.size());
    for (double r : rates) {
        SweepPoint p;
        p.rate = r;
        p.result = fn(r);
        points.push_back(std::move(p));
    }
    return points;
}

std::vector<double>
rate_grid(double lo, double hi, int points)
{
    TQ_CHECK(points >= 2);
    TQ_CHECK(lo > 0 && hi > lo);
    std::vector<double> rates;
    rates.reserve(static_cast<size_t>(points));
    for (int i = 0; i < points; ++i)
        rates.push_back(lo + (hi - lo) * i / (points - 1));
    return rates;
}

double
max_rate_under_slo(const RunFn &fn, const SloFn &slo, double lo, double hi,
                   int iters)
{
    TQ_CHECK(lo > 0 && hi > lo);
    if (!slo(fn(lo)))
        return 0;
    if (slo(fn(hi)))
        return hi;
    double good = lo, bad = hi;
    for (int i = 0; i < iters; ++i) {
        const double mid = 0.5 * (good + bad);
        if (slo(fn(mid)))
            good = mid;
        else
            bad = mid;
    }
    return good;
}

SloFn
slowdown_slo(double limit)
{
    return [limit](const SimResult &r) {
        return !r.saturated && r.completed > 0 &&
               r.overall_p999_slowdown <= limit;
    };
}

SloFn
class_sojourn_slo(std::string name, SimNanos limit_ns)
{
    return [name = std::move(name), limit_ns](const SimResult &r) {
        if (r.saturated || r.completed == 0)
            return false;
        const ClassStats &c = r.by_class(name);
        return c.completed > 0 && c.p999_sojourn <= limit_ns;
    };
}

} // namespace tq::sim
