#include "sim/sweep.h"

#include <atomic>
#include <map>
#include <thread>

#include "common/check.h"

namespace tq::sim {

void
parallel_run(size_t n, int threads, const std::function<void(size_t)> &job)
{
    if (threads > static_cast<int>(n))
        threads = static_cast<int>(n);
    if (threads <= 1) {
        for (size_t i = 0; i < n; ++i)
            job(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&next, n, &job] {
            for (;;) {
                const size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                job(i);
            }
        });
    }
    for (auto &th : pool)
        th.join();
}

std::vector<SweepPoint>
sweep(const RunFn &fn, const std::vector<double> &rates,
      const SweepOptions &opts)
{
    std::vector<SweepPoint> points(rates.size());
    parallel_run(rates.size(), opts.threads, [&](size_t i) {
        points[i].rate = rates[i];
        points[i].result = fn(rates[i]);
    });
    return points;
}

std::vector<SweepPoint>
sweep_seeded(const SeededRunFn &fn, const std::vector<double> &rates,
             uint64_t base_seed, const SweepOptions &opts)
{
    std::vector<SweepPoint> points(rates.size());
#ifndef NDEBUG
    // The practical "streams do not overlap" check: every point must get
    // its own seed (splitmix64 is bijective, so this cannot fire unless
    // derive_seed regresses).
    for (size_t i = 0; i < rates.size(); ++i)
        for (size_t j = i + 1; j < rates.size(); ++j)
            TQ_DCHECK(derive_seed(base_seed, i) !=
                      derive_seed(base_seed, j));
#endif
    parallel_run(rates.size(), opts.threads, [&](size_t i) {
        points[i].rate = rates[i];
        points[i].seed = derive_seed(base_seed, i);
        points[i].result = fn(rates[i], points[i].seed);
    });
    return points;
}

uint64_t
derive_seed(uint64_t base, uint64_t index)
{
    // splitmix64: the index-th output of the stream whose state is
    // `base`. One mix per derivation (no O(index) walk).
    uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<double>
rate_grid(double lo, double hi, int points)
{
    TQ_CHECK(points >= 2);
    TQ_CHECK(lo > 0 && hi > lo);
    std::vector<double> rates;
    rates.reserve(static_cast<size_t>(points));
    for (int i = 0; i < points; ++i)
        rates.push_back(lo + (hi - lo) * i / (points - 1));
    return rates;
}

double
max_rate_under_slo(const RunFn &fn, const SloFn &slo, double lo, double hi,
                   int iters, const std::vector<SweepPoint> *known)
{
    TQ_CHECK(lo > 0 && hi > lo);
    // Memo of every rate evaluated during this search, warm-started from
    // the caller's sweep points: the bench pattern "sweep a grid, then
    // bisect the same configuration" re-evaluates the endpoints for
    // free, so the bisection costs exactly `iters` simulations.
    std::map<double, bool> memo;
    if (known)
        for (const SweepPoint &p : *known)
            memo.emplace(p.rate, slo(p.result));
    const auto eval = [&](double r) {
        const auto it = memo.find(r);
        if (it != memo.end())
            return it->second;
        return memo.emplace(r, slo(fn(r))).first->second;
    };
    if (!eval(lo))
        return 0;
    if (eval(hi))
        return hi;
    double good = lo, bad = hi;
    for (int i = 0; i < iters; ++i) {
        const double mid = 0.5 * (good + bad);
        if (eval(mid))
            good = mid;
        else
            bad = mid;
    }
    return good;
}

SloFn
slowdown_slo(double limit)
{
    return [limit](const SimResult &r) {
        return !r.saturated && r.completed > 0 &&
               r.overall_p999_slowdown <= limit;
    };
}

SloFn
class_sojourn_slo(std::string name, SimNanos limit_ns)
{
    return [name = std::move(name), limit_ns](const SimResult &r) {
        if (r.saturated || r.completed == 0)
            return false;
        const ClassStats &c = r.by_class(name);
        return c.completed > 0 && c.p999_sojourn <= limit_ns;
    };
}

} // namespace tq::sim
