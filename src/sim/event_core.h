/**
 * @file
 * Shared high-performance event core for the cluster simulators.
 *
 * The three discrete-event engines (two_level, central, caladan) used to
 * own private copies of the same machinery: a `std::priority_queue` of
 * 24-byte events, a lazily grown job slab with a free list, and the same
 * run loop (hard stop, backlog check, finalize). This header extracts
 * that machinery once, tuned for the engines' near-FIFO event pattern:
 *
 *  - EventQueue: an implicit 4-ary min-heap over 16-byte packed events
 *    (time + a single word carrying seq/core/kind). Half the levels of a
 *    binary heap and four children per cache line make it ~2-4x faster
 *    than `std::priority_queue<Event>` once the queue is large (see
 *    bench/micro_sim_core), while popping in exactly the same
 *    (time, seq) order, so refactored engines replay event-for-event.
 *  - JobArena: index-addressed job slab with a free list. Jobs are drawn
 *    lazily as arrivals stream out of the RNG; the slab's high-water
 *    mark is the peak concurrency, not the total arrival count, and it
 *    is reused across quanta within a run.
 *  - EngineCore: the common driver — streaming Poisson arrivals,
 *    admission with the in-flight saturation guard, the event loop with
 *    hard-stop/backlog checks, metrics collection, and SimResult
 *    finalization. Engines keep only their scheduling logic.
 */
#ifndef TQ_SIM_EVENT_CORE_H
#define TQ_SIM_EVENT_CORE_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/arrival.h"
#include "common/check.h"
#include "common/dist.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/job.h"
#include "sim/metrics.h"

namespace tq::sim {

/**
 * Indexed 4-ary min-heap of simulation events, ordered by (time, seq).
 *
 * Events are packed to 16 bytes: the timestamp plus one word holding the
 * insertion sequence number in the high bits (the FIFO tie-breaker) and
 * the payload (core index, event kind) in the low bits. Comparing the
 * packed word compares seq, so ordering is identical to the engines'
 * old `(time, seq)` comparator, event for event.
 *
 * The backing store is 64-byte aligned with the root offset so that
 * every sibling group {4i+1..4i+4} occupies exactly one cache line
 * (group byte offset 64(i+1)): a sift-down touches one line per level
 * over half the levels of a binary heap, which is where the speedup
 * over `std::priority_queue` at large queue sizes comes from (see
 * bench/micro_sim_core).
 */
class EventQueue
{
  public:
    /** Decoded head-of-queue event. */
    struct Popped
    {
        SimNanos time;
        uint32_t kind;
        int core;
    };

    static constexpr int kKindBits = 4;
    static constexpr int kCoreBits = 24;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue() { free_store(); }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    /** Pre-size the backing store (events, not bytes). */
    void
    reserve(size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    /** Drop all pending events and reset the tie-break sequence. */
    void
    clear()
    {
        size_ = 0;
        seq_ = 0;
    }

    /**
     * Schedule an event. @p kind must fit kKindBits; @p core must be in
     * [-1, 2^kCoreBits - 2]. Ties at equal @p time pop in push order.
     */
    void
    push(SimNanos time, uint32_t kind, int core)
    {
        TQ_DCHECK(time >= 0); // keeps the bit-pattern key order-preserving
        TQ_DCHECK(kind < (1u << kKindBits));
        TQ_DCHECK(core >= -1 &&
                  core < static_cast<int>(1u << kCoreBits) - 1);
        TQ_DCHECK(seq_ < (1ULL << (64 - kKindBits - kCoreBits)));
        const Item item{time,
                        (seq_++ << (kKindBits + kCoreBits)) |
                            (static_cast<uint64_t>(core + 1) << kKindBits) |
                            kind};
        if (size_ == cap_)
            grow(cap_ ? cap_ * 2 : 1024);
        // Sift the hole up: move parents down until `item` fits.
        size_t i = size_++;
        while (i > 0) {
            const size_t parent = (i - 1) / kArity;
            if (!less(item, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = item;
    }

    /** Remove and return the earliest event (fatal when empty in debug). */
    Popped
    pop()
    {
        TQ_DCHECK(size_ > 0);
        const Item top = heap_[0];
        const Item last = heap_[--size_];
        const size_t n = size_;
        if (n > 0) {
            // Sift the root hole down along min-children, then drop
            // `last` into place. Full sibling groups (the common case)
            // use a branchless pairwise tournament on the 128-bit keys
            // so the min-of-4 is two independent compares plus one.
            const Key last_key = key(last);
            size_t i = 0;
            for (;;) {
                const size_t first = i * kArity + 1;
                if (first >= n)
                    break;
                size_t best;
                Key best_key;
                if (first + kArity <= n) {
                    const Key k0 = key(heap_[first]);
                    const Key k1 = key(heap_[first + 1]);
                    const Key k2 = key(heap_[first + 2]);
                    const Key k3 = key(heap_[first + 3]);
                    const size_t a = k1 < k0 ? first + 1 : first;
                    const Key ka = k1 < k0 ? k1 : k0;
                    const size_t b = k3 < k2 ? first + 3 : first + 2;
                    const Key kb = k3 < k2 ? k3 : k2;
                    best = kb < ka ? b : a;
                    best_key = kb < ka ? kb : ka;
                } else {
                    best = first;
                    best_key = key(heap_[first]);
                    for (size_t c = first + 1; c < n; ++c) {
                        const Key kc = key(heap_[c]);
                        if (kc < best_key) {
                            best = c;
                            best_key = kc;
                        }
                    }
                }
                if (last_key <= best_key)
                    break;
                heap_[i] = heap_[best];
                i = best;
            }
            heap_[i] = last;
        }
        return Popped{top.time,
                      static_cast<uint32_t>(top.meta &
                                            ((1u << kKindBits) - 1)),
                      static_cast<int>((top.meta >> kKindBits) &
                                       ((1u << kCoreBits) - 1)) -
                          1};
    }

  private:
    struct Item
    {
        SimNanos time;
        uint64_t meta; ///< seq << 28 | (core + 1) << 4 | kind
    };

    static constexpr size_t kArity = 4;
    static constexpr size_t kLine = 64;
    /** Root byte offset within the aligned block: puts sibling group
     *  {4i+1..4i+4} at byte 64(i+1), i.e. one full line per group. */
    static constexpr size_t kRootOffset = kLine - sizeof(Item);

    /**
     * Order-preserving 128-bit sort key: simulation times are
     * non-negative doubles, whose IEEE-754 bit patterns compare in value
     * order as unsigned integers, and `meta` carries seq in its high
     * bits, so one unsigned compare reproduces the old (time, seq)
     * comparator branchlessly.
     */
    using Key = unsigned __int128;

    static Key
    key(const Item &a)
    {
        return static_cast<Key>(std::bit_cast<uint64_t>(a.time)) << 64 |
               a.meta;
    }

    static bool
    less(const Item &a, const Item &b)
    {
        return key(a) < key(b);
    }

    void
    grow(size_t new_cap)
    {
        void *raw = ::operator new(kRootOffset + new_cap * sizeof(Item),
                                   std::align_val_t(kLine));
        Item *items = reinterpret_cast<Item *>(
            static_cast<char *>(raw) + kRootOffset);
        for (size_t i = 0; i < size_; ++i)
            items[i] = heap_[i];
        free_store();
        raw_ = raw;
        heap_ = items;
        cap_ = new_cap;
    }

    void
    free_store()
    {
        if (raw_)
            ::operator delete(raw_, std::align_val_t(kLine));
        raw_ = nullptr;
    }

    void *raw_ = nullptr; ///< 64B-aligned block owning the storage
    Item *heap_ = nullptr; ///< raw_ + kRootOffset
    size_t size_ = 0;
    size_t cap_ = 0;
    uint64_t seq_ = 0;
};

/** Index-addressed job slab with a free list, reused across a run. */
class JobArena
{
  public:
    static constexpr uint32_t kNone = ~0u;

    /** Pre-size the slab (jobs, not bytes). */
    void reserve(size_t n) { slab_.reserve(n); }

    /** @return a slab index, recycling released slots first. */
    uint32_t
    alloc()
    {
        if (!free_.empty()) {
            const uint32_t idx = free_.back();
            free_.pop_back();
            return idx;
        }
        slab_.emplace_back();
        return static_cast<uint32_t>(slab_.size() - 1);
    }

    /** Return @p idx to the free list (contents left stale). */
    void release(uint32_t idx) { free_.push_back(idx); }

    Job &operator[](uint32_t idx) { return slab_[idx]; }
    const Job &operator[](uint32_t idx) const { return slab_[idx]; }

    /** Peak concurrent jobs ever alive (slab size). */
    size_t high_water() const { return slab_.size(); }

  private:
    std::vector<Job> slab_;
    std::vector<uint32_t> free_;
};

/**
 * Common engine state and driver loop shared by the three simulators.
 *
 * Owns the event queue, job arena, RNG, metrics, and the run-control
 * bookkeeping (in-flight count, drop/saturation flags, backlog check).
 * An engine composes one EngineCore, schedules events through it, and
 * hands `drive()` a handler that dispatches on its own event kinds.
 */
class EngineCore
{
  public:
    static constexpr uint32_t kNoJob = JobArena::kNone;

    /**
     * @param stop_when_saturated end the run as soon as saturation is
     * detected instead of draining; see the config structs for the
     * contract (the `saturated` flag is unaffected).
     */
    EngineCore(const ServiceDist &dist, double rate, uint64_t seed,
               SimNanos duration, size_t max_in_flight,
               bool stop_when_saturated, double warmup);

    Rng &rng() { return rng_; }
    SimNanos now() const { return now_; }
    SimNanos duration() const { return duration_; }
    uint64_t arrivals() const { return arrivals_; }
    Job &job(uint32_t idx) { return jobs_[idx]; }

    /** Schedule an engine event at absolute time @p t. */
    void schedule(SimNanos t, uint32_t kind, int core)
    {
        events_.push(t, kind, core);
    }

    /**
     * Next arrival instant after @p from. The default (no installed
     * process) is the streaming Poisson draw — one exponential at the
     * mean gap, byte-identical to the historical inline code so every
     * figure bench replays unchanged. With set_arrival() the draw comes
     * from the installed process (MMPP/on-off/diurnal) instead, using
     * the same engine RNG so the service/arrival draw interleave stays
     * a pure function of the seed.
     */
    SimNanos
    next_arrival_after(SimNanos from)
    {
        const SimNanos t = arrival_ != nullptr
                               ? arrival_->next(from, rng_)
                               : from + rng_.exponential(1.0 / rate_);
        if (arrival_trace_ != nullptr)
            arrival_trace_->push_back(t);
        return t;
    }

    /**
     * Install a non-Poisson arrival process (Kind::Poisson uninstalls —
     * the default inline draw is already exactly Poisson, and keeping
     * it branch-local preserves the byte-identical replay guarantee).
     */
    void
    set_arrival(const ArrivalSpec &spec)
    {
        arrival_ = spec.kind == ArrivalSpec::Kind::Poisson
                       ? nullptr
                       : make_arrival_process(spec, rate_);
    }

    /**
     * Record every value next_arrival_after() returns (including the
     * final past-duration overshoot draw) into @p trace; nullptr
     * disables. The load generator records the same sequence, which is
     * what the arrival-parity tests compare.
     */
    void set_arrival_trace(std::vector<double> *trace)
    {
        arrival_trace_ = trace;
    }

    /** Modulation phases entered by the installed process (0 = Poisson). */
    uint64_t
    arrival_phases_begun() const
    {
        return arrival_ != nullptr ? arrival_->phases_begun() : 0;
    }

    /**
     * Admit one arrival: draws its service demand from the stream and
     * returns its arena index, or kNoJob when the in-flight guard trips
     * (the drop is counted and the run marked saturated). The job's
     * remaining service is `demand * demand_scale`.
     */
    uint32_t try_admit(double demand_scale = 1.0);

    /** Record the completion of @p idx at @p finish and recycle it. */
    void complete(uint32_t idx, SimNanos finish);

    /**
     * Run the event loop: pop events in (time, seq) order and feed them
     * to @p handle(kind, core). Stops on an empty queue, on the 3x
     * duration hard stop, or — when stop_when_saturated is set — as
     * soon as the run is known saturated.
     */
    template <typename Handler>
    void
    drive(Handler &&handle)
    {
        const SimNanos hard_stop = duration_ * 3;
        while (!events_.empty()) {
            const EventQueue::Popped ev = events_.pop();
            now_ = ev.time;
            if (now_ > hard_stop) {
                saturated_ = true;
                break;
            }
            if (!backlog_checked_ && now_ >= duration_) {
                check_backlog();
                if (saturated_ && stop_when_saturated_)
                    break;
            }
            handle(ev.kind, ev.core);
            if (stop_when_saturated_ && saturated_)
                break;
        }
    }

    /** Fill the common SimResult fields (engine extras come after). */
    void finalize(SimResult &result);

  private:
    /**
     * Stability check at the end of the arrival window: a backlog much
     * larger than any stable queueing state means the offered load
     * exceeded capacity, even if the queue drains during the grace
     * period afterwards.
     */
    void check_backlog();

    const ServiceDist &dist_;
    double rate_;
    SimNanos duration_;
    size_t max_in_flight_;
    bool stop_when_saturated_;

    /** Installed non-Poisson arrival process (null = Poisson draw). */
    std::unique_ptr<ArrivalProcess> arrival_;
    std::vector<double> *arrival_trace_ = nullptr;

    Rng rng_;
    EventQueue events_;
    JobArena jobs_;
    MetricsCollector metrics_;

    SimNanos now_ = 0;
    uint64_t next_id_ = 0;
    size_t in_flight_ = 0;
    uint64_t arrivals_ = 0;
    uint64_t dropped_ = 0;
    bool saturated_ = false;
    bool backlog_checked_ = false;
};

} // namespace tq::sim

#endif // TQ_SIM_EVENT_CORE_H
