#include "sim/metrics.h"

#include "common/check.h"

namespace tq::sim {

const ClassStats &
SimResult::by_class(const std::string &name) const
{
    for (const auto &c : classes)
        if (c.name == name)
            return c;
    tq::fatal("SimResult::by_class: unknown class name");
}

MetricsCollector::MetricsCollector(std::vector<std::string> class_names,
                                   double warmup_fraction)
    : names_(std::move(class_names)),
      warmup_(warmup_fraction),
      sojourn_(names_.size()),
      slowdown_(names_.size())
{
    TQ_CHECK(!names_.empty());
}

void
MetricsCollector::reserve(size_t expected_completions)
{
    all_slowdown_.reserve(expected_completions);
    // The class split is workload-dependent; an even split is a decent
    // hint and push_back growth absorbs any skew.
    const size_t per_class = expected_completions / names_.size() + 1;
    for (size_t c = 0; c < names_.size(); ++c) {
        sojourn_[c].reserve(per_class);
        slowdown_[c].reserve(per_class);
    }
}

void
MetricsCollector::record(const Job &job, SimNanos finish)
{
    TQ_CHECK(job.job_class >= 0 &&
             job.job_class < static_cast<int>(names_.size()));
    const SimNanos sojourn = finish - job.arrival;
    TQ_DCHECK(sojourn >= 0);
    const double slow = job.demand > 0 ? sojourn / job.demand : 1.0;
    sojourn_[static_cast<size_t>(job.job_class)].add(sojourn);
    slowdown_[static_cast<size_t>(job.job_class)].add(slow);
    all_slowdown_.add(slow);
    ++completed_;
}

void
MetricsCollector::finalize(SimResult &result)
{
    result.completed = completed_;
    result.classes.clear();
    static constexpr double kSojournQs[] = {0.999, 0.99};
    for (size_t c = 0; c < names_.size(); ++c) {
        ClassStats stats;
        stats.name = names_[c];
        stats.completed = sojourn_[c].count();
        const auto qs = sojourn_[c].quantiles(kSojournQs, warmup_);
        stats.p999_sojourn = qs[0];
        stats.p99_sojourn = qs[1];
        stats.mean_sojourn = sojourn_[c].mean(warmup_);
        stats.p999_slowdown = slowdown_[c].quantile(0.999, warmup_);
        stats.mean_slowdown = slowdown_[c].mean(warmup_);
        result.classes.push_back(std::move(stats));
    }
    result.overall_p999_slowdown = all_slowdown_.quantile(0.999, warmup_);
    result.overall_mean_slowdown = all_slowdown_.mean(warmup_);
}

} // namespace tq::sim
