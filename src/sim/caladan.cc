#include "sim/caladan.h"

#include <deque>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/event_core.h"

namespace tq::sim {

namespace {

constexpr uint32_t kNone = ~0u;

enum EventKind : uint32_t { kArrival, kIoDone, kCoreDone };

struct Core
{
    std::deque<uint32_t> runq;
    uint32_t running = kNone;
};

class CaladanSim
{
  public:
    CaladanSim(const CaladanConfig &cfg, const ServiceDist &dist,
               double rate)
        : cfg_(cfg),
          core_(dist, rate, cfg.seed, cfg.duration, cfg.max_in_flight,
                cfg.stop_when_saturated, cfg.warmup),
          cores_(static_cast<size_t>(cfg.num_cores))
    {
        TQ_CHECK(cfg.num_cores > 0);
        core_.set_arrival(cfg.arrival);
    }

    SimResult
    run()
    {
        core_.schedule(core_.next_arrival_after(0), kArrival, -1);
        core_.drive([this](uint32_t kind, int c) {
            switch (kind) {
              case kArrival:
                on_arrival();
                break;
              case kIoDone:
                on_io_done();
                break;
              case kCoreDone:
                on_core_done(c);
                break;
            }
        });

        SimResult result;
        core_.finalize(result);
        return result;
    }

  private:
    Job &job(uint32_t idx) { return core_.job(idx); }

    void
    on_arrival()
    {
        const uint32_t idx = core_.try_admit();
        if (idx != EngineCore::kNoJob) {
            if (cfg_.directpath) {
                deliver(idx);
            } else {
                io_q_.push_back(idx);
                maybe_start_io();
            }
        }
        const SimNanos t = core_.next_arrival_after(core_.now());
        if (t < cfg_.duration)
            core_.schedule(t, kArrival, -1);
    }

    void
    maybe_start_io()
    {
        if (io_busy_ || io_q_.empty())
            return;
        io_busy_ = true;
        core_.schedule(core_.now() + cfg_.overheads.iokernel_cost,
                       kIoDone, -1);
    }

    void
    on_io_done()
    {
        TQ_CHECK(io_busy_ && !io_q_.empty());
        const uint32_t idx = io_q_.front();
        io_q_.pop_front();
        io_busy_ = false;
        deliver(idx);
        maybe_start_io();
    }

    /** RSS: a hash of the flow picks the core — uniform random here. */
    void
    deliver(uint32_t idx)
    {
        const int c = static_cast<int>(
            core_.rng().below(static_cast<uint64_t>(cfg_.num_cores)));
        Core &core = cores_[static_cast<size_t>(c)];
        core.runq.push_back(idx);
        if (core.running == kNone) {
            start_job(c, /*steal_delay=*/0);
            return;
        }
        // The hashed core is busy. Real Caladan workers poll for steals
        // continuously, so a concurrently idle core picks the job up
        // almost immediately; emulate by letting the first idle core
        // steal it now (one steal_cost of delay).
        if (cfg_.steal_attempts <= 0)
            return;
        for (int v = 0; v < cfg_.num_cores; ++v) {
            Core &thief = cores_[static_cast<size_t>(v)];
            if (v != c && thief.running == kNone) {
                core.runq.pop_back();
                thief.runq.push_back(idx);
                start_job(v, cfg_.overheads.steal_cost);
                return;
            }
        }
    }

    void
    start_job(int c, SimNanos steal_delay)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        TQ_CHECK(core.running == kNone);
        uint32_t idx = kNone;
        SimNanos extra = steal_delay;
        if (!core.runq.empty()) {
            idx = core.runq.front();
            core.runq.pop_front();
        } else {
            // Work stealing: probe random victims.
            for (int a = 0; a < cfg_.steal_attempts; ++a) {
                extra += cfg_.overheads.steal_cost;
                const int v = static_cast<int>(core_.rng().below(
                    static_cast<uint64_t>(cfg_.num_cores)));
                Core &victim = cores_[static_cast<size_t>(v)];
                if (v != c && !victim.runq.empty()) {
                    idx = victim.runq.back(); // steal from the tail
                    victim.runq.pop_back();
                    break;
                }
            }
        }
        if (idx == kNone)
            return; // park idle; next delivery wakes the core
        core.running = idx;
        const Job &j = job(idx);
        const SimNanos packet_cost =
            cfg_.directpath ? cfg_.overheads.directpath_cost : 0;
        core_.schedule(core_.now() + extra + packet_cost + j.remaining +
                           cfg_.overheads.response_cost,
                       kCoreDone, c);
    }

    void
    on_core_done(int c)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        const uint32_t idx = core.running;
        core.running = kNone;
        job(idx).remaining = 0;
        core_.complete(idx, core_.now());
        start_job(c, 0);
    }

    const CaladanConfig &cfg_;
    EngineCore core_;

    std::deque<uint32_t> io_q_;
    bool io_busy_ = false;
    std::vector<Core> cores_;
};

} // namespace

SimResult
run_caladan(const CaladanConfig &cfg, const ServiceDist &dist, double rate)
{
    CaladanSim sim(cfg, dist, rate);
    return sim.run();
}

} // namespace tq::sim
