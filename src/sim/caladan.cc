#include "sim/caladan.h"

#include <deque>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tq::sim {

namespace {

constexpr uint32_t kNone = ~0u;

struct Event
{
    SimNanos time;
    enum Kind : uint8_t { kArrival, kIoDone, kCoreDone } kind;
    int core;
    uint64_t seq;

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

struct Core
{
    std::deque<uint32_t> runq;
    uint32_t running = kNone;
};

class CaladanSim
{
  public:
    CaladanSim(const CaladanConfig &cfg, const ServiceDist &dist,
               double rate)
        : cfg_(cfg),
          dist_(dist),
          rate_(rate),
          rng_(cfg.seed),
          cores_(static_cast<size_t>(cfg.num_cores)),
          metrics_(dist.class_names(), cfg.warmup)
    {
        TQ_CHECK(cfg.num_cores > 0);
        TQ_CHECK(rate > 0);
    }

    SimResult
    run()
    {
        schedule(rng_.exponential(1.0 / rate_), Event::kArrival, -1);
        const SimNanos hard_stop = cfg_.duration * 3;

        while (!heap_.empty()) {
            const Event ev = heap_.top();
            heap_.pop();
            now_ = ev.time;
            if (now_ > hard_stop) {
                saturated_ = true;
                break;
            }
            if (!backlog_checked_ && now_ >= cfg_.duration)
                check_backlog();
            switch (ev.kind) {
              case Event::kArrival:
                on_arrival();
                break;
              case Event::kIoDone:
                on_io_done();
                break;
              case Event::kCoreDone:
                on_core_done(ev.core);
                break;
            }
        }

        SimResult result;
        result.offered_rate = rate_;
        result.duration = cfg_.duration;
        if (!backlog_checked_)
            check_backlog();
        result.saturated = saturated_ || in_flight_ > 0;
        result.dropped = dropped_;
        metrics_.finalize(result);
        result.throughput =
            static_cast<double>(result.completed) / cfg_.duration;
        return result;
    }

  private:
    /** See TwoLevelSim::check_backlog: detect offered > capacity. */
    void
    check_backlog()
    {
        backlog_checked_ = true;
        const size_t limit =
            std::max<size_t>(1000, static_cast<size_t>(arrivals_ / 20));
        if (in_flight_ > limit)
            saturated_ = true;
    }

    uint32_t
    alloc_job()
    {
        if (!free_.empty()) {
            const uint32_t idx = free_.back();
            free_.pop_back();
            return idx;
        }
        jobs_.emplace_back();
        return static_cast<uint32_t>(jobs_.size() - 1);
    }

    Job &job(uint32_t idx) { return jobs_[idx]; }

    void
    schedule(SimNanos t, Event::Kind kind, int core)
    {
        heap_.push(Event{t, kind, core, seq_++});
    }

    void
    on_arrival()
    {
        if (in_flight_ >= cfg_.max_in_flight) {
            ++dropped_;
            saturated_ = true;
        } else {
            const uint32_t idx = alloc_job();
            Job &j = job(idx);
            const ServiceSample s = dist_.sample(rng_);
            j.id = next_id_++;
            j.arrival = now_;
            j.demand = s.demand;
            j.remaining = s.demand;
            j.job_class = s.job_class;
            ++in_flight_;
            ++arrivals_;
            if (cfg_.directpath) {
                deliver(idx);
            } else {
                io_q_.push_back(idx);
                maybe_start_io();
            }
        }
        const SimNanos t = now_ + rng_.exponential(1.0 / rate_);
        if (t < cfg_.duration)
            schedule(t, Event::kArrival, -1);
    }

    void
    maybe_start_io()
    {
        if (io_busy_ || io_q_.empty())
            return;
        io_busy_ = true;
        schedule(now_ + cfg_.overheads.iokernel_cost, Event::kIoDone, -1);
    }

    void
    on_io_done()
    {
        TQ_CHECK(io_busy_ && !io_q_.empty());
        const uint32_t idx = io_q_.front();
        io_q_.pop_front();
        io_busy_ = false;
        deliver(idx);
        maybe_start_io();
    }

    /** RSS: a hash of the flow picks the core — uniform random here. */
    void
    deliver(uint32_t idx)
    {
        const int c = static_cast<int>(
            rng_.below(static_cast<uint64_t>(cfg_.num_cores)));
        Core &core = cores_[static_cast<size_t>(c)];
        core.runq.push_back(idx);
        if (core.running == kNone) {
            start_job(c, /*steal_delay=*/0);
            return;
        }
        // The hashed core is busy. Real Caladan workers poll for steals
        // continuously, so a concurrently idle core picks the job up
        // almost immediately; emulate by letting the first idle core
        // steal it now (one steal_cost of delay).
        if (cfg_.steal_attempts <= 0)
            return;
        for (int v = 0; v < cfg_.num_cores; ++v) {
            Core &thief = cores_[static_cast<size_t>(v)];
            if (v != c && thief.running == kNone) {
                core.runq.pop_back();
                thief.runq.push_back(idx);
                start_job(v, cfg_.overheads.steal_cost);
                return;
            }
        }
    }

    void
    start_job(int c, SimNanos steal_delay)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        TQ_CHECK(core.running == kNone);
        uint32_t idx = kNone;
        SimNanos extra = steal_delay;
        if (!core.runq.empty()) {
            idx = core.runq.front();
            core.runq.pop_front();
        } else {
            // Work stealing: probe random victims.
            for (int a = 0; a < cfg_.steal_attempts; ++a) {
                extra += cfg_.overheads.steal_cost;
                const int v = static_cast<int>(
                    rng_.below(static_cast<uint64_t>(cfg_.num_cores)));
                Core &victim = cores_[static_cast<size_t>(v)];
                if (v != c && !victim.runq.empty()) {
                    idx = victim.runq.back(); // steal from the tail
                    victim.runq.pop_back();
                    break;
                }
            }
        }
        if (idx == kNone)
            return; // park idle; next delivery wakes the core
        core.running = idx;
        const Job &j = job(idx);
        const SimNanos packet_cost =
            cfg_.directpath ? cfg_.overheads.directpath_cost : 0;
        schedule(now_ + extra + packet_cost + j.remaining +
                     cfg_.overheads.response_cost,
                 Event::kCoreDone, c);
    }

    void
    on_core_done(int c)
    {
        Core &core = cores_[static_cast<size_t>(c)];
        const uint32_t idx = core.running;
        core.running = kNone;
        Job &j = job(idx);
        j.remaining = 0;
        metrics_.record(j, now_);
        --in_flight_;
        free_.push_back(idx);
        start_job(c, 0);
    }

    const CaladanConfig &cfg_;
    const ServiceDist &dist_;
    double rate_;
    Rng rng_;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        heap_;
    uint64_t seq_ = 0;
    SimNanos now_ = 0;

    std::vector<Job> jobs_;
    std::vector<uint32_t> free_;
    uint64_t next_id_ = 0;
    size_t in_flight_ = 0;
    uint64_t arrivals_ = 0;
    uint64_t dropped_ = 0;
    bool saturated_ = false;
    bool backlog_checked_ = false;

    std::deque<uint32_t> io_q_;
    bool io_busy_ = false;
    std::vector<Core> cores_;
    MetricsCollector metrics_;
};

} // namespace

SimResult
run_caladan(const CaladanConfig &cfg, const ServiceDist &dist, double rate)
{
    CaladanSim sim(cfg, dist, rate);
    return sim.run();
}

} // namespace tq::sim
