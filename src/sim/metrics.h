/**
 * @file
 * Result collection for cluster simulations.
 *
 * Tracks per-class sojourn time and slowdown with the paper's
 * methodology: 99.9th percentiles, first 10% of samples discarded as
 * warm-up (section 5.1). Slowdown is server-side time over the job's
 * inherent service time (section 2).
 */
#ifndef TQ_SIM_METRICS_H
#define TQ_SIM_METRICS_H

#include <string>
#include <vector>

#include "common/percentile.h"
#include "common/units.h"
#include "sim/job.h"

namespace tq::sim {

/** Aggregated statistics for one job class. */
struct ClassStats
{
    std::string name;
    uint64_t completed = 0;
    SimNanos p999_sojourn = 0;   ///< 99.9th percentile sojourn time
    SimNanos p99_sojourn = 0;
    SimNanos mean_sojourn = 0;
    double p999_slowdown = 0;    ///< 99.9th percentile slowdown
    double mean_slowdown = 0;
};

/** Outcome of one simulated run at one offered load. */
struct SimResult
{
    double offered_rate = 0;      ///< requests per nanosecond
    double throughput = 0;        ///< completions per nanosecond
    uint64_t completed = 0;
    uint64_t dropped = 0;         ///< admission failures (saturation)
    bool saturated = false;       ///< in-flight cap hit / queues diverged
    SimNanos duration = 0;

    std::vector<ClassStats> classes;
    double overall_p999_slowdown = 0;
    double overall_mean_slowdown = 0;

    /** Mean interval between quantum grants on busy cores (Figure 16). */
    SimNanos avg_effective_quantum = 0;

    /**
     * Per-class mean grant interval, indexed like `classes` (empty when
     * the run tracked no classes). With per-class quanta this exposes
     * the effective quantum each class actually attained — the quantity
     * the runtime-vs-sim parity test compares (DESIGN.md §4i).
     */
    std::vector<SimNanos> class_effective_quantum;

    /** Times the starvation guard force-promoted a passed-over class
     *  (0 unless TwoLevelConfig::starvation_promote_after is set). */
    uint64_t starvation_promotions = 0;

    /** Stats for the class named @p name (fatal if absent). */
    const ClassStats &by_class(const std::string &name) const;
};

/** Accumulates completions during a run and finalizes into a SimResult. */
class MetricsCollector
{
  public:
    /**
     * @param class_names one tracker per workload class.
     * @param warmup_fraction fraction of earliest samples to discard.
     */
    explicit MetricsCollector(std::vector<std::string> class_names,
                              double warmup_fraction = 0.1);

    /**
     * Pre-size the sample stores for @p expected_completions total
     * completions (allocation hint; see PercentileTracker::reserve).
     */
    void reserve(size_t expected_completions);

    /** Record a completion at time @p finish. */
    void record(const Job &job, SimNanos finish);

    uint64_t completed() const { return completed_; }

    /** Finalize percentiles into @p result (classes, overall slowdown). */
    void finalize(SimResult &result);

  private:
    std::vector<std::string> names_;
    double warmup_;
    std::vector<PercentileTracker> sojourn_;
    std::vector<PercentileTracker> slowdown_;
    PercentileTracker all_slowdown_;
    uint64_t completed_ = 0;
};

} // namespace tq::sim

#endif // TQ_SIM_METRICS_H
