#include "sim/central.h"

#include <deque>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/event_core.h"

namespace tq::sim {

namespace {

constexpr uint32_t kNone = ~0u;

enum EventKind : uint32_t { kArrival, kOpDone, kCoreDone };

/** A unit of serial dispatcher work. */
struct DispatchOp
{
    enum Kind : uint8_t { kAdmit, kSliceEnd } kind;
    uint32_t job;
    int core;
};

struct Core
{
    uint32_t running = kNone;
    SimNanos slice = 0;
    SimNanos last_grant = -1;
    SimNanos last_overhead = 0;
    double grant_intervals = 0;
    uint64_t grants = 0;
};

class CentralSim
{
  public:
    CentralSim(const CentralConfig &cfg, const ServiceDist &dist,
               double rate)
        : cfg_(cfg),
          core_(dist, rate, cfg.seed, cfg.duration, cfg.max_in_flight,
                cfg.stop_when_saturated, cfg.warmup),
          cores_(static_cast<size_t>(cfg.num_cores))
    {
        TQ_CHECK(cfg.num_cores > 0);
        core_.set_arrival(cfg.arrival);
    }

    SimResult
    run()
    {
        core_.schedule(core_.next_arrival_after(0), kArrival, -1);
        core_.drive([this](uint32_t kind, int c) {
            switch (kind) {
              case kArrival:
                on_arrival();
                break;
              case kOpDone:
                on_op_done();
                break;
              case kCoreDone:
                on_core_done(c);
                break;
            }
        });

        SimResult result;
        core_.finalize(result);
        double intervals = 0;
        uint64_t grants = 0;
        for (const auto &core : cores_) {
            intervals += core.grant_intervals;
            grants += core.grants;
        }
        result.avg_effective_quantum =
            grants ? intervals / static_cast<double>(grants) : 0;
        return result;
    }

  private:
    Job &job(uint32_t idx) { return core_.job(idx); }

    void
    on_arrival()
    {
        const uint32_t idx = core_.try_admit();
        if (idx != EngineCore::kNoJob) {
            ops_.push_back(DispatchOp{DispatchOp::kAdmit, idx, -1});
            maybe_start_op();
        }
        const SimNanos t = core_.next_arrival_after(core_.now());
        if (t < cfg_.duration)
            core_.schedule(t, kArrival, -1);
    }

    void
    maybe_start_op()
    {
        if (op_busy_ || ops_.empty())
            return;
        op_busy_ = true;
        core_.schedule(core_.now() + cfg_.overheads.sched_op_cost,
                       kOpDone, -1);
    }

    void
    on_op_done()
    {
        TQ_CHECK(op_busy_ && !ops_.empty());
        const DispatchOp op = ops_.front();
        ops_.pop_front();
        op_busy_ = false;

        switch (op.kind) {
          case DispatchOp::kAdmit:
            runq_.push_back(op.job);
            grant_if_possible();
            break;
          case DispatchOp::kSliceEnd: {
            Core &core = cores_[static_cast<size_t>(op.core)];
            const uint32_t idx = core.running;
            core.running = kNone;
            Job &j = job(idx);
            j.remaining -= core.slice;
            if (j.remaining <= 1e-9) {
                core_.complete(idx,
                               core_.now() + cfg_.overheads.response_cost);
            } else {
                ++j.serviced_quanta;
                runq_.push_back(idx); // PS rotation of the global queue
            }
            grant_if_possible();
            break;
          }
        }
        maybe_start_op();
    }

    void
    grant_if_possible()
    {
        // Greedily fill every idle core (the op that ran may have freed
        // one core and enqueued one job; a single sweep is cheap).
        for (int c = 0; c < cfg_.num_cores && !runq_.empty(); ++c) {
            Core &core = cores_[static_cast<size_t>(c)];
            if (core.running != kNone)
                continue;
            const uint32_t idx = runq_.front();
            runq_.pop_front();
            core.running = idx;
            Job &j = job(idx);
            const SimNanos slice = std::min(cfg_.quantum, j.remaining);
            core.slice = slice;
            const bool preempted = j.remaining > slice + 1e-9;
            const SimNanos overhead =
                (!cfg_.overhead_on_preemption_only || preempted)
                    ? cfg_.overheads.switch_overhead
                    : 0;
            const SimNanos now = core_.now();
            if (core.last_grant >= 0) {
                // Effective-quantum metric (Figure 16): grant spacing net
                // of the constant per-slice costs (interrupt overhead and
                // the dispatcher's own reaction time for one op). What
                // remains is the stretch caused by dispatcher *queueing*,
                // i.e. the scalability limit under study.
                core.grant_intervals += now - core.last_grant -
                                        core.last_overhead -
                                        cfg_.overheads.sched_op_cost;
                ++core.grants;
            }
            core.last_grant = now;
            core.last_overhead = overhead;
            core_.schedule(now + slice + overhead, kCoreDone, c);
        }
    }

    void
    on_core_done(int c)
    {
        ops_.push_back(DispatchOp{DispatchOp::kSliceEnd, kNone, c});
        maybe_start_op();
    }

    const CentralConfig &cfg_;
    EngineCore core_;

    std::deque<DispatchOp> ops_;
    bool op_busy_ = false;
    std::deque<uint32_t> runq_;
    std::vector<Core> cores_;
};

} // namespace

SimResult
run_central(const CentralConfig &cfg, const ServiceDist &dist, double rate)
{
    CentralSim sim(cfg, dist, rate);
    return sim.run();
}

} // namespace tq::sim
