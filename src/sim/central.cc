#include "sim/central.h"

#include <deque>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tq::sim {

namespace {

constexpr uint32_t kNone = ~0u;

struct Event
{
    SimNanos time;
    enum Kind : uint8_t { kArrival, kOpDone, kCoreDone } kind;
    int core;
    uint64_t seq;

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

/** A unit of serial dispatcher work. */
struct DispatchOp
{
    enum Kind : uint8_t { kAdmit, kSliceEnd } kind;
    uint32_t job;
    int core;
};

struct Core
{
    uint32_t running = kNone;
    SimNanos slice = 0;
    SimNanos last_grant = -1;
    SimNanos last_overhead = 0;
    double grant_intervals = 0;
    uint64_t grants = 0;
};

class CentralSim
{
  public:
    CentralSim(const CentralConfig &cfg, const ServiceDist &dist,
               double rate)
        : cfg_(cfg),
          dist_(dist),
          rate_(rate),
          rng_(cfg.seed),
          cores_(static_cast<size_t>(cfg.num_cores)),
          metrics_(dist.class_names(), cfg.warmup)
    {
        TQ_CHECK(cfg.num_cores > 0);
        TQ_CHECK(rate > 0);
    }

    SimResult
    run()
    {
        schedule(rng_.exponential(1.0 / rate_), Event::kArrival, -1);
        const SimNanos hard_stop = cfg_.duration * 3;

        while (!heap_.empty()) {
            const Event ev = heap_.top();
            heap_.pop();
            now_ = ev.time;
            if (now_ > hard_stop) {
                saturated_ = true;
                break;
            }
            if (!backlog_checked_ && now_ >= cfg_.duration)
                check_backlog();
            switch (ev.kind) {
              case Event::kArrival:
                on_arrival();
                break;
              case Event::kOpDone:
                on_op_done();
                break;
              case Event::kCoreDone:
                on_core_done(ev.core);
                break;
            }
        }

        SimResult result;
        result.offered_rate = rate_;
        result.duration = cfg_.duration;
        if (!backlog_checked_)
            check_backlog();
        result.saturated = saturated_ || in_flight_ > 0;
        result.dropped = dropped_;
        metrics_.finalize(result);
        result.throughput =
            static_cast<double>(result.completed) / cfg_.duration;
        double intervals = 0;
        uint64_t grants = 0;
        for (const auto &core : cores_) {
            intervals += core.grant_intervals;
            grants += core.grants;
        }
        result.avg_effective_quantum =
            grants ? intervals / static_cast<double>(grants) : 0;
        return result;
    }

  private:
    /** See TwoLevelSim::check_backlog: detect offered > capacity. */
    void
    check_backlog()
    {
        backlog_checked_ = true;
        const size_t limit =
            std::max<size_t>(1000, static_cast<size_t>(arrivals_ / 20));
        if (in_flight_ > limit)
            saturated_ = true;
    }

    uint32_t
    alloc_job()
    {
        if (!free_.empty()) {
            const uint32_t idx = free_.back();
            free_.pop_back();
            return idx;
        }
        jobs_.emplace_back();
        return static_cast<uint32_t>(jobs_.size() - 1);
    }

    Job &job(uint32_t idx) { return jobs_[idx]; }

    void
    schedule(SimNanos t, Event::Kind kind, int core)
    {
        heap_.push(Event{t, kind, core, seq_++});
    }

    void
    on_arrival()
    {
        if (in_flight_ >= cfg_.max_in_flight) {
            ++dropped_;
            saturated_ = true;
        } else {
            const uint32_t idx = alloc_job();
            Job &j = job(idx);
            const ServiceSample s = dist_.sample(rng_);
            j.id = next_id_++;
            j.arrival = now_;
            j.demand = s.demand;
            j.remaining = s.demand;
            j.job_class = s.job_class;
            j.serviced_quanta = 0;
            ++in_flight_;
            ++arrivals_;
            ops_.push_back(DispatchOp{DispatchOp::kAdmit, idx, -1});
            maybe_start_op();
        }
        const SimNanos t = now_ + rng_.exponential(1.0 / rate_);
        if (t < cfg_.duration)
            schedule(t, Event::kArrival, -1);
    }

    void
    maybe_start_op()
    {
        if (op_busy_ || ops_.empty())
            return;
        op_busy_ = true;
        schedule(now_ + cfg_.overheads.sched_op_cost, Event::kOpDone, -1);
    }

    void
    on_op_done()
    {
        TQ_CHECK(op_busy_ && !ops_.empty());
        const DispatchOp op = ops_.front();
        ops_.pop_front();
        op_busy_ = false;

        switch (op.kind) {
          case DispatchOp::kAdmit:
            runq_.push_back(op.job);
            grant_if_possible();
            break;
          case DispatchOp::kSliceEnd: {
            Core &core = cores_[static_cast<size_t>(op.core)];
            const uint32_t idx = core.running;
            core.running = kNone;
            Job &j = job(idx);
            j.remaining -= core.slice;
            if (j.remaining <= 1e-9) {
                metrics_.record(j, now_ + cfg_.overheads.response_cost);
                --in_flight_;
                free_.push_back(idx);
            } else {
                ++j.serviced_quanta;
                runq_.push_back(idx); // PS rotation of the global queue
            }
            grant_if_possible();
            break;
          }
        }
        maybe_start_op();
    }

    void
    grant_if_possible()
    {
        // Greedily fill every idle core (the op that ran may have freed
        // one core and enqueued one job; a single sweep is cheap).
        for (int c = 0; c < cfg_.num_cores && !runq_.empty(); ++c) {
            Core &core = cores_[static_cast<size_t>(c)];
            if (core.running != kNone)
                continue;
            const uint32_t idx = runq_.front();
            runq_.pop_front();
            core.running = idx;
            Job &j = job(idx);
            const SimNanos slice = std::min(cfg_.quantum, j.remaining);
            core.slice = slice;
            const bool preempted = j.remaining > slice + 1e-9;
            const SimNanos overhead =
                (!cfg_.overhead_on_preemption_only || preempted)
                    ? cfg_.overheads.switch_overhead
                    : 0;
            if (core.last_grant >= 0) {
                // Effective-quantum metric (Figure 16): grant spacing net
                // of the constant per-slice costs (interrupt overhead and
                // the dispatcher's own reaction time for one op). What
                // remains is the stretch caused by dispatcher *queueing*,
                // i.e. the scalability limit under study.
                core.grant_intervals += now_ - core.last_grant -
                                        core.last_overhead -
                                        cfg_.overheads.sched_op_cost;
                ++core.grants;
            }
            core.last_grant = now_;
            core.last_overhead = overhead;
            schedule(now_ + slice + overhead, Event::kCoreDone, c);
        }
    }

    void
    on_core_done(int c)
    {
        ops_.push_back(DispatchOp{DispatchOp::kSliceEnd, kNone, c});
        maybe_start_op();
    }

    const CentralConfig &cfg_;
    const ServiceDist &dist_;
    double rate_;
    Rng rng_;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        heap_;
    uint64_t seq_ = 0;
    SimNanos now_ = 0;

    std::vector<Job> jobs_;
    std::vector<uint32_t> free_;
    uint64_t next_id_ = 0;
    size_t in_flight_ = 0;
    uint64_t arrivals_ = 0;
    uint64_t dropped_ = 0;
    bool saturated_ = false;
    bool backlog_checked_ = false;

    std::deque<DispatchOp> ops_;
    bool op_busy_ = false;
    std::deque<uint32_t> runq_;
    std::vector<Core> cores_;
    MetricsCollector metrics_;
};

} // namespace

SimResult
run_central(const CentralConfig &cfg, const ServiceDist &dist, double rate)
{
    CentralSim sim(cfg, dist, rate);
    return sim.run();
}

} // namespace tq::sim
