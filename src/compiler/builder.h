/**
 * @file
 * Convenience builder for mini-IR functions.
 *
 * Keeps program construction (tests, the progs benchmark suite) concise
 * and structurally valid by construction.
 */
#ifndef TQ_COMPILER_BUILDER_H
#define TQ_COMPILER_BUILDER_H

#include <string>
#include <utility>

#include "compiler/ir.h"

namespace tq::compiler {

/** Fluent-ish builder for one Function. */
class FunctionBuilder
{
  public:
    explicit FunctionBuilder(std::string name)
    {
        fn_.name = std::move(name);
    }

    /** Append an empty block; returns its id. Block 0 is the entry. */
    int
    add_block()
    {
        fn_.blocks.emplace_back();
        return fn_.num_blocks() - 1;
    }

    /** Append @p count instructions of class @p op to block @p b. */
    FunctionBuilder &
    ops(int b, Op op, int count)
    {
        for (int i = 0; i < count; ++i)
            block(b).instrs.push_back(Instr::make(op));
        return *this;
    }

    /** Append a typical compute mix: ALU-heavy with some memory traffic. */
    FunctionBuilder &
    mix(int b, int ialu, int loads, int stores, int fmul = 0, int fdiv = 0)
    {
        // Interleave so loads are spread through the block.
        const int groups = std::max(1, loads);
        for (int g = 0; g < groups; ++g) {
            ops(b, Op::IAlu, ialu / groups);
            if (loads)
                ops(b, Op::Load, 1);
            if (stores)
                ops(b, Op::Store, stores / groups ? stores / groups : (g == 0 ? stores : 0));
            if (fmul)
                ops(b, Op::FMul, fmul / groups ? fmul / groups : (g == 0 ? fmul : 0));
            if (fdiv && g == 0)
                ops(b, Op::FDiv, fdiv);
        }
        return *this;
    }

    /** Append a call to function index @p callee. */
    FunctionBuilder &
    call(int b, int callee)
    {
        block(b).instrs.push_back(Instr::call(callee));
        return *this;
    }

    /** Append a call to an uninstrumented external of @p cycles cost. */
    FunctionBuilder &
    ext_call(int b, double cycles)
    {
        block(b).instrs.push_back(Instr::external_call(cycles));
        return *this;
    }

    FunctionBuilder &
    jump(int b, int target)
    {
        block(b).term = Terminator::jump(target);
        return *this;
    }

    FunctionBuilder &
    branch(int b, int taken, int fallthrough, double prob)
    {
        BranchModel m;
        m.kind = BranchModel::Kind::Bernoulli;
        m.prob = prob;
        block(b).term = Terminator::branch(taken, fallthrough, m);
        return *this;
    }

    /**
     * Make block @p b a loop latch: branch back to @p header for
     * @p trips iterations per loop entry, then continue to @p exit.
     */
    FunctionBuilder &
    latch(int b, int header, int exit, uint64_t trips)
    {
        BranchModel m;
        m.kind = BranchModel::Kind::TripCount;
        m.trip_count = trips;
        block(b).term = Terminator::branch(header, exit, m);
        return *this;
    }

    FunctionBuilder &
    ret(int b)
    {
        block(b).term = Terminator::ret();
        return *this;
    }

    /** Attach front-end loop facts to a loop header block. */
    FunctionBuilder &
    loop_facts(int header, std::optional<uint64_t> static_trip,
               bool has_induction_var)
    {
        block(header).loop_facts.static_trip = static_trip;
        block(header).loop_facts.has_induction_var = has_induction_var;
        return *this;
    }

    Function build() { return std::move(fn_); }

  private:
    Block &block(int b) { return fn_.blocks.at(static_cast<size_t>(b)); }

    Function fn_;
};

} // namespace tq::compiler

#endif // TQ_COMPILER_BUILDER_H
