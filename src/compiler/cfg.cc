#include "compiler/cfg.h"

#include <algorithm>

namespace tq::compiler {

Cfg::Cfg(const Function &fn)
    : n_(fn.num_blocks()),
      succs_(static_cast<size_t>(n_)),
      preds_(static_cast<size_t>(n_)),
      rpo_index_(static_cast<size_t>(n_), -1),
      idom_(static_cast<size_t>(n_), -1),
      header_loop_(static_cast<size_t>(n_), -1),
      block_loop_(static_cast<size_t>(n_), -1)
{
    for (int b = 0; b < n_; ++b) {
        const auto &t = fn.blocks[static_cast<size_t>(b)].term;
        switch (t.kind) {
          case Terminator::Kind::Jump:
            succs_[b] = {t.target};
            break;
          case Terminator::Kind::Branch:
            if (t.target == t.target_else)
                succs_[b] = {t.target};
            else
                succs_[b] = {t.target, t.target_else};
            break;
          case Terminator::Kind::Ret:
            break;
        }
    }
    for (int b = 0; b < n_; ++b)
        for (int s : succs_[b])
            preds_[s].push_back(b);

    compute_order();
    compute_dominators();
    compute_loops();
}

void
Cfg::compute_order()
{
    // Iterative post-order DFS from the entry.
    std::vector<int> post;
    std::vector<uint8_t> state(static_cast<size_t>(n_), 0); // 0 new, 1 open
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < succs_[b].size()) {
            const int s = succs_[b][next++];
            if (!state[s]) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            post.push_back(b);
            stack.pop_back();
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpo_index_[rpo_[i]] = static_cast<int>(i);
}

void
Cfg::compute_dominators()
{
    // Cooper-Harvey-Kennedy iterative algorithm over RPO.
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_index_[a] > rpo_index_[b])
                a = idom_[a];
            while (rpo_index_[b] > rpo_index_[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo_) {
            if (b == 0)
                continue;
            int new_idom = -1;
            for (int p : preds_[b]) {
                if (idom_[p] < 0)
                    continue; // predecessor not yet processed/unreachable
                new_idom = new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
    idom_[0] = -1; // entry has no immediate dominator
}

bool
Cfg::dominates(int a, int b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    while (b != -1) {
        if (a == b)
            return true;
        b = idom_[b];
    }
    return false;
}

void
Cfg::compute_loops()
{
    // Find back edges (latch -> header where header dominates latch) and
    // grow each natural loop by walking predecessors from the latch.
    std::vector<int> headers;
    std::vector<std::vector<int>> header_latches(static_cast<size_t>(n_));
    for (int b = 0; b < n_; ++b) {
        if (!reachable(b))
            continue;
        for (int s : succs_[b]) {
            if (dominates(s, b)) {
                if (header_latches[s].empty())
                    headers.push_back(s);
                header_latches[s].push_back(b);
            }
        }
    }

    for (int h : headers) {
        LoopInfo loop;
        loop.header = h;
        loop.latches = header_latches[h];
        loop.body.assign(static_cast<size_t>(n_), false);
        loop.body[h] = true;
        std::vector<int> work;
        for (int latch : loop.latches) {
            if (!loop.body[latch]) {
                loop.body[latch] = true;
                work.push_back(latch);
            }
        }
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            for (int p : preds_[b]) {
                if (reachable(p) && !loop.body[p]) {
                    loop.body[p] = true;
                    work.push_back(p);
                }
            }
        }
        loops_.push_back(std::move(loop));
    }

    // Nesting: loop A is inside B iff B contains A's header and A != B.
    // Depth = number of enclosing loops + 1; parent = smallest enclosing.
    const int k = static_cast<int>(loops_.size());
    auto size_of = [&](int i) {
        return std::count(loops_[i].body.begin(), loops_[i].body.end(), true);
    };
    for (int a = 0; a < k; ++a) {
        long best_size = -1;
        for (int b = 0; b < k; ++b) {
            if (a == b || !loops_[b].contains(loops_[a].header))
                continue;
            ++loops_[a].depth;
            const long sz = size_of(b);
            if (best_size < 0 || sz < best_size) {
                best_size = sz;
                loops_[a].parent = b;
            }
        }
    }

    // Innermost-first ordering (deepest first); stable for determinism.
    std::vector<int> order(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return loops_[a].depth > loops_[b].depth;
    });
    std::vector<LoopInfo> sorted;
    std::vector<int> new_index(static_cast<size_t>(k));
    for (int i : order) {
        new_index[i] = static_cast<int>(sorted.size());
        sorted.push_back(loops_[i]);
    }
    for (auto &loop : sorted)
        if (loop.parent >= 0)
            loop.parent = new_index[loop.parent];
    loops_ = std::move(sorted);

    for (int i = 0; i < k; ++i)
        header_loop_[loops_[i].header] = i;
    // Innermost loop of each block: first match in innermost-first order.
    for (int b = 0; b < n_; ++b) {
        for (int i = 0; i < k; ++i) {
            if (loops_[i].contains(b)) {
                block_loop_[b] = i;
                break;
            }
        }
    }
}

} // namespace tq::compiler
