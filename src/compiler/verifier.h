/**
 * @file
 * Static probe-bound verifier: proves the paper's placement invariant.
 *
 * The TQ pass promises (paper section 3.1) that the number of real
 * instructions on any execution path between two probe *firings* is
 * bounded. `analyze_stretch` (passes.h) only checks a per-iteration
 * projection of that claim; the timing executor only spot-checks it
 * empirically. `verify_module` closes the gap: a whole-module static
 * analysis that computes a sound upper bound on the worst-case
 * probe-free stretch of an instrumented module, across loop
 * iterations and across call boundaries, in the executor's own units
 * (real instructions, external calls weighted by ext_cost/ialu).
 *
 * Model (see DESIGN.md for the full derivation):
 *
 *  - Unconditional probes (TqClock, CiCounter, CiCycles, and loop
 *    guards with period <= 1) are *hard barriers*: the stretch counter
 *    resets every time one executes.
 *  - A TqLoopGuard with period K is a *soft barrier*: its per-frame
 *    counter means any K consecutive executions within one activation
 *    include a firing, so a probe-free window crosses the site
 *    silently at most K-1 times per activation.
 *  - Any probe-free window inside one activation therefore decomposes
 *    into at most M+1 barrier-free segments, where M is the sum of
 *    (period-1) over the function's guard sites. The verifier bounds
 *    the longest barrier-free segment s_max by a longest-path
 *    analysis over the loop tree (statically-bounded probe-free
 *    loops contribute trip_count iterations; unbounded probe-free
 *    cycles in an instrumented module are reported as errors with a
 *    witness), and assembles windows as (M+1) * s_max plus
 *    entry/exit tails.
 *  - Call sites compose callee summaries bottom-up: a callee that may
 *    return without firing extends the caller's segment by its
 *    silent-path weight; a callee that may fire splits the caller's
 *    window with entry_gap/exit_gap pads. Recursive SCCs are solved
 *    by a bounded fixpoint and widened to "unbounded" (with a
 *    diagnostic) if they fail to converge.
 *
 * Guard counters are adversarially phased: the bound holds for every
 * initial counter phase, hence for every execution. The model is
 * exact (static == dynamic) for straight-line code and single
 * guard-only loops with deterministic trip counts, and within a small
 * constant of the dynamic worst case elsewhere.
 */
#ifndef TQ_COMPILER_VERIFIER_H
#define TQ_COMPILER_VERIFIER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/cost_model.h"
#include "compiler/ir.h"

namespace tq::compiler {

/** Sentinel: the stretch could not be bounded statically. */
inline constexpr uint64_t kUnboundedStretch = UINT64_MAX;

/**
 * A reconstructed worst-case path: the concrete block sequence
 * realizing a longest probe-free stretch. Paths through repeated
 * loop iterations are compressed with Repeat steps; long paths are
 * truncated (Truncated marker) rather than dropped.
 */
struct Witness
{
    enum class Kind : uint8_t {
        Block,      ///< execution flows through (fn, block)
        Firing,     ///< a probe fires at (fn, block, instr) — window edge
        EnterCall,  ///< the window continues into the callee of
                    ///< (fn, block, instr)
        Repeat,     ///< the preceding segment repeats `count` more times
        Truncated,  ///< steps were dropped to cap the witness size
    };

    struct Step
    {
        Kind kind = Kind::Block;
        int fn = -1;
        int block = -1;
        int instr = -1;      ///< instruction index, when meaningful
        uint64_t count = 0;  ///< Repeat: additional traversals
    };

    std::vector<Step> steps;

    bool empty() const { return steps.empty(); }
};

enum class Severity : uint8_t { Note, Warning, Error };

/** One structured diagnostic. Errors make VerifyResult::ok false. */
struct Diag
{
    Severity severity = Severity::Error;
    std::string code;     ///< stable machine-readable id, e.g. "unbounded-loop"
    std::string message;  ///< human explanation
    int fn = -1;          ///< function index, -1 when module-level
    int block = -1;       ///< block index, -1 when function-level
    int instr = -1;       ///< instruction index, -1 when block-level
    Witness witness;      ///< worst-case path evidence, when applicable
};

/**
 * Interprocedural stretch summary of one function, in executor units
 * (real instructions; kUnboundedStretch when no finite bound exists).
 * All quantities describe one activation, including callees.
 */
struct FunctionStretch
{
    /** A probe may fire during a call to this function. */
    bool may_fire = false;

    /** The function may return without any probe firing. */
    bool may_not_fire = false;

    /** Max stretch from activation entry to the first firing
     *  (meaningful when may_fire). */
    uint64_t entry_gap = 0;

    /** Max stretch from the last firing to return (when may_fire). */
    uint64_t exit_gap = 0;

    /** Max silent entry-to-return weight (when may_not_fire). */
    uint64_t through = 0;

    /** Max probe-free window lying between two firings of this
     *  activation's dynamic extent (0 when fewer than two firing
     *  points exist). */
    uint64_t internal = 0;

    Witness internal_witness;
    Witness entry_witness;
};

struct VerifyConfig
{
    /** Cycles per IAlu instruction: converts Instr::ext_cost into the
     *  executor's instruction-equivalent stretch charge. */
    double ialu_cycles = CostModel{}.ialu;

    /** When nonzero: fail verification (ok = false, with a diagnostic)
     *  if the proven bound exceeds this many instructions. */
    uint64_t fail_above = 0;
};

struct VerifyResult
{
    /** No structural or boundedness errors, and the proven bound is
     *  within fail_above (when set). */
    bool ok = false;

    /** Sound upper bound on max_stretch_instrs of *any* execution
     *  (kUnboundedStretch when no finite bound exists — always the
     *  case for uninstrumented modules, an error for instrumented
     *  ones). */
    uint64_t max_stretch = 0;

    /** Function index realizing max_stretch, -1 if none. */
    int worst_function = -1;

    /** Path evidence for max_stretch. */
    Witness worst_witness;

    /** Per-function summaries, indexed like Module::functions. */
    std::vector<FunctionStretch> functions;

    std::vector<Diag> diags;

    bool
    has_errors() const
    {
        for (const auto &d : diags)
            if (d.severity == Severity::Error)
                return true;
        return false;
    }
};

/**
 * Verify @p m: structural well-formedness (terminators present,
 * branch targets valid, probe kinds legal, guard periods nonzero,
 * trip counts nonzero), then the whole-module worst-case probe-free
 * stretch. Never mutates or fatals on malformed input — malformations
 * become Error diags and ok = false.
 */
VerifyResult verify_module(const Module &m, const VerifyConfig &cfg = {});

/**
 * Incremental verification driver for placement tools.
 *
 * Construction runs the same whole-module analysis as verify_module
 * and caches everything that is invariant under probe-only edits:
 * per-function CFGs (dominators, loop trees), the call graph, the
 * Tarjan SCC order, and the structural/shape verdicts. After mutating
 * probe instructions of one function in place — deleting a probe,
 * inserting one, or moving one between existing blocks — call
 * refresh(fn): only the edited function's SCC and the call-graph
 * ancestor SCCs whose summaries actually change are re-analyzed,
 * so a verify-after-each-move loop is not O(moves x whole-module).
 *
 * The edit contract: the module referenced at construction must stay
 * alive, and edits between refreshes may not add or remove blocks,
 * change terminators, or add/remove/retarget calls. For such edits,
 * build a fresh ModuleVerifier (or use verify_module).
 */
class ModuleVerifier
{
  public:
    explicit ModuleVerifier(const Module &m, const VerifyConfig &cfg = {});
    ~ModuleVerifier();
    ModuleVerifier(const ModuleVerifier &) = delete;
    ModuleVerifier &operator=(const ModuleVerifier &) = delete;

    /** Current whole-module result (valid until the module is edited). */
    const VerifyResult &result() const;

    /**
     * Re-verify after an in-place probe edit to function @p fn.
     * Returns the updated result; equivalent to (but cheaper than) a
     * fresh verify_module over the current module state.
     */
    const VerifyResult &refresh(int fn);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One-line rendering of a diagnostic (with its witness, if any). */
std::string to_string(const Diag &d, const Module &m);

/** Multi-line human report: bound, per-function table, diagnostics. */
std::string report(const VerifyResult &r, const Module &m);

} // namespace tq::compiler

#endif // TQ_COMPILER_VERIFIER_H
