/**
 * @file
 * Control-flow-graph analyses over the mini-IR: predecessors, reverse
 * post-order, dominator tree, and natural-loop detection. These stand in
 * for the LLVM analyses (LoopSimplify / dominators) the paper's pass runs
 * on the simplified IR before inserting probes (section 4).
 */
#ifndef TQ_COMPILER_CFG_H
#define TQ_COMPILER_CFG_H

#include <vector>

#include "compiler/ir.h"

namespace tq::compiler {

/** One natural loop (merged over back edges sharing a header). */
struct LoopInfo
{
    int header = -1;              ///< loop header block
    std::vector<int> latches;     ///< blocks with back edges to the header
    std::vector<bool> body;       ///< body[b]: block b belongs to this loop
    int depth = 1;                ///< nesting depth (1 = outermost)
    int parent = -1;              ///< index of the enclosing loop, or -1

    bool contains(int block) const { return body[static_cast<size_t>(block)]; }
};

/** CFG facts for one function; construct once, query cheaply. */
class Cfg
{
  public:
    explicit Cfg(const Function &fn);

    /** Successor block ids of @p b (0, 1 or 2 entries). */
    const std::vector<int> &succs(int b) const { return succs_[b]; }

    /** Predecessor block ids of @p b. */
    const std::vector<int> &preds(int b) const { return preds_[b]; }

    /** Blocks in reverse post-order from the entry (unreachable omitted). */
    const std::vector<int> &rpo() const { return rpo_; }

    /** True if block @p b is reachable from the entry. */
    bool reachable(int b) const { return rpo_index_[b] >= 0; }

    /** Immediate dominator of @p b (-1 for the entry / unreachable). */
    int idom(int b) const { return idom_[b]; }

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(int a, int b) const;

    /**
     * Natural loops, innermost-first (children before parents), which is
     * the order the TQ pass instruments them in.
     */
    const std::vector<LoopInfo> &loops() const { return loops_; }

    /** Index into loops() of the innermost loop headed by @p b, or -1. */
    int loop_with_header(int b) const { return header_loop_[b]; }

    /** Innermost loop containing block @p b, or -1. */
    int innermost_loop_of(int b) const { return block_loop_[b]; }

  private:
    void compute_order();
    void compute_dominators();
    void compute_loops();

    int n_;
    std::vector<std::vector<int>> succs_;
    std::vector<std::vector<int>> preds_;
    std::vector<int> rpo_;
    std::vector<int> rpo_index_;  ///< -1 when unreachable
    std::vector<int> idom_;
    std::vector<LoopInfo> loops_;
    std::vector<int> header_loop_;
    std::vector<int> block_loop_;
};

} // namespace tq::compiler

#endif // TQ_COMPILER_CFG_H
