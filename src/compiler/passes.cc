#include "compiler/passes.h"

#include <algorithm>
#include <map>

namespace tq::compiler {

namespace {

/**
 * Instruction-count "size" of one non-probe instruction for placement
 * purposes. Probes are handled by the walkers themselves.
 */
int
instr_size(const Instr &instr, const PassConfig &cfg,
           const std::vector<FunctionSummary> &summaries, int *post_gap)
{
    *post_gap = -1; // -1: no reset inside this instruction
    if (instr.is_probe())
        return 0;
    if (instr.op != Op::Call)
        return 1;
    if (instr.callee < 0)
        return 1 + cfg.ext_call_instrs;
    if (instr.callee < static_cast<int>(summaries.size())) {
        const FunctionSummary &s = summaries[instr.callee];
        if (s.has_probes) {
            // The callee fires probes internally: the pre-call gap must
            // absorb entry_gap, and the post-call gap restarts at
            // exit_gap.
            *post_gap = s.exit_gap;
            return 1 + s.entry_gap;
        }
        return 1 + s.entry_gap; // probe-free callee: its whole path counts
    }
    // Callee not yet summarized (recursion): treat as external.
    return 1 + cfg.ext_call_instrs;
}

/**
 * Walk the instructions of @p block updating a running probe-free gap.
 * Invokes @p on_probe_site(index, gap_before) at every real instruction
 * where inserting a probe is possible; the callback returns true when it
 * inserted a probe (the walker then resets the gap).
 */
struct GapWalk
{
    int gap_in = 0;
    int gap_out = 0;
    bool saw_probe = false;
    int entry_gap = 0; ///< gap when first probe encountered (or total)
    int max_gap = 0;
};

template <typename ProbeHook>
GapWalk
walk_block(const Block &block, const PassConfig &cfg,
           const std::vector<FunctionSummary> &summaries, int gap_in,
           ProbeHook &&hook)
{
    GapWalk w;
    w.gap_in = gap_in;
    int gap = gap_in;
    bool saw = false;
    int entry = 0;
    int max_gap = gap;
    for (size_t i = 0; i < block.instrs.size(); ++i) {
        const Instr &instr = block.instrs[i];
        if (instr.is_probe()) {
            if (!saw) {
                saw = true;
                entry = gap;
            }
            max_gap = std::max(max_gap, gap);
            if (instr.probe == ProbeKind::TqLoopGuard) {
                // The guard may stay silent for period-1 iterations: the
                // residual probe-free stretch after it is bounded by
                // (period - 1) x per-iteration stretch.
                gap = static_cast<int>(instr.period - 1) *
                      static_cast<int>(instr.stretch_hint);
            } else {
                gap = 0;
            }
            continue;
        }
        int post_gap = -1;
        const int size = instr_size(instr, cfg, summaries, &post_gap);
        if (hook(i, gap, size)) {
            // A probe was inserted before this instruction.
            if (!saw) {
                saw = true;
                entry = gap;
            }
            max_gap = std::max(max_gap, gap);
            gap = 0;
        }
        if (post_gap >= 0) {
            // Call into an instrumented function: pre-call gap must cover
            // entry_gap (already in `size` via gap accounting below), and
            // after the call the gap restarts at the callee's exit gap.
            max_gap = std::max(max_gap, gap + size);
            if (!saw) {
                saw = true;
                entry = gap + size;
            }
            gap = post_gap;
        } else {
            gap += size;
        }
    }
    max_gap = std::max(max_gap, gap);
    w.gap_out = gap;
    w.saw_probe = saw;
    w.entry_gap = saw ? entry : gap;
    w.max_gap = max_gap;
    return w;
}

/** No-op probe hook for analysis-only walks. */
struct NoInsert
{
    bool operator()(size_t, int, int) const { return false; }
};

/**
 * Longest per-iteration probe-free stretch over a set of blocks treated
 * as a DAG (back edges ignored). Used for loop bodies and whole
 * functions. Returns facts analogous to StretchFacts but restricted to
 * @p in_set.
 */
StretchFacts
stretch_over_blocks(const Function &fn, const Cfg &cfg,
                    const PassConfig &pass_cfg,
                    const std::vector<FunctionSummary> &summaries,
                    const std::vector<bool> *in_set, int entry_block)
{
    StretchFacts facts;
    const int n = fn.num_blocks();
    std::vector<int> gap_in(static_cast<size_t>(n), -1); // -1: not reached
    std::vector<int> path_in(static_cast<size_t>(n), -1);
    std::vector<int> first_probe_in(static_cast<size_t>(n), -1);
    gap_in[entry_block] = 0;
    path_in[entry_block] = 0;

    auto inside = [&](int b) {
        return !in_set || (*in_set)[static_cast<size_t>(b)];
    };

    for (int b : cfg.rpo()) {
        if (!inside(b) || gap_in[b] < 0)
            continue;
        const Block &block = fn.blocks[static_cast<size_t>(b)];
        const GapWalk w =
            walk_block(block, pass_cfg, summaries, gap_in[b], NoInsert{});
        facts.max_gap = std::max(facts.max_gap, w.max_gap);

        // Longest raw path (no probe resets) through this block.
        int block_size = 0;
        for (const auto &instr : block.instrs) {
            int post = -1;
            block_size += instr_size(instr, pass_cfg, summaries, &post);
        }
        const int path_out = path_in[b] + block_size;

        // Entry gap bookkeeping: the longest path from the region entry to
        // the first probe firing along it.
        int first_probe = first_probe_in[b];
        if (first_probe < 0 && w.saw_probe)
            first_probe = path_in[b] + (w.entry_gap - gap_in[b]);
        if (w.saw_probe)
            facts.has_probes = true;

        const bool is_exit = [&] {
            if (block.term.kind == Terminator::Kind::Ret)
                return true;
            // For loop-body analysis, edges leaving the set are exits.
            for (int s : cfg.succs(b))
                if (!inside(s))
                    return true;
            return false;
        }();
        if (is_exit) {
            facts.exit_gap = std::max(facts.exit_gap, w.gap_out);
            facts.longest_path = std::max(facts.longest_path, path_out);
            facts.entry_gap = std::max(
                facts.entry_gap, first_probe >= 0 ? first_probe : path_out);
        }

        for (int s : cfg.succs(b)) {
            if (!inside(s))
                continue;
            // Skip back edges: targets already placed earlier in RPO and
            // dominating b head loops.
            if (cfg.dominates(s, b))
                continue;
            gap_in[s] = std::max(gap_in[s], w.gap_out);
            path_in[s] = std::max(path_in[s], path_out);
            if (first_probe >= 0)
                first_probe_in[s] = std::max(first_probe_in[s], first_probe);
        }
    }
    if (!facts.has_probes)
        facts.entry_gap = std::max(facts.entry_gap, facts.longest_path);
    return facts;
}

/**
 * Phase A of the TQ pass: straight-line bounding. Walk the function in
 * RPO, tracking the probe-free gap, and insert a TqClock probe in front
 * of any instruction that would push the gap past the bound.
 */
void
tq_bound_straightline(Function &fn, const Cfg &cfg, const PassConfig &pass_cfg,
                      const std::vector<FunctionSummary> &summaries)
{
    const int n = fn.num_blocks();
    std::vector<int> gap_in(static_cast<size_t>(n), 0);
    for (int b : cfg.rpo()) {
        Block &block = fn.blocks[static_cast<size_t>(b)];
        std::vector<Instr> rewritten;
        rewritten.reserve(block.instrs.size());
        const GapWalk w = walk_block(
            block, pass_cfg, summaries, gap_in[b],
            [&](size_t index, int gap, int size) {
                rewritten.push_back(block.instrs[index]);
                if (gap + size > pass_cfg.bound) {
                    // Insert the probe *before* this instruction.
                    rewritten.insert(rewritten.end() - 1,
                                     Instr::make_probe(ProbeKind::TqClock));
                    return true;
                }
                return false;
            });
        // walk_block visited probes without calling the hook; re-emit in
        // order by merging: rewritten currently holds only non-probe
        // instrs (plus inserted probes). Rebuild preserving originals.
        std::vector<Instr> merged;
        merged.reserve(rewritten.size() + 2);
        size_t ri = 0;
        for (const auto &orig : block.instrs) {
            if (orig.is_probe()) {
                merged.push_back(orig);
                continue;
            }
            // Copy any probe inserted before this original instruction.
            while (ri < rewritten.size() && rewritten[ri].is_probe())
                merged.push_back(rewritten[ri++]);
            TQ_CHECK(ri < rewritten.size());
            merged.push_back(rewritten[ri++]);
        }
        while (ri < rewritten.size())
            merged.push_back(rewritten[ri++]);
        block.instrs = std::move(merged);

        for (int s : cfg.succs(b)) {
            if (cfg.dominates(s, b))
                continue; // back edge
            gap_in[s] = std::max(gap_in[s], w.gap_out);
        }
    }
}

/**
 * Phase B of the TQ pass: loop guards, innermost first (paper section
 * 3.1). Loops with small statically-known total work are skipped; other
 * loops get a guard at each latch whose period spreads one probe firing
 * over ~bound instructions.
 */
void
tq_instrument_loops(Function &fn, const PassConfig &pass_cfg,
                    const std::vector<FunctionSummary> &summaries)
{
    // Recompute the CFG after phase A (block ids unchanged; instrs moved).
    Cfg cfg(fn);
    for (const LoopInfo &loop : cfg.loops()) {
        const Block &header = fn.blocks[static_cast<size_t>(loop.header)];

        const StretchFacts body = stretch_over_blocks(
            fn, cfg, pass_cfg, summaries, &loop.body, loop.header);
        const int body_stretch = std::max(
            1, body.has_probes ? body.max_gap : body.longest_path);

        // Statically-bounded loops need no guard.
        const auto &facts = header.loop_facts;
        if (facts.static_trip &&
            static_cast<long>(*facts.static_trip) *
                    static_cast<long>(body_stretch) <=
                pass_cfg.static_skip_limit()) {
            continue;
        }

        const uint32_t period = static_cast<uint32_t>(std::max(
            1, pass_cfg.bound / body_stretch));

        // Gadget selection (paper section 3.1): reuse an induction
        // variable when one exists; clone single-block self-loops so
        // short trip counts bypass instrumentation; otherwise maintain
        // an iteration counter.
        LoopGadget gadget = LoopGadget::Counter;
        const long body_blocks =
            std::count(loop.body.begin(), loop.body.end(), true);
        if (facts.has_induction_var)
            gadget = LoopGadget::Induction;
        else if (body_blocks == 1)
            gadget = LoopGadget::Cloned;

        for (int latch : loop.latches) {
            Block &lb = fn.blocks[static_cast<size_t>(latch)];
            lb.instrs.push_back(Instr::loop_guard(
                period, gadget, static_cast<uint32_t>(body_stretch)));
        }
    }
}

} // namespace

StretchFacts
analyze_stretch(const Function &fn, const PassConfig &cfg,
                const std::vector<FunctionSummary> &summaries)
{
    Cfg g(fn);
    return stretch_over_blocks(fn, g, cfg, summaries, nullptr, 0);
}

std::vector<FunctionSummary>
run_tq_pass(Module &m, const PassConfig &cfg)
{
    validate(m);
    std::vector<FunctionSummary> summaries(m.functions.size());

    // Process callees before callers so call sites can use summaries.
    // Cycles (recursion) fall back to external-call treatment.
    std::vector<uint8_t> state(m.functions.size(), 0); // 0 new 1 open 2 done
    std::vector<int> order;
    auto dfs = [&](auto &&self, int f) -> void {
        state[static_cast<size_t>(f)] = 1;
        for (const auto &b : m.functions[static_cast<size_t>(f)].blocks)
            for (const auto &i : b.instrs)
                if (i.op == Op::Call && i.callee >= 0 &&
                    state[static_cast<size_t>(i.callee)] == 0)
                    self(self, i.callee);
        state[static_cast<size_t>(f)] = 2;
        order.push_back(f);
    };
    for (int f = 0; f < static_cast<int>(m.functions.size()); ++f)
        if (state[static_cast<size_t>(f)] == 0)
            dfs(dfs, f);

    for (int f : order) {
        Function &fn = m.functions[static_cast<size_t>(f)];
        {
            Cfg g(fn);
            tq_bound_straightline(fn, g, cfg, summaries);
        }
        tq_instrument_loops(fn, cfg, summaries);
        const StretchFacts facts = analyze_stretch(fn, cfg, summaries);
        FunctionSummary &s = summaries[static_cast<size_t>(f)];
        s.has_probes = facts.has_probes;
        s.entry_gap = facts.entry_gap;
        s.exit_gap = facts.has_probes ? facts.exit_gap : facts.entry_gap;
    }
    validate(m);
    return summaries;
}

namespace {

void
run_ci_like_pass(Module &m, const PassConfig &cfg, ProbeKind kind)
{
    validate(m);
    for (Function &fn : m.functions) {
        Cfg g(fn);
        const int n = fn.num_blocks();

        // Per-block instruction counts (external calls charged like TQ).
        std::vector<uint32_t> count(static_cast<size_t>(n), 0);
        for (int b = 0; b < n; ++b) {
            int total = 0;
            for (const auto &i : fn.blocks[static_cast<size_t>(b)].instrs) {
                int post = -1;
                total += instr_size(i, cfg, {}, &post);
            }
            count[static_cast<size_t>(b)] = static_cast<uint32_t>(total);
        }

        // SESE-style chain merging: a block whose single successor has a
        // single predecessor defers its increment into that successor.
        std::vector<bool> needs_probe(static_cast<size_t>(n), true);
        if (cfg.ci_merge_chains) {
            for (int b : g.rpo()) {
                const Block &blk = fn.blocks[static_cast<size_t>(b)];
                if (blk.term.kind == Terminator::Kind::Jump) {
                    const int s = blk.term.target;
                    if (g.preds(s).size() == 1 && !g.dominates(s, b)) {
                        count[static_cast<size_t>(s)] +=
                            count[static_cast<size_t>(b)];
                        count[static_cast<size_t>(b)] = 0;
                        needs_probe[static_cast<size_t>(b)] = false;
                    }
                }
            }
        }

        for (int b = 0; b < n; ++b) {
            if (!g.reachable(b) || !needs_probe[static_cast<size_t>(b)])
                continue;
            Block &blk = fn.blocks[static_cast<size_t>(b)];
            blk.instrs.push_back(
                Instr::make_probe(kind, count[static_cast<size_t>(b)]));
        }
    }
    validate(m);
}

} // namespace

void
run_ci_pass(Module &m, const PassConfig &cfg)
{
    run_ci_like_pass(m, cfg, ProbeKind::CiCounter);
}

void
run_ci_cycles_pass(Module &m, const PassConfig &cfg)
{
    run_ci_like_pass(m, cfg, ProbeKind::CiCycles);
}

} // namespace tq::compiler
