/**
 * @file
 * Timing executor for (instrumented) mini-IR modules.
 *
 * Interprets a module against the CostModel, drawing variable load
 * latencies and branch outcomes from a seeded RNG, and emulates the
 * run-time behaviour of each instrumentation technique:
 *
 *  - TqClock probes read the (simulated) physical clock and yield when
 *    the quantum expired — timing error is the clock overshoot only.
 *  - CiCounter probes accumulate an instruction counter and yield when it
 *    crosses quantum/assumed-IPC — timing error includes the full
 *    cycle-to-instruction translation error (paper section 3.1).
 *  - CiCycles probes gate a clock check on the counter crossing.
 *  - TqLoopGuard probes charge their per-iteration gadget cost and invoke
 *    the clock check every `period` iterations.
 *
 * The executor reports probing overhead (probe cycles / real-work
 * cycles), yield-timing mean absolute error, and the longest observed
 * probe-free stretch — the empirical check of the placement invariant.
 */
#ifndef TQ_COMPILER_EXEC_H
#define TQ_COMPILER_EXEC_H

#include <cstdint>

#include "common/rng.h"
#include "compiler/cost_model.h"
#include "compiler/ir.h"

namespace tq::compiler {

/** Executor configuration. */
struct ExecConfig
{
    CostModel cost;

    /** Target quantum in cycles (e.g. 2us * 2.1 GHz = 4200). */
    double quantum_cycles = 4200;

    /**
     * Cycles-per-instruction ratio CI uses to translate the quantum into
     * an instruction budget (profiled or assumed; the translation is the
     * fundamental inaccuracy of counter-based probing).
     */
    double ci_assumed_cpi = 1.2;

    uint64_t seed = 1;

    /** Abort runaway programs after this many real instructions. */
    uint64_t max_instrs = 200'000'000;
};

/** Measurements from one execution. */
struct ExecResult
{
    double total_cycles = 0;   ///< real work + instrumentation
    double probe_cycles = 0;   ///< instrumentation only
    uint64_t real_instrs = 0;  ///< non-probe instructions executed
    uint64_t probe_sites_hit = 0; ///< dynamic probe executions
    uint64_t yields = 0;

    /** Mean absolute error of yield timing vs the quantum, in cycles. */
    double yield_mae_cycles = 0;

    /** Longest probe-free stretch observed, in instructions. */
    uint64_t max_stretch_instrs = 0;

    /** Probing overhead: instrumentation cycles / real-work cycles. */
    double
    overhead() const
    {
        const double base = total_cycles - probe_cycles;
        return base > 0 ? probe_cycles / base : 0.0;
    }
};

/**
 * Execute @p m from its entry function and return measurements.
 * The module may be uninstrumented (no probes), in which case overhead
 * and yield stats are zero and total_cycles is the baseline runtime.
 */
ExecResult execute(const Module &m, const ExecConfig &cfg);

} // namespace tq::compiler

#endif // TQ_COMPILER_EXEC_H
