#include "compiler/report.h"

#include "compiler/verifier.h"

namespace tq::compiler {

TechniqueMetrics
measure_technique(const Module &m, ProbeKind technique,
                  const PassConfig &pass_cfg, const ExecConfig &exec_cfg)
{
    Module inst = m; // instrument a copy
    switch (technique) {
      case ProbeKind::TqClock:
        run_tq_pass(inst, pass_cfg);
        break;
      case ProbeKind::CiCounter:
        run_ci_pass(inst, pass_cfg);
        break;
      case ProbeKind::CiCycles:
        run_ci_cycles_pass(inst, pass_cfg);
        break;
      default:
        tq::fatal("measure_technique: not a technique kind");
    }

    const ExecResult res = execute(inst, exec_cfg);

    TechniqueMetrics tm;
    tm.overhead = res.overhead();
    tm.mae_ns = res.yield_mae_cycles / exec_cfg.cost.cycles_per_ns;
    tm.yields = res.yields;
    for (const auto &fn : inst.functions)
        tm.static_probes += fn.probe_count();
    const VerifyResult vr = verify_module(inst);
    tm.verified = vr.ok;
    tm.static_bound = vr.max_stretch;
    return tm;
}

ComparisonRow
compare_techniques(const Module &m, const PassConfig &pass_cfg,
                   const ExecConfig &exec_cfg)
{
    ComparisonRow row;
    row.workload = m.name;
    row.ci = measure_technique(m, ProbeKind::CiCounter, pass_cfg, exec_cfg);
    row.ci_cycles =
        measure_technique(m, ProbeKind::CiCycles, pass_cfg, exec_cfg);
    row.tq = measure_technique(m, ProbeKind::TqClock, pass_cfg, exec_cfg);
    return row;
}

} // namespace tq::compiler
