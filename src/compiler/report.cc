#include "compiler/report.h"

#include "compiler/verifier.h"

namespace tq::compiler {

namespace {

/** Execute an instrumented module and collect the Table-3 metrics. */
TechniqueMetrics
finish_metrics(const Module &inst, const ExecConfig &exec_cfg)
{
    const ExecResult res = execute(inst, exec_cfg);

    TechniqueMetrics tm;
    tm.overhead = res.overhead();
    tm.mae_ns = res.yield_mae_cycles / exec_cfg.cost.cycles_per_ns;
    tm.yields = res.yields;
    for (const auto &fn : inst.functions)
        tm.static_probes += fn.probe_count();
    const VerifyResult vr = verify_module(inst);
    tm.verified = vr.ok;
    tm.static_bound = vr.max_stretch;
    return tm;
}

} // namespace

TechniqueMetrics
measure_technique(const Module &m, ProbeKind technique,
                  const PassConfig &pass_cfg, const ExecConfig &exec_cfg)
{
    Module inst = m; // instrument a copy
    switch (technique) {
      case ProbeKind::TqClock:
        run_tq_pass(inst, pass_cfg);
        break;
      case ProbeKind::CiCounter:
        run_ci_pass(inst, pass_cfg);
        break;
      case ProbeKind::CiCycles:
        run_ci_cycles_pass(inst, pass_cfg);
        break;
      default:
        tq::fatal("measure_technique: not a technique kind");
    }

    return finish_metrics(inst, exec_cfg);
}

TechniqueMetrics
measure_tq_optimized(const Module &m, const PassConfig &pass_cfg,
                     const ExecConfig &exec_cfg, OptimizerResult *opt_out)
{
    Module inst = m;
    run_tq_pass(inst, pass_cfg);
    const OptimizerResult opt = optimize_placement(inst, OptimizerConfig{});
    if (opt_out)
        *opt_out = opt;

    TechniqueMetrics tm = finish_metrics(inst, exec_cfg);
    // The placement only counts as verified if the optimizer's own
    // accept loop agreed end to end (a failed optimize leaves the
    // module untouched, and finish_metrics re-proves it regardless).
    tm.verified = tm.verified && opt.ok;
    return tm;
}

ComparisonRow
compare_techniques(const Module &m, const PassConfig &pass_cfg,
                   const ExecConfig &exec_cfg)
{
    ComparisonRow row;
    row.workload = m.name;
    row.ci = measure_technique(m, ProbeKind::CiCounter, pass_cfg, exec_cfg);
    row.ci_cycles =
        measure_technique(m, ProbeKind::CiCycles, pass_cfg, exec_cfg);
    row.tq = measure_technique(m, ProbeKind::TqClock, pass_cfg, exec_cfg);
    row.tq_opt =
        measure_tq_optimized(m, pass_cfg, exec_cfg, &row.tq_opt_info);
    return row;
}

} // namespace tq::compiler
