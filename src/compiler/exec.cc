#include "compiler/exec.h"

#include <cmath>
#include <unordered_map>
#include <vector>

namespace tq::compiler {

namespace {

/** One activation record of the interpreter. */
struct Frame
{
    int fn = 0;
    int block = 0;
    size_t instr = 0;
    /** TripCount branch state: remaining iterations per latch block. */
    std::unordered_map<int, uint64_t> trips;
    /** Loop-guard iteration counts keyed by (block << 16 | instr index). */
    std::unordered_map<int64_t, uint64_t> guard_iters;
};

} // namespace

ExecResult
execute(const Module &m, const ExecConfig &cfg)
{
    validate(m);
    ExecResult r;
    Rng rng(cfg.seed);
    const CostModel &cm = cfg.cost;

    const double target_icount = cfg.quantum_cycles / cfg.ci_assumed_cpi;

    double last_yield = 0;       // total_cycles at the previous yield
    double ci_counter = 0;       // CI instruction counter
    uint64_t stretch = 0;        // instrs since the last probe check
    double abs_err_sum = 0;

    auto charge_real = [&](double cycles) {
        r.total_cycles += cycles;
        ++r.real_instrs;
        ++stretch;
        if (stretch > r.max_stretch_instrs)
            r.max_stretch_instrs = stretch;
    };
    auto charge_probe = [&](double cycles) {
        r.total_cycles += cycles;
        r.probe_cycles += cycles;
    };
    auto do_yield = [&] {
        const double since = r.total_cycles - last_yield;
        abs_err_sum += std::fabs(since - cfg.quantum_cycles);
        ++r.yields;
        last_yield = r.total_cycles;
    };
    auto clock_check = [&] {
        // A probe site where yielding was possible: stretch resets.
        stretch = 0;
        ++r.probe_sites_hit;
        if (r.total_cycles - last_yield >= cfg.quantum_cycles)
            do_yield();
    };

    std::vector<Frame> stack;
    stack.push_back(Frame{});

    while (!stack.empty()) {
        Frame &f = stack.back();
        const Function &fn = m.functions[static_cast<size_t>(f.fn)];
        const Block &blk = fn.blocks[static_cast<size_t>(f.block)];

        if (r.real_instrs > cfg.max_instrs)
            tq::fatal("execute: instruction budget exceeded (runaway IR?)");

        if (f.instr < blk.instrs.size()) {
            const Instr &ins = blk.instrs[f.instr];
            ++f.instr;
            switch (ins.op) {
              case Op::Probe:
                switch (ins.probe) {
                  case ProbeKind::TqClock:
                    charge_probe(cm.tq_probe);
                    clock_check();
                    break;
                  case ProbeKind::CiCounter:
                    charge_probe(cm.ci_probe);
                    ci_counter += ins.ci_increment;
                    stretch = 0;
                    ++r.probe_sites_hit;
                    if (ci_counter >= target_icount) {
                        do_yield();
                        ci_counter = 0;
                    }
                    break;
                  case ProbeKind::CiCycles:
                    charge_probe(cm.ci_probe);
                    ci_counter += ins.ci_increment;
                    stretch = 0;
                    ++r.probe_sites_hit;
                    if (ci_counter >= target_icount) {
                        charge_probe(cm.ci_cycles_extra);
                        if (r.total_cycles - last_yield >=
                            cfg.quantum_cycles) {
                            do_yield();
                        }
                        ci_counter = 0;
                    }
                    break;
                  case ProbeKind::TqLoopGuard: {
                    switch (ins.gadget) {
                      case LoopGadget::Counter:
                        charge_probe(cm.loop_counter);
                        break;
                      case LoopGadget::Induction:
                        charge_probe(cm.loop_induction);
                        break;
                      case LoopGadget::Cloned:
                        // Runtime-selected instrumented clone: no
                        // per-iteration bookkeeping cost.
                        break;
                    }
                    const int64_t key =
                        (static_cast<int64_t>(f.block) << 16) |
                        static_cast<int64_t>(f.instr - 1);
                    const uint64_t count = ++f.guard_iters[key];
                    if (count % ins.period == 0) {
                        charge_probe(cm.tq_probe);
                        clock_check();
                    }
                    break;
                  }
                  case ProbeKind::None:
                    TQ_CHECK(false);
                }
                break;
              case Op::Load: {
                const bool miss = rng.bernoulli(cm.load_miss_rate);
                charge_real(miss ? cm.load_miss : cm.load_hit);
                break;
              }
              case Op::Call:
                charge_real(cm.call_overhead);
                if (ins.callee >= 0) {
                    if (stack.size() > 512)
                        tq::fatal("execute: call depth limit exceeded");
                    Frame callee;
                    callee.fn = ins.callee;
                    stack.push_back(std::move(callee));
                    // NOTE: `f` is invalidated; restart dispatch loop.
                } else {
                    // External call: opaque block of real work.
                    r.total_cycles += ins.ext_cost;
                    r.real_instrs +=
                        static_cast<uint64_t>(ins.ext_cost / cm.ialu);
                    stretch +=
                        static_cast<uint64_t>(ins.ext_cost / cm.ialu);
                    if (stretch > r.max_stretch_instrs)
                        r.max_stretch_instrs = stretch;
                }
                break;
              default:
                charge_real(cm.expected(ins.op));
                break;
            }
            continue;
        }

        // Block exhausted: follow the terminator.
        switch (blk.term.kind) {
          case Terminator::Kind::Ret:
            stack.pop_back();
            break;
          case Terminator::Kind::Jump:
            f.block = blk.term.target;
            f.instr = 0;
            break;
          case Terminator::Kind::Branch: {
            bool take;
            if (blk.term.model.kind == BranchModel::Kind::TripCount) {
                auto [it, inserted] =
                    f.trips.try_emplace(f.block, blk.term.model.trip_count);
                if (--it->second > 0) {
                    take = true;
                } else {
                    f.trips.erase(it);
                    take = false;
                }
            } else {
                take = rng.bernoulli(blk.term.model.prob);
            }
            f.block = take ? blk.term.target : blk.term.target_else;
            f.instr = 0;
            break;
          }
        }
    }

    r.yield_mae_cycles = r.yields ? abs_err_sum / static_cast<double>(r.yields)
                                  : 0.0;
    return r;
}

} // namespace tq::compiler
