/**
 * @file
 * Verify-guided probe placement refinement (DESIGN.md section 4h).
 *
 * The TQ/CI placement passes (passes.h) are one-shot heuristics: they
 * over-place wherever the static skip estimate is conservative, so
 * instrumented modules carry probes the proof does not need. This pass
 * closes the loop with the static verifier: starting from a placement
 * whose bound verify_module already proves, it greedily deletes and
 * hoists probes, re-proving the target bound after every move and
 * rolling the move back when the proof no longer goes through.
 *
 * Objective: minimize static probe count (and thereby dynamic probe
 * executions) subject to `verify_module` continuing to prove
 * max_stretch <= target. The verifier is the only oracle — no fudge
 * factors; a move survives iff the proof does.
 *
 * Move set:
 *  - Delete: remove any probe. A deleted CiCounter/CiCycles probe
 *    folds its ci_increment into the next same-kind probe in the same
 *    block, or into the first same-kind probe of its block's
 *    unconditional Jump successor, so chain counts are conserved when
 *    a downstream probe exists (otherwise the increment is dropped —
 *    CI timing accuracy is a non-goal, the preserved property is the
 *    stretch bound).
 *  - Hoist: move a straight-line TqClock probe out of its innermost
 *    loop to the loop's unique exit target, cutting per-iteration
 *    dynamic cost to per-activation cost. Loop guards are never
 *    hoisted (their per-frame counter is the loop's soft barrier).
 *
 * Candidates are ranked by slack — the gap between the target and the
 * owning function's proven contribution — so probes in far-from-tight
 * regions go first. Verification after each move is incremental
 * (ModuleVerifier::refresh re-summarizes only the edited function and
 * the call-graph ancestors whose summaries change), so the loop costs
 * O(moves x touched-SCCs), not O(moves x whole-module).
 *
 * Both move kinds strictly reduce (probe count, total loop depth of
 * probe sites), so rounds terminate; max_rounds is a safety valve.
 */
#ifndef TQ_COMPILER_OPTIMIZER_H
#define TQ_COMPILER_OPTIMIZER_H

#include <cstdint>
#include <vector>

#include "compiler/ir.h"
#include "compiler/verifier.h"

namespace tq::compiler {

/** A probe site: function / block / instruction index. */
struct ProbeRef
{
    int fn = -1;
    int block = -1;
    int instr = -1;
};

/** One applied (kept) move, for reporting and replay in tests. */
struct OptMove
{
    enum class Kind : uint8_t { Delete, Hoist };
    Kind kind = Kind::Delete;
    ProbeRef probe;      ///< site before the move
    int dest_block = -1; ///< Hoist: block the probe moved to
};

struct OptimizerConfig
{
    /** Stretch bound the optimized placement must still prove. 0 means
     *  "the input placement's own proven bound": never loosen, only
     *  shed probes the existing proof does not need. An explicit value
     *  below the input's proven bound turns the loop into budget
     *  search: only strictly-tightening moves are kept until the bound
     *  crosses the target (guard deletion shrinks the verifier's
     *  window multiplier, so bounds can tighten by orders of
     *  magnitude); a missed budget restores the module byte-exact and
     *  reports ok = false. */
    uint64_t target_bound = 0;

    bool enable_delete = true;
    bool enable_hoist = true;

    /** Max delete+hoist rounds (each round re-ranks candidates). */
    int max_rounds = 8;

    /** Verifier configuration (ialu_cycles must match the executor's
     *  cost model for external-call weights to line up). */
    VerifyConfig verify;
};

struct OptimizerResult
{
    /** The input placement verified, and the final placement proves
     *  max_stretch <= target. False => the module is untouched. */
    bool ok = false;

    /** At least one move was kept (module differs from the input). */
    bool changed = false;

    uint64_t target = 0;        ///< resolved target bound
    uint64_t initial_bound = 0; ///< proven bound of the input placement
    uint64_t final_bound = 0;   ///< proven bound of the output placement
    int initial_probes = 0;
    int final_probes = 0;

    int rounds = 0;      ///< delete+hoist rounds executed
    int attempted = 0;   ///< moves tried (kept + rolled back)
    int rolled_back = 0; ///< moves undone because the proof failed
    int deleted = 0;     ///< probes removed
    int hoisted = 0;     ///< probes moved out of a loop

    std::vector<OptMove> moves; ///< kept moves, in application order
};

/**
 * Refine the placement of @p m in place. On failure (the input
 * placement does not verify, or an unexpectedly-unprovable target) the
 * module is left exactly as given and ok = false. The fixed-quantum
 * pass pipeline never calls this — it is an explicit opt-in stage.
 */
OptimizerResult optimize_placement(Module &m,
                                   const OptimizerConfig &cfg = {});

} // namespace tq::compiler

#endif // TQ_COMPILER_OPTIMIZER_H
