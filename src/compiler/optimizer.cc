#include "compiler/optimizer.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <tuple>

#include "compiler/cfg.h"

namespace tq::compiler {

namespace {

/** The proven stretch this function contributes to the module bound:
 *  its internal window, plus — for the entry function — the leading /
 *  trailing / silent whole-run windows. */
uint64_t
fn_contribution(const FunctionStretch &s, int fi)
{
    uint64_t c = s.internal;
    if (fi == 0) {
        if (s.may_fire) {
            c = std::max(c, s.entry_gap);
            c = std::max(c, s.exit_gap);
        }
        if (s.may_not_fire)
            c = std::max(c, s.through);
    }
    return c;
}

struct Candidate
{
    uint64_t slack = 0;
    ProbeRef p;
    int depth = 0; ///< loop depth of the site (hoist ranking)
};

/**
 * Rank order for one delete pass. Slack is per-function, so all
 * candidates of one function are contiguous; within a block the
 * descending instruction index means a kept deletion never shifts the
 * index of a candidate still in the list.
 */
bool
delete_order(const Candidate &x, const Candidate &y)
{
    return std::make_tuple(~x.slack, x.p.fn, x.p.block, -x.p.instr) <
           std::make_tuple(~y.slack, y.p.fn, y.p.block, -y.p.instr);
}

/** Hoist passes re-enumerate after every kept move, so the order only
 *  picks what to try next: deepest loops in the slackest functions. */
bool
hoist_order(const Candidate &x, const Candidate &y)
{
    return std::make_tuple(~x.slack, x.p.fn, -x.depth, x.p.block,
                           -x.p.instr) <
           std::make_tuple(~y.slack, y.p.fn, -y.depth, y.p.block,
                           -y.p.instr);
}

struct Optimizer
{
    Module &m;
    const OptimizerConfig &cfg;
    OptimizerResult &res;
    ModuleVerifier mv;
    std::vector<Cfg> cfgs;
    uint64_t target = 0;
    /** Tightest bound proven so far; gates descent-mode acceptance. */
    uint64_t best = 0;

    Optimizer(Module &mod, const OptimizerConfig &c, OptimizerResult &r)
        : m(mod), cfg(c), res(r), mv(mod, c.verify)
    {
        cfgs.reserve(m.functions.size());
        for (const auto &fn : m.functions)
            cfgs.emplace_back(fn);
    }

    uint64_t
    slack_of(int fi) const
    {
        const uint64_t c = fn_contribution(
            mv.result().functions[static_cast<size_t>(fi)], fi);
        return target > c ? target - c : 0;
    }

    /** Re-verify after an edit to fn. A move is kept when the target
     *  still holds — or, while the placement is still descending from
     *  an initial bound above an explicit target, when it strictly
     *  tightens the proof (guard deletion shrinks the window
     *  multiplier M, so descent is how a budget below the initial
     *  bound gets reached at all). */
    bool
    accept(int fn)
    {
        const VerifyResult &vr = mv.refresh(fn);
        if (!vr.ok)
            return false;
        if (vr.max_stretch <= target) {
            best = vr.max_stretch;
            return true;
        }
        if (best > target && vr.max_stretch < best) {
            best = vr.max_stretch;
            return true;
        }
        return false;
    }

    // -- Delete ------------------------------------------------------

    struct DeleteUndo
    {
        Instr saved;
        int fold_block = -1;
        int fold_instr = -1;
        uint32_t folded = 0;
    };

    /** Find the downstream probe a removed CI probe's count folds
     *  into: next same-kind probe in the block, else the first one in
     *  the block's unconditional Jump successor. */
    std::pair<int, int>
    fold_target(int fi, int bi, int from, ProbeKind kind) const
    {
        const Function &fn = m.functions[static_cast<size_t>(fi)];
        const Block &b = fn.blocks[static_cast<size_t>(bi)];
        for (size_t i = static_cast<size_t>(from); i < b.instrs.size();
             ++i)
            if (b.instrs[i].is_probe() && b.instrs[i].probe == kind)
                return {bi, static_cast<int>(i)};
        if (b.term.kind == Terminator::Kind::Jump) {
            const Block &nb =
                fn.blocks[static_cast<size_t>(b.term.target)];
            for (size_t i = 0; i < nb.instrs.size(); ++i)
                if (nb.instrs[i].is_probe() && nb.instrs[i].probe == kind)
                    return {b.term.target, static_cast<int>(i)};
        }
        return {-1, -1};
    }

    DeleteUndo
    apply_delete(const ProbeRef &p)
    {
        Function &fn = m.functions[static_cast<size_t>(p.fn)];
        Block &b = fn.blocks[static_cast<size_t>(p.block)];
        DeleteUndo u;
        u.saved = b.instrs[static_cast<size_t>(p.instr)];
        b.instrs.erase(b.instrs.begin() + p.instr);
        const bool ci = u.saved.probe == ProbeKind::CiCounter ||
                        u.saved.probe == ProbeKind::CiCycles;
        if (ci && u.saved.ci_increment > 0) {
            const auto [fb, fi2] =
                fold_target(p.fn, p.block, p.instr, u.saved.probe);
            if (fb >= 0) {
                fn.blocks[static_cast<size_t>(fb)]
                    .instrs[static_cast<size_t>(fi2)]
                    .ci_increment += u.saved.ci_increment;
                u.fold_block = fb;
                u.fold_instr = fi2;
                u.folded = u.saved.ci_increment;
            }
        }
        return u;
    }

    void
    undo_delete(const ProbeRef &p, const DeleteUndo &u)
    {
        Function &fn = m.functions[static_cast<size_t>(p.fn)];
        if (u.fold_block >= 0)
            fn.blocks[static_cast<size_t>(u.fold_block)]
                .instrs[static_cast<size_t>(u.fold_instr)]
                .ci_increment -= u.folded;
        Block &b = fn.blocks[static_cast<size_t>(p.block)];
        b.instrs.insert(b.instrs.begin() + p.instr, u.saved);
    }

    bool
    delete_pass()
    {
        std::vector<Candidate> cands;
        for (size_t fi = 0; fi < m.functions.size(); ++fi) {
            const uint64_t slack = slack_of(static_cast<int>(fi));
            const Function &fn = m.functions[fi];
            for (size_t bi = 0; bi < fn.blocks.size(); ++bi)
                for (size_t ii = 0; ii < fn.blocks[bi].instrs.size();
                     ++ii)
                    if (fn.blocks[bi].instrs[ii].is_probe())
                        cands.push_back(
                            {slack,
                             {static_cast<int>(fi), static_cast<int>(bi),
                              static_cast<int>(ii)},
                             0});
        }
        std::sort(cands.begin(), cands.end(), delete_order);

        bool progress = false;
        for (const Candidate &c : cands) {
            const DeleteUndo u = apply_delete(c.p);
            ++res.attempted;
            if (accept(c.p.fn)) {
                progress = true;
                ++res.deleted;
                res.changed = true;
                res.moves.push_back(
                    {OptMove::Kind::Delete, c.p, -1});
            } else {
                undo_delete(c.p, u);
                mv.refresh(c.p.fn);
                ++res.rolled_back;
            }
        }
        return progress;
    }

    // -- Hoist -------------------------------------------------------

    /** The unique block outside loop @p li that the loop exits to, or
     *  -1 when exits are missing or split. */
    int
    unique_exit_target(int fi, int li) const
    {
        const Cfg &cfg_ = cfgs[static_cast<size_t>(fi)];
        const LoopInfo &loop =
            cfg_.loops()[static_cast<size_t>(li)];
        int exit = -1;
        for (size_t b = 0; b < loop.body.size(); ++b) {
            if (!loop.body[b])
                continue;
            for (int s : cfg_.succs(static_cast<int>(b))) {
                if (loop.contains(s))
                    continue;
                if (exit >= 0 && exit != s)
                    return -1;
                exit = s;
            }
        }
        return exit;
    }

    std::vector<Candidate>
    hoist_candidates() const
    {
        std::vector<Candidate> cands;
        for (size_t fi = 0; fi < m.functions.size(); ++fi) {
            const uint64_t slack = slack_of(static_cast<int>(fi));
            const Function &fn = m.functions[fi];
            const Cfg &cfg_ = cfgs[fi];
            for (size_t bi = 0; bi < fn.blocks.size(); ++bi) {
                const int li =
                    cfg_.innermost_loop_of(static_cast<int>(bi));
                if (li < 0)
                    continue;
                const int depth =
                    cfg_.loops()[static_cast<size_t>(li)].depth;
                for (size_t ii = 0; ii < fn.blocks[bi].instrs.size();
                     ++ii) {
                    const Instr &ins = fn.blocks[bi].instrs[ii];
                    if (ins.is_probe() &&
                        ins.probe == ProbeKind::TqClock)
                        cands.push_back(
                            {slack,
                             {static_cast<int>(fi), static_cast<int>(bi),
                              static_cast<int>(ii)},
                             depth});
                }
            }
        }
        std::sort(cands.begin(), cands.end(), hoist_order);
        return cands;
    }

    bool
    hoist_pass()
    {
        bool progress = false;
        // Sites that already failed this pass; cleared after a kept
        // move because instruction indices shift.
        std::set<std::tuple<int, int, int>> failed;
        for (;;) {
            const std::vector<Candidate> cands = hoist_candidates();
            bool tried = false;
            for (const Candidate &c : cands) {
                if (failed.count({c.p.fn, c.p.block, c.p.instr}))
                    continue;
                const int li =
                    cfgs[static_cast<size_t>(c.p.fn)].innermost_loop_of(
                        c.p.block);
                const int dest = unique_exit_target(c.p.fn, li);
                if (dest < 0) {
                    failed.insert({c.p.fn, c.p.block, c.p.instr});
                    continue;
                }
                tried = true;
                Function &fn =
                    m.functions[static_cast<size_t>(c.p.fn)];
                Block &src =
                    fn.blocks[static_cast<size_t>(c.p.block)];
                const Instr saved =
                    src.instrs[static_cast<size_t>(c.p.instr)];
                src.instrs.erase(src.instrs.begin() + c.p.instr);
                Block &db = fn.blocks[static_cast<size_t>(dest)];
                db.instrs.insert(db.instrs.begin(), saved);
                ++res.attempted;
                if (accept(c.p.fn)) {
                    progress = true;
                    ++res.hoisted;
                    res.changed = true;
                    res.moves.push_back(
                        {OptMove::Kind::Hoist, c.p, dest});
                    failed.clear();
                } else {
                    db.instrs.erase(db.instrs.begin());
                    src.instrs.insert(src.instrs.begin() + c.p.instr,
                                      saved);
                    mv.refresh(c.p.fn);
                    ++res.rolled_back;
                    failed.insert({c.p.fn, c.p.block, c.p.instr});
                }
                break;
            }
            if (!tried)
                return progress;
        }
    }
};

} // namespace

OptimizerResult
optimize_placement(Module &m, const OptimizerConfig &cfg)
{
    OptimizerResult res;
    res.initial_probes = m.probe_count();
    res.final_probes = res.initial_probes;

    Optimizer opt(m, cfg, res);
    const VerifyResult &vr0 = opt.mv.result();
    res.initial_bound = vr0.max_stretch;
    res.final_bound = vr0.max_stretch;
    res.target =
        cfg.target_bound != 0 ? cfg.target_bound : vr0.max_stretch;
    opt.target = res.target;

    if (!vr0.ok)
        return res; // broken placement: nothing to refine under
    opt.best = vr0.max_stretch;

    // An explicit target below the initial bound runs the same loop in
    // descent mode (only strictly-tightening moves are kept until the
    // bound crosses the target); all-or-nothing — a missed budget
    // restores the module byte-exact.
    const bool descending = vr0.max_stretch > res.target;
    Module saved;
    if (descending)
        saved = m;

    for (int round = 0; round < cfg.max_rounds; ++round) {
        bool progress = false;
        if (cfg.enable_delete)
            progress |= opt.delete_pass();
        if (cfg.enable_hoist)
            progress |= opt.hoist_pass();
        ++res.rounds;
        if (!progress)
            break;
    }

    const VerifyResult &vr = opt.mv.result();
    res.final_bound = vr.max_stretch;
    res.final_probes = m.probe_count();
    res.ok = vr.ok && vr.max_stretch <= res.target;
    if (!res.ok && descending) {
        m = std::move(saved);
        res.changed = false;
        res.deleted = 0;
        res.hoisted = 0;
        res.moves.clear();
        res.final_bound = res.initial_bound;
        res.final_probes = res.initial_probes;
    }
    return res;
}

} // namespace tq::compiler
