/**
 * @file
 * Probe instrumentation passes.
 *
 * Three techniques from the paper's evaluation (sections 3.1, 5.6):
 *
 *  - TqPass: the paper's contribution. Physical-clock probes placed
 *    sparsely, bounding the longest uninstrumented execution path; loops
 *    get a guard gadget that invokes the probe every K iterations, with
 *    the induction-variable and self-loop-cloning optimizations.
 *  - CiPass: the instruction-counter state of the art ("Compiler
 *    Interrupt"). A counter-maintaining probe in (almost) every basic
 *    block; yields when the counter crosses a cycle-translated threshold.
 *  - CiCyclesPass: CI placement, but a crossing of the counter threshold
 *    gates a physical-clock check (the hybrid variant of Table 3).
 *
 * Placement distances are measured in *instructions* (paper section 3.1:
 * TQ bounds "the maximum number of instructions of any execution paths
 * between two probes"); yield timing is always decided at run time by the
 * technique's own mechanism.
 */
#ifndef TQ_COMPILER_PASSES_H
#define TQ_COMPILER_PASSES_H

#include <vector>

#include "compiler/cfg.h"
#include "compiler/ir.h"

namespace tq::compiler {

/** Tuning knobs shared by the passes. */
struct PassConfig
{
    /**
     * TQ: maximum number of real instructions on any execution path
     * between consecutive probe firings (up to loop-guard rounding).
     * Smaller bounds support smaller minimum quanta at the price of more
     * probes.
     */
    int bound = 400;

    /** Instruction-equivalent cost charged for a call to an
     *  uninstrumented (external) function (paper section 3.1). */
    int ext_call_instrs = 25;

    /** CI: merge the probes of single-entry single-exit straight-line
     *  chains into one probe (the SESE-style optimization of [8, 10]). */
    bool ci_merge_chains = true;

    /**
     * TQ: skip instrumenting a loop whose statically-known total work
     * (trip count x longest body path) stays below this many
     * instructions; the loop is then treated as straight-line cost.
     */
    int static_skip_limit() const { return bound; }
};

/**
 * Per-function instrumentation facts used at call sites, computed after a
 * function is instrumented (callees are processed before callers).
 */
struct FunctionSummary
{
    bool has_probes = false;
    /** Max instructions from entry until the first possible probe firing
     *  (whole longest path when the function has no probes). */
    int entry_gap = 0;
    /** Max instructions after the last probe firing until return. */
    int exit_gap = 0;
};

/** Instrument every function of @p m with TQ physical-clock probes. */
std::vector<FunctionSummary> run_tq_pass(Module &m, const PassConfig &cfg);

/** Instrument with instruction-counter (CI) probes. */
void run_ci_pass(Module &m, const PassConfig &cfg);

/** Instrument with the CI-Cycles hybrid (CI placement, clock-gated). */
void run_ci_cycles_pass(Module &m, const PassConfig &cfg);

/**
 * Placement-time projection: longest-stretch facts of one function with
 * back edges removed, i.e. a *per-iteration* view. Loops contribute a
 * single iteration and guard probes count as unconditional resets, so
 * max_gap is what the pass itself budgets against when placing probes —
 * it is NOT the worst case a run can observe, because a period-K guard
 * lets up to K-1 iterations pass silently and callees compound across
 * frames. The proof of the end-to-end, cross-iteration, interprocedural
 * bound is verifier.h's verify_module(); use that (not these facts) when
 * asserting the placement invariant.
 */
struct StretchFacts
{
    bool has_probes = false;
    int entry_gap = 0;     ///< longest instr path from entry to 1st probe
    int max_gap = 0;       ///< longest probe-free stretch anywhere
    int exit_gap = 0;      ///< longest instr path from last probe to ret
    int longest_path = 0;  ///< longest instr path entry -> ret (no resets)
};

/**
 * Analyze probe-free stretches of @p fn.
 * @param summaries instrumentation facts of callees (may be empty, in
 *     which case instrumented callees are treated as opaque external
 *     calls of cfg.ext_call_instrs instructions).
 */
StretchFacts analyze_stretch(const Function &fn, const PassConfig &cfg,
                             const std::vector<FunctionSummary> &summaries);

} // namespace tq::compiler

#endif // TQ_COMPILER_PASSES_H
