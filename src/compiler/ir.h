/**
 * @file
 * Miniature compiler IR for probe instrumentation research.
 *
 * The paper implements its probe-placement algorithm as an LLVM pass
 * (section 4). This repository reproduces the *algorithm* on a compact IR
 * with exactly the structural features the algorithm cares about: basic
 * blocks, conditional control flow, natural loops (optionally with
 * statically-known trip counts and recognizable induction variables), and
 * calls to instrumented or external functions.
 *
 * Instructions carry no data semantics — only opcode classes with a cycle
 * cost model — because probe placement and timing accuracy depend on
 * control-flow shape and instruction latency variability, not on values.
 * Branch outcomes are modeled explicitly (trip counts / probabilities) so
 * the timing executor can run programs deterministically per seed.
 */
#ifndef TQ_COMPILER_IR_H
#define TQ_COMPILER_IR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"

namespace tq::compiler {

/** Instruction opcode classes, each with a cost model entry. */
enum class Op : uint8_t {
    IAlu,    ///< integer ALU op (add/sub/logic/cmp)
    IMul,    ///< integer multiply
    FAlu,    ///< floating add/sub
    FMul,    ///< floating multiply
    FDiv,    ///< floating divide (long latency)
    Load,    ///< memory load — *variable* latency (hit/miss mixture)
    Store,   ///< memory store
    Call,    ///< call to another function (instrumented or external)
    Probe,   ///< instrumentation site inserted by a pass
};

/** Kinds of instrumentation sites a pass can insert. */
enum class ProbeKind : uint8_t {
    None,          ///< not a probe
    TqClock,       ///< TQ: read physical clock, yield if quantum expired
    CiCounter,     ///< CI: counter += increment; yield if counter >= target
    CiCycles,      ///< CI-Cycles: CI counter gate, then clock check
    TqLoopGuard,   ///< TQ loop gadget: fires the clock probe every `period`
                   ///< iterations; per-iteration bookkeeping cost depends
                   ///< on the chosen loop optimization
};

/** Per-iteration bookkeeping flavor of a TqLoopGuard (paper section 3.1). */
enum class LoopGadget : uint8_t {
    Counter,    ///< maintain an iteration counter (add + cmp per iteration)
    Induction,  ///< reuse an existing induction variable (cmp per iteration)
    Cloned,     ///< self-loop cloning: runtime-selected instrumented copy,
                ///< no per-iteration cost when the trip count is short
};

/** One IR instruction. */
struct Instr
{
    Op op = Op::IAlu;

    // -- Call fields --
    int callee = -1;        ///< Call: index into Module::functions, or -1
    double ext_cost = 0;    ///< Call with callee == -1: estimated cycles

    // -- Probe fields --
    ProbeKind probe = ProbeKind::None;
    uint32_t ci_increment = 0;  ///< CiCounter/CiCycles: instructions counted
    uint32_t period = 1;        ///< TqLoopGuard: fire every `period` iters
    LoopGadget gadget = LoopGadget::Counter; ///< TqLoopGuard flavor
    uint32_t stretch_hint = 0;  ///< TqLoopGuard: longest per-iteration
                                ///< probe-free path of the guarded loop
                                ///< (recorded by the pass for analyses)

    /** Convenience constructors. */
    static Instr make(Op op) { return Instr{.op = op}; }

    static Instr
    call(int callee_index)
    {
        Instr i;
        i.op = Op::Call;
        i.callee = callee_index;
        return i;
    }

    static Instr
    external_call(double estimated_cycles)
    {
        Instr i;
        i.op = Op::Call;
        i.callee = -1;
        i.ext_cost = estimated_cycles;
        return i;
    }

    static Instr
    make_probe(ProbeKind kind, uint32_t ci_increment = 0)
    {
        Instr i;
        i.op = Op::Probe;
        i.probe = kind;
        i.ci_increment = ci_increment;
        return i;
    }

    static Instr
    loop_guard(uint32_t period, LoopGadget gadget, uint32_t stretch_hint)
    {
        Instr i;
        i.op = Op::Probe;
        i.probe = ProbeKind::TqLoopGuard;
        i.period = period;
        i.gadget = gadget;
        i.stretch_hint = stretch_hint;
        return i;
    }

    bool is_probe() const { return op == Op::Probe; }
};

/** How the executor decides a conditional branch. */
struct BranchModel
{
    enum class Kind : uint8_t {
        Bernoulli,  ///< take `taken` with probability `prob` each visit
        TripCount,  ///< loop latch: take back edge trip_count-1 times per
                    ///< loop entry, then fall through (deterministic)
    };

    Kind kind = Kind::Bernoulli;
    double prob = 0.5;          ///< Bernoulli: P(take target_taken)
    uint64_t trip_count = 1;    ///< TripCount: iterations per loop entry
};

/** Block terminator. */
struct Terminator
{
    enum class Kind : uint8_t { Jump, Branch, Ret };

    Kind kind = Kind::Ret;
    int target = -1;        ///< Jump target; Branch: taken target
    int target_else = -1;   ///< Branch: fall-through target
    BranchModel model;      ///< Branch decision model

    static Terminator ret() { return Terminator{}; }

    static Terminator
    jump(int target)
    {
        Terminator t;
        t.kind = Kind::Jump;
        t.target = target;
        return t;
    }

    static Terminator
    branch(int taken, int fallthrough, BranchModel model)
    {
        Terminator t;
        t.kind = Kind::Branch;
        t.target = taken;
        t.target_else = fallthrough;
        t.model = model;
        return t;
    }
};

/**
 * Loop-analysis facts the front end is assumed to know (stands in for
 * LLVM's ScalarEvolution / LoopSimplify results, paper section 4).
 * Attached to the loop *header* block.
 */
struct LoopFacts
{
    /** Trip count if statically known (enables skipping instrumentation). */
    std::optional<uint64_t> static_trip;

    /** True when a usable induction variable exists (cheaper gadget). */
    bool has_induction_var = false;
};

/** A basic block: straight-line instructions plus one terminator. */
struct Block
{
    std::vector<Instr> instrs;
    Terminator term;
    LoopFacts loop_facts;   ///< meaningful only when this block heads a loop

    /** Number of non-probe instructions (the "real" program). */
    int
    real_instr_count() const
    {
        int n = 0;
        for (const auto &i : instrs)
            n += !i.is_probe();
        return n;
    }
};

/** A function: blocks with block 0 as entry. */
struct Function
{
    std::string name;
    std::vector<Block> blocks;

    int num_blocks() const { return static_cast<int>(blocks.size()); }

    /** Total static probe sites (paper reports probe counts). */
    int
    probe_count() const
    {
        int n = 0;
        for (const auto &b : blocks)
            for (const auto &i : b.instrs)
                n += i.is_probe();
        return n;
    }

    /** Total static non-probe instructions. */
    int
    real_instr_count() const
    {
        int n = 0;
        for (const auto &b : blocks)
            n += b.real_instr_count();
        return n;
    }
};

/** A module: functions; index 0 is the program entry point. */
struct Module
{
    std::string name;
    std::vector<Function> functions;

    Function &entry() { return functions.at(0); }
    const Function &entry() const { return functions.at(0); }

    int
    probe_count() const
    {
        int n = 0;
        for (const auto &f : functions)
            n += f.probe_count();
        return n;
    }
};

/** Structural sanity check: every target in range, entry exists, etc. */
void validate(const Module &m);

/** Human-readable dump for debugging and golden tests. */
std::string to_string(const Function &f);

} // namespace tq::compiler

#endif // TQ_COMPILER_IR_H
