#include "compiler/verifier.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>

#include "compiler/cfg.h"

namespace tq::compiler {

namespace {

constexpr size_t kMaxWitnessSteps = 96;

uint64_t
sat_add(uint64_t a, uint64_t b)
{
    return (a > kUnboundedStretch - b) ? kUnboundedStretch : a + b;
}

uint64_t
sat_mul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a == kUnboundedStretch || b == kUnboundedStretch ||
        a > kUnboundedStretch / b)
        return kUnboundedStretch;
    return a * b;
}

void
wit_push(Witness &w, Witness::Step s)
{
    if (w.steps.size() < kMaxWitnessSteps) {
        w.steps.push_back(s);
    } else if (w.steps.back().kind != Witness::Kind::Truncated) {
        w.steps.back() = {Witness::Kind::Truncated, -1, -1, -1, 0};
    }
}

/**
 * A path value of the longest-segment analysis: invalid (no such
 * path), or a saturating length plus a size-capped witness.
 */
struct Ext
{
    bool valid = false;
    uint64_t len = 0;
    Witness wit;
};

Ext
make_ext(uint64_t len)
{
    Ext e;
    e.valid = true;
    e.len = len;
    return e;
}

/** e + w, without touching the witness. */
Ext
eadd(Ext e, uint64_t w)
{
    if (e.valid)
        e.len = sat_add(e.len, w);
    return e;
}

/** Concatenate two path values (invalid absorbs). */
Ext
echain(const Ext &a, const Ext &b)
{
    if (!a.valid || !b.valid)
        return Ext{};
    Ext r;
    r.valid = true;
    r.len = sat_add(a.len, b.len);
    r.wit = a.wit;
    for (const auto &s : b.wit.steps)
        wit_push(r.wit, s);
    return r;
}

/** Keep the longer valid path. */
void
emax(Ext &into, const Ext &other)
{
    if (other.valid && (!into.valid || other.len > into.len))
        into = other;
}

/** `times` traversals of `iter` (witness compressed to one Repeat). */
Ext
erep(const Ext &iter, uint64_t times)
{
    if (!iter.valid)
        return Ext{};
    if (times == 0)
        return make_ext(0);
    Ext r;
    r.valid = true;
    r.len = sat_mul(iter.len, times);
    r.wit = iter.wit;
    if (times > 1)
        wit_push(r.wit, {Witness::Kind::Repeat, -1, -1, -1, times - 1});
    return r;
}

/**
 * The two flavors propagated through a region: `a` is the longest
 * cut-free path from the region entry (no barrier crossed yet), `b`
 * the longest cut-free path starting just after some barrier.
 */
struct Flow
{
    Ext a, b;
};

void
flowmax(Flow &into, const Flow &other)
{
    emax(into.a, other.a);
    emax(into.b, other.b);
}

/** A loop collapsed to a summary atom at its header (one loop entry). */
struct Atom
{
    Ext pure;        ///< header -> loop exit, cut-free
    Ext pure_ret;    ///< header -> ret inside the loop, cut-free
    Ext entrycut;    ///< header -> first cut inside (end pad included)
    Ext exitcut;     ///< after a cut inside -> loop exit
    Ext exitcut_ret; ///< after a cut inside -> ret inside the loop
    std::vector<int> exit_targets; ///< blocks outside the loop we exit to
};

void
add_diag(std::vector<Diag> &diags, Severity sev, std::string code,
         std::string message, int fn = -1, int block = -1, int instr = -1,
         Witness wit = {})
{
    Diag d;
    d.severity = sev;
    d.code = std::move(code);
    d.message = std::move(message);
    d.fn = fn;
    d.block = block;
    d.instr = instr;
    d.witness = std::move(wit);
    diags.push_back(std::move(d));
}

/** Conservative top summary: every behaviour possible, no bound. */
FunctionStretch
top_summary()
{
    FunctionStretch s;
    s.may_fire = true;
    s.may_not_fire = true;
    s.entry_gap = s.exit_gap = s.through = s.internal = kUnboundedStretch;
    return s;
}

bool
summary_equal(const FunctionStretch &x, const FunctionStretch &y)
{
    return x.may_fire == y.may_fire && x.may_not_fire == y.may_not_fire &&
           x.entry_gap == y.entry_gap && x.exit_gap == y.exit_gap &&
           x.through == y.through && x.internal == y.internal;
}

/** Executor stretch charge for an external call, in instructions. */
uint64_t
ext_call_weight(const Instr &ins, const VerifyConfig &cfg)
{
    const double instrs =
        cfg.ialu_cycles > 0 ? ins.ext_cost / cfg.ialu_cycles : 0;
    return sat_add(1, instrs <= 0 ? 0 : static_cast<uint64_t>(instrs));
}

/** True when executing this instruction always resets the stretch. */
bool
is_hard_barrier(const Instr &ins)
{
    if (!ins.is_probe() || ins.probe == ProbeKind::None)
        return false;
    if (ins.probe == ProbeKind::TqLoopGuard)
        return ins.period <= 1; // period 1 fires on every crossing
    return true;
}

/**
 * Stretch analysis of one function given callee summaries. Assumes
 * the function passed the structural and shape (reducibility) checks.
 *
 * Model recap (DESIGN.md has the derivation): all probe instructions
 * — hard probes and loop guards alike — are *cuts*. Any probe-free
 * window of one activation decomposes into cut-free segments
 * separated by silent guard crossings, of which there are at most
 * M = sum(period - 1) per activation, because guard counters are
 * per-frame. So window <= (M + 1) * s_max, with entry/exit tails
 * using the entry->first-cut and last-cut->ret segments. Segments
 * are bounded by a longest-path walk over the loop tree: loops
 * collapse innermost-first into atoms, probe-free cycles are capped
 * by their latch trip counts or reported unbounded.
 */
class FnAnalyzer
{
  public:
    FnAnalyzer(const Module &m, int fn_idx, const Cfg &cfg,
               const VerifyConfig &vcfg,
               const std::vector<FunctionStretch> &summaries,
               bool report_unbounded, std::vector<Diag> &diags)
        : fn_(m.functions[static_cast<size_t>(fn_idx)]), fn_idx_(fn_idx),
          cfg_(cfg), vcfg_(vcfg), sums_(summaries),
          report_unbounded_(report_unbounded), diags_(diags)
    {
    }

    FunctionStretch run();

  private:
    struct RegionOut
    {
        Ext entrycut;       ///< a-flavor ending at a cut (pad applied)
        Ext ret_a, ret_b;   ///< flavors reaching a Ret
        Ext exit_a, exit_b; ///< flavors leaving the loop (loops only)
        Ext lat_a, lat_b;   ///< flavors crossing a back edge (loops only)
        std::vector<int> exit_targets;
    };

    Flow walk_block(int bidx, Flow f);
    Atom analyze_loop(int li);
    void sweep(int region, std::vector<Flow> &in, RegionOut &out);
    void route(int region, int target, const Flow &f, std::vector<Flow> &in,
               RegionOut &out);
    /** -1: plain member of `region`; >= 0: that child loop's atom
     *  (only at its header); -2: not visible at this region level. */
    int role(int region, int b) const;
    uint64_t latch_cap(int li) const;
    bool compute_may_fire() const;
    bool compute_may_not_fire() const;

    const Function &fn_;
    int fn_idx_;
    const Cfg &cfg_;
    const VerifyConfig &vcfg_;
    const std::vector<FunctionStretch> &sums_;
    bool report_unbounded_;
    std::vector<Diag> &diags_;

    std::vector<Atom> atoms_;
    /** Where a-flavor cut endpoints accumulate: the function's entry
     *  segment at the top level, the atom's entrycut inside a loop. */
    Ext *entry_sink_ = nullptr;
    // Function-wide collectors.
    Ext g_entry_seg_, g_closed_, g_exit_seg_, g_nf_pure_;
};

int
FnAnalyzer::role(int region, int b) const
{
    const int inner = cfg_.innermost_loop_of(b);
    if (inner == region)
        return -1;
    int lp = inner;
    while (lp >= 0 && cfg_.loops()[static_cast<size_t>(lp)].parent != region)
        lp = cfg_.loops()[static_cast<size_t>(lp)].parent;
    if (lp < 0)
        return -2;
    return b == cfg_.loops()[static_cast<size_t>(lp)].header ? lp : -2;
}

Flow
FnAnalyzer::walk_block(int bidx, Flow f)
{
    if (!f.a.valid && !f.b.valid)
        return f;
    const Block &blk = fn_.blocks[static_cast<size_t>(bidx)];
    const Witness::Step here{Witness::Kind::Block, fn_idx_, bidx, -1, 0};
    if (f.a.valid)
        wit_push(f.a.wit, here);
    if (f.b.valid)
        wit_push(f.b.wit, here);

    auto close = [&](const Ext &v, uint64_t pad, Witness::Step step,
                     Ext &acc) {
        if (!v.valid)
            return;
        Ext e = eadd(v, pad);
        wit_push(e.wit, step);
        emax(acc, e);
    };

    for (size_t i = 0; i < blk.instrs.size(); ++i) {
        const Instr &ins = blk.instrs[i];
        const int ii = static_cast<int>(i);
        if (ins.is_probe()) {
            if (ins.probe == ProbeKind::None)
                continue; // structural error; analysis not run on these
            // Every probe crossing either fires (a window endpoint) or
            // is a silent guard crossing (a segment delimiter): a cut
            // for the segment analysis either way.
            const Witness::Step fire{Witness::Kind::Firing, fn_idx_, bidx,
                                     ii, 0};
            close(f.a, 0, fire, *entry_sink_);
            close(f.b, 0, fire, g_closed_);
            f.a = Ext{};
            f.b = make_ext(0);
            wit_push(f.b.wit, fire);
        } else if (ins.op == Op::Call && ins.callee >= 0) {
            const FunctionStretch &s = sums_[static_cast<size_t>(ins.callee)];
            const Witness::Step enter{Witness::Kind::EnterCall, fn_idx_, bidx,
                                      ii, 0};
            if (s.may_fire) {
                // The window may end at the callee's first firing: call
                // overhead (1 instruction) plus the callee's entry gap.
                const uint64_t pad = sat_add(1, s.entry_gap);
                close(f.a, pad, enter, *entry_sink_);
                close(f.b, pad, enter, g_closed_);
            }
            Flow nf;
            if (s.may_not_fire) {
                const uint64_t w = sat_add(1, s.through);
                nf.a = eadd(f.a, w);
                if (nf.a.valid)
                    wit_push(nf.a.wit, enter);
                nf.b = eadd(f.b, w);
                if (nf.b.valid)
                    wit_push(nf.b.wit, enter);
            }
            if (s.may_fire) {
                // A new window may start at the callee's last firing.
                Ext start = make_ext(s.exit_gap);
                wit_push(start.wit, enter);
                emax(nf.b, start);
            }
            f = nf;
        } else if (ins.op == Op::Call) {
            const uint64_t w = ext_call_weight(ins, vcfg_);
            f.a = eadd(f.a, w);
            f.b = eadd(f.b, w);
        } else {
            f.a = eadd(f.a, 1);
            f.b = eadd(f.b, 1);
        }
    }
    return f;
}

void
FnAnalyzer::route(int region, int target, const Flow &f,
                  std::vector<Flow> &in, RegionOut &out)
{
    if (region >= 0) {
        const LoopInfo &loop = cfg_.loops()[static_cast<size_t>(region)];
        if (target == loop.header) { // back edge of the current loop
            emax(out.lat_a, f.a);
            emax(out.lat_b, f.b);
            return;
        }
        if (!loop.contains(target)) { // loop exit edge
            emax(out.exit_a, f.a);
            emax(out.exit_b, f.b);
            if (std::find(out.exit_targets.begin(), out.exit_targets.end(),
                          target) == out.exit_targets.end())
                out.exit_targets.push_back(target);
            return;
        }
    }
    flowmax(in[static_cast<size_t>(target)], f);
}

void
FnAnalyzer::sweep(int region, std::vector<Flow> &in, RegionOut &out)
{
    entry_sink_ = region >= 0 ? &out.entrycut : &g_entry_seg_;
    for (int bidx : cfg_.rpo()) {
        const int r = role(region, bidx);
        if (r == -2)
            continue;
        const Flow f = in[static_cast<size_t>(bidx)];
        if (r >= 0) { // child loop atom
            const Atom &at = atoms_[static_cast<size_t>(r)];
            // Segments may end at a cut inside the child...
            emax(*entry_sink_, echain(f.a, at.entrycut));
            emax(g_closed_, echain(f.b, at.entrycut));
            // ...or reach a Ret nested inside it...
            emax(out.ret_a, echain(f.a, at.pure_ret));
            emax(out.ret_b, echain(f.b, at.pure_ret));
            emax(out.ret_b, at.exitcut_ret);
            // ...or pass through / start inside and leave.
            Flow o;
            o.a = echain(f.a, at.pure);
            o.b = echain(f.b, at.pure);
            emax(o.b, at.exitcut);
            for (int t : at.exit_targets)
                route(region, t, o, in, out);
            continue;
        }
        const Flow o = walk_block(bidx, f);
        const Terminator &t = fn_.blocks[static_cast<size_t>(bidx)].term;
        switch (t.kind) {
          case Terminator::Kind::Ret:
            emax(out.ret_a, o.a);
            emax(out.ret_b, o.b);
            break;
          case Terminator::Kind::Jump:
            route(region, t.target, o, in, out);
            break;
          case Terminator::Kind::Branch:
            route(region, t.target, o, in, out);
            route(region, t.target_else, o, in, out);
            break;
        }
    }
}

uint64_t
FnAnalyzer::latch_cap(int li) const
{
    const LoopInfo &loop = cfg_.loops()[static_cast<size_t>(li)];
    uint64_t cap = 0;
    for (int u : loop.latches) {
        const Terminator &t = fn_.blocks[static_cast<size_t>(u)].term;
        uint64_t c = 0;
        if (t.kind == Terminator::Kind::Jump) {
            c = kUnboundedStretch; // unconditional back edge
        } else if (t.kind == Terminator::Kind::Branch) {
            const bool taken_back = t.target == loop.header;
            const bool else_back = t.target_else == loop.header;
            if (taken_back && else_back) {
                c = kUnboundedStretch;
            } else if (t.model.kind == BranchModel::Kind::TripCount) {
                if (taken_back) {
                    // Canonical latch: back edge taken trip-1 times per
                    // loop entry, then falls through.
                    c = t.model.trip_count > 0 ? t.model.trip_count - 1 : 0;
                } else {
                    // Inverted latch: the executor falls through to the
                    // header once per counter cycle; with trip 1 that is
                    // every visit (an infinite loop), with trip >= 2 at
                    // most once per stay in the loop.
                    c = t.model.trip_count >= 2 ? 1 : kUnboundedStretch;
                }
            } else {
                const bool possible =
                    taken_back ? t.model.prob > 0 : t.model.prob < 1;
                c = possible ? kUnboundedStretch : 0;
            }
        }
        cap = sat_add(cap, c);
    }
    return cap;
}

Atom
FnAnalyzer::analyze_loop(int li)
{
    const LoopInfo &loop = cfg_.loops()[static_cast<size_t>(li)];
    const size_t n = static_cast<size_t>(fn_.num_blocks());
    Atom at;

    std::vector<Flow> in(n);
    Flow seed;
    seed.a = make_ext(0);
    in[static_cast<size_t>(loop.header)] = seed;
    RegionOut r1;
    sweep(li, in, r1);
    at.exit_targets = r1.exit_targets;

    // Probe-free cycles: capped by the latch trip counts, or unbounded.
    Ext extra = make_ext(0);
    const uint64_t cap = latch_cap(li);
    if (r1.lat_a.valid && cap > 0) {
        if (cap == kUnboundedStretch) {
            Witness w = r1.lat_a.wit;
            wit_push(w, {Witness::Kind::Repeat, -1, -1, -1,
                         kUnboundedStretch});
            add_diag(diags_,
                     report_unbounded_ ? Severity::Error : Severity::Warning,
                     "unbounded-loop",
                     "loop headed by block b" + std::to_string(loop.header) +
                         " can iterate probe-free with no static trip "
                         "bound: no probe cuts its longest cycle",
                     fn_idx_, loop.header, -1, std::move(w));
            const Ext ub{true, kUnboundedStretch, r1.lat_a.wit};
            at.pure = at.pure_ret = at.entrycut = at.exitcut =
                at.exitcut_ret = ub;
            emax(g_closed_, ub);
            return at;
        }
        extra = erep(r1.lat_a, cap);
    }

    // Round 2: segments that start after a cut and cross a back edge
    // (at most one cut-free crossing; more requires a probe-free cycle,
    // which `extra` accounts for).
    RegionOut r2;
    if (r1.lat_b.valid && cap > 0) {
        std::vector<Flow> in2(n);
        Flow seed2;
        seed2.b = echain(r1.lat_b, extra);
        in2[static_cast<size_t>(loop.header)] = seed2;
        sweep(li, in2, r2);
        for (int t : r2.exit_targets)
            if (std::find(at.exit_targets.begin(), at.exit_targets.end(),
                          t) == at.exit_targets.end())
                at.exit_targets.push_back(t);
    }

    at.pure = echain(extra, r1.exit_a);
    at.pure_ret = echain(extra, r1.ret_a);
    at.entrycut = echain(extra, r1.entrycut);
    at.exitcut = r1.exit_b;
    emax(at.exitcut, r2.exit_b);
    at.exitcut_ret = r1.ret_b;
    emax(at.exitcut_ret, r2.ret_b);
    return at;
}

bool
FnAnalyzer::compute_may_fire() const
{
    for (int b : cfg_.rpo()) {
        for (const auto &ins : fn_.blocks[static_cast<size_t>(b)].instrs) {
            if (ins.is_probe() && ins.probe != ProbeKind::None)
                return true;
            if (ins.op == Op::Call && ins.callee >= 0 &&
                sums_[static_cast<size_t>(ins.callee)].may_fire)
                return true;
        }
    }
    return false;
}

bool
FnAnalyzer::compute_may_not_fire() const
{
    // Over-approximate reachability of a Ret along a firing-free path:
    // hard barriers and must-fire callees block, guards with period >=
    // 2 are silently passable (their budget is accounted elsewhere).
    //
    // Refinement (keeps the bound exact for the canonical TQ shape):
    // entering a single-latch TripCount loop with no side exits whose
    // guard sits on a block dominating the latch forces `trips`
    // crossings of that guard per entry — more than period-1 crossings
    // cannot stay silent, so the loop header is impassable.
    std::vector<char> forced(static_cast<size_t>(fn_.num_blocks()), 0);
    for (const auto &loop : cfg_.loops()) {
        if (loop.latches.size() != 1)
            continue;
        const int u = loop.latches[0];
        const Terminator &lt = fn_.blocks[static_cast<size_t>(u)].term;
        if (lt.kind != Terminator::Kind::Branch ||
            lt.model.kind != BranchModel::Kind::TripCount ||
            lt.target != loop.header)
            continue;
        bool side_exit = false;
        for (int b = 0; b < fn_.num_blocks() && !side_exit; ++b)
            if (loop.contains(b) && b != u)
                for (int s : cfg_.succs(b))
                    side_exit |= !loop.contains(s);
        if (side_exit)
            continue;
        for (int b = 0; b < fn_.num_blocks(); ++b) {
            if (!loop.contains(b) || !cfg_.dominates(b, u))
                continue;
            for (const auto &ins :
                 fn_.blocks[static_cast<size_t>(b)].instrs)
                if (ins.is_probe() &&
                    ins.probe == ProbeKind::TqLoopGuard &&
                    ins.period >= 1 &&
                    lt.model.trip_count > ins.period - 1)
                    forced[static_cast<size_t>(loop.header)] = 1;
        }
    }
    auto passable = [&](int b) {
        if (forced[static_cast<size_t>(b)])
            return false;
        for (const auto &ins : fn_.blocks[static_cast<size_t>(b)].instrs) {
            if (is_hard_barrier(ins))
                return false;
            if (ins.op == Op::Call && ins.callee >= 0 &&
                !sums_[static_cast<size_t>(ins.callee)].may_not_fire)
                return false;
        }
        return true;
    };
    std::vector<char> seen(static_cast<size_t>(fn_.num_blocks()), 0);
    std::deque<int> work;
    if (passable(0)) {
        seen[0] = 1;
        work.push_back(0);
    }
    while (!work.empty()) {
        const int b = work.front();
        work.pop_front();
        if (fn_.blocks[static_cast<size_t>(b)].term.kind ==
            Terminator::Kind::Ret)
            return true;
        for (int s : cfg_.succs(b)) {
            if (!seen[static_cast<size_t>(s)] && passable(s)) {
                seen[static_cast<size_t>(s)] = 1;
                work.push_back(s);
            }
        }
    }
    return false;
}

FunctionStretch
FnAnalyzer::run()
{
    atoms_.resize(cfg_.loops().size());
    for (size_t li = 0; li < cfg_.loops().size(); ++li) // innermost-first
        atoms_[li] = analyze_loop(static_cast<int>(li));

    std::vector<Flow> in(static_cast<size_t>(fn_.num_blocks()));
    Flow seed;
    seed.a = make_ext(0);
    in[0] = seed;
    RegionOut rf;
    sweep(-1, in, rf);
    g_nf_pure_ = rf.ret_a;
    g_exit_seg_ = rf.ret_b;

    // Per-activation silent-crossing budget: sum of (period - 1) over
    // reachable guard sites (guard counters are per-frame).
    uint64_t budget = 0;
    for (int b : cfg_.rpo())
        for (const auto &ins : fn_.blocks[static_cast<size_t>(b)].instrs)
            if (ins.is_probe() && ins.probe == ProbeKind::TqLoopGuard &&
                ins.period >= 1)
                budget = sat_add(budget, ins.period - 1);

    FunctionStretch out;
    out.may_fire = compute_may_fire();
    out.may_not_fire = compute_may_not_fire();

    const Ext slack = g_closed_.valid ? erep(g_closed_, budget) : make_ext(0);
    if (out.may_fire) {
        const Ext eg = echain(g_entry_seg_, slack);
        out.entry_gap = eg.valid ? eg.len : kUnboundedStretch;
        out.entry_witness = eg.wit;
        const Ext xg = echain(slack, g_exit_seg_);
        out.exit_gap = xg.valid ? xg.len : kUnboundedStretch;
    }
    if (g_closed_.valid) {
        const Ext inner = erep(g_closed_, sat_add(budget, 1));
        out.internal = inner.len;
        out.internal_witness = inner.wit;
    }
    if (out.may_not_fire) {
        Ext thr = g_nf_pure_;
        if (g_entry_seg_.valid && g_exit_seg_.valid)
            emax(thr, echain(echain(g_entry_seg_, slack), g_exit_seg_));
        out.through = thr.valid ? thr.len : kUnboundedStretch;
    }
    return out;
}

// ---------------------------------------------------------------------
// Structural and shape checks.

bool
structural_check(const Module &m, std::vector<Diag> &diags)
{
    bool ok = true;
    auto err = [&](std::string code, std::string msg, int fi, int bi,
                   int ii) {
        add_diag(diags, Severity::Error, std::move(code), std::move(msg), fi,
                 bi, ii);
        ok = false;
    };
    if (m.functions.empty()) {
        err("empty-module", "module has no functions", -1, -1, -1);
        return false;
    }
    for (size_t fi = 0; fi < m.functions.size(); ++fi) {
        const Function &fn = m.functions[fi];
        const int f = static_cast<int>(fi);
        if (fn.blocks.empty()) {
            err("empty-function", "function has no blocks", f, -1, -1);
            continue;
        }
        const int n = fn.num_blocks();
        for (int bi = 0; bi < n; ++bi) {
            const Block &blk = fn.blocks[static_cast<size_t>(bi)];
            const Terminator &t = blk.term;
            auto bad = [&](int x) { return x < 0 || x >= n; };
            if (t.kind == Terminator::Kind::Jump && bad(t.target))
                err("bad-branch-target", "jump target out of range", f, bi,
                    -1);
            if (t.kind == Terminator::Kind::Branch) {
                if (bad(t.target) || bad(t.target_else))
                    err("bad-branch-target", "branch target out of range", f,
                        bi, -1);
                if (t.model.kind == BranchModel::Kind::TripCount &&
                    t.model.trip_count == 0)
                    err("trip-count-zero",
                        "trip count 0 underflows the executor's counter", f,
                        bi, -1);
            }
            for (size_t ii = 0; ii < blk.instrs.size(); ++ii) {
                const Instr &ins = blk.instrs[ii];
                const int i = static_cast<int>(ii);
                if (ins.op == Op::Probe && ins.probe == ProbeKind::None)
                    err("probe-kind-none",
                        "Probe instruction with kind None aborts the "
                        "executor",
                        f, bi, i);
                if (ins.op != Op::Probe && ins.probe != ProbeKind::None)
                    add_diag(diags, Severity::Warning,
                             "probe-field-on-nonprobe",
                             "non-probe instruction carries a probe kind "
                             "(ignored at run time)",
                             f, bi, i);
                if (ins.op == Op::Call) {
                    if (ins.callee >= static_cast<int>(m.functions.size()))
                        err("bad-callee", "callee index out of range", f, bi,
                            i);
                    if (ins.callee < 0 && ins.ext_cost < 0)
                        err("negative-ext-cost",
                            "external call with negative cost", f, bi, i);
                }
                if (ins.op == Op::Probe &&
                    ins.probe == ProbeKind::TqLoopGuard && ins.period == 0)
                    err("guard-period-zero",
                        "loop guard period 0 divides by zero in the "
                        "executor",
                        f, bi, i);
            }
        }
    }
    return ok;
}

/** CFG-shape checks; false when the function cannot be analyzed. */
bool
check_function_shape(const Module &m, int fi, const Cfg &cfg,
                     std::vector<Diag> &diags)
{
    const Function &fn = m.functions[static_cast<size_t>(fi)];
    bool good = true;

    // Reducibility: every retreating RPO edge must be a back edge to a
    // dominating header; anything else defeats natural-loop reasoning.
    std::vector<int> pos(static_cast<size_t>(fn.num_blocks()), -1);
    for (size_t i = 0; i < cfg.rpo().size(); ++i)
        pos[static_cast<size_t>(cfg.rpo()[i])] = static_cast<int>(i);
    for (int u : cfg.rpo()) {
        for (int s : cfg.succs(u)) {
            if (pos[static_cast<size_t>(s)] <= pos[static_cast<size_t>(u)] &&
                !cfg.dominates(s, u)) {
                add_diag(diags, Severity::Error, "irreducible-cfg",
                         "retreating edge to b" + std::to_string(s) +
                             " is not a back edge to a dominating header",
                         fi, u, -1);
                good = false;
            }
        }
    }

    for (size_t li = 0; li < cfg.loops().size(); ++li) {
        const LoopInfo &loop = cfg.loops()[li];
        // Side entries defeat the loop-atom collapse.
        for (int b = 0; b < fn.num_blocks(); ++b) {
            if (!loop.contains(b) || b == loop.header)
                continue;
            for (int p : cfg.preds(b)) {
                if (cfg.reachable(p) && !loop.contains(p)) {
                    add_diag(diags, Severity::Error, "loop-side-entry",
                             "edge from b" + std::to_string(p) +
                                 " enters the loop headed by b" +
                                 std::to_string(loop.header) +
                                 " bypassing its header",
                             fi, b, -1);
                    good = false;
                }
            }
        }
        // Advisory: recorded loop facts vs the latch's actual model.
        const auto &facts =
            fn.blocks[static_cast<size_t>(loop.header)].loop_facts;
        if (facts.static_trip) {
            for (int u : loop.latches) {
                const Terminator &t = fn.blocks[static_cast<size_t>(u)].term;
                if (t.kind == Terminator::Kind::Branch &&
                    t.model.kind == BranchModel::Kind::TripCount &&
                    t.target == loop.header &&
                    t.model.trip_count != *facts.static_trip)
                    add_diag(diags, Severity::Warning, "loop-facts-mismatch",
                             "loop_facts.static_trip says " +
                                 std::to_string(*facts.static_trip) +
                                 " but the latch trip count is " +
                                 std::to_string(t.model.trip_count),
                             fi, loop.header, -1);
            }
        }
    }

    // Advisory: a loop guard outside any loop is almost certainly a
    // misplaced probe (legal, but it fires every `period` activations).
    for (int b = 0; b < fn.num_blocks(); ++b) {
        if (!cfg.reachable(b) || cfg.innermost_loop_of(b) >= 0)
            continue;
        const Block &blk = fn.blocks[static_cast<size_t>(b)];
        for (size_t ii = 0; ii < blk.instrs.size(); ++ii) {
            const Instr &ins = blk.instrs[ii];
            if (ins.is_probe() && ins.probe == ProbeKind::TqLoopGuard &&
                ins.period > 1)
                add_diag(diags, Severity::Warning, "guard-outside-loop",
                         "loop guard placed outside any natural loop", fi, b,
                         static_cast<int>(ii));
        }
    }
    return good;
}

// ---------------------------------------------------------------------
// Call graph, SCCs, module driver.

std::vector<std::vector<int>>
call_edges(const Module &m)
{
    std::vector<std::vector<int>> adj(m.functions.size());
    for (size_t fi = 0; fi < m.functions.size(); ++fi) {
        for (const auto &blk : m.functions[fi].blocks)
            for (const auto &ins : blk.instrs)
                if (ins.op == Op::Call && ins.callee >= 0 &&
                    std::find(adj[fi].begin(), adj[fi].end(), ins.callee) ==
                        adj[fi].end())
                    adj[fi].push_back(ins.callee);
    }
    return adj;
}

/** Tarjan SCCs, emitted callee-first (reverse topological order). */
struct Tarjan
{
    const std::vector<std::vector<int>> &adj;
    std::vector<int> index, low, stck;
    std::vector<char> on;
    int counter = 0;
    std::vector<std::vector<int>> sccs;

    explicit Tarjan(const std::vector<std::vector<int>> &a)
        : adj(a), index(a.size(), -1), low(a.size(), 0), on(a.size(), 0)
    {
        for (size_t v = 0; v < a.size(); ++v)
            if (index[v] < 0)
                dfs(static_cast<int>(v));
    }

    void
    dfs(int v)
    {
        const size_t vi = static_cast<size_t>(v);
        index[vi] = low[vi] = counter++;
        stck.push_back(v);
        on[vi] = 1;
        for (int w : adj[vi]) {
            const size_t wi = static_cast<size_t>(w);
            if (index[wi] < 0) {
                dfs(w);
                low[vi] = std::min(low[vi], low[wi]);
            } else if (on[wi]) {
                low[vi] = std::min(low[vi], index[wi]);
            }
        }
        if (low[vi] == index[vi]) {
            std::vector<int> scc;
            int w;
            do {
                w = stck.back();
                stck.pop_back();
                on[static_cast<size_t>(w)] = 0;
                scc.push_back(w);
            } while (w != v);
            sccs.push_back(std::move(scc));
        }
    }
};

std::string
fmt_len(uint64_t v)
{
    return v == kUnboundedStretch ? "unbounded" : std::to_string(v);
}

} // namespace

namespace {

/**
 * Name the block of a witness that dominates the bound: the Block step
 * feeding the largest Repeat marker (the window spends most of its
 * length looping there), or the first Block step of a repeat-free
 * path. Returns {block, extra-iterations}; block -1 when the witness
 * carries no block step.
 */
std::pair<int, uint64_t>
witness_hotspot(const Witness &w)
{
    int best_block = -1;
    uint64_t best_count = 0;
    for (size_t i = 0; i < w.steps.size(); ++i) {
        const auto &s = w.steps[i];
        if (s.kind != Witness::Kind::Repeat || s.count <= best_count)
            continue;
        for (size_t j = i; j-- > 0;)
            if (w.steps[j].kind == Witness::Kind::Block) {
                best_block = w.steps[j].block;
                best_count = s.count;
                break;
            }
    }
    if (best_block >= 0)
        return {best_block, best_count};
    for (const auto &s : w.steps)
        if (s.kind == Witness::Kind::Block)
            return {s.block, 0};
    return {-1, 0};
}

} // namespace

// ---------------------------------------------------------------------
// Incremental driver. The constructor performs the full analysis;
// refresh(fn) re-runs only the SCCs whose inputs changed. Diags are
// bucketed by origin (structural / per-function shape / per-SCC
// analysis / aggregate) so a partial re-run can splice its bucket
// back into the flat list in the original emission order.

struct ModuleVerifier::Impl
{
    const Module &m;
    const VerifyConfig cfg;

    bool structural_ok = false;
    std::vector<Cfg> cfgs;
    std::vector<char> bad;   ///< per-fn: shape check failed -> top
    std::vector<char> reach; ///< per-fn: reachable from entry
    std::vector<std::vector<int>> adj;  ///< call graph (dedup'd edges)
    std::vector<std::vector<int>> sccs; ///< callee-first SCC order
    std::vector<int> scc_of;            ///< fn -> index into sccs
    bool instrumented = false;

    std::vector<Diag> structural_diags;
    std::vector<std::vector<Diag>> shape_diags; ///< per fn
    std::vector<std::vector<Diag>> scc_diags;   ///< per SCC

    VerifyResult res;

    Impl(const Module &mod, const VerifyConfig &vcfg) : m(mod), cfg(vcfg)
    {
        res.functions.assign(m.functions.size(), FunctionStretch{});
        if (!structural_check(m, structural_diags)) {
            for (auto &f : res.functions)
                f = top_summary();
            res.max_stretch = m.functions.empty() ? 0 : kUnboundedStretch;
            res.diags = structural_diags;
            res.ok = false;
            return;
        }
        structural_ok = true;

        const size_t nf = m.functions.size();
        cfgs.reserve(nf);
        for (const auto &fn : m.functions)
            cfgs.emplace_back(fn);

        bad.assign(nf, 0);
        shape_diags.resize(nf);
        for (size_t fi = 0; fi < nf; ++fi)
            bad[fi] = !check_function_shape(m, static_cast<int>(fi),
                                            cfgs[fi], shape_diags[fi]);

        adj = call_edges(m);
        reach.assign(nf, 0);
        std::deque<int> work{0};
        reach[0] = 1;
        while (!work.empty()) {
            const int v = work.front();
            work.pop_front();
            for (int w : adj[static_cast<size_t>(v)])
                if (!reach[static_cast<size_t>(w)]) {
                    reach[static_cast<size_t>(w)] = 1;
                    work.push_back(w);
                }
        }

        instrumented = m.probe_count() > 0;

        Tarjan tarjan(adj);
        sccs = std::move(tarjan.sccs);
        scc_of.assign(nf, -1);
        for (size_t si = 0; si < sccs.size(); ++si)
            for (int fi : sccs[si])
                scc_of[static_cast<size_t>(fi)] = static_cast<int>(si);
        scc_diags.resize(sccs.size());

        for (size_t si = 0; si < sccs.size(); ++si)
            run_scc(si);
        aggregate();
    }

    FunctionStretch
    analyze(int fi, std::vector<Diag> &diags)
    {
        const size_t f = static_cast<size_t>(fi);
        if (bad[f])
            return top_summary();
        return FnAnalyzer(m, fi, cfgs[f], cfg, res.functions,
                          reach[f] && instrumented, diags)
            .run();
    }

    void
    run_scc(size_t si)
    {
        std::vector<Diag> &diags = scc_diags[si];
        diags.clear();
        const std::vector<int> &scc = sccs[si];
        const bool self_recursive =
            scc.size() == 1 &&
            std::find(adj[static_cast<size_t>(scc[0])].begin(),
                      adj[static_cast<size_t>(scc[0])].end(),
                      scc[0]) != adj[static_cast<size_t>(scc[0])].end();
        if (scc.size() == 1 && !self_recursive) {
            res.functions[static_cast<size_t>(scc[0])] =
                analyze(scc[0], diags);
            return;
        }
        // Recursive SCC: least fixpoint from bottom, widened to top if
        // it fails to converge. Either way the result is conservative.
        std::string names;
        for (int fi : scc)
            names += (names.empty() ? "" : ", ") +
                     m.functions[static_cast<size_t>(fi)].name;
        add_diag(diags, Severity::Warning, "recursion",
                 "recursive call cycle {" + names +
                     "}: stretch bounds are solved by fixpoint and may be "
                     "conservative",
                 scc[0], -1, -1);
        for (int fi : scc)
            res.functions[static_cast<size_t>(fi)] = FunctionStretch{};
        bool converged = false;
        std::vector<Diag> scratch;
        for (int round = 0; round < 40 && !converged; ++round) {
            converged = true;
            for (int fi : scc) {
                scratch.clear();
                FunctionStretch s = analyze(fi, scratch);
                if (!summary_equal(s,
                                   res.functions[static_cast<size_t>(fi)]))
                    converged = false;
                res.functions[static_cast<size_t>(fi)] = std::move(s);
            }
        }
        if (!converged) {
            add_diag(diags, Severity::Warning, "recursion-widened",
                     "recursive cycle {" + names +
                         "} did not converge; widening to unbounded",
                     scc[0], -1, -1);
            for (int fi : scc)
                res.functions[static_cast<size_t>(fi)] = top_summary();
        } else {
            for (int fi : scc) {
                scratch.clear();
                res.functions[static_cast<size_t>(fi)] =
                    analyze(fi, diags);
            }
        }
    }

    void
    refresh_fn(int fn)
    {
        if (!structural_ok || fn < 0 ||
            fn >= static_cast<int>(m.functions.size()))
            return;
        const size_t f = static_cast<size_t>(fn);
        shape_diags[f].clear();
        bad[f] = !check_function_shape(m, fn, cfgs[f], shape_diags[f]);

        // If the module flips between instrumented and probe-free, the
        // unbounded-cycle severity of *every* function changes: fall
        // back to a full SCC re-run.
        const bool now_instrumented = m.probe_count() > 0;
        const bool force_all = now_instrumented != instrumented;
        instrumented = now_instrumented;

        std::vector<char> dirty(m.functions.size(), 0);
        const size_t start =
            force_all ? 0 : static_cast<size_t>(scc_of[f]);
        for (size_t si = start; si < sccs.size(); ++si) {
            bool touched = force_all ||
                           si == static_cast<size_t>(scc_of[f]);
            for (size_t i = 0; !touched && i < sccs[si].size(); ++i)
                for (int callee : adj[static_cast<size_t>(sccs[si][i])])
                    if (dirty[static_cast<size_t>(callee)]) {
                        touched = true;
                        break;
                    }
            if (!touched)
                continue;
            std::vector<FunctionStretch> old;
            old.reserve(sccs[si].size());
            for (int fi : sccs[si])
                old.push_back(res.functions[static_cast<size_t>(fi)]);
            run_scc(si);
            for (size_t i = 0; i < sccs[si].size(); ++i)
                if (!summary_equal(
                        old[i],
                        res.functions[static_cast<size_t>(sccs[si][i])]))
                    dirty[static_cast<size_t>(sccs[si][i])] = 1;
        }
        aggregate();
    }

    void
    aggregate()
    {
        // Reassemble the flat diag list in the original emission order:
        // structural, per-function shape, per-SCC analysis, aggregate.
        res.diags = structural_diags;
        for (const auto &bucket : shape_diags)
            res.diags.insert(res.diags.end(), bucket.begin(), bucket.end());
        for (const auto &bucket : scc_diags)
            res.diags.insert(res.diags.end(), bucket.begin(), bucket.end());

        // Aggregate: windows fully inside any reachable activation,
        // plus the entry function's leading / trailing / silent
        // whole-run windows (the executor counts stretch from program
        // start).
        const size_t nf = m.functions.size();
        res.max_stretch = 0;
        res.worst_function = -1;
        res.worst_witness = Witness{};
        auto consider = [&](uint64_t v, int fi, const Witness &w) {
            if (res.worst_function < 0 || v > res.max_stretch) {
                res.max_stretch = v;
                res.worst_function = fi;
                res.worst_witness = w;
            }
        };
        for (size_t fi = 0; fi < nf; ++fi)
            if (reach[fi])
                consider(res.functions[fi].internal, static_cast<int>(fi),
                         res.functions[fi].internal_witness);
        const FunctionStretch &entry = res.functions[0];
        if (entry.may_fire) {
            consider(entry.entry_gap, 0, entry.entry_witness);
            consider(entry.exit_gap, 0, Witness{});
        }
        if (entry.may_not_fire)
            consider(entry.through, 0, Witness{});

        if (instrumented && res.max_stretch == kUnboundedStretch &&
            !res.has_errors())
            add_diag(res.diags, Severity::Error, "unbounded-stretch",
                     "instrumented module has no finite probe-free "
                     "stretch bound",
                     res.worst_function, -1, -1, res.worst_witness);
        if (cfg.fail_above != 0 && res.max_stretch > cfg.fail_above) {
            std::string msg = "proven stretch bound " +
                              fmt_len(res.max_stretch) +
                              " exceeds the configured limit " +
                              std::to_string(cfg.fail_above);
            const auto [hot_block, hot_count] =
                witness_hotspot(res.worst_witness);
            if (hot_block >= 0 && res.worst_function >= 0) {
                const std::string loc =
                    m.functions[static_cast<size_t>(res.worst_function)]
                        .name +
                    ":b" + std::to_string(hot_block);
                if (hot_count > 0)
                    msg += "; worst window loops through " + loc + " (x" +
                           std::to_string(hot_count) +
                           " more iterations)";
                else
                    msg += "; worst window runs through " + loc;
            }
            add_diag(res.diags, Severity::Error, "bound-exceeded",
                     std::move(msg), res.worst_function, -1, -1,
                     res.worst_witness);
        }

        res.ok = !res.has_errors();
    }
};

ModuleVerifier::ModuleVerifier(const Module &m, const VerifyConfig &cfg)
    : impl_(std::make_unique<Impl>(m, cfg))
{
}

ModuleVerifier::~ModuleVerifier() = default;

const VerifyResult &
ModuleVerifier::result() const
{
    return impl_->res;
}

const VerifyResult &
ModuleVerifier::refresh(int fn)
{
    impl_->refresh_fn(fn);
    return impl_->res;
}

VerifyResult
verify_module(const Module &m, const VerifyConfig &cfg)
{
    ModuleVerifier v(m, cfg);
    return v.result();
}

// ---------------------------------------------------------------------
// Rendering.

namespace {

std::string
loc_str(const Module &m, int fn, int block, int instr)
{
    std::string s;
    if (fn >= 0 && fn < static_cast<int>(m.functions.size()))
        s += m.functions[static_cast<size_t>(fn)].name;
    else
        s += "<module>";
    if (block >= 0)
        s += ":b" + std::to_string(block);
    if (instr >= 0)
        s += "#" + std::to_string(instr);
    return s;
}

void
render_witness(std::string &out, const Witness &w, const Module &m)
{
    for (const auto &s : w.steps) {
        switch (s.kind) {
          case Witness::Kind::Block:
            out += " -> " + loc_str(m, s.fn, s.block, -1);
            break;
          case Witness::Kind::Firing:
            out += " => fire@" + loc_str(m, s.fn, s.block, s.instr);
            break;
          case Witness::Kind::EnterCall:
            out += " -> call@" + loc_str(m, s.fn, s.block, s.instr);
            break;
          case Witness::Kind::Repeat:
            out += " (x" +
                   (s.count == kUnboundedStretch ? std::string("inf")
                                                 : std::to_string(s.count)) +
                   " more)";
            break;
          case Witness::Kind::Truncated:
            out += " ...";
            break;
        }
    }
}

const char *
severity_str(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

} // namespace

std::string
to_string(const Diag &d, const Module &m)
{
    std::string s = severity_str(d.severity);
    s += " [" + d.code + "] " + loc_str(m, d.fn, d.block, d.instr) + ": " +
         d.message;
    if (!d.witness.empty()) {
        s += "\n  witness:";
        render_witness(s, d.witness, m);
    }
    return s;
}

std::string
report(const VerifyResult &r, const Module &m)
{
    std::string s = "verify: ";
    s += r.ok ? "OK" : "FAIL";
    s += "  max_stretch=" + fmt_len(r.max_stretch);
    if (r.worst_function >= 0)
        s += "  worst=" + loc_str(m, r.worst_function, -1, -1);
    s += "\n";
    for (size_t fi = 0; fi < r.functions.size() && fi < m.functions.size();
         ++fi) {
        const FunctionStretch &f = r.functions[fi];
        s += "  fn " + m.functions[fi].name + ": fire=" +
             (f.may_fire ? "y" : "n") +
             " silent=" + (f.may_not_fire ? "y" : "n") +
             " entry=" + fmt_len(f.entry_gap) +
             " exit=" + fmt_len(f.exit_gap) +
             " through=" + fmt_len(f.through) +
             " internal=" + fmt_len(f.internal) + "\n";
    }
    if (!r.worst_witness.empty()) {
        s += "  worst path:";
        render_witness(s, r.worst_witness, m);
        s += "\n";
    }
    for (const auto &d : r.diags)
        s += to_string(d, m) + "\n";
    return s;
}

} // namespace tq::compiler
