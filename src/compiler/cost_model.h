/**
 * @file
 * Machine cost model for the mini-IR timing executor.
 *
 * Loads have a hit/miss latency mixture — the variable-duration
 * instructions the paper singles out as the reason instruction-counter
 * approaches translate cycles to instruction counts inaccurately
 * (section 3.1). Probe costs follow the paper's measurements: a lone
 * RDTSC is 20-40 cycles but overlaps with surrounding out-of-order
 * execution, so its *effective* cost at a sparse probe site is far lower;
 * a counter probe is a couple of ALU ops but must be placed densely.
 */
#ifndef TQ_COMPILER_COST_MODEL_H
#define TQ_COMPILER_COST_MODEL_H

#include "compiler/ir.h"

namespace tq::compiler {

/** Cycle costs of IR operations and instrumentation gadgets. */
struct CostModel
{
    // Real-instruction base costs (cycles).
    double ialu = 1;
    double imul = 3;
    double falu = 3;
    double fmul = 4;
    double fdiv = 18;
    double store = 1;
    double load_hit = 2;
    double load_miss = 60;
    double load_miss_rate = 0.03;  ///< fraction of loads missing the caches
    double call_overhead = 2;      ///< call/ret bookkeeping

    // Instrumentation costs (cycles).
    double tq_probe = 7;       ///< effective overlapped RDTSC + compare
    double ci_probe = 2;       ///< counter add + compare + branch
    double ci_cycles_extra = 10; ///< RDTSC issued when the CI gate fires
    double loop_counter = 2;   ///< per-iteration iteration-counter upkeep
    double loop_induction = 1; ///< per-iteration induction-variable compare

    // Machine frequency for cycle <-> ns conversions in reports.
    double cycles_per_ns = 2.1;  ///< the paper's 2.1 GHz Xeon

    /** Expected (mean) cost of one instruction of class @p op. */
    double
    expected(Op op) const
    {
        switch (op) {
          case Op::IAlu: return ialu;
          case Op::IMul: return imul;
          case Op::FAlu: return falu;
          case Op::FMul: return fmul;
          case Op::FDiv: return fdiv;
          case Op::Store: return store;
          case Op::Load:
            return load_hit * (1 - load_miss_rate) +
                   load_miss * load_miss_rate;
          case Op::Call: return call_overhead;
          case Op::Probe: return 0; // costed by probe kind, not here
        }
        return 0;
    }
};

} // namespace tq::compiler

#endif // TQ_COMPILER_COST_MODEL_H
