#include "compiler/ir.h"

#include <cstdio>

namespace tq::compiler {

namespace {

const char *
op_name(Op op)
{
    switch (op) {
      case Op::IAlu: return "ialu";
      case Op::IMul: return "imul";
      case Op::FAlu: return "falu";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::Call: return "call";
      case Op::Probe: return "probe";
    }
    return "?";
}

const char *
probe_name(ProbeKind k)
{
    switch (k) {
      case ProbeKind::None: return "none";
      case ProbeKind::TqClock: return "tq_clock";
      case ProbeKind::CiCounter: return "ci_counter";
      case ProbeKind::CiCycles: return "ci_cycles";
      case ProbeKind::TqLoopGuard: return "tq_loop_guard";
    }
    return "?";
}

} // namespace

void
validate(const Module &m)
{
    TQ_CHECK(!m.functions.empty());
    for (const auto &f : m.functions) {
        TQ_CHECK(!f.blocks.empty());
        for (const auto &b : f.blocks) {
            const auto check_target = [&](int t) {
                TQ_CHECK(t >= 0 && t < f.num_blocks());
            };
            switch (b.term.kind) {
              case Terminator::Kind::Jump:
                check_target(b.term.target);
                break;
              case Terminator::Kind::Branch:
                check_target(b.term.target);
                check_target(b.term.target_else);
                if (b.term.model.kind == BranchModel::Kind::TripCount)
                    TQ_CHECK(b.term.model.trip_count >= 1);
                else
                    TQ_CHECK(b.term.model.prob >= 0 &&
                             b.term.model.prob <= 1);
                break;
              case Terminator::Kind::Ret:
                break;
            }
            for (const auto &i : b.instrs) {
                if (i.op == Op::Call && i.callee >= 0) {
                    TQ_CHECK(i.callee <
                             static_cast<int>(m.functions.size()));
                }
                if (i.op == Op::Probe)
                    TQ_CHECK(i.probe != ProbeKind::None);
                else
                    TQ_CHECK(i.probe == ProbeKind::None);
            }
        }
    }
}

std::string
to_string(const Function &f)
{
    std::string out = "function " + f.name + "\n";
    char buf[128];
    for (int b = 0; b < f.num_blocks(); ++b) {
        std::snprintf(buf, sizeof(buf), "  bb%d:\n", b);
        out += buf;
        for (const auto &i : f.blocks[b].instrs) {
            if (i.is_probe()) {
                std::snprintf(buf, sizeof(buf), "    probe(%s",
                              probe_name(i.probe));
                out += buf;
                if (i.probe == ProbeKind::TqLoopGuard) {
                    std::snprintf(buf, sizeof(buf), ", period=%u", i.period);
                    out += buf;
                } else if (i.ci_increment) {
                    std::snprintf(buf, sizeof(buf), ", inc=%u",
                                  i.ci_increment);
                    out += buf;
                }
                out += ")\n";
            } else if (i.op == Op::Call) {
                std::snprintf(buf, sizeof(buf), "    call %d\n", i.callee);
                out += buf;
            } else {
                std::snprintf(buf, sizeof(buf), "    %s\n", op_name(i.op));
                out += buf;
            }
        }
        const auto &t = f.blocks[b].term;
        switch (t.kind) {
          case Terminator::Kind::Jump:
            std::snprintf(buf, sizeof(buf), "    jump bb%d\n", t.target);
            out += buf;
            break;
          case Terminator::Kind::Branch:
            std::snprintf(buf, sizeof(buf), "    br bb%d bb%d\n", t.target,
                          t.target_else);
            out += buf;
            break;
          case Terminator::Kind::Ret:
            out += "    ret\n";
            break;
        }
    }
    return out;
}

} // namespace tq::compiler
