/**
 * @file
 * Instrumentation-technique comparison harness (paper Table 3).
 *
 * Runs one module through each technique (TQ, CI, CI-Cycles), executes
 * the instrumented modules under the timing model, and collects the
 * paper's metrics: probing overhead (%), yield-timing MAE (ns), and
 * static probe counts.
 */
#ifndef TQ_COMPILER_REPORT_H
#define TQ_COMPILER_REPORT_H

#include <string>

#include "compiler/exec.h"
#include "compiler/optimizer.h"
#include "compiler/passes.h"

namespace tq::compiler {

/** Metrics of one technique on one workload. */
struct TechniqueMetrics
{
    double overhead = 0;       ///< probe cycles / real cycles
    double mae_ns = 0;         ///< yield-timing mean absolute error
    int static_probes = 0;     ///< probe sites inserted
    uint64_t yields = 0;
    uint64_t static_bound = 0; ///< verifier's worst-case probe-free stretch
    bool verified = false;     ///< verify_module accepted the placement
};

/** Table-3 style row for one workload module. */
struct ComparisonRow
{
    std::string workload;
    TechniqueMetrics ci;
    TechniqueMetrics ci_cycles;
    TechniqueMetrics tq;
    TechniqueMetrics tq_opt; ///< TQ + verify-guided placement refinement
    OptimizerResult tq_opt_info;
};

/**
 * Instrument copies of @p m with each technique and execute them.
 * @param pass_cfg placement configuration (bound etc.).
 * @param exec_cfg timing configuration (quantum, cost model, seed).
 */
ComparisonRow compare_techniques(const Module &m, const PassConfig &pass_cfg,
                                 const ExecConfig &exec_cfg);

/** Apply one technique to a copy of @p m and measure it. */
TechniqueMetrics measure_technique(const Module &m, ProbeKind technique,
                                   const PassConfig &pass_cfg,
                                   const ExecConfig &exec_cfg);

/**
 * TQ placement followed by the verify-guided optimizer
 * (optimize_placement with target 0: keep the placement's own proven
 * bound). @p opt_out, when non-null, receives the optimizer's move
 * accounting.
 */
TechniqueMetrics measure_tq_optimized(const Module &m,
                                      const PassConfig &pass_cfg,
                                      const ExecConfig &exec_cfg,
                                      OptimizerResult *opt_out = nullptr);

} // namespace tq::compiler

#endif // TQ_COMPILER_REPORT_H
