/**
 * @file
 * Configuration of the real TQ runtime and its built-in policy variants
 * (the TQ-RAND / TQ-POWER-TWO / TQ-FCFS variants of paper section 5.4).
 */
#ifndef TQ_RUNTIME_CONFIG_H
#define TQ_RUNTIME_CONFIG_H

#include <cstddef>

namespace tq::runtime {

/** Dispatcher load-balancing policy (paper sections 3.2, 5.4). */
enum class DispatchPolicy {
    JsqMsq,      ///< JSQ with Maximum-Serviced-Quanta ties (TQ default)
    JsqRandom,   ///< JSQ with random ties
    Random,      ///< uniform random worker
    PowerOfTwo,  ///< least-loaded of two random workers
};

/** Per-worker quantum scheduling policy. */
enum class WorkPolicy {
    ProcessorSharing, ///< forced multitasking in `quantum_us` slices
    Fcfs,             ///< run to completion (probes never fire)
    Las,              ///< least-attained-service first: resume the task
                      ///< with the fewest serviced quanta (dynamic
                      ///< policies are possible because probes decide
                      ///< yields at run time, paper section 3.1)
};

/** Runtime configuration. */
struct RuntimeConfig
{
    int num_workers = 2;      ///< worker scheduler threads
    double quantum_us = 2.0;  ///< target quantum (PS/LAS policies)

    /** Task coroutines per worker. The paper observes stable performance
     *  at four or more and uses eight (section 5.1). */
    int tasks_per_worker = 8;

    size_t ring_capacity = 1 << 14; ///< per-ring request/response slots
    DispatchPolicy dispatch = DispatchPolicy::JsqMsq; ///< load balancer
    WorkPolicy work = WorkPolicy::ProcessorSharing;   ///< per-core policy

    uint64_t seed = 1; ///< randomized policies (Random / PowerOfTwo)

    /**
     * stop()'s graceful-drain budget in seconds: how long stop() lets
     * queued and in-flight jobs finish before escalating to a forced
     * stop that abandons leftovers (counted; see DESIGN.md "Lifecycle &
     * shutdown"). drain() takes its own deadline and ignores this.
     */
    double stop_deadline_sec = 1.0;

    /**
     * Bounded-backpressure overflow policy for the dispatcher->worker
     * and worker->TX ring pushes. 0 (default): spin until the ring
     * drains or a forced stop begins — never drop while running. N > 0:
     * after N yield-spins the push gives up and the job/response is
     * dropped and counted (abandoned_jobs / dropped_responses).
     */
    size_t push_spin_limit = 0;

    /**
     * Dispatcher RX batch size: the dispatcher pops up to this many
     * requests per poll and refreshes its JSQ view of the workers'
     * counter lines once per batch instead of once per request, so the
     * per-request dispatch work inside a batch touches only
     * dispatcher-local state (DESIGN.md "Batched hot path"). 1 restores
     * per-request refresh exactly. Under light load batches are mostly
     * size 1 and behaviour is identical to the unbatched path; the
     * amortization engages precisely when the dispatcher is the
     * bottleneck and the RX queue has depth.
     */
    size_t dispatch_batch = 32;

    /** Per-thread trace-ring capacity in events (telemetry builds).
     *  Overflow drops events and counts them; it never blocks a worker
     *  (see OBSERVABILITY.md). */
    size_t telemetry_trace_capacity = 1 << 14;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_CONFIG_H
