/**
 * @file
 * Configuration of the real TQ runtime and its built-in policy variants
 * (the TQ-RAND / TQ-POWER-TWO / TQ-FCFS variants of paper section 5.4).
 */
#ifndef TQ_RUNTIME_CONFIG_H
#define TQ_RUNTIME_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tq::runtime {

/** Dispatcher load-balancing policy (paper sections 3.2, 5.4). */
enum class DispatchPolicy {
    JsqMsq,      ///< JSQ with Maximum-Serviced-Quanta ties (TQ default)
    JsqRandom,   ///< JSQ with random ties
    Random,      ///< uniform random worker
    PowerOfTwo,  ///< least-loaded of two random workers
};

/** Per-worker quantum scheduling policy. */
enum class WorkPolicy {
    ProcessorSharing, ///< forced multitasking in `quantum_us` slices
    Fcfs,             ///< run to completion (probes never fire)
    Las,              ///< least-attained-service first: resume the task
                      ///< with the fewest serviced quanta (dynamic
                      ///< policies are possible because probes decide
                      ///< yields at run time, paper section 3.1)
};

/** Runtime configuration. */
struct RuntimeConfig
{
    int num_workers = 2;      ///< worker scheduler threads
    double quantum_us = 2.0;  ///< target quantum (PS/LAS policies)

    /**
     * Per-class quanta keyed by Request::job_class (DESIGN.md §4i).
     * Empty — the default — keeps the single fixed quantum and the
     * exact pre-change hot path: no per-class state exists, no deficit
     * accounting runs, and figure outputs are byte-identical. When
     * non-empty, class c is admitted with class_quantum_us[c] (classes
     * beyond the table, or beyond kMaxQuantumClasses = 8, fall back to
     * quantum_us / the last slot), the worker resolves the budget with
     * one table load at admission, and deficit accounting plus the
     * starvation guard below engage. Ignored under WorkPolicy::Fcfs,
     * where probes never fire. Mirrors sim TwoLevelConfig::class_quantum.
     */
    std::vector<double> class_quantum_us;

    /**
     * Per-class deficit clamp in microseconds (per-class mode only).
     * Each class banks `granted - used` cycles after every slice — a
     * class that completes early banks credit, one whose probes overrun
     * the deadline pays the overshoot back — and the bank is clamped to
     * +-deficit_clamp_us so neither windfall compounds. The effective
     * budget at each grant is quantum + deficit, floored at quantum/4
     * so a debt-laden class always makes real progress.
     */
    double deficit_clamp_us = 8.0;

    /**
     * Starvation guard (per-class mode only): after a class with
     * runnable tasks has been passed over this many consecutive grants,
     * the next grant force-promotes its best task ahead of the policy
     * order (the LAS heap minimum or the PS front would otherwise keep
     * winning forever under a flood of fresher work). 0 disables the
     * guard. Promotions are counted (Worker::starvation_promotions()).
     */
    uint32_t starvation_promote_after = 128;

    /**
     * Adaptive quantum controller (DESIGN.md §4i): when true — and the
     * build has telemetry — Runtime::adapt_quanta() digests a telemetry
     * snapshot through runtime/quantum_controller.h and republishes the
     * per-class quantum table; workers pick the new budgets up at their
     * next admission. Enables per-class mode even with an empty
     * class_quantum_us (all classes start at quantum_us). Under
     * -DTQ_TELEMETRY=OFF the controller is compiled out and the table
     * statically keeps its configured values (adapt_quanta() == false).
     */
    bool adaptive_quantum = false;

    double quantum_slo_slowdown = 5.0; ///< controller target: SLO-class
                                       ///< p99 sojourn / mean service
    double quantum_adapt_gain = 0.25;  ///< multiplicative step per tick
    double quantum_min_us = 0.5;       ///< controller clamp floor
    double quantum_max_us = 16.0;      ///< controller clamp ceiling

    /**
     * Dispatcher shards (DESIGN.md §4g). 1 — the default — is the
     * paper's single-dispatcher runtime, byte-identical to the
     * pre-sharding code path. N > 1 divides the workers into N
     * contiguous disjoint subsets (common/shard.h shard_span), each
     * owned by its own dispatcher thread with its own RX queue and
     * packed DispatchView; submit() steers each request with the
     * front-tier JSQ over the shards' advertised load lines. Must be
     * in [1, num_workers].
     */
    int num_dispatchers = 1;

    /**
     * Bounded inter-shard work stealing (num_dispatchers > 1 only).
     * A shard whose RX is empty and whose workers are idle steals up
     * to this many queued requests from the most-loaded sibling's RX
     * queue in one attempt (the RX queues are MPMC, so a cross-shard
     * pop is exactly one atomic claim per request — a stolen job is
     * popped once, by exactly one shard). 0 disables stealing: shards
     * are then statically partitioned and a hot shard can strand
     * capacity (cf. DESIGN.md §4g on why work conservation matters at
     * microsecond scale).
     */
    size_t steal_max_batch = 8;

    /**
     * Steal trigger: only shards advertising at least this much load
     * (RX backlog + worker queue sum, see runtime/shard_front.h) are
     * eligible victims. Keeps idle-pair shards from ping-ponging
     * speculative pops at each other.
     */
    uint32_t steal_min_load = 2;

    /**
     * Sharded-mode dispatch backpressure (num_dispatchers > 1 only):
     * a shard stops forwarding RX -> worker rings once its outstanding
     * (assigned-but-unfinished) jobs reach shard_window per owned
     * worker, keeping the excess in its MPMC RX. Without the window a
     * shard runs arbitrarily far ahead of its workers and buries the
     * backlog in private SPSC rings where siblings cannot steal it —
     * stealing only rebalances work that is still in an RX queue. 0
     * disables the window (classic run-ahead). Ignored at
     * num_dispatchers == 1, which forwards as fast as the rings accept,
     * exactly as the pre-sharding dispatcher did.
     */
    size_t shard_window = 64;

    /** Task coroutines per worker. The paper observes stable performance
     *  at four or more and uses eight (section 5.1). */
    int tasks_per_worker = 8;

    size_t ring_capacity = 1 << 14; ///< per-ring request/response slots
    DispatchPolicy dispatch = DispatchPolicy::JsqMsq; ///< load balancer
    WorkPolicy work = WorkPolicy::ProcessorSharing;   ///< per-core policy

    uint64_t seed = 1; ///< randomized policies (Random / PowerOfTwo)

    /**
     * stop()'s graceful-drain budget in seconds: how long stop() lets
     * queued and in-flight jobs finish before escalating to a forced
     * stop that abandons leftovers (counted; see DESIGN.md "Lifecycle &
     * shutdown"). drain() takes its own deadline and ignores this.
     */
    double stop_deadline_sec = 1.0;

    /**
     * Bounded-backpressure overflow policy for the dispatcher->worker
     * and worker->TX ring pushes. 0 (default): spin until the ring
     * drains or a forced stop begins — never drop while running. N > 0:
     * after N yield-spins the push gives up and the job/response is
     * dropped and counted (abandoned_jobs / dropped_responses).
     */
    size_t push_spin_limit = 0;

    /**
     * Dispatcher RX batch size: the dispatcher pops up to this many
     * requests per poll and refreshes its JSQ view of the workers'
     * counter lines once per batch instead of once per request, so the
     * per-request dispatch work inside a batch touches only
     * dispatcher-local state (DESIGN.md "Batched hot path"). 1 restores
     * per-request refresh exactly. Under light load batches are mostly
     * size 1 and behaviour is identical to the unbatched path; the
     * amortization engages precisely when the dispatcher is the
     * bottleneck and the RX queue has depth.
     */
    size_t dispatch_batch = 32;

    /** Per-thread trace-ring capacity in events (telemetry builds).
     *  Overflow drops events and counts them; it never blocks a worker
     *  (see OBSERVABILITY.md). */
    size_t telemetry_trace_capacity = 1 << 14;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_CONFIG_H
