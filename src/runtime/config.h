/**
 * @file
 * Configuration of the real TQ runtime and its built-in policy variants
 * (the TQ-RAND / TQ-POWER-TWO / TQ-FCFS variants of paper section 5.4).
 */
#ifndef TQ_RUNTIME_CONFIG_H
#define TQ_RUNTIME_CONFIG_H

#include <cstddef>

namespace tq::runtime {

/** Dispatcher load-balancing policy (paper sections 3.2, 5.4). */
enum class DispatchPolicy {
    JsqMsq,      ///< JSQ with Maximum-Serviced-Quanta ties (TQ default)
    JsqRandom,   ///< JSQ with random ties
    Random,      ///< uniform random worker
    PowerOfTwo,  ///< least-loaded of two random workers
};

/** Per-worker quantum scheduling policy. */
enum class WorkPolicy {
    ProcessorSharing, ///< forced multitasking in `quantum_us` slices
    Fcfs,             ///< run to completion (probes never fire)
    Las,              ///< least-attained-service first: resume the task
                      ///< with the fewest serviced quanta (dynamic
                      ///< policies are possible because probes decide
                      ///< yields at run time, paper section 3.1)
};

/** Runtime configuration. */
struct RuntimeConfig
{
    int num_workers = 2;      ///< worker scheduler threads
    double quantum_us = 2.0;  ///< target quantum (PS/LAS policies)

    /** Task coroutines per worker. The paper observes stable performance
     *  at four or more and uses eight (section 5.1). */
    int tasks_per_worker = 8;

    size_t ring_capacity = 1 << 14; ///< per-ring request/response slots
    DispatchPolicy dispatch = DispatchPolicy::JsqMsq; ///< load balancer
    WorkPolicy work = WorkPolicy::ProcessorSharing;   ///< per-core policy

    uint64_t seed = 1; ///< randomized policies (Random / PowerOfTwo)

    /** Per-thread trace-ring capacity in events (telemetry builds).
     *  Overflow drops events and counts them; it never blocks a worker
     *  (see OBSERVABILITY.md). */
    size_t telemetry_trace_capacity = 1 << 14;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_CONFIG_H
