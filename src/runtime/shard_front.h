/**
 * @file
 * The front tier's per-shard load line (DESIGN.md §4g).
 *
 * Every dispatcher shard advertises an approximate aggregate load —
 * its RX backlog plus the assigned-minus-finished sum over its worker
 * subset — on a cache line of its own. Writer: the owning shard's
 * dispatcher thread, which refreshes the estimate once per RX batch
 * (and once per idle poll when the value changed); readers: every
 * submitting thread, which snapshots the N shard lines and runs the
 * rotated JSQ pick (common/shard.h), and sibling dispatcher shards
 * probing for a steal victim. One line per shard keeps the
 * single-writer-per-line rule of docs/cache_line_analysis.md: a
 * submit storm never invalidates a line the dispatcher writes, and a
 * shard's refresh never touches a line another shard writes.
 *
 * The estimate is deliberately stale — at most one dispatch batch plus
 * one refresh skipped when unchanged — which is the same freshness
 * contract the intra-shard JSQ view already has (paper section 4:
 * "periodically read"). Submitters racing a refresh may briefly all
 * pick the same least-loaded shard; the rotation in pick_min_rotated()
 * plus the next refresh bound the pile-up to one batch.
 */
#ifndef TQ_RUNTIME_SHARD_FRONT_H
#define TQ_RUNTIME_SHARD_FRONT_H

#include <atomic>
#include <cstdint>

#include "conc/cacheline.h"

namespace tq::runtime {

/**
 * One dispatcher shard's advertised load estimate, alone on its line.
 * `load` saturates at UINT32_MAX on the writer side; the reader treats
 * it as an opaque rank, so saturation only flattens ordering between
 * two shards that are both > 4e9 jobs deep.
 */
struct alignas(kCacheLineSize) ShardLoadLine
{
    /** Approximate shard backlog: RX queue depth + per-worker
     *  assigned-minus-finished sum, refreshed by the owning shard. */
    std::atomic<uint32_t> load{0};

    char pad[kCacheLineSize - sizeof(std::atomic<uint32_t>)];
};

static_assert(sizeof(ShardLoadLine) == kCacheLineSize &&
                  alignof(ShardLoadLine) == kCacheLineSize,
              "each shard's advertised load must own exactly one line");

} // namespace tq::runtime

#endif // TQ_RUNTIME_SHARD_FRONT_H
