#include "runtime/quantum_controller.h"

#include <algorithm>

#include "common/check.h"

namespace tq::runtime {

QuantumController::QuantumController(const QuantumControllerConfig &cfg,
                                     std::vector<double> initial_quanta_us)
    : cfg_(cfg), quanta_us_(std::move(initial_quanta_us))
{
    TQ_CHECK(cfg_.target_slowdown > 0);
    TQ_CHECK(cfg_.gain > 0 && cfg_.gain < 1);
    TQ_CHECK(cfg_.min_quantum_us > 0);
    TQ_CHECK(cfg_.max_quantum_us >= cfg_.min_quantum_us);
    TQ_CHECK(cfg_.hysteresis > 0 && cfg_.hysteresis <= 1);
    TQ_CHECK(cfg_.headroom >= 1);
    for (double &q : quanta_us_)
        q = std::clamp(q, cfg_.min_quantum_us, cfg_.max_quantum_us);
}

bool
QuantumController::update(const std::vector<ClassObservation> &obs)
{
    // Discover the SLO class: smallest mean attained service among
    // classes that completed anything this window. Blind — attained
    // service is the only size signal, exactly what LAS already uses.
    const size_t n = std::min(obs.size(), quanta_us_.size());
    int slo = -1;
    for (size_t c = 0; c < n; ++c) {
        if (obs[c].completed == 0 || obs[c].mean_service_us <= 0)
            continue;
        if (slo < 0 || obs[c].mean_service_us <
                           obs[static_cast<size_t>(slo)].mean_service_us)
            slo = static_cast<int>(c);
    }
    if (slo < 0)
        return false; // empty window: hold everything
    slo_class_ = slo;

    const ClassObservation &s = obs[static_cast<size_t>(slo)];
    last_slowdown_ = s.p99_sojourn_us / s.mean_service_us;

    const auto clamp_q = [&](double q) {
        return std::clamp(q, cfg_.min_quantum_us, cfg_.max_quantum_us);
    };
    bool changed = false;
    const auto move_to = [&](double &q, double target) {
        target = clamp_q(target);
        if (target != q) {
            q = target;
            changed = true;
        }
    };

    // The SLO class itself: one slice end to end. Only ever raised — a
    // shrinking mix would otherwise ratchet every class down together.
    double &slo_q = quanta_us_[static_cast<size_t>(slo)];
    const double want = s.mean_service_us * cfg_.headroom;
    if (want > slo_q)
        move_to(slo_q, want);

    // Everyone else: shrink while the SLO class misses its target
    // (finer preemption of whoever blocks it), relax once comfortably
    // under, hold inside the dead band.
    const double upper = cfg_.target_slowdown;
    const double lower = cfg_.target_slowdown * cfg_.hysteresis;
    double factor = 1.0;
    if (last_slowdown_ > upper)
        factor = 1.0 - cfg_.gain;
    else if (last_slowdown_ < lower)
        factor = 1.0 + cfg_.gain;
    if (factor != 1.0) {
        for (size_t c = 0; c < quanta_us_.size(); ++c) {
            if (static_cast<int>(c) == slo)
                continue;
            move_to(quanta_us_[c], quanta_us_[c] * factor);
        }
    }
    return changed;
}

} // namespace tq::runtime
