/**
 * @file
 * Runtime lifecycle state machine (DESIGN.md "Lifecycle & shutdown").
 *
 * The paper's runtime never stops: dedicated cores spin forever and the
 * NIC always drains (section 3.2). This in-process reproduction
 * timeshares one host, so quiescence is a first-class state — as in
 * Shenango's and Shinjuku's runtimes — and every unbounded loop in the
 * datapath must observe it. States move strictly forward:
 *
 *   Created -> Running -> Draining -> Stopping -> Stopped
 *
 * - Running:  accepting and executing work.
 * - Draining: submit() rejects; dispatcher forwards what is already
 *             queued, workers finish admitted jobs, then everyone exits.
 * - Stopping: the drain deadline expired (or stop was forced): abandon
 *             queued jobs, drop blocked pushes, exit now. Every
 *             backpressure loop checks for this phase.
 * - Stopped:  all threads joined.
 *
 * Only the controlling thread (the drain()/stop() caller, serialized by
 * the Runtime's lifecycle mutex) advances the state; dispatcher and
 * workers read it at loop boundaries and inside bounded push loops.
 */
#ifndef TQ_RUNTIME_LIFECYCLE_H
#define TQ_RUNTIME_LIFECYCLE_H

#include <atomic>
#include <cstdint>

#include "conc/cacheline.h"

namespace tq::runtime {

/** Lifecycle phases, in strictly increasing order. */
enum class Lifecycle : uint32_t {
    Created = 0,  ///< constructed; threads not yet launched
    Running = 1,  ///< accepting and executing work
    Draining = 2, ///< no new work; finishing queued and in-flight jobs
    Stopping = 3, ///< force-quit: abandon queued work, drop blocked pushes
    Stopped = 4,  ///< all threads joined
};

/** Human-readable phase name (logs, tests). */
inline const char *
lifecycle_name(Lifecycle s)
{
    switch (s) {
      case Lifecycle::Created:  return "Created";
      case Lifecycle::Running:  return "Running";
      case Lifecycle::Draining: return "Draining";
      case Lifecycle::Stopping: return "Stopping";
      case Lifecycle::Stopped:  return "Stopped";
    }
    return "?";
}

/**
 * Shared lifecycle control block. Writer: the controlling thread.
 * Readers: dispatcher and workers, relaxed loads at loop boundaries.
 *
 * Read-hot, write-almost-never: every datapath loop polls this line, and
 * it is written only a handful of times over a runtime's whole life
 * (state transitions, dispatcher completion). It is padded onto its own
 * line so that per-job counters elsewhere in the Runtime can never
 * invalidate the copy every worker holds in its L1 — exactly the false
 * sharing the PR 3-era Runtime had, where the dispatcher's per-job
 * `dispatched_total_` increment sat adjacent to this block (see
 * docs/cache_line_analysis.md). The two writers here (controller writes
 * `state`, dispatcher writes `dispatcher_done`) sharing one line is
 * deliberate: both fields are cold, and readers want them together.
 */
struct alignas(kCacheLineSize) LifecycleControl
{
    std::atomic<uint32_t> state{static_cast<uint32_t>(Lifecycle::Created)};

    /** Set (release) by the dispatcher after it has forwarded the last
     *  request it will ever forward; workers acquire it before deciding
     *  their dispatch ring is finally empty. */
    std::atomic<bool> dispatcher_done{false};

    /** Keep the polled line to exactly one line. */
    char pad[kCacheLineSize - sizeof(std::atomic<uint32_t>) -
             sizeof(std::atomic<bool>)];

    /** Current phase. */
    Lifecycle
    phase(std::memory_order order = std::memory_order_relaxed) const
    {
        return static_cast<Lifecycle>(state.load(order));
    }

    /** True once the force-quit phase has begun. */
    bool
    force_stop() const
    {
        return phase() >= Lifecycle::Stopping;
    }

    /** Advance @p from -> @p to; false if the state moved on already. */
    bool
    advance(Lifecycle from, Lifecycle to)
    {
        uint32_t expect = static_cast<uint32_t>(from);
        return state.compare_exchange_strong(expect,
                                             static_cast<uint32_t>(to),
                                             std::memory_order_acq_rel);
    }

    /** Unconditionally enter @p to (monotonic escalation only). */
    void
    escalate(Lifecycle to)
    {
        state.store(static_cast<uint32_t>(to), std::memory_order_release);
    }
};

static_assert(sizeof(LifecycleControl) == kCacheLineSize &&
                  alignof(LifecycleControl) == kCacheLineSize,
              "the polled lifecycle block must own exactly one line");

} // namespace tq::runtime

#endif // TQ_RUNTIME_LIFECYCLE_H
