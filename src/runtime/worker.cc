#include "runtime/worker.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/cycles.h"
#include "fault/fault.h"
#include "probe/probe.h"

namespace tq::runtime {

static_assert(kMaxQuantumClasses == telemetry::kMaxTrackedClasses,
              "quantum-table slots and per-class telemetry slots must "
              "stay in one-to-one correspondence");

Worker::Worker(int id, const RuntimeConfig &cfg, Handler handler,
               telemetry::WorkerTelemetry *telem, const LifecycleControl *lc,
               const ClassQuantumTable *quanta)
    : id_(id),
      cfg_(cfg),
      handler_(std::move(handler)),
      telem_(telem),
      lc_(lc),
      quantum_cycles_(ns_to_cycles(cfg.quantum_us * 1e3)),
      // FCFS never arms probes, so per-class budgets cannot apply: the
      // table is dropped and the fixed path runs (DESIGN.md §4i).
      quanta_table_(cfg.work == WorkPolicy::Fcfs ? nullptr : quanta),
      per_class_(quanta_table_ != nullptr),
      deficit_clamp_cycles_(ns_to_cycles(cfg.deficit_clamp_us * 1e3)),
      dispatch_ring_(cfg.ring_capacity),
      tx_ring_(cfg.ring_capacity)
{
    TQ_CHECK(cfg_.tasks_per_worker > 0);
    TQ_CHECK(handler_);
    TQ_CHECK(lc_ != nullptr);
    if (cfg_.work == WorkPolicy::Las)
        las_heap_.reserve(static_cast<size_t>(cfg_.tasks_per_worker));
    for (int t = 0; t < cfg_.tasks_per_worker; ++t) {
        auto task = std::make_unique<Task>();
        Task *raw = task.get();
        // Persistent coroutine body: serve jobs forever, yielding back to
        // the scheduler after each one (paper section 4: task coroutines
        // are created once and recycled between idle and busy states).
        task->coro = std::make_unique<Coroutine>([this, raw](Coroutine &self) {
            for (;;) {
                if (!raw->has_job) {
                    self.yield();
                    continue;
                }
                raw->result = handler_(raw->req);
                raw->has_job = false;
                raw->job_done = true;
                self.yield();
            }
        });
        idle_.push_back(raw);
        tasks_.push_back(std::move(task));
    }
}

void
Worker::poll_admissions()
{
    // Batched admission: pop as many requests as there are idle task
    // slots with one shared-index round trip, instead of one pop (and
    // one acquire of the producer index) per request.
    Request pending[kAdmitBatch];
    while (!idle_.empty()) {
        const size_t want = std::min(idle_.size(), kAdmitBatch);
        const size_t got = dispatch_ring_.pop_n(pending, want);
        for (size_t i = 0; i < got; ++i) {
            Task *task = idle_.back();
            idle_.pop_back();
            task->req = pending[i];
            task->quanta = 0;
            task->admit_seq = admit_seq_next_++;
            task->service_cycles = 0;
            task->started = false;
            task->job_done = false;
            task->has_job = true;
            if (per_class_) {
                // Quantum resolution point (DESIGN.md §4i): one relaxed
                // table load per job, here at admission. Every later
                // probe/yield decision compares against the Task's
                // precomputed cycle budget — a controller update never
                // reaches a job mid-service.
                const int slot =
                    ClassQuantumTable::slot_of(pending[i].job_class);
                task->cls = static_cast<uint8_t>(slot);
                task->budget_cycles = quanta_table_->load(slot);
                ++class_sched_[static_cast<size_t>(slot)].runnable;
            } else {
                task->budget_cycles = quantum_cycles_;
            }
            if (cfg_.work == WorkPolicy::Las) {
                las_heap_.push_back(task);
                std::push_heap(las_heap_.begin(), las_heap_.end(),
                               LasAfter{});
            } else {
                busy_.push_back(task);
            }
            busy_count_.fetch_add(1, std::memory_order_relaxed);
#if defined(TQ_TELEMETRY_ENABLED)
            telem_->counters.admitted.fetch_add(1,
                                               std::memory_order_relaxed);
#endif
        }
        if (got < want)
            return; // ring drained
    }
}

Worker::Task *
Worker::select_task()
{
    if (per_class_ && cfg_.starvation_promote_after != 0) {
        // Starvation guard (DESIGN.md §4i): a class passed over for
        // starvation_promote_after consecutive grants while runnable is
        // force-promoted ahead of the policy order. The scan is eight
        // worker-private loads; the extract below is the cold path.
        int starved = -1;
        uint32_t worst = 0;
        for (int c = 0; c < kMaxQuantumClasses; ++c) {
            const ClassSched &cs = class_sched_[static_cast<size_t>(c)];
            if (cs.runnable != 0 &&
                cs.skipped >= cfg_.starvation_promote_after &&
                cs.skipped > worst) {
                worst = cs.skipped;
                starved = c;
            }
        }
        if (starved >= 0) {
            Task *task = extract_promoted(starved);
            if (task != nullptr) {
                starvation_promotions_.fetch_add(
                    1, std::memory_order_relaxed);
                return task;
            }
        }
    }
    if (cfg_.work == WorkPolicy::Las) {
        // Least-attained-service: resume the task that has consumed the
        // fewest quanta, FIFO among equals — O(log n) heap selection in
        // place of the old O(n) scan + mid-vector erase.
        std::pop_heap(las_heap_.begin(), las_heap_.end(), LasAfter{});
        Task *task = las_heap_.back();
        las_heap_.pop_back();
        return task;
    }
    Task *task = busy_.front();
    busy_.pop_front();
    return task;
}

Worker::Task *
Worker::extract_promoted(int cls)
{
    if (cfg_.work == WorkPolicy::Las) {
        // The class's best task under the LAS order (fewest quanta,
        // FIFO among equals), extracted by scan + re-heapify: O(n) over
        // at most tasks_per_worker entries, on a rare path.
        size_t best = las_heap_.size();
        for (size_t i = 0; i < las_heap_.size(); ++i) {
            if (las_heap_[i]->cls != cls)
                continue;
            if (best == las_heap_.size() ||
                LasAfter{}(las_heap_[best], las_heap_[i]))
                best = i;
        }
        if (best == las_heap_.size())
            return nullptr; // defensive: runnable count said otherwise
        Task *task = las_heap_[best];
        las_heap_.erase(las_heap_.begin() + static_cast<ptrdiff_t>(best));
        std::make_heap(las_heap_.begin(), las_heap_.end(), LasAfter{});
        return task;
    }
    for (auto it = busy_.begin(); it != busy_.end(); ++it) {
        if ((*it)->cls == cls) {
            Task *task = *it;
            busy_.erase(it);
            return task;
        }
    }
    return nullptr;
}

void
Worker::run_one_slice()
{
    TQ_FAULT_SITE(WorkerSlice);
    Task *task = select_task();

    // The paper's call_the_yield binding: before resuming, point the
    // thread-local yield hook at this task's coroutine so probes in the
    // handler switch back here.
    bind_yield(
        [](void *coro) { static_cast<Coroutine *>(coro)->yield(); },
        task->coro.get());
    // Budget for this grant: the admission-resolved quantum, deficit-
    // adjusted in per-class mode. On the fixed path budget_cycles is
    // exactly quantum_cycles_, so the armed deadline is unchanged.
    Cycles budget = task->budget_cycles;
    if (per_class_)
        budget = effective_budget(
            task->budget_cycles,
            class_sched_[static_cast<size_t>(task->cls)].deficit);
#if defined(TQ_TELEMETRY_ENABLED)
    bind_telemetry(telem_, task->req.id);
    const Cycles slice_start = rdcycles();
    if (!task->started) {
        task->started = true;
        // Queueing stage: dispatcher handoff -> first quantum start.
        telem_->queue_cycles.add(slice_start - task->req.dispatch_cycles);
    }
    telem_->counters.quanta.fetch_add(1, std::memory_order_relaxed);
    telem_->trace.record(telemetry::EventKind::QuantumStart, task->req.id,
                         task->quanta);
    if (per_class_) {
        telem_->class_grants[task->cls].fetch_add(
            1, std::memory_order_relaxed);
        telem_->class_granted_cycles[task->cls].fetch_add(
            budget, std::memory_order_relaxed);
    }
#else
    // Deficit accounting is scheduler state, not telemetry: it needs
    // the slice duration in every build, but only in per-class mode —
    // the fixed path stays free of extra rdcycles() reads.
    Cycles slice_start = 0;
    if (per_class_)
        slice_start = rdcycles();
#endif
    if (cfg_.work == WorkPolicy::Fcfs)
        disarm_quantum(); // FCFS: probes never fire
    else
        arm_quantum(budget);
    task->coro->resume();
    disarm_quantum();
#if defined(TQ_TELEMETRY_ENABLED)
    const Cycles slice_end = rdcycles();
    const Cycles slice = slice_end - slice_start;
    task->service_cycles += slice;
    if (!task->job_done && cfg_.work != WorkPolicy::Fcfs) {
        // Preemption overhead: how far the slice ran past the armed
        // deadline before a probe fired and the switch-out completed.
        telem_->preempt_cycles.add(slice > budget ? slice - budget : 0);
    }
#else
    Cycles slice = 0;
    if (per_class_)
        slice = rdcycles() - slice_start;
#endif
    if (per_class_) {
        // Deficit settlement: bank granted-minus-used. A class that
        // completes inside its budget accrues credit (its next grants
        // run a little longer); one whose probes overrun the deadline
        // goes into debt and pays the overshoot back. The clamp bounds
        // both directions (DESIGN.md §4i invariants).
        ClassSched &cs = class_sched_[static_cast<size_t>(task->cls)];
        ++cs.grants;
        cs.granted_cycles += budget;
        const int64_t clamp = static_cast<int64_t>(deficit_clamp_cycles_);
        const int64_t settled = cs.deficit + static_cast<int64_t>(budget) -
                                static_cast<int64_t>(slice);
        cs.deficit = std::clamp(settled, -clamp, clamp);
#if defined(TQ_TELEMETRY_ENABLED)
        telem_->class_deficit[task->cls].store(cs.deficit,
                                               std::memory_order_relaxed);
#endif
        // Starvation bookkeeping: this class was served; every other
        // class with runnable tasks was passed over once more.
        for (int c = 0; c < kMaxQuantumClasses; ++c) {
            ClassSched &other = class_sched_[static_cast<size_t>(c)];
            if (c == task->cls)
                other.skipped = 0;
            else if (other.runnable != 0)
                ++other.skipped;
        }
    }

    if (task->job_done) {
        complete(task);
    } else {
        // Preempted: account the serviced quantum and requeue — tail of
        // the PS ring, or heap reinsert with the bumped quanta for LAS.
        ++task->quanta;
        stats_.current_quanta.fetch_add(1, std::memory_order_relaxed);
        stats_.total_quanta.fetch_add(1, std::memory_order_relaxed);
        if (cfg_.work == WorkPolicy::Las) {
            las_heap_.push_back(task);
            std::push_heap(las_heap_.begin(), las_heap_.end(), LasAfter{});
        } else {
            busy_.push_back(task);
        }
    }
}

bool
Worker::push_response(const Response &resp)
{
    // Response leaves directly from the worker (paper section 3.2). If
    // the TX ring is full the collector is behind: bounded backpressure —
    // spin with a stop check, then a counted drop — so a collector that
    // stopped draining can never wedge this thread (or shutdown) forever.
    TQ_FAULT_SITE(WorkerComplete);
    const size_t limit = cfg_.push_spin_limit;
    size_t spins = 0;
    while (!tx_ring_.push(resp)) {
        if (lc_->force_stop() || (limit != 0 && spins >= limit)) {
            dropped_responses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        ++spins;
        tx_full_spins_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
    }
    return true;
}

void
Worker::complete(Task *task)
{
    Response resp;
    resp.id = task->req.id;
    resp.gen_cycles = task->req.gen_cycles;
    resp.arrival_cycles = task->req.arrival_cycles;
    resp.done_cycles = rdcycles();
    resp.job_class = task->req.job_class;
    resp.worker = id_;
    resp.result = task->result;
    resp.fanout = task->req.fanout;
    resp.shard = task->req.shard;
    push_response(resp);

    // Publish to the dispatcher's cache line even when the response was
    // dropped: the job *did* finish, and the JSQ view must not leak
    // queue length.
    stats_.finished.fetch_add(1, std::memory_order_relaxed);
    stats_.current_quanta.fetch_sub(task->quanta,
                                    std::memory_order_relaxed);
    if (per_class_)
        --class_sched_[static_cast<size_t>(task->cls)].runnable;
#if defined(TQ_TELEMETRY_ENABLED)
    telem_->counters.finished.fetch_add(1, std::memory_order_relaxed);
    telem_->service_cycles.add(task->service_cycles);
    telem_->trace.record(telemetry::EventKind::JobFinished, task->req.id);
    if (per_class_) {
        // Per-class controller feed (DESIGN.md §4i): attained service
        // and sojourn keyed by the quantum-table slot.
        telem_->class_finished[task->cls].fetch_add(
            1, std::memory_order_relaxed);
        telem_->class_service[task->cls].add(task->service_cycles);
        telem_->class_sojourn[task->cls].add(resp.done_cycles -
                                             task->req.arrival_cycles);
    }
#endif
    busy_count_.fetch_sub(1, std::memory_order_relaxed);
    idle_.push_back(task);
}

void
Worker::abandon_remaining()
{
    // Clear the run queue so a second sweep only sees what arrived
    // since — the tasks' coroutines are suspended mid-job and are never
    // resumed again; tasks_ still owns them for destruction.
    const size_t queued = busy_.size() + las_heap_.size();
    uint64_t abandoned = static_cast<uint64_t>(queued);
    busy_count_.fetch_sub(queued, std::memory_order_relaxed);
    if (per_class_) {
        for (const Task *t : busy_)
            --class_sched_[static_cast<size_t>(t->cls)].runnable;
        for (const Task *t : las_heap_)
            --class_sched_[static_cast<size_t>(t->cls)].runnable;
    }
    busy_.clear();
    las_heap_.clear();
    while (dispatch_ring_.pop())
        ++abandoned;
    if (abandoned != 0)
        abandoned_jobs_.fetch_add(abandoned, std::memory_order_relaxed);
}

void
Worker::run()
{
    int empty_polls = 0;
    for (;;) {
        TQ_FAULT_SITE(WorkerPoll);
        const Lifecycle phase = lc_->phase();
        if (phase >= Lifecycle::Stopping)
            break;
        poll_admissions();
        if (!ready_empty()) {
            empty_polls = 0;
            run_one_slice();
            continue;
        }
        // Idle. Fully drained once the dispatcher has forwarded its last
        // request (acquire pairs with its release store) and nothing is
        // left in the ring.
        if (phase == Lifecycle::Draining &&
            lc_->dispatcher_done.load(std::memory_order_acquire) &&
            dispatch_ring_.empty())
            break;
        // On dedicated cores this would busy-poll; on shared hosts
        // let other threads (dispatcher, client) make progress.
        if (++empty_polls >= 8) {
            empty_polls = 0;
            std::this_thread::yield();
        } else {
            cpu_relax();
        }
    }
    abandon_remaining();
}

} // namespace tq::runtime
