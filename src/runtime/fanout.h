/**
 * @file
 * Client-side gather for scatter-gather requests.
 *
 * The dispatcher expands a request with `fanout = k` into k shard
 * copies, each placed on its own worker (runtime.cc); responses leave
 * the workers independently, so the *client* is where the gather
 * happens — the intra-host analogue of a fan-out RPC whose caller
 * completes on the last reply. The collector keys shard responses by
 * request id and reports the merged logical response when the final
 * shard lands (last-response-wins: the logical completion time is the
 * slowest shard's completion).
 *
 * Partial-failure disposition: a shard dropped by TX overflow or
 * abandoned at a forced stop simply never arrives, so its group stays
 * pending; the load generator counts still-pending groups as timed_out
 * at the drain deadline, never as completions (DESIGN.md "Arrival
 * processes & scatter-gather").
 */
#ifndef TQ_RUNTIME_FANOUT_H
#define TQ_RUNTIME_FANOUT_H

#include <unordered_map>

#include "common/cycles.h"
#include "runtime/request.h"

namespace tq::runtime {

/** Gathers shard responses into logical completions. Single-threaded
 *  (lives next to the response collector loop). */
class FanoutCollector
{
  public:
    /**
     * Feed one shard response. For fanout <= 1 responses pass straight
     * through. @return true when @p r completed its logical request;
     * then @p logical holds the merged response: `done_cycles` of the
     * last shard, earliest `arrival_cycles`, XOR of the shard results,
     * and the worker of the finishing shard. When @p spread_cycles is
     * non-null it receives last-minus-first shard completion spread
     * (the fan-out completion-histogram sample); 0 for fanout 1.
     */
    bool
    feed(const Response &r, Response *logical,
         Cycles *spread_cycles = nullptr)
    {
        if (r.fanout <= 1) {
            *logical = r;
            if (spread_cycles != nullptr)
                *spread_cycles = 0;
            return true;
        }
        auto [it, fresh] = groups_.try_emplace(r.id);
        Group &g = it->second;
        if (fresh) {
            g.remaining = r.fanout;
            g.merged = r;
            g.first_done = r.done_cycles;
        } else {
            g.merged.result ^= r.result;
            if (r.arrival_cycles < g.merged.arrival_cycles)
                g.merged.arrival_cycles = r.arrival_cycles;
            if (r.done_cycles >= g.merged.done_cycles) {
                g.merged.done_cycles = r.done_cycles;
                g.merged.worker = r.worker;
            }
            if (r.done_cycles < g.first_done)
                g.first_done = r.done_cycles;
        }
        if (--g.remaining > 0)
            return false;
        *logical = g.merged;
        logical->shard = 0;
        if (spread_cycles != nullptr)
            *spread_cycles = g.merged.done_cycles - g.first_done;
        groups_.erase(it);
        return true;
    }

    /** Logical requests with at least one but not all shards gathered. */
    size_t pending() const { return groups_.size(); }

    void clear() { groups_.clear(); }

  private:
    struct Group
    {
        uint32_t remaining = 0;
        Response merged;
        Cycles first_done = 0;
    };

    std::unordered_map<uint64_t, Group> groups_;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_FANOUT_H
