/**
 * @file
 * Blind adaptive quantum controller (DESIGN.md §4i).
 *
 * A low-rate feedback loop that nudges each class's quantum toward an
 * observed short-job slowdown SLO without knowing job sizes up front —
 * the same blind-scheduling setting as the paper, feedback-driven like
 * the changeable-time-quantum and LibPreemptible work in PAPERS.md. The
 * control law is pure and engine-agnostic: the runtime feeds it
 * telemetry-snapshot observations (Runtime::adapt_quanta()), and the
 * quanta bench feeds it simulator results to demonstrate convergence
 * (bench/quanta_adaptive.cc), so both sides exercise the same code.
 *
 * Law, per update():
 *  1. The *SLO class* is the one with the smallest observed mean
 *     service time among classes with completions — the controller
 *     discovers "the short jobs" from attained service, it is never
 *     told.
 *  2. The SLO class's own quantum is raised toward `headroom` times its
 *     mean service so it completes in one slice and never pays the PS
 *     requeue penalty (a job cut into k slices rejoins the tail of the
 *     round-robin queue k-1 times).
 *  3. Every other class's quantum shrinks multiplicatively while the
 *     SLO class's p99 slowdown exceeds the target (finer preemption of
 *     the jobs blocking it), and relaxes back once it is comfortably
 *     under target * hysteresis (recovering switch overhead). Inside
 *     the dead band nothing moves — no oscillation at steady state.
 * All quanta clamp into [min_quantum_us, max_quantum_us].
 *
 * In `-DTQ_TELEMETRY=OFF` builds the runtime never constructs a
 * controller (static fallback: the table keeps its configured values;
 * adapt_quanta() reports false). The class itself always compiles — it
 * has no telemetry dependency — so sim-side users work in every build.
 */
#ifndef TQ_RUNTIME_QUANTUM_CONTROLLER_H
#define TQ_RUNTIME_QUANTUM_CONTROLLER_H

#include <cstdint>
#include <vector>

namespace tq::runtime {

/** One class's observed behaviour over the last control window. */
struct ClassObservation
{
    uint64_t completed = 0;     ///< jobs finished (0 = class never seen)
    double mean_service_us = 0; ///< mean attained service per job
    double p99_sojourn_us = 0;  ///< p99 arrival -> completion
};

/** Control-law parameters (see RuntimeConfig for the runtime knobs). */
struct QuantumControllerConfig
{
    double target_slowdown = 5.0; ///< SLO: p99 sojourn / mean service
    double gain = 0.25;           ///< multiplicative step per update
    double min_quantum_us = 0.5;  ///< clamp floor
    double max_quantum_us = 16.0; ///< clamp ceiling
    double hysteresis = 0.8;      ///< dead band: [target*h, target]
    double headroom = 2.0;        ///< SLO-class quantum vs mean service
};

/** The pure feedback law: holds the current quanta, digests one
 *  observation vector per update. Single-threaded by design — the
 *  runtime serializes updates on its snapshot mutex. */
class QuantumController
{
  public:
    /**
     * @param cfg control-law parameters.
     * @param initial_quanta_us starting per-class quanta (one entry per
     *     tracked class; they are clamped into the configured bounds).
     */
    QuantumController(const QuantumControllerConfig &cfg,
                      std::vector<double> initial_quanta_us);

    /**
     * Digest one observation window and move the quanta. Classes beyond
     * the tracked count or with no completions are left untouched.
     * @return true when any quantum changed (callers republish then).
     */
    bool update(const std::vector<ClassObservation> &obs);

    /** Current per-class quanta in microseconds. */
    const std::vector<double> &quanta_us() const { return quanta_us_; }

    /** Index of the SLO (shortest mean service) class identified by the
     *  last update, or -1 before the first update with data. */
    int slo_class() const { return slo_class_; }

    /** The SLO class's slowdown observed by the last update (0 before). */
    double last_slowdown() const { return last_slowdown_; }

  private:
    QuantumControllerConfig cfg_;
    std::vector<double> quanta_us_;
    int slo_class_ = -1;
    double last_slowdown_ = 0;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_QUANTUM_CONTROLLER_H
